// Parallel-engine smoke benchmark: measures the wall-clock speedup of the
// two parallel phases (vectorised experience collection and per-unit
// evaluation) at 1 vs 4 workers, and checks the determinism contract —
// the 4-worker run must be bit-identical to the serial one.
//
// Writes the measurements to BENCH_parallel.json in the working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "nn/kernels.hpp"
#include "util/fs.hpp"

#include "core/evaluate.hpp"
#include "obs/sink.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_env.hpp"
#include "routing/baselines.hpp"
#include "topo/zoo.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

constexpr int kVecEnvs = 4;
constexpr int kStepsPerEnv = 48;
constexpr int kEvalTestSequences = 8;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CollectRun {
  rl::RolloutBuffer buffer;
  double seconds = 0.0;
};

// Fresh identical setup per run (same seeds, fresh LP cache) so the two
// worker counts do the same work and their buffers are comparable.
CollectRun run_collection(const Scenario& scenario, int workers) {
  util::ThreadPool pool(workers);
  EnvConfig env_cfg;
  env_cfg.memory = 5;
  const auto envs = make_vec_envs({scenario}, env_cfg, /*seed=*/11, kVecEnvs);
  std::vector<rl::Env*> env_ptrs;
  for (const auto& env : envs) env_ptrs.push_back(env.get());
  util::Rng prng(13);
  GnnPolicy policy(experiment_gnn_config(env_cfg.memory), prng);
  rl::VecEnvCollector collector(policy, env_ptrs, /*seed=*/17, &pool);

  CollectRun run;
  const double start = now_seconds();
  collector.collect(kStepsPerEnv, /*reward_scale=*/1.0, run.buffer);
  run.seconds = now_seconds() - start;
  return run;
}

bool buffers_identical(const rl::RolloutBuffer& a, const rl::RolloutBuffer& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const rl::StepSample& x = a.samples()[i];
    const rl::StepSample& y = b.samples()[i];
    if (x.action != y.action || x.log_prob != y.log_prob ||
        x.value != y.value || x.reward != y.reward || x.done != y.done ||
        x.truncated != y.truncated ||
        x.bootstrap_value != y.bootstrap_value ||
        x.obs.flat != y.obs.flat) {
      return false;
    }
  }
  return true;
}

struct EvalRun {
  EvalResult result;
  double seconds = 0.0;
};

// The pool-sharded matmul kernels under the tape carry the same
// determinism contract as the phases above: any worker count must
// reproduce the serial bytes exactly.  Checks all three variants on a
// shape large enough to cross the parallel gates.
bool kernels_bit_identical_across_workers() {
  const int m = 64;
  const int k = 64;
  const int n = 64;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> g(static_cast<std::size_t>(m) * n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.01F * static_cast<float>(i % 23) - 0.1F;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.02F * static_cast<float>(i % 19) - 0.15F;
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = 0.03F * static_cast<float>(i % 17) - 0.2F;
  }
  std::vector<float> c_serial(static_cast<std::size_t>(m) * n);
  std::vector<float> gx_serial(static_cast<std::size_t>(m) * k, 0.0F);
  std::vector<float> gw_serial(static_cast<std::size_t>(k) * n, 0.0F);
  nn::kernels::matmul_nn(m, k, n, a.data(), b.data(), c_serial.data());
  nn::kernels::matmul_nt_acc(m, n, k, g.data(), b.data(), gx_serial.data());
  nn::kernels::matmul_tn_acc(m, k, n, a.data(), g.data(), gw_serial.data());
  for (const std::size_t workers : {2U, 4U}) {
    util::ThreadPool pool(workers);
    std::vector<float> c(c_serial.size());
    std::vector<float> gx(gx_serial.size(), 0.0F);
    std::vector<float> gw(gw_serial.size(), 0.0F);
    nn::kernels::matmul_nn(m, k, n, a.data(), b.data(), c.data(), &pool);
    nn::kernels::matmul_nt_acc(m, n, k, g.data(), b.data(), gx.data(),
                               &pool);
    nn::kernels::matmul_tn_acc(m, k, n, a.data(), g.data(), gw.data(),
                               &pool);
    if (std::memcmp(c.data(), c_serial.data(),
                    c.size() * sizeof(float)) != 0 ||
        std::memcmp(gx.data(), gx_serial.data(),
                    gx.size() * sizeof(float)) != 0 ||
        std::memcmp(gw.data(), gw_serial.data(),
                    gw.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

EvalRun run_evaluation(const Scenario& scenario, int workers) {
  util::ThreadPool pool(workers);
  mcf::OptimalCache cache;  // fresh: both runs solve the same LPs
  EvalRun run;
  const double start = now_seconds();
  run.result = evaluate_fixed(
      {scenario}, /*memory=*/5, cache,
      [](const graph::DiGraph& g) {
        const std::vector<double> w(static_cast<size_t>(g.num_edges()), 1.0);
        return routing::softmin_routing(g, w);
      },
      &pool);
  run.seconds = now_seconds() - start;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const int workers = util::consume_workers_flag(argc, argv);
  const obs::MetricsOptions metrics = obs::consume_metrics_flag(argc, argv);
  obs::apply(metrics);
  const int parallel_workers = workers > 1 ? workers : 4;
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("=== Parallel engine: speedup and determinism smoke ===\n");
  std::printf("comparing 1 worker vs %d workers (%u hardware threads)\n",
              parallel_workers, hardware);
  if (hardware < 2) {
    std::printf("note: single-core host — wall-clock speedup > 1 is not "
                "attainable; this run still verifies determinism and "
                "measures threading overhead.\n");
  }

  util::Rng rng(20210202);
  ScenarioParams params = experiment_scenario_params();
  const Scenario train_scenario =
      make_scenario(topo::abilene_heterogeneous(), params, rng);
  params.test_sequences = kEvalTestSequences;
  util::Rng rng2(20210505);
  const Scenario eval_scenario =
      make_scenario(topo::abilene_heterogeneous(), params, rng2);

  std::printf("\n[0/2] matmul kernels, 1 vs 2 vs 4 workers...\n");
  const bool kernels_identical = kernels_bit_identical_across_workers();
  std::printf("  outputs bit-identical: %s\n",
              kernels_identical ? "yes" : "NO — DETERMINISM VIOLATION");

  std::printf("\n[1/2] vectorised collection: %d envs x %d steps...\n",
              kVecEnvs, kStepsPerEnv);
  const CollectRun collect_serial = run_collection(train_scenario, 1);
  const CollectRun collect_parallel =
      run_collection(train_scenario, parallel_workers);
  const bool collect_identical =
      buffers_identical(collect_serial.buffer, collect_parallel.buffer);
  const double collect_speedup =
      collect_parallel.seconds > 0.0
          ? collect_serial.seconds / collect_parallel.seconds
          : 0.0;
  std::printf("  1 worker: %.3fs, %d workers: %.3fs  ->  %.2fx speedup\n",
              collect_serial.seconds, parallel_workers,
              collect_parallel.seconds, collect_speedup);
  std::printf("  buffers bit-identical: %s\n",
              collect_identical ? "yes" : "NO — DETERMINISM VIOLATION");

  std::printf("\n[2/2] parallel evaluation: %d test sequences...\n",
              kEvalTestSequences);
  const EvalRun eval_serial = run_evaluation(eval_scenario, 1);
  const EvalRun eval_parallel = run_evaluation(eval_scenario, parallel_workers);
  const bool eval_identical =
      eval_serial.result.mean_ratio == eval_parallel.result.mean_ratio &&
      eval_serial.result.stddev == eval_parallel.result.stddev &&
      eval_serial.result.steps == eval_parallel.result.steps;
  const double eval_speedup =
      eval_parallel.seconds > 0.0 ? eval_serial.seconds / eval_parallel.seconds
                                  : 0.0;
  std::printf("  1 worker: %.3fs, %d workers: %.3fs  ->  %.2fx speedup\n",
              eval_serial.seconds, parallel_workers, eval_parallel.seconds,
              eval_speedup);
  std::printf("  mean ratio %.6f vs %.6f, bit-identical: %s\n",
              eval_serial.result.mean_ratio, eval_parallel.result.mean_ratio,
              eval_identical ? "yes" : "NO — DETERMINISM VIOLATION");

  const double best_speedup = std::max(collect_speedup, eval_speedup);
  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
        "  \"workers\": %d,\n"
        "  \"kernels_bit_identical\": %s,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"vec_envs\": %d,\n"
        "  \"collection\": {\n"
        "    \"steps_per_env\": %d,\n"
        "    \"serial_seconds\": %.6f,\n"
        "    \"parallel_seconds\": %.6f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"bit_identical\": %s\n"
        "  },\n"
        "  \"evaluation\": {\n"
        "    \"test_sequences\": %d,\n"
        "    \"serial_seconds\": %.6f,\n"
        "    \"parallel_seconds\": %.6f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"bit_identical\": %s,\n"
        "    \"mean_ratio\": %.9f\n"
        "  },\n"
        "  \"best_speedup\": %.3f,\n"
        "  \"meets_2x_target\": %s,\n"
        "  \"note\": \"%s\"\n"
        "}\n",
        parallel_workers, kernels_identical ? "true" : "false", hardware,
        kVecEnvs, kStepsPerEnv,
        collect_serial.seconds, collect_parallel.seconds, collect_speedup,
        collect_identical ? "true" : "false", kEvalTestSequences,
        eval_serial.seconds, eval_parallel.seconds, eval_speedup,
        eval_identical ? "true" : "false", eval_serial.result.mean_ratio,
        best_speedup, best_speedup >= 2.0 ? "true" : "false",
      hardware >= 2
          ? "speedup measured against the inline serial path"
          : "single-core host: speedup > 1 unattainable; run verifies "
            "determinism and bounds threading overhead");
  try {
    gddr::util::write_file_atomic("BENCH_parallel.json", json);
    std::printf("\nwrote BENCH_parallel.json (best speedup %.2fx)\n",
                best_speedup);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "could not write BENCH_parallel.json: %s\n",
                 ex.what());
  }

  const std::string metrics_summary = obs::finish(metrics);
  if (!metrics_summary.empty()) std::printf("%s\n", metrics_summary.c_str());

  const bool ok = collect_identical && eval_identical && kernels_identical;
  if (!ok) std::fprintf(stderr, "FAIL: determinism contract violated\n");
  return ok ? 0 : 1;
}
