// Microbenchmark: the optimal-congestion solvers.
//
// The paper notes training is CPU-bound on the LP step (§VIII-C); this
// bench quantifies the from-scratch simplex on Topology-Zoo-scale
// problems, the FPTAS alternative, and the effect of the reward cache.
#include <benchmark/benchmark.h>

#include "mcf/cache.hpp"
#include "mcf/fptas.hpp"
#include "mcf/optimal.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace gddr;

traffic::DemandMatrix make_demand(const graph::DiGraph& g,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.2;
  return traffic::bimodal_matrix(g.num_nodes(), params, rng);
}

void BM_SolveOptimalLp(benchmark::State& state,
                       const std::string& topology) {
  const auto g = topo::by_name(topology);
  const auto dm = make_demand(g, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::solve_optimal(g, dm));
  }
  state.SetLabel(topology + " |V|=" + std::to_string(g.num_nodes()) +
                 " |E|=" + std::to_string(g.num_edges()));
}

void BM_FptasApprox(benchmark::State& state, const std::string& topology) {
  const auto g = topo::by_name(topology);
  const auto dm = make_demand(g, 1);
  mcf::FptasOptions options;
  options.epsilon = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::approx_optimal_u_max(g, dm, options));
  }
  state.SetLabel(topology);
}

void BM_CachedOptimal(benchmark::State& state) {
  const auto g = topo::abilene();
  const auto dm = make_demand(g, 1);
  mcf::OptimalCache cache;
  cache.u_max(g, dm);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.u_max(g, dm));
  }
  state.SetLabel("Abilene (cache hit)");
}

BENCHMARK_CAPTURE(BM_SolveOptimalLp, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_SolveOptimalLp, nsfnet, std::string("Nsfnet"));
BENCHMARK_CAPTURE(BM_SolveOptimalLp, garr, std::string("GarrLike"));
BENCHMARK_CAPTURE(BM_SolveOptimalLp, geant, std::string("GeantLike"));
BENCHMARK_CAPTURE(BM_FptasApprox, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_FptasApprox, geant, std::string("GeantLike"));
BENCHMARK(BM_CachedOptimal);

}  // namespace
