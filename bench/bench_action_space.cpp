// Ablation: action-space reductions (paper §V-C).
//
// The paper reduces the action space from per-flow splitting ratios
// (|V|^2 |E| values) through destination-based routing (|V||E|) down to
// one weight per edge (|E|), accepting approximation error in exchange
// for a space PPO can explore.  This bench reports the sizes for the
// catalogue topologies and measures the cost of the final reduction: the
// gap between the LP optimum (what the full space can express), the best
// edge-weight softmin routing found by random search, and shortest-path
// routing.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "mcf/cache.hpp"
#include "routing/baselines.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Ablation: action-space reductions (paper §V-C) ===\n\n");

  {
    util::Table sizes({"topology", "per-flow |V|^2|E|", "per-dest |V||E|",
                       "edge weights |E|"});
    for (const auto& name : topo::catalogue_names()) {
      const auto g = topo::by_name(name);
      const long v = g.num_nodes();
      const long e = g.num_edges();
      sizes.add_row({name, std::to_string(v * v * e), std::to_string(v * e),
                     std::to_string(e)});
    }
    sizes.print();
  }

  std::printf("\ncost of the |E| reduction (mean U_max ratio; 1.0 = what "
              "the unreduced space could express):\n");
  ScenarioParams params = experiment_scenario_params();
  params.train_sequences = 1;
  params.test_sequences = 1;

  util::Table table({"topology", "best-of-200 edge weights",
                     "softmin(neutral)", "shortest-path"});
  util::Rng rng(5);
  for (const auto& name : {"Abilene", "SmallRing", "MetroLike"}) {
    const Scenario scenario = make_scenario(topo::by_name(name), params, rng);
    const auto& g = scenario.graph;
    mcf::OptimalCache cache;
    const int memory = 5;

    // Random search over static edge-weight vectors: selected on the
    // train sequence, scored on the test sequence.
    util::Rng wrng(13);
    double best_train = 1e18;
    std::vector<double> best_weights(static_cast<size_t>(g.num_edges()),
                                     1.0);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<double> actions(static_cast<size_t>(g.num_edges()));
      for (auto& a : actions) a = wrng.uniform(-1.0, 1.0);
      const auto weights = routing::weights_from_actions(actions, 0.5, 3.0);
      const auto routing = routing::softmin_routing(g, weights);
      double sum = 0.0;
      int count = 0;
      const auto& seq = scenario.train_sequences[0];
      for (std::size_t t = static_cast<size_t>(memory); t < 25; ++t) {
        sum += routing::simulate(g, routing, seq[t]).u_max /
               cache.u_max(g, seq[t]);
        ++count;
      }
      if (sum / count < best_train) {
        best_train = sum / count;
        best_weights = weights;
      }
    }
    const auto best = evaluate_fixed(
        {scenario}, memory, cache, [&](const graph::DiGraph& gr) {
          return routing::softmin_routing(gr, best_weights);
        });
    const auto neutral = evaluate_fixed(
        {scenario}, memory, cache, [](const graph::DiGraph& gr) {
          const std::vector<double> w(
              static_cast<size_t>(gr.num_edges()), 1.0);
          return routing::softmin_routing(gr, w);
        });
    const auto sp = evaluate_shortest_path({scenario}, memory, cache);
    table.add_row({name, util::fmt(best.mean_ratio),
                   util::fmt(neutral.mean_ratio), util::fmt(sp.mean_ratio)});
  }
  table.print();
  std::printf("\nreading: the |E|-sized space cannot reach 1.0 (the "
              "approximation the paper accepts).  Static random search "
              "over it sometimes beats shortest-path and sometimes "
              "overfits the training sequence — which is precisely why "
              "the paper conditions the weights on observed demand with a "
              "learned policy instead of fixing them; unlike the per-flow "
              "space, |E| values are few enough for RL exploration.\n");
  return 0;
}
