// Ablation with learning: the action-space reduction of paper §V-C.
//
// The paper rejected the destination-only action space (|V| x |E| values)
// as "still too large" for successful learning and settled on one weight
// per edge (|E| values).  bench_action_space quantifies the *sizes*; this
// bench tests the rejection itself by training the same MLP agent under
// both translations with identical budgets.  The outcome is nuanced — see
// the reading printed below the table.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Ablation (learning): action-space size (paper §V-C) ===\n");

  const int memory = 5;
  const long steps = bench_train_steps(5000);
  util::Rng rng(20210606);
  const Scenario scenario = make_scenario(topo::abilene_heterogeneous(),
                                          experiment_scenario_params(), rng);
  const int n = scenario.graph.num_nodes();
  const int ne = scenario.graph.num_edges();
  std::printf("AbileneHet, MLP agent, %ld training steps per variant\n\n",
              steps);

  util::Table table({"action space", "dimension", "untrained ratio",
                     "trained ratio"});
  struct Variant {
    const char* label;
    ActionSpace space;
    int dim;
  };
  const Variant variants[] = {
      {"edge weights |E| (paper's choice)", ActionSpace::kEdgeWeights, ne},
      {"per-destination |V||E| (rejected)",
       ActionSpace::kPerDestinationWeights, n * ne},
  };
  for (const auto& variant : variants) {
    EnvConfig env_cfg;
    env_cfg.memory = memory;
    env_cfg.action_space = variant.space;
    RoutingEnv env({scenario}, env_cfg, 1);
    util::Rng prng(2);
    MlpPolicy policy(memory * n * n, variant.dim, experiment_mlp_config(),
                     prng);
    rl::PpoTrainer trainer(policy, env, routing_ppo_config(), 3);
    const EvalResult before = evaluate_policy(trainer, env);
    trainer.train(steps);
    const EvalResult after = evaluate_policy(trainer, env);
    table.add_row({variant.label, std::to_string(variant.dim),
                   util::fmt(before.mean_ratio),
                   util::fmt(after.mean_ratio)});
  }
  table.print();
  std::printf("\nreading: both spaces start from the same neutral "
              "translation.  On a single small fixed topology the "
              "destination-granular space is more expressive and can even "
              "out-learn the |E| space at moderate budgets — the rejection "
              "is not about a fixed 11-node graph.  Its real costs are "
              "scale and portability: the dimension grows as |V||E| "
              "(34848 on GeantLike vs 72), the MLP that emits it is tied "
              "to one topology, and exploration cost grows with dimension "
              "— which is why the paper's generalisation goal forces the "
              "compact |E| space.\n");
  return 0;
}
