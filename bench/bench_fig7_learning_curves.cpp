// Figure 7 reproduction: learning curves of the MLP and GNN agents.
//
// Paper setup: same fixed-graph Abilene experiment as Figure 6; the plot
// shows mean total reward per episode over the course of training (higher
// is better; reward = -U_agent/U_optimal per timestep).  The paper's
// qualitative claims: both agents learn; the GNN learns at least as fast
// (reaching its plateau first) and ends at least as high; both train at a
// comparable frames-per-second rate (i.e. the GNN adds no learning-time
// overhead).
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/experiment.hpp"
#include "obs/sink.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "topo/zoo.hpp"
#include "rl/ppo.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

// Number of environment instances for vectorised collection.  Fixed (not
// tied to --workers) so that trajectories are bit-identical whatever the
// worker count; --workers only sets how many threads step them.
constexpr int kVecEnvs = 4;

struct Curve {
  std::vector<long> steps;
  std::vector<double> reward;
  double fps = 0.0;
};

Curve train_curve(rl::Policy& policy, const Scenario& scenario,
                  const EnvConfig& env_cfg, long total_steps,
                  std::uint64_t env_seed, std::uint64_t trainer_seed,
                  util::ThreadPool& pool) {
  const auto envs = make_vec_envs({scenario}, env_cfg, env_seed, kVecEnvs);
  std::vector<rl::Env*> env_ptrs;
  for (const auto& env : envs) env_ptrs.push_back(env.get());
  rl::PpoTrainer trainer(policy, env_ptrs, routing_ppo_config(),
                         trainer_seed, &pool);
  Curve curve;
  const auto start = std::chrono::steady_clock::now();
  trainer.train(total_steps, [&](const rl::PpoIterationStats& stats) {
    if (stats.episodes > 0) {
      curve.steps.push_back(trainer.total_env_steps());
      curve.reward.push_back(stats.mean_episode_reward);
    }
  });
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  curve.fps = static_cast<double>(trainer.total_env_steps()) / elapsed;
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const int workers = util::consume_workers_flag(argc, argv);
  const obs::MetricsOptions metrics = obs::consume_metrics_flag(argc, argv);
  obs::apply(metrics);
  util::ThreadPool pool(workers);
  std::printf("=== Figure 7: learning curves (MLP vs GNN) ===\n");
  std::printf("%d collection worker(s), %d vectorised envs\n", workers,
              kVecEnvs);

  util::Rng rng(20210202);
  const ScenarioParams params = experiment_scenario_params();
  // Heterogeneous-capacity Abilene; see bench_fig6 and DESIGN.md §1.
  const Scenario scenario =
      make_scenario(topo::abilene_heterogeneous(), params, rng);
  const int memory = 5;
  const long steps = bench_train_steps(8000);
  std::printf("AbileneHet; %ld training steps per agent\n", steps);

  EnvConfig env_cfg;
  env_cfg.memory = memory;

  Curve mlp_curve;
  {
    util::Rng prng(2);
    const int obs_dim =
        memory * scenario.graph.num_nodes() * scenario.graph.num_nodes();
    MlpPolicy policy(obs_dim, scenario.graph.num_edges(),
                     experiment_mlp_config(), prng);
    std::printf("training MLP...\n");
    mlp_curve = train_curve(policy, scenario, env_cfg, steps,
                            /*env_seed=*/1, /*trainer_seed=*/3, pool);
  }
  Curve gnn_curve;
  {
    util::Rng prng(5);
    GnnPolicy policy(experiment_gnn_config(memory), prng);
    std::printf("training GNN...\n");
    gnn_curve = train_curve(policy, scenario, env_cfg, steps,
                            /*env_seed=*/4, /*trainer_seed=*/6, pool);
  }

  // Smooth like the paper's plot and print both series on a shared grid.
  const auto mlp_smooth = util::moving_average(mlp_curve.reward, 5);
  const auto gnn_smooth = util::moving_average(gnn_curve.reward, 5);
  util::Table table({"env steps", "MLP mean episode reward",
                     "GNN mean episode reward"});
  const std::size_t points =
      std::max(mlp_smooth.size(), gnn_smooth.size());
  for (std::size_t i = 0; i < points; ++i) {
    auto cell = [&](const std::vector<double>& smooth) {
      return i < smooth.size() ? util::fmt(smooth[i], 3) : std::string("-");
    };
    const long step = i < mlp_curve.steps.size()
                          ? mlp_curve.steps[i]
                          : (i < gnn_curve.steps.size() ? gnn_curve.steps[i]
                                                        : 0);
    table.add_row({std::to_string(step), cell(mlp_smooth),
                   cell(gnn_smooth)});
  }
  table.print();

  auto tail_mean = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    const std::size_t tail = std::max<std::size_t>(1, v.size() / 5);
    double sum = 0.0;
    for (std::size_t i = v.size() - tail; i < v.size(); ++i) sum += v[i];
    return sum / static_cast<double>(tail);
  };
  std::printf("\nfinal plateau (mean of last 20%% of points): MLP %.3f, "
              "GNN %.3f (higher is better)\n",
              tail_mean(mlp_curve.reward), tail_mean(gnn_curve.reward));
  std::printf("training rate: MLP %.1f steps/s, GNN %.1f steps/s "
              "(paper: ~70 fps for both — no learning-time overhead)\n",
              mlp_curve.fps, gnn_curve.fps);
  std::printf("\npaper expectation: both curves rise; the GNN plateaus at "
              "least as high and at least as early as the MLP.\n");
  const std::string metrics_summary = obs::finish(metrics);
  if (!metrics_summary.empty()) std::printf("%s\n", metrics_summary.c_str());
  return 0;
}
