// Throughput bench for the concurrent serving engine (serve::Engine).
//
// Two phases:
//  1. Bit-identity — the same request stream is served by a plain
//     RobustRouter and by engines with 1, 2 and 4 workers; every decision
//     (rung, u_max, routed demand) must match the reference exactly.
//     Micro-batch composition differs run to run, so this holds only
//     because the batched GNN forward is bit-identical to the
//     per-request forward — the engine's core correctness claim.
//  2. Scaling — unpaced offered load through 1-worker and 4-worker
//     engines, best of three reps.  On a multi-core host (>= 4 hardware
//     threads) the 4-worker engine must reach >= 2x the single-worker
//     throughput; on smaller hosts the ratio is reported but not
//     asserted (phase 1 is the meaningful check there).
//
// --json writes BENCH_serve_throughput.json
// ("gddr.bench_serve_throughput.v1") for the CI smoke leg.  Exit code 0
// iff every assertion held.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace {

using namespace gddr;

constexpr int kRequests = 96;
constexpr int kScalingReps = 3;

struct DecisionKey {
  serve::Rung rung;
  double u_max;
  double routed_demand;
};

bool operator==(const DecisionKey& a, const DecisionKey& b) {
  // Exact comparison on purpose: the claim is bit-identity, not
  // tolerance-level agreement.
  return a.rung == b.rung && a.u_max == b.u_max &&
         a.routed_demand == b.routed_demand;
}

std::vector<traffic::DemandMatrix> make_demands(const graph::DiGraph& g,
                                                int count,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.3;
  std::vector<traffic::DemandMatrix> demands;
  demands.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    demands.push_back(traffic::bimodal_matrix(g.num_nodes(), params, rng));
  }
  return demands;
}

serve::EngineConfig engine_config(int workers) {
  serve::EngineConfig config;
  config.workers = workers;
  // Queue sized to the whole stream and no queueing deadline: this bench
  // measures service rate, so nothing may ever be shed.
  config.queue_capacity = kRequests;
  config.max_batch = 8;
  config.queue_deadline = std::chrono::microseconds(0);
  config.router.deadline = std::chrono::seconds(5);  // generous: CI crawls
  return config;
}

// Serves `demands` through a fresh engine, returning per-request decision
// keys in submission order plus the wall-clock service rate.
std::vector<DecisionKey> run_engine(core::GnnPolicy& policy,
                                    const graph::DiGraph& g,
                                    const std::vector<traffic::DemandMatrix>&
                                        demands,
                                    int workers, long* shed_out,
                                    double* rps_out) {
  serve::Engine engine(&policy, engine_config(workers));
  std::vector<std::future<serve::ServeOutcome>> futures;
  futures.reserve(demands.size());
  traffic::DemandSequence history;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& dm : demands) {
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = dm;
    request.history = history;
    futures.push_back(engine.submit(std::move(request)));
    history.push_back(dm);
    if (static_cast<int>(history.size()) > engine.config().router.memory) {
      history.erase(history.begin());
    }
  }
  engine.shutdown();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  std::vector<DecisionKey> keys;
  keys.reserve(futures.size());
  long shed = 0;
  for (auto& future : futures) {
    const serve::ServeOutcome outcome = future.get();
    if (outcome.shed) ++shed;
    keys.push_back({outcome.decision.rung, outcome.decision.sim.u_max,
                    outcome.decision.routed_demand});
  }
  if (shed_out != nullptr) *shed_out = shed;
  if (rps_out != nullptr) {
    *rps_out = elapsed > 0.0
                   ? static_cast<double>(demands.size()) / elapsed
                   : 0.0;
  }
  return keys;
}

// The single-router baseline the engine must reproduce exactly.
std::vector<DecisionKey> run_reference(core::GnnPolicy& policy,
                                       const graph::DiGraph& g,
                                       const std::vector<traffic::DemandMatrix>&
                                           demands) {
  serve::RobustRouter router(&policy, engine_config(1).router);
  std::vector<DecisionKey> keys;
  keys.reserve(demands.size());
  traffic::DemandSequence history;
  for (const auto& dm : demands) {
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = dm;
    request.history = history;
    const serve::RouteDecision decision = router.decide(request);
    keys.push_back({decision.rung, decision.sim.u_max,
                    decision.routed_demand});
    history.push_back(dm);
    if (static_cast<int>(history.size()) > router.config().memory) {
      history.erase(history.begin());
    }
  }
  return keys;
}

void define_latency_buckets() {
  obs::Registry::instance().define_histogram(
      "serve/engine/latency_us",
      {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0,
       50000.0, 100000.0, 200000.0, 500000.0, 1000000.0, 5000000.0});
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  util::Rng policy_rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), policy_rng);
  const graph::DiGraph abilene = topo::by_name("Abilene");
  const auto demands = make_demands(abilene, kRequests, 11);

  // ---- Phase 1: decisions are worker-count invariant -----------------
  const std::vector<DecisionKey> reference =
      run_reference(policy, abilene, demands);
  bool bit_identical = true;
  long total_shed = 0;
  for (const int workers : {1, 2, 4}) {
    long shed = 0;
    const std::vector<DecisionKey> keys =
        run_engine(policy, abilene, demands, workers, &shed, nullptr);
    total_shed += shed;
    const bool match = keys == reference;
    if (!match) bit_identical = false;
    std::printf("identity: %d worker(s) vs plain router: %s (%ld shed)\n",
                workers, match ? "bit-identical" : "MISMATCH", shed);
  }

  // ---- Phase 2: throughput scaling -----------------------------------
  obs::Registry& registry = obs::Registry::instance();
  registry.enable();
  double best_1w = 0.0;
  double best_4w = 0.0;
  double p50 = std::numeric_limits<double>::quiet_NaN();
  double p99 = std::numeric_limits<double>::quiet_NaN();
  for (int rep = 0; rep < kScalingReps; ++rep) {
    double rps = 0.0;
    long shed = 0;
    run_engine(policy, abilene, demands, 1, &shed, &rps);
    total_shed += shed;
    best_1w = std::max(best_1w, rps);

    // Reset so the latency quantiles describe 4-worker serving only.
    registry.reset();
    define_latency_buckets();
    run_engine(policy, abilene, demands, 4, &shed, &rps);
    total_shed += shed;
    if (rps > best_4w) {
      best_4w = rps;
      const obs::Snapshot snap = registry.snapshot();
      for (const auto& [name, h] : snap.histograms) {
        if (name == "serve/engine/latency_us") {
          p50 = obs::histogram_quantile(h, 0.5);
          p99 = obs::histogram_quantile(h, 0.99);
        }
      }
    }
  }
  const double speedup = best_1w > 0.0 ? best_4w / best_1w : 0.0;
  const bool multi_core = cores >= 4;
  std::printf("scaling: 1 worker %.1f req/s, 4 workers %.1f req/s "
              "(%.2fx, %u hardware threads)\n",
              best_1w, best_4w, speedup, cores);
  std::printf("latency @4 workers: p50 %.1f us, p99 %.1f us\n", p50, p99);

  // ---- Verdict -------------------------------------------------------
  bool ok = true;
  auto check = [&](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  check(bit_identical,
        "engine decisions must be bit-identical to the plain router at "
        "every worker count");
  check(total_shed == 0, "an uncontended run must shed nothing");
  check(!std::isnan(p99), "latency histogram must be populated");
  if (multi_core) {
    check(speedup >= 2.0,
          "4 workers must reach >= 2x single-worker throughput on a "
          "multi-core host");
  } else {
    std::printf("scaling assertion skipped: %u hardware thread(s)\n", cores);
  }

  if (json) {
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"schema\": \"gddr.bench_serve_throughput.v1\", "
        "\"requests\": %d, \"hardware_threads\": %u, "
        "\"bit_identical\": %s, \"shed\": %ld, "
        "\"workers_1_rps\": %.1f, \"workers_4_rps\": %.1f, "
        "\"speedup\": %.2f, \"speedup_asserted\": %s, "
        "\"p50_latency_us\": %.1f, \"p99_latency_us\": %.1f, "
        "\"ok\": %s}\n",
        kRequests, cores, bit_identical ? "true" : "false", total_shed,
        best_1w, best_4w, speedup, multi_core ? "true" : "false", p50, p99,
        ok ? "true" : "false");
    try {
      util::write_file_atomic("BENCH_serve_throughput.json", buffer);
      std::printf("wrote BENCH_serve_throughput.json\n");
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "could not write BENCH_serve_throughput.json: %s\n",
                   ex.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
