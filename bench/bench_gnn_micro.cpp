// Microbenchmark: policy forward/backward cost, GNN vs MLP.
//
// Supports the paper's "no learning-time overhead" claim (§VIII, Figure 7
// discussion) with direct per-inference measurements, and quantifies the
// parameter-count scaling argument of §IX: the GNN's parameter count is
// topology-independent while the MLP's grows with |V|^2 and |E|.
//
// The tape is hoisted out of the timing loop and reset per iteration, so
// the numbers measure the steady state the trainer actually runs in: the
// workspace arena recycles every value/grad buffer and iterations perform
// no heap allocation.
//
// Two modes:
//   (default)  Google-Benchmark suite.
//   --json     CI smoke: asserts the optimized kernels reproduce the
//              naive reference exactly (== on every element, including
//              across 1/2/4 pool workers), asserts the arena reaches a
//              steady state with zero new allocations, times the
//              forward+backward hot loop, and writes BENCH_gnn_micro.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "core/scenario.hpp"
#include "nn/kernels.hpp"
#include "nn/optimizer.hpp"
#include "nn/tape.hpp"
#include "topo/zoo.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

Scenario tiny_scenario(const std::string& topology) {
  util::Rng rng(1);
  ScenarioParams p;
  p.sequence_length = 12;
  p.cycle_length = 4;
  p.train_sequences = 1;
  p.test_sequences = 1;
  return make_scenario(topo::by_name(topology), p, rng);
}

void BM_GnnForward(benchmark::State& state, const std::string& topology) {
  const Scenario scenario = tiny_scenario(topology);
  util::Rng prng(2);
  GnnPolicyConfig cfg;
  cfg.memory = 5;
  GnnPolicy policy(cfg, prng);
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);
  nn::Tape tape;
  for (auto _ : state) {
    tape.reset();
    benchmark::DoNotOptimize(policy.action_mean(tape, obs));
  }
  state.SetLabel(topology + " params=" +
                 std::to_string(policy.num_parameters()));
}

void BM_GnnForwardBackward(benchmark::State& state,
                           const std::string& topology) {
  const Scenario scenario = tiny_scenario(topology);
  util::Rng prng(2);
  GnnPolicyConfig cfg;
  cfg.memory = 5;
  GnnPolicy policy(cfg, prng);
  const auto params = policy.parameters();
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);
  nn::Tape tape;
  for (auto _ : state) {
    tape.reset();
    const auto mean = policy.action_mean(tape, obs);
    const auto loss = tape.mean_all(tape.square(mean));
    nn::zero_grads(params);
    tape.backward(loss);
  }
  state.SetLabel(topology);
}

void BM_MlpForward(benchmark::State& state, const std::string& topology) {
  const Scenario scenario = tiny_scenario(topology);
  util::Rng prng(2);
  const int n = scenario.graph.num_nodes();
  MlpPolicy policy(5 * n * n, scenario.graph.num_edges(), MlpPolicyConfig{},
                   prng);
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);
  nn::Tape tape;
  for (auto _ : state) {
    tape.reset();
    benchmark::DoNotOptimize(policy.action_mean(tape, obs));
  }
  state.SetLabel(topology + " params=" +
                 std::to_string(policy.num_parameters()));
}

BENCHMARK_CAPTURE(BM_GnnForward, small, std::string("SmallRing"));
BENCHMARK_CAPTURE(BM_GnnForward, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_GnnForward, geant, std::string("GeantLike"));
BENCHMARK_CAPTURE(BM_GnnForwardBackward, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_GnnForwardBackward, geant, std::string("GeantLike"));
BENCHMARK_CAPTURE(BM_MlpForward, small, std::string("SmallRing"));
BENCHMARK_CAPTURE(BM_MlpForward, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_MlpForward, geant, std::string("GeantLike"));

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Checks every element of the optimized kernels against the naive
// reference (exact ==), serially and through pools of 2 and 4 workers.
// Returns false and prints the first offending shape on mismatch.
bool kernels_match_reference() {
  // Shapes chosen to cover the GNN's hot sizes plus tails: odd dims,
  // k not a multiple of the unroll, single rows/cols.
  const int shapes[][3] = {{74, 66, 32}, {74, 32, 1},  {24, 66, 32},
                           {200, 64, 64}, {1, 32, 32}, {7, 5, 3},
                           {33, 17, 9},   {1, 1, 1}};
  util::ThreadPool pool2(2);
  util::ThreadPool pool4(4);
  util::ThreadPool* pools[] = {nullptr, &pool2, &pool4};
  for (const auto& s : shapes) {
    const int m = s[0];
    const int k = s[1];
    const int n = s[2];
    std::vector<float> a(static_cast<std::size_t>(m) * k);
    std::vector<float> b(static_cast<std::size_t>(k) * n);
    std::vector<float> g(static_cast<std::size_t>(m) * n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = 0.01F * static_cast<float>(i % 17) - 0.05F;
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = 0.02F * static_cast<float>(i % 13) - 0.1F;
    }
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = 0.03F * static_cast<float>(i % 11) - 0.15F;
    }
    std::vector<float> c_ref(static_cast<std::size_t>(m) * n);
    nn::kernels::ref::matmul_nn(m, k, n, a.data(), b.data(), c_ref.data());
    std::vector<float> gx_ref(static_cast<std::size_t>(m) * k, 0.25F);
    nn::kernels::ref::matmul_nt_acc(m, n, k, g.data(), b.data(),
                                    gx_ref.data());
    std::vector<float> gw_ref(static_cast<std::size_t>(k) * n, 0.25F);
    nn::kernels::ref::matmul_tn_acc(m, k, n, a.data(), g.data(),
                                    gw_ref.data());
    for (util::ThreadPool* pool : pools) {
      std::vector<float> c(static_cast<std::size_t>(m) * n);
      nn::kernels::matmul_nn(m, k, n, a.data(), b.data(), c.data(), pool);
      std::vector<float> gx(static_cast<std::size_t>(m) * k, 0.25F);
      nn::kernels::matmul_nt_acc(m, n, k, g.data(), b.data(), gx.data(),
                                 pool);
      std::vector<float> gw(static_cast<std::size_t>(k) * n, 0.25F);
      nn::kernels::matmul_tn_acc(m, k, n, a.data(), g.data(), gw.data(),
                                 pool);
      if (std::memcmp(c.data(), c_ref.data(), c.size() * sizeof(float)) !=
              0 ||
          std::memcmp(gx.data(), gx_ref.data(),
                      gx.size() * sizeof(float)) != 0 ||
          std::memcmp(gw.data(), gw_ref.data(),
                      gw.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FAIL: kernel mismatch vs reference at %dx%dx%d "
                     "(workers=%zu)\n",
                     m, k, n, pool == nullptr ? 1 : pool->size());
        return false;
      }
    }
  }
  return true;
}

int run_json_smoke() {
  std::printf("=== GNN micro smoke: kernel correctness + steady state ===\n");

  const bool kernels_ok = kernels_match_reference();
  std::printf("optimized kernels == naive reference (1/2/4 workers): %s\n",
              kernels_ok ? "yes" : "NO — MISMATCH");

  const Scenario scenario = tiny_scenario("GeantLike");
  util::Rng prng(2);
  GnnPolicyConfig cfg;
  cfg.memory = 5;
  GnnPolicy policy(cfg, prng);
  const auto params = policy.parameters();
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);

  nn::Tape tape;
  const auto step = [&] {
    tape.reset();
    const auto mean = policy.action_mean(tape, obs);
    const auto loss = tape.mean_all(tape.square(mean));
    nn::zero_grads(params);
    tape.backward(loss);
  };

  // Warm up until the arena has seen the full shape population, then
  // require that further iterations allocate nothing new.
  constexpr int kWarmup = 10;
  constexpr int kIters = 100;
  for (int i = 0; i < kWarmup; ++i) step();
  const std::uint64_t misses_before = tape.arena_misses();
  const std::uint64_t reuse_before = tape.arena_reuse();
  const double start = now_seconds();
  for (int i = 0; i < kIters; ++i) step();
  const double seconds = now_seconds() - start;
  const std::uint64_t misses_delta = tape.arena_misses() - misses_before;
  const std::uint64_t reuse_delta = tape.arena_reuse() - reuse_before;
  const double us_per_iter = seconds / kIters * 1e6;

  const bool arena_ok = misses_delta == 0;
  std::printf("forward+backward (GeantLike): %.1f us/iter\n", us_per_iter);
  std::printf("arena steady state: %llu new allocations over %d iters "
              "(%llu buffer reuses), bytes=%llu: %s\n",
              static_cast<unsigned long long>(misses_delta), kIters,
              static_cast<unsigned long long>(reuse_delta),
              static_cast<unsigned long long>(tape.arena_bytes()),
              arena_ok ? "ok" : "NO — ALLOCATING PER ITERATION");

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"kernels_match_reference\": %s,\n"
      "  \"worker_counts_checked\": [1, 2, 4],\n"
      "  \"forward_backward_us\": %.3f,\n"
      "  \"forward_backward_iters\": %d,\n"
      "  \"topology\": \"GeantLike\",\n"
      "  \"arena_steady_state_misses\": %llu,\n"
      "  \"arena_reuse_per_100_iters\": %llu,\n"
      "  \"arena_bytes\": %llu\n"
      "}\n",
      kernels_ok ? "true" : "false", us_per_iter, kIters,
      static_cast<unsigned long long>(misses_delta),
      static_cast<unsigned long long>(reuse_delta),
      static_cast<unsigned long long>(tape.arena_bytes()));
  try {
    util::write_file_atomic("BENCH_gnn_micro.json", json);
    std::printf("wrote BENCH_gnn_micro.json\n");
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "could not write BENCH_gnn_micro.json: %s\n",
                 ex.what());
  }

  const bool ok = kernels_ok && arena_ok;
  if (!ok) std::fprintf(stderr, "FAIL: gnn micro smoke\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return run_json_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
