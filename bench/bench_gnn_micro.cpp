// Microbenchmark: policy forward/backward cost, GNN vs MLP.
//
// Supports the paper's "no learning-time overhead" claim (§VIII, Figure 7
// discussion) with direct per-inference measurements, and quantifies the
// parameter-count scaling argument of §IX: the GNN's parameter count is
// topology-independent while the MLP's grows with |V|^2 and |E|.
#include <benchmark/benchmark.h>

#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "core/scenario.hpp"
#include "nn/optimizer.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

Scenario tiny_scenario(const std::string& topology) {
  util::Rng rng(1);
  ScenarioParams p;
  p.sequence_length = 12;
  p.cycle_length = 4;
  p.train_sequences = 1;
  p.test_sequences = 1;
  return make_scenario(topo::by_name(topology), p, rng);
}

void BM_GnnForward(benchmark::State& state, const std::string& topology) {
  const Scenario scenario = tiny_scenario(topology);
  util::Rng prng(2);
  GnnPolicyConfig cfg;
  cfg.memory = 5;
  GnnPolicy policy(cfg, prng);
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);
  for (auto _ : state) {
    nn::Tape tape;
    benchmark::DoNotOptimize(policy.action_mean(tape, obs));
  }
  state.SetLabel(topology + " params=" +
                 std::to_string(policy.num_parameters()));
}

void BM_GnnForwardBackward(benchmark::State& state,
                           const std::string& topology) {
  const Scenario scenario = tiny_scenario(topology);
  util::Rng prng(2);
  GnnPolicyConfig cfg;
  cfg.memory = 5;
  GnnPolicy policy(cfg, prng);
  const auto params = policy.parameters();
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);
  for (auto _ : state) {
    nn::Tape tape;
    const auto mean = policy.action_mean(tape, obs);
    const auto loss = tape.mean_all(tape.square(mean));
    nn::zero_grads(params);
    tape.backward(loss);
  }
  state.SetLabel(topology);
}

void BM_MlpForward(benchmark::State& state, const std::string& topology) {
  const Scenario scenario = tiny_scenario(topology);
  util::Rng prng(2);
  const int n = scenario.graph.num_nodes();
  MlpPolicy policy(5 * n * n, scenario.graph.num_edges(), MlpPolicyConfig{},
                   prng);
  const auto obs = RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 5, 5);
  for (auto _ : state) {
    nn::Tape tape;
    benchmark::DoNotOptimize(policy.action_mean(tape, obs));
  }
  state.SetLabel(topology + " params=" +
                 std::to_string(policy.num_parameters()));
}

BENCHMARK_CAPTURE(BM_GnnForward, small, std::string("SmallRing"));
BENCHMARK_CAPTURE(BM_GnnForward, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_GnnForward, geant, std::string("GeantLike"));
BENCHMARK_CAPTURE(BM_GnnForwardBackward, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_GnnForwardBackward, geant, std::string("GeantLike"));
BENCHMARK_CAPTURE(BM_MlpForward, small, std::string("SmallRing"));
BENCHMARK_CAPTURE(BM_MlpForward, abilene, std::string("Abilene"));
BENCHMARK_CAPTURE(BM_MlpForward, geant, std::string("GeantLike"));

}  // namespace
