// Ablation: DAG-pruning algorithm for the softmin translation (paper
// Figure 3 vs the distance-monotone alternatives; DESIGN.md §4).
//
// Reports, per mode: how many edges the per-flow DAG retains (multipath
// headroom) and the resulting U_max ratio for neutral and random weights.
// This is the experiment behind the repository's choice of
// kDistanceToSink as the default prune mode.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "routing/prune.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

namespace {

using namespace gddr;

const char* mode_name(routing::PruneMode mode) {
  switch (mode) {
    case routing::PruneMode::kFrontierMeet:
      return "frontier-meet (paper Fig. 3)";
    case routing::PruneMode::kDistanceToSink:
      return "downhill / dist-to-sink";
    case routing::PruneMode::kDistanceFromSource:
      return "dist-from-source";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Ablation: per-flow DAG pruning mode ===\n");

  const auto g = topo::abilene();
  ScenarioParams params = experiment_scenario_params();
  params.train_sequences = 1;
  params.test_sequences = 1;
  util::Rng rng(3);
  const Scenario scenario = make_scenario(topo::abilene(), params, rng);
  const int memory = 5;

  util::Table table({"prune mode", "mean DAG edges/flow (unit w)",
                     "mean DAG edges/flow (random w)", "neutral ratio",
                     "random-w ratio"});
  for (const auto mode : {routing::PruneMode::kFrontierMeet,
                          routing::PruneMode::kDistanceToSink,
                          routing::PruneMode::kDistanceFromSource}) {
    // DAG sizes over all flows.
    auto mean_edges = [&](const std::vector<double>& weights) {
      long total = 0;
      long flows = 0;
      for (graph::NodeId s = 0; s < g.num_nodes(); ++s) {
        for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
          if (s == t) continue;
          const auto mask = routing::prune_dag(g, s, t, weights, mode);
          for (const bool kept : mask) total += kept ? 1 : 0;
          ++flows;
        }
      }
      return static_cast<double>(total) / static_cast<double>(flows);
    };
    const auto unit = graph::unit_weights(g);
    util::Rng wrng(17);
    std::vector<double> random_w(static_cast<size_t>(g.num_edges()));
    for (auto& w : random_w) w = wrng.uniform(0.5, 3.0);

    routing::SoftminOptions options;
    options.prune_mode = mode;
    mcf::OptimalCache cache;
    const auto neutral = evaluate_fixed(
        {scenario}, memory, cache, [&](const graph::DiGraph& gr) {
          const std::vector<double> w(
              static_cast<size_t>(gr.num_edges()), 1.0);
          return routing::softmin_routing(gr, w, options);
        });
    const auto random_eval = evaluate_fixed(
        {scenario}, memory, cache, [&](const graph::DiGraph& gr) {
          return routing::softmin_routing(gr, random_w, options);
        });

    table.add_row({mode_name(mode), util::fmt(mean_edges(unit), 2),
                   util::fmt(mean_edges(random_w), 2),
                   util::fmt(neutral.mean_ratio),
                   util::fmt(random_eval.mean_ratio)});
  }
  table.print();
  std::printf("\nreading: the paper's frontier-meet algorithm collapses to "
              "near-trees when weights tie (few DAG edges -> no multipath "
              "for softmin to spread over), while the downhill DAG retains "
              "every progress-making edge; all modes remain loop-free.\n");
  return 0;
}
