// Figure 8 reproduction: generalising to unseen graphs.
//
// Paper setup (§VIII-D): train and test the two GNN policies on (a) a
// mixture of entirely different Topology-Zoo graphs between half and
// double the size of Abilene, and (b) Abilene with small random
// modifications (1-2 node/edge additions/deletions).  The MLP cannot be
// applied here at all — its input/output sizes are fixed to one topology.
// Bars are the mean U_max ratio on test demand sequences; the dotted line
// is shortest-path routing.
//
// Paper's qualitative result: both GNN policies generalise (stay at or
// below the shortest-path line), with the iterative policy performing
// better; the "different graphs" bars sit higher than the "similar
// graphs" bars because softmin routing is further from the multipath
// optimum on some of those structures.
#include <cstdio>
#include <memory>

#include "core/evaluate.hpp"
#include "obs/sink.hpp"
#include "core/experiment.hpp"
#include "core/iterative_env.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "topo/mutate.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

// Fixed vec-env count (independent of --workers) so trajectories are
// bit-identical whatever the thread count.
constexpr int kVecEnvs = 4;

struct SetResult {
  EvalResult gnn;
  EvalResult iterative;
  EvalResult shortest_path;
};

SetResult run_set(const std::vector<Scenario>& scenarios, int memory,
                  std::uint64_t seed_base, util::ThreadPool& pool) {
  SetResult result;
  {
    mcf::OptimalCache cache;
    result.shortest_path =
        evaluate_shortest_path(scenarios, memory, cache, &pool);
  }
  {
    const long steps = bench_train_steps(6000);
    EnvConfig env_cfg;
    env_cfg.memory = memory;
    const auto envs = make_vec_envs(scenarios, env_cfg, seed_base, kVecEnvs);
    std::vector<rl::Env*> env_ptrs;
    for (const auto& env : envs) env_ptrs.push_back(env.get());
    util::Rng prng(seed_base + 1);
    GnnPolicy policy(experiment_gnn_config(memory), prng);
    rl::PpoTrainer trainer(policy, env_ptrs, routing_ppo_config(),
                           seed_base + 2, &pool);
    std::printf("  training GNN for %ld steps...\n", steps);
    trainer.train(steps);
    result.gnn = evaluate_policy(trainer, *envs.front(), &pool);
  }
  {
    const long steps = bench_train_steps(6000) * 2;
    IterativeEnvConfig env_cfg;
    env_cfg.memory = memory;
    // Vectorised by hand (no make_vec_envs overload): env i seeded
    // seed_base+3+i, all sharing env 0's LP cache.
    std::vector<std::unique_ptr<IterativeRoutingEnv>> envs;
    for (int i = 0; i < kVecEnvs; ++i) {
      envs.push_back(std::make_unique<IterativeRoutingEnv>(
          scenarios, env_cfg, seed_base + 3 + static_cast<std::uint64_t>(i)));
      if (i > 0) envs.back()->set_shared_cache(envs.front()->shared_cache());
    }
    std::vector<rl::Env*> env_ptrs;
    for (const auto& env : envs) env_ptrs.push_back(env.get());
    util::Rng prng(seed_base + 4);
    IterativeGnnPolicy policy(experiment_iterative_gnn_config(memory), prng);
    rl::PpoTrainer trainer(
        policy, env_ptrs, iterative_ppo_config(envs.front()->edges_per_step()),
        seed_base + 5, &pool);
    std::printf("  training GNN-Iterative for %ld micro-steps...\n", steps);
    trainer.train(steps);
    result.iterative = evaluate_policy(trainer, *envs.front(), &pool);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const int workers = util::consume_workers_flag(argc, argv);
  const obs::MetricsOptions metrics = obs::consume_metrics_flag(argc, argv);
  obs::apply(metrics);
  util::ThreadPool pool(workers);
  std::printf("=== Figure 8: generalising to unseen graphs ===\n");
  std::printf("%d worker(s), %d vectorised envs\n", workers, kVecEnvs);

  const int memory = 5;
  const ScenarioParams params = experiment_scenario_params();

  // (a) entirely different topologies, half to (nearly) double Abilene's
  // size.  The 20+-node catalogue entries are excluded only to keep the
  // default bench runtime in minutes — their optimal-MCF LPs cost ~1 s
  // per demand matrix on one core (see bench_lp_micro).
  util::Rng rng_a(20210303);
  std::vector<Scenario> different;
  for (auto& s : make_size_band_scenarios(rng_a, params, 6, 18)) {
    if (s.graph.name() != "Abilene" && s.graph.name() != "AbileneHet") {
      different.push_back(std::move(s));
    }
  }
  std::printf("different-graphs set: %zu topologies\n", different.size());
  for (const auto& s : different) {
    std::printf("  %-12s |V|=%2d |E|=%2d\n", s.graph.name().c_str(),
                s.graph.num_nodes(), s.graph.num_edges());
  }
  const SetResult a = run_set(different, memory, 100, pool);

  // (b) Abilene with 1-2 random modifications.
  util::Rng rng_b(20210404);
  std::vector<Scenario> similar;
  {
    const graph::DiGraph base = topo::abilene_heterogeneous();
    for (int i = 0; i < 4; ++i) {
      const int mutations = 1 + static_cast<int>(rng_b.uniform_index(2));
      similar.push_back(
          make_scenario(topo::mutate(base, mutations, rng_b), params, rng_b));
    }
  }
  std::printf("similar-graphs set: %zu mutated AbileneHet variants\n",
              similar.size());
  const SetResult b = run_set(similar, memory, 200, pool);

  std::printf("\nBar heights (mean U_max_agent / U_max_optimal on test "
              "DMs; lower is better):\n");
  util::Table table({"policy", "different graphs", "similar graphs"});
  table.add_row({"GNN", util::fmt(a.gnn.mean_ratio),
                 util::fmt(b.gnn.mean_ratio)});
  table.add_row({"GNN-Iterative", util::fmt(a.iterative.mean_ratio),
                 util::fmt(b.iterative.mean_ratio)});
  table.add_row({"shortest-path (dotted line)",
                 util::fmt(a.shortest_path.mean_ratio),
                 util::fmt(b.shortest_path.mean_ratio)});
  table.print();

  std::printf("\npaper expectation: GNN policies generalise across both "
              "sets (at or below the shortest-path line); the iterative "
              "policy does at least as well as the one-shot GNN; the "
              "'different graphs' ratios sit higher than the 'similar "
              "graphs' ratios.\n");
  std::printf("note: the MLP baseline is structurally inapplicable here — "
              "its input/output dimensions are fixed to a single topology "
              "(the paper makes the same observation).\n");
  const std::string metrics_summary = obs::finish(metrics);
  if (!metrics_summary.empty()) std::printf("%s\n", metrics_summary.c_str());
  return 0;
}
