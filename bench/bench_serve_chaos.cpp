// Chaos harness for the resilient serving pipeline (serve::RobustRouter).
//
// Three phases:
//  1. Overhead — the fault-free serving path vs the bare inference
//     pipeline (observation, policy forward, softmin, simulation) on the
//     same request stream; reports the router's added latency.  The
//     acceptance target is ~1% on a quiet machine; the hard assertion is
//     deliberately lenient (15%) so sanitiser and CI-noise runs pass.
//  2. Chaos sweep — every single-link and single-node failure of two
//     embedded topologies, served under an armed fault schedule
//     (GDDR_FAULTS when set, a default mix otherwise).  Asserts the
//     serving contract: no exception ever escapes decide(), and every
//     decision that routes traffic satisfies the full §IV-A validity
//     check (out-of-band routing::validate over all reachable pairs).
//  3. Breaker cycle — forces rung-1 failures until the circuit breaker
//     trips, lets the backoff elapse, and asserts the half-open probe
//     recovers the top rung.
//
// --json writes BENCH_serve_chaos.json ("gddr.bench_serve_chaos.v1") for
// the CI chaos smoke leg.  Exit code 0 iff every assertion held.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "core/scenario.hpp"
#include "rl/forward.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"
#include "serve/router.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/fault.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace {

using namespace gddr;

constexpr int kOverheadRequests = 32;
constexpr int kOverheadReps = 3;
constexpr int kChaosRequests = 10;
constexpr const char* kDefaultSchedule =
    "policy_nan@2,request_garbage@4,policy_slow@6,topo_change@8";

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Tally {
  long requests = 0;
  long exceptions = 0;
  long invalid_routings = 0;
  long rungs[static_cast<int>(serve::Rung::kRungCount)] = {};
  long deadline_exhausted = 0;
  long unroutable_dropped = 0;
  long sanitized_requests = 0;
  bool top_rung_recovered = true;
};

serve::RouterConfig chaos_config() {
  serve::RouterConfig config;
  config.deadline = std::chrono::seconds(5);  // generous: CI boxes crawl
  return config;
}

std::vector<traffic::DemandMatrix> make_demands(const graph::DiGraph& g,
                                                int count,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.3;
  std::vector<traffic::DemandMatrix> demands;
  demands.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    demands.push_back(traffic::bimodal_matrix(g.num_nodes(), params, rng));
  }
  return demands;
}

// A demand of 1 on every reachable off-diagonal pair: validating the
// decision's routing against it checks the §IV-A contract on every pair
// the topology can serve, not just the pairs this request used.
traffic::DemandMatrix reachable_mesh(const graph::DiGraph& g,
                                     const std::vector<bool>& reachable) {
  const int n = g.num_nodes();
  traffic::DemandMatrix dm(n);
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (s != t && reachable[static_cast<size_t>(s) * static_cast<size_t>(n) +
                              static_cast<size_t>(t)]) {
        dm.set(s, t, 1.0);
      }
    }
  }
  return dm;
}

// Serves `demands` through `router`, validating every decision
// out-of-band.  History handling mirrors gddr_cli serve-sim.
void drive(serve::RobustRouter& router, const graph::DiGraph& g,
           const std::vector<traffic::DemandMatrix>& demands, Tally& tally) {
  traffic::DemandSequence history;
  for (size_t i = 0; i < demands.size(); ++i) {
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = demands[i];
    request.history = history;
    serve::RouteDecision decision;
    try {
      decision = router.decide(request);
    } catch (...) {
      ++tally.exceptions;
      continue;
    }
    ++tally.requests;
    ++tally.rungs[static_cast<int>(decision.rung)];
    if (decision.deadline_exhausted) ++tally.deadline_exhausted;
    tally.unroutable_dropped += decision.sanitize.unroutable_entries;
    if (!decision.sanitize.clean()) ++tally.sanitized_requests;

    if (decision.rung == serve::Rung::kDropTraffic) {
      // Dropping all traffic is always contract-clean, but only if it
      // really did drop everything.
      if (decision.routed_demand != 0.0 || decision.sim.u_max != 0.0) {
        ++tally.invalid_routings;
      }
    } else {
      const serve::TopologyCache::EntryPtr entry =
          router.topology_cache().acquire(g);
      const traffic::DemandMatrix mesh = reachable_mesh(g, entry->reachable);
      std::string error;
      if (!routing::validate(g, decision.routing, mesh, &error)) {
        ++tally.invalid_routings;
        std::fprintf(stderr, "INVALID ROUTING (%s): %s\n",
                     serve::rung_name(decision.rung), error.c_str());
      }
    }
    if (i + 1 == demands.size() &&
        decision.rung != serve::Rung::kGnnPolicy) {
      // With the one-shot schedule spent, the final request must be back
      // on the learned rung.
      tally.top_rung_recovered = false;
    }
    history.push_back(request.demand);
    if (static_cast<int>(history.size()) > router.config().memory) {
      history.erase(history.begin());
    }
  }
}

// Bare inference pipeline: what a non-robust server would run.
double direct_pipeline_seconds(core::GnnPolicy& policy,
                               const core::Scenario& scenario,
                               const std::vector<traffic::DemandMatrix>& demands,
                               int memory) {
  const graph::DiGraph& g = scenario.graph;
  const double start = now_seconds();
  traffic::DemandSequence history;
  for (const auto& dm : demands) {
    traffic::DemandSequence window;
    const int have = std::min<int>(static_cast<int>(history.size()), memory);
    for (int i = 0; i < memory - have; ++i) window.emplace_back(g.num_nodes());
    for (int i = have; i > 0; --i) {
      window.push_back(history[history.size() - static_cast<size_t>(i)]);
    }
    const rl::Observation obs = core::RoutingEnv::build_observation(
        scenario, window, memory, memory);
    const rl::PolicyForward forward = rl::forward_policy(policy, obs);
    const std::vector<double> weights =
        routing::weights_from_actions(forward.mean, 0.5, 3.0);
    const routing::Routing strategy = routing::softmin_routing(g, weights);
    const routing::SimulationResult sim = routing::simulate(g, strategy, dm);
    (void)sim;
    history.push_back(dm);
    if (static_cast<int>(history.size()) > memory) history.erase(history.begin());
  }
  return now_seconds() - start;
}

double router_pipeline_seconds(serve::RobustRouter& router,
                               const graph::DiGraph& g,
                               const std::vector<traffic::DemandMatrix>& demands) {
  const double start = now_seconds();
  traffic::DemandSequence history;
  for (const auto& dm : demands) {
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = dm;
    request.history = history;
    const serve::RouteDecision decision = router.decide(request);
    (void)decision;
    history.push_back(dm);
    if (static_cast<int>(history.size()) > router.config().memory) {
      history.erase(history.begin());
    }
  }
  return now_seconds() - start;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  util::Rng policy_rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), policy_rng);

  // ---- Phase 1: fault-free overhead ----------------------------------
  util::FaultInjector::instance().disarm();
  const graph::DiGraph abilene = topo::by_name("Abilene");
  core::Scenario scenario;
  scenario.graph = abilene;
  const auto overhead_demands = make_demands(abilene, kOverheadRequests, 11);
  double best_direct = 1e300;
  double best_router = 1e300;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    best_direct = std::min(
        best_direct,
        direct_pipeline_seconds(policy, scenario, overhead_demands, 5));
    serve::RobustRouter router(&policy, chaos_config());
    // Warm the topology cache outside the timed window: cache-miss setup
    // is a once-per-topology cost, not per-request overhead.
    (void)router_pipeline_seconds(router, abilene, {overhead_demands[0]});
    best_router = std::min(
        best_router,
        router_pipeline_seconds(router, abilene, overhead_demands));
  }
  const double overhead_pct =
      best_direct > 0.0 ? (best_router - best_direct) / best_direct * 100.0
                        : 0.0;
  std::printf("overhead: direct %.3f ms/req, router %.3f ms/req "
              "(%+.2f%%)\n",
              best_direct / kOverheadRequests * 1e3,
              best_router / kOverheadRequests * 1e3, overhead_pct);

  // ---- Phase 2: chaos sweep over link/node failures ------------------
  const char* env_schedule = std::getenv("GDDR_FAULTS");
  const std::string schedule =
      env_schedule != nullptr && env_schedule[0] != '\0' ? env_schedule
                                                         : kDefaultSchedule;
  Tally tally;
  int scenarios_swept = 0;
  for (const char* name : {"AbileneHet", "Nsfnet"}) {
    const graph::DiGraph base = topo::by_name(name);
    std::vector<graph::DiGraph> variants;
    variants.push_back(base);
    for (graph::EdgeId e = 0; e < base.num_edges(); ++e) {
      variants.push_back(base.without_edge(e));
    }
    for (graph::NodeId v = 0; v < base.num_nodes(); ++v) {
      variants.push_back(base.without_node(v));
    }
    serve::RobustRouter router(&policy, chaos_config());
    for (size_t i = 0; i < variants.size(); ++i) {
      // Re-arm per scenario so the one-shot schedule fires in each run.
      util::FaultInjector::instance().arm(schedule);
      const auto demands = make_demands(variants[i], kChaosRequests,
                                        100 + static_cast<std::uint64_t>(i));
      drive(router, variants[i], demands, tally);
      ++scenarios_swept;
    }
  }
  util::FaultInjector::instance().disarm();
  std::printf("chaos: %d scenarios, %ld requests, %ld exceptions, "
              "%ld invalid routings, %ld unroutable entries dropped, "
              "%ld sanitised, %ld deadline-exhausted, recovery %s\n",
              scenarios_swept, tally.requests, tally.exceptions,
              tally.invalid_routings, tally.unroutable_dropped,
              tally.sanitized_requests, tally.deadline_exhausted,
              tally.top_rung_recovered ? "yes" : "NO");
  std::printf("chaos rungs: policy %ld, last-good %ld, inv-capacity %ld, "
              "shortest-path %ld, drop %ld\n",
              tally.rungs[0], tally.rungs[1], tally.rungs[2], tally.rungs[3],
              tally.rungs[4]);

  // ---- Phase 3: breaker trip -> half-open probe -> recovery ----------
  serve::RouterConfig breaker_config = chaos_config();
  breaker_config.breaker.failure_threshold = 2;
  breaker_config.breaker.initial_backoff = std::chrono::milliseconds(2);
  serve::RobustRouter breaker_router(&policy, breaker_config);
  const auto cycle_demands = make_demands(abilene, 4, 23);
  Tally trip_tally;
  util::FaultInjector::instance().arm("policy_nan@1+");
  drive(breaker_router, abilene, cycle_demands, trip_tally);
  util::FaultInjector::instance().disarm();
  const bool tripped = breaker_router.breaker().stats().trips >= 1;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Tally probe_tally;
  drive(breaker_router, abilene, cycle_demands, probe_tally);
  const serve::CircuitBreaker::Stats breaker_stats =
      breaker_router.breaker().stats();
  const bool recovered = breaker_stats.recoveries >= 1 &&
                         probe_tally.rungs[0] > 0;
  std::printf("breaker: %ld trips, %ld probes, %ld recoveries "
              "(tripped %s, recovered %s)\n",
              breaker_stats.trips, breaker_stats.probes,
              breaker_stats.recoveries, tripped ? "yes" : "NO",
              recovered ? "yes" : "NO");

  // ---- Verdict -------------------------------------------------------
  bool ok = true;
  auto check = [&](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  check(tally.exceptions == 0 && trip_tally.exceptions == 0 &&
            probe_tally.exceptions == 0,
        "no exception may escape decide()");
  check(tally.invalid_routings == 0 && trip_tally.invalid_routings == 0 &&
            probe_tally.invalid_routings == 0,
        "every decision must be a valid routing");
  check(tally.top_rung_recovered,
        "chaos runs must recover the learned rung after faults pass");
  check(tripped, "breaker must trip under persistent rung-1 failure");
  check(recovered, "breaker must recover via a half-open probe");
  check(overhead_pct < 15.0, "fault-free overhead must stay small");

  if (json) {
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"schema\": \"gddr.bench_serve_chaos.v1\", "
        "\"overhead_pct\": %.3f, \"scenarios\": %d, \"requests\": %ld, "
        "\"exceptions\": %ld, \"invalid_routings\": %ld, "
        "\"unroutable_dropped\": %ld, \"sanitized_requests\": %ld, "
        "\"deadline_exhausted\": %ld, "
        "\"rungs\": {\"gnn_policy\": %ld, \"last_known_good\": %ld, "
        "\"inverse_capacity\": %ld, \"shortest_path\": %ld, "
        "\"drop_traffic\": %ld}, "
        "\"breaker_trips\": %ld, \"breaker_probes\": %ld, "
        "\"breaker_recoveries\": %ld, \"top_rung_recovered\": %s, "
        "\"ok\": %s}\n",
        overhead_pct, scenarios_swept, tally.requests, tally.exceptions,
        tally.invalid_routings, tally.unroutable_dropped,
        tally.sanitized_requests, tally.deadline_exhausted, tally.rungs[0],
        tally.rungs[1], tally.rungs[2], tally.rungs[3], tally.rungs[4],
        breaker_stats.trips, breaker_stats.probes, breaker_stats.recoveries,
        tally.top_rung_recovered ? "true" : "false", ok ? "true" : "false");
    try {
      util::write_file_atomic("BENCH_serve_chaos.json", buffer);
      std::printf("wrote BENCH_serve_chaos.json\n");
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "could not write BENCH_serve_chaos.json: %s\n",
                   ex.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
