// Ablation: the softmin spread parameter gamma (paper Eq. 3).
//
// Gamma controls how concentrated the softmin splitting ratios are: small
// gamma spreads traffic across the per-flow DAG (ECMP-like), large gamma
// approaches weighted shortest-path routing.  The iterative GDDR policy
// learns gamma (paper Eq. 7); this bench maps the landscape it learns
// over, for neutral and for randomly perturbed weight vectors.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Ablation: softmin gamma (paper Eq. 3) ===\n");

  ScenarioParams params = experiment_scenario_params();
  params.train_sequences = 1;
  util::Rng rng(11);
  const Scenario scenario = make_abilene_scenario(rng, params);
  mcf::OptimalCache cache;
  const int memory = 5;

  util::Table table({"gamma", "neutral weights", "random weights (mean of 5)"});
  for (const double gamma : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    routing::SoftminOptions options;
    options.gamma = gamma;

    const auto neutral = evaluate_fixed(
        {scenario}, memory, cache, [&](const graph::DiGraph& g) {
          const std::vector<double> w(
              static_cast<size_t>(g.num_edges()), 1.0);
          return routing::softmin_routing(g, w, options);
        });

    util::Rng wrng(13);
    double random_sum = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      const auto random = evaluate_fixed(
          {scenario}, memory, cache, [&](const graph::DiGraph& g) {
            std::vector<double> w(static_cast<size_t>(g.num_edges()));
            for (auto& x : w) x = wrng.uniform(0.5, 3.0);
            return routing::softmin_routing(g, w, options);
          });
      random_sum += random.mean_ratio;
    }
    table.add_row({util::fmt(gamma, 2), util::fmt(neutral.mean_ratio),
                   util::fmt(random_sum / 5.0)});
  }
  table.print();
  std::printf("\nreading: with neutral (all-equal) weights gamma is inert "
              "— every retained out-edge has the same softmin cost — while "
              "with non-uniform weights small gamma hedges across paths "
              "and large gamma hard-commits to the weighted shortest "
              "path.  This is why the iterative policy benefits from "
              "learning gamma jointly with the weights.\n");
  return 0;
}
