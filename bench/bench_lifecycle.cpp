// Chaos bench for the policy lifecycle subsystem (src/lifecycle).
//
// Three stages:
//  1. Hot-swap storm — six distinct policies are published into a fresh
//     registry; while a 2-worker engine serves a request stream, the
//     live policy is hot-swapped round-robin between all six at least
//     twenty times.  Assertions: nothing is shed, nothing degrades off
//     rung 1, every decision is attributable to exactly one published
//     version, and every decision is *bit-identical* to a reference
//     RobustRouter running the same version on the same request (the
//     requests carry empty histories, so a decision depends only on the
//     (version, demand) pair — any torn or mid-batch swap would break
//     the replay).
//  2. Promotion — a candidate with identical weights to the incumbent
//     is staged through a Promoter over live traffic: ties count as
//     wins, so it must clear shadow and canary and go live with zero
//     rollbacks.
//  3. Rollback — the same staging with GDDR-injected candidate_nan: the
//     candidate's first shadow mirror produces NaN action means and the
//     promoter must roll back immediately, leaving the incumbent live.
//
// --json writes BENCH_lifecycle.json ("gddr.bench_lifecycle.v1") for
// the CI smoke leg.  Exit code 0 iff every assertion held.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "lifecycle/promoter.hpp"
#include "lifecycle/registry.hpp"
#include "nn/serialize.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/fault.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace {

using namespace gddr;

constexpr int kVersions = 6;
constexpr int kRequests = 384;
constexpr int kSwapEvery = 16;  // one swap per 16 submissions -> 24 swaps

struct DecisionKey {
  serve::Rung rung;
  double u_max;
  double routed_demand;
};

bool operator==(const DecisionKey& a, const DecisionKey& b) {
  // Exact on purpose: the claim is bit-identity per policy version.
  return a.rung == b.rung && a.u_max == b.u_max &&
         a.routed_demand == b.routed_demand;
}

bool g_ok = true;

void check(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    g_ok = false;
  }
}

// Publishes `count` distinct random-init policies and returns the fresh
// registry (directory wiped first).
std::unique_ptr<lifecycle::ModelRegistry> make_registry(
    const std::string& dir, int count) {
  std::filesystem::remove_all(dir);
  lifecycle::RegistryConfig config;
  config.retention = count + 2;
  config.policy = core::experiment_gnn_config(5);
  auto registry = std::make_unique<lifecycle::ModelRegistry>(dir, config);
  for (int i = 0; i < count; ++i) {
    util::Rng rng(100 + static_cast<std::uint64_t>(i));
    core::GnnPolicy policy(config.policy, rng);
    const std::vector<nn::Parameter*> params = policy.parameters();
    const std::string path = dir + "/seed.gddrparm";
    nn::save_parameters(path, params);
    registry->publish_file(path);
    std::filesystem::remove(path);
  }
  return registry;
}

std::vector<traffic::DemandMatrix> make_demands(const graph::DiGraph& g,
                                                int count,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.3;
  std::vector<traffic::DemandMatrix> demands;
  demands.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    demands.push_back(traffic::bimodal_matrix(g.num_nodes(), params, rng));
  }
  return demands;
}

serve::RouterConfig router_config() {
  serve::RouterConfig config;
  config.deadline = std::chrono::seconds(5);  // generous: CI boxes crawl
  return config;
}

// ---- Stage 1: hot-swap storm ----------------------------------------

long run_swap_storm(const lifecycle::ModelRegistry& registry,
                    const graph::DiGraph& g,
                    const std::vector<traffic::DemandMatrix>& demands) {
  const std::vector<lifecycle::RegistryEntry> entries = registry.entries();
  std::vector<lifecycle::PolicySlot::Value> versions;
  versions.reserve(entries.size());
  for (const lifecycle::RegistryEntry& entry : entries) {
    versions.push_back({registry.load(entry.version), entry.version});
  }

  serve::EngineConfig config;
  config.workers = 2;
  config.queue_capacity = demands.size();
  config.max_batch = 8;
  config.router = router_config();
  serve::Engine engine(nullptr, config);
  engine.set_policy(versions[0].policy, versions[0].version);

  // Submit the stream, hot-swapping the live policy every kSwapEvery
  // submissions while both workers serve concurrently.
  std::vector<std::future<serve::ServeOutcome>> futures;
  futures.reserve(demands.size());
  std::size_t next_version = 1;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (i > 0 && i % kSwapEvery == 0) {
      // Backpressure: wait for the previous chunk to finish serving so
      // the swap really lands mid-stream (otherwise submission outruns
      // the workers and only the last version ever serves a batch).
      futures[i - 1].wait();
      const lifecycle::PolicySlot::Value& v =
          versions[next_version++ % versions.size()];
      engine.set_policy(v.policy, v.version);
    }
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = demands[i];
    // Empty history: the decision depends only on (version, demand),
    // which is what makes the per-version replay below exact.
    futures.push_back(engine.submit(std::move(request)));
  }
  engine.shutdown();

  long shed = 0;
  std::vector<std::uint64_t> served_version(demands.size(), 0);
  std::vector<DecisionKey> served_key(demands.size());
  std::map<std::uint64_t, long> per_version;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::ServeOutcome outcome = futures[i].get();
    if (outcome.shed) {
      ++shed;
      continue;
    }
    check(outcome.decision.rung == serve::Rung::kGnnPolicy,
          "storm: every decision must be served by the live policy rung");
    check(!outcome.decision.served_by_candidate,
          "storm: no candidate was ever armed");
    served_version[i] = outcome.decision.policy_version;
    served_key[i] = {outcome.decision.rung, outcome.decision.sim.u_max,
                     outcome.decision.routed_demand};
    ++per_version[outcome.decision.policy_version];
  }
  check(shed == 0, "storm: an uncontended run must shed nothing");

  const long swaps = engine.swaps() - 1;  // minus the initial install
  std::printf("storm: %zu requests, %ld hot swaps, %zu versions served\n",
              demands.size(), swaps, per_version.size());
  check(swaps >= 20, "storm: at least 20 live hot swaps");
  check(per_version.size() >= 2, "storm: more than one version served");

  // Per-version replay: a reference router pinned to version v must
  // reproduce every decision attributed to v bit-for-bit.
  for (const auto& [version, count] : per_version) {
    const lifecycle::PolicySlot::Value* value = nullptr;
    for (const lifecycle::PolicySlot::Value& v : versions) {
      if (v.version == version) value = &v;
    }
    check(value != nullptr,
          "storm: every served version must be a published version");
    if (value == nullptr) continue;
    serve::RobustRouter reference(
        const_cast<core::GnnPolicy*>(value->policy.get()), router_config());
    long mismatches = 0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (served_version[i] != version) continue;
      serve::RouteRequest request;
      request.graph = &g;
      request.demand = demands[i];
      const serve::RouteDecision decision = reference.decide(request);
      const DecisionKey key{decision.rung, decision.sim.u_max,
                            decision.routed_demand};
      if (!(key == served_key[i])) ++mismatches;
    }
    std::printf("storm: v%llu served %ld decision(s), %ld replay "
                "mismatch(es)\n",
                static_cast<unsigned long long>(version), count, mismatches);
    check(mismatches == 0,
          "storm: decisions must replay bit-identically per version");
  }
  return swaps;
}

// ---- Stages 2 and 3: promotion and rollback -------------------------

struct LifecycleRun {
  lifecycle::PromoteState state = lifecycle::PromoteState::kIdle;
  std::uint64_t live_version = 0;
  long rollbacks = 0;
  long swaps = 0;
};

// Serves a stream through an inline engine with a Promoter staged on
// `candidate_version`, the incumbent installed first.
LifecycleRun run_promoter(lifecycle::ModelRegistry& registry,
                          const graph::DiGraph& g,
                          const std::vector<traffic::DemandMatrix>& demands,
                          std::uint64_t incumbent_version,
                          std::uint64_t candidate_version) {
  serve::EngineConfig config;
  config.workers = 0;
  config.max_batch = 1;
  config.router = router_config();
  serve::Engine engine(nullptr, config);
  engine.set_policy(registry.load(incumbent_version), incumbent_version);

  lifecycle::PromoterConfig pcfg;
  pcfg.shadow_fraction = 0.25;
  pcfg.canary_fraction = 0.25;
  pcfg.promote_after = 10;
  pcfg.canary_decisions = 5;
  pcfg.router = config.router;
  lifecycle::Promoter promoter(registry, engine, pcfg);
  engine.set_decision_observer(
      [&promoter](const serve::RouteRequest& request,
                  const serve::DecisionRecord& record) {
        promoter.observe(request, record);
      });
  promoter.stage(candidate_version);

  std::vector<std::future<serve::ServeOutcome>> futures;
  futures.reserve(demands.size());
  traffic::DemandSequence history;
  for (const traffic::DemandMatrix& dm : demands) {
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = dm;
    request.history = history;
    history.push_back(dm);
    if (static_cast<int>(history.size()) > config.router.memory) {
      history.erase(history.begin());
    }
    futures.push_back(engine.submit(std::move(request)));
    engine.poll();
  }
  engine.shutdown();
  for (auto& future : futures) (void)future.get();

  LifecycleRun out;
  const lifecycle::Promoter::Summary summary = promoter.summary();
  out.state = summary.state;
  out.live_version = engine.live_version();
  out.rollbacks = summary.rollbacks;
  out.swaps = engine.swaps();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const graph::DiGraph abilene = topo::by_name("Abilene");
  const auto demands = make_demands(abilene, kRequests, 11);

  // Stage 1: hot-swap storm over six distinct published versions.
  const auto storm_registry =
      make_registry("bench_lifecycle_storm.tmp", kVersions);
  const long swaps = run_swap_storm(*storm_registry, abilene, demands);

  // Stage 2: a tied candidate must promote (ties are wins).
  const auto promo_registry = make_registry("bench_lifecycle_promo.tmp", 1);
  {
    // Republish v1's bytes as v2: an identical-weights candidate.
    const std::string source = promo_registry->dir() + "/" +
                               promo_registry->entries().front().filename;
    promo_registry->publish_file(source);
  }
  const std::vector<traffic::DemandMatrix> promo_demands =
      make_demands(abilene, 120, 29);
  const LifecycleRun promoted =
      run_promoter(*promo_registry, abilene, promo_demands, 1, 2);
  std::printf("promotion: state %s, live v%llu, %ld rollback(s), %ld "
              "swap(s)\n",
              lifecycle::to_string(promoted.state),
              static_cast<unsigned long long>(promoted.live_version),
              promoted.rollbacks, promoted.swaps);
  check(promoted.state == lifecycle::PromoteState::kLive,
        "promotion: tied candidate must reach kLive");
  check(promoted.live_version == 2,
        "promotion: the candidate version must be live");
  check(promoted.rollbacks == 0, "promotion: no rollback on a clean run");
  check(promoted.swaps >= 2,
        "promotion: install + promote are both hot swaps");

  // Stage 3: an injected candidate NaN must roll back, incumbent intact.
  util::FaultInjector::instance().arm("candidate_nan@1+");
  const LifecycleRun rolled =
      run_promoter(*promo_registry, abilene, promo_demands, 1, 2);
  util::FaultInjector::instance().disarm();
  std::printf("rollback: state %s, live v%llu, %ld rollback(s)\n",
              lifecycle::to_string(rolled.state),
              static_cast<unsigned long long>(rolled.live_version),
              rolled.rollbacks);
  check(rolled.state == lifecycle::PromoteState::kRolledBack,
        "rollback: injected candidate_nan must trigger auto-rollback");
  check(rolled.live_version == 1,
        "rollback: the incumbent must stay live after rollback");
  check(rolled.rollbacks == 1, "rollback: exactly one rollback");

  std::filesystem::remove_all("bench_lifecycle_storm.tmp");
  std::filesystem::remove_all("bench_lifecycle_promo.tmp");

  if (json) {
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"schema\": \"gddr.bench_lifecycle.v1\", \"requests\": %d, "
        "\"versions\": %d, \"hot_swaps\": %ld, "
        "\"promotion_state\": \"%s\", \"promotion_live_version\": %llu, "
        "\"rollback_state\": \"%s\", \"rollback_live_version\": %llu, "
        "\"rollbacks\": %ld, \"ok\": %s}\n",
        kRequests, kVersions, swaps, lifecycle::to_string(promoted.state),
        static_cast<unsigned long long>(promoted.live_version),
        lifecycle::to_string(rolled.state),
        static_cast<unsigned long long>(rolled.live_version),
        rolled.rollbacks, g_ok ? "true" : "false");
    try {
      util::write_file_atomic("BENCH_lifecycle.json", buffer);
      std::printf("wrote BENCH_lifecycle.json\n");
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "could not write BENCH_lifecycle.json: %s\n",
                   ex.what());
      g_ok = false;
    }
  }
  return g_ok ? 0 : 1;
}
