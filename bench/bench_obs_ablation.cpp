// Ablation: the observation compression of paper §V-B.
//
// The paper replaces each vertex's O(|V|) demand row with the 2-tuple
// (sum outgoing, sum incoming) so that GNN node features have constant
// width and one policy can run on any topology.  The cost of that
// compression is information: this bench trains the same GNN policy with
// (a) the compressed Eq.-4 features and (b) the full per-vertex demand
// rows/columns, on the same fixed topology with identical budgets, and
// compares the outcome.
//
// The paper's implicit claim: the compression does not cripple learning
// (their compressed-feature agents beat the baselines).  The ablation
// also shows what the compression buys: the full-feature policy's
// parameter count is tied to |V|.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Ablation: node-feature compression (paper §V-B) ===\n");

  const int memory = 5;
  const long steps = bench_train_steps(5000);
  util::Rng rng(20210505);
  const Scenario scenario = make_scenario(topo::abilene_heterogeneous(),
                                          experiment_scenario_params(), rng);
  const int n = scenario.graph.num_nodes();
  std::printf("AbileneHet, %ld training steps per variant\n\n", steps);

  util::Table table({"node features", "width/vertex", "policy params",
                     "untrained ratio", "trained ratio",
                     "topology-independent?"});

  struct Variant {
    const char* label;
    NodeFeatureMode mode;
    int width;
    const char* portable;
  };
  const Variant variants[] = {
      {"in/out sums (paper Eq. 4)", NodeFeatureMode::kInOutSums, 2 * memory,
       "yes"},
      {"full demand rows+cols", NodeFeatureMode::kFullDemandRows,
       2 * n * memory, "no"},
  };
  for (const auto& variant : variants) {
    EnvConfig env_cfg;
    env_cfg.memory = memory;
    env_cfg.node_features = variant.mode;
    RoutingEnv env({scenario}, env_cfg, 1);
    util::Rng prng(2);
    GnnPolicyConfig pcfg = experiment_gnn_config(memory);
    pcfg.node_feature_width = variant.width;
    GnnPolicy policy(pcfg, prng);
    rl::PpoTrainer trainer(policy, env, routing_ppo_config(), 3);
    const EvalResult before = evaluate_policy(trainer, env);
    trainer.train(steps);
    const EvalResult after = evaluate_policy(trainer, env);
    table.add_row({variant.label, std::to_string(variant.width),
                   std::to_string(policy.num_parameters()),
                   util::fmt(before.mean_ratio), util::fmt(after.mean_ratio),
                   variant.portable});
  }
  table.print();
  std::printf("\nreading: at equal budgets the compressed features learn at "
              "least as fast (often faster — fewer, better-normalised "
              "inputs; cf. the paper's §VIII remark that sparser "
              "connectivity overfits less), and only they keep the "
              "parameter count independent of |V|, which is what enables "
              "Figure 8's cross-topology generalisation.\n");
  return 0;
}
