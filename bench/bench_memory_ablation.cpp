// Ablation: demand-history (memory) length.
//
// The paper fixes memory = 5 (following Valadarsky et al.).  This bench
// trains a small GNN agent on the fast-learning asymmetric-diamond
// scenario for each memory length and reports the final test ratio plus
// the observation sizes, showing the cost/benefit of longer histories.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "util/table.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

graph::DiGraph asym_diamond() {
  graph::DiGraph g(4, "asym-diamond");
  g.add_bidirectional(0, 1, 1000.0);
  g.add_bidirectional(1, 3, 1000.0);
  g.add_bidirectional(0, 2, 4000.0);
  g.add_bidirectional(2, 3, 4000.0);
  return g;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Ablation: demand-history memory length ===\n");
  std::printf("small GNN agent, asymmetric-diamond scenario, %ld training "
              "steps per memory setting\n\n",
              bench_train_steps(4000));

  util::Table table({"memory", "node obs width", "MLP obs size",
                     "untrained ratio", "trained ratio"});
  for (const int memory : {1, 3, 5, 8}) {
    util::Rng rng(11);
    ScenarioParams params;
    params.sequence_length = 20;
    params.cycle_length = 5;
    params.train_sequences = 2;
    params.test_sequences = 1;
    params.demand.mouse_mean = 300.0;
    params.demand.elephant_mean = 900.0;
    const Scenario scenario = make_scenario(asym_diamond(), params, rng);

    EnvConfig env_cfg;
    env_cfg.memory = memory;
    RoutingEnv env({scenario}, env_cfg, 29);
    util::Rng prng(12);
    GnnPolicyConfig pcfg;
    pcfg.memory = memory;
    pcfg.latent = 8;
    pcfg.steps = 2;
    pcfg.mlp_hidden = {16};
    pcfg.init_log_std = -1.2;
    GnnPolicy policy(pcfg, prng);
    rl::PpoConfig ppo = routing_ppo_config();
    ppo.rollout_steps = 128;
    ppo.minibatch_size = 32;
    rl::PpoTrainer trainer(policy, env, ppo, 31);
    const EvalResult before = evaluate_policy(trainer, env);
    trainer.train(bench_train_steps(4000));
    const EvalResult after = evaluate_policy(trainer, env);
    const int n = scenario.graph.num_nodes();
    table.add_row({std::to_string(memory), std::to_string(2 * memory),
                   std::to_string(memory * n * n),
                   util::fmt(before.mean_ratio),
                   util::fmt(after.mean_ratio)});
  }
  table.print();
  std::printf("\nreading: trained < untrained at every memory length; "
              "GNN observation width grows as 2*memory per node while the "
              "MLP's grows as memory*|V|^2 — the compression that makes "
              "the GNN topology-independent (paper §V-B).\n");
  return 0;
}
