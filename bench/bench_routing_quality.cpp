// Table: quality of classical routing schemes relative to the
// multicommodity-flow optimum (the paper's §II/§VI framing: LP optimal <=
// learned softmin <= oblivious/multipath <= shortest path, with exact
// ordering depending on the topology).
//
// For each catalogue topology we generate the experiment traffic model and
// report the mean U_max ratio of each non-learned scheme, plus the
// FPTAS's estimate of the optimum as a solver cross-check (its ratio
// column should sit within its 1/(1-3eps) guarantee of 1.0).
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "mcf/fptas.hpp"
#include "routing/baselines.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "obs/sink.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const int workers = util::consume_workers_flag(argc, argv);
  const obs::MetricsOptions metrics = obs::consume_metrics_flag(argc, argv);
  obs::apply(metrics);
  util::ThreadPool pool(workers);
  std::printf("=== Routing-scheme quality vs the MCF optimum ===\n");
  std::printf("mean U_max ratio over test DMs (1.0 = LP optimum; lower "
              "is better); %d worker(s)\n\n",
              workers);

  ScenarioParams params = experiment_scenario_params();
  params.test_sequences = 1;  // one test sequence per topology is plenty
  params.train_sequences = 1;

  util::Table table({"topology", "|V|", "|E|", "shortest-path", "ECMP",
                     "softmin(neutral)", "k=3 multipath", "mean-DM optimal",
                     "FPTAS/LP"});

  util::Rng rng(7);
  for (const auto& name :
       {"Abilene", "Nsfnet", "SmallRing", "JanetLike", "RenaterLike",
        "MetroLike"}) {
    const Scenario scenario = make_scenario(topo::by_name(name), params, rng);
    const auto& g = scenario.graph;
    mcf::OptimalCache cache;
    const int memory = 5;

    const auto sp = evaluate_shortest_path({scenario}, memory, cache, &pool);
    const auto ecmp = evaluate_fixed(
        {scenario}, memory, cache,
        [](const graph::DiGraph& gr) {
          return routing::ecmp_routing(gr, graph::unit_weights(gr));
        },
        &pool);
    const auto neutral = evaluate_fixed(
        {scenario}, memory, cache,
        [](const graph::DiGraph& gr) {
          const std::vector<double> w(
              static_cast<size_t>(gr.num_edges()), 1.0);
          return routing::softmin_routing(gr, w);
        },
        &pool);
    const auto multipath = evaluate_fixed(
        {scenario}, memory, cache,
        [](const graph::DiGraph& gr) {
          return routing::uniform_multipath_routing(
              gr, graph::unit_weights(gr), 3);
        },
        &pool);
    // Static data-driven baseline: optimal for the mean of the training
    // sequence, then fixed.
    const auto mean_dm = evaluate_fixed(
        {scenario}, memory, cache,
        [&](const graph::DiGraph& gr) {
          return routing::mean_demand_optimal_routing(
              gr, scenario.train_sequences[0]);
        },
        &pool);

    // FPTAS cross-check on the first test DM.
    const auto& dm = scenario.test_sequences[0][5];
    const double lp_opt = cache.u_max(g, dm);
    mcf::FptasOptions fopt;
    fopt.epsilon = 0.05;
    const double fptas = mcf::approx_optimal_u_max(g, dm, fopt);

    table.add_row({name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()), util::fmt(sp.mean_ratio),
                   util::fmt(ecmp.mean_ratio), util::fmt(neutral.mean_ratio),
                   util::fmt(multipath.mean_ratio),
                   util::fmt(mean_dm.mean_ratio),
                   util::fmt(lp_opt > 0 ? fptas / lp_opt : 0.0)});
  }
  table.print();
  std::printf("\nexpectations: every scheme >= 1.0; neutral softmin "
              "(multipath spreading) at or below single shortest-path on "
              "most topologies; FPTAS/LP within [1.0, %.3f].\n",
              1.0 / (1.0 - 3 * 0.05));
  const std::string metrics_summary = obs::finish(metrics);
  if (!metrics_summary.empty()) std::printf("%s\n", metrics_summary.c_str());
  return 0;
}
