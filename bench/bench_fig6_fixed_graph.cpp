// Figure 6 reproduction: learning to route on a fixed graph.
//
// Paper setup (§VIII-D): the Abilene topology; cyclical bimodal demand
// sequences of 60 DMs with cycle length 10 and memory length 5; 7 training
// sequences and 3 test sequences.  Bars are the mean ratio between the
// achieved max-link-utilisation and the optimal for each test DM (lower is
// better); the dotted line is shortest-path routing.
//
// Paper's qualitative result: all learned policies beat shortest-path
// routing, and the GNN policies perform at least as well as the MLP.
//
// Training defaults to a reduced step budget so the bench suite completes
// in minutes; set GDDR_TRAIN_STEPS=<n> (or GDDR_BENCH_SCALE=paper for the
// paper's 500k) to train longer.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/iterative_env.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "routing/baselines.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

struct Row {
  std::string policy;
  EvalResult eval;
  long steps;
};

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Figure 6: learning to route on a fixed graph ===\n");

  util::Rng rng(20210101);
  const ScenarioParams params = experiment_scenario_params();
  // AbileneHet = the paper's Abilene topology with heterogeneous link
  // capacities (OC-192 core / OC-48 edge).  See DESIGN.md §1: at bench
  // training budgets the uniform-capacity network offers too little
  // signal; heterogeneous capacities make the qualitative claims testable
  // in minutes.  GDDR_BENCH_SCALE=paper restores paper-scale training.
  const Scenario scenario =
      make_scenario(topo::abilene_heterogeneous(), params, rng);
  const int memory = 5;
  std::printf(
      "graph AbileneHet (|V|=%d, |E|=%d); %d-DM sequences, cycle %d, memory "
      "%d; %d train / %d test sequences\n",
      scenario.graph.num_nodes(), scenario.graph.num_edges(),
      params.sequence_length, params.cycle_length, memory,
      params.train_sequences, params.test_sequences);

  mcf::OptimalCache baseline_cache;
  const EvalResult sp =
      evaluate_shortest_path({scenario}, memory, baseline_cache);
  // Static data-driven baseline (not in the paper's figure, included for
  // context): the LP-optimal routing for the mean training demand, fixed.
  const EvalResult mean_dm = evaluate_fixed(
      {scenario}, memory, baseline_cache, [&](const graph::DiGraph& g) {
        return routing::mean_demand_optimal_routing(
            g, scenario.train_sequences[0]);
      });

  std::vector<Row> rows;

  // --- MLP baseline (Valadarsky et al.) ---
  {
    const long steps = bench_train_steps(8000);
    EnvConfig env_cfg;
    env_cfg.memory = memory;
    RoutingEnv env({scenario}, env_cfg, 1);
    util::Rng prng(2);
    const int obs_dim =
        memory * scenario.graph.num_nodes() * scenario.graph.num_nodes();
    MlpPolicy policy(obs_dim, scenario.graph.num_edges(),
                     experiment_mlp_config(), prng);
    rl::PpoTrainer trainer(policy, env, routing_ppo_config(), 3);
    std::printf("training MLP for %ld steps...\n", steps);
    trainer.train(steps);
    rows.push_back({policy.name(), evaluate_policy(trainer, env), steps});
  }

  // --- GNN policy (GDDR) ---
  {
    const long steps = bench_train_steps(8000);
    EnvConfig env_cfg;
    env_cfg.memory = memory;
    RoutingEnv env({scenario}, env_cfg, 4);
    util::Rng prng(5);
    GnnPolicy policy(experiment_gnn_config(memory), prng);
    rl::PpoTrainer trainer(policy, env, routing_ppo_config(), 6);
    std::printf("training GNN for %ld steps...\n", steps);
    trainer.train(steps);
    rows.push_back({policy.name(), evaluate_policy(trainer, env), steps});
  }

  // --- Iterative GNN policy (GDDR) ---
  {
    const long steps = bench_train_steps(8000) * 2;  // micro-steps
    IterativeEnvConfig env_cfg;
    env_cfg.memory = memory;
    IterativeRoutingEnv env({scenario}, env_cfg, 7);
    util::Rng prng(8);
    IterativeGnnPolicy policy(experiment_iterative_gnn_config(memory), prng);
    rl::PpoTrainer trainer(policy, env,
                           iterative_ppo_config(env.edges_per_step()), 9);
    std::printf("training GNN-Iterative for %ld micro-steps...\n", steps);
    trainer.train(steps);
    rows.push_back({policy.name(), evaluate_policy(trainer, env), steps});
  }

  std::printf("\nBar heights (mean U_max_agent / U_max_optimal on test "
              "DMs; lower is better):\n");
  util::Table table({"policy", "mean ratio", "stddev", "min", "max",
                     "train steps"});
  for (const auto& row : rows) {
    table.add_row({row.policy, util::fmt(row.eval.mean_ratio),
                   util::fmt(row.eval.stddev), util::fmt(row.eval.min_ratio),
                   util::fmt(row.eval.max_ratio), std::to_string(row.steps)});
  }
  table.add_row({"shortest-path (dotted line)", util::fmt(sp.mean_ratio),
                 util::fmt(sp.stddev), util::fmt(sp.min_ratio),
                 util::fmt(sp.max_ratio), "-"});
  table.add_row({"mean-DM optimal (static)", util::fmt(mean_dm.mean_ratio),
                 util::fmt(mean_dm.stddev), util::fmt(mean_dm.min_ratio),
                 util::fmt(mean_dm.max_ratio), "-"});
  table.print();

  std::printf("\npaper expectation: every learned policy below the "
              "shortest-path line; GNN policies at or below the MLP.\n");
  return 0;
}
