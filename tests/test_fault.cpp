// Fault-tolerance tests: deterministic fault injection, crash-safe
// writes, the simplex→FPTAS fallback chain, the numerical-health
// watchdog, and bit-identical checkpoint/resume (the ISSUE acceptance
// criteria for the fault-tolerant training runtime).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/iterative_env.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "mcf/cache.hpp"
#include "mcf/optimal.hpp"
#include "rl/ppo.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace gddr {
namespace {

using util::FaultInjector;
using util::FaultSite;

// Every test disarms on exit so an assertion failure cannot leak an armed
// schedule into the next test.
struct FaultGuard {
  FaultGuard() { FaultInjector::instance().disarm(); }
  ~FaultGuard() { FaultInjector::instance().disarm(); }
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

// ---------------- FaultInjector ----------------

TEST(FaultInjector, NthFiresExactlyOnce) {
  FaultGuard guard;
  auto& injector = FaultInjector::instance();
  injector.arm("lp_solve@3");
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(util::inject(FaultSite::kLpSolve));
  const std::vector<bool> expected{false, false, true,  false,
                                   false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(injector.hits(FaultSite::kLpSolve), 8);
  EXPECT_EQ(injector.fired(FaultSite::kLpSolve), 1);
}

TEST(FaultInjector, FromNthFiresOnward) {
  FaultGuard guard;
  FaultInjector::instance().arm("nan_grad@2+");
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) {
    fired.push_back(util::inject(FaultSite::kNanGradient));
  }
  const std::vector<bool> expected{false, true, true, true, true};
  EXPECT_EQ(fired, expected);
}

TEST(FaultInjector, ProbabilityScheduleIsSeededAndReproducible) {
  FaultGuard guard;
  auto& injector = FaultInjector::instance();
  auto sample = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) {
      fired.push_back(util::inject(FaultSite::kCheckpointWrite));
    }
    return fired;
  };
  injector.arm("ckpt_write~0.5/42");
  const auto first = sample();
  injector.arm("ckpt_write~0.5/42");  // re-arm resets the stream
  EXPECT_EQ(sample(), first);
  // Not degenerate: some hits fire, some don't.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 32);
}

TEST(FaultInjector, DisarmedPathIsInert) {
  FaultGuard guard;
  auto& injector = FaultInjector::instance();
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(util::inject(FaultSite::kLpSolve));
  EXPECT_EQ(injector.hits(FaultSite::kLpSolve), 0);
}

TEST(FaultInjector, MalformedSpecRejectedAtomically) {
  FaultGuard guard;
  auto& injector = FaultInjector::instance();
  injector.arm("lp_solve@1");
  // Malformed specs are an I/O-layer failure (the spec arrives from the
  // GDDR_FAULTS environment), so they surface as util::IoError and the
  // CLI maps them to the I/O exit code.
  EXPECT_THROW(injector.arm("lp_solve@notanumber"), util::IoError);
  EXPECT_THROW(injector.arm("unknown_site@1"), util::IoError);
  // The previous valid schedule survives a failed arm.
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(util::inject(FaultSite::kLpSolve));
}

// Runs arm(spec), requires an IoError and returns its message.
std::string arm_error(const std::string& spec) {
  try {
    FaultInjector::instance().arm(spec);
  } catch (const util::IoError& e) {
    return e.what();
  }
  ADD_FAILURE() << "arm(\"" << spec << "\") did not throw util::IoError";
  return {};
}

TEST(FaultInjector, MalformedSpecErrorsNameTheOffendingToken) {
  FaultGuard guard;

  // Unknown site name.
  std::string msg = arm_error("bogus_site@3");
  EXPECT_NE(msg.find("unknown fault site"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'bogus_site'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bogus_site@3"), std::string::npos) << msg;

  // The unknown-site error enumerates the complete valid-site set, in
  // enum order, so the grammar is discoverable from the message alone.
  // This list is pinned on purpose: adding a FaultSite must extend it.
  EXPECT_NE(
      msg.find("valid sites: lp_solve, ckpt_write, nan_grad, train_abort, "
               "policy_nan, policy_slow, topo_change, request_garbage, "
               "registry_publish, shadow_diverge, candidate_nan"),
      std::string::npos)
      << msg;

  // Non-numeric count after '@'.
  msg = arm_error("lp_solve@abc");
  EXPECT_NE(msg.find("bad count/seed token 'abc'"), std::string::npos) << msg;

  // Missing '@n' / '~p/seed' entirely.
  msg = arm_error("lp_solve");
  EXPECT_NE(msg.find("entry needs '@n', '@n+' or '~p/seed'"),
            std::string::npos)
      << msg;

  // Probabilistic entry without an explicit seed.
  msg = arm_error("lp_solve~0.5");
  EXPECT_NE(msg.find("needs an explicit seed"), std::string::npos) << msg;

  // Probability with trailing garbage (stod would accept the prefix).
  msg = arm_error("lp_solve~0.5abc/7");
  EXPECT_NE(msg.find("bad probability token '0.5abc'"), std::string::npos)
      << msg;

  // Probability outside [0, 1].
  msg = arm_error("lp_solve~1.5/7");
  EXPECT_NE(msg.find("bad probability token '1.5'"), std::string::npos) << msg;

  // Empty clause from a stray comma.
  msg = arm_error("lp_solve@1,,ckpt_write@2");
  EXPECT_NE(msg.find("empty clause"), std::string::npos) << msg;

  // A failed arm never leaves a partial schedule armed.
  EXPECT_FALSE(FaultInjector::instance().enabled());
}

TEST(FaultInjector, ServingSitesParseAndFire) {
  FaultGuard guard;
  auto& injector = FaultInjector::instance();
  injector.arm("policy_nan@1,policy_slow@2,topo_change@1,request_garbage@1+");
  EXPECT_TRUE(util::inject(FaultSite::kPolicyNan));
  EXPECT_FALSE(util::inject(FaultSite::kPolicyNan));
  EXPECT_FALSE(util::inject(FaultSite::kPolicySlow));
  EXPECT_TRUE(util::inject(FaultSite::kPolicySlow));
  EXPECT_TRUE(util::inject(FaultSite::kTopoChange));
  // '@1+' fires from the first occurrence onwards.
  EXPECT_TRUE(util::inject(FaultSite::kRequestGarbage));
  EXPECT_TRUE(util::inject(FaultSite::kRequestGarbage));
}

// ---------------- crash-safe writes ----------------

TEST(AtomicWrite, InjectedFaultKeepsPreviousFileIntact) {
  FaultGuard guard;
  const std::string path = temp_path("gddr_atomic.bin");
  util::write_file_atomic(path, "previous checkpoint");
  FaultInjector::instance().arm("ckpt_write@1");
  EXPECT_THROW(util::write_file_atomic(path, "half-written garbage"),
               util::IoError);
  EXPECT_EQ(read_file(path), "previous checkpoint");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Next write (schedule exhausted) succeeds and replaces the content.
  util::write_file_atomic(path, "new checkpoint");
  EXPECT_EQ(read_file(path), "new checkpoint");
  std::remove(path.c_str());
}

// ---------------- solver fallback chain ----------------

traffic::DemandMatrix small_demand(const graph::DiGraph& g,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.4;
  return traffic::bimodal_matrix(g.num_nodes(), params, rng);
}

TEST(SolverFallback, ApproximateResultWithinFptasBound) {
  FaultGuard guard;
  const auto g = topo::by_name("SmallRing");
  const auto dm = small_demand(g, 7);

  const mcf::OptimalResult exact = mcf::solve_optimal(g, dm);
  ASSERT_EQ(exact.provenance, mcf::SolveProvenance::kExact);
  ASSERT_GT(exact.u_max, 0.0);

  FaultInjector::instance().arm("lp_solve@1");
  mcf::SolveOptions options;  // default epsilon 0.05
  const mcf::OptimalResult approx = mcf::solve_optimal(g, dm, options);
  EXPECT_EQ(approx.provenance, mcf::SolveProvenance::kApproximate);
  EXPECT_TRUE(approx.feasible);
  for (const auto& row : approx.flow_by_dest) EXPECT_TRUE(row.empty());

  // FPTAS guarantee: u* <= u_approx <= u* / (1 - 3*eps); small slack for
  // floating-point noise.
  const double ratio = approx.u_max / exact.u_max;
  EXPECT_GE(ratio, 0.999);
  EXPECT_LE(ratio, 1.0 / (1.0 - 3.0 * options.fptas_epsilon) + 0.05);
}

TEST(SolverFallback, ExactOnlyModeReportsFailure) {
  FaultGuard guard;
  const auto g = topo::by_name("SmallRing");
  const auto dm = small_demand(g, 7);
  FaultInjector::instance().arm("lp_solve@1");
  mcf::SolveOptions options;
  options.allow_fptas_fallback = false;
  const mcf::OptimalResult result = mcf::solve_optimal(g, dm, options);
  EXPECT_EQ(result.provenance, mcf::SolveProvenance::kFailed);
  EXPECT_FALSE(result.feasible);
}

TEST(SolverFallback, CacheCompletesUnderInjectionAndCountsProvenance) {
  FaultGuard guard;
  const auto g = topo::by_name("SmallRing");
  mcf::OptimalCache cache;

  FaultInjector::instance().arm("lp_solve@1");
  const double u_approx = cache.u_max(g, small_demand(g, 7));
  EXPECT_GT(u_approx, 0.0);
  EXPECT_EQ(cache.approx_solves(), 1U);
  EXPECT_EQ(cache.exact_solves(), 0U);

  FaultInjector::instance().disarm();
  const double u_exact = cache.u_max(g, small_demand(g, 8));
  EXPECT_GT(u_exact, 0.0);
  EXPECT_EQ(cache.exact_solves(), 1U);
  // The approximate value was cached; re-querying it is a hit, not a solve.
  cache.u_max(g, small_demand(g, 7));
  EXPECT_EQ(cache.approx_solves(), 1U);
}

// ---------------- watchdog ----------------

// Minimal deterministic env with full checkpoint support (the Env
// contract needed for trainer round-trip tests).
class StatefulTargetEnv final : public rl::Env {
 public:
  explicit StatefulTargetEnv(double target, int episode_len = 8)
      : target_(target), episode_len_(episode_len) {}

  rl::Observation reset() override {
    t_ = 0;
    return make_obs();
  }

  StepResult step(std::span<const double> action) override {
    StepResult r;
    const double err = action[0] - target_;
    r.reward = -err * err;
    r.done = ++t_ >= episode_len_;
    r.obs = make_obs();  // also the bootstrap observation at truncation
    r.truncated = r.done;
    return r;
  }

  int action_dim() const override { return 1; }

  std::vector<std::uint8_t> save_state() const override {
    return {static_cast<std::uint8_t>(t_)};
  }
  void restore_state(std::span<const std::uint8_t> blob) override {
    if (blob.size() != 1) {
      throw util::IoError("StatefulTargetEnv: bad state blob");
    }
    t_ = blob[0];
  }

 private:
  rl::Observation make_obs() const {
    rl::Observation obs;
    obs.flat = {static_cast<double>(t_) / episode_len_};
    obs.num_nodes = 1;
    obs.nodes = nn::Tensor(1, 1, 1.0F);
    obs.edges = nn::Tensor(0, 1);
    obs.globals = nn::Tensor(1, 1);
    return obs;
  }
  double target_;
  int episode_len_;
  int t_ = 0;
};

rl::PpoConfig tiny_ppo_config() {
  rl::PpoConfig cfg;
  cfg.rollout_steps = 32;
  cfg.minibatch_size = 16;
  cfg.epochs = 2;
  cfg.learning_rate = 3e-3;
  return cfg;
}

core::MlpPolicyConfig tiny_mlp_config() {
  core::MlpPolicyConfig cfg;
  cfg.pi_hidden = {8};
  cfg.vf_hidden = {8};
  return cfg;
}

TEST(Watchdog, RollsBackOnInjectedNanGradient) {
  FaultGuard guard;
  util::Rng rng(11);
  core::MlpPolicy policy(1, 1, tiny_mlp_config(), rng);
  StatefulTargetEnv env(0.5);
  const rl::PpoConfig cfg = tiny_ppo_config();
  rl::PpoTrainer trainer(policy, env, cfg, 3);

  FaultInjector::instance().arm("nan_grad@1");
  const rl::PpoIterationStats stats = trainer.train_iteration();
  EXPECT_GE(stats.nonfinite_events, 1);
  EXPECT_GE(stats.health_rollbacks, 1);
  EXPECT_LT(stats.learning_rate, cfg.learning_rate);

  // The poisoned step was rolled back: every weight is still finite and
  // training continues cleanly.
  for (const nn::Parameter* p : policy.parameters()) {
    for (const float v : p->value.data()) ASSERT_TRUE(std::isfinite(v));
  }
  FaultInjector::instance().disarm();
  const rl::PpoIterationStats clean = trainer.train_iteration();
  EXPECT_EQ(clean.nonfinite_events, 0);
  EXPECT_EQ(clean.health_rollbacks, 0);
}

TEST(Watchdog, CleanRunReportsNoEvents) {
  FaultGuard guard;
  util::Rng rng(12);
  core::MlpPolicy policy(1, 1, tiny_mlp_config(), rng);
  StatefulTargetEnv env(0.5);
  const rl::PpoConfig cfg = tiny_ppo_config();
  rl::PpoTrainer trainer(policy, env, cfg, 3);
  const rl::PpoIterationStats stats = trainer.train_iteration();
  EXPECT_EQ(stats.nonfinite_events, 0);
  EXPECT_EQ(stats.health_rollbacks, 0);
  EXPECT_EQ(stats.learning_rate, cfg.learning_rate);
}

// ---------------- trainer checkpoint round-trip ----------------

void expect_params_bitwise_equal(const std::vector<nn::Parameter*>& a,
                                 const std::vector<nn::Parameter*>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto da = a[i]->value.data();
    const auto db = b[i]->value.data();
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t k = 0; k < da.size(); ++k) {
      ASSERT_EQ(da[k], db[k]) << "parameter " << i << " element " << k;
    }
  }
}

void expect_stats_identical(const rl::PpoIterationStats& a,
                            const rl::PpoIterationStats& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.mean_episode_reward, b.mean_episode_reward);
  EXPECT_EQ(a.policy_loss, b.policy_loss);
  EXPECT_EQ(a.value_loss, b.value_loss);
  EXPECT_EQ(a.entropy, b.entropy);
  EXPECT_EQ(a.approx_kl, b.approx_kl);
  EXPECT_EQ(a.clip_fraction, b.clip_fraction);
  EXPECT_EQ(a.nonfinite_events, b.nonfinite_events);
  EXPECT_EQ(a.health_rollbacks, b.health_rollbacks);
  EXPECT_EQ(a.learning_rate, b.learning_rate);
}

TEST(Checkpoint, TrainerResumeIsBitIdentical) {
  const std::string path = temp_path("gddr_trainer_resume.ckpt");
  const rl::PpoConfig cfg = tiny_ppo_config();

  // Reference: 4 uninterrupted iterations.
  util::Rng rng_a(31);
  core::MlpPolicy policy_a(1, 1, tiny_mlp_config(), rng_a);
  StatefulTargetEnv env_a0(0.5);
  StatefulTargetEnv env_a1(0.5);
  rl::PpoTrainer trainer_a(policy_a, {&env_a0, &env_a1}, cfg, 3);
  std::vector<rl::PpoIterationStats> full;
  for (int i = 0; i < 2; ++i) full.push_back(trainer_a.train_iteration());
  trainer_a.save_checkpoint(path);
  for (int i = 0; i < 2; ++i) full.push_back(trainer_a.train_iteration());

  // Resumed: fresh stack (different init seed — the checkpoint must
  // overwrite everything), load, 2 more iterations.
  util::Rng rng_b(99);
  core::MlpPolicy policy_b(1, 1, tiny_mlp_config(), rng_b);
  StatefulTargetEnv env_b0(0.5);
  StatefulTargetEnv env_b1(0.5);
  rl::PpoTrainer trainer_b(policy_b, {&env_b0, &env_b1}, cfg, 77);
  trainer_b.load_checkpoint(path);
  EXPECT_EQ(trainer_b.iterations(), 2);
  EXPECT_EQ(trainer_b.total_env_steps(), trainer_a.total_env_steps() - 64);
  std::vector<rl::PpoIterationStats> tail;
  for (int i = 0; i < 2; ++i) tail.push_back(trainer_b.train_iteration());

  expect_params_bitwise_equal(policy_a.parameters(), policy_b.parameters());
  ASSERT_EQ(tail.size(), 2U);
  expect_stats_identical(tail[0], full[2]);
  expect_stats_identical(tail[1], full[3]);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptedCheckpointNamesFieldAndLeavesTrainerUsable) {
  const std::string path = temp_path("gddr_trainer_corrupt.ckpt");
  const rl::PpoConfig cfg = tiny_ppo_config();
  util::Rng rng(32);
  core::MlpPolicy policy(1, 1, tiny_mlp_config(), rng);
  StatefulTargetEnv env(0.5);
  rl::PpoTrainer trainer(policy, env, cfg, 3);
  trainer.train_iteration();
  trainer.save_checkpoint(path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);

  try {
    trainer.load_checkpoint(path);
    FAIL() << "expected util::IoError for a truncated checkpoint";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("truncated"), std::string::npos)
        << ex.what();
  }
  // No half-load: the trainer keeps training normally.
  const rl::PpoIterationStats stats = trainer.train_iteration();
  EXPECT_EQ(stats.steps, cfg.rollout_steps);
  std::remove(path.c_str());
}

TEST(Checkpoint, EnvCountMismatchRejected) {
  const std::string path = temp_path("gddr_trainer_envcount.ckpt");
  const rl::PpoConfig cfg = tiny_ppo_config();
  util::Rng rng(33);
  core::MlpPolicy policy(1, 1, tiny_mlp_config(), rng);
  StatefulTargetEnv env0(0.5);
  StatefulTargetEnv env1(0.5);
  rl::PpoTrainer two_envs(policy, {&env0, &env1}, cfg, 3);
  two_envs.train_iteration();
  two_envs.save_checkpoint(path);

  util::Rng rng_b(34);
  core::MlpPolicy policy_b(1, 1, tiny_mlp_config(), rng_b);
  StatefulTargetEnv env_b(0.5);
  rl::PpoTrainer one_env(policy_b, env_b, cfg, 3);
  try {
    one_env.load_checkpoint(path);
    FAIL() << "expected util::IoError for an env count mismatch";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("count"), std::string::npos)
        << ex.what();
  }
  std::remove(path.c_str());
}

// ---------------- routing env state round-trip ----------------

core::ScenarioParams tiny_scenario_params() {
  core::ScenarioParams p;
  p.sequence_length = 12;
  p.cycle_length = 4;
  p.train_sequences = 2;
  p.test_sequences = 1;
  return p;
}

TEST(EnvState, RoutingEnvRoundTripContinuesBitIdentically) {
  util::Rng srng(41);
  const std::vector<core::Scenario> scenarios{
      core::make_scenario(topo::by_name("SmallRing"), tiny_scenario_params(),
                          srng)};
  core::EnvConfig cfg;
  cfg.memory = 3;

  core::RoutingEnv a(scenarios, cfg, 5);
  a.reset();
  const std::vector<double> action(
      static_cast<std::size_t>(a.action_dim()), 0.25);
  a.step(action);

  core::RoutingEnv b(scenarios, cfg, 999);  // different seed/state
  b.restore_state(a.save_state());

  // Identical continuation: same rewards and observations step by step,
  // across episode boundaries (reset uses the restored RNG stream).
  for (int i = 0; i < 20; ++i) {
    const auto ra = a.step(action);
    const auto rb = b.step(action);
    ASSERT_EQ(ra.reward, rb.reward) << "step " << i;
    ASSERT_EQ(ra.done, rb.done) << "step " << i;
    ASSERT_EQ(ra.obs.flat, rb.obs.flat) << "step " << i;
    if (ra.done) {
      ASSERT_EQ(a.reset().flat, b.reset().flat) << "step " << i;
    }
  }
}

TEST(EnvState, CorruptBlobRejectedWithoutStateChange) {
  util::Rng srng(42);
  const std::vector<core::Scenario> scenarios{
      core::make_scenario(topo::by_name("SmallRing"), tiny_scenario_params(),
                          srng)};
  core::EnvConfig cfg;
  cfg.memory = 3;
  core::RoutingEnv env(scenarios, cfg, 5);
  env.reset();
  const auto good = env.save_state();

  auto truncated = good;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(env.restore_state(truncated), util::IoError);

  auto oob = good;
  // Scenario index field sits right after the version (u32) + RNG state
  // (4*u64 + f64 + u8) + mode byte; stomp it with an enormous value.
  const std::size_t scenario_off = 4 + 8 * 4 + 8 + 1 + 1;
  for (std::size_t i = 0; i < 8; ++i) oob[scenario_off + i] = 0xFF;
  EXPECT_THROW(env.restore_state(oob), util::IoError);

  // The failed restores left the env where it was.
  EXPECT_EQ(env.save_state(), good);
}

TEST(EnvState, IterativeEnvRoundTripMidMicroStep) {
  util::Rng srng(43);
  const std::vector<core::Scenario> scenarios{
      core::make_scenario(topo::by_name("SmallRing"), tiny_scenario_params(),
                          srng)};
  core::IterativeEnvConfig cfg;
  cfg.memory = 3;

  core::IterativeRoutingEnv a(scenarios, cfg, 5);
  a.reset();
  const std::vector<double> action{0.3, -0.2};
  a.step(action);  // mid-DM: edge cursor advanced, weights pending
  a.step(action);

  core::IterativeRoutingEnv b(scenarios, cfg, 999);
  b.restore_state(a.save_state());
  for (int i = 0; i < 30; ++i) {
    const auto ra = a.step(action);
    const auto rb = b.step(action);
    ASSERT_EQ(ra.reward, rb.reward) << "micro-step " << i;
    ASSERT_EQ(ra.done, rb.done) << "micro-step " << i;
    if (ra.done) {
      ASSERT_EQ(a.reset().flat, b.reset().flat) << "micro-step " << i;
    }
  }
}

// ---------------- kill-and-resume acceptance test ----------------

core::ExperimentConfig experiment_config(const std::string& ckpt_path) {
  util::Rng srng(51);
  core::ExperimentConfig cfg;
  cfg.scenarios = {core::make_scenario(topo::by_name("SmallRing"),
                                       tiny_scenario_params(), srng)};
  cfg.env.memory = 3;
  cfg.ppo = tiny_ppo_config();
  cfg.policy.memory = 3;
  cfg.policy.latent = 8;
  cfg.policy.steps = 2;
  cfg.policy.mlp_hidden = {16};
  cfg.num_envs = 2;
  cfg.policy_seed = 61;
  cfg.train_seed = 62;
  cfg.checkpoint_path = ckpt_path;
  cfg.checkpoint_every_iterations = 1;
  return cfg;
}

TEST(Experiment, KilledRunResumesBitIdentically) {
  FaultGuard guard;
  const std::string path = temp_path("gddr_experiment.ckpt");
  // One iteration = rollout_steps env steps; 4 iterations total.
  const long total = 4L * tiny_ppo_config().rollout_steps;

  // Reference: uninterrupted run.
  core::Experiment reference(experiment_config(path + ".ref"));
  const auto full = reference.train(total);
  ASSERT_EQ(full.size(), 4U);

  // Victim: killed by the injector at the start of iteration 3 (two
  // iterations and two checkpoints have landed by then).
  core::Experiment victim(experiment_config(path));
  FaultInjector::instance().arm("train_abort@3");
  EXPECT_THROW(victim.train(total), std::runtime_error);
  FaultInjector::instance().disarm();

  // Recovery: a fresh process image resumes from the last checkpoint and
  // finishes the remaining iterations.
  core::Experiment recovered(experiment_config(path));
  recovered.resume_from(path);
  EXPECT_EQ(recovered.trainer().iterations(), 2);
  const auto tail =
      recovered.train(total - recovered.trainer().total_env_steps());
  ASSERT_EQ(tail.size(), 2U);

  expect_params_bitwise_equal(reference.policy().parameters(),
                              recovered.policy().parameters());
  expect_stats_identical(tail[0], full[2]);
  expect_stats_identical(tail[1], full[3]);

  std::remove(path.c_str());
  std::remove((path + ".ref").c_str());
}

}  // namespace
}  // namespace gddr
