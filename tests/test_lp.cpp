#include <gtest/gtest.h>

#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace gddr::lp {
namespace {

TEST(Simplex, TrivialMinimum) {
  // min x subject to x >= 3  ->  x = 3.
  LinearProgram prog;
  const int x = prog.add_variable(1.0);
  prog.add_constraint({{x, 1.0}}, Relation::kGe, 3.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(Simplex, TwoVariableKnownOptimum) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic example).
  // As minimisation: min -3x - 5y; optimum x=2, y=6, objective -36.
  LinearProgram prog;
  const int x = prog.add_variable(-3.0);
  const int y = prog.add_variable(-5.0);
  prog.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  prog.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  prog.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.x[static_cast<size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[static_cast<size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 10, x <= 4  ->  x=4, y=6? No: min x+y on the
  // line x+y=10 is 10 everywhere; check feasibility and objective.
  LinearProgram prog;
  const int x = prog.add_variable(1.0);
  const int y = prog.add_variable(1.0);
  prog.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 10.0);
  prog.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-7);
  EXPECT_NEAR(sol.x[static_cast<size_t>(x)] + sol.x[static_cast<size_t>(y)],
              10.0, 1e-7);
  EXPECT_LE(sol.x[static_cast<size_t>(x)], 4.0 + 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  LinearProgram prog;
  const int x = prog.add_variable(1.0);
  prog.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  prog.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(prog.solve().status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x with x only bounded below.
  LinearProgram prog;
  const int x = prog.add_variable(-1.0);
  prog.add_constraint({{x, 1.0}}, Relation::kGe, 0.0);
  EXPECT_EQ(prog.solve().status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalised) {
  // min x s.t. -x <= -5  (i.e. x >= 5).
  LinearProgram prog;
  const int x = prog.add_variable(1.0);
  prog.add_constraint({{x, -1.0}}, Relation::kLe, -5.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 5.0, 1e-9);
}

TEST(Simplex, DuplicateTermsSummed) {
  // min x s.t. x + x >= 6 -> x = 3.
  LinearProgram prog;
  const int x = prog.add_variable(1.0);
  prog.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::kGe, 6.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(Simplex, UnknownVariableRejected) {
  LinearProgram prog;
  prog.add_variable(1.0);
  EXPECT_THROW(prog.add_constraint({{3, 1.0}}, Relation::kLe, 1.0),
               std::out_of_range);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone problem (Beale); Bland fallback must terminate.
  LinearProgram prog;
  const int x1 = prog.add_variable(-0.75);
  const int x2 = prog.add_variable(150.0);
  const int x3 = prog.add_variable(-0.02);
  const int x4 = prog.add_variable(6.0);
  prog.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                      Relation::kLe, 0.0);
  prog.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                      Relation::kLe, 0.0);
  prog.add_constraint({{x3, 1.0}}, Relation::kLe, 1.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-7);
}

TEST(Simplex, RedundantConstraintsHandled) {
  LinearProgram prog;
  const int x = prog.add_variable(1.0);
  prog.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  prog.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);  // duplicate
  prog.add_constraint({{x, 2.0}}, Relation::kGe, 4.0);  // scaled duplicate
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveFeasibilityProblem) {
  LinearProgram prog;
  const int x = prog.add_variable(0.0);
  const int y = prog.add_variable(0.0);
  prog.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[static_cast<size_t>(x)] + sol.x[static_cast<size_t>(y)],
              5.0, 1e-9);
}

TEST(Simplex, ToStringCoversAllStatuses) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

// Property test: random transportation problems have a known optimum equal
// to max(total supply needed) when costs are uniform.
class RandomLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp, TransportationProblemFeasibleAndBounded) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // 3 suppliers x 4 consumers; balanced supply/demand.
  const int ns = 3;
  const int nc = 4;
  std::vector<double> supply(ns);
  std::vector<double> demand(nc, 0.0);
  double total = 0.0;
  for (auto& s : supply) {
    s = 1.0 + rng.uniform() * 9.0;
    total += s;
  }
  for (int c = 0; c < nc - 1; ++c) {
    demand[static_cast<size_t>(c)] = total * rng.uniform() / nc;
  }
  double assigned = 0.0;
  for (int c = 0; c < nc - 1; ++c) assigned += demand[static_cast<size_t>(c)];
  demand[nc - 1] = total - assigned;

  LinearProgram prog;
  std::vector<std::vector<int>> x(static_cast<size_t>(ns),
                                  std::vector<int>(static_cast<size_t>(nc)));
  for (int s = 0; s < ns; ++s) {
    for (int c = 0; c < nc; ++c) {
      x[static_cast<size_t>(s)][static_cast<size_t>(c)] =
          prog.add_variable(1.0 + rng.uniform());  // random positive costs
    }
  }
  for (int s = 0; s < ns; ++s) {
    std::vector<std::pair<int, double>> terms;
    for (int c = 0; c < nc; ++c) {
      terms.emplace_back(x[static_cast<size_t>(s)][static_cast<size_t>(c)],
                         1.0);
    }
    prog.add_constraint(terms, Relation::kEq, supply[static_cast<size_t>(s)]);
  }
  for (int c = 0; c < nc; ++c) {
    std::vector<std::pair<int, double>> terms;
    for (int s = 0; s < ns; ++s) {
      terms.emplace_back(x[static_cast<size_t>(s)][static_cast<size_t>(c)],
                         1.0);
    }
    prog.add_constraint(terms, Relation::kEq, demand[static_cast<size_t>(c)]);
  }
  const Solution sol = prog.solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Objective bounded by [min_cost * total, max_cost * total].
  EXPECT_GE(sol.objective, total * 1.0 - 1e-6);
  EXPECT_LE(sol.objective, total * 2.0 + 1e-6);
  // All flows non-negative and supplies exactly shipped.
  for (int s = 0; s < ns; ++s) {
    double shipped = 0.0;
    for (int c = 0; c < nc; ++c) {
      const double v = sol.x[static_cast<size_t>(
          x[static_cast<size_t>(s)][static_cast<size_t>(c)])];
      EXPECT_GE(v, -1e-9);
      shipped += v;
    }
    EXPECT_NEAR(shipped, supply[static_cast<size_t>(s)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLp, ::testing::Range(0, 12));

}  // namespace
}  // namespace gddr::lp
