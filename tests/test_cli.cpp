// End-to-end CLI exit-code contract (ISSUE satellite: the exit-code map
// is part of the serving interface).  Each test invokes the real gddr_cli
// binary — CMake injects its location as GDDR_CLI_PATH — through
// std::system and asserts on the documented codes:
//
//   0 ok, 2 usage, 4 I/O failure, 5 serve deadline exhausted,
//   6 serve unroutable entries (5 takes precedence over 6).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace gddr {
namespace {

// Exit status of a shell command, with output discarded.
int run_cli(const std::string& args) {
  const std::string command =
      std::string(GDDR_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int raw = std::system(command.c_str());
#ifndef _WIN32
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
#else
  return raw;
#endif
}

TEST(CliExitCodes, NoArgumentsIsUsage) { EXPECT_EQ(run_cli(""), 2); }

TEST(CliExitCodes, UnknownCommandIsUsage) {
  EXPECT_EQ(run_cli("frobnicate Abilene"), 2);
}

TEST(CliExitCodes, UsageTextDocumentsTheExitCodeMap) {
  const std::string command = std::string(GDDR_CLI_PATH) +
                              " 2>&1 | grep -q 'deadline exhausted'";
  const int raw = std::system(command.c_str());
#ifndef _WIN32
  ASSERT_TRUE(WIFEXITED(raw));
  EXPECT_EQ(WEXITSTATUS(raw), 0);
#endif
}

TEST(CliExitCodes, CleanServeSimExitsZero) {
  EXPECT_EQ(run_cli("serve-sim Abilene 6 --deadline-us 30000000"), 0);
}

TEST(CliExitCodes, UnroutableEntriesExitSix) {
  // Isolating node 0 from request 1 onward makes every (0, t) demand
  // unroutable; the router drops those entries and the CLI reports it.
  EXPECT_EQ(run_cli("serve-sim Abilene 6 --deadline-us 30000000 "
                    "--fail-at 1 --isolate 0"),
            6);
}

TEST(CliExitCodes, ExhaustedDeadlineExitsFive) {
  // 30 us cannot cover a policy forward, so every request degrades with
  // the budget already spent.
  EXPECT_EQ(run_cli("serve-sim Abilene 6 --deadline-us 30"), 5);
}

TEST(CliExitCodes, MissingPolicyFileExitsFour) {
  EXPECT_EQ(run_cli("serve-sim Abilene 2 --policy /nonexistent/params.bin"),
            4);
}

TEST(CliExitCodes, MissingTopologyFileExitsFour) {
  EXPECT_EQ(run_cli("serve-sim /nonexistent/topology.txt 2"), 4);
}

TEST(CliExitCodes, MalformedFaultSpecExitsFour) {
  const std::string command =
      std::string("GDDR_FAULTS=bogus_site@1 ") + GDDR_CLI_PATH +
      " serve-sim Abilene 2 >/dev/null 2>&1";
  const int raw = std::system(command.c_str());
#ifndef _WIN32
  ASSERT_TRUE(WIFEXITED(raw));
  EXPECT_EQ(WEXITSTATUS(raw), 4);
#else
  EXPECT_EQ(raw, 4);
#endif
}

}  // namespace
}  // namespace gddr
