// Cross-module property tests: invariants that tie the solvers, the
// translation and the simulator together on randomised inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "mcf/optimal.hpp"
#include "routing/prune.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"
#include "topo/generators.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"

namespace gddr {
namespace {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;
using traffic::DemandMatrix;

// ---------- Dijkstra vs Bellman-Ford reference ----------

std::vector<double> bellman_ford(const DiGraph& g, NodeId src,
                                 const std::vector<double>& w) {
  std::vector<double> dist(static_cast<size_t>(g.num_nodes()),
                           graph::kInfDist);
  dist[static_cast<size_t>(src)] = 0.0;
  for (int pass = 0; pass < g.num_nodes(); ++pass) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& ed = g.edge(e);
      const double via = dist[static_cast<size_t>(ed.src)] +
                         w[static_cast<size_t>(e)];
      if (via < dist[static_cast<size_t>(ed.dst)]) {
        dist[static_cast<size_t>(ed.dst)] = via;
      }
    }
  }
  return dist;
}

class DijkstraVsBellmanFord : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraVsBellmanFord, DistancesAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DiGraph g = topo::erdos_renyi(10, 0.3, rng);
  std::vector<double> w(static_cast<size_t>(g.num_edges()));
  for (auto& x : w) x = rng.uniform(0.1, 5.0);
  for (NodeId s = 0; s < g.num_nodes(); s += 3) {
    const auto sp = graph::dijkstra(g, s, w);
    const auto ref = bellman_ford(g, s, w);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(sp.dist[static_cast<size_t>(v)],
                  ref[static_cast<size_t>(v)], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsBellmanFord,
                         ::testing::Range(0, 6));

// ---------- MCF optimum: scaling and monotonicity ----------

class McfScaling : public ::testing::TestWithParam<int> {};

TEST_P(McfScaling, UMaxScalesLinearlyWithDemand) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 40);
  const DiGraph g = topo::erdos_renyi(7, 0.4, rng);
  const DemandMatrix dm =
      traffic::bimodal_matrix(7, traffic::BimodalParams{}, rng);
  const double base = mcf::solve_optimal(g, dm).u_max;
  const double doubled = mcf::solve_optimal(g, dm.scaled(2.0)).u_max;
  EXPECT_NEAR(doubled, 2.0 * base, 2e-3 * base + 1e-9);
}

TEST_P(McfScaling, AddingDemandNeverHelps) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 80);
  const DiGraph g = topo::erdos_renyi(7, 0.4, rng);
  traffic::BimodalParams sparse;
  sparse.pair_density = 0.4;
  DemandMatrix dm = traffic::bimodal_matrix(7, sparse, rng);
  const double base = mcf::solve_optimal(g, dm).u_max;
  // Add one more demand.
  const int s = static_cast<int>(rng.uniform_index(7));
  const int t = (s + 1 + static_cast<int>(rng.uniform_index(6))) % 7;
  dm.set(s, t, dm.at(s, t) + 500.0);
  const double more = mcf::solve_optimal(g, dm).u_max;
  EXPECT_GE(more, base - 1e-6);
}

TEST_P(McfScaling, CapacityScalingInvertsUMax) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 120);
  DiGraph g(5);
  // Random strongly-connected graph with distinct capacities.
  const DiGraph base_graph = topo::erdos_renyi(5, 0.5, rng);
  DiGraph doubled(5);
  for (const auto& e : base_graph.edges()) {
    doubled.add_edge(e.src, e.dst, e.capacity * 2.0);
  }
  const DemandMatrix dm =
      traffic::bimodal_matrix(5, traffic::BimodalParams{}, rng);
  const double u1 = mcf::solve_optimal(base_graph, dm).u_max;
  const double u2 = mcf::solve_optimal(doubled, dm).u_max;
  EXPECT_NEAR(u2, u1 / 2.0, 2e-3 * u1 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McfScaling, ::testing::Range(0, 6));

// ---------- Destination-based softmin fast path is exact ----------

// The downhill prune mode's splitting ratios must equal a per-flow
// hand-derivation (prune_dag + softmin over masked out-edges) at every
// vertex that can carry the flow's traffic.
class DownhillFastPath : public ::testing::TestWithParam<int> {};

TEST_P(DownhillFastPath, MatchesPerFlowDerivation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const DiGraph g = topo::by_name(GetParam() % 2 == 0 ? "Abilene"
                                                      : "MetroLike");
  std::vector<double> w(static_cast<size_t>(g.num_edges()));
  for (auto& x : w) x = rng.uniform(0.5, 3.0);
  routing::SoftminOptions options;
  options.gamma = 2.0;
  options.prune_mode = routing::PruneMode::kDistanceToSink;
  const routing::Routing fast = routing::softmin_routing(g, w, options);

  // Hand-derive for a handful of flows.
  for (int rep = 0; rep < 6; ++rep) {
    const NodeId s = static_cast<NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes())));
    NodeId t = s;
    while (t == s) {
      t = static_cast<NodeId>(
          rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes())));
    }
    const auto mask =
        routing::prune_dag(g, s, t, w, routing::PruneMode::kDistanceToSink);
    // Vertices reachable from s in the mask carry traffic; check them.
    const auto sp_from_s = graph::dijkstra(g, s, w);
    const auto dist_to_t = graph::dijkstra_to(g, t, w);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == t) continue;
      // Only check vertices on some s->t path in the mask.
      bool has_masked_out = false;
      for (EdgeId e : g.out_edges(v)) {
        if (mask[static_cast<size_t>(e)]) has_masked_out = true;
      }
      if (!has_masked_out) continue;
      std::vector<EdgeId> outs;
      std::vector<double> costs;
      for (EdgeId e : g.out_edges(v)) {
        if (!mask[static_cast<size_t>(e)]) continue;
        outs.push_back(e);
        costs.push_back(w[static_cast<size_t>(e)] +
                        dist_to_t.dist[static_cast<size_t>(g.edge(e).dst)]);
      }
      const auto expected = routing::softmin(costs, options.gamma);
      for (size_t i = 0; i < outs.size(); ++i) {
        EXPECT_NEAR(fast.ratio(s, t, outs[i]), expected[i], 1e-6)
            << "flow " << s << "->" << t << " vertex " << v;
      }
    }
    (void)sp_from_s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DownhillFastPath, ::testing::Range(0, 6));

// ---------- Simulation linearity ----------

TEST(SimulationLinearity, LoadsScaleWithDemand) {
  const DiGraph g = topo::abilene();
  util::Rng rng(9);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const routing::Routing r = routing::softmin_routing(
      g, std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0));
  const auto sim1 = routing::simulate(g, r, dm);
  const auto sim3 = routing::simulate(g, r, dm.scaled(3.0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(sim3.link_load[static_cast<size_t>(e)],
                3.0 * sim1.link_load[static_cast<size_t>(e)], 1e-6);
  }
}

TEST(SimulationLinearity, SuperpositionOfDemands) {
  // simulate(D1 + D2) == simulate(D1) + simulate(D2) per link.
  const DiGraph g = topo::by_name("SmallRing");
  util::Rng rng(10);
  traffic::BimodalParams params;
  params.pair_density = 0.5;
  const DemandMatrix d1 = traffic::bimodal_matrix(6, params, rng);
  const DemandMatrix d2 = traffic::bimodal_matrix(6, params, rng);
  DemandMatrix sum(6);
  for (int s = 0; s < 6; ++s) {
    for (int t = 0; t < 6; ++t) {
      if (s != t) sum.set(s, t, d1.at(s, t) + d2.at(s, t));
    }
  }
  const routing::Routing r = routing::softmin_routing(
      g, std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0));
  const auto sim1 = routing::simulate(g, r, d1);
  const auto sim2 = routing::simulate(g, r, d2);
  const auto sim_sum = routing::simulate(g, r, sum);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(sim_sum.link_load[static_cast<size_t>(e)],
                sim1.link_load[static_cast<size_t>(e)] +
                    sim2.link_load[static_cast<size_t>(e)],
                1e-6);
  }
}

// ---------- Experiment configuration invariants ----------

TEST(ExperimentConfig, BanditCreditForOneShotEnv) {
  const auto cfg = core::routing_ppo_config();
  EXPECT_EQ(cfg.gamma, 0.0);
  EXPECT_EQ(cfg.gae_lambda, 0.0);
}

TEST(ExperimentConfig, MonteCarloCreditForIterativeEnv) {
  const auto cfg = core::iterative_ppo_config(28);
  EXPECT_EQ(cfg.gamma, 1.0);
  EXPECT_EQ(cfg.gae_lambda, 1.0);
  EXPECT_EQ(cfg.rollout_steps, 16 * 28);
}

TEST(ExperimentConfig, TrainStepsEnvOverride) {
  unsetenv("GDDR_BENCH_SCALE");
  setenv("GDDR_TRAIN_STEPS", "1234", 1);
  EXPECT_EQ(core::bench_train_steps(999), 1234);
  unsetenv("GDDR_TRAIN_STEPS");
  setenv("GDDR_BENCH_SCALE", "paper", 1);
  EXPECT_EQ(core::bench_train_steps(999), 500000);
  unsetenv("GDDR_BENCH_SCALE");
  EXPECT_EQ(core::bench_train_steps(999), 999);
}

TEST(ExperimentConfig, ScenarioParamsMatchPaperShape) {
  const auto p = core::experiment_scenario_params();
  EXPECT_EQ(p.sequence_length, 60);   // paper §VIII-D
  EXPECT_EQ(p.cycle_length, 10);
  EXPECT_EQ(p.train_sequences, 7);
  EXPECT_EQ(p.test_sequences, 3);
}

}  // namespace
}  // namespace gddr
