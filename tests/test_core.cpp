#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/evaluate.hpp"
#include "core/iterative_env.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "core/scenario.hpp"
#include "graph/algorithms.hpp"
#include "routing/baselines.hpp"
#include "topo/zoo.hpp"

namespace gddr::core {
namespace {

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.sequence_length = 12;
  p.cycle_length = 4;
  p.train_sequences = 2;
  p.test_sequences = 1;
  return p;
}

EnvConfig tiny_env_config() {
  EnvConfig cfg;
  cfg.memory = 3;
  return cfg;
}

// ---------------- scenarios ----------------

TEST(Scenario, PaperDefaults) {
  util::Rng rng(1);
  const Scenario s = make_abilene_scenario(rng);
  EXPECT_EQ(s.graph.num_nodes(), 11);
  EXPECT_EQ(s.train_sequences.size(), 7U);
  EXPECT_EQ(s.test_sequences.size(), 3U);
  EXPECT_EQ(s.train_sequences[0].size(), 60U);
  EXPECT_GT(s.node_feature_scale, 0.0);
  EXPECT_GT(s.flat_feature_scale, 0.0);
}

TEST(Scenario, SequencesAreCyclical) {
  util::Rng rng(2);
  const Scenario s = make_abilene_scenario(rng);
  const auto& seq = s.train_sequences[0];
  EXPECT_DOUBLE_EQ(seq[0].at(0, 1), seq[10].at(0, 1));
  EXPECT_DOUBLE_EQ(seq[3].at(2, 5), seq[53].at(2, 5));
}

TEST(Scenario, SizeBandScenarios) {
  util::Rng rng(3);
  const auto scenarios = make_size_band_scenarios(rng, tiny_params(), 6, 22);
  EXPECT_GE(scenarios.size(), 5U);
  for (const auto& s : scenarios) {
    EXPECT_GE(s.graph.num_nodes(), 6);
    EXPECT_LE(s.graph.num_nodes(), 22);
    EXPECT_EQ(s.train_sequences.size(), 2U);
  }
}

TEST(Scenario, MutatedAbileneScenariosDiffer) {
  util::Rng rng(4);
  const auto scenarios = make_mutated_abilene_scenarios(4, rng, tiny_params());
  ASSERT_EQ(scenarios.size(), 4U);
  const auto base = topo::abilene();
  for (const auto& s : scenarios) {
    EXPECT_FALSE(s.graph == base);
  }
}

// ---------------- RoutingEnv ----------------

std::vector<Scenario> tiny_scenarios(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      make_scenario(topo::by_name("SmallRing"), tiny_params(), rng));
  return scenarios;
}

TEST(RoutingEnv, ObservationShapes) {
  RoutingEnv env(tiny_scenarios(5), tiny_env_config(), 1);
  const rl::Observation obs = env.reset();
  const int n = 6;
  const int memory = 3;
  EXPECT_EQ(obs.num_nodes, n);
  EXPECT_EQ(static_cast<int>(obs.flat.size()), memory * n * n);
  EXPECT_EQ(obs.nodes.rows(), n);
  EXPECT_EQ(obs.nodes.cols(), 2 * memory);
  EXPECT_EQ(obs.edges.rows(), env.current_graph().num_edges());
  EXPECT_EQ(obs.edges.cols(), 1);
  EXPECT_EQ(static_cast<int>(obs.senders.size()),
            env.current_graph().num_edges());
}

TEST(RoutingEnv, ObservationMatchesDemandHistory) {
  RoutingEnv env(tiny_scenarios(6), tiny_env_config(), 1);
  env.set_mode(RoutingEnv::Mode::kTest);
  const rl::Observation obs = env.reset();
  const Scenario& s = env.current_scenario();
  const auto& seq = s.test_sequences[0];
  // First observation covers DMs [0, 3); newest history column pair is
  // h = memory-1 = DM index 2.
  for (int v = 0; v < 6; ++v) {
    EXPECT_NEAR(obs.nodes.at(v, 4),
                seq[2].out_sum(v) / s.node_feature_scale, 1e-5);
    EXPECT_NEAR(obs.nodes.at(v, 5),
                seq[2].in_sum(v) / s.node_feature_scale, 1e-5);
  }
  // Flat layout: oldest DM first; entry (s=1,t=2) of DM 0 is at
  // offset 0*36 + 1*6 + 2.
  EXPECT_NEAR(obs.flat[1 * 6 + 2],
              seq[0].at(1, 2) / s.flat_feature_scale, 1e-9);
}

TEST(RoutingEnv, FullDemandRowFeaturesMatchMatrix) {
  EnvConfig cfg = tiny_env_config();
  cfg.node_features = NodeFeatureMode::kFullDemandRows;
  RoutingEnv env(tiny_scenarios(55), cfg, 1);
  env.set_mode(RoutingEnv::Mode::kTest);
  const rl::Observation obs = env.reset();
  const Scenario& s = env.current_scenario();
  const auto& seq = s.test_sequences[0];
  const int n = 6;
  EXPECT_EQ(obs.nodes.cols(), 2 * n * cfg.memory);
  // History step h = 0 covers DM index 0; vertex 1's outgoing demand to
  // vertex 4 sits at column 0*2n + 4, its incoming from 4 at 0*2n + n + 4.
  EXPECT_NEAR(obs.nodes.at(1, 4),
              seq[0].at(1, 4) / s.flat_feature_scale, 1e-5);
  EXPECT_NEAR(obs.nodes.at(1, n + 4),
              seq[0].at(4, 1) / s.flat_feature_scale, 1e-5);
}

TEST(RoutingEnv, FullFeaturePolicyWidthOverride) {
  EnvConfig cfg = tiny_env_config();
  cfg.node_features = NodeFeatureMode::kFullDemandRows;
  RoutingEnv env(tiny_scenarios(56), cfg, 1);
  util::Rng prng(1);
  GnnPolicyConfig pcfg;
  pcfg.memory = cfg.memory;
  pcfg.node_feature_width = 2 * 6 * cfg.memory;
  pcfg.latent = 8;
  pcfg.steps = 1;
  pcfg.mlp_hidden = {8};
  GnnPolicy policy(pcfg, prng);
  const rl::Observation obs = env.reset();
  nn::Tape tape;
  const auto mean = policy.action_mean(tape, obs);
  EXPECT_EQ(tape.value(mean).cols(), env.current_graph().num_edges());
}

TEST(RoutingEnv, PerDestinationActionSpace) {
  EnvConfig cfg = tiny_env_config();
  cfg.action_space = ActionSpace::kPerDestinationWeights;
  RoutingEnv env(tiny_scenarios(57), cfg, 1);
  env.reset();
  const int n = env.current_graph().num_nodes();
  const int ne = env.current_graph().num_edges();
  EXPECT_EQ(env.action_dim(), n * ne);
  const std::vector<double> action(static_cast<size_t>(n * ne), 0.0);
  const auto result = env.step(action);
  EXPECT_LE(result.reward, -1.0 + 1e-9);
  // Wrong size (the |E| action) must be rejected in this mode.
  env.reset();
  EXPECT_THROW(env.step(std::vector<double>(static_cast<size_t>(ne), 0.0)),
               std::invalid_argument);
}

TEST(RoutingEnv, PerDestinationNeutralMatchesEdgeWeightNeutral) {
  // With all-zero actions both spaces produce the same neutral softmin
  // translation, hence the same reward on the same DM.
  EnvConfig edge_cfg = tiny_env_config();
  EnvConfig dest_cfg = tiny_env_config();
  dest_cfg.action_space = ActionSpace::kPerDestinationWeights;
  RoutingEnv edge_env(tiny_scenarios(58), edge_cfg, 1);
  RoutingEnv dest_env(tiny_scenarios(58), dest_cfg, 1);
  edge_env.set_mode(RoutingEnv::Mode::kTest);
  dest_env.set_mode(RoutingEnv::Mode::kTest);
  edge_env.reset();
  dest_env.reset();
  const double r_edge = edge_env
                            .step(std::vector<double>(
                                static_cast<size_t>(edge_env.action_dim()),
                                0.0))
                            .reward;
  const double r_dest = dest_env
                            .step(std::vector<double>(
                                static_cast<size_t>(dest_env.action_dim()),
                                0.0))
                            .reward;
  EXPECT_NEAR(r_edge, r_dest, 1e-9);
}

TEST(RoutingEnv, NodeFeaturesAreNormalised) {
  RoutingEnv env(tiny_scenarios(7), tiny_env_config(), 1);
  const rl::Observation obs = env.reset();
  for (int v = 0; v < obs.nodes.rows(); ++v) {
    for (int c = 0; c < obs.nodes.cols(); ++c) {
      EXPECT_LT(std::abs(obs.nodes.at(v, c)), 10.0F);
    }
  }
}

TEST(RoutingEnv, EpisodeLengthAndDone) {
  RoutingEnv env(tiny_scenarios(8), tiny_env_config(), 1);
  env.reset();
  const int expected_steps = 12 - 3;
  const std::vector<double> action(
      static_cast<size_t>(env.action_dim()), 0.0);
  for (int i = 0; i < expected_steps; ++i) {
    const auto result = env.step(action);
    EXPECT_EQ(result.done, i == expected_steps - 1) << "step " << i;
  }
}

TEST(RoutingEnv, RewardIsNegativeRatioAtLeastOne) {
  RoutingEnv env(tiny_scenarios(9), tiny_env_config(), 1);
  env.reset();
  const std::vector<double> action(
      static_cast<size_t>(env.action_dim()), 0.0);
  const auto result = env.step(action);
  // U_agent >= U_opt, so ratio >= 1 and reward <= -1.
  EXPECT_LE(result.reward, -1.0 + 1e-9);
  EXPECT_NEAR(result.reward, -env.last_ratio(), 1e-12);
}

TEST(RoutingEnv, ActionSizeMismatchThrows) {
  RoutingEnv env(tiny_scenarios(10), tiny_env_config(), 1);
  env.reset();
  EXPECT_THROW(env.step(std::vector<double>{0.0}), std::invalid_argument);
}

TEST(RoutingEnv, CacheReusedAcrossEpisodes) {
  RoutingEnv env(tiny_scenarios(11), tiny_env_config(), 1);
  const std::vector<double> action(
      static_cast<size_t>(env.action_dim()), 0.0);
  for (int ep = 0; ep < 3; ++ep) {
    env.reset();
    for (;;) {
      if (env.step(action).done) break;
    }
  }
  // Cyclical sequences: only cycle_length=4 distinct DMs per sequence, 2
  // train sequences -> at most 8 misses regardless of episode count.
  EXPECT_LE(env.cache().misses(), 8U);
  EXPECT_GT(env.cache().hits(), 0U);
}

TEST(RoutingEnv, TestModeCyclesDeterministically) {
  util::Rng rng(12);
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      make_scenario(topo::by_name("SmallRing"), tiny_params(), rng));
  scenarios.push_back(
      make_scenario(topo::by_name("JanetLike"), tiny_params(), rng));
  RoutingEnv env(std::move(scenarios), tiny_env_config(), 1);
  env.set_mode(RoutingEnv::Mode::kTest);
  EXPECT_EQ(env.num_test_episodes(), 2U);
  env.reset();
  const int first_nodes = env.current_graph().num_nodes();
  env.reset();
  const int second_nodes = env.current_graph().num_nodes();
  EXPECT_NE(first_nodes, second_nodes);  // both scenarios visited
  env.reset();
  EXPECT_EQ(env.current_graph().num_nodes(), first_nodes);  // wraps around
}

TEST(RoutingEnv, RejectsTooShortSequences) {
  util::Rng rng(13);
  ScenarioParams p = tiny_params();
  p.sequence_length = 2;  // shorter than memory
  auto scenarios = std::vector<Scenario>{
      make_scenario(topo::by_name("SmallRing"), p, rng)};
  EXPECT_THROW(RoutingEnv(std::move(scenarios), tiny_env_config(), 1),
               std::invalid_argument);
}

TEST(RoutingEnv, BetterActionsBetterReward) {
  // Sanity: the env responds to actions — the zero action and a random
  // action generally differ in reward.
  RoutingEnv env(tiny_scenarios(14), tiny_env_config(), 1);
  env.set_mode(RoutingEnv::Mode::kTest);
  env.reset();
  const std::vector<double> zero(
      static_cast<size_t>(env.action_dim()), 0.0);
  const double r_zero = env.step(zero).reward;
  env.set_mode(RoutingEnv::Mode::kTest);
  env.reset();
  util::Rng rng(15);
  std::vector<double> random_action(
      static_cast<size_t>(env.action_dim()));
  for (auto& a : random_action) a = rng.uniform(-1.0, 1.0);
  const double r_rand = env.step(random_action).reward;
  EXPECT_NE(r_zero, r_rand);
}

// ---------------- IterativeRoutingEnv ----------------

IterativeEnvConfig tiny_iter_config() {
  IterativeEnvConfig cfg;
  cfg.memory = 3;
  return cfg;
}

TEST(IterativeEnv, MicroStepStructure) {
  IterativeRoutingEnv env(tiny_scenarios(16), tiny_iter_config(), 1);
  rl::Observation obs = env.reset();
  const int ne = env.edges_per_step();
  EXPECT_EQ(env.action_dim(), 2);
  EXPECT_EQ(obs.edges.cols(), 4);  // Eq. 6 tuple + capacity feature
  // Initially: nothing set, edge 0 is the target.
  EXPECT_FLOAT_EQ(obs.edges.at(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(obs.edges.at(0, 2), 1.0F);
  EXPECT_FLOAT_EQ(obs.edges.at(1, 2), 0.0F);

  // First micro-step sets edge 0 with weight 0.5.
  const auto r1 = env.step(std::vector<double>{0.5, 0.0});
  EXPECT_EQ(r1.reward, 0.0);
  EXPECT_FALSE(r1.done);
  EXPECT_FLOAT_EQ(r1.obs.edges.at(0, 0), 0.5F);
  EXPECT_FLOAT_EQ(r1.obs.edges.at(0, 1), 1.0F);  // set flag
  EXPECT_FLOAT_EQ(r1.obs.edges.at(0, 2), 0.0F);  // no longer target
  EXPECT_FLOAT_EQ(r1.obs.edges.at(1, 2), 1.0F);  // next target
  (void)ne;
}

TEST(IterativeEnv, RewardOnlyAtDmBoundary) {
  IterativeRoutingEnv env(tiny_scenarios(17), tiny_iter_config(), 1);
  env.reset();
  const int ne = env.edges_per_step();
  for (int e = 0; e < ne - 1; ++e) {
    const auto r = env.step(std::vector<double>{0.0, 0.0});
    EXPECT_EQ(r.reward, 0.0) << "micro-step " << e;
    EXPECT_FALSE(r.done);
  }
  // Final micro-step: the reward lands and the per-DM episode ends.
  const auto final_step = env.step(std::vector<double>{0.0, 0.0});
  EXPECT_LE(final_step.reward, -1.0 + 1e-9);
  EXPECT_NEAR(final_step.reward, -env.last_ratio(), 1e-12);
  EXPECT_TRUE(final_step.done);
}

TEST(IterativeEnv, SequenceContinuesAcrossEpisodes) {
  // Per-DM episodes: resetting after each done walks through every DM of
  // the sequence (12 - memory 3 = 9 episodes of |E| micro-steps each).
  IterativeRoutingEnv env(tiny_scenarios(18), tiny_iter_config(), 1);
  env.set_mode(IterativeRoutingEnv::Mode::kTest);
  const int ne = env.edges_per_step();
  const int dms = 12 - 3;
  EXPECT_EQ(env.num_test_episodes(), static_cast<std::size_t>(dms));
  for (int dm = 0; dm < dms; ++dm) {
    env.reset();
    int steps = 0;
    for (;;) {
      const auto r = env.step(std::vector<double>{0.1, 0.0});
      ++steps;
      if (r.done) break;
    }
    EXPECT_EQ(steps, ne) << "episode " << dm;
  }
}

TEST(IterativeEnv, GammaMappingMonotoneAndBounded) {
  IterativeRoutingEnv env(tiny_scenarios(19), tiny_iter_config(), 1);
  EXPECT_NEAR(env.map_gamma(-1.0), 0.5, 1e-9);
  EXPECT_NEAR(env.map_gamma(1.0), 20.0, 1e-9);
  EXPECT_LT(env.map_gamma(-0.5), env.map_gamma(0.5));
  // Out-of-range actions are clamped.
  EXPECT_NEAR(env.map_gamma(-7.0), 0.5, 1e-9);
}

TEST(IterativeEnv, WrongActionSizeThrows) {
  IterativeRoutingEnv env(tiny_scenarios(20), tiny_iter_config(), 1);
  env.reset();
  EXPECT_THROW(env.step(std::vector<double>{0.0}), std::invalid_argument);
}

// ---------------- policies ----------------

TEST(MlpPolicy, ShapesAndParameters) {
  util::Rng rng(21);
  MlpPolicyConfig cfg;
  cfg.pi_hidden = {32};
  cfg.vf_hidden = {32};
  MlpPolicy policy(27, 8, cfg, rng);
  EXPECT_GT(policy.num_parameters(), 0U);
  rl::Observation obs;
  obs.flat.assign(27, 0.1);
  nn::Tape tape;
  EXPECT_EQ(policy.action_dim(obs), 8);
  const auto mean = policy.action_mean(tape, obs);
  EXPECT_EQ(tape.value(mean).cols(), 8);
  const auto v = policy.value(tape, obs);
  EXPECT_EQ(tape.value(v).rows(), 1);
  EXPECT_EQ(tape.value(v).cols(), 1);
  const auto ls = policy.log_std_row(tape, 8);
  EXPECT_EQ(tape.value(ls).cols(), 8);
}

TEST(MlpPolicy, RejectsWrongObservationSize) {
  util::Rng rng(22);
  MlpPolicy policy(10, 4, MlpPolicyConfig{}, rng);
  rl::Observation obs;
  obs.flat.assign(12, 0.0);
  EXPECT_THROW(policy.action_dim(obs), std::invalid_argument);
  nn::Tape tape;
  EXPECT_THROW(policy.log_std_row(tape, 3), std::invalid_argument);
}

TEST(GnnPolicy, ActionDimFollowsGraph) {
  util::Rng rng(23);
  GnnPolicyConfig cfg;
  cfg.memory = 3;
  GnnPolicy policy(cfg, rng);
  RoutingEnv env(tiny_scenarios(24), tiny_env_config(), 1);
  const rl::Observation obs = env.reset();
  EXPECT_EQ(policy.action_dim(obs), env.current_graph().num_edges());
  nn::Tape tape;
  const auto mean = policy.action_mean(tape, obs);
  EXPECT_EQ(tape.value(mean).cols(), env.current_graph().num_edges());
  const auto ls = policy.log_std_row(tape, policy.action_dim(obs));
  EXPECT_EQ(tape.value(ls).cols(), env.current_graph().num_edges());
  // Shared scalar: all entries equal.
  for (int j = 1; j < tape.value(ls).cols(); ++j) {
    EXPECT_FLOAT_EQ(tape.value(ls).at(0, j), tape.value(ls).at(0, 0));
  }
}

TEST(GnnPolicy, SameParametersAcrossTopologies) {
  util::Rng rng(25);
  GnnPolicyConfig cfg;
  cfg.memory = 3;
  GnnPolicy policy(cfg, rng);
  const std::size_t params_before = policy.num_parameters();

  util::Rng srng(26);
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      make_scenario(topo::by_name("SmallRing"), tiny_params(), srng));
  scenarios.push_back(
      make_scenario(topo::by_name("GeantLike"), tiny_params(), srng));
  for (const auto& s : scenarios) {
    RoutingEnv env({s}, tiny_env_config(), 1);
    const rl::Observation obs = env.reset();
    nn::Tape tape;
    const auto mean = policy.action_mean(tape, obs);
    EXPECT_EQ(tape.value(mean).cols(), s.graph.num_edges());
  }
  EXPECT_EQ(policy.num_parameters(), params_before);
}

TEST(IterativeGnnPolicy, TwoDimensionalAction) {
  util::Rng rng(27);
  IterativeGnnPolicyConfig cfg;
  cfg.memory = 3;
  IterativeGnnPolicy policy(cfg, rng);
  IterativeRoutingEnv env(tiny_scenarios(28), tiny_iter_config(), 1);
  const rl::Observation obs = env.reset();
  EXPECT_EQ(policy.action_dim(obs), 2);
  nn::Tape tape;
  const auto mean = policy.action_mean(tape, obs);
  EXPECT_EQ(tape.value(mean).cols(), 2);
  EXPECT_THROW(policy.log_std_row(tape, 5), std::invalid_argument);
}

// ---------------- evaluation helpers ----------------

TEST(Evaluate, ShortestPathRatioAtLeastOne) {
  const auto scenarios = tiny_scenarios(29);
  mcf::OptimalCache cache;
  const EvalResult r = evaluate_shortest_path(scenarios, 3, cache);
  EXPECT_GE(r.mean_ratio, 1.0 - 1e-9);
  EXPECT_EQ(r.episodes, 1);
  EXPECT_EQ(r.steps, 9);  // 12 DMs - memory 3
}

TEST(Evaluate, FixedEcmpBeatsOrMatchesShortestPath) {
  const auto scenarios = tiny_scenarios(30);
  mcf::OptimalCache cache;
  const EvalResult sp = evaluate_shortest_path(scenarios, 3, cache);
  const EvalResult ecmp = evaluate_fixed(
      scenarios, 3, cache, [](const graph::DiGraph& g) {
        return routing::ecmp_routing(g, graph::unit_weights(g));
      });
  EXPECT_LE(ecmp.mean_ratio, sp.mean_ratio * 1.25);
  EXPECT_GE(ecmp.mean_ratio, 1.0 - 1e-9);
}

}  // namespace
}  // namespace gddr::core
