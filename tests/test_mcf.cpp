#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mcf/cache.hpp"
#include "mcf/fptas.hpp"
#include "mcf/optimal.hpp"
#include "topo/generators.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"

namespace gddr::mcf {
namespace {

using graph::DiGraph;
using traffic::DemandMatrix;

DiGraph two_parallel_paths() {
  // 0 -> 1 directly (capacity 10) and via 2 (capacity 10 each hop).
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 1, 10.0);
  return g;
}

TEST(Optimal, SingleEdgeUtilisation) {
  DiGraph g(2);
  g.add_edge(0, 1, 10.0);
  DemandMatrix dm(2);
  dm.set(0, 1, 5.0);
  const OptimalResult r = solve_optimal(g, dm);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.u_max, 0.5, 1e-7);
}

TEST(Optimal, SplitsAcrossParallelPaths) {
  // 16 units from 0 to 1; splitting 8/8 gives U = 0.8, all on one path
  // would give 1.6.  The LP must split.
  const DiGraph g = two_parallel_paths();
  DemandMatrix dm(3);
  dm.set(0, 1, 16.0);
  const OptimalResult r = solve_optimal(g, dm);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.u_max, 0.8, 1e-7);
}

TEST(Optimal, OverloadedNetworkExceedsOne) {
  DiGraph g(2);
  g.add_edge(0, 1, 10.0);
  DemandMatrix dm(2);
  dm.set(0, 1, 25.0);
  const OptimalResult r = solve_optimal(g, dm);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.u_max, 2.5, 1e-7);
}

TEST(Optimal, ZeroDemandZeroUtilisation) {
  const DiGraph g = two_parallel_paths();
  const OptimalResult r = solve_optimal(g, DemandMatrix(3));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.u_max, 0.0);
}

TEST(Optimal, FlowConservationHolds) {
  const DiGraph g = topo::abilene();
  util::Rng rng(3);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const OptimalResult r = solve_optimal(g, dm);
  ASSERT_TRUE(r.feasible);
  // For each destination t and node v != t: net outflow == demand v->t.
  for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
    const auto& flow = r.flow_by_dest[static_cast<size_t>(t)];
    if (flow.empty()) continue;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == t) continue;
      double net = 0.0;
      for (graph::EdgeId e : g.out_edges(v)) {
        net += flow[static_cast<size_t>(e)];
      }
      for (graph::EdgeId e : g.in_edges(v)) {
        net -= flow[static_cast<size_t>(e)];
      }
      EXPECT_NEAR(net, dm.at(v, t), 1e-4);
    }
  }
}

TEST(Optimal, UtilisationConsistentWithFlows) {
  const DiGraph g = topo::abilene();
  util::Rng rng(4);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const OptimalResult r = solve_optimal(g, dm);
  ASSERT_TRUE(r.feasible);
  const auto util = edge_utilisation(g, r);
  double max_util = 0.0;
  for (double u : util) max_util = std::max(max_util, u);
  EXPECT_NEAR(max_util, r.u_max, 1e-5);
}

TEST(Optimal, SizeMismatchThrows) {
  EXPECT_THROW(solve_optimal(two_parallel_paths(), DemandMatrix(5)),
               std::invalid_argument);
}

// The destination-aggregated LP must agree with the textbook
// per-commodity LP (paper §II-A) — the core exactness claim of the
// aggregation (DESIGN.md §4).
class AggregationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AggregationEquivalence, MatchesPerCommodityFormulation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DiGraph g = topo::erdos_renyi(6, 0.4, rng);
  traffic::BimodalParams params;
  params.pair_density = 0.5;
  const DemandMatrix dm = traffic::bimodal_matrix(6, params, rng);
  const OptimalResult agg = solve_optimal(g, dm);
  ASSERT_TRUE(agg.feasible);
  const double per_commodity = solve_optimal_per_commodity(g, dm);
  EXPECT_NEAR(agg.u_max, per_commodity, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationEquivalence,
                         ::testing::Range(0, 10));

// FPTAS cross-check: 1/max_concurrent_flow approximates the LP optimum.
class FptasAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FptasAgreement, WithinGuarantee) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  const DiGraph g = topo::erdos_renyi(8, 0.35, rng);
  const DemandMatrix dm =
      traffic::bimodal_matrix(8, traffic::BimodalParams{}, rng);
  const OptimalResult lp = solve_optimal(g, dm);
  ASSERT_TRUE(lp.feasible);
  FptasOptions opt;
  opt.epsilon = 0.05;
  const double approx = approx_optimal_u_max(g, dm, opt);
  // approx is an over-estimate of U* within the (1-3eps) guarantee.
  EXPECT_GE(approx, lp.u_max * (1.0 - 1e-6));
  EXPECT_LE(approx, lp.u_max / (1.0 - 3.0 * opt.epsilon) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FptasAgreement, ::testing::Range(0, 8));

TEST(Fptas, ZeroDemand) {
  const DiGraph g = two_parallel_paths();
  EXPECT_EQ(max_concurrent_flow(g, DemandMatrix(3)), 0.0);
  EXPECT_EQ(approx_optimal_u_max(g, DemandMatrix(3)), 0.0);
}

TEST(Fptas, BadEpsilonThrows) {
  const DiGraph g = two_parallel_paths();
  DemandMatrix dm(3);
  dm.set(0, 1, 1.0);
  FptasOptions opt;
  opt.epsilon = 0.0;
  EXPECT_THROW(max_concurrent_flow(g, dm, opt), std::invalid_argument);
  opt.epsilon = 0.7;
  EXPECT_THROW(max_concurrent_flow(g, dm, opt), std::invalid_argument);
}

TEST(Cache, HitsOnRepeatedQueries) {
  OptimalCache cache;
  const DiGraph g = topo::abilene();
  util::Rng rng(9);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const double first = cache.u_max(g, dm);
  const double second = cache.u_max(g, dm);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.misses(), 1U);
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.size(), 1U);
}

TEST(Cache, DistinguishesDemands) {
  OptimalCache cache;
  const DiGraph g = two_parallel_paths();
  DemandMatrix a(3);
  a.set(0, 1, 4.0);
  DemandMatrix b(3);
  b.set(0, 1, 8.0);
  EXPECT_NE(cache.u_max(g, a), cache.u_max(g, b));
  EXPECT_EQ(cache.size(), 2U);
}

TEST(Cache, DistinguishesGraphs) {
  OptimalCache cache;
  DemandMatrix dm(3);
  dm.set(0, 1, 16.0);
  const DiGraph g1 = two_parallel_paths();
  DiGraph g2 = two_parallel_paths();
  g2.add_edge(1, 0, 10.0);  // extra edge changes the fingerprint
  cache.u_max(g1, dm);
  cache.u_max(g2, dm);
  EXPECT_EQ(cache.size(), 2U);
}

TEST(Cache, ClearResets) {
  OptimalCache cache;
  DemandMatrix dm(3);
  dm.set(0, 1, 1.0);
  cache.u_max(two_parallel_paths(), dm);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.hits(), 0U);
  EXPECT_EQ(cache.misses(), 0U);
}

TEST(Fingerprint, SensitiveToCapacity) {
  DiGraph a(2);
  a.add_edge(0, 1, 10.0);
  DiGraph b(2);
  b.add_edge(0, 1, 20.0);
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(Fingerprint, SensitiveToDemandValue) {
  DemandMatrix a(2);
  a.set(0, 1, 1.0);
  DemandMatrix b(2);
  b.set(0, 1, 2.0);
  EXPECT_NE(demand_fingerprint(a), demand_fingerprint(b));
}

TEST(Fingerprint, StableAcrossCopies) {
  const DiGraph g = topo::abilene();
  const DiGraph copy = g;
  EXPECT_EQ(graph_fingerprint(g), graph_fingerprint(copy));
}

TEST(Fingerprint, EdgeRemoveThenReAddHashesDifferently) {
  // Documented guarantee (see cache.hpp): the fingerprint digests edges
  // in storage order, so removing an edge and re-adding the same
  // (src, dst, capacity) appends it at the end — a different
  // representation, hence a different hash.  operator== shares the
  // order-sensitivity, so fingerprint-equal still tracks graph-equal.
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 20.0);
  g.add_edge(2, 0, 30.0);
  const std::uint64_t before = graph_fingerprint(g);

  std::vector<bool> remove(static_cast<std::size_t>(g.num_edges()), false);
  remove[0] = true;  // drop 0 -> 1
  DiGraph readded = g.without_edges(remove);
  readded.add_edge(0, 1, 10.0);  // same edge, now last in storage order

  EXPECT_NE(graph_fingerprint(readded), before);
  EXPECT_FALSE(readded == g);
  // Same mutation sequence -> same representation -> same hash.
  DiGraph readded2 = g.without_edges(remove);
  readded2.add_edge(0, 1, 10.0);
  EXPECT_EQ(graph_fingerprint(readded2), graph_fingerprint(readded));
}

TEST(Fingerprint, NodeRemovalCompactionAliasesNativeGraph) {
  // Documented guarantee (see cache.hpp): without_node renumbers the
  // survivors, so the compacted graph is the *same representation* as a
  // natively built graph with those nodes/edges and must hash equal.
  // Callers tracking identity across mutations carry their own epoch.
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 0, 3.0);
  const DiGraph compacted = g.without_node(0);

  DiGraph native(2);
  native.add_edge(0, 1, 2.0);  // old 1 -> 2, renumbered down by one
  EXPECT_EQ(graph_fingerprint(compacted), graph_fingerprint(native));
  EXPECT_NE(graph_fingerprint(compacted), graph_fingerprint(g));
}

}  // namespace
}  // namespace gddr::mcf
