// Tests for the parallel execution layer: the thread pool, vectorised
// collection determinism, GAE truncation bootstrapping, the bounded
// thread-safe LP cache, and parallel evaluation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/evaluate.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "core/scenario.hpp"
#include "mcf/cache.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_env.hpp"
#include "routing/baselines.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/thread_pool.hpp"

namespace gddr {
namespace {

// ---------------- ThreadPool ----------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(257);
  util::parallel_for(&pool, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOneIsInlineOnCallingThread) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0);  // no worker threads: inline execution
  const auto caller = std::this_thread::get_id();
  bool same_thread = false;
  util::parallel_for(&pool, 1,
                     [&](std::size_t) {
                       same_thread = std::this_thread::get_id() == caller;
                     });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, NullPoolRunsSerially) {
  int sum = 0;
  util::parallel_for(nullptr, 10,
                     [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  util::ThreadPool pool(3);
  EXPECT_THROW(util::parallel_for(&pool, 64,
                                  [](std::size_t i) {
                                    if (i == 7) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  util::ThreadPool pool(4);
  const auto out = util::parallel_map(
      &pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100U);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(ThreadPool, ConsumeWorkersFlagParsesAndRemoves) {
  char prog[] = "prog";
  char flag[] = "--workers";
  char value[] = "3";
  char cmd[] = "eval";
  char* argv[] = {prog, flag, value, cmd, nullptr};
  int argc = 4;
  EXPECT_EQ(util::consume_workers_flag(argc, argv), 3);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "eval");
}

TEST(ThreadPool, ConsumeWorkersFlagEqualsForm) {
  char prog[] = "prog";
  char flag[] = "--workers=5";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(util::consume_workers_flag(argc, argv), 5);
  EXPECT_EQ(argc, 1);
}

TEST(ThreadPool, ConsumeWorkersFlagRejectsGarbage) {
  char prog[] = "prog";
  char flag[] = "--workers";
  char value[] = "banana";
  char* argv[] = {prog, flag, value, nullptr};
  int argc = 3;
  EXPECT_THROW(util::consume_workers_flag(argc, argv),
               std::invalid_argument);
}

// ---------------- GAE truncation bootstrapping ----------------

rl::StepSample gae_sample(double reward, double value, bool done) {
  rl::StepSample s;
  s.reward = reward;
  s.value = value;
  s.done = done;
  return s;
}

// The regression this PR fixes: a time-limit truncation used to be treated
// as a true terminal (successor value zeroed).  A truncated step must
// bootstrap from the recorded V(s_T) instead.  Against the old
// compute_gae this expects 1.4 but gets 0.4.
TEST(GaeTruncation, TruncatedStepBootstrapsFromRecordedValue) {
  rl::RolloutBuffer buffer;
  rl::StepSample s = gae_sample(1.0, 0.6, /*done=*/true);
  s.truncated = true;
  s.bootstrap_value = 2.0;
  buffer.add(s);
  buffer.compute_gae(/*gamma=*/0.5, /*lambda=*/0.95, /*last_value=*/0.0,
                     false);
  // delta = r + gamma * V(s_T) - V(s) = 1 + 0.5*2 - 0.6 = 1.4.
  EXPECT_NEAR(buffer.samples()[0].advantage, 1.4, 1e-12);
  EXPECT_NEAR(buffer.samples()[0].return_, 2.0, 1e-12);
}

TEST(GaeTruncation, TruncationRestartsAdvantageRecursion) {
  rl::RolloutBuffer buffer;
  // Env segment A: one mid-episode step, then a truncated cut.
  buffer.add(gae_sample(0.0, 0.0, false));
  rl::StepSample cut = gae_sample(0.0, 0.0, false);
  cut.truncated = true;
  cut.bootstrap_value = 0.0;
  buffer.add(cut);
  // Env segment B: a huge-reward terminal step.  Its advantage must not
  // leak backwards across the truncation boundary.
  buffer.add(gae_sample(100.0, 0.0, true));
  buffer.compute_gae(0.99, 0.95, 0.0, false);
  EXPECT_NEAR(buffer.samples()[0].advantage, 0.0, 1e-12);
  EXPECT_NEAR(buffer.samples()[1].advantage, 0.0, 1e-12);
  EXPECT_NEAR(buffer.samples()[2].advantage, 100.0, 1e-12);
}

TEST(GaeTruncation, DoneWithoutTruncationStillZeroes) {
  rl::RolloutBuffer buffer;
  rl::StepSample s = gae_sample(1.0, 0.6, /*done=*/true);
  s.bootstrap_value = 2.0;  // must be ignored: not truncated
  buffer.add(s);
  buffer.compute_gae(0.5, 0.95, 0.0, false);
  EXPECT_NEAR(buffer.samples()[0].advantage, 0.4, 1e-12);
}

// ---------------- RoutingEnv truncation semantics ----------------

core::ScenarioParams tiny_params() {
  core::ScenarioParams p;
  p.sequence_length = 12;
  p.cycle_length = 4;
  p.train_sequences = 2;
  p.test_sequences = 1;
  return p;
}

core::EnvConfig tiny_env_config() {
  core::EnvConfig cfg;
  cfg.memory = 3;
  return cfg;
}

std::vector<core::Scenario> tiny_scenarios(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Scenario> scenarios;
  scenarios.push_back(
      core::make_scenario(topo::by_name("SmallRing"), tiny_params(), rng));
  return scenarios;
}

TEST(RoutingEnvTruncation, StepCapTruncatesWithTerminalObservation) {
  core::EnvConfig cfg = tiny_env_config();
  cfg.max_episode_steps = 2;
  core::RoutingEnv env(tiny_scenarios(3), cfg, 1);
  env.reset();
  const std::vector<double> action(static_cast<size_t>(env.action_dim()),
                                   0.0);
  auto r1 = env.step(action);
  EXPECT_FALSE(r1.done);
  auto r2 = env.step(action);
  EXPECT_TRUE(r2.done);
  EXPECT_TRUE(r2.truncated);
  // Terminal observation must be present for the V(s_T) bootstrap.
  EXPECT_FALSE(r2.obs.flat.empty());
}

TEST(RoutingEnvTruncation, SequenceEndIsAlsoTruncation) {
  core::RoutingEnv env(tiny_scenarios(4), tiny_env_config(), 1);
  env.reset();
  const std::vector<double> action(static_cast<size_t>(env.action_dim()),
                                   0.0);
  const int len = env.episode_length();
  for (int t = 0; t < len; ++t) {
    const auto r = env.step(action);
    EXPECT_EQ(r.done, t == len - 1);
    if (r.done) {
      EXPECT_TRUE(r.truncated);
      EXPECT_FALSE(r.obs.flat.empty());
    }
  }
}

// ---------------- VecEnvCollector determinism ----------------

// Deterministic toy env (reward peaks when the action hits a per-instance
// target); episodes are 5 steps, so a 7-step segment ends mid-episode and
// exercises the truncated-tail bootstrap.
class TargetEnv final : public rl::Env {
 public:
  explicit TargetEnv(double target, int episode_len = 5)
      : target_(target), episode_len_(episode_len) {}

  rl::Observation reset() override {
    t_ = 0;
    return make_obs();
  }

  StepResult step(std::span<const double> action) override {
    StepResult r;
    const double err = action[0] - target_;
    r.reward = -err * err;
    r.done = ++t_ >= episode_len_;
    if (!r.done) r.obs = make_obs();
    return r;
  }

  int action_dim() const override { return 1; }

 private:
  rl::Observation make_obs() const {
    rl::Observation obs;
    obs.flat = {1.0};
    obs.num_nodes = 1;
    obs.nodes = nn::Tensor(1, 1, 1.0F);
    obs.edges = nn::Tensor(0, 1);
    obs.globals = nn::Tensor(1, 1);
    return obs;
  }
  double target_;
  int episode_len_;
  int t_ = 0;
};

rl::RolloutBuffer collect_with_pool(util::ThreadPool* pool, int steps_per_env,
                                    rl::VecEnvCollector::CollectStats* stats) {
  util::Rng prng(21);
  core::MlpPolicyConfig pcfg;
  pcfg.pi_hidden = {8};
  pcfg.vf_hidden = {8};
  core::MlpPolicy policy(1, 1, pcfg, prng);
  std::vector<TargetEnv> envs;
  for (int i = 0; i < 4; ++i) {
    envs.emplace_back(0.25 * i);
  }
  std::vector<rl::Env*> env_ptrs;
  for (auto& env : envs) env_ptrs.push_back(&env);
  rl::VecEnvCollector collector(policy, env_ptrs, /*seed=*/99, pool);
  rl::RolloutBuffer buffer;
  const auto s = collector.collect(steps_per_env, /*reward_scale=*/1.0,
                                   buffer);
  if (stats != nullptr) *stats = s;
  return buffer;
}

TEST(VecEnvCollector, ParallelCollectionBitIdenticalToSerial) {
  rl::VecEnvCollector::CollectStats serial_stats;
  rl::VecEnvCollector::CollectStats parallel_stats;
  const rl::RolloutBuffer serial =
      collect_with_pool(nullptr, 7, &serial_stats);
  util::ThreadPool pool(4);
  const rl::RolloutBuffer parallel =
      collect_with_pool(&pool, 7, &parallel_stats);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 28U);  // 4 envs x 7 steps, env-major
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const rl::StepSample& a = serial.samples()[i];
    const rl::StepSample& b = parallel.samples()[i];
    ASSERT_EQ(a.action.size(), b.action.size()) << "sample " << i;
    for (std::size_t k = 0; k < a.action.size(); ++k) {
      EXPECT_EQ(a.action[k], b.action[k]) << "sample " << i;
    }
    EXPECT_EQ(a.log_prob, b.log_prob) << "sample " << i;
    EXPECT_EQ(a.value, b.value) << "sample " << i;
    EXPECT_EQ(a.reward, b.reward) << "sample " << i;
    EXPECT_EQ(a.done, b.done) << "sample " << i;
    EXPECT_EQ(a.truncated, b.truncated) << "sample " << i;
    EXPECT_EQ(a.bootstrap_value, b.bootstrap_value) << "sample " << i;
  }
  EXPECT_EQ(serial_stats.steps, parallel_stats.steps);
  EXPECT_EQ(serial_stats.episodes, parallel_stats.episodes);
  EXPECT_EQ(serial_stats.episode_reward_sum,
            parallel_stats.episode_reward_sum);
}

TEST(VecEnvCollector, SegmentTailIsTruncatedWithBootstrap) {
  // 7 steps of a 5-step episode: each env's segment ends 2 steps into its
  // second episode, so the last sample per env must be a truncated cut.
  const rl::RolloutBuffer buffer = collect_with_pool(nullptr, 7, nullptr);
  for (int env = 0; env < 4; ++env) {
    const rl::StepSample& boundary =
        buffer.samples()[static_cast<size_t>(env) * 7 + 4];
    const rl::StepSample& tail =
        buffer.samples()[static_cast<size_t>(env) * 7 + 6];
    EXPECT_TRUE(boundary.done);       // first episode's genuine terminal
    EXPECT_FALSE(boundary.truncated);
    EXPECT_FALSE(tail.done);
    EXPECT_TRUE(tail.truncated);
  }
}

// ---------------- Bounded thread-safe OptimalCache ----------------

graph::DiGraph two_parallel_paths() {
  graph::DiGraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 1, 10.0);
  return g;
}

traffic::DemandMatrix demand_to_1(double amount) {
  traffic::DemandMatrix dm(3);
  dm.set(0, 1, amount);
  return dm;
}

TEST(CacheBounded, EvictsLeastRecentlyUsed) {
  mcf::OptimalCache cache(/*capacity=*/2);
  const graph::DiGraph g = two_parallel_paths();
  cache.u_max(g, demand_to_1(1.0));  // miss: {1}
  cache.u_max(g, demand_to_1(2.0));  // miss: {1, 2}
  cache.u_max(g, demand_to_1(1.0));  // hit, refreshes 1: {2, 1}
  cache.u_max(g, demand_to_1(3.0));  // miss, evicts 2: {1, 3}
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.evictions(), 1U);
  cache.u_max(g, demand_to_1(1.0));  // still cached (was refreshed)
  EXPECT_EQ(cache.hits(), 2U);
  cache.u_max(g, demand_to_1(2.0));  // evicted above: miss again
  EXPECT_EQ(cache.misses(), 4U);
  EXPECT_LE(cache.size(), 2U);
}

TEST(CacheBounded, ConcurrentStressMatchesSerialReference) {
  const graph::DiGraph g = topo::by_name("SmallRing");
  constexpr std::size_t kDistinct = 12;
  constexpr std::size_t kQueries = 96;
  std::vector<traffic::DemandMatrix> dms;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    util::Rng rng(1000 + i);
    dms.push_back(traffic::bimodal_matrix(g.num_nodes(),
                                          traffic::BimodalParams{}, rng));
  }
  // Serial reference values with an unbounded cache.
  mcf::OptimalCache reference;
  std::vector<double> expected;
  for (const auto& dm : dms) expected.push_back(reference.u_max(g, dm));

  // Small capacity so the stress run must evict and recompute; the values
  // returned under contention must still match the serial reference.
  mcf::OptimalCache cache(/*capacity=*/8);
  util::ThreadPool pool(4);
  std::vector<double> got(kQueries);
  util::parallel_for(&pool, kQueries, [&](std::size_t q) {
    got[q] = cache.u_max(g, dms[q % kDistinct]);
  });
  for (std::size_t q = 0; q < kQueries; ++q) {
    EXPECT_EQ(got[q], expected[q % kDistinct]) << "query " << q;
  }
  // Exactly one hit-or-miss per query; the map never exceeds its bound.
  EXPECT_EQ(cache.hits() + cache.misses(), kQueries);
  EXPECT_LE(cache.size(), 8U);
  EXPECT_GT(cache.evictions(), 0U);
}

// ---------------- Softmin numeric properties ----------------

TEST(SoftminProperty, LargeGammaWithTiedDistancesStaysFinite) {
  for (const double gamma : {1e6, 1e7, 1e8}) {
    const std::vector<double> x = {5.0, 5.0, 5.0, 7.0};
    const auto p = routing::softmin(x, gamma);
    ASSERT_EQ(p.size(), x.size());
    double sum = 0.0;
    for (const double v : p) {
      EXPECT_TRUE(std::isfinite(v)) << "gamma " << gamma;
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "gamma " << gamma;
    // Tied minima split the mass equally; the dominated entry gets none.
    EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(p[1], p[0], 1e-12);
    EXPECT_NEAR(p[2], p[0], 1e-12);
    EXPECT_NEAR(p[3], 0.0, 1e-9);
  }
}

TEST(SoftminProperty, HugeMagnitudeInputsDoNotOverflow) {
  const std::vector<double> x = {1e300, 1e300};
  const auto p = routing::softmin(x, 1e8);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

// ---------------- Parallel evaluation determinism ----------------

TEST(EvaluateParallel, FixedRoutingBitIdenticalAcrossWorkerCounts) {
  util::Rng rng(31);
  core::ScenarioParams params = tiny_params();
  params.test_sequences = 3;
  std::vector<core::Scenario> scenarios;
  scenarios.push_back(
      core::make_scenario(topo::by_name("SmallRing"), params, rng));

  const auto shortest = [](const graph::DiGraph& g) {
    return routing::shortest_path_routing(g);
  };
  mcf::OptimalCache serial_cache;
  const core::EvalResult serial = core::evaluate_fixed(
      scenarios, /*memory=*/3, serial_cache, shortest, nullptr);

  util::ThreadPool pool(4);
  mcf::OptimalCache parallel_cache;
  const core::EvalResult parallel = core::evaluate_fixed(
      scenarios, /*memory=*/3, parallel_cache, shortest, &pool);

  EXPECT_EQ(serial.mean_ratio, parallel.mean_ratio);
  EXPECT_EQ(serial.stddev, parallel.stddev);
  EXPECT_EQ(serial.min_ratio, parallel.min_ratio);
  EXPECT_EQ(serial.max_ratio, parallel.max_ratio);
  EXPECT_EQ(serial.steps, parallel.steps);
  EXPECT_EQ(serial.episodes, parallel.episodes);
}

}  // namespace
}  // namespace gddr
