#include <gtest/gtest.h>

#include <cmath>

#include "core/policies.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"

namespace gddr::rl {
namespace {

// ---------------- GAE ----------------

StepSample make_sample(double reward, double value, bool done) {
  StepSample s;
  s.reward = reward;
  s.value = value;
  s.done = done;
  return s;
}

TEST(Gae, SingleStepTerminal) {
  RolloutBuffer buffer;
  buffer.add(make_sample(1.0, 0.5, true));
  buffer.compute_gae(0.99, 0.95, /*last_value=*/123.0, false);
  // Terminal: delta = r - V = 0.5; bootstrap ignored.
  EXPECT_NEAR(buffer.samples()[0].advantage, 0.5, 1e-12);
  EXPECT_NEAR(buffer.samples()[0].return_, 1.0, 1e-12);
}

TEST(Gae, BootstrapUsedWhenNotDone) {
  RolloutBuffer buffer;
  buffer.add(make_sample(1.0, 0.5, false));
  buffer.compute_gae(0.9, 1.0, /*last_value=*/2.0, false);
  // delta = 1 + 0.9*2 - 0.5 = 2.3
  EXPECT_NEAR(buffer.samples()[0].advantage, 2.3, 1e-12);
}

TEST(Gae, HandComputedTwoSteps) {
  RolloutBuffer buffer;
  buffer.add(make_sample(1.0, 1.0, false));
  buffer.add(make_sample(2.0, 2.0, true));
  const double gamma = 0.5;
  const double lambda = 0.5;
  buffer.compute_gae(gamma, lambda, 0.0, false);
  // Step 1 (terminal): delta1 = 2 - 2 = 0, A1 = 0.
  // Step 0: delta0 = 1 + 0.5*2 - 1 = 1; A0 = 1 + 0.25*0 = 1.
  EXPECT_NEAR(buffer.samples()[1].advantage, 0.0, 1e-12);
  EXPECT_NEAR(buffer.samples()[0].advantage, 1.0, 1e-12);
  EXPECT_NEAR(buffer.samples()[0].return_, 2.0, 1e-12);
}

TEST(Gae, DoneBlocksCreditAcrossEpisodes) {
  RolloutBuffer buffer;
  buffer.add(make_sample(0.0, 0.0, true));   // episode 1 ends
  buffer.add(make_sample(10.0, 0.0, true));  // episode 2
  buffer.compute_gae(0.99, 0.95, 0.0, false);
  // The huge reward of episode 2 must not leak into episode 1.
  EXPECT_NEAR(buffer.samples()[0].advantage, 0.0, 1e-12);
}

TEST(Gae, NormalisationZeroMeanUnitStd) {
  RolloutBuffer buffer;
  for (int i = 0; i < 10; ++i) {
    buffer.add(make_sample(i, 0.0, i == 9));
  }
  buffer.compute_gae(0.9, 0.9, 0.0, true);
  double mean = 0.0;
  for (const auto& s : buffer.samples()) mean += s.advantage;
  mean /= 10.0;
  double var = 0.0;
  for (const auto& s : buffer.samples()) {
    var += (s.advantage - mean) * (s.advantage - mean);
  }
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(std::sqrt(var / 10.0), 1.0, 1e-6);
}

TEST(Gae, LambdaOneEqualsMonteCarloReturns) {
  RolloutBuffer buffer;
  buffer.add(make_sample(1.0, 0.0, false));
  buffer.add(make_sample(1.0, 0.0, false));
  buffer.add(make_sample(1.0, 0.0, true));
  const double gamma = 0.5;
  buffer.compute_gae(gamma, 1.0, 0.0, false);
  // Discounted returns: 1 + 0.5 + 0.25 = 1.75 etc.; V=0 so A = G.
  EXPECT_NEAR(buffer.samples()[0].return_, 1.75, 1e-12);
  EXPECT_NEAR(buffer.samples()[1].return_, 1.5, 1e-12);
  EXPECT_NEAR(buffer.samples()[2].return_, 1.0, 1e-12);
}

// ---------------- PPO on a trivial continuous-control task ----------------

// Reward is highest when the action matches a fixed target; the state is
// constant, so the policy just has to shift its mean.
class TargetEnv final : public Env {
 public:
  explicit TargetEnv(double target, int episode_len = 8)
      : target_(target), episode_len_(episode_len) {}

  Observation reset() override {
    t_ = 0;
    return make_obs();
  }

  StepResult step(std::span<const double> action) override {
    StepResult r;
    const double err = action[0] - target_;
    r.reward = -err * err;
    r.done = ++t_ >= episode_len_;
    if (!r.done) r.obs = make_obs();
    return r;
  }

  int action_dim() const override { return 1; }

 private:
  Observation make_obs() const {
    Observation obs;
    obs.flat = {1.0};
    obs.num_nodes = 1;
    obs.nodes = nn::Tensor(1, 1, 1.0F);
    obs.edges = nn::Tensor(0, 1);
    obs.globals = nn::Tensor(1, 1);
    return obs;
  }
  double target_;
  int episode_len_;
  int t_ = 0;
};

TEST(Ppo, LearnsConstantTarget) {
  util::Rng rng(7);
  core::MlpPolicyConfig pcfg;
  pcfg.pi_hidden = {16};
  pcfg.vf_hidden = {16};
  core::MlpPolicy policy(1, 1, pcfg, rng);
  TargetEnv env(0.6);
  PpoConfig cfg;
  cfg.rollout_steps = 128;
  cfg.minibatch_size = 32;
  cfg.epochs = 4;
  cfg.learning_rate = 3e-3;
  PpoTrainer trainer(policy, env, cfg, 11);

  double first_reward = 0.0;
  for (int iter = 0; iter < 30; ++iter) {
    const auto stats = trainer.train_iteration();
    if (iter == 0) first_reward = stats.mean_episode_reward;
  }
  const Observation obs = env.reset();
  const auto mean = trainer.act_deterministic(obs);
  EXPECT_NEAR(mean[0], 0.6, 0.15);
  EXPECT_GT(trainer.total_env_steps(), 3000);
  (void)first_reward;
}

TEST(Ppo, StatsPopulated) {
  util::Rng rng(8);
  core::MlpPolicyConfig pcfg;
  pcfg.pi_hidden = {8};
  pcfg.vf_hidden = {8};
  core::MlpPolicy policy(1, 1, pcfg, rng);
  TargetEnv env(0.0);
  PpoConfig cfg;
  cfg.rollout_steps = 64;
  cfg.minibatch_size = 32;
  PpoTrainer trainer(policy, env, cfg, 3);
  const auto stats = trainer.train_iteration();
  EXPECT_EQ(stats.steps, 64);
  EXPECT_GT(stats.episodes, 0);
  EXPECT_NE(stats.value_loss, 0.0);
  EXPECT_NE(stats.entropy, 0.0);
}

TEST(Ppo, TrainRunsUntilStepTarget) {
  util::Rng rng(9);
  core::MlpPolicyConfig pcfg;
  pcfg.pi_hidden = {8};
  pcfg.vf_hidden = {8};
  core::MlpPolicy policy(1, 1, pcfg, rng);
  TargetEnv env(0.0);
  PpoConfig cfg;
  cfg.rollout_steps = 32;
  cfg.minibatch_size = 16;
  PpoTrainer trainer(policy, env, cfg, 5);
  int callbacks = 0;
  trainer.train(100, [&](const PpoIterationStats&) { ++callbacks; });
  EXPECT_GE(trainer.total_env_steps(), 100);
  EXPECT_EQ(callbacks, 4);  // ceil(100/32) = 4 iterations
}

TEST(Ppo, DeterministicActionIsMean) {
  util::Rng rng(10);
  core::MlpPolicyConfig pcfg;
  core::MlpPolicy policy(1, 1, pcfg, rng);
  TargetEnv env(0.0);
  PpoTrainer trainer(policy, env, PpoConfig{}, 1);
  const Observation obs = env.reset();
  const auto a1 = trainer.act_deterministic(obs);
  const auto a2 = trainer.act_deterministic(obs);
  ASSERT_EQ(a1.size(), 1U);
  EXPECT_EQ(a1[0], a2[0]);  // no sampling noise
}

TEST(Ppo, RewardScaleAppliedToValueTargetsNotStats) {
  util::Rng rng(11);
  core::MlpPolicyConfig pcfg;
  pcfg.pi_hidden = {8};
  pcfg.vf_hidden = {8};
  core::MlpPolicy policy(1, 1, pcfg, rng);
  TargetEnv env(5.0);  // large constant negative rewards
  PpoConfig cfg;
  cfg.rollout_steps = 32;
  cfg.reward_scale = 0.01;
  PpoTrainer trainer(policy, env, cfg, 2);
  const auto stats = trainer.train_iteration();
  // mean_episode_reward reports unscaled rewards (around -25 * 8 steps).
  EXPECT_LT(stats.mean_episode_reward, -50.0);
}

}  // namespace
}  // namespace gddr::rl
