// Observability subsystem tests: registry semantics, scoped-timer
// nesting, JSONL record schema, disabled-mode no-op behaviour, CLI flag
// parsing, and thread safety under the PR-1 thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "util/thread_pool.hpp"

namespace gddr::obs {
namespace {

// The registry is process-global; every test starts from a clean enabled
// slate and leaves it disabled and empty for the next one.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    Registry::instance().enable();
  }
  void TearDown() override {
    Registry::instance().disable();
    Registry::instance().reset();
  }
};

const std::uint64_t* find_counter(const Snapshot& snap,
                                  const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

// Busy-waits until the steady clock has advanced by `us` so a ScopedTimer
// span has a guaranteed minimum length.  A sleep would do the same job
// but is banned in tests (tools/lint.py): sleeping for synchronisation
// breeds flakes, and on the timer tests a spin additionally guarantees
// the elapsed time regardless of scheduler granularity.
void spin_at_least(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

// ---------------- registry semantics ----------------

TEST_F(ObsTest, CountersAccumulate) {
  count("a/b");
  count("a/b", 4);
  count("a/c");
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.counters.size(), 2U);
  // Snapshots are sorted by name.
  EXPECT_EQ(snap.counters[0].first, "a/b");
  EXPECT_EQ(snap.counters[0].second, 5U);
  EXPECT_EQ(snap.counters[1].first, "a/c");
  EXPECT_EQ(snap.counters[1].second, 1U);
}

TEST_F(ObsTest, GaugesKeepLastValue) {
  gauge("lr", 0.001);
  gauge("lr", 0.0005);
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.gauges.size(), 1U);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0005);
}

TEST_F(ObsTest, HistogramBucketsAndOverflow) {
  Registry::instance().define_histogram("h", {1.0, 10.0, 100.0});
  observe("h", 0.5);    // bucket <= 1
  observe("h", 1.0);    // boundary counts into its bound's bucket
  observe("h", 7.0);    // <= 10
  observe("h", 1000.0);  // +inf overflow
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1U);
  const HistogramSnapshot& h = snap.histograms[0].second;
  ASSERT_EQ(h.counts.size(), 4U);
  EXPECT_EQ(h.counts[0], 2U);
  EXPECT_EQ(h.counts[1], 1U);
  EXPECT_EQ(h.counts[2], 0U);
  EXPECT_EQ(h.counts[3], 1U);
  EXPECT_EQ(h.count, 4U);
  EXPECT_DOUBLE_EQ(h.sum, 1008.5);
}

TEST_F(ObsTest, HistogramQuantileInterpolatesWithinBuckets) {
  HistogramSnapshot h;
  h.upper_bounds = {10.0, 20.0, 40.0};
  h.counts = {10, 10, 0, 0};  // uniform mass over (0,10] and (10,20]
  h.count = 20;

  // Rank 10 (q=0.5) is the top of the first bucket; rank 15 (q=0.75) sits
  // halfway through the second.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 0.0);

  // A rank in the +inf overflow bucket clamps to the largest finite bound
  // instead of fabricating a value.
  h.counts = {0, 0, 0, 5};
  h.count = 5;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 40.0);
}

TEST_F(ObsTest, HistogramQuantileRejectsDegenerateInput) {
  HistogramSnapshot empty;
  empty.upper_bounds = {1.0};
  empty.counts = {0, 0};
  EXPECT_TRUE(std::isnan(histogram_quantile(empty, 0.5)));

  HistogramSnapshot h;
  h.upper_bounds = {1.0};
  h.counts = {1, 0};
  h.count = 1;
  EXPECT_TRUE(std::isnan(histogram_quantile(h, -0.1)));
  EXPECT_TRUE(std::isnan(histogram_quantile(h, 1.1)));
  EXPECT_FALSE(std::isnan(histogram_quantile(h, 0.99)));
}

TEST_F(ObsTest, ObserveWithoutDefinitionUsesDefaultBuckets) {
  observe("auto", 3.0);
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1U);
  EXPECT_EQ(snap.histograms[0].second.upper_bounds,
            Registry::default_buckets());
  EXPECT_EQ(snap.histograms[0].second.count, 1U);
}

TEST_F(ObsTest, FirstHistogramDefinitionWins) {
  Registry::instance().define_histogram("h", {1.0, 2.0});
  Registry::instance().define_histogram("h", {5.0});
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1U);
  EXPECT_EQ(snap.histograms[0].second.upper_bounds.size(), 2U);
}

TEST_F(ObsTest, ResetDropsEverything) {
  count("c");
  gauge("g", 1.0);
  observe("h", 1.0);
  { ScopedTimer t("t"); }
  Registry::instance().reset();
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(Registry::instance().enabled());
}

// ---------------- scoped timers ----------------

TEST_F(ObsTest, ScopedTimerRecordsSpans) {
  for (int i = 0; i < 3; ++i) {
    ScopedTimer t("outer");
    spin_at_least(std::chrono::microseconds(2000));
  }
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.timers.size(), 1U);
  const TimerSnapshot& t = snap.timers[0].second;
  EXPECT_EQ(t.count, 3U);
  EXPECT_GE(t.min_s, 0.001);
  EXPECT_GE(t.total_s, 3 * t.min_s - 1e-9);
  EXPECT_GE(t.max_s, t.min_s);
}

TEST_F(ObsTest, NestedTimersRecordUnderBothLabels) {
  {
    ScopedTimer outer("train/update");
    spin_at_least(std::chrono::microseconds(2000));
    {
      ScopedTimer inner("train/update/backward");
      spin_at_least(std::chrono::microseconds(2000));
    }
  }
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.timers.size(), 2U);
  double outer_total = 0.0;
  double inner_total = 0.0;
  for (const auto& [name, t] : snap.timers) {
    if (name == "train/update") outer_total = t.total_s;
    if (name == "train/update/backward") inner_total = t.total_s;
  }
  EXPECT_GT(inner_total, 0.0);
  // The outer span covers the inner one.
  EXPECT_GE(outer_total, inner_total);
}

TEST_F(ObsTest, StopIsIdempotentAndReturnsSeconds) {
  ScopedTimer t("once");
  spin_at_least(std::chrono::microseconds(1000));
  const double first = t.stop();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(t.stop(), 0.0);
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.timers.size(), 1U);
  EXPECT_EQ(snap.timers[0].second.count, 1U);
}

// ---------------- disabled mode ----------------

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  Registry::instance().disable();
  count("c");
  gauge("g", 1.0);
  observe("h", 2.0);
  { ScopedTimer t("t"); }
  Registry::instance().enable();
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(ObsTest, TimerConstructedWhileDisabledStaysInert) {
  Registry::instance().disable();
  ScopedTimer t("late");
  Registry::instance().enable();
  EXPECT_EQ(t.stop(), 0.0);  // enabled later, but armed at construction
  EXPECT_TRUE(Registry::instance().snapshot().timers.empty());
}

// ---------------- JSONL records ----------------

TEST_F(ObsTest, RecordContainsSchemaAndAllMetricTypes) {
  count("mcf/cache/hit", 12);
  gauge("train/loss/policy", -0.25);
  observe("lp/pivots_per_solve", 17.0);
  { ScopedTimer t("train/collect"); }
  const std::string line = make_record(3, Registry::instance().snapshot());
  EXPECT_NE(line.find("\"schema\":\"gddr.metrics.v1\""), std::string::npos);
  EXPECT_NE(line.find("\"iter\":3"), std::string::npos);
  EXPECT_NE(line.find("\"mcf/cache/hit\":12"), std::string::npos);
  EXPECT_NE(line.find("\"train/loss/policy\":-0.25"), std::string::npos);
  EXPECT_NE(line.find("\"train/collect\":{\"count\":1"), std::string::npos);
  EXPECT_NE(line.find("\"lp/pivots_per_solve\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObsTest, NonFiniteGaugesSerialiseAsNull) {
  gauge("bad", std::numeric_limits<double>::infinity());
  const std::string line = make_record(0, Registry::instance().snapshot());
  EXPECT_NE(line.find("\"bad\":null"), std::string::npos);
  EXPECT_EQ(line.find("inf"), std::string::npos);
}

TEST_F(ObsTest, JsonlSinkAppendsCompleteLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gddr_obs_sink.jsonl")
          .string();
  std::remove(path.c_str());
  JsonlSink sink(path);
  count("iters");
  sink.append(make_record(0, Registry::instance().snapshot()));
  count("iters");
  sink.append(make_record(1, Registry::instance().snapshot()));
  EXPECT_EQ(sink.lines_written(), 2U);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_NE(lines[0].find("\"iter\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"iters\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"iter\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"iters\":2"), std::string::npos);  // cumulative
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(ObsTest, SummaryRendersAllSections) {
  count("mcf/cache/hit", 7);
  gauge("train/loss/policy", 0.5);
  observe("lp/pivots_per_solve", 3.0);
  { ScopedTimer t("train/collect"); }
  const std::string summary = render_summary(Registry::instance().snapshot());
  EXPECT_NE(summary.find("train/collect"), std::string::npos);
  EXPECT_NE(summary.find("mcf/cache/hit"), std::string::npos);
  EXPECT_NE(summary.find("train/loss/policy"), std::string::npos);
  EXPECT_NE(summary.find("lp/pivots_per_solve"), std::string::npos);
  EXPECT_TRUE(render_summary(Snapshot{}).empty());
}

// ---------------- CLI flag parsing ----------------

TEST_F(ObsTest, ConsumeMetricsFlagParsesAndRemoves) {
  std::vector<std::string> storage{"prog", "--metrics", "m.jsonl",
                                   "--metrics-every=5", "other"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  const MetricsOptions opts = consume_metrics_flag(argc, argv.data());
  EXPECT_EQ(opts.path, "m.jsonl");
  EXPECT_EQ(opts.every, 5);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "other");
}

TEST_F(ObsTest, ConsumeMetricsFlagRejectsBadCadence) {
  std::vector<std::string> storage{"prog", "--metrics-every", "0"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  EXPECT_THROW(consume_metrics_flag(argc, argv.data()),
               std::invalid_argument);
}

TEST_F(ObsTest, ApplyEnablesWhenPathPresent) {
  Registry::instance().disable();
  MetricsOptions off;
  EXPECT_FALSE(apply(off));
  EXPECT_FALSE(Registry::instance().enabled());
  MetricsOptions on;
  on.path = "x.jsonl";
  EXPECT_TRUE(apply(on));
  EXPECT_TRUE(Registry::instance().enabled());
}

// ---------------- thread safety ----------------

TEST_F(ObsTest, ConcurrentRecordingIsLossless) {
  constexpr int kTasks = 64;
  constexpr int kPerTask = 250;
  util::ThreadPool pool(4);
  util::parallel_for(&pool, kTasks, [&](std::size_t i) {
    for (int k = 0; k < kPerTask; ++k) {
      count("par/counter");
      observe("par/hist", static_cast<double>(k));
      gauge("par/gauge/" + std::to_string(i), static_cast<double>(k));
      ScopedTimer t("par/timer");
    }
  });
  const Snapshot snap = Registry::instance().snapshot();
  const std::uint64_t* c = find_counter(snap, "par/counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, static_cast<std::uint64_t>(kTasks) * kPerTask);
  ASSERT_EQ(snap.histograms.size(), 1U);
  EXPECT_EQ(snap.histograms[0].second.count,
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  ASSERT_EQ(snap.timers.size(), 1U);
  EXPECT_EQ(snap.timers[0].second.count,
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(snap.gauges.size(), static_cast<std::size_t>(kTasks));
}

}  // namespace
}  // namespace gddr::obs
