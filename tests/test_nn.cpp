#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "nn/gaussian.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/tape.hpp"
#include "nn/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gddr::nn {
namespace {

using Var = Tape::Var;

// ---------------- Tensor ----------------

TEST(Tensor, ShapeAndFill) {
  Tensor t(2, 3, 1.5F);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6U);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5F);
}

TEST(Tensor, RowFromDoubles) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const Tensor t = Tensor::row(std::span<const double>(v));
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0F);
}

TEST(Tensor, AddInPlaceShapeChecked) {
  Tensor a(2, 2, 1.0F);
  Tensor b(2, 2, 2.0F);
  a.add_in_place(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0F);
  Tensor c(3, 2);
  EXPECT_THROW(a.add_in_place(c), std::invalid_argument);
}

TEST(Tensor, SquaredNorm) {
  Tensor t = Tensor::row({3.0F, 4.0F});
  EXPECT_DOUBLE_EQ(t.squared_norm(), 25.0);
}

TEST(Tensor, FillUniformWithinBound) {
  util::Rng rng(1);
  Tensor t(10, 10);
  t.fill_uniform(rng, 0.5);
  for (float v : t.data()) {
    EXPECT_GE(v, -0.5F);
    EXPECT_LE(v, 0.5F);
  }
}

// ---------------- forward values ----------------

TEST(Tape, MatmulValues) {
  Tape tape;
  Tensor a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Tensor b(2, 1);
  b.at(0, 0) = 5;
  b.at(1, 0) = 6;
  const Var c = tape.matmul(tape.constant(a), tape.constant(b));
  EXPECT_FLOAT_EQ(tape.value(c).at(0, 0), 17.0F);
  EXPECT_FLOAT_EQ(tape.value(c).at(1, 0), 39.0F);
}

TEST(Tape, MatmulShapeMismatchThrows) {
  Tape tape;
  const Var a = tape.constant(Tensor(2, 3));
  const Var b = tape.constant(Tensor(2, 3));
  EXPECT_THROW(tape.matmul(a, b), std::invalid_argument);
}

TEST(Tape, SegmentSumValues) {
  Tape tape;
  Tensor m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(2, 0) = 4;
  m.at(0, 1) = 10;
  m.at(1, 1) = 20;
  m.at(2, 1) = 40;
  const Var out = tape.segment_sum(tape.constant(m), {0, 1, 0}, 2);
  EXPECT_FLOAT_EQ(tape.value(out).at(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(tape.value(out).at(1, 0), 2.0F);
  EXPECT_FLOAT_EQ(tape.value(out).at(0, 1), 50.0F);
}

TEST(Tape, SegmentSumEmptySegmentIsZero) {
  Tape tape;
  Tensor m(1, 1, 3.0F);
  const Var out = tape.segment_sum(tape.constant(m), {2}, 4);
  EXPECT_FLOAT_EQ(tape.value(out).at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(tape.value(out).at(2, 0), 3.0F);
}

TEST(Tape, GatherRowsValues) {
  Tape tape;
  Tensor m(3, 1);
  m.at(0, 0) = 7;
  m.at(1, 0) = 8;
  m.at(2, 0) = 9;
  const Var out = tape.gather_rows(tape.constant(m), {2, 0, 2});
  EXPECT_FLOAT_EQ(tape.value(out).at(0, 0), 9.0F);
  EXPECT_FLOAT_EQ(tape.value(out).at(1, 0), 7.0F);
  EXPECT_FLOAT_EQ(tape.value(out).at(2, 0), 9.0F);
}

TEST(Tape, ClipValues) {
  Tape tape;
  const Var x = tape.constant(Tensor::row({-2.0F, 0.5F, 3.0F}));
  const Var y = tape.clip(x, -1.0F, 1.0F);
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 0), -1.0F);
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 1), 0.5F);
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 2), 1.0F);
}

TEST(Tape, ReshapePreservesData) {
  Tape tape;
  Tensor m(2, 3);
  for (int i = 0; i < 6; ++i) m.data()[static_cast<size_t>(i)] = static_cast<float>(i);
  const Var r = tape.reshape(tape.constant(m), 3, 2);
  EXPECT_FLOAT_EQ(tape.value(r).at(0, 1), 1.0F);
  EXPECT_FLOAT_EQ(tape.value(r).at(2, 0), 4.0F);
  EXPECT_THROW(tape.reshape(tape.constant(m), 4, 2), std::invalid_argument);
}

TEST(Tape, ReductionValues) {
  Tape tape;
  Tensor m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = 4;
  const Var c = tape.constant(m);
  EXPECT_FLOAT_EQ(tape.value(tape.sum_all(c)).at(0, 0), 10.0F);
  EXPECT_FLOAT_EQ(tape.value(tape.mean_all(c)).at(0, 0), 2.5F);
  EXPECT_FLOAT_EQ(tape.value(tape.sum_rows(c)).at(0, 1), 6.0F);
  EXPECT_FLOAT_EQ(tape.value(tape.sum_cols(c)).at(1, 0), 7.0F);
}

TEST(Tape, BackwardRequiresScalarLoss) {
  Tape tape;
  const Var x = tape.constant(Tensor(2, 2));
  EXPECT_THROW(tape.backward(x), std::invalid_argument);
}

// ---------------- finite-difference gradient checks ----------------

// Builds a scalar loss from a parameter via `body`, then verifies the
// analytic gradient against central finite differences.
void grad_check(
    Parameter& param,
    const std::function<Var(Tape&, Var)>& body, double tol = 3e-2) {
  // Analytic gradient.
  param.zero_grad();
  {
    Tape tape;
    const Var loss = body(tape, tape.leaf(param));
    tape.backward(loss);
  }
  const Tensor analytic = param.grad;

  const float eps = 1e-2F;
  for (int r = 0; r < param.value.rows(); ++r) {
    for (int c = 0; c < param.value.cols(); ++c) {
      const float saved = param.value.at(r, c);
      param.value.at(r, c) = saved + eps;
      double up;
      {
        Tape tape;
        up = tape.value(body(tape, tape.leaf(param))).at(0, 0);
      }
      param.value.at(r, c) = saved - eps;
      double down;
      {
        Tape tape;
        down = tape.value(body(tape, tape.leaf(param))).at(0, 0);
      }
      param.value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double a = analytic.at(r, c);
      EXPECT_NEAR(a, numeric, tol * std::max(1.0, std::abs(numeric)))
          << "element (" << r << "," << c << ")";
    }
  }
}

Tensor random_tensor(int rows, int cols, util::Rng& rng, double lo = -1.0,
                     double hi = 1.0) {
  Tensor t(rows, cols);
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

TEST(GradCheck, Matmul) {
  util::Rng rng(1);
  Parameter p(random_tensor(3, 4, rng));
  const Tensor other = random_tensor(4, 2, rng);
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.matmul(x, t.constant(other)));
  });
}

TEST(GradCheck, MatmulRightOperand) {
  util::Rng rng(2);
  Parameter p(random_tensor(4, 2, rng));
  const Tensor other = random_tensor(3, 4, rng);
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.matmul(t.constant(other), x));
  });
}

TEST(GradCheck, AddSubMulDiv) {
  util::Rng rng(3);
  Parameter p(random_tensor(2, 3, rng, 0.5, 2.0));
  const Tensor other = random_tensor(2, 3, rng, 0.5, 2.0);
  grad_check(p, [&](Tape& t, Var x) {
    const Var o = t.constant(other);
    return t.sum_all(t.div(t.mul(t.add(x, o), t.sub(x, o)), o));
  });
}

TEST(GradCheck, MinimumMaximum) {
  util::Rng rng(4);
  // Values well separated so the FD step never flips the argmin.
  Tensor a(2, 2);
  a.at(0, 0) = 0.5F;
  a.at(0, 1) = -0.7F;
  a.at(1, 0) = 1.2F;
  a.at(1, 1) = -1.5F;
  Parameter p(a);
  Tensor b(2, 2);
  b.at(0, 0) = -0.3F;
  b.at(0, 1) = 0.9F;
  b.at(1, 0) = 0.1F;
  b.at(1, 1) = 0.4F;
  grad_check(p, [&](Tape& t, Var x) {
    const Var o = t.constant(b);
    return t.sum_all(t.add(t.minimum(x, o), t.maximum(x, o)));
  });
}

TEST(GradCheck, AddBias) {
  util::Rng rng(5);
  Parameter p(random_tensor(1, 3, rng));
  const Tensor m = random_tensor(4, 3, rng);
  grad_check(p, [&](Tape& t, Var b) {
    return t.sum_all(t.square(t.add_bias(t.constant(m), b)));
  });
}

TEST(GradCheck, BroadcastRowsAndCols) {
  util::Rng rng(6);
  Parameter p(random_tensor(1, 3, rng));
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.square(t.broadcast_rows(x, 5)));
  });
  Parameter q(random_tensor(1, 1, rng));
  grad_check(q, [&](Tape& t, Var x) {
    return t.sum_all(t.square(t.broadcast_cols(x, 4)));
  });
}

TEST(GradCheck, ConcatSliceReshape) {
  util::Rng rng(7);
  Parameter p(random_tensor(2, 3, rng));
  const Tensor other = random_tensor(2, 2, rng);
  grad_check(p, [&](Tape& t, Var x) {
    const Var cat = t.concat_cols(x, t.constant(other));
    const Var sliced = t.slice_cols(cat, 1, 3);
    return t.sum_all(t.square(t.reshape(sliced, 3, 2)));
  });
}

TEST(GradCheck, GatherAndSegmentSum) {
  util::Rng rng(8);
  Parameter p(random_tensor(4, 2, rng));
  grad_check(p, [&](Tape& t, Var x) {
    const Var gathered = t.gather_rows(x, {0, 2, 2, 3});
    const Var pooled = t.segment_sum(gathered, {0, 1, 1, 0}, 2);
    return t.sum_all(t.square(pooled));
  });
}

TEST(GradCheck, UnaryChain) {
  util::Rng rng(9);
  Parameter p(random_tensor(2, 3, rng, 0.2, 0.8));
  grad_check(p, [&](Tape& t, Var x) {
    Var h = t.tanh(x);
    h = t.sigmoid(h);
    h = t.exp(h);
    h = t.log(h);  // identity overall but exercises both gradients
    h = t.square(h);
    h = t.scale(h, 0.5F);
    h = t.add_scalar(h, 1.0F);
    return t.mean_all(h);
  });
}

TEST(GradCheck, ReluAwayFromKink) {
  Tensor v(1, 4);
  v.at(0, 0) = -1.0F;
  v.at(0, 1) = 2.0F;
  v.at(0, 2) = -0.5F;
  v.at(0, 3) = 0.7F;
  Parameter p(v);
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.square(t.relu(x)));
  });
}

TEST(GradCheck, ClipInteriorOnly) {
  Tensor v(1, 3);
  v.at(0, 0) = -0.5F;
  v.at(0, 1) = 0.2F;
  v.at(0, 2) = 0.6F;
  Parameter p(v);
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.square(t.clip(x, -0.9F, 0.9F)));
  });
}

TEST(GradCheck, SumColsAndRows) {
  util::Rng rng(10);
  Parameter p(random_tensor(3, 4, rng));
  grad_check(p, [&](Tape& t, Var x) {
    const Var rows = t.sum_rows(x);        // 1x4
    const Var cols = t.sum_cols(x);        // 3x1
    return t.add(t.sum_all(t.square(rows)),
                 t.sum_all(t.square(cols)));
  });
}

TEST(GradCheck, SharedSubexpressionAccumulates) {
  util::Rng rng(11);
  Parameter p(random_tensor(2, 2, rng));
  // x used twice: gradient must accumulate both paths.
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.mul(x, x));
  });
}

TEST(GradCheck, ParameterUsedThroughTwoLeaves) {
  util::Rng rng(12);
  Parameter p(random_tensor(1, 2, rng));
  grad_check(p, [&](Tape& t, Var x) {
    // Re-leafing the same parameter creates a second tape node; grads from
    // both must land in p.grad.  The body only receives one Var, so add
    // the second leaf manually inside.
    return t.sum_all(t.add(x, x));
  });
}

// ---------------- aliasing audit ----------------
//
// Every binary/shape op must stay correct when both operands are the
// *same* Var: forward must not read half-updated output, and backward
// must accumulate into the shared grad buffer exactly once per use.

TEST(Aliasing, SameVarBinaryOpsValuesAndGrads) {
  util::Rng rng(21);
  Parameter p(random_tensor(2, 3, rng, 0.5, 2.0));  // positive: safe for div
  // x - x == 0 with zero gradient.
  {
    Tape tape;
    const Var x = tape.leaf(p);
    const Var y = tape.sub(x, x);
    for (const float v : tape.value(y).data()) EXPECT_EQ(v, 0.0F);
    p.zero_grad();
    tape.backward(tape.sum_all(y));
    for (const float g : p.grad.data()) EXPECT_EQ(g, 0.0F);
  }
  // x / x == 1 with zero gradient (the two chain-rule terms cancel).
  {
    Tape tape;
    const Var x = tape.leaf(p);
    const Var y = tape.div(x, x);
    for (const float v : tape.value(y).data()) EXPECT_FLOAT_EQ(v, 1.0F);
    p.zero_grad();
    tape.backward(tape.sum_all(y));
    for (const float g : p.grad.data()) EXPECT_NEAR(g, 0.0F, 1e-6F);
  }
  // min(x, x) == max(x, x) == x, gradient exactly 1 — the tie must route
  // each element's gradient through exactly one branch, not both.
  for (const bool use_min : {true, false}) {
    Tape tape;
    const Var x = tape.leaf(p);
    const Var y = use_min ? tape.minimum(x, x) : tape.maximum(x, x);
    const Tensor& v = tape.value(y);
    for (int r = 0; r < v.rows(); ++r) {
      for (int c = 0; c < v.cols(); ++c) {
        EXPECT_EQ(v.at(r, c), p.value.at(r, c));
      }
    }
    p.zero_grad();
    tape.backward(tape.sum_all(y));
    for (const float g : p.grad.data()) EXPECT_EQ(g, 1.0F);
  }
}

TEST(Aliasing, ConcatColsOfSameVar) {
  util::Rng rng(22);
  Parameter p(random_tensor(2, 2, rng));
  grad_check(p, [&](Tape& t, Var x) {
    return t.sum_all(t.concat_cols(x, x));
  });
  Tape tape;
  const Var x = tape.leaf(p);
  const Tensor& v = tape.value(tape.concat_cols(x, x));
  ASSERT_EQ(v.cols(), 4);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(v.at(r, c), p.value.at(r, c));
      EXPECT_EQ(v.at(r, c + 2), p.value.at(r, c));
    }
  }
}

TEST(Aliasing, GatherRowsRepeatedIndices) {
  util::Rng rng(23);
  Parameter p(random_tensor(3, 2, rng));
  // Row 0 gathered twice: its gradient must be 2, rows 1/2 get 1 and 0.
  Tape tape;
  const Var x = tape.leaf(p);
  const Var y = tape.gather_rows(x, std::vector<int>{0, 0, 1});
  p.zero_grad();
  tape.backward(tape.sum_all(y));
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(p.grad.at(0, c), 2.0F);
    EXPECT_EQ(p.grad.at(1, c), 1.0F);
    EXPECT_EQ(p.grad.at(2, c), 0.0F);
  }
}

TEST(Aliasing, SegmentSumDuplicateIdsAccumulate) {
  util::Rng rng(24);
  Parameter p(random_tensor(4, 2, rng));
  Tape tape;
  const Var x = tape.leaf(p);
  // Rows 0, 1 and 3 land in segment 0; row 2 alone in segment 1.
  const Var y = tape.segment_sum(x, std::vector<int>{0, 0, 1, 0}, 2);
  const Tensor& v = tape.value(y);
  for (int c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(v.at(0, c), p.value.at(0, c) + p.value.at(1, c) +
                                    p.value.at(3, c));
    EXPECT_FLOAT_EQ(v.at(1, c), p.value.at(2, c));
  }
  p.zero_grad();
  tape.backward(tape.sum_all(y));
  for (const float g : p.grad.data()) EXPECT_EQ(g, 1.0F);
}

// ---------------- MLP ----------------

TEST(Mlp, OutputShape) {
  util::Rng rng(13);
  Mlp net(4, 3, MlpConfig{}, rng);
  Tape tape;
  const Var y = net.forward(tape, tape.constant(Tensor(5, 4)));
  EXPECT_EQ(tape.value(y).rows(), 5);
  EXPECT_EQ(tape.value(y).cols(), 3);
}

TEST(Mlp, InputSizeChecked) {
  util::Rng rng(14);
  Mlp net(4, 3, MlpConfig{}, rng);
  Tape tape;
  EXPECT_THROW(net.forward(tape, tape.constant(Tensor(5, 7))),
               std::invalid_argument);
}

TEST(Mlp, ParameterCount) {
  util::Rng rng(15);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp net(4, 2, cfg, rng);
  // (4*8 + 8) + (8*2 + 2) = 40 + 18 = 58.
  EXPECT_EQ(net.num_parameters(), 58U);
  EXPECT_EQ(net.parameters().size(), 4U);
}

TEST(Mlp, OutputScaleShrinksInitialOutputs) {
  util::Rng rng_a(16);
  util::Rng rng_b(16);
  MlpConfig big;
  MlpConfig small;
  small.output_scale = 0.01;
  Mlp a(4, 2, big, rng_a);
  Mlp b(4, 2, small, rng_b);
  util::Rng rng_in(17);
  const Tensor x = random_tensor(1, 4, rng_in);
  Tape ta;
  Tape tb;
  const double ya = std::abs(ta.value(a.forward(ta, ta.constant(x))).at(0, 0));
  const double yb = std::abs(tb.value(b.forward(tb, tb.constant(x))).at(0, 0));
  EXPECT_LT(yb, ya);
}

TEST(Mlp, LearnsLinearRegression) {
  // Fit y = 2x1 - 3x2 + 1 with Adam; loss must drop by >100x.
  util::Rng rng(18);
  MlpConfig cfg;
  cfg.hidden = {16};
  Mlp net(2, 1, cfg, rng);
  Adam adam(0.01);
  const auto params = net.parameters();
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int iter = 0; iter < 500; ++iter) {
    Tensor x = random_tensor(16, 2, rng);
    Tensor y(16, 1);
    for (int i = 0; i < 16; ++i) {
      y.at(i, 0) = 2.0F * x.at(i, 0) - 3.0F * x.at(i, 1) + 1.0F;
    }
    Tape tape;
    const Var pred = net.forward(tape, tape.constant(x));
    const Var loss = tape.mean_all(tape.square(tape.sub(pred,
                                                        tape.constant(y))));
    zero_grads(params);
    tape.backward(loss);
    adam.step(params);
    const double l = tape.value(loss).at(0, 0);
    if (iter == 0) first_loss = l;
    last_loss = l;
  }
  EXPECT_LT(last_loss, first_loss / 100.0);
}

TEST(Mlp, LearnsXor) {
  util::Rng rng(19);
  MlpConfig cfg;
  cfg.hidden = {16, 16};
  cfg.hidden_activation = Activation::kTanh;
  Mlp net(2, 1, cfg, rng);
  Adam adam(0.02);
  const auto params = net.parameters();
  Tensor x(4, 2);
  Tensor y(4, 1);
  const float pts[4][3] = {
      {0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}};
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = pts[i][0];
    x.at(i, 1) = pts[i][1];
    y.at(i, 0) = pts[i][2];
  }
  for (int iter = 0; iter < 800; ++iter) {
    Tape tape;
    const Var pred = net.forward(tape, tape.constant(x));
    const Var loss = tape.mean_all(tape.square(tape.sub(pred,
                                                        tape.constant(y))));
    zero_grads(params);
    tape.backward(loss);
    adam.step(params);
  }
  Tape tape;
  const Tensor& pred = tape.value(net.forward(tape, tape.constant(x)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(pred.at(i, 0), y.at(i, 0), 0.2) << "pattern " << i;
  }
}

// ---------------- optimisers ----------------

TEST(Sgd, DescendsQuadratic) {
  Parameter p(Tensor(1, 1, 5.0F));
  Sgd sgd(0.1);
  const std::vector<Parameter*> params{&p};
  for (int i = 0; i < 100; ++i) {
    Tape tape;
    const Var loss = tape.square(tape.leaf(p));
    zero_grads(params);
    tape.backward(loss);
    sgd.step(params);
  }
  EXPECT_NEAR(p.value.at(0, 0), 0.0F, 1e-4);
}

TEST(Adam, DescendsQuadraticFasterThanTinySgd) {
  Parameter pa(Tensor(1, 1, 5.0F));
  Parameter ps(Tensor(1, 1, 5.0F));
  Adam adam(0.3);
  Sgd sgd(0.001);
  for (int i = 0; i < 60; ++i) {
    {
      Tape tape;
      const Var loss = tape.square(tape.leaf(pa));
      pa.zero_grad();
      tape.backward(loss);
      const std::vector<Parameter*> params{&pa};
      adam.step(params);
    }
    {
      Tape tape;
      const Var loss = tape.square(tape.leaf(ps));
      ps.zero_grad();
      tape.backward(loss);
      const std::vector<Parameter*> params{&ps};
      sgd.step(params);
    }
  }
  EXPECT_LT(std::abs(pa.value.at(0, 0)), std::abs(ps.value.at(0, 0)));
}

TEST(Adam, RejectsDegenerateHyperparameters) {
  // beta == 1 makes the bias correction 1 - beta^t exactly zero, so the
  // very first step divides by zero and silently poisons every parameter
  // with NaN.  The constructor must refuse instead.
  EXPECT_THROW(Adam(0.01, 1.0, 0.999, 1e-8), std::invalid_argument);
  EXPECT_THROW(Adam(0.01, 0.9, 1.0, 1e-8), std::invalid_argument);
  EXPECT_THROW(Adam(0.01, -0.1, 0.999, 1e-8), std::invalid_argument);
  EXPECT_THROW(Adam(0.01, 0.9, 1.5, 1e-8), std::invalid_argument);
  EXPECT_THROW(Adam(0.01, 0.9, 0.999, 0.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.01, 0.9, 0.999, -1e-8), std::invalid_argument);
  EXPECT_THROW(Adam(0.0), std::invalid_argument);
  EXPECT_NO_THROW(Adam(0.01, 0.0, 0.0, 1e-8));  // beta = 0 is plain RMS-free
}

TEST(Adam, ResumeContinuesBiasCorrectionFromRestoredStep) {
  // A restored optimizer must keep counting steps from the checkpointed
  // t, not restart the bias correction at t = 1 — restarting re-inflates
  // the 1/(1 - beta^t) factors and the first post-resume update diverges
  // from the uninterrupted run.
  const Tensor init(2, 3, 1.0F);
  Parameter continuous(init);
  Parameter resumed(init);
  const std::vector<Parameter*> pc{&continuous};
  const std::vector<Parameter*> pr{&resumed};

  Adam original(0.05);
  const auto fill_grad = [](Parameter& p, float seed) {
    float v = seed;
    for (float& g : p.grad.data()) {
      g = v;
      v += 0.25F;
    }
  };
  for (int step = 0; step < 3; ++step) {
    fill_grad(continuous, 0.5F + static_cast<float>(step));
    original.step(pc);
  }

  // Checkpoint/restore into a fresh optimizer; parameters carry over too.
  Adam restored(0.05);
  restored.import_state(original.export_state(pc), pr);
  resumed.value = continuous.value;

  // The same 4th gradient must now produce bit-identical parameters.
  fill_grad(continuous, 9.0F);
  fill_grad(resumed, 9.0F);
  original.step(pc);
  restored.step(pr);
  for (int r = 0; r < init.rows(); ++r) {
    for (int c = 0; c < init.cols(); ++c) {
      EXPECT_EQ(continuous.value.at(r, c), resumed.value.at(r, c))
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(Adam, HugeRestoredStepCountStaysFinite) {
  // pow(beta, t) underflows to 0 for large t, so the bias corrections are
  // exactly 1 — never a division hazard for any beta < 1.
  Parameter p(Tensor(1, 2, 2.0F));
  const std::vector<Parameter*> params{&p};
  Adam source(0.01);
  p.grad.fill(1.0F);
  source.step(params);
  Adam::State state = source.export_state(params);
  state.t = 50'000'000;
  Adam restored(0.01);
  restored.import_state(state, params);
  p.grad.fill(1.0F);
  restored.step(params);
  for (const float v : p.value.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GradClip, ScalesDownLargeGradients) {
  Parameter p(Tensor(1, 2));
  p.grad.at(0, 0) = 3.0F;
  p.grad.at(0, 1) = 4.0F;  // norm 5
  const std::vector<Parameter*> params{&p};
  const double norm = clip_grad_norm(params, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(global_grad_norm(params), 1.0, 1e-6);
}

TEST(GradClip, LeavesSmallGradientsAlone) {
  Parameter p(Tensor(1, 1));
  p.grad.at(0, 0) = 0.5F;
  const std::vector<Parameter*> params{&p};
  clip_grad_norm(params, 1.0);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.5F);
}

// ---------------- Gaussian distribution ----------------

TEST(Gaussian, LogProbMatchesClosedForm) {
  Tape tape;
  const Tensor mean_t = Tensor::row({0.5F, -1.0F});
  const Tensor log_std_t = Tensor::row({0.0F, std::log(2.0F)});
  const Tensor action = Tensor::row({1.0F, 1.0F});
  const Var lp = diag_gaussian_log_prob(tape, tape.constant(mean_t),
                                        tape.constant(log_std_t), action);
  // dim 0: N(0.5, 1), x=1: -0.5*0.25 - 0 - 0.9189
  // dim 1: N(-1, 2), x=1: -0.5*1 - log2 - 0.9189
  const double expected = (-0.125 - 0.9189385332) +
                          (-0.5 - std::log(2.0) - 0.9189385332);
  EXPECT_NEAR(tape.value(lp).at(0, 0), expected, 1e-5);
}

TEST(Gaussian, EntropyMatchesClosedForm) {
  Tape tape;
  const Tensor log_std_t = Tensor::row({0.0F, std::log(3.0F)});
  const Var h = diag_gaussian_entropy(tape, tape.constant(log_std_t));
  const double expected = (0.5 + 0.9189385332) * 2 + std::log(3.0);
  EXPECT_NEAR(tape.value(h).at(0, 0), expected, 1e-5);
}

TEST(Gaussian, SampleMomentsMatch) {
  util::Rng rng(23);
  const std::vector<double> mean{2.0, -1.0};
  const std::vector<double> log_std{std::log(0.5), std::log(2.0)};
  double sum0 = 0.0;
  double sum1 = 0.0;
  double sq0 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto s = sample_diag_gaussian(mean, log_std, rng);
    sum0 += s[0];
    sum1 += s[1];
    sq0 += (s[0] - 2.0) * (s[0] - 2.0);
  }
  EXPECT_NEAR(sum0 / n, 2.0, 0.02);
  EXPECT_NEAR(sum1 / n, -1.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq0 / n), 0.5, 0.02);
}

TEST(Gaussian, LogProbGradientFlowsToMean) {
  util::Rng rng(29);
  Parameter mean_param(Tensor::row({0.0F, 0.0F}));
  const Tensor log_std_t = Tensor::row({0.0F, 0.0F});
  const Tensor action = Tensor::row({1.0F, -1.0F});
  Tape tape;
  const Var lp = diag_gaussian_log_prob(
      tape, tape.leaf(mean_param), tape.constant(log_std_t), action);
  mean_param.zero_grad();
  tape.backward(lp);
  // d logp / d mu = (a - mu) / sigma^2 = a here.
  EXPECT_NEAR(mean_param.grad.at(0, 0), 1.0F, 1e-5);
  EXPECT_NEAR(mean_param.grad.at(0, 1), -1.0F, 1e-5);
}

TEST(Gaussian, MismatchedShapesThrow) {
  Tape tape;
  const Var mean = tape.constant(Tensor(1, 2));
  const Var ls = tape.constant(Tensor(1, 3));
  EXPECT_THROW(diag_gaussian_log_prob(tape, mean, ls, Tensor(1, 2)),
               std::invalid_argument);
  util::Rng rng(1);
  EXPECT_THROW(sample_diag_gaussian(std::vector<double>{1.0},
                                    std::vector<double>{0.0, 0.0}, rng),
               std::invalid_argument);
}

// ---------------- checkpoint-format robustness ----------------

std::string serialize_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<Tensor> snapshot_values(const std::vector<Parameter*>& params) {
  std::vector<Tensor> values;
  for (const Parameter* p : params) values.push_back(p->value);
  return values;
}

void expect_values_unchanged(const std::vector<Parameter*>& params,
                             const std::vector<Tensor>& snapshot) {
  ASSERT_EQ(params.size(), snapshot.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto actual = params[i]->value.data();
    const auto expected = snapshot[i].data();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t k = 0; k < actual.size(); ++k) {
      ASSERT_EQ(actual[k], expected[k]) << "parameter " << i;
    }
  }
}

TEST(SerializeRobust, TruncatedFileNamesFieldAndNeverHalfLoads) {
  util::Rng rng(21);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);
  const std::string path = serialize_path("gddr_truncated.bin");
  save_parameters(path, src.parameters());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);

  Mlp dst(4, 2, cfg, rng);
  const auto params = dst.parameters();
  const auto before = snapshot_values(params);
  try {
    load_parameters(path, params);
    FAIL() << "expected util::IoError for a truncated checkpoint";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("truncated"), std::string::npos)
        << ex.what();
  }
  expect_values_unchanged(params, before);
  std::remove(path.c_str());
}

TEST(SerializeRobust, UnsupportedVersionNamedInError) {
  const std::string path = serialize_path("gddr_badversion.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os.write("GDDRPARM", 8);
    const std::uint32_t version = 99;
    os.write(reinterpret_cast<const char*>(&version), sizeof version);
  }
  util::Rng rng(22);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp dst(4, 2, cfg, rng);
  try {
    load_parameters(path, dst.parameters());
    FAIL() << "expected util::IoError for an unsupported version";
  } catch (const util::IoError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(SerializeRobust, ParameterCountMismatchNamedInError) {
  util::Rng rng(23);
  MlpConfig small;
  small.hidden = {8};
  Mlp src(4, 2, small, rng);
  const std::string path = serialize_path("gddr_count.bin");
  save_parameters(path, src.parameters());

  MlpConfig deep;
  deep.hidden = {8, 8};  // six parameter tensors instead of four
  Mlp dst(4, 2, deep, rng);
  const auto params = dst.parameters();
  const auto before = snapshot_values(params);
  try {
    load_parameters(path, params);
    FAIL() << "expected util::IoError for a parameter count mismatch";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("parameters"), std::string::npos)
        << ex.what();
  }
  expect_values_unchanged(params, before);
  std::remove(path.c_str());
}

TEST(SerializeRobust, LegacyV1FormatStillLoads) {
  util::Rng rng(24);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);
  const auto src_params = src.parameters();

  // Hand-written v1 file: magic, version 1, u64 count, raw tensors.
  const std::string path = serialize_path("gddr_v1.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os.write("GDDRPARM", 8);
    const std::uint32_t version = 1;
    os.write(reinterpret_cast<const char*>(&version), sizeof version);
    const auto count = static_cast<std::uint64_t>(src_params.size());
    os.write(reinterpret_cast<const char*>(&count), sizeof count);
    for (const Parameter* p : src_params) write_tensor(os, p->value);
  }

  util::Rng rng_b(25);
  Mlp dst(4, 2, cfg, rng_b);
  load_parameters(path, dst.parameters());
  const auto dst_params = dst.parameters();
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    const auto a = src_params[i]->value.data();
    const auto b = dst_params[i]->value.data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
  std::remove(path.c_str());
}

TEST(SerializeRobust, SaveLeavesNoTempFileBehind) {
  util::Rng rng(26);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);
  const std::string path = serialize_path("gddr_notmp.bin");
  save_parameters(path, src.parameters());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

// ---------------- checksum trailer (bit-rot detection) ----------------

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void dump_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Byte offset of each section's payload in a v2 container, on-disk order.
// Header: 8-byte magic, u32 version, u32 count; per section u32 id,
// u64 payload size, payload.
std::vector<std::pair<std::size_t, std::size_t>> section_payload_ranges(
    const std::string& bytes) {
  std::size_t off = 8;
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + off, sizeof version);
  off += sizeof version;
  EXPECT_EQ(version, kFormatVersionSectioned);
  std::uint32_t count = 0;
  std::memcpy(&count, bytes.data() + off, sizeof count);
  off += sizeof count;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::uint32_t i = 0; i < count; ++i) {
    off += sizeof(std::uint32_t);  // section id
    std::uint64_t size = 0;
    std::memcpy(&size, bytes.data() + off, sizeof size);
    off += sizeof size;
    ranges.emplace_back(off, static_cast<std::size_t>(size));
    off += static_cast<std::size_t>(size);
  }
  return ranges;
}

TEST(ChecksumTrailer, BitFlipInEachSectionNamesThatSection) {
  util::Rng rng(41);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);

  // A multi-section container, like a trainer checkpoint.
  const std::string path = serialize_path("gddr_crc_sections.bin");
  ContainerWriter writer;
  writer.add(Section::kParameters, parameters_payload(src.parameters()));
  writer.add(Section::kAdam, std::string("adam moments placeholder blob"));
  writer.add(Section::kTrainer, std::string("trainer counters blob"));
  writer.write(path);

  const std::string pristine = slurp_file(path);
  const auto ranges = section_payload_ranges(pristine);
  ASSERT_EQ(ranges.size(), 3U);
  const char* names[] = {"parameters", "adam", "trainer"};

  for (std::size_t i = 0; i < ranges.size(); ++i) {
    std::string corrupted = pristine;
    const auto [offset, size] = ranges[i];
    ASSERT_GT(size, 0U);
    corrupted[offset + size / 2] ^= 0x01;  // single bit flip mid-payload
    dump_file(path, corrupted);
    try {
      ContainerReader reader(path);
      FAIL() << "bit flip in section '" << names[i] << "' went undetected";
    } catch (const util::IoError& ex) {
      const std::string what = ex.what();
      EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
      EXPECT_NE(what.find(std::string("'") + names[i] + "'"),
                std::string::npos)
          << what;
    }
  }

  // The pristine file still reads cleanly afterwards.
  dump_file(path, pristine);
  ContainerReader reader(path);
  EXPECT_TRUE(reader.has(Section::kAdam));
  std::remove(path.c_str());
}

TEST(ChecksumTrailer, BitFlipInParameterFileNeverHalfLoads) {
  util::Rng rng(42);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);
  const std::string path = serialize_path("gddr_crc_params.bin");
  save_parameters(path, src.parameters());

  std::string corrupted = slurp_file(path);
  const auto ranges = section_payload_ranges(corrupted);
  ASSERT_EQ(ranges.size(), 1U);
  corrupted[ranges[0].first + ranges[0].second / 2] ^= 0x40;
  dump_file(path, corrupted);

  Mlp dst(4, 2, cfg, rng);
  const auto params = dst.parameters();
  const auto before = snapshot_values(params);
  try {
    load_parameters(path, params);
    FAIL() << "expected util::IoError for a corrupted parameter payload";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("checksum mismatch"),
              std::string::npos)
        << ex.what();
  }
  expect_values_unchanged(params, before);
  std::remove(path.c_str());
}

TEST(ChecksumTrailer, LegacyV2WithoutTrailerStillLoads) {
  util::Rng rng(43);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);
  const std::string path = serialize_path("gddr_crc_legacy.bin");
  save_parameters(path, src.parameters());

  // Strip the trailer ("CRCS" + u32 count + one u32 per section), leaving
  // a pre-trailer v2 file that ends exactly after its last section.
  const std::string bytes = slurp_file(path);
  const auto ranges = section_payload_ranges(bytes);
  const std::size_t trailer_bytes =
      4 + sizeof(std::uint32_t) + ranges.size() * sizeof(std::uint32_t);
  dump_file(path, bytes.substr(0, bytes.size() - trailer_bytes));

  Mlp dst(4, 2, cfg, rng);
  load_parameters(path, dst.parameters());
  const auto a = src.parameters();
  const auto b = dst.parameters();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto av = a[i]->value.data();
    const auto bv = b[i]->value.data();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t k = 0; k < av.size(); ++k) EXPECT_EQ(av[k], bv[k]);
  }
  std::remove(path.c_str());
}

TEST(ChecksumTrailer, CorruptTrailerMetadataIsRejected) {
  util::Rng rng(44);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp src(4, 2, cfg, rng);
  const std::string path = serialize_path("gddr_crc_trailer.bin");
  save_parameters(path, src.parameters());
  const std::string pristine = slurp_file(path);
  const std::size_t crc_list_bytes = 1 * sizeof(std::uint32_t);

  // Damaged trailer magic.
  std::string bad_magic = pristine;
  bad_magic[pristine.size() - crc_list_bytes - sizeof(std::uint32_t) - 4] ^=
      0x20;  // first byte of "CRCS"
  dump_file(path, bad_magic);
  try {
    ContainerReader reader(path);
    FAIL() << "expected util::IoError for a damaged trailer magic";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("corrupt checksum trailer"),
              std::string::npos)
        << ex.what();
  }

  // Trailer count disagreeing with the declared section count.
  std::string bad_count = pristine;
  bad_count[pristine.size() - crc_list_bytes - sizeof(std::uint32_t)] ^= 0x01;
  dump_file(path, bad_count);
  try {
    ContainerReader reader(path);
    FAIL() << "expected util::IoError for a trailer count mismatch";
  } catch (const util::IoError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("covers"), std::string::npos) << what;
  }

  // A flipped stored-CRC byte is indistinguishable from payload rot and
  // must be reported the same way.
  std::string bad_crc = pristine;
  bad_crc[pristine.size() - 1] ^= 0x01;
  dump_file(path, bad_crc);
  try {
    ContainerReader reader(path);
    FAIL() << "expected util::IoError for a flipped stored checksum";
  } catch (const util::IoError& ex) {
    EXPECT_NE(std::string(ex.what()).find("checksum mismatch"),
              std::string::npos)
        << ex.what();
  }
  std::remove(path.c_str());
}

// ---------------- lazy gradient allocation ----------------
//
// Regression tests for the tape memory-churn fix: grad buffers used to be
// allocated eagerly for every node (including forward-only tapes, i.e.
// every rollout step) and re-zero-filled wholesale on each backward.

TEST(TapeLazyGrad, ForwardOnlyTapeAllocatesNothing) {
  util::Rng rng(31);
  MlpConfig cfg;
  cfg.hidden = {16, 16};
  Mlp mlp(8, 4, cfg, rng);
  Tape tape;
  const Var out = mlp.forward(tape, tape.constant(Tensor(1, 8, 0.5F)));
  EXPECT_GT(tape.value(out).cols(), 0);
  // Three fused linear layers: constant + 3 x (w leaf, b leaf, linear).
  EXPECT_GE(tape.num_nodes(), 10U);
  EXPECT_EQ(tape.grad_allocations(), 0U);
}

TEST(TapeLazyGrad, BackwardAllocatesOnlyReachedNodes) {
  Parameter p(Tensor::row({1.0F, 2.0F}));
  Tape tape;
  const Var x = tape.leaf(p);
  const Var loss = tape.sum_all(tape.square(x));
  // Recorded after the loss: must be neither walked nor allocated.
  const Var after = tape.relu(x);
  (void)after;
  p.zero_grad();
  tape.backward(loss);
  // Exactly the loss chain: loss, square, leaf.
  EXPECT_EQ(tape.grad_allocations(), 3U);
  // d/dx sum(x^2) = 2x.
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(p.grad.at(0, 1), 4.0F);
  // The unreached node still reports a correctly-shaped zero gradient.
  const Tensor& g_after = tape.grad(after);
  EXPECT_TRUE(g_after.same_shape(tape.value(after)));
  EXPECT_FLOAT_EQ(g_after.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(g_after.at(0, 1), 0.0F);
}

TEST(TapeLazyGrad, RepeatedBackwardGivesIdenticalGradients) {
  util::Rng rng(37);
  MlpConfig cfg;
  cfg.hidden = {8};
  Mlp mlp(4, 1, cfg, rng);
  Tape tape;
  const Var out = mlp.forward(tape, tape.constant(Tensor(3, 4, 0.25F)));
  const Var loss = tape.mean_all(tape.square(out));

  zero_grads(mlp.parameters());
  tape.backward(loss);
  std::vector<std::vector<float>> first;
  for (const Parameter* p : mlp.parameters()) {
    first.emplace_back(p->grad.data().begin(), p->grad.data().end());
  }

  // Second pass re-allocates every released buffer; gradients must be
  // bit-identical, not accumulated.
  zero_grads(mlp.parameters());
  tape.backward(loss);
  std::size_t i = 0;
  for (const Parameter* p : mlp.parameters()) {
    const auto g = p->grad.data();
    ASSERT_EQ(g.size(), first[i].size());
    for (std::size_t k = 0; k < g.size(); ++k) EXPECT_EQ(g[k], first[i][k]);
    ++i;
  }
}

TEST(TapeLazyGrad, MixedGraphGradientsMatchClosedForm) {
  // y = sum(min(a*b, a+b)) with a*b picked elementwise — exercises shared
  // subexpressions and a node (the losing min branch) that still receives
  // gradient zero contributions.
  Parameter pa(Tensor::row({0.5F, 3.0F}));
  Parameter pb(Tensor::row({2.0F, 2.0F}));
  Tape tape;
  const Var a = tape.leaf(pa);
  const Var b = tape.leaf(pb);
  const Var prod = tape.mul(a, b);   // {1.0, 6.0}
  const Var sum = tape.add(a, b);    // {2.5, 5.0}
  const Var loss = tape.sum_all(tape.minimum(prod, sum));
  pa.zero_grad();
  pb.zero_grad();
  tape.backward(loss);
  // col 0: prod wins (1.0 < 2.5): d/da = b = 2, d/db = a = 0.5
  // col 1: sum wins (5.0 < 6.0):  d/da = 1, d/db = 1
  EXPECT_FLOAT_EQ(pa.grad.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(pa.grad.at(0, 1), 1.0F);
  EXPECT_FLOAT_EQ(pb.grad.at(0, 0), 0.5F);
  EXPECT_FLOAT_EQ(pb.grad.at(0, 1), 1.0F);
}

// ---------------- Gaussian log_std clamping ----------------
//
// Regression tests for the numerics fix: an unclamped log_std of -100
// underflows sigma to (sub)normal-zero in float, overflowing z and
// sending log-probs and gradients to inf/NaN.

TEST(GaussianClamp, ExtremeLogStdGivesFiniteLogProb) {
  Tape tape;
  const Tensor mean_t = Tensor::row({0.0F, 0.0F});
  const Tensor log_std_t = Tensor::row({-100.0F, 100.0F});
  const Tensor action = Tensor::row({0.5F, 0.5F});
  const Var lp = diag_gaussian_log_prob(tape, tape.constant(mean_t),
                                        tape.constant(log_std_t), action);
  const double got = tape.value(lp).at(0, 0);
  EXPECT_TRUE(std::isfinite(got));
  // Closed form under the documented clamp to [kLogStdMin, kLogStdMax].
  const auto lp_at = [](double ls, double x) {
    const double sigma = std::exp(ls);
    const double z = x / sigma;
    return -0.5 * z * z - ls - 0.9189385332046727;
  };
  EXPECT_NEAR(got, lp_at(kLogStdMin, 0.5) + lp_at(kLogStdMax, 0.5),
              std::abs(lp_at(kLogStdMin, 0.5)) * 1e-4);
}

TEST(GaussianClamp, ExtremeLogStdGradientsFinite) {
  Parameter mean_param(Tensor::row({0.0F, 0.0F}));
  Parameter ls_param(Tensor::row({-50.0F, 50.0F}));
  Tape tape;
  const Var lp = diag_gaussian_log_prob(tape, tape.leaf(mean_param),
                                        tape.leaf(ls_param),
                                        Tensor::row({1.0F, 1.0F}));
  mean_param.zero_grad();
  ls_param.zero_grad();
  tape.backward(lp);
  for (int j = 0; j < 2; ++j) {
    EXPECT_TRUE(std::isfinite(mean_param.grad.at(0, j))) << "mean col " << j;
    // clip passes no gradient at the clamped extremes: the clamped density
    // is constant in log_std there.
    EXPECT_FLOAT_EQ(ls_param.grad.at(0, j), 0.0F) << "log_std col " << j;
  }
}

TEST(GaussianClamp, InRangeLogStdGradientMatchesFiniteDifference) {
  const float ls0 = -1.0F;
  const float mean0 = 0.2F;
  const Tensor action = Tensor::row({0.9F});
  const auto eval = [&](float ls) {
    Tape tape;
    const Var lp = diag_gaussian_log_prob(
        tape, tape.constant(Tensor::row({mean0})),
        tape.constant(Tensor::row({ls})), action);
    return static_cast<double>(tape.value(lp).at(0, 0));
  };
  Parameter ls_param(Tensor::row({ls0}));
  Tape tape;
  const Var lp = diag_gaussian_log_prob(
      tape, tape.constant(Tensor::row({mean0})), tape.leaf(ls_param), action);
  ls_param.zero_grad();
  tape.backward(lp);
  const double analytic = ls_param.grad.at(0, 0);

  const float h = 1e-2F;
  const double fd = (eval(ls0 + h) - eval(ls0 - h)) / (2.0 * h);
  EXPECT_NEAR(analytic, fd, 5e-2 * std::max(1.0, std::abs(fd)));
}

TEST(GaussianClamp, SamplerBoundedAtExtremes) {
  util::Rng rng(41);
  const std::vector<double> mean{1.0, -1.0};
  const std::vector<double> log_std{-1000.0, 1000.0};
  double max_dev1 = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto s = sample_diag_gaussian(mean, log_std, rng);
    ASSERT_TRUE(std::isfinite(s[0]));
    ASSERT_TRUE(std::isfinite(s[1]));
    // Floor: sigma = exp(-10), so samples hug the mean.
    EXPECT_NEAR(s[0], 1.0, 1e-2);
    max_dev1 = std::max(max_dev1, std::abs(s[1] + 1.0));
  }
  // Ceiling: sigma = exp(2) ~ 7.4, not exp(1000) = inf.
  EXPECT_LT(max_dev1, std::exp(2.0) * 6.0);
  EXPECT_GT(max_dev1, 1.0);
}

}  // namespace
}  // namespace gddr::nn
