// Tests for the gddr-topology file format (src/topo/io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "topo/io.hpp"
#include "topo/zoo.hpp"

namespace gddr::topo {
namespace {

TEST(TopologyIo, RoundTripPreservesStructure) {
  for (const auto& name : catalogue_names()) {
    const graph::DiGraph original = by_name(name);
    std::stringstream ss;
    save_topology(ss, original);
    const graph::DiGraph loaded = load_topology(ss);
    EXPECT_EQ(loaded.num_nodes(), original.num_nodes()) << name;
    EXPECT_EQ(loaded.num_edges(), original.num_edges()) << name;
    EXPECT_EQ(loaded.name(), original.name()) << name;
    // Same connectivity and capacities (edge order may differ).
    for (graph::EdgeId e = 0; e < original.num_edges(); ++e) {
      const auto& ed = original.edge(e);
      const auto found = loaded.find_edge(ed.src, ed.dst);
      ASSERT_TRUE(found.has_value()) << name << " edge " << e;
      EXPECT_DOUBLE_EQ(loaded.edge(*found).capacity, ed.capacity) << name;
    }
    EXPECT_TRUE(graph::is_strongly_connected(loaded)) << name;
  }
}

TEST(TopologyIo, DirectedOnlyEdgesUseEdgeKeyword) {
  graph::DiGraph g(3, "mixed");
  g.add_bidirectional(0, 1, 100.0);
  g.add_edge(1, 2, 50.0);  // one-way
  std::stringstream ss;
  save_topology(ss, g);
  const std::string text = ss.str();
  EXPECT_NE(text.find("link 0 1 100"), std::string::npos);
  EXPECT_NE(text.find("edge 1 2 50"), std::string::npos);
  std::stringstream rs(text);
  const graph::DiGraph loaded = load_topology(rs);
  EXPECT_EQ(loaded.num_edges(), 3);
  EXPECT_FALSE(loaded.find_edge(2, 1).has_value());
}

TEST(TopologyIo, AsymmetricCapacitiesNotMergedIntoLink) {
  graph::DiGraph g(2, "asym");
  g.add_edge(0, 1, 100.0);
  g.add_edge(1, 0, 200.0);
  std::stringstream ss;
  save_topology(ss, g);
  std::stringstream rs(ss.str());
  const graph::DiGraph loaded = load_topology(rs);
  EXPECT_DOUBLE_EQ(loaded.edge(*loaded.find_edge(0, 1)).capacity, 100.0);
  EXPECT_DOUBLE_EQ(loaded.edge(*loaded.find_edge(1, 0)).capacity, 200.0);
}

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "gddr-topology v1\n"
      "# a comment\n"
      "\n"
      "name Test\n"
      "nodes 2\n"
      "   # indented comment\n"
      "link 0 1 10\n");
  const graph::DiGraph g = load_topology(ss);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.name(), "Test");
}

TEST(TopologyIo, MissingHeaderRejected) {
  std::stringstream ss("nodes 2\nlink 0 1 10\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, MissingNodesRejected) {
  std::stringstream ss("gddr-topology v1\nname X\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, OutOfRangeNodeRejected) {
  std::stringstream ss("gddr-topology v1\nnodes 2\nlink 0 5 10\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, BadCapacityRejected) {
  std::stringstream ss("gddr-topology v1\nnodes 2\nlink 0 1 -3\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, SelfLoopRejected) {
  std::stringstream ss("gddr-topology v1\nnodes 2\nlink 1 1 10\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, UnknownKeywordRejected) {
  std::stringstream ss("gddr-topology v1\nnodes 2\nwormhole 0 1 10\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, MalformedEdgeLineRejected) {
  std::stringstream ss("gddr-topology v1\nnodes 2\nlink 0\n");
  EXPECT_THROW(load_topology(ss), std::runtime_error);
}

TEST(TopologyIo, MissingFileRejected) {
  EXPECT_THROW(load_topology_file("/nonexistent/path.topo"),
               std::runtime_error);
}

TEST(TopologyIo, ErrorsCarryLineNumbers) {
  std::stringstream ss("gddr-topology v1\nnodes 2\nlink 0 9 10\n");
  try {
    load_topology(ss);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 3"), std::string::npos)
        << ex.what();
  }
}

}  // namespace
}  // namespace gddr::topo
