// Policy lifecycle tests: the versioned on-disk model registry (atomic
// publish, CRC-checked load, orphan adoption, retention pruning, the
// registry_publish fault site), the RCU-style PolicySlot, the shadow
// evaluator's win/loss/NaN accounting, and the Promoter state machine
// (full walk to kLive, gate rejection, instant NaN rollback, staging
// discipline).
//
// Promoter tests drive a real inline serve::Engine with per-request
// micro-batches so canary attribution is deterministic; traffic is tiny
// (Abilene, a handful of requests) to keep the walk fast.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "lifecycle/promoter.hpp"
#include "lifecycle/registry.hpp"
#include "lifecycle/shadow.hpp"
#include "nn/serialize.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "topo/zoo.hpp"
#include "traffic/demand.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace gddr {
namespace {

namespace fs = std::filesystem;

using lifecycle::ModelRegistry;
using lifecycle::PolicySlot;
using lifecycle::Promoter;
using lifecycle::PromoterConfig;
using lifecycle::PromoteState;
using lifecycle::RegistryConfig;
using lifecycle::RegistryEntry;
using lifecycle::ShadowConfig;
using lifecycle::ShadowEvaluator;
using lifecycle::ShadowStats;

// Every test disarms on exit so an assertion failure cannot leak an
// armed fault schedule into the next test.
struct FaultGuard {
  FaultGuard() { util::FaultInjector::instance().disarm(); }
  ~FaultGuard() { util::FaultInjector::instance().disarm(); }
};

// Fresh directory under the test temp root, wiped before use.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gddr_lifecycle_" + name;
  fs::remove_all(dir);
  return dir;
}

RegistryConfig registry_config(int retention = 8) {
  RegistryConfig config;
  config.retention = retention;
  config.policy = core::experiment_gnn_config(5);
  return config;
}

std::shared_ptr<const core::GnnPolicy> make_policy(std::uint64_t seed) {
  util::Rng rng(seed);
  return std::make_shared<core::GnnPolicy>(core::experiment_gnn_config(5),
                                           rng);
}

// Saves a random-init policy's parameters as a publishable checkpoint.
std::string write_checkpoint(const std::string& dir, std::uint64_t seed) {
  fs::create_directories(dir);
  util::Rng rng(seed);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  const std::string path = dir + "/ckpt.gddrparm";
  nn::save_parameters(path, policy.parameters());
  return path;
}

serve::RouteRequest make_request(const graph::DiGraph& g,
                                 double demand = 1.0) {
  serve::RouteRequest request;
  request.graph = &g;
  request.demand = traffic::DemandMatrix(g.num_nodes());
  request.demand.set(0, 1, demand);
  request.demand.set(2, 0, demand * 0.5);
  return request;
}

serve::RouterConfig test_router_config() {
  serve::RouterConfig config;
  config.deadline = std::chrono::seconds(2);
  config.memory = 5;
  return config;
}

// ---------------- ModelRegistry ----------------

TEST(ModelRegistry, PublishAssignsMonotonicVersionsAndIndexesThem) {
  const std::string dir = fresh_dir("publish");
  const std::string ckpt = write_checkpoint(dir + "_src", 1);
  ModelRegistry registry(dir, registry_config());

  EXPECT_EQ(registry.latest(), 0U);
  EXPECT_EQ(registry.publish_file(ckpt), 1U);
  EXPECT_EQ(registry.publish_file(ckpt), 2U);
  EXPECT_EQ(registry.latest(), 2U);

  const std::vector<RegistryEntry> entries = registry.entries();
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].version, 1U);
  EXPECT_EQ(entries[1].version, 2U);
  for (const RegistryEntry& entry : entries) {
    EXPECT_GT(entry.bytes, 0U);
    EXPECT_TRUE(fs::exists(dir + "/" + entry.filename));
  }
  EXPECT_TRUE(fs::exists(dir + "/MANIFEST"));
  // Identical bytes published twice -> identical checksums.
  EXPECT_EQ(entries[0].crc, entries[1].crc);
}

TEST(ModelRegistry, LoadReturnsThePublishedWeights) {
  const std::string dir = fresh_dir("load");
  const std::string ckpt = write_checkpoint(dir + "_src", 42);
  ModelRegistry registry(dir, registry_config());
  registry.publish_file(ckpt);

  const auto loaded = registry.load(1);
  ASSERT_NE(loaded, nullptr);

  // The loaded policy must route exactly like the source weights.
  util::Rng rng(42);
  core::GnnPolicy original(core::experiment_gnn_config(5), rng);
  const auto g = topo::abilene();
  serve::RobustRouter ref(&original, test_router_config());
  serve::RobustRouter out(const_cast<core::GnnPolicy*>(loaded.get()),
                          test_router_config());
  const auto a = ref.decide(make_request(g));
  const auto b = out.decide(make_request(g));
  EXPECT_EQ(a.rung, serve::Rung::kGnnPolicy);
  EXPECT_EQ(a.rung, b.rung);
  EXPECT_EQ(a.sim.u_max, b.sim.u_max);
  EXPECT_EQ(a.routed_demand, b.routed_demand);
}

TEST(ModelRegistry, LoadRefusesUnknownVersionAndCorruptFile) {
  const std::string dir = fresh_dir("corrupt");
  const std::string ckpt = write_checkpoint(dir + "_src", 3);
  ModelRegistry registry(dir, registry_config());
  registry.publish_file(ckpt);

  EXPECT_THROW((void)registry.load(99), util::IoError);

  // Flip one byte in the middle of the stored version file: the
  // manifest CRC check must refuse the load.
  const std::string file = dir + "/" + registry.entries()[0].filename;
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(fs::file_size(file) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  EXPECT_THROW((void)registry.load(1), util::IoError);
}

TEST(ModelRegistry, ReopenAdoptsOrphanedVersionFiles) {
  const std::string dir = fresh_dir("orphan");
  const std::string ckpt = write_checkpoint(dir + "_src", 4);
  std::uint32_t crc = 0;
  {
    ModelRegistry registry(dir, registry_config());
    registry.publish_file(ckpt);
    registry.publish_file(ckpt);
    crc = registry.entries()[1].crc;
  }
  // Simulate a crash between version-file rename and manifest rewrite:
  // the manifest vanishes but the version files survive.
  fs::remove(dir + "/MANIFEST");

  ModelRegistry reopened(dir, registry_config());
  const std::vector<RegistryEntry> entries = reopened.entries();
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].version, 1U);
  EXPECT_EQ(entries[1].version, 2U);
  EXPECT_EQ(entries[1].crc, crc);
  // Adoption rewrote the manifest, and ids stay monotonic past it.
  EXPECT_TRUE(fs::exists(dir + "/MANIFEST"));
  EXPECT_EQ(reopened.publish_file(ckpt), 3U);
}

TEST(ModelRegistry, RetentionPrunesOldFilesButNeverReusesIds) {
  const std::string dir = fresh_dir("retention");
  const std::string ckpt = write_checkpoint(dir + "_src", 5);
  ModelRegistry registry(dir, registry_config(/*retention=*/2));
  registry.publish_file(ckpt);
  registry.publish_file(ckpt);
  const std::string v1_file = dir + "/" + registry.entries()[0].filename;
  registry.publish_file(ckpt);

  const std::vector<RegistryEntry> entries = registry.entries();
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].version, 2U);
  EXPECT_EQ(entries[1].version, 3U);
  EXPECT_FALSE(fs::exists(v1_file));
  EXPECT_THROW((void)registry.load(1), util::IoError);
  // The pruned id is burned: the next publish continues past it.
  EXPECT_EQ(registry.publish_file(ckpt), 4U);
}

TEST(ModelRegistry, PublishFaultLeavesRegistryUntouched) {
  FaultGuard guard;
  const std::string dir = fresh_dir("fault");
  const std::string ckpt = write_checkpoint(dir + "_src", 6);
  ModelRegistry registry(dir, registry_config());
  registry.publish_file(ckpt);

  util::FaultInjector::instance().arm("registry_publish@1");
  EXPECT_THROW((void)registry.publish_file(ckpt), util::IoError);
  EXPECT_EQ(registry.latest(), 1U);
  EXPECT_EQ(registry.entries().size(), 1U);
  // The schedule is spent: the next publish succeeds.
  EXPECT_EQ(registry.publish_file(ckpt), 2U);
}

TEST(ModelRegistry, RejectsBadConfigurationAndGarbageCheckpoints) {
  const std::string dir = fresh_dir("badcfg");
  EXPECT_THROW(ModelRegistry(dir, registry_config(/*retention=*/0)),
               std::invalid_argument);

  ModelRegistry registry(dir, registry_config());
  const std::string garbage = dir + "/garbage.bin";
  util::write_file_atomic(garbage, "not a container");
  EXPECT_THROW((void)registry.publish_file(garbage), util::IoError);
  EXPECT_EQ(registry.latest(), 0U);
}

// ---------------- PolicySlot ----------------

TEST(PolicySlot, StoreLoadRoundTripsAndCountsSwaps) {
  PolicySlot slot;
  EXPECT_EQ(slot.load().policy, nullptr);
  EXPECT_EQ(slot.swaps(), 0);

  const auto p1 = make_policy(1);
  slot.store({p1, 7});
  const PolicySlot::Value v = slot.load();
  EXPECT_EQ(v.policy.get(), p1.get());
  EXPECT_EQ(v.version, 7U);

  // A reader's copy stays valid across any number of later swaps.
  slot.store({make_policy(2), 8});
  slot.store({make_policy(3), 9});
  EXPECT_EQ(v.policy.get(), p1.get());
  EXPECT_EQ(slot.swaps(), 3);
  EXPECT_EQ(slot.load().version, 9U);
}

// ---------------- ShadowEvaluator ----------------

ShadowConfig shadow_config(double fraction) {
  ShadowConfig config;
  config.fraction = fraction;
  config.router = test_router_config();
  return config;
}

serve::DecisionRecord incumbent_record(double u_max) {
  serve::DecisionRecord record;
  record.rung = serve::Rung::kGnnPolicy;
  record.policy_version = 1;
  record.u_max = u_max;
  return record;
}

TEST(ShadowEvaluator, MirrorsEveryRequestAtFullFractionAndScoresWins) {
  ShadowEvaluator shadow(shadow_config(1.0));
  EXPECT_FALSE(shadow.armed());
  shadow.arm(make_policy(1), 2);
  EXPECT_TRUE(shadow.armed());

  const auto g = topo::abilene();
  // An absurdly bad incumbent U_max: every healthy mirror wins.
  for (int i = 0; i < 4; ++i) {
    shadow.observe(make_request(g), incumbent_record(1e9));
  }
  const ShadowStats stats = shadow.stats();
  EXPECT_EQ(stats.observed, 4);
  EXPECT_EQ(stats.mirrored, 4);
  EXPECT_EQ(stats.wins, 4);
  EXPECT_EQ(stats.candidate_failures, 0);
  EXPECT_DOUBLE_EQ(stats.win_rate(), 1.0);
  // Positive delta = candidate better (incumbent − candidate).
  EXPECT_GT(stats.delta.mean(), 0.0);
  ASSERT_EQ(stats.by_topology.size(), 1U);
  EXPECT_EQ(stats.by_topology[0].mirrored, 4);
  EXPECT_GT(stats.p99_latency_us, 0.0);
}

TEST(ShadowEvaluator, ScoresLossesWhenIncumbentIsBetter) {
  ShadowEvaluator shadow(shadow_config(1.0));
  shadow.arm(make_policy(1), 2);
  const auto g = topo::abilene();
  // An unbeatable incumbent U_max: every mirror loses.
  shadow.observe(make_request(g), incumbent_record(0.0));
  const ShadowStats stats = shadow.stats();
  EXPECT_EQ(stats.mirrored, 1);
  EXPECT_EQ(stats.wins, 0);
  EXPECT_LT(stats.delta.mean(), 0.0);
}

TEST(ShadowEvaluator, StrideSamplesTheConfiguredFraction) {
  ShadowEvaluator shadow(shadow_config(0.5));
  shadow.arm(make_policy(1), 2);
  const auto g = topo::abilene();
  for (int i = 0; i < 8; ++i) {
    shadow.observe(make_request(g), incumbent_record(1e9));
  }
  const ShadowStats stats = shadow.stats();
  EXPECT_EQ(stats.observed, 8);
  EXPECT_EQ(stats.mirrored, 4);
}

TEST(ShadowEvaluator, IgnoresCanaryRecordsAndDisarmedTraffic) {
  ShadowEvaluator shadow(shadow_config(1.0));
  shadow.arm(make_policy(1), 2);
  const auto g = topo::abilene();
  serve::DecisionRecord canary = incumbent_record(1e9);
  canary.served_by_candidate = true;
  shadow.observe(make_request(g), canary);
  EXPECT_EQ(shadow.stats().mirrored, 0);

  shadow.disarm();
  shadow.observe(make_request(g), incumbent_record(1e9));
  EXPECT_EQ(shadow.stats().observed, 0);
}

TEST(ShadowEvaluator, CountsCandidateNanAsFailure) {
  FaultGuard guard;
  ShadowEvaluator shadow(shadow_config(1.0));
  shadow.arm(make_policy(1), 2);
  const auto g = topo::abilene();
  util::FaultInjector::instance().arm("candidate_nan@1+");
  shadow.observe(make_request(g), incumbent_record(1e9));
  const ShadowStats stats = shadow.stats();
  EXPECT_EQ(stats.mirrored, 1);
  EXPECT_EQ(stats.wins, 0);
  EXPECT_EQ(stats.candidate_failures, 1);
  EXPECT_EQ(stats.nonfinite_outputs, 1);
}

TEST(ShadowEvaluator, ShadowDivergeFaultForcesALoss) {
  FaultGuard guard;
  ShadowEvaluator shadow(shadow_config(1.0));
  shadow.arm(make_policy(1), 2);
  const auto g = topo::abilene();
  util::FaultInjector::instance().arm("shadow_diverge@1+");
  shadow.observe(make_request(g), incumbent_record(1e9));
  const ShadowStats stats = shadow.stats();
  EXPECT_EQ(stats.mirrored, 1);
  EXPECT_EQ(stats.wins, 0);
  EXPECT_EQ(stats.nonfinite_outputs, 0);
}

// ---------------- Promoter ----------------

struct PromoterRig {
  explicit PromoterRig(const std::string& dir_name)
      : dir(fresh_dir(dir_name)),
        registry(dir, registry_config()),
        engine(nullptr, engine_config()),
        promoter(registry, engine, promoter_config()) {
    const std::string ckpt = write_checkpoint(dir + "_src", 10);
    registry.publish_file(ckpt);  // v1: the incumbent
    registry.publish_file(ckpt);  // v2: identical-weights candidate
    engine.set_policy(registry.load(1), 1);
    engine.set_decision_observer(
        [this](const serve::RouteRequest& request,
               const serve::DecisionRecord& record) {
          promoter.observe(request, record);
        });
  }

  static serve::EngineConfig engine_config() {
    serve::EngineConfig config;
    config.workers = 0;   // inline: deterministic single-thread serving
    config.max_batch = 1; // per-request batches: canary share is exact
    config.queue_capacity = 4;
    config.router = test_router_config();
    return config;
  }

  static PromoterConfig promoter_config() {
    PromoterConfig config;
    config.shadow_fraction = 1.0;
    config.canary_fraction = 1.0;
    config.promote_after = 4;
    config.canary_decisions = 2;
    config.router = test_router_config();
    return config;
  }

  // Serves `n` requests through the engine (and thus the promoter).
  void drive(int n) {
    const auto g = topo::abilene();
    for (int i = 0; i < n; ++i) {
      auto future = engine.submit(make_request(g, 0.5 + 0.1 * i));
      engine.poll();
      ASSERT_FALSE(future.get().shed);
    }
  }

  std::string dir;
  ModelRegistry registry;
  serve::Engine engine;
  Promoter promoter;
};

TEST(Promoter, TiedCandidateWalksShadowCanaryLive) {
  PromoterRig rig("walk");
  EXPECT_EQ(rig.promoter.state(), PromoteState::kIdle);
  rig.promoter.stage(2);
  EXPECT_EQ(rig.promoter.state(), PromoteState::kShadow);

  // 4 mirrored pairs clear the shadow gate (ties are wins)...
  rig.drive(4);
  EXPECT_EQ(rig.promoter.state(), PromoteState::kCanary);
  // ...and 2 candidate-served decisions clear the canary.
  rig.drive(2);
  EXPECT_EQ(rig.promoter.state(), PromoteState::kLive);

  const Promoter::Summary summary = rig.promoter.summary();
  EXPECT_EQ(summary.candidate_version, 2U);
  EXPECT_EQ(summary.promotions, 1);
  EXPECT_EQ(summary.rollbacks, 0);
  EXPECT_EQ(summary.canary_served, 2);
  EXPECT_EQ(rig.engine.live_version(), 2U);
  // Install + promotion: two hot swaps, zero downtime in between.
  EXPECT_GE(rig.engine.swaps(), 2);

  // Post-promotion traffic is served by the new live version, not a
  // canary.
  const auto g = topo::abilene();
  auto future = rig.engine.submit(make_request(g));
  rig.engine.poll();
  const serve::ServeOutcome outcome = future.get();
  EXPECT_EQ(outcome.decision.policy_version, 2U);
  EXPECT_FALSE(outcome.decision.served_by_candidate);
}

TEST(Promoter, CandidateNanRollsBackInstantly) {
  FaultGuard guard;
  PromoterRig rig("nan");
  rig.promoter.stage(2);
  util::FaultInjector::instance().arm("candidate_nan@1+");
  rig.drive(1);
  EXPECT_EQ(rig.promoter.state(), PromoteState::kRolledBack);

  const Promoter::Summary summary = rig.promoter.summary();
  EXPECT_EQ(summary.rollbacks, 1);
  EXPECT_EQ(summary.rollback_reason, "candidate_nan");
  // The incumbent is untouched and still serving.
  EXPECT_EQ(rig.engine.live_version(), 1U);
  util::FaultInjector::instance().disarm();
  rig.drive(1);
  EXPECT_EQ(rig.promoter.summary().rollbacks, 1);
}

TEST(Promoter, ShadowWinRateGateRejectsALosingCandidate) {
  FaultGuard guard;
  PromoterRig rig("gate");
  rig.promoter.stage(2);
  // Force every mirrored pair to score as a loss.
  util::FaultInjector::instance().arm("shadow_diverge@1+");
  rig.drive(4);
  EXPECT_EQ(rig.promoter.state(), PromoteState::kRolledBack);
  const Promoter::Summary summary = rig.promoter.summary();
  EXPECT_EQ(summary.rollbacks, 1);
  EXPECT_EQ(summary.rollback_reason, "shadow_win_rate_gate");
  EXPECT_EQ(summary.canary_served, 0);
  EXPECT_EQ(rig.engine.live_version(), 1U);
}

TEST(Promoter, StagingIsExclusiveAndRestagableAfterTerminalStates) {
  FaultGuard guard;
  PromoterRig rig("restage");
  rig.promoter.stage(2);
  // A promotion is in flight: staging again must be rejected.
  EXPECT_THROW(rig.promoter.stage(2), std::logic_error);
  // A failed load leaves the machine idle (nothing was armed)...
  util::FaultInjector::instance().arm("candidate_nan@1+");
  rig.drive(1);
  ASSERT_EQ(rig.promoter.state(), PromoteState::kRolledBack);
  util::FaultInjector::instance().disarm();
  // ...and terminal states allow a fresh stage() — including of a
  // version that fails to load, which lands back in the terminal state
  // machine's idle lane rather than rolling anything back.
  EXPECT_THROW(rig.promoter.stage(99), util::IoError);
  EXPECT_EQ(rig.promoter.summary().rollbacks, 1);
  rig.promoter.stage(2);
  EXPECT_EQ(rig.promoter.state(), PromoteState::kShadow);
}

TEST(Promoter, RejectsBadConfiguration) {
  const std::string dir = fresh_dir("badpromoter");
  ModelRegistry registry(dir, registry_config());
  serve::Engine engine(nullptr, PromoterRig::engine_config());
  PromoterConfig bad = PromoterRig::promoter_config();
  bad.promote_after = 0;
  EXPECT_THROW(Promoter(registry, engine, bad), std::invalid_argument);
}

}  // namespace
}  // namespace gddr
