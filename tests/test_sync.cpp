// Tests for the capability-annotated sync layer (util/sync.hpp) and its
// runtime lock-rank deadlock detector.
//
// The suite is built in BOTH configurations of the CI matrix, mirroring
// test_contract.cpp:
//  * default (GDDR_CHECK off) — proves the rank machinery compiles out:
//    no rank is tracked and lock()/unlock() degenerate to the plain std
//    primitives (sync_ranks_tracked() stays zero);
//  * -DGDDR_CHECK=ON — proves a rank inversion or re-entrant acquisition
//    throws ContractViolation naming BOTH locks, that the thread-local
//    held stack unwinds correctly on exceptions, and that stacks are
//    per-thread.
//
// The compile-time half of the discipline (clang -Werror=thread-safety)
// is exercised by the CI thread-safety job, including a negative compile
// probe; it cannot be tested from inside a runtime test.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "util/contract.hpp"
#include "util/sync.hpp"

namespace {

using gddr::util::CondVar;
using gddr::util::ContractViolation;
using gddr::util::LockRank;
using gddr::util::Mutex;
using gddr::util::MutexLock;
using gddr::util::SharedLock;
using gddr::util::SharedMutex;

// Deliberately re-acquires a mutex the caller already holds, which the
// clang thread-safety analysis would (correctly) reject at compile time;
// the escape hatch lets the runtime detector demonstrate the same catch.
void acquire_again(Mutex& mu) GDDR_NO_THREAD_SAFETY_ANALYSIS {
  mu.lock();
  mu.unlock();  // unreachable under GDDR_CHECK (lock() throws first)
}

// ---------------------------------------------------------------------------
// Build-mode contract: checking on/off
// ---------------------------------------------------------------------------

TEST(SyncBuildMode, RankTrackingMatchesBuildMode) {
  const std::uint64_t before = gddr::util::sync_ranks_tracked();
  Mutex mu(LockRank::kRegistry, "test/mode");
  {
    const MutexLock lock(mu);
  }
  const std::uint64_t delta = gddr::util::sync_ranks_tracked() - before;
  if (gddr::util::lock_rank_checking_enabled()) {
    EXPECT_EQ(delta, 1u) << "checked build must track each acquisition";
  } else {
    EXPECT_EQ(delta, 0u) << "GDDR_CHECK=OFF must compile the detector out";
  }
}

TEST(SyncBuildMode, UncheckedBuildIgnoresInversions) {
  if (gddr::util::lock_rank_checking_enabled()) GTEST_SKIP();
  // Deliberate inversion: inner rank above outer.  Without GDDR_CHECK
  // this must be invisible — plain std::mutex behaviour.
  Mutex outer(LockRank::kRegistry, "test/outer_low");
  Mutex inner(LockRank::kEngine, "test/inner_high");
  const MutexLock a(outer);
  const MutexLock b(inner);
  SUCCEED();
}

// Everything below exercises the runtime detector.
class SyncRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!gddr::util::lock_rank_checking_enabled()) {
      GTEST_SKIP() << "lock-rank detector requires GDDR_CHECK=ON";
    }
    ASSERT_EQ(gddr::util::held_lock_depth(), 0)
        << "test started with locks held";
  }
  void TearDown() override {
    if (gddr::util::lock_rank_checking_enabled()) {
      EXPECT_EQ(gddr::util::held_lock_depth(), 0)
          << "test leaked a held-lock record";
    }
  }
};

// ---------------------------------------------------------------------------
// Rank ordering
// ---------------------------------------------------------------------------

TEST_F(SyncRankTest, ConsistentDecreasingOrderPasses) {
  Mutex engine(LockRank::kEngine, "test/engine");
  Mutex queue(LockRank::kMpmcQueue, "test/queue");
  Mutex registry(LockRank::kRegistry, "test/registry");
  const MutexLock a(engine);
  const MutexLock b(queue);
  const MutexLock c(registry);
  EXPECT_EQ(gddr::util::held_lock_depth(), 3);
}

TEST_F(SyncRankTest, InversionThrowsNamingBothLocks) {
  Mutex registry(LockRank::kRegistry, "test/registry");
  Mutex engine(LockRank::kEngine, "test/engine");
  const MutexLock inner(registry);
  try {
    const MutexLock outer(engine);  // rank 90 after rank 20: inversion
    FAIL() << "rank inversion was not rejected";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test/engine"), std::string::npos)
        << "missing acquiring label in: " << what;
    EXPECT_NE(what.find("test/registry"), std::string::npos)
        << "missing held label in: " << what;
  }
  // The failed acquisition must not leave a phantom held record.
  EXPECT_EQ(gddr::util::held_lock_depth(), 1);
}

TEST_F(SyncRankTest, EqualRankNestingIsRejected) {
  // Two distinct locks of the same rank may not nest: with no documented
  // order between them, thread A nesting x->y and thread B nesting y->x
  // is the classic ABBA deadlock.
  Mutex x(LockRank::kOptimalCache, "test/cache_a");
  Mutex y(LockRank::kOptimalCache, "test/cache_b");
  const MutexLock a(x);
  EXPECT_THROW({ const MutexLock b(y); }, ContractViolation);
}

TEST_F(SyncRankTest, ReentrantAcquisitionIsRejected) {
  Mutex mu(LockRank::kEngine, "test/reentrant");
  const MutexLock a(mu);
  try {
    acquire_again(mu);  // same mutex: std::mutex would deadlock here
    FAIL() << "re-entrant acquisition was not rejected";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test/reentrant"), std::string::npos) << what;
    EXPECT_NE(what.find("re-entrant"), std::string::npos) << what;
  }
}

TEST_F(SyncRankTest, SiblingAfterReleaseIsFine) {
  // Releasing the deepest lock re-opens its rank band: taking another
  // same-rank lock afterwards is an ordinary sequential acquisition.
  Mutex x(LockRank::kTopologyCache, "test/topo_a");
  Mutex y(LockRank::kTopologyCache, "test/topo_b");
  {
    const MutexLock a(x);
  }
  const MutexLock b(y);
  EXPECT_EQ(gddr::util::held_lock_depth(), 1);
}

// ---------------------------------------------------------------------------
// Stack unwinding
// ---------------------------------------------------------------------------

TEST_F(SyncRankTest, HeldStackUnwindsOnException) {
  Mutex outer(LockRank::kEngine, "test/unwind_outer");
  Mutex inner(LockRank::kRegistry, "test/unwind_inner");
  try {
    const MutexLock a(outer);
    const MutexLock b(inner);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(gddr::util::held_lock_depth(), 0);
  // After a clean unwind, the same locks are acquirable again in the
  // same order — no stale held records poison later acquisitions.
  const MutexLock a(outer);
  const MutexLock b(inner);
}

TEST_F(SyncRankTest, RejectedAcquisitionLeavesStackUsable) {
  Mutex low(LockRank::kRegistry, "test/low");
  Mutex high(LockRank::kEngine, "test/high");
  {
    const MutexLock a(low);
    EXPECT_THROW({ const MutexLock b(high); }, ContractViolation);
  }
  // Outside the inverted scope, the high-then-low order works.
  const MutexLock a(high);
  const MutexLock b(low);
}

// ---------------------------------------------------------------------------
// Per-thread isolation
// ---------------------------------------------------------------------------

TEST_F(SyncRankTest, HeldStacksArePerThread) {
  // A lock held on this thread must not constrain another thread: ranks
  // model a per-thread acquisition chain, not global state.
  Mutex low(LockRank::kRegistry, "test/low_held_here");
  Mutex high(LockRank::kEngine, "test/high_elsewhere");
  const MutexLock a(low);
  std::atomic<bool> ok{false};
  std::thread other([&] {
    const MutexLock b(high);  // fresh thread: empty stack, any rank fine
    ok.store(true);
  });
  other.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(gddr::util::held_lock_depth(), 1);
}

// ---------------------------------------------------------------------------
// SharedMutex and SharedLock
// ---------------------------------------------------------------------------

TEST_F(SyncRankTest, SharedMutexTracksBothModes) {
  SharedMutex smu(LockRank::kTopologyCache, "test/shared");
  Mutex inner(LockRank::kRegistry, "test/inner");
  {
    const SharedLock reader(smu);
    EXPECT_EQ(gddr::util::held_lock_depth(), 1);
    const MutexLock nested(inner);  // lower rank under a reader: fine
  }
  {
    const MutexLock writer(smu);
    EXPECT_EQ(gddr::util::held_lock_depth(), 1);
  }
  EXPECT_EQ(gddr::util::held_lock_depth(), 0);
}

TEST_F(SyncRankTest, SharedMutexInversionRejectedInBothModes) {
  Mutex low(LockRank::kRegistry, "test/low");
  SharedMutex high(LockRank::kEngine, "test/high_shared");
  const MutexLock a(low);
  EXPECT_THROW({ const SharedLock r(high); }, ContractViolation);
  EXPECT_THROW({ const MutexLock w(high); }, ContractViolation);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

TEST(SyncCondVar, WaitNotifyRoundTrip) {
  Mutex mu(LockRank::kMpmcQueue, "test/cv_mu");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      const MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
  }
  producer.join();
  SUCCEED();
}

TEST(SyncCondVar, WaitKeepsRankHeldAcrossBlocking) {
  if (!gddr::util::lock_rank_checking_enabled()) GTEST_SKIP();
  // While wait() has the mutex released inside the condvar, the rank
  // record deliberately stays: on wakeup the lock is reacquired without
  // re-running the rank check, so the held stack must still match.
  Mutex mu(LockRank::kMpmcQueue, "test/cv_rank");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      const MutexLock lock(mu);
      ready = true;
    }
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    EXPECT_EQ(gddr::util::held_lock_depth(), 1);
  }
  producer.join();
  EXPECT_EQ(gddr::util::held_lock_depth(), 0);
}

TEST(SyncCondVar, WaitOnSharedMutexLockIsRejected) {
  // Rejected in BOTH build modes: this is a type-level misuse, not a
  // rank-discipline violation, so it is never compiled out.
  // CondVar wraps std::condition_variable, which only waits on a plain
  // mutex: a MutexLock holding the writer side of a SharedMutex cannot
  // be slept on, and silently succeeding would corrupt the rwlock.
  SharedMutex smu(LockRank::kTopologyCache, "test/cv_shared");
  CondVar cv;
  MutexLock lock(smu);
  EXPECT_THROW(cv.wait(lock), ContractViolation);
}

}  // namespace
