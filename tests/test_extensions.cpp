// Tests for the library extensions beyond the paper's core pipeline:
// parameter serialisation, forwarding-table export, the mean-utilisation
// objective with its exact oracle, and the mean-demand optimal baseline.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "graph/algorithms.hpp"
#include "mcf/cache.hpp"
#include "mcf/mean_util.hpp"
#include "nn/serialize.hpp"
#include "rl/ppo.hpp"
#include "routing/baselines.hpp"
#include "routing/forwarding.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"

namespace gddr {
namespace {

using graph::DiGraph;
using traffic::DemandMatrix;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------- serialisation ----------------

TEST(Serialize, RoundTripPreservesOutputs) {
  util::Rng rng_a(1);
  core::GnnPolicyConfig cfg;
  cfg.memory = 3;
  cfg.latent = 8;
  cfg.steps = 2;
  cfg.mlp_hidden = {16};
  core::GnnPolicy original(cfg, rng_a);

  const std::string path = temp_path("gddr_roundtrip.bin");
  nn::save_parameters(path, original.parameters());

  util::Rng rng_b(999);  // different init — must be overwritten by load
  core::GnnPolicy loaded(cfg, rng_b);
  nn::load_parameters(path, loaded.parameters());

  // Identical outputs on a shared observation.
  util::Rng srng(2);
  core::ScenarioParams p;
  p.sequence_length = 8;
  p.cycle_length = 4;
  p.train_sequences = 1;
  p.test_sequences = 1;
  const core::Scenario scenario =
      core::make_scenario(topo::by_name("SmallRing"), p, srng);
  const auto obs = core::RoutingEnv::build_observation(
      scenario, scenario.train_sequences[0], 3, 3);
  nn::Tape ta;
  nn::Tape tb;
  const auto ya = ta.value(original.action_mean(ta, obs));
  const auto yb = tb.value(loaded.action_mean(tb, obs));
  ASSERT_EQ(ya.cols(), yb.cols());
  for (int j = 0; j < ya.cols(); ++j) {
    EXPECT_FLOAT_EQ(ya.at(0, j), yb.at(0, j));
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  util::Rng rng(3);
  core::MlpPolicyConfig small;
  small.pi_hidden = {8};
  small.vf_hidden = {8};
  core::MlpPolicy a(10, 4, small, rng);
  const std::string path = temp_path("gddr_mismatch.bin");
  nn::save_parameters(path, a.parameters());
  core::MlpPolicy b(12, 4, small, rng);  // different input width
  EXPECT_THROW(nn::load_parameters(path, b.parameters()),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected) {
  util::Rng rng(4);
  core::MlpPolicyConfig small;
  small.pi_hidden = {8};
  small.vf_hidden = {8};
  core::MlpPolicy a(4, 2, small, rng);
  EXPECT_THROW(
      nn::load_parameters(temp_path("gddr_does_not_exist.bin"),
                          a.parameters()),
      std::runtime_error);
}

TEST(Serialize, CorruptMagicRejected) {
  const std::string path = temp_path("gddr_corrupt.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTAGDDRFILE", f);
    std::fclose(f);
  }
  util::Rng rng(5);
  core::MlpPolicyConfig small;
  small.pi_hidden = {8};
  small.vf_hidden = {8};
  core::MlpPolicy a(4, 2, small, rng);
  EXPECT_THROW(nn::load_parameters(path, a.parameters()),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------------- forwarding tables ----------------

TEST(Forwarding, SoftminRoutingIsDestinationBased) {
  const DiGraph g = topo::abilene();
  const std::vector<double> w(static_cast<size_t>(g.num_edges()), 1.0);
  const auto r = routing::softmin_routing(g, w);
  EXPECT_TRUE(routing::is_destination_based(g, r));
}

TEST(Forwarding, TablesCoverEveryReachableDestination) {
  const DiGraph g = topo::abilene();
  const auto r = routing::shortest_path_routing(g);
  const auto tables = routing::to_flow_tables(g, r);
  // n*(n-1) (node, dst) pairs, all reachable in Abilene.
  EXPECT_EQ(tables.size(),
            static_cast<size_t>(g.num_nodes() * (g.num_nodes() - 1)));
  for (const auto& entry : tables) {
    double sum = 0.0;
    for (const auto& hop : entry.next_hops) {
      sum += hop.share;
      EXPECT_EQ(g.edge(hop.edge).src, entry.node);
      EXPECT_EQ(g.edge(hop.edge).dst, hop.neighbour);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Forwarding, EcmpTablesSplit) {
  DiGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto r = routing::ecmp_routing(g, graph::unit_weights(g));
  const auto tables = routing::to_flow_tables(g, r);
  bool found = false;
  for (const auto& entry : tables) {
    if (entry.node == 0 && entry.destination == 3) {
      found = true;
      ASSERT_EQ(entry.next_hops.size(), 2U);
      EXPECT_NEAR(entry.next_hops[0].share, 0.5, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Forwarding, NonDestinationBasedRejected) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  routing::Routing r(3, 3);
  // Flow (0,2) splits; a hypothetical flow (1,2)... make source-dependent
  // ratios at node 0 for destination 2 vs what another source would use.
  r.set_ratio(0, 2, 0, 0.5);
  r.set_ratio(0, 2, 2, 0.5);
  r.set_ratio(0, 2, 1, 1.0);
  r.set_ratio(1, 2, 1, 1.0);
  // Node 0's ratios for dst 2 differ depending on the source (source 1
  // never uses node 0, all-zero there) -> not destination-based.
  EXPECT_FALSE(routing::is_destination_based(g, r));
  EXPECT_THROW(routing::to_flow_tables(g, r), std::invalid_argument);
}

TEST(Forwarding, FormatMentionsDestinations) {
  const DiGraph g = topo::by_name("SmallRing");
  const auto r = routing::shortest_path_routing(g);
  const auto tables = routing::to_flow_tables(g, r);
  const std::string text = routing::format_flow_table(g, tables, 0);
  EXPECT_NE(text.find("flow table for node 0"), std::string::npos);
  EXPECT_NE(text.find("dst"), std::string::npos);
}

// ---------------- mean-utilisation objective ----------------

TEST(MeanUtil, OracleIsLowerBound) {
  const DiGraph g = topo::by_name("AbileneHet");
  util::Rng rng(6);
  traffic::BimodalParams params;
  params.pair_density = 0.4;
  const DemandMatrix dm = traffic::bimodal_matrix(g.num_nodes(), params, rng);
  const double oracle = mcf::min_mean_utilisation(g, dm);
  // Any routing's mean utilisation must be >= the oracle.
  for (const auto& r :
       {routing::shortest_path_routing(g),
        routing::ecmp_routing(g, graph::unit_weights(g)),
        routing::softmin_routing(
            g, std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0))}) {
    const auto sim = routing::simulate(g, r, dm);
    EXPECT_GE(routing::mean_utilisation(g, sim), oracle - 1e-9);
  }
}

TEST(MeanUtil, OracleRoutingAchievesOracle) {
  const DiGraph g = topo::by_name("AbileneHet");
  util::Rng rng(7);
  traffic::BimodalParams params;
  params.pair_density = 0.4;
  const DemandMatrix dm = traffic::bimodal_matrix(g.num_nodes(), params, rng);
  const auto r = routing::min_mean_utilisation_routing(g);
  const auto sim = routing::simulate(g, r, dm);
  EXPECT_NEAR(routing::mean_utilisation(g, sim),
              mcf::min_mean_utilisation(g, dm), 1e-6);
}

TEST(MeanUtil, CachedOracleMatchesDirect) {
  const DiGraph g = topo::abilene();
  util::Rng rng(8);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  mcf::OptimalCache cache;
  EXPECT_EQ(cache.mean_util(g, dm), mcf::min_mean_utilisation(g, dm));
  EXPECT_EQ(cache.mean_util(g, dm), cache.mean_util(g, dm));  // cached
  EXPECT_GE(cache.hits(), 1U);
}

TEST(MeanUtil, EnvObjectiveSwitchesOracle) {
  util::Rng rng(9);
  core::ScenarioParams p;
  p.sequence_length = 8;
  p.cycle_length = 4;
  p.train_sequences = 1;
  p.test_sequences = 1;
  const core::Scenario scenario =
      core::make_scenario(topo::by_name("SmallRing"), p, rng);

  core::EnvConfig max_cfg;
  max_cfg.memory = 3;
  core::EnvConfig mean_cfg = max_cfg;
  mean_cfg.objective = core::Objective::kMeanUtilisation;

  core::RoutingEnv max_env({scenario}, max_cfg, 1);
  core::RoutingEnv mean_env({scenario}, mean_cfg, 1);
  max_env.set_mode(core::RoutingEnv::Mode::kTest);
  mean_env.set_mode(core::RoutingEnv::Mode::kTest);
  max_env.reset();
  mean_env.reset();
  const std::vector<double> zero(
      static_cast<size_t>(max_env.action_dim()), 0.0);
  const double r_max = max_env.step(zero).reward;
  const double r_mean = mean_env.step(zero).reward;
  // Both are ratios >= 1 against their respective oracles, but they are
  // different quantities.
  EXPECT_LE(r_max, -1.0 + 1e-9);
  EXPECT_LE(r_mean, -1.0 + 1e-9);
  EXPECT_NE(r_max, r_mean);
}

// ---------------- mean-demand optimal baseline ----------------

TEST(MeanDemandBaseline, DeliversAllTrafficOnUnseenMatrices) {
  const DiGraph g = topo::by_name("AbileneHet");
  util::Rng rng(10);
  traffic::BimodalParams params;
  params.pair_density = 0.3;  // unseen pairs will appear at test time
  const auto history =
      traffic::cyclical_bimodal_sequence(g.num_nodes(), 10, 5, params, rng);
  const auto r = routing::mean_demand_optimal_routing(g, history);
  const DemandMatrix unseen =
      traffic::bimodal_matrix(g.num_nodes(), params, rng);
  const auto sim = routing::simulate(g, r, unseen);
  EXPECT_NEAR(sim.delivered, unseen.total(), unseen.total() * 1e-6);
}

TEST(MeanDemandBaseline, OptimalForItsOwnMeanMatrix) {
  const DiGraph g = topo::abilene();
  util::Rng rng(11);
  const auto history = traffic::cyclical_bimodal_sequence(
      g.num_nodes(), 6, 3, traffic::BimodalParams{}, rng);
  const auto r = routing::mean_demand_optimal_routing(g, history);
  const DemandMatrix mean = traffic::mean_matrix(history);
  const double u = routing::simulate(g, r, mean).u_max;
  const double u_opt = mcf::solve_optimal(g, mean).u_max;
  // The epsilon fill for unseen pairs perturbs it only marginally.
  EXPECT_NEAR(u, u_opt, u_opt * 0.01);
}

TEST(MeanDemandBaseline, BeatsShortestPathOnStationaryTraffic) {
  // With dense, near-stationary traffic every matrix resembles the mean,
  // so the mean-optimal routing should clearly beat shortest-path.  (With
  // spiky rotating elephants it can *lose* to shortest-path — exactly the
  // brittleness of static data-driven routing that motivates the paper's
  // adaptive agents.)
  const DiGraph g = topo::by_name("AbileneHet");
  util::Rng rng(12);
  traffic::BimodalParams stationary;  // dense, mild variance
  const auto history = traffic::cyclical_bimodal_sequence(
      g.num_nodes(), 30, 10, stationary, rng);
  const auto mean_routing = routing::mean_demand_optimal_routing(g, history);
  const auto sp = routing::shortest_path_routing(g);
  double mean_sum = 0.0;
  double sp_sum = 0.0;
  for (std::size_t t = 0; t < 10; ++t) {
    mean_sum += routing::simulate(g, mean_routing, history[t]).u_max;
    sp_sum += routing::simulate(g, sp, history[t]).u_max;
  }
  EXPECT_LT(mean_sum, sp_sum);
}

TEST(MeanDemandBaseline, EmptyHistoryRejected) {
  EXPECT_THROW(
      routing::mean_demand_optimal_routing(topo::abilene(), {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace gddr
