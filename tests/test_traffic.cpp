#include <gtest/gtest.h>

#include "traffic/demand.hpp"
#include "traffic/generators.hpp"

namespace gddr::traffic {
namespace {

TEST(DemandMatrix, ZeroInitialised) {
  const DemandMatrix dm(4);
  for (int s = 0; s < 4; ++s) {
    for (int t = 0; t < 4; ++t) EXPECT_EQ(dm.at(s, t), 0.0);
  }
  EXPECT_EQ(dm.total(), 0.0);
}

TEST(DemandMatrix, SetGet) {
  DemandMatrix dm(3);
  dm.set(0, 2, 5.5);
  EXPECT_DOUBLE_EQ(dm.at(0, 2), 5.5);
  EXPECT_DOUBLE_EQ(dm.at(2, 0), 0.0);
}

TEST(DemandMatrix, DiagonalRejected) {
  DemandMatrix dm(3);
  EXPECT_THROW(dm.set(1, 1, 1.0), std::invalid_argument);
}

TEST(DemandMatrix, NegativeRejected) {
  DemandMatrix dm(3);
  EXPECT_THROW(dm.set(0, 1, -1.0), std::invalid_argument);
}

TEST(DemandMatrix, OutOfRangeRejected) {
  DemandMatrix dm(3);
  EXPECT_THROW(dm.set(0, 3, 1.0), std::out_of_range);
  EXPECT_THROW(dm.set(-1, 0, 1.0), std::out_of_range);
}

TEST(DemandMatrix, RowColumnSums) {
  DemandMatrix dm(3);
  dm.set(0, 1, 2.0);
  dm.set(0, 2, 3.0);
  dm.set(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(dm.out_sum(0), 5.0);
  EXPECT_DOUBLE_EQ(dm.in_sum(2), 7.0);
  EXPECT_DOUBLE_EQ(dm.total(), 9.0);
  EXPECT_DOUBLE_EQ(dm.max_entry(), 4.0);
}

TEST(DemandMatrix, Scaled) {
  DemandMatrix dm(2);
  dm.set(0, 1, 4.0);
  const DemandMatrix s = dm.scaled(0.5);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 2.0);
  EXPECT_THROW(dm.scaled(-1.0), std::invalid_argument);
}

TEST(MeanMatrix, Averages) {
  DemandMatrix a(2);
  a.set(0, 1, 2.0);
  DemandMatrix b(2);
  b.set(0, 1, 4.0);
  const DemandMatrix m = mean_matrix({a, b});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
}

TEST(MeanMatrix, SizeMismatchThrows) {
  EXPECT_THROW(mean_matrix({DemandMatrix(2), DemandMatrix(3)}),
               std::invalid_argument);
}

TEST(Bimodal, EntriesNonNegativeAndDiagonalZero) {
  util::Rng rng(1);
  const DemandMatrix dm = bimodal_matrix(10, BimodalParams{}, rng);
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(dm.at(s, s), 0.0);
    for (int t = 0; t < 10; ++t) EXPECT_GE(dm.at(s, t), 0.0);
  }
}

TEST(Bimodal, MeanNearMixture) {
  // With elephant_prob 0.2: E[D] = 0.8*400 + 0.2*800 = 480.
  util::Rng rng(2);
  double sum = 0.0;
  int count = 0;
  for (int rep = 0; rep < 50; ++rep) {
    const DemandMatrix dm = bimodal_matrix(12, BimodalParams{}, rng);
    sum += dm.total();
    count += 12 * 11;
  }
  EXPECT_NEAR(sum / count, 480.0, 10.0);
}

TEST(Bimodal, ElephantProbabilityShiftsMean) {
  util::Rng a(3);
  util::Rng b(3);
  BimodalParams heavy;
  heavy.elephant_prob = 0.9;
  const double light_total = bimodal_matrix(14, BimodalParams{}, a).total();
  const double heavy_total = bimodal_matrix(14, heavy, b).total();
  EXPECT_GT(heavy_total, light_total);
}

TEST(Bimodal, PairDensitySparsifies) {
  util::Rng rng(4);
  BimodalParams sparse;
  sparse.pair_density = 0.3;
  const DemandMatrix dm = bimodal_matrix(20, sparse, rng);
  int zero = 0;
  int total = 0;
  for (int s = 0; s < 20; ++s) {
    for (int t = 0; t < 20; ++t) {
      if (s == t) continue;
      ++total;
      if (dm.at(s, t) == 0.0) ++zero;
    }
  }
  EXPECT_GT(static_cast<double>(zero) / total, 0.5);
}

TEST(Bimodal, BadProbabilityThrows) {
  util::Rng rng(5);
  BimodalParams bad;
  bad.elephant_prob = 1.5;
  EXPECT_THROW(bimodal_matrix(5, bad, rng), std::invalid_argument);
}

TEST(CyclicalSequence, RepeatsWithPeriod) {
  util::Rng rng(6);
  const auto seq = cyclical_bimodal_sequence(8, 60, 10, BimodalParams{}, rng);
  ASSERT_EQ(seq.size(), 60U);
  for (size_t i = 0; i + 10 < seq.size(); ++i) {
    for (int s = 0; s < 8; ++s) {
      for (int t = 0; t < 8; ++t) {
        EXPECT_DOUBLE_EQ(seq[i].at(s, t), seq[i + 10].at(s, t));
      }
    }
  }
}

TEST(CyclicalSequence, WithinCycleDiffers) {
  util::Rng rng(7);
  const auto seq = cyclical_bimodal_sequence(8, 20, 10, BimodalParams{}, rng);
  bool any_diff = false;
  for (int s = 0; s < 8 && !any_diff; ++s) {
    for (int t = 0; t < 8 && !any_diff; ++t) {
      if (seq[0].at(s, t) != seq[1].at(s, t)) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CyclicalSequence, BadLengthsThrow) {
  util::Rng rng(8);
  EXPECT_THROW(cyclical_bimodal_sequence(4, 10, 0, BimodalParams{}, rng),
               std::invalid_argument);
  EXPECT_THROW(cyclical_bimodal_sequence(4, -1, 5, BimodalParams{}, rng),
               std::invalid_argument);
}

TEST(Gravity, MeanDemandMatchesParam) {
  util::Rng rng(9);
  GravityParams params;
  params.mean_demand = 250.0;
  const DemandMatrix dm = gravity_matrix(10, params, rng);
  EXPECT_NEAR(dm.total() / (10 * 9), 250.0, 1e-6);
}

TEST(Gravity, ProportionalToMasses) {
  // Rank correlation sanity: rows of high-mass nodes dominate.  We check
  // the multiplicative structure D[s][t] * D[t][s] symmetric in masses.
  util::Rng rng(10);
  const DemandMatrix dm = gravity_matrix(6, GravityParams{}, rng);
  for (int s = 0; s < 6; ++s) {
    for (int t = s + 1; t < 6; ++t) {
      EXPECT_NEAR(dm.at(s, t), dm.at(t, s), 1e-9)
          << "gravity model must be symmetric";
    }
  }
}

TEST(Gravity, CyclicalSequenceTiles) {
  util::Rng rng(11);
  const auto seq = cyclical_gravity_sequence(5, 12, 4, GravityParams{}, rng);
  ASSERT_EQ(seq.size(), 12U);
  EXPECT_DOUBLE_EQ(seq[0].at(0, 1), seq[4].at(0, 1));
  EXPECT_DOUBLE_EQ(seq[3].at(2, 1), seq[11].at(2, 1));
}

TEST(NormalisePeakTotal, ScalesToTarget) {
  util::Rng rng(12);
  auto seq = cyclical_bimodal_sequence(6, 10, 5, BimodalParams{}, rng);
  seq = normalise_peak_total(std::move(seq), 1000.0);
  double peak = 0.0;
  for (const auto& dm : seq) peak = std::max(peak, dm.total());
  EXPECT_NEAR(peak, 1000.0, 1e-6);
}

TEST(NormalisePeakTotal, EmptyOrZeroSafe) {
  DemandSequence empty;
  EXPECT_TRUE(normalise_peak_total(empty, 10.0).empty());
  DemandSequence zeros{DemandMatrix(3)};
  const auto out = normalise_peak_total(zeros, 10.0);
  EXPECT_EQ(out[0].total(), 0.0);
}

}  // namespace
}  // namespace gddr::traffic
