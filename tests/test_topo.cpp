#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topo/generators.hpp"
#include "topo/mutate.hpp"
#include "topo/zoo.hpp"

namespace gddr::topo {
namespace {

using graph::DiGraph;
using graph::EdgeId;

TEST(Zoo, AbileneShape) {
  const DiGraph g = abilene();
  EXPECT_EQ(g.num_nodes(), 11);
  EXPECT_EQ(g.num_edges(), 28);  // 14 bidirectional links
}

TEST(Zoo, NsfnetShape) {
  const DiGraph g = nsfnet();
  EXPECT_EQ(g.num_nodes(), 14);
  EXPECT_EQ(g.num_edges(), 42);  // 21 bidirectional links
}

TEST(Zoo, CatalogueNamesResolve) {
  for (const auto& name : catalogue_names()) {
    const DiGraph g = by_name(name);
    EXPECT_GT(g.num_nodes(), 0) << name;
    EXPECT_EQ(g.name(), name);
  }
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW(by_name("NoSuchGraph"), std::out_of_range);
}

TEST(Zoo, SizeBandFilters) {
  const auto band = catalogue_in_size_band(6, 22);
  EXPECT_FALSE(band.empty());
  for (const auto& g : band) {
    EXPECT_GE(g.num_nodes(), 6);
    EXPECT_LE(g.num_nodes(), 22);
  }
}

// Structural property suite over every catalogue topology.
class CatalogueTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogueTest, StronglyConnected) {
  EXPECT_TRUE(graph::is_strongly_connected(by_name(GetParam())));
}

TEST_P(CatalogueTest, AllLinksBidirectionalWithEqualCapacity) {
  const DiGraph g = by_name(GetParam());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const auto rev = g.find_edge(ed.dst, ed.src);
    ASSERT_TRUE(rev.has_value());
    EXPECT_DOUBLE_EQ(g.edge(*rev).capacity, ed.capacity);
  }
}

TEST_P(CatalogueTest, NoParallelEdges) {
  const DiGraph g = by_name(GetParam());
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    for (EdgeId b = a + 1; b < g.num_edges(); ++b) {
      EXPECT_FALSE(g.edge(a).src == g.edge(b).src &&
                   g.edge(a).dst == g.edge(b).dst)
          << "duplicate edge in " << GetParam();
    }
  }
}

TEST_P(CatalogueTest, PositiveCapacities) {
  const DiGraph g = by_name(GetParam());
  for (const auto& e : g.edges()) EXPECT_GT(e.capacity, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, CatalogueTest,
                         ::testing::ValuesIn(catalogue_names()));

// ---- generators ----

class GeneratorSeeds : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSeeds, ErdosRenyiStronglyConnected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DiGraph g = erdos_renyi(12, 0.2, rng);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_TRUE(graph::is_strongly_connected(g));
}

TEST_P(GeneratorSeeds, WattsStrogatzStronglyConnected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DiGraph g = watts_strogatz(16, 4, 0.3, rng);
  EXPECT_TRUE(graph::is_strongly_connected(g));
}

TEST_P(GeneratorSeeds, BarabasiAlbertStronglyConnected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DiGraph g = barabasi_albert(15, 2, rng);
  EXPECT_TRUE(graph::is_strongly_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds, ::testing::Range(0, 8));

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  util::Rng a(5);
  util::Rng b(5);
  EXPECT_TRUE(erdos_renyi(10, 0.3, a) == erdos_renyi(10, 0.3, b));
}

TEST(Generators, DensityIncreasesEdges) {
  util::Rng a(5);
  util::Rng b(5);
  const auto sparse = erdos_renyi(20, 0.05, a);
  const auto dense = erdos_renyi(20, 0.6, b);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(Generators, CapacityChoicesRespected) {
  util::Rng rng(3);
  CapacityModel cap;
  cap.choices = {100.0, 200.0};
  const DiGraph g = erdos_renyi(10, 0.3, rng, cap);
  for (const auto& e : g.edges()) {
    EXPECT_TRUE(e.capacity == 100.0 || e.capacity == 200.0);
  }
}

TEST(Generators, BadArgumentsThrow) {
  util::Rng rng(1);
  EXPECT_THROW(erdos_renyi(2, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(3, 8, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(2, 0, rng), std::invalid_argument);
}

// ---- mutation ----

class MutationSeeds : public ::testing::TestWithParam<int> {};

TEST_P(MutationSeeds, SingleMutationKeepsStrongConnectivity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Mutation m{MutationKind::kAddEdge, ""};
  const DiGraph g = mutate_once(abilene(), rng, &m);
  EXPECT_TRUE(graph::is_strongly_connected(g));
  EXPECT_FALSE(m.description.empty());
}

TEST_P(MutationSeeds, DoubleMutationKeepsStrongConnectivity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::vector<Mutation> applied;
  const DiGraph g = mutate(abilene(), 2, rng, &applied);
  EXPECT_TRUE(graph::is_strongly_connected(g));
  EXPECT_EQ(applied.size(), 2U);
}

TEST_P(MutationSeeds, MutationChangesTheGraph) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const DiGraph base = abilene();
  const DiGraph g = mutate_once(base, rng);
  EXPECT_FALSE(g == base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSeeds, ::testing::Range(0, 10));

TEST(Mutation, AddNodeIncreasesCount) {
  // With a complete graph, add-edge is impossible; force add-node by
  // trying seeds until the node count changes upward.
  DiGraph k4(4, "k4");
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) k4.add_bidirectional(u, v, 10.0);
  }
  bool saw_add_node = false;
  for (int seed = 0; seed < 30 && !saw_add_node; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    Mutation m{MutationKind::kAddEdge, ""};
    const DiGraph g = mutate_once(k4, rng, &m);
    if (m.kind == MutationKind::kAddNode) {
      saw_add_node = true;
      EXPECT_EQ(g.num_nodes(), 5);
      EXPECT_TRUE(graph::is_strongly_connected(g));
    }
  }
  EXPECT_TRUE(saw_add_node);
}

TEST(Mutation, NewLinkCapacityMatchesNetworkScale) {
  // All-equal capacities: any added link must reuse that capacity.
  for (int seed = 0; seed < 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    Mutation m{MutationKind::kAddEdge, ""};
    const DiGraph g = mutate_once(abilene(), rng, &m);
    if (m.kind == MutationKind::kAddEdge || m.kind == MutationKind::kAddNode) {
      for (const auto& e : g.edges()) {
        EXPECT_DOUBLE_EQ(e.capacity, 9920.0);
      }
    }
  }
}

}  // namespace
}  // namespace gddr::topo
