#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/algorithms.hpp"
#include "mcf/optimal.hpp"
#include "routing/baselines.hpp"
#include "routing/prune.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"
#include "topo/generators.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"

namespace gddr::routing {
namespace {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;
using traffic::DemandMatrix;

DiGraph diamond() {
  DiGraph g(4);
  g.add_edge(0, 1, 10.0);  // e0
  g.add_edge(1, 3, 10.0);  // e1
  g.add_edge(0, 2, 10.0);  // e2
  g.add_edge(2, 3, 10.0);  // e3
  return g;
}

// ---------------- softmin function ----------------

TEST(Softmin, UniformInputsGiveUniformOutput) {
  const std::vector<double> x{2.0, 2.0, 2.0, 2.0};
  const auto out = softmin(x, 3.0);
  for (double v : out) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Softmin, SumsToOne) {
  const std::vector<double> x{1.0, 5.0, 2.5, 0.1};
  const auto out = softmin(x, 2.0);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0), 1.0, 1e-12);
}

TEST(Softmin, SmallerInputGetsLargerShare) {
  const auto out = softmin(std::vector<double>{1.0, 3.0}, 1.0);
  EXPECT_GT(out[0], out[1]);
}

TEST(Softmin, GammaSharpens) {
  const std::vector<double> x{1.0, 2.0};
  const auto soft = softmin(x, 0.5);
  const auto sharp = softmin(x, 10.0);
  EXPECT_GT(sharp[0], soft[0]);
  EXPECT_GT(sharp[0], 0.99);
}

TEST(Softmin, MatchesClosedForm) {
  const std::vector<double> x{0.0, 1.0};
  const double gamma = 2.0;
  const auto out = softmin(x, gamma);
  const double e0 = 1.0;
  const double e1 = std::exp(-gamma);
  EXPECT_NEAR(out[0], e0 / (e0 + e1), 1e-9);
  EXPECT_NEAR(out[1], e1 / (e0 + e1), 1e-9);
}

TEST(Softmin, NumericallyStableForLargeInputs) {
  const auto out = softmin(std::vector<double>{1e6, 1e6 + 1.0}, 5.0);
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_NEAR(out[0] + out[1], 1.0, 1e-9);
}

TEST(Softmin, EmptyOrBadGammaThrows) {
  EXPECT_THROW(softmin(std::vector<double>{}, 1.0), std::invalid_argument);
  EXPECT_THROW(softmin(std::vector<double>{1.0}, 0.0), std::invalid_argument);
}

// ---------------- weights_from_actions ----------------

TEST(WeightsFromActions, AffineMapping) {
  const std::vector<double> actions{-1.0, 0.0, 1.0};
  const auto w = weights_from_actions(actions, 0.1, 10.0);
  EXPECT_NEAR(w[0], 0.1, 1e-12);
  EXPECT_NEAR(w[1], 5.05, 1e-12);
  EXPECT_NEAR(w[2], 10.0, 1e-12);
}

TEST(WeightsFromActions, ClampsOutOfRange) {
  const auto w = weights_from_actions(std::vector<double>{-5.0, 5.0});
  EXPECT_NEAR(w[0], 0.1, 1e-12);
  EXPECT_NEAR(w[1], 10.0, 1e-12);
}

TEST(WeightsFromActions, BadRangeThrows) {
  EXPECT_THROW(weights_from_actions(std::vector<double>{0.0}, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(weights_from_actions(std::vector<double>{0.0}, 2.0, 1.0),
               std::invalid_argument);
}

// ---------------- Routing container & validate ----------------

TEST(Routing, SetAndGetRatios) {
  Routing r(4, 4);
  r.set_ratio(0, 3, 0, 0.25);
  EXPECT_DOUBLE_EQ(r.ratio(0, 3, 0), 0.25);
  EXPECT_DOUBLE_EQ(r.ratio(0, 3, 1), 0.0);
}

TEST(Routing, OutOfRangeRatioThrows) {
  Routing r(4, 4);
  EXPECT_THROW(r.set_ratio(0, 3, 0, 1.5), std::invalid_argument);
  EXPECT_THROW(r.set_ratio(0, 3, 0, -0.5), std::invalid_argument);
}

TEST(Validate, AcceptsShortestPathRouting) {
  const DiGraph g = topo::abilene();
  util::Rng rng(1);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  std::string error;
  EXPECT_TRUE(validate(g, shortest_path_routing(g), dm, &error)) << error;
}

TEST(Validate, RejectsLeakyRouting) {
  const DiGraph g = diamond();
  DemandMatrix dm(4);
  dm.set(0, 3, 1.0);
  Routing r(4, 4);
  r.set_ratio(0, 3, 0, 0.5);  // only half the traffic leaves vertex 0
  r.set_ratio(0, 3, 1, 1.0);
  std::string error;
  EXPECT_FALSE(validate(g, r, dm, &error));
  EXPECT_NE(error.find("sum"), std::string::npos);
}

TEST(Validate, RejectsForwardingOutOfDestination) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 0, 1.0);
  DemandMatrix dm(3);
  dm.set(0, 1, 1.0);
  Routing r(3, 3);
  r.set_ratio(0, 1, 0, 1.0);
  r.set_ratio(0, 1, 2, 1.0);  // destination 1 forwards back to 0
  EXPECT_FALSE(validate(g, r, dm, nullptr));
}

// ---------------- simulate ----------------

TEST(Simulate, SingleFlowSinglePath) {
  const DiGraph g = diamond();
  DemandMatrix dm(4);
  dm.set(0, 3, 5.0);
  Routing r(4, 4);
  r.set_ratio(0, 3, 0, 1.0);
  r.set_ratio(0, 3, 1, 1.0);
  const auto sim = simulate(g, r, dm);
  EXPECT_NEAR(sim.u_max, 0.5, 1e-12);
  EXPECT_NEAR(sim.delivered, 5.0, 1e-12);
  EXPECT_NEAR(sim.link_load[0], 5.0, 1e-12);
  EXPECT_NEAR(sim.link_load[2], 0.0, 1e-12);
}

TEST(Simulate, SplitFlowHalvesUtilisation) {
  const DiGraph g = diamond();
  DemandMatrix dm(4);
  dm.set(0, 3, 8.0);
  Routing r(4, 4);
  r.set_ratio(0, 3, 0, 0.5);
  r.set_ratio(0, 3, 2, 0.5);
  r.set_ratio(0, 3, 1, 1.0);
  r.set_ratio(0, 3, 3, 1.0);
  const auto sim = simulate(g, r, dm);
  EXPECT_NEAR(sim.u_max, 0.4, 1e-12);
}

TEST(Simulate, MultiHopCascade) {
  // Chain 0 -> 1 -> 2 with two flows: (0,2) and (1,2).
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  DemandMatrix dm(3);
  dm.set(0, 2, 4.0);
  dm.set(1, 2, 3.0);
  Routing r(3, 2);
  r.set_ratio(0, 2, 0, 1.0);
  r.set_ratio(0, 2, 1, 1.0);
  r.set_ratio(1, 2, 1, 1.0);
  const auto sim = simulate(g, r, dm);
  EXPECT_NEAR(sim.link_load[1], 7.0, 1e-12);
  EXPECT_NEAR(sim.u_max, 0.7, 1e-12);
}

TEST(Simulate, LoopRaises) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  g.add_edge(1, 2, 1.0);
  DemandMatrix dm(3);
  dm.set(0, 2, 1.0);
  Routing r(3, 3);
  r.set_ratio(0, 2, 0, 1.0);
  r.set_ratio(0, 2, 1, 0.5);
  r.set_ratio(0, 2, 2, 0.5);
  EXPECT_THROW(simulate(g, r, dm), std::runtime_error);
}

TEST(Simulate, LostTrafficRaisesInStrictMode) {
  const DiGraph g = diamond();
  DemandMatrix dm(4);
  dm.set(0, 3, 2.0);
  Routing r(4, 4);
  r.set_ratio(0, 3, 0, 1.0);  // traffic reaches vertex 1 and stops
  EXPECT_THROW(simulate(g, r, dm), std::runtime_error);
  SimulateOptions lax;
  lax.strict = false;
  const auto sim = simulate(g, r, dm, lax);
  EXPECT_NEAR(sim.delivered, 0.0, 1e-12);
}

TEST(Simulate, ZeroDemandZeroLoad) {
  const DiGraph g = diamond();
  const auto sim = simulate(g, Routing(4, 4), DemandMatrix(4));
  EXPECT_EQ(sim.u_max, 0.0);
  EXPECT_EQ(sim.delivered, 0.0);
}

// ---------------- prune_dag (all modes, property suite) ----------------

struct PruneCase {
  std::string topology;
  PruneMode mode;
  int seed;
};

class PruneProperty : public ::testing::TestWithParam<PruneCase> {};

TEST_P(PruneProperty, DagInvariants) {
  const auto& param = GetParam();
  const DiGraph g = topo::by_name(param.topology);
  util::Rng rng(static_cast<std::uint64_t>(param.seed));
  std::vector<double> weights(static_cast<size_t>(g.num_edges()));
  for (auto& w : weights) w = rng.uniform(0.1, 10.0);

  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const auto mask = prune_dag(g, s, t, weights, param.mode);
      // (1) acyclic
      EXPECT_FALSE(graph::has_cycle(g, mask))
          << param.topology << " flow " << s << "->" << t;
      // (2) t reachable from s within the mask
      bool s_has_out = false;
      for (EdgeId e : g.out_edges(s)) {
        if (mask[static_cast<size_t>(e)]) s_has_out = true;
      }
      EXPECT_TRUE(s_has_out) << "source has no outgoing edge in DAG";
      // (3) every kept edge lies on an s->t path: heads can reach t.
      std::vector<bool> check = mask;
      restrict_to_st_paths(g, s, t, check);
      EXPECT_EQ(check, mask) << "mask contains edges off all s->t paths";
    }
  }
}

std::vector<PruneCase> prune_cases() {
  std::vector<PruneCase> cases;
  for (const auto& topology : {"Abilene", "Nsfnet", "SmallRing"}) {
    for (const PruneMode mode :
         {PruneMode::kFrontierMeet, PruneMode::kDistanceToSink,
          PruneMode::kDistanceFromSource}) {
      for (int seed = 0; seed < 3; ++seed) {
        cases.push_back({topology, mode, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Modes, PruneProperty,
                         ::testing::ValuesIn(prune_cases()));

TEST(PruneDag, KeepsMultipathOnDiamond) {
  const DiGraph g = diamond();
  const std::vector<double> w(4, 1.0);
  const auto mask = prune_dag(g, 0, 3, w, PruneMode::kDistanceToSink);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_TRUE(mask[3]);
}

TEST(PruneDag, DownhillModeRetainsMoreThanShortestPath) {
  // Abilene with unit weights: count kept edges vs shortest-path edges for
  // a long flow; the downhill DAG keeps every progress-making edge.
  const DiGraph g = topo::abilene();
  const auto w = graph::unit_weights(g);
  const auto mask = prune_dag(g, 0, 10, w, PruneMode::kDistanceToSink);
  int kept = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (mask[static_cast<size_t>(e)]) ++kept;
  }
  const auto sp = graph::dijkstra(g, 0, w);
  const auto path = graph::extract_path(g, sp, 0, 10);
  EXPECT_GT(kept, static_cast<int>(path.size()) - 1);
}

TEST(PruneDag, FrontierMeetRetainsAtLeastShortestPath) {
  // With distinct random weights (no distance ties) grafting can engage;
  // the mask must always contain at least the full shortest path.
  const DiGraph g = topo::abilene();
  util::Rng rng(123);
  std::vector<double> w(static_cast<size_t>(g.num_edges()));
  for (auto& x : w) x = rng.uniform(0.5, 5.0);
  const auto mask = prune_dag(g, 0, 10, w, PruneMode::kFrontierMeet);
  const auto sp = graph::dijkstra(g, 0, w);
  const auto path = graph::extract_path(g, sp, 0, 10);
  ASSERT_GE(path.size(), 2U);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const auto e = g.find_edge(path[i], path[i + 1]);
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(mask[static_cast<size_t>(*e)])
        << "shortest-path edge " << path[i] << "->" << path[i + 1]
        << " missing from frontier-meet DAG";
  }
}

TEST(PruneDag, BadEndpointsThrow) {
  const DiGraph g = diamond();
  const std::vector<double> w(4, 1.0);
  EXPECT_THROW(prune_dag(g, 0, 0, w, PruneMode::kDistanceToSink),
               std::invalid_argument);
  EXPECT_THROW(prune_dag(g, 0, 9, w, PruneMode::kDistanceToSink),
               std::invalid_argument);
}

TEST(PruneDag, NonPositiveWeightsThrow) {
  const DiGraph g = diamond();
  EXPECT_THROW(prune_dag(g, 0, 3, {1.0, 0.0, 1.0, 1.0},
                         PruneMode::kDistanceToSink),
               std::invalid_argument);
}

TEST(PruneDag, UnreachableSinkThrows) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 1, 1.0);
  EXPECT_THROW(
      prune_dag(g, 0, 2, {1.0, 1.0}, PruneMode::kFrontierMeet),
      std::runtime_error);
}

// ---------------- softmin_routing ----------------

class SoftminRoutingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftminRoutingProperty, ValidLoopFreeAndConserving) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DiGraph g = topo::by_name(GetParam() % 2 == 0 ? "Abilene"
                                                      : "SmallRing");
  std::vector<double> weights(static_cast<size_t>(g.num_edges()));
  for (auto& w : weights) w = rng.uniform(0.1, 10.0);
  SoftminOptions options;
  options.gamma = rng.uniform(0.5, 10.0);
  const Routing r = softmin_routing(g, weights, options);

  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  std::string error;
  EXPECT_TRUE(validate(g, r, dm, &error)) << error;
  // simulate() is strict: it will throw on loops or lost traffic.
  const auto sim = simulate(g, r, dm);
  EXPECT_GT(sim.u_max, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftminRoutingProperty,
                         ::testing::Range(0, 10));

TEST(SoftminRouting, HighGammaApproachesShortestPath) {
  // With distinct (tie-free) weights and gamma -> inf, softmin sends all
  // traffic down the weighted shortest paths, matching shortest-path
  // routing computed under the same weights.
  const DiGraph g = topo::abilene();
  util::Rng wrng(42);
  std::vector<double> weights(static_cast<size_t>(g.num_edges()));
  for (auto& w : weights) w = wrng.uniform(0.5, 5.0);
  SoftminOptions sharp;
  sharp.gamma = 60.0;
  const Routing soft = softmin_routing(g, weights, sharp);
  const Routing sp = shortest_path_routing(g, weights);
  util::Rng rng(5);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const double u_soft = simulate(g, soft, dm).u_max;
  const double u_sp = simulate(g, sp, dm).u_max;
  EXPECT_NEAR(u_soft, u_sp, u_sp * 0.02);
}

TEST(SoftminRouting, LowGammaSpreadsTraffic) {
  const DiGraph g = diamond();
  const std::vector<double> weights{1.0, 1.0, 1.0, 1.0};
  SoftminOptions flat;
  flat.gamma = 0.5;
  const Routing r = softmin_routing(g, weights, flat);
  // Both branches of the diamond carry traffic.
  EXPECT_GT(r.ratio(0, 3, 0), 0.1);
  EXPECT_GT(r.ratio(0, 3, 2), 0.1);
}

TEST(SoftminRouting, WeightSizeMismatchThrows) {
  const DiGraph g = diamond();
  EXPECT_THROW(softmin_routing(g, {1.0, 2.0}), std::invalid_argument);
}

TEST(SoftminRouting, BetterWeightsReduceCongestion) {
  // A bottleneck scenario: pushing weight onto the bottleneck edge should
  // divert traffic and lower U_max versus all-equal weights.
  DiGraph g(4);
  g.add_edge(0, 1, 2.0);   // e0: bottleneck branch
  g.add_edge(1, 3, 2.0);   // e1
  g.add_edge(0, 2, 20.0);  // e2: wide branch
  g.add_edge(2, 3, 20.0);  // e3
  DemandMatrix dm(4);
  dm.set(0, 3, 10.0);
  SoftminOptions options;
  options.gamma = 3.0;
  const Routing equal = softmin_routing(g, {1.0, 1.0, 1.0, 1.0}, options);
  const Routing tuned = softmin_routing(g, {5.0, 5.0, 0.5, 0.5}, options);
  EXPECT_LT(simulate(g, tuned, dm).u_max, simulate(g, equal, dm).u_max);
}

// ---------------- per-destination softmin (paper §V-C intermediate) ----

TEST(PerDestinationSoftmin, EqualRowsMatchSingleVector) {
  const DiGraph g = topo::abilene();
  util::Rng rng(21);
  std::vector<double> w(static_cast<size_t>(g.num_edges()));
  for (auto& x : w) x = rng.uniform(0.5, 3.0);
  const std::vector<std::vector<double>> rows(
      static_cast<size_t>(g.num_nodes()), w);
  const Routing combined = softmin_routing_per_destination(
      g, rows, SoftminOptions{});
  const Routing single = softmin_routing(g, w);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  EXPECT_NEAR(simulate(g, combined, dm).u_max,
              simulate(g, single, dm).u_max, 1e-9);
}

TEST(PerDestinationSoftmin, DistinctRowsAreMoreExpressive) {
  // Two destinations with opposite branch preferences on the diamond: a
  // single weight vector cannot route dest 3 via one branch and dest 0
  // via the other, but per-destination weights can.
  const DiGraph g = diamond();
  DiGraph bidir(4);
  for (const auto& e : g.edges()) bidir.add_edge(e.src, e.dst, e.capacity);
  bidir.add_edge(3, 1, 10.0);
  bidir.add_edge(1, 0, 10.0);
  bidir.add_edge(3, 2, 10.0);
  bidir.add_edge(2, 0, 10.0);
  std::vector<std::vector<double>> rows(4);
  std::vector<double> prefer_upper(static_cast<size_t>(bidir.num_edges()),
                                   1.0);
  prefer_upper[2] = 3.0;  // penalise 0->2
  std::vector<double> prefer_lower(static_cast<size_t>(bidir.num_edges()),
                                   1.0);
  prefer_lower[0] = 3.0;  // penalise 0->1
  rows[3] = prefer_upper;
  rows[0] = prefer_lower;
  SoftminOptions sharp;
  sharp.gamma = 10.0;
  const Routing r = softmin_routing_per_destination(bidir, rows, sharp);
  // Flow (0,3) prefers via 1; if weights were shared, both destinations
  // would be forced through the same branch preference.
  EXPECT_GT(r.ratio(0, 3, 0), 0.9);  // edge 0->1 dominates toward dest 3
  DemandMatrix dm(4);
  dm.set(0, 3, 1.0);
  dm.set(3, 0, 1.0);
  std::string error;
  EXPECT_TRUE(validate(bidir, r, dm, &error)) << error;
  const auto sim = simulate(bidir, r, dm);
  EXPECT_NEAR(sim.delivered, 2.0, 1e-9);
}

TEST(PerDestinationSoftmin, EmptyRowsFallBackToUnitWeights) {
  const DiGraph g = topo::by_name("SmallRing");
  const std::vector<std::vector<double>> rows(
      static_cast<size_t>(g.num_nodes()));
  const Routing fallback = softmin_routing_per_destination(
      g, rows, SoftminOptions{});
  const Routing unit = softmin_routing(
      g, std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0));
  util::Rng rng(22);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  EXPECT_NEAR(simulate(g, fallback, dm).u_max,
              simulate(g, unit, dm).u_max, 1e-9);
}

TEST(PerDestinationSoftmin, BadShapesThrow) {
  const DiGraph g = diamond();
  EXPECT_THROW(softmin_routing_per_destination(g, {}, SoftminOptions{}),
               std::invalid_argument);
  std::vector<std::vector<double>> rows(4);
  rows[0] = {1.0, 2.0};  // wrong width
  EXPECT_THROW(softmin_routing_per_destination(g, rows, SoftminOptions{}),
               std::invalid_argument);
}

// ---------------- baselines ----------------

TEST(ShortestPath, RoutesAlongFewestHops) {
  const DiGraph g = diamond();
  const Routing r = shortest_path_routing(g);
  DemandMatrix dm(4);
  dm.set(0, 3, 1.0);
  const auto sim = simulate(g, r, dm);
  EXPECT_NEAR(sim.delivered, 1.0, 1e-12);
  // All traffic on exactly one branch.
  EXPECT_NEAR(sim.link_load[0] + sim.link_load[2], 1.0, 1e-12);
  EXPECT_TRUE(sim.link_load[0] == 0.0 || sim.link_load[2] == 0.0);
}

TEST(Ecmp, SplitsOverEqualCostPaths) {
  const DiGraph g = diamond();
  const Routing r = ecmp_routing(g, graph::unit_weights(g));
  DemandMatrix dm(4);
  dm.set(0, 3, 8.0);
  const auto sim = simulate(g, r, dm);
  EXPECT_NEAR(sim.link_load[0], 4.0, 1e-9);
  EXPECT_NEAR(sim.link_load[2], 4.0, 1e-9);
}

TEST(Ecmp, NeverWorseThanSingleShortestPathOnDiamond) {
  const DiGraph g = diamond();
  DemandMatrix dm(4);
  dm.set(0, 3, 8.0);
  const double u_sp = simulate(g, shortest_path_routing(g), dm).u_max;
  const double u_ecmp =
      simulate(g, ecmp_routing(g, graph::unit_weights(g)), dm).u_max;
  EXPECT_LE(u_ecmp, u_sp + 1e-12);
}

TEST(UniformMultipath, DeliversAllTraffic) {
  const DiGraph g = topo::abilene();
  const Routing r = uniform_multipath_routing(g, graph::unit_weights(g), 3);
  util::Rng rng(8);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const auto sim = simulate(g, r, dm);
  EXPECT_NEAR(sim.delivered, dm.total(), dm.total() * 1e-6);
}

TEST(UniformMultipath, KOneEqualsShortestPath) {
  const DiGraph g = topo::abilene();
  const auto w = graph::unit_weights(g);
  util::Rng rng(9);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const double u1 =
      simulate(g, uniform_multipath_routing(g, w, 1), dm).u_max;
  const double usp = simulate(g, shortest_path_routing(g, w), dm).u_max;
  EXPECT_NEAR(u1, usp, 1e-9);
}

// ---------------- cycle cancellation & LP-derived routing ----------------

TEST(CancelFlowCycles, RemovesPureCirculation) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  const auto out = cancel_flow_cycles(g, {2.0, 2.0, 2.0});
  for (double f : out) EXPECT_NEAR(f, 0.0, 1e-12);
}

TEST(CancelFlowCycles, PreservesAcyclicFlow) {
  const DiGraph g = diamond();
  const std::vector<double> flow{3.0, 3.0, 2.0, 2.0};
  EXPECT_EQ(cancel_flow_cycles(g, flow), flow);
}

TEST(CancelFlowCycles, RemovesCycleKeepsNetFlow) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);  // e0 carries 5
  g.add_edge(1, 2, 1.0);  // e1 carries 5 + 2 (cycle)
  g.add_edge(2, 1, 1.0);  // e2 carries 2 (cycle)
  const auto out = cancel_flow_cycles(g, {5.0, 7.0, 2.0});
  EXPECT_NEAR(out[0], 5.0, 1e-12);
  EXPECT_NEAR(out[1], 5.0, 1e-12);
  EXPECT_NEAR(out[2], 0.0, 1e-12);
}

// Simulating the routing derived from the optimal LP flows must reproduce
// the LP's U_max — this closes the loop between solver and simulator.
class OptimalRoutingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OptimalRoutingRoundTrip, SimulationMatchesLpOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const DiGraph g = GetParam() % 2 == 0 ? topo::abilene() : topo::nsfnet();
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const mcf::OptimalResult opt = mcf::solve_optimal(g, dm);
  ASSERT_TRUE(opt.feasible);
  const Routing r = routing_from_dest_flows(g, opt.flow_by_dest);
  const auto sim = simulate(g, r, dm);
  // Cycle cancellation can only lower loads, so u_max <= LP's within tol.
  EXPECT_LE(sim.u_max, opt.u_max * (1.0 + 1e-5));
  EXPECT_NEAR(sim.u_max, opt.u_max, opt.u_max * 1e-3);
  EXPECT_NEAR(sim.delivered, dm.total(), dm.total() * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalRoutingRoundTrip,
                         ::testing::Range(0, 8));

// Ordering property across schemes: optimal <= tuned schemes <= arbitrary.
TEST(SchemeOrdering, OptimalIsLowerBound) {
  const DiGraph g = topo::abilene();
  util::Rng rng(77);
  const DemandMatrix dm =
      traffic::bimodal_matrix(g.num_nodes(), traffic::BimodalParams{}, rng);
  const double u_opt = mcf::solve_optimal(g, dm).u_max;
  for (double gamma : {0.5, 2.0, 8.0}) {
    SoftminOptions options;
    options.gamma = gamma;
    std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);
    const double u =
        simulate(g, softmin_routing(g, weights, options), dm).u_max;
    EXPECT_GE(u, u_opt * (1.0 - 1e-9)) << "gamma " << gamma;
  }
  const double u_sp = simulate(g, shortest_path_routing(g), dm).u_max;
  EXPECT_GE(u_sp, u_opt * (1.0 - 1e-9));
}

// ---------------- disconnected graphs: fast path vs generic ----------------
//
// Regression tests for the prune-mode inconsistency: the downhill fast
// path used to write splitting ratios for every source s != t, including
// sources that cannot reach t, while the generic per-pair path skips
// unreachable pairs — so the two paths produced different Routing
// contents on any disconnected graph.

// Two 2-node strongly-connected components plus an isolated vertex.  In a
// 2-node component every vertex reaching t lies on the (single) s->t
// downhill path, so fast and generic must agree on every single ratio;
// larger components legitimately differ at non-traffic-carrying vertices
// (see fill_destination_ratios), which is why exact comparison uses this
// shape and the richer topology below compares simulated behaviour.
DiGraph two_islands() {
  DiGraph g(5);
  g.add_edge(0, 1, 10.0);  // e0, island A
  g.add_edge(1, 0, 10.0);  // e1
  g.add_edge(2, 3, 10.0);  // e2, island B
  g.add_edge(3, 2, 10.0);  // e3
  return g;                // node 4 is isolated
}

TEST(SoftminRouting, FastPathMatchesGenericOnDisconnectedGraph) {
  const DiGraph g = two_islands();
  const std::vector<double> w{1.0, 2.5, 0.7, 1.3};
  SoftminOptions options;
  options.prune_mode = PruneMode::kDistanceToSink;
  const Routing fast = softmin_routing(g, w, options);
  const Routing ref = softmin_routing_generic(g, w, options);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        EXPECT_NEAR(fast.ratio(s, t, e), ref.ratio(s, t, e), 1e-12)
            << "flow (" << s << "," << t << ") edge " << e;
      }
    }
  }
}

TEST(SoftminRouting, FastPathWritesNothingForUnreachablePairs) {
  const DiGraph g = two_islands();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  const Routing r = softmin_routing(g, w, SoftminOptions{});
  // Cross-island and isolated-vertex flows can carry no traffic; their
  // ratio rows must be untouched everywhere in the graph.
  const std::vector<std::pair<NodeId, NodeId>> unreachable{
      {0, 2}, {0, 3}, {2, 0}, {3, 1}, {0, 4}, {4, 0}, {4, 2}, {2, 4}};
  for (const auto& [s, t] : unreachable) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(r.ratio(s, t, e), 0.0)
          << "flow (" << s << "," << t << ") edge " << e;
    }
  }
  // Within-island flows still route normally.
  EXPECT_NEAR(r.ratio(0, 1, 0), 1.0, 1e-12);
  EXPECT_NEAR(r.ratio(2, 3, 2), 1.0, 1e-12);
}

TEST(SoftminRouting, FastAndGenericSimulateIdenticallyOnDisconnectedDiamonds) {
  // Two disjoint diamonds: richer multipath structure where exact
  // edge-for-edge equality is not guaranteed by design, but the traffic
  // both routings carry must be identical.
  DiGraph g(8);
  const auto add_diamond = [&](NodeId base) {
    g.add_edge(base + 0, base + 1, 10.0);
    g.add_edge(base + 1, base + 3, 10.0);
    g.add_edge(base + 0, base + 2, 10.0);
    g.add_edge(base + 2, base + 3, 10.0);
    g.add_edge(base + 3, base + 0, 10.0);  // return edge: strongly connected
  };
  add_diamond(0);
  add_diamond(4);
  const std::vector<double> w{1.0, 1.0, 1.2, 0.8, 2.0,
                              0.9, 1.1, 1.0, 1.0, 2.0};
  SoftminOptions options;
  options.prune_mode = PruneMode::kDistanceToSink;
  const Routing fast = softmin_routing(g, w, options);
  const Routing ref = softmin_routing_generic(g, w, options);

  DemandMatrix dm(8);
  dm.set(0, 3, 4.0);
  dm.set(1, 2, 1.5);
  dm.set(4, 7, 3.0);
  dm.set(6, 5, 2.0);
  const auto sim_fast = simulate(g, fast, dm);
  const auto sim_ref = simulate(g, ref, dm);
  EXPECT_NEAR(sim_fast.u_max, sim_ref.u_max, 1e-12);
  ASSERT_EQ(sim_fast.link_load.size(), sim_ref.link_load.size());
  for (std::size_t e = 0; e < sim_fast.link_load.size(); ++e) {
    EXPECT_NEAR(sim_fast.link_load[e], sim_ref.link_load[e], 1e-12)
        << "edge " << e;
  }
}

// ---------------- degraded (disconnected) topologies ----------------
//
// Serving keeps translating routings while links and nodes fail, so the
// softmin translation must stay well-formed on graphs where some pairs
// have become unreachable: survivors keep row-stochastic splits, severed
// pairs get all-zero ratios instead of garbage.

// Sum of flow (s,t)'s ratios over v's out-edges.
double out_ratio_sum(const DiGraph& g, const Routing& r, int s, int t,
                     NodeId v) {
  double sum = 0.0;
  for (EdgeId e : g.out_edges(v)) sum += r.ratio(s, t, e);
  return sum;
}

TEST(DegradedTopology, EdgeRemovalZeroesSeveredPairsOnly) {
  // Line 0 -> 1 -> 2 plus a detour 0 -> 2: removing edge 1->2 severs only
  // (1, 2); (0, 2) survives through the detour.
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);                      // e0
  const EdgeId cut = g.add_edge(1, 2, 10.0);   // e1
  g.add_edge(0, 2, 10.0);                      // e2
  const DiGraph degraded = g.without_edge(cut);

  const std::vector<double> w(static_cast<std::size_t>(degraded.num_edges()),
                              1.0);
  const Routing r = softmin_routing(degraded, w);

  // Survivor (0, 2): row-stochastic at the source.
  EXPECT_NEAR(out_ratio_sum(degraded, r, 0, 2, 0), 1.0, 1e-12);
  // Severed (1, 2): every ratio exactly zero.
  for (EdgeId e = 0; e < degraded.num_edges(); ++e) {
    EXPECT_EQ(r.ratio(1, 2, e), 0.0) << "edge " << e;
  }
  // The severed pair must not break simulation of the survivors.
  DemandMatrix dm(3);
  dm.set(0, 2, 5.0);
  EXPECT_NO_THROW(simulate(degraded, r, dm));
}

TEST(DegradedTopology, SoftminOnPartitionedAbileneStaysRowStochastic) {
  // Isolating node 0's out-edges partitions "from 0" traffic away while
  // every other pair keeps a path.
  const DiGraph g = topo::abilene();
  std::vector<bool> remove(static_cast<std::size_t>(g.num_edges()), false);
  for (EdgeId e : g.out_edges(0)) remove[static_cast<std::size_t>(e)] = true;
  const DiGraph degraded = g.without_edges(remove);

  const std::vector<double> w(static_cast<std::size_t>(degraded.num_edges()),
                              1.0);
  const Routing r = softmin_routing(degraded, w);
  const int n = degraded.num_nodes();

  for (int t = 1; t < n; ++t) {
    // Unreachable from 0: all-zero rows everywhere.
    for (EdgeId e = 0; e < degraded.num_edges(); ++e) {
      EXPECT_EQ(r.ratio(0, t, e), 0.0);
    }
    // Still reachable towards 0: the source row sums to one.
    EXPECT_NEAR(out_ratio_sum(degraded, r, t, 0, t), 1.0, 1e-12);
  }
}

TEST(DegradedTopology, NodeRemovalRenumbersAndStillRoutes) {
  const DiGraph g = topo::abilene();
  const DiGraph degraded = g.without_node(3);
  ASSERT_EQ(degraded.num_nodes(), g.num_nodes() - 1);

  const std::vector<double> w(static_cast<std::size_t>(degraded.num_edges()),
                              1.0);
  const Routing r = softmin_routing(degraded, w);
  const int n = degraded.num_nodes();

  // Abilene minus one PoP stays connected; every pair must still carry a
  // row-stochastic split and simulate cleanly under a full mesh.
  DemandMatrix dm(n);
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (s == t) continue;
      EXPECT_NEAR(out_ratio_sum(degraded, r, s, t, s), 1.0, 1e-12)
          << "pair (" << s << "," << t << ")";
      dm.set(s, t, 1.0);
    }
  }
  const auto sim = simulate(degraded, r, dm);
  EXPECT_GT(sim.u_max, 0.0);
}

TEST(DegradedTopology, GenericTranslationSkipsUnreachablePairs) {
  // The per-pair reference path must handle unreachable pairs the same
  // way as the destination-based fast path: skip, not throw.
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);  // nothing re-enters 0, so (1,0), (2,0) severed
  const std::vector<double> w{1.0, 1.0};
  SoftminOptions options;
  options.prune_mode = PruneMode::kFrontierMeet;
  const Routing r = softmin_routing_generic(g, w, options);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(r.ratio(1, 0, e), 0.0);
    EXPECT_EQ(r.ratio(2, 0, e), 0.0);
  }
  EXPECT_NEAR(out_ratio_sum(g, r, 0, 2, 0), 1.0, 1e-12);
}

// ---------------- serving-side validation ----------------

TEST(ValidateForServing, AcceptsValidAndRejectsNaN) {
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);  // e0
  g.add_edge(1, 2, 10.0);  // e1
  const std::vector<double> w{1.0, 1.0};
  Routing r = softmin_routing(g, w);
  DemandMatrix dm(3);
  dm.set(0, 2, 1.0);

  std::string error;
  EXPECT_TRUE(validate_for_serving(g, r, dm, &error)) << error;

  // A NaN splitting ratio slips through simulate()'s conservation check
  // (NaN comparisons are false); validate_for_serving must catch it.
  r.set_ratio(0, 2, 0, std::nan(""));
  EXPECT_FALSE(validate_for_serving(g, r, dm, &error));
  EXPECT_NE(error.find("ratio"), std::string::npos) << error;
}

TEST(ValidateForServing, RejectsForwardingOutOfDestination) {
  DiGraph g(3);
  g.add_edge(0, 1, 10.0);                     // e0
  g.add_edge(1, 2, 10.0);                     // e1
  const EdgeId out = g.add_edge(1, 0, 10.0);  // e2: out of destination 1
  const std::vector<double> w{1.0, 1.0, 1.0};
  Routing r = softmin_routing(g, w);
  DemandMatrix dm(3);
  dm.set(0, 1, 1.0);

  std::string error;
  ASSERT_TRUE(validate_for_serving(g, r, dm, &error)) << error;
  r.set_ratio(0, 1, out, 0.5);  // destination must absorb, not forward
  EXPECT_FALSE(validate_for_serving(g, r, dm, &error));
  EXPECT_NE(error.find("destination"), std::string::npos) << error;
}

TEST(ValidateForServing, IgnoresZeroDemandFlows) {
  DiGraph g(2);
  g.add_edge(0, 1, 10.0);
  Routing r(2, 1);
  r.set_ratio(0, 1, 0, 0.25);  // not row-stochastic, but the flow is idle
  DemandMatrix dm(2);          // all-zero demand
  EXPECT_TRUE(validate_for_serving(g, r, dm, nullptr));
}

// ---------------- inverse-capacity weights ----------------

TEST(InverseCapacityWeights, FavourFatLinks) {
  DiGraph g(2);
  const EdgeId thin = g.add_edge(0, 1, 10.0);
  const EdgeId fat = g.add_edge(0, 1, 40.0);
  const auto w = inverse_capacity_weights(g);
  ASSERT_EQ(w.size(), 2U);
  EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(thin)], 0.1);
  EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(fat)], 0.025);

  // Through softmin the fat parallel link takes the larger share.
  const Routing r = softmin_routing(g, w);
  EXPECT_GT(r.ratio(0, 1, fat), r.ratio(0, 1, thin));
  EXPECT_NEAR(r.ratio(0, 1, fat) + r.ratio(0, 1, thin), 1.0, 1e-12);
}

}  // namespace
}  // namespace gddr::routing
