#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "topo/zoo.hpp"

namespace gddr::graph {
namespace {

DiGraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 with distinct capacities.
  DiGraph g(4, "diamond");
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 3, 10.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 5.0);
  return g;
}

TEST(DiGraph, ConstructionCounts) {
  const DiGraph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.name(), "diamond");
}

TEST(DiGraph, EdgeAccess) {
  const DiGraph g = diamond();
  EXPECT_EQ(g.edge(0).src, 0);
  EXPECT_EQ(g.edge(0).dst, 1);
  EXPECT_DOUBLE_EQ(g.edge(2).capacity, 5.0);
}

TEST(DiGraph, AdjacencyLists) {
  const DiGraph g = diamond();
  EXPECT_EQ(g.out_edges(0).size(), 2U);
  EXPECT_EQ(g.in_edges(3).size(), 2U);
  EXPECT_EQ(g.out_edges(3).size(), 0U);
}

TEST(DiGraph, FindEdge) {
  const DiGraph g = diamond();
  EXPECT_TRUE(g.find_edge(0, 1).has_value());
  EXPECT_FALSE(g.find_edge(1, 0).has_value());
  EXPECT_FALSE(g.find_edge(0, 3).has_value());
}

TEST(DiGraph, SelfLoopRejected) {
  DiGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);
}

TEST(DiGraph, NonPositiveCapacityRejected) {
  DiGraph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(DiGraph, InvalidNodeRejected) {
  DiGraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
}

TEST(DiGraph, AddBidirectionalCreatesBoth) {
  DiGraph g(2);
  g.add_bidirectional(0, 1, 3.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.find_edge(0, 1).has_value());
  EXPECT_TRUE(g.find_edge(1, 0).has_value());
}

TEST(DiGraph, AddNodeGrows) {
  DiGraph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(DiGraph, WithoutEdgeCompacts) {
  const DiGraph g = diamond();
  const DiGraph h = g.without_edge(1);  // removes 1 -> 3
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_FALSE(h.find_edge(1, 3).has_value());
  EXPECT_TRUE(h.find_edge(0, 1).has_value());
}

TEST(DiGraph, WithoutNodeRenumbers) {
  const DiGraph g = diamond();
  const DiGraph h = g.without_node(1);
  EXPECT_EQ(h.num_nodes(), 3);
  // Old node 2 becomes node 1; old node 3 becomes node 2.
  EXPECT_TRUE(h.find_edge(0, 1).has_value());   // was 0 -> 2
  EXPECT_TRUE(h.find_edge(1, 2).has_value());   // was 2 -> 3
  EXPECT_EQ(h.num_edges(), 2);
}

TEST(DiGraph, TotalCapacity) {
  EXPECT_DOUBLE_EQ(diamond().total_capacity(), 30.0);
}

TEST(DiGraph, EqualityStructural) {
  EXPECT_TRUE(diamond() == diamond());
  DiGraph g = diamond();
  g.add_edge(3, 0, 1.0);
  EXPECT_FALSE(g == diamond());
}

TEST(Dijkstra, UnitWeightsHopCount) {
  const DiGraph g = diamond();
  const auto sp = dijkstra(g, 0, unit_weights(g));
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 2.0);
}

TEST(Dijkstra, WeightedChoosesCheaperPath) {
  DiGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<double> w{10.0, 10.0, 1.0, 1.0};
  const auto sp = dijkstra(g, 0, w);
  EXPECT_DOUBLE_EQ(sp.dist[3], 2.0);
  const auto path = extract_path(g, sp, 0, 3);
  ASSERT_EQ(path.size(), 3U);
  EXPECT_EQ(path[1], 2);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  const auto sp = dijkstra(g, 0, unit_weights(g));
  EXPECT_EQ(sp.dist[2], kInfDist);
  EXPECT_TRUE(extract_path(g, sp, 0, 2).empty());
}

TEST(Dijkstra, NegativeWeightRejected) {
  DiGraph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(dijkstra(g, 0, {-1.0}), std::invalid_argument);
}

TEST(Dijkstra, WrongWeightSizeRejected) {
  DiGraph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(dijkstra(g, 0, {1.0, 2.0}), std::invalid_argument);
}

TEST(DijkstraTo, ReverseDistances) {
  const DiGraph g = diamond();
  const auto sp = dijkstra_to(g, 3, unit_weights(g));
  EXPECT_DOUBLE_EQ(sp.dist[3], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 2.0);
}

TEST(DijkstraTo, ParentEdgeLeadsTowardSink) {
  const DiGraph g = diamond();
  const auto sp = dijkstra_to(g, 3, unit_weights(g));
  const EdgeId pe = sp.parent_edge[1];
  EXPECT_EQ(g.edge(pe).src, 1);
  EXPECT_EQ(g.edge(pe).dst, 3);
}

TEST(TopologicalOrder, DagOrdered) {
  const DiGraph g = diamond();
  const std::vector<bool> all(4, true);
  const auto order = topological_order(g, all);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<size_t>((*order)[i])] = i;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(pos[static_cast<size_t>(g.edge(e).src)],
              pos[static_cast<size_t>(g.edge(e).dst)]);
  }
}

TEST(TopologicalOrder, CycleDetected) {
  DiGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  EXPECT_FALSE(topological_order(g, {true, true}).has_value());
  EXPECT_TRUE(has_cycle(g, {true, true}));
}

TEST(TopologicalOrder, MaskBreaksCycle) {
  DiGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  EXPECT_TRUE(topological_order(g, {true, false}).has_value());
  EXPECT_FALSE(has_cycle(g, {true, false}));
}

TEST(StronglyConnected, PathGraphBidirectionalIs) {
  DiGraph g(3);
  g.add_bidirectional(0, 1, 1.0);
  g.add_bidirectional(1, 2, 1.0);
  // Bidirectional path is strongly connected: 2->1->0 exists.
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(StronglyConnected, DirectedChainIsNot) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(StronglyConnected, DirectedCycleIs) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(AllPairs, MatchesSingleSource) {
  const DiGraph g = topo::abilene();
  const auto w = unit_weights(g);
  const auto all = all_pairs_distances(g, w);
  for (NodeId s = 0; s < g.num_nodes(); s += 3) {
    const auto sp = dijkstra(g, s, w);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_DOUBLE_EQ(all[static_cast<size_t>(s)][static_cast<size_t>(t)],
                       sp.dist[static_cast<size_t>(t)]);
    }
  }
}

TEST(ShortestPathDag, DiamondKeepsBothBranches) {
  DiGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto dag = shortest_path_dag_to(g, 3, unit_weights(g));
  EXPECT_EQ(dag[0].size(), 2U);  // both branches are shortest
  EXPECT_EQ(dag[1].size(), 1U);
  EXPECT_EQ(dag[3].size(), 0U);
}

TEST(ShortestPathDag, AsymmetricWeightsKeepOnlyShortest) {
  DiGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<double> w{1.0, 1.0, 2.0, 2.0};
  const auto dag = shortest_path_dag_to(g, 3, w);
  ASSERT_EQ(dag[0].size(), 1U);
  EXPECT_EQ(g.edge(dag[0][0]).dst, 1);
}

TEST(KShortestPaths, FindsDistinctLooplessPaths) {
  const DiGraph g = topo::abilene();
  const auto paths = k_shortest_paths(g, 0, 10, unit_weights(g), 4);
  ASSERT_GE(paths.size(), 2U);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 10);
    std::vector<NodeId> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "path contains a repeated node";
  }
  // Paths must be pairwise distinct.
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j]);
    }
  }
}

TEST(KShortestPaths, SortedByLength) {
  const DiGraph g = topo::abilene();
  const auto w = unit_weights(g);
  const auto paths = k_shortest_paths(g, 0, 7, w, 5);
  for (size_t i = 0; i + 1 < paths.size(); ++i) {
    EXPECT_LE(paths[i].size(), paths[i + 1].size());
  }
}

TEST(KShortestPaths, KZeroEmpty) {
  const DiGraph g = diamond();
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, unit_weights(g), 0).empty());
}

TEST(KShortestPaths, UnreachableEmpty) {
  DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, unit_weights(g), 3).empty());
}

}  // namespace
}  // namespace gddr::graph
