// End-to-end integration tests: the full GDDR stack — scenario generation,
// environment, policies, PPO — run together exactly as the benches use
// them, at reduced scale.
#include <gtest/gtest.h>

#include <set>

#include "core/evaluate.hpp"
#include "core/iterative_env.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "topo/zoo.hpp"

namespace gddr::core {
namespace {

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.sequence_length = 12;
  p.cycle_length = 4;
  p.train_sequences = 2;
  p.test_sequences = 1;
  return p;
}

rl::PpoConfig fast_ppo() {
  rl::PpoConfig cfg;
  cfg.rollout_steps = 64;
  cfg.minibatch_size = 32;
  cfg.epochs = 3;
  cfg.learning_rate = 1e-3;
  cfg.reward_scale = 0.2;
  return cfg;
}

TEST(Integration, MlpPolicyTrainsOnFixedGraph) {
  util::Rng rng(1);
  std::vector<Scenario> scenarios{
      make_scenario(topo::by_name("SmallRing"), tiny_params(), rng)};
  EnvConfig env_cfg;
  env_cfg.memory = 3;
  RoutingEnv env(scenarios, env_cfg, 7);

  const int n = env.current_graph().num_nodes();
  const int obs_dim = env_cfg.memory * n * n;
  util::Rng prng(2);
  MlpPolicyConfig pcfg;
  pcfg.pi_hidden = {64};
  pcfg.vf_hidden = {64};
  MlpPolicy policy(obs_dim, env.current_graph().num_edges(), pcfg, prng);

  rl::PpoTrainer trainer(policy, env, fast_ppo(), 3);
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 8; ++i) {
    const auto stats = trainer.train_iteration();
    if (i == 0) first = stats.mean_episode_reward;
    if (stats.episodes > 0) last = stats.mean_episode_reward;
  }
  EXPECT_LT(first, 0.0);
  EXPECT_LT(last, 0.0);
  // Training must not diverge badly.
  EXPECT_GT(last, first * 2.0);

  const EvalResult eval = evaluate_policy(trainer, env);
  EXPECT_EQ(eval.episodes, 1);
  EXPECT_EQ(eval.steps, 9);
  EXPECT_GE(eval.mean_ratio, 1.0 - 1e-9);
}

TEST(Integration, GnnPolicyTrainsAndTransfers) {
  util::Rng rng(4);
  std::vector<Scenario> train_scenarios{
      make_scenario(topo::by_name("SmallRing"), tiny_params(), rng)};
  EnvConfig env_cfg;
  env_cfg.memory = 3;
  RoutingEnv env(train_scenarios, env_cfg, 9);

  util::Rng prng(5);
  GnnPolicyConfig pcfg;
  pcfg.memory = 3;
  pcfg.latent = 8;
  pcfg.steps = 2;
  pcfg.mlp_hidden = {16};
  GnnPolicy policy(pcfg, prng);
  const std::size_t params_before = policy.num_parameters();

  rl::PpoTrainer trainer(policy, env, fast_ppo(), 11);
  for (int i = 0; i < 4; ++i) trainer.train_iteration();

  const EvalResult on_train_graph = evaluate_policy(trainer, env);
  EXPECT_GE(on_train_graph.mean_ratio, 1.0 - 1e-9);

  // Transfer: the SAME policy object evaluates on a different topology
  // with no retraining and no reconstruction (paper Figure 8 mechanism).
  util::Rng rng2(6);
  std::vector<Scenario> other{
      make_scenario(topo::by_name("JanetLike"), tiny_params(), rng2)};
  RoutingEnv other_env(other, env_cfg, 13);
  const EvalResult transferred = evaluate_policy(trainer, other_env);
  EXPECT_GE(transferred.mean_ratio, 1.0 - 1e-9);
  EXPECT_LT(transferred.mean_ratio, 10.0);
  EXPECT_EQ(policy.num_parameters(), params_before);
}

TEST(Integration, IterativeGnnPolicyTrains) {
  util::Rng rng(7);
  std::vector<Scenario> scenarios{
      make_scenario(topo::by_name("SmallRing"), tiny_params(), rng)};
  IterativeEnvConfig env_cfg;
  env_cfg.memory = 3;
  IterativeRoutingEnv env(scenarios, env_cfg, 17);

  util::Rng prng(8);
  IterativeGnnPolicyConfig pcfg;
  pcfg.memory = 3;
  pcfg.latent = 8;
  pcfg.steps = 2;
  pcfg.mlp_hidden = {16};
  IterativeGnnPolicy policy(pcfg, prng);

  rl::PpoConfig ppo = fast_ppo();
  ppo.rollout_steps = 160;  // several per-DM episodes (16 micro-steps each)
  ppo.gamma = 1.0;
  ppo.gae_lambda = 1.0;
  rl::PpoTrainer trainer(policy, env, ppo, 19);
  for (int i = 0; i < 3; ++i) {
    const auto stats = trainer.train_iteration();
    EXPECT_EQ(stats.steps, 160);
  }
  const EvalResult eval = evaluate_policy(trainer, env);
  EXPECT_EQ(eval.episodes, 9);  // one per-DM episode each
  EXPECT_EQ(eval.steps, 9);     // one ratio per DM
  EXPECT_GE(eval.mean_ratio, 1.0 - 1e-9);
}

TEST(Integration, MultiTopologyTrainingMixesGraphs) {
  util::Rng rng(9);
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      make_scenario(topo::by_name("SmallRing"), tiny_params(), rng));
  scenarios.push_back(
      make_scenario(topo::by_name("MetroLike"), tiny_params(), rng));
  EnvConfig env_cfg;
  env_cfg.memory = 3;
  RoutingEnv env(scenarios, env_cfg, 21);

  // Across resets in train mode both graphs must appear.
  std::set<int> seen;
  for (int i = 0; i < 20; ++i) {
    env.reset();
    seen.insert(env.current_graph().num_nodes());
  }
  EXPECT_EQ(seen.size(), 2U);

  // A GNN policy trains across the mixture without reconstruction.
  util::Rng prng(10);
  GnnPolicyConfig pcfg;
  pcfg.memory = 3;
  pcfg.latent = 8;
  pcfg.steps = 2;
  pcfg.mlp_hidden = {16};
  GnnPolicy policy(pcfg, prng);
  rl::PpoTrainer trainer(policy, env, fast_ppo(), 23);
  const auto stats = trainer.train_iteration();
  EXPECT_EQ(stats.steps, 64);

  const EvalResult eval = evaluate_policy(trainer, env);
  EXPECT_EQ(eval.episodes, 2);  // one per scenario test sequence
  EXPECT_EQ(eval.steps, 18);
}

TEST(Integration, HandCraftedWeightsBeatShortestPathOnBottleneck) {
  // Expressiveness check on an adversarial topology: a thin direct link
  // next to a fat detour.  Shortest-path routing piles everything onto the
  // thin link; a weight assignment that penalises it diverts the traffic.
  // (PPO cannot *learn* this particular shape — the reward is flat in
  // weight space until the detour enters the routing DAG, a limitation of
  // softmin translation the paper also observes on some graphs — so this
  // test drives the environment with explicit actions.)
  graph::DiGraph g(4, "bottleneck");
  g.add_bidirectional(0, 3, 100.0);   // thin direct link (e0, e1)
  g.add_bidirectional(0, 1, 5000.0);  // fat two-hop path
  g.add_bidirectional(1, 3, 5000.0);
  g.add_bidirectional(1, 2, 5000.0);
  g.add_bidirectional(2, 3, 5000.0);

  util::Rng rng(11);
  ScenarioParams params = tiny_params();
  params.demand.mouse_mean = 150.0;
  params.demand.elephant_mean = 300.0;
  Scenario scenario = make_scenario(std::move(g), params, rng);

  mcf::OptimalCache cache;
  const EvalResult sp = evaluate_shortest_path({scenario}, 3, cache);
  EXPECT_GT(sp.mean_ratio, 1.5);

  EnvConfig env_cfg;
  env_cfg.memory = 3;
  RoutingEnv env({scenario}, env_cfg, 29);
  env.set_mode(RoutingEnv::Mode::kTest);
  env.reset();
  std::vector<double> action(static_cast<size_t>(env.action_dim()), -1.0);
  action[0] = 1.0;  // push the thin link's weight to the maximum
  action[1] = 1.0;
  double ratio_sum = 0.0;
  int count = 0;
  for (;;) {
    const auto result = env.step(action);
    ratio_sum += -result.reward;
    ++count;
    if (result.done) break;
  }
  EXPECT_LT(ratio_sum / count, sp.mean_ratio);
}

TEST(Integration, PpoLearnsCapacityAwareSplitOnDiamond) {
  // Smooth learnable scenario: two 2-hop branches whose capacities differ
  // 4x.  The softmin split shifts continuously with the weight difference,
  // so bandit-credit PPO (gamma = 0; actions do not influence transitions)
  // must improve markedly within a few thousand steps.
  graph::DiGraph g(4, "asym-diamond");
  g.add_bidirectional(0, 1, 1000.0);
  g.add_bidirectional(1, 3, 1000.0);
  g.add_bidirectional(0, 2, 4000.0);
  g.add_bidirectional(2, 3, 4000.0);

  util::Rng rng(11);
  ScenarioParams params = tiny_params();
  params.demand.mouse_mean = 300.0;
  params.demand.elephant_mean = 900.0;
  Scenario scenario = make_scenario(std::move(g), params, rng);

  EnvConfig env_cfg;
  env_cfg.memory = 3;
  RoutingEnv env({scenario}, env_cfg, 29);
  util::Rng prng(12);
  GnnPolicyConfig pcfg;
  pcfg.memory = 3;
  pcfg.latent = 8;
  pcfg.steps = 2;
  pcfg.mlp_hidden = {16};
  pcfg.init_log_std = -1.2;
  GnnPolicy policy(pcfg, prng);
  rl::PpoConfig ppo;
  ppo.rollout_steps = 128;
  ppo.minibatch_size = 32;
  ppo.epochs = 8;
  ppo.learning_rate = 1e-2;
  ppo.entropy_coef = 0.0;
  ppo.gamma = 0.0;
  ppo.gae_lambda = 0.0;
  rl::PpoTrainer trainer(policy, env, ppo, 31);
  const EvalResult before = evaluate_policy(trainer, env);
  for (int i = 0; i < 25; ++i) trainer.train_iteration();
  const EvalResult after = evaluate_policy(trainer, env);
  EXPECT_LT(after.mean_ratio, before.mean_ratio - 0.1);
}

}  // namespace
}  // namespace gddr::core
