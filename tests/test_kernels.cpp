// Tests for the optimized kernel substrate (nn/kernels.hpp): exact
// equivalence of the tiled/packed matmul family against the naive
// reference over exhaustive small shapes, bit-identical results across
// thread-pool worker counts, segment-sum plans (empty segments, unused
// trailing segments, validation), finite-difference gradients through the
// tiled path, and the TensorArena reuse contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "nn/kernels.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/tape.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gddr::nn {
namespace {

using Var = Tape::Var;

std::vector<float> random_data(std::size_t n, util::Rng& rng,
                               bool with_zeros = true) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    // Sprinkle exact zeros so the reference's zero-skip path is hit.
    if (with_zeros && rng.uniform(0.0, 1.0) < 0.15) v[i] = 0.0F;
  }
  return v;
}

// ---------------- matmul: exact equivalence vs reference ----------------

TEST(Kernels, MatmulFamilyMatchesReferenceExhaustiveSmallShapes) {
  util::Rng rng(7);
  for (int m = 1; m <= 5; ++m) {
    for (int k = 1; k <= 5; ++k) {
      for (int n = 1; n <= 5; ++n) {
        const auto a = random_data(static_cast<std::size_t>(m) * k, rng);
        const auto b = random_data(static_cast<std::size_t>(k) * n, rng);
        const auto g = random_data(static_cast<std::size_t>(m) * n, rng);

        std::vector<float> c_ref(static_cast<std::size_t>(m) * n);
        std::vector<float> c_opt(c_ref);
        kernels::ref::matmul_nn(m, k, n, a.data(), b.data(), c_ref.data());
        kernels::matmul_nn(m, k, n, a.data(), b.data(), c_opt.data());
        for (std::size_t i = 0; i < c_ref.size(); ++i) {
          ASSERT_EQ(c_ref[i], c_opt[i]) << "nn " << m << "x" << k << "x" << n;
        }

        std::vector<float> gx_ref(static_cast<std::size_t>(m) * k, 0.5F);
        std::vector<float> gx_opt(gx_ref);
        kernels::ref::matmul_nt_acc(m, n, k, g.data(), b.data(),
                                    gx_ref.data());
        kernels::matmul_nt_acc(m, n, k, g.data(), b.data(), gx_opt.data());
        for (std::size_t i = 0; i < gx_ref.size(); ++i) {
          ASSERT_EQ(gx_ref[i], gx_opt[i])
              << "nt " << m << "x" << k << "x" << n;
        }

        std::vector<float> gw_ref(static_cast<std::size_t>(k) * n, -0.25F);
        std::vector<float> gw_opt(gw_ref);
        kernels::ref::matmul_tn_acc(m, k, n, a.data(), g.data(),
                                    gw_ref.data());
        kernels::matmul_tn_acc(m, k, n, a.data(), g.data(), gw_opt.data());
        for (std::size_t i = 0; i < gw_ref.size(); ++i) {
          ASSERT_EQ(gw_ref[i], gw_opt[i])
              << "tn " << m << "x" << k << "x" << n;
        }
      }
    }
  }
}

TEST(Kernels, MatmulMatchesReferencePastBlockingBoundaries) {
  // Shapes straddling the micro-kernel's unroll/panel widths: tails in
  // every dimension, plus sizes past the parallel task granularity.
  const int shapes[][3] = {{8, 8, 8},   {9, 17, 7},  {16, 9, 8},
                           {17, 16, 9}, {33, 31, 5}, {40, 24, 12}};
  util::Rng rng(11);
  for (const auto& s : shapes) {
    const int m = s[0];
    const int k = s[1];
    const int n = s[2];
    const auto a = random_data(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_data(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> c_ref(static_cast<std::size_t>(m) * n);
    std::vector<float> c_opt(c_ref);
    kernels::ref::matmul_nn(m, k, n, a.data(), b.data(), c_ref.data());
    kernels::matmul_nn(m, k, n, a.data(), b.data(), c_opt.data());
    for (std::size_t i = 0; i < c_ref.size(); ++i) {
      ASSERT_EQ(c_ref[i], c_opt[i]) << m << "x" << k << "x" << n;
    }
  }
}

TEST(Kernels, MatmulDegenerateDimensions) {
  // k == 0 must produce zeros (empty sum), not garbage.
  std::vector<float> c(6, 99.0F);
  kernels::matmul_nn(2, 0, 3, nullptr, nullptr, c.data());
  for (float v : c) EXPECT_EQ(v, 0.0F);
  // m == 0 / n == 0 are no-ops.
  kernels::matmul_nn(0, 3, 3, nullptr, nullptr, nullptr);
  kernels::matmul_nt_acc(0, 3, 3, nullptr, nullptr, nullptr);
  kernels::matmul_tn_acc(3, 0, 3, nullptr, nullptr, nullptr);
}

TEST(Kernels, MatmulBitIdenticalAcrossWorkerCounts) {
  // 64x64x64 = 2^18 flops with 64 rows: crosses both parallel gates
  // (kParallelMinFlops and kRowsPerTask), so pools of 2 and 4 really do
  // shard — and must still reproduce the serial bytes exactly.
  const int m = 64;
  const int k = 64;
  const int n = 64;
  ASSERT_GE(static_cast<std::size_t>(m) * k * n, kernels::kParallelMinFlops);
  ASSERT_GT(m, kernels::kRowsPerTask);
  util::Rng rng(13);
  const auto a = random_data(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_data(static_cast<std::size_t>(k) * n, rng);
  const auto g = random_data(static_cast<std::size_t>(m) * n, rng);

  std::vector<float> c1(static_cast<std::size_t>(m) * n);
  std::vector<float> gx1(static_cast<std::size_t>(m) * k, 0.0F);
  std::vector<float> gw1(static_cast<std::size_t>(k) * n, 0.0F);
  kernels::matmul_nn(m, k, n, a.data(), b.data(), c1.data(), nullptr);
  kernels::matmul_nt_acc(m, n, k, g.data(), b.data(), gx1.data(), nullptr);
  kernels::matmul_tn_acc(m, k, n, a.data(), g.data(), gw1.data(), nullptr);

  for (std::size_t workers : {1U, 2U, 4U}) {
    util::ThreadPool pool(workers);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    std::vector<float> gx(static_cast<std::size_t>(m) * k, 0.0F);
    std::vector<float> gw(static_cast<std::size_t>(k) * n, 0.0F);
    kernels::matmul_nn(m, k, n, a.data(), b.data(), c.data(), &pool);
    kernels::matmul_nt_acc(m, n, k, g.data(), b.data(), gx.data(), &pool);
    kernels::matmul_tn_acc(m, k, n, a.data(), g.data(), gw.data(), &pool);
    EXPECT_EQ(0, std::memcmp(c1.data(), c.data(), c.size() * sizeof(float)))
        << workers << " workers";
    EXPECT_EQ(0,
              std::memcmp(gx1.data(), gx.data(), gx.size() * sizeof(float)))
        << workers << " workers";
    EXPECT_EQ(0,
              std::memcmp(gw1.data(), gw.data(), gw.size() * sizeof(float)))
        << workers << " workers";
  }
}

// ---------------- fused bias + activation ----------------

TEST(Kernels, BiasActMatchesUnfusedComposition) {
  util::Rng rng(17);
  const int rows = 5;
  const int cols = 7;
  const auto x = random_data(static_cast<std::size_t>(rows) * cols, rng);
  const auto bias = random_data(cols, rng);
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kTanh}) {
    std::vector<float> y(x.size());
    kernels::bias_act(rows, cols, x.data(), bias.data(), y.data(), act);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const float pre = x[static_cast<std::size_t>(r) * cols + c] + bias[c];
        float want = pre;
        if (act == Activation::kRelu) want = pre > 0.0F ? pre : 0.0F;
        if (act == Activation::kTanh) want = std::tanh(pre);
        EXPECT_EQ(want, y[static_cast<std::size_t>(r) * cols + c]);
      }
    }
    // In-place operation is part of the contract (tape fuses in place).
    std::vector<float> inplace(x);
    kernels::bias_act(rows, cols, inplace.data(), bias.data(),
                      inplace.data(), act);
    EXPECT_EQ(0, std::memcmp(y.data(), inplace.data(),
                             y.size() * sizeof(float)));
  }
}

// ---------------- segment sum ----------------

TEST(Kernels, SegmentPlanValidatesIds) {
  EXPECT_THROW(kernels::build_segment_plan({0, 3}, 3),
               std::invalid_argument);
  EXPECT_THROW(kernels::build_segment_plan({-1}, 3), std::invalid_argument);
  const auto plan = kernels::build_segment_plan({}, 4);
  EXPECT_EQ(plan.num_rows(), 0);
  EXPECT_EQ(plan.num_segments, 4);
}

TEST(Kernels, SegmentSumMatchesNaiveScanWithEmptyAndUnusedSegments) {
  // Segment 1 is empty; segments 5..7 are past the max used id.  Both
  // must come back as exact zero rows.
  const std::vector<int> ids = {4, 0, 2, 0, 4, 2, 2};
  const int num_segments = 8;
  const int cols = 3;
  util::Rng rng(19);
  const auto in =
      random_data(static_cast<std::size_t>(ids.size()) * cols, rng);

  std::vector<float> naive(static_cast<std::size_t>(num_segments) * cols,
                           0.0F);
  for (std::size_t r = 0; r < ids.size(); ++r) {
    for (int c = 0; c < cols; ++c) {
      naive[static_cast<std::size_t>(ids[r]) * cols + c] +=
          in[r * cols + c];
    }
  }

  const auto plan = kernels::build_segment_plan(ids, num_segments);
  std::vector<float> out(naive.size(), 42.0F);  // must be overwritten
  kernels::segment_sum(plan, cols, in.data(), out.data());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    ASSERT_EQ(naive[i], out[i]) << "element " << i;
  }
  for (int c = 0; c < cols; ++c) {
    EXPECT_EQ(out[static_cast<std::size_t>(1) * cols + c], 0.0F);
    EXPECT_EQ(out[static_cast<std::size_t>(7) * cols + c], 0.0F);
  }
}

TEST(Kernels, SegmentSumGradScattersBySegment) {
  const std::vector<int> ids = {2, 0, 2, 1};
  const int cols = 2;
  const auto plan = kernels::build_segment_plan(ids, 3);
  const std::vector<float> g = {10, 11, 20, 21, 30, 31};  // 3 x 2
  std::vector<float> gin(static_cast<std::size_t>(ids.size()) * cols, 1.0F);
  kernels::segment_sum_grad(plan, cols, g.data(), gin.data());
  const std::vector<float> want = {31, 32, 11, 12, 31, 32, 21, 22};
  EXPECT_EQ(gin, want);
}

TEST(Kernels, SegmentPlanIsReusableAcrossInputs) {
  const std::vector<int> ids = {1, 0, 1, 1, 0};
  const int cols = 4;
  const auto plan = kernels::build_segment_plan(ids, 2);
  util::Rng rng(23);
  for (int trial = 0; trial < 3; ++trial) {
    const auto in =
        random_data(static_cast<std::size_t>(ids.size()) * cols, rng);
    std::vector<float> naive(2 * cols, 0.0F);
    for (std::size_t r = 0; r < ids.size(); ++r) {
      for (int c = 0; c < cols; ++c) {
        naive[static_cast<std::size_t>(ids[r]) * cols + c] +=
            in[r * cols + c];
      }
    }
    std::vector<float> out(naive.size());
    kernels::segment_sum(plan, cols, in.data(), out.data());
    for (std::size_t i = 0; i < naive.size(); ++i) {
      ASSERT_EQ(naive[i], out[i]);
    }
  }
}

// ---------------- gradients through the tiled path ----------------

Tensor random_tensor(int rows, int cols, util::Rng& rng) {
  Tensor t(rows, cols);
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

// Finite-difference check mirroring test_nn's grad_check, kept local so
// this suite stays self-contained.
void grad_check(Parameter& param,
                const std::function<Var(Tape&, Var)>& body,
                double tol = 3e-2) {
  param.zero_grad();
  {
    Tape tape;
    tape.backward(body(tape, tape.leaf(param)));
  }
  const Tensor analytic = param.grad;
  const float eps = 1e-2F;
  for (int r = 0; r < param.value.rows(); ++r) {
    for (int c = 0; c < param.value.cols(); ++c) {
      const float saved = param.value.at(r, c);
      param.value.at(r, c) = saved + eps;
      double up;
      {
        Tape tape;
        up = tape.value(body(tape, tape.leaf(param))).at(0, 0);
      }
      param.value.at(r, c) = saved - eps;
      double down;
      {
        Tape tape;
        down = tape.value(body(tape, tape.leaf(param))).at(0, 0);
      }
      param.value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double a = analytic.at(r, c);
      ASSERT_NEAR(a, numeric, tol * std::max(1.0, std::abs(numeric)))
          << "element (" << r << "," << c << ")";
    }
  }
}

TEST(KernelsGradCheck, MatmulThroughBlockedShapes) {
  // 12x9 * 9x10: k and n both leave unroll/panel tails, so the NT/TN
  // backward kernels run their edge paths under the check.
  util::Rng rng(29);
  Parameter left(random_tensor(12, 9, rng));
  const Tensor right_t = random_tensor(9, 10, rng);
  grad_check(left, [&](Tape& t, Var x) {
    return t.mean_all(t.matmul(x, t.constant(right_t)));
  });
  Parameter right(random_tensor(9, 10, rng));
  const Tensor left_t = random_tensor(12, 9, rng);
  grad_check(right, [&](Tape& t, Var x) {
    return t.mean_all(t.matmul(t.constant(left_t), x));
  });
}

TEST(KernelsGradCheck, FusedLinearAllActivations) {
  util::Rng rng(31);
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kTanh}) {
    Parameter w(random_tensor(6, 5, rng));
    const Tensor x = random_tensor(4, 6, rng);
    const Tensor b = random_tensor(1, 5, rng);
    grad_check(w, [&](Tape& t, Var wv) {
      return t.mean_all(
          t.linear(t.constant(x), wv, t.constant(b), act));
    });
    Parameter bias(random_tensor(1, 5, rng));
    const Tensor w_t = random_tensor(6, 5, rng);
    grad_check(bias, [&](Tape& t, Var bv) {
      return t.mean_all(t.linear(t.constant(x), t.constant(w_t), bv, act));
    });
  }
}

TEST(KernelsGradCheck, FusedLinearMatchesUnfusedComposition) {
  // Same forward values and the same input gradient as the unfused
  // matmul -> add_bias -> activation chain.
  util::Rng rng(37);
  const Tensor x = random_tensor(3, 4, rng);
  const Tensor w = random_tensor(4, 5, rng);
  const Tensor b = random_tensor(1, 5, rng);
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kTanh}) {
    Parameter px_fused(x);
    Parameter px_unfused(x);
    Tensor fused_value;
    Tensor unfused_value;
    {
      Tape tape;
      const Var y = tape.linear(tape.leaf(px_fused), tape.constant(w),
                                tape.constant(b), act);
      fused_value = tape.value(y);
      tape.backward(tape.mean_all(y));
    }
    {
      Tape tape;
      Var y = tape.add_bias(
          tape.matmul(tape.leaf(px_unfused), tape.constant(w)),
          tape.constant(b));
      if (act == Activation::kRelu) y = tape.relu(y);
      if (act == Activation::kTanh) y = tape.tanh(y);
      unfused_value = tape.value(y);
      tape.backward(tape.mean_all(y));
    }
    ASSERT_EQ(fused_value.rows(), unfused_value.rows());
    ASSERT_EQ(fused_value.cols(), unfused_value.cols());
    for (int r = 0; r < fused_value.rows(); ++r) {
      for (int c = 0; c < fused_value.cols(); ++c) {
        EXPECT_EQ(fused_value.at(r, c), unfused_value.at(r, c));
      }
    }
    for (int r = 0; r < x.rows(); ++r) {
      for (int c = 0; c < x.cols(); ++c) {
        EXPECT_NEAR(px_fused.grad.at(r, c), px_unfused.grad.at(r, c), 1e-6)
            << "act " << static_cast<int>(act);
      }
    }
  }
}

TEST(KernelsGradCheck, TapeMatmulBitIdenticalAcrossWorkerCounts) {
  // End-to-end through the tape: value and parameter gradient of a
  // pool-sharded matmul must not depend on the worker count.
  util::Rng rng(41);
  const Tensor a = random_tensor(64, 64, rng);
  const Tensor b = random_tensor(64, 64, rng);
  Tensor base_value;
  Tensor base_grad;
  for (std::size_t workers : {1U, 2U, 4U}) {
    util::ThreadPool pool(workers);
    Parameter pa(a);
    Tape tape;
    tape.set_thread_pool(&pool);
    const Var y = tape.matmul(tape.leaf(pa), tape.constant(b));
    const Tensor value = tape.value(y);
    tape.backward(tape.mean_all(y));
    if (workers == 1) {
      base_value = value;
      base_grad = pa.grad;
      continue;
    }
    EXPECT_EQ(0, std::memcmp(base_value.data().data(), value.data().data(),
                             value.data().size() * sizeof(float)))
        << workers << " workers";
    EXPECT_EQ(0,
              std::memcmp(base_grad.data().data(), pa.grad.data().data(),
                          pa.grad.data().size() * sizeof(float)))
        << workers << " workers";
  }
}

// ---------------- TensorArena ----------------

TEST(TensorArena, ReusesReleasedBuffers) {
  kernels::TensorArena arena;
  Tensor t = arena.acquire(16, 16);  // 256 floats
  EXPECT_EQ(arena.miss_count(), 1U);
  const std::size_t bytes = arena.bytes_allocated();
  EXPECT_GE(bytes, 256 * sizeof(float));
  arena.release(std::move(t));
  Tensor u = arena.acquire(16, 16);
  EXPECT_EQ(arena.reuse_count(), 1U);
  EXPECT_EQ(arena.miss_count(), 1U);
  EXPECT_EQ(arena.bytes_allocated(), bytes);  // no new heap storage
  // Reused buffers come back zero-filled.
  for (float v : u.data()) EXPECT_EQ(v, 0.0F);
}

TEST(TensorArena, ServesSmallerShapesFromLargerClasses) {
  kernels::TensorArena arena;
  Tensor big = arena.acquire(32, 32);  // 1024 floats -> class 10
  arena.release(std::move(big));
  // 600 floats needs class 10 (ceil log2), which the released buffer
  // serves even though the shape differs.
  Tensor t = arena.acquire(20, 30);
  EXPECT_EQ(arena.reuse_count(), 1U);
  EXPECT_EQ(t.rows(), 20);
  EXPECT_EQ(t.cols(), 30);
}

TEST(TensorArena, AcquireCopyMatchesSource) {
  kernels::TensorArena arena;
  util::Rng rng(43);
  const Tensor src = random_tensor(9, 11, rng);
  const Tensor copy = arena.acquire_copy(src);
  ASSERT_EQ(copy.rows(), src.rows());
  ASSERT_EQ(copy.cols(), src.cols());
  EXPECT_EQ(0, std::memcmp(src.data().data(), copy.data().data(),
                           src.data().size() * sizeof(float)));
}

TEST(TensorArena, TapeReachesSteadyStateWithZeroAllocations) {
  // An MLP forward+backward loop over a long-lived tape: after one
  // warm-up pass populates the arena, further iterations must perform no
  // heap allocation (miss count flat) while still producing identical
  // gradients every time.
  util::Rng rng(47);
  MlpConfig cfg;
  cfg.hidden = {16, 16};
  Mlp mlp(10, 4, cfg, rng);
  const auto params = mlp.parameters();
  const Tensor x = random_tensor(6, 10, rng);

  Tape tape;
  Tensor first_grad;
  std::uint64_t misses_after_warmup = 0;
  for (int iter = 0; iter < 5; ++iter) {
    tape.reset();
    const Var y = mlp.forward(tape, tape.constant(x));
    zero_grads(params);
    tape.backward(tape.mean_all(tape.square(y)));
    if (iter == 0) {
      first_grad = params.front()->grad;
      continue;
    }
    if (iter == 1) {
      misses_after_warmup = tape.arena_misses();
      continue;
    }
    EXPECT_EQ(tape.arena_misses(), misses_after_warmup)
        << "iteration " << iter << " allocated fresh buffers";
    EXPECT_GT(tape.arena_reuse(), 0U);
    EXPECT_EQ(0, std::memcmp(first_grad.data().data(),
                             params.front()->grad.data().data(),
                             first_grad.data().size() * sizeof(float)))
        << "iteration " << iter << " diverged";
  }
}

}  // namespace
}  // namespace gddr::nn
