// Serving-robustness tests: circuit breaker state machine (RAII probe
// tokens, timeout unwedging), deadline budget checkpoints, inbound-demand
// sanitisation (mutually exclusive repair buckets), the thread-safe
// per-topology cache (entries pinned across eviction), the RobustRouter
// degradation ladder, and the concurrent batched serving engine.
//
// Time-dependent breaker tests replay explicit steady_clock schedules —
// never sleeping — so they are exact and fast.  Concurrency tests (cache
// churn, shared breaker, engine end-to-end) are written for the TSan CI
// leg: they assert functional results here and rely on the sanitizer for
// race detection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "obs/metrics.hpp"
#include "routing/routing.hpp"
#include "serve/breaker.hpp"
#include "serve/deadline.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "serve/sanitize.hpp"
#include "serve/topo_cache.hpp"
#include "topo/zoo.hpp"
#include "traffic/demand.hpp"
#include "util/fault.hpp"
#include "util/mpmc_queue.hpp"
#include "util/rng.hpp"

namespace gddr {
namespace {

using serve::BreakerState;
using serve::CircuitBreaker;
using serve::CircuitBreakerConfig;
using serve::DeadlineBudget;
using serve::Engine;
using serve::EngineConfig;
using serve::FailureCause;
using serve::RobustRouter;
using serve::RouteRequest;
using serve::RouterConfig;
using serve::RouterStats;
using serve::Rung;
using serve::ServeOutcome;
using serve::ShedPolicy;
using std::chrono::microseconds;

using Clock = std::chrono::steady_clock;

// Every test disarms on exit so an assertion failure cannot leak an armed
// fault schedule into the next test.
struct FaultGuard {
  FaultGuard() { util::FaultInjector::instance().disarm(); }
  ~FaultGuard() { util::FaultInjector::instance().disarm(); }
};

// Sleep-free wait for wall time to pass a deadline (tests may not call
// std::this_thread::sleep_for; see tools/lint.py).
void spin_until(Clock::time_point t) {
  while (Clock::now() < t) {
  }
}

// ---------------- CircuitBreaker ----------------

TEST(CircuitBreaker, ClosedAdmitsAndSuccessResetsFailures) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.admit(t0).fail(t0);
  breaker.admit(t0).fail(t0);
  EXPECT_EQ(breaker.stats().consecutive_failures, 2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.admit(t0).succeed(t0);
  EXPECT_EQ(breaker.stats().consecutive_failures, 0);
  // A success resets the streak: two more failures do not trip.
  breaker.admit(t0).fail(t0);
  breaker.admit(t0).fail(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0);
}

TEST(CircuitBreaker, TripsAfterThresholdAndBlocksUntilBackoff) {
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.initial_backoff = microseconds(100);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.admit(t0).fail(t0);
  breaker.admit(t0).fail(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1);
  // Blocked while the backoff is running (a disengaged token carries no
  // verdict obligation).
  EXPECT_FALSE(breaker.admit(t0 + microseconds(50)));
  EXPECT_EQ(breaker.stats().probes, 0);
}

TEST(CircuitBreaker, HalfOpenAdmitsOneProbeAndRecovers) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.admit(t0).fail(t0);  // trips (threshold 1)
  const auto probe_time = t0 + microseconds(100);
  CircuitBreaker::Probe probe = breaker.admit(probe_time);
  EXPECT_TRUE(static_cast<bool>(probe));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stats().probes, 1);
  // Only one probe may be in flight.
  EXPECT_FALSE(breaker.admit(probe_time));
  EXPECT_EQ(breaker.stats().probes, 1);

  probe.succeed(probe_time);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().recoveries, 1);
  breaker.admit(probe_time).succeed(probe_time);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, FailedProbeGrowsBackoffUpToMax) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  config.max_backoff = microseconds(300);
  config.backoff_multiplier = 2.0;
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.admit(t0).fail(t0);  // open until t0+100
  auto now = t0 + microseconds(100);
  breaker.admit(now).fail(now);  // probe 1 fails: backoff -> 200
  EXPECT_EQ(breaker.stats().reopens, 1);
  EXPECT_FALSE(breaker.admit(now + microseconds(199)));
  now += microseconds(200);
  breaker.admit(now).fail(now);  // probe 2: backoff 400 clamped to 300
  EXPECT_FALSE(breaker.admit(now + microseconds(299)));
  now += microseconds(300);
  // Recovery resets the backoff to its initial value.
  breaker.admit(now).succeed(now);
  breaker.admit(now).fail(now);  // trips again
  CircuitBreaker::Probe probe = breaker.admit(now + microseconds(100));
  EXPECT_TRUE(static_cast<bool>(probe));
  probe.succeed(now + microseconds(100));
}

// Regression (wedged breaker): before the RAII token, a probe whose
// request died between admission and verdict left the breaker half-open
// forever — every later admission saw "probe in flight" and was denied.
// The token's destructor now records the failure.
TEST(CircuitBreaker, AbandonedProbeRecordsFailureInsteadOfWedging) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  config.backoff_multiplier = 2.0;
  config.probe_timeout = microseconds(1'000'000);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.admit(t0).fail(t0);  // open until t0+100
  {
    CircuitBreaker::Probe probe = breaker.admit(t0 + microseconds(100));
    EXPECT_TRUE(static_cast<bool>(probe));
    // The request dies here: no verdict is ever reported.
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().reopens, 1);
  // Not wedged: the next backoff window admits a fresh probe.
  EXPECT_FALSE(breaker.admit(t0 + microseconds(250)));  // backoff grew to 200
  CircuitBreaker::Probe retry = breaker.admit(t0 + microseconds(300));
  EXPECT_TRUE(static_cast<bool>(retry));
  retry.succeed(t0 + microseconds(300));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// Regression (wedged breaker, second belt): a probe token that is still
// alive but never reports — e.g. its worker is stuck — is presumed dead
// after probe_timeout, and its eventual verdict is discarded as stale.
TEST(CircuitBreaker, ProbeTimeoutUnwedgesLostProbe) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  config.backoff_multiplier = 2.0;
  config.probe_timeout = microseconds(1000);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.admit(t0).fail(t0);  // open until t0+100
  CircuitBreaker::Probe lost = breaker.admit(t0 + microseconds(100));
  EXPECT_TRUE(static_cast<bool>(lost));
  // Within the timeout the in-flight probe still blocks admissions.
  EXPECT_FALSE(breaker.admit(t0 + microseconds(500)));
  EXPECT_EQ(breaker.stats().probe_timeouts, 0);

  // Past the deadline: the probe is presumed dead, the breaker re-opens
  // with a grown backoff instead of staying wedged.
  EXPECT_FALSE(breaker.admit(t0 + microseconds(1100)));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().probe_timeouts, 1);

  // A fresh probe is admitted once the new backoff (200us) elapses...
  CircuitBreaker::Probe retry = breaker.admit(t0 + microseconds(1300));
  EXPECT_TRUE(static_cast<bool>(retry));
  // ...and the lost probe's late verdict is stale: it must not close (or
  // otherwise flip) the breaker out from under the live probe.
  lost.succeed(t0 + microseconds(1301));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stats().recoveries, 0);
  retry.succeed(t0 + microseconds(1302));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().recoveries, 1);
}

TEST(CircuitBreaker, PreTripVerdictIsDiscardedAsStale) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  // Two requests admitted while closed; the second one's failure trips
  // the breaker while the first is still in flight.
  CircuitBreaker::Probe first = breaker.admit(t0);
  breaker.admit(t0).fail(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // The straggler's success is from a dead era: the breaker stays open.
  first.succeed(t0 + microseconds(10));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, RejectsBadConfiguration) {
  CircuitBreakerConfig bad_threshold;
  bad_threshold.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker{bad_threshold}, std::invalid_argument);

  CircuitBreakerConfig bad_backoff;
  bad_backoff.initial_backoff = microseconds(0);
  EXPECT_THROW(CircuitBreaker{bad_backoff}, std::invalid_argument);

  CircuitBreakerConfig inverted;
  inverted.initial_backoff = microseconds(1000);
  inverted.max_backoff = microseconds(100);
  EXPECT_THROW(CircuitBreaker{inverted}, std::invalid_argument);

  CircuitBreakerConfig shrinking;
  shrinking.backoff_multiplier = 0.5;
  EXPECT_THROW(CircuitBreaker{shrinking}, std::invalid_argument);

  CircuitBreakerConfig dead_probe;
  dead_probe.probe_timeout = microseconds(0);
  EXPECT_THROW(CircuitBreaker{dead_probe}, std::invalid_argument);
}

TEST(CircuitBreaker, ConcurrentVerdictsKeepStateConsistent) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.initial_backoff = microseconds(1);
  CircuitBreaker breaker(config);

  // 8 threads hammer admit/verdict with a mixed success/failure pattern;
  // TSan checks the synchronisation, the assertions check the state
  // machine never leaks out of its three states.
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&breaker, w] {
      for (int i = 0; i < 200; ++i) {
        const auto now = Clock::now();
        CircuitBreaker::Probe probe = breaker.admit(now);
        if (!probe) continue;
        if ((w + i) % 3 == 0) {
          probe.fail(now);
        } else {
          probe.succeed(now);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const BreakerState state = breaker.state();
  EXPECT_TRUE(state == BreakerState::kClosed || state == BreakerState::kOpen ||
              state == BreakerState::kHalfOpen);
  const CircuitBreaker::Stats stats = breaker.stats();
  EXPECT_GE(stats.trips, 0);
  EXPECT_GE(stats.probes, stats.recoveries);
}

// ---------------- DeadlineBudget ----------------

TEST(DeadlineBudget, StageCheckpointsSplitTheTotal) {
  const auto t0 = Clock::now();
  DeadlineBudget budget(t0, microseconds(1000), 0.4, 0.3);

  EXPECT_FALSE(budget.policy_overrun(t0 + microseconds(400)));
  EXPECT_TRUE(budget.policy_overrun(t0 + microseconds(401)));
  EXPECT_FALSE(budget.translate_overrun(t0 + microseconds(700)));
  EXPECT_TRUE(budget.translate_overrun(t0 + microseconds(701)));
  EXPECT_FALSE(budget.expired(t0 + microseconds(1000)));
  EXPECT_TRUE(budget.expired(t0 + microseconds(1001)));
  EXPECT_DOUBLE_EQ(budget.elapsed_s(t0 + microseconds(500)), 500e-6);
}

TEST(DeadlineBudget, RejectsBadParameters) {
  const auto t0 = Clock::now();
  EXPECT_THROW(DeadlineBudget(t0, microseconds(0), 0.4, 0.3),
               std::invalid_argument);
  EXPECT_THROW(DeadlineBudget(t0, microseconds(100), 0.0, 0.3),
               std::invalid_argument);
  EXPECT_THROW(DeadlineBudget(t0, microseconds(100), 0.4, -0.1),
               std::invalid_argument);
  // Fractions must leave room for the simulation stage.
  EXPECT_THROW(DeadlineBudget(t0, microseconds(100), 0.6, 0.4),
               std::invalid_argument);
}

// ---------------- sanitize_demands ----------------

std::vector<bool> full_mesh_reachability(int n) {
  return std::vector<bool>(static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
                           true);
}

TEST(Sanitize, CleanMatrixPassesThroughUntouched) {
  const int n = 3;
  traffic::DemandMatrix in(n);
  in.set(0, 1, 2.5);
  in.set(1, 2, 0.75);
  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, n, serve::SanitizeLimits{},
                                           full_mesh_reachability(n), report);
  EXPECT_TRUE(report.clean());
  EXPECT_DOUBLE_EQ(out.at(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 0.75);
  EXPECT_DOUBLE_EQ(out.total(), in.total());
  EXPECT_DOUBLE_EQ(report.offered_demand, in.total());
}

TEST(Sanitize, RepairsEveryGarbageCategory) {
  const int n = 3;
  std::vector<double> raw(static_cast<std::size_t>(n) * n, 0.0);
  raw[0 * n + 1] = std::numeric_limits<double>::quiet_NaN();
  raw[0 * n + 2] = std::numeric_limits<double>::infinity();
  raw[1 * n + 0] = -4.0;
  raw[1 * n + 1] = 9.0;    // self-demand
  raw[2 * n + 0] = 1e15;   // above the clamp
  raw[2 * n + 1] = 3.0;    // legitimate
  const auto in = traffic::DemandMatrix::from_raw_unchecked(n, raw);

  serve::SanitizeLimits limits;
  limits.max_demand = 1e12;
  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, n, limits,
                                           full_mesh_reachability(n), report);

  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.non_finite_entries, 2);
  EXPECT_EQ(report.negative_entries, 1);
  EXPECT_EQ(report.diagonal_entries, 1);
  EXPECT_EQ(report.clamped_entries, 1);
  EXPECT_EQ(report.unroutable_entries, 0);
  // Garbage entries carry no meaningful volume; offered demand counts
  // only the finite non-negative off-diagonal entries.
  EXPECT_DOUBLE_EQ(report.offered_demand, 1e15 + 3.0);
  EXPECT_DOUBLE_EQ(report.clamped_demand, 1e15 - 1e12);

  EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.at(2, 0), 1e12);
  EXPECT_DOUBLE_EQ(out.at(2, 1), 3.0);
}

TEST(Sanitize, UnreachablePairsAreZeroedAndAccounted) {
  const int n = 3;
  traffic::DemandMatrix in(n);
  in.set(0, 1, 5.0);
  in.set(0, 2, 2.0);
  auto reachable = full_mesh_reachability(n);
  reachable[0 * n + 2] = false;  // topology cannot route 0 -> 2

  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, n, serve::SanitizeLimits{},
                                           reachable, report);
  EXPECT_EQ(report.unroutable_entries, 1);
  EXPECT_DOUBLE_EQ(report.unroutable_demand, 2.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 5.0);
}

// Regression (sanitize miscounts): an entry that was both above the clamp
// and unroutable used to be double-counted — clamped first, then its
// *post-clamp* remainder booked as unroutable demand, so the report
// neither matched the offered volume nor reconciled with the output
// matrix.  Buckets are now mutually exclusive (unroutable wins, at full
// pre-clamp volume) and the totals reconcile exactly.
TEST(Sanitize, ClampedAndUnroutableBucketsAreMutuallyExclusive) {
  const int n = 3;
  traffic::DemandMatrix in(n);
  in.set(0, 1, 1e15);  // above the clamp AND unroutable
  in.set(0, 2, 1e15);  // above the clamp, routable
  in.set(1, 2, 4.0);   // clean
  auto reachable = full_mesh_reachability(n);
  reachable[0 * n + 1] = false;

  serve::SanitizeLimits limits;
  limits.max_demand = 1e12;
  serve::SanitizeReport report;
  const auto out =
      serve::sanitize_demands(in, n, limits, reachable, report);

  // Exactly one bucket each: the unroutable entry is not also clamped.
  EXPECT_EQ(report.unroutable_entries, 1);
  EXPECT_EQ(report.clamped_entries, 1);
  // Unroutable demand is the full pre-clamp volume, not the clamped rest.
  EXPECT_DOUBLE_EQ(report.unroutable_demand, 1e15);
  EXPECT_DOUBLE_EQ(report.clamped_demand, 1e15 - 1e12);
  EXPECT_DOUBLE_EQ(report.offered_demand, 2e15 + 4.0);
  // The conservation law the report documents.
  EXPECT_DOUBLE_EQ(out.total(), report.offered_demand -
                                    report.unroutable_demand -
                                    report.clamped_demand);
}

TEST(Sanitize, SizeMismatchDropsTheWholeMatrix) {
  traffic::DemandMatrix in(2);
  in.set(0, 1, 1.0);
  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, 3, serve::SanitizeLimits{},
                                           full_mesh_reachability(3), report);
  EXPECT_TRUE(report.size_mismatch);
  EXPECT_EQ(out.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(out.total(), 0.0);
}

// ---------------- TopologyCache ----------------

traffic::DemandMatrix reachable_mesh(const graph::DiGraph& g,
                                     const std::vector<bool>& reachable) {
  const int n = g.num_nodes();
  traffic::DemandMatrix dm(n);
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (s != t && reachable[static_cast<std::size_t>(s) * n + t]) {
        dm.set(s, t, 1.0);
      }
    }
  }
  return dm;
}

TEST(TopologyCache, MissBuildsValidFallbackRoutings) {
  serve::TopologyCache cache(4, routing::SoftminOptions{}, 1.0, 1.0);
  const auto g = topo::abilene();
  const auto entry = cache.acquire(g);
  ASSERT_TRUE(entry);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  // Abilene is strongly connected: every pair is reachable.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ASSERT_EQ(entry->reachable.size(), n * n);
  for (bool r : entry->reachable) EXPECT_TRUE(r);

  // Both static rungs satisfy the full validity contract.
  const auto dm = reachable_mesh(g, entry->reachable);
  std::string error;
  EXPECT_TRUE(routing::validate(g, entry->inverse_capacity, dm, &error))
      << error;
  EXPECT_TRUE(routing::validate(g, entry->shortest_path, dm, &error)) << error;
  EXPECT_FALSE(entry->last_good.has());

  cache.acquire(g);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1U);
}

TEST(TopologyCache, EvictsLeastRecentlyUsed) {
  serve::TopologyCache cache(2, routing::SoftminOptions{}, 1.0, 1.0);
  const auto a = topo::abilene();
  const auto b = topo::nsfnet();
  const auto c = topo::abilene_heterogeneous();

  cache.acquire(a);
  cache.acquire(b);
  cache.acquire(a);  // refresh A's recency
  cache.acquire(c);  // evicts B
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.misses(), 3);

  cache.acquire(b);  // B must be rebuilt
  EXPECT_EQ(cache.misses(), 4);
  cache.acquire(c);  // C survived the eviction of A
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 2);
}

// Regression (dangling cache entry): acquire() used to return a reference
// into the cache's own storage, so an eviction — any other topology
// arriving on a full cache — freed the entry out from under the holder.
// With a capacity-1 cache every alternation is an eviction; holding the
// first entry across them and then reading it is the exact
// use-after-free the ASan CI leg would catch pre-fix.
TEST(TopologyCache, AcquiredEntrySurvivesEviction) {
  serve::TopologyCache cache(1, routing::SoftminOptions{}, 1.0, 1.0);
  const auto a = topo::abilene();
  const auto b = topo::nsfnet();

  const auto held = cache.acquire(a);
  ASSERT_TRUE(held);
  const auto fingerprint = held->fingerprint;
  for (int i = 0; i < 4; ++i) {
    cache.acquire(b);  // evicts a
    cache.acquire(a);  // rebuilds a, evicts b
  }
  EXPECT_EQ(cache.size(), 1U);

  // The held entry is still alive and intact, whatever the cache did.
  EXPECT_EQ(held->fingerprint, fingerprint);
  const auto dm = reachable_mesh(a, held->reachable);
  std::string error;
  EXPECT_TRUE(routing::validate(a, held->inverse_capacity, dm, &error))
      << error;
  EXPECT_TRUE(routing::validate(a, held->shortest_path, dm, &error)) << error;
}

TEST(TopologyCache, ConcurrentChurnKeepsEntriesAlive) {
  // 8 threads alternate two topologies through a capacity-1 cache — every
  // acquire is a potential eviction of an entry another thread is reading.
  serve::TopologyCache cache(1, routing::SoftminOptions{}, 1.0, 1.0);
  const auto a = topo::abilene();
  const auto b = topo::nsfnet();

  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 25; ++i) {
        const graph::DiGraph& g = ((w + i) % 2 == 0) ? a : b;
        const auto entry = cache.acquire(g);
        const auto n = static_cast<std::size_t>(g.num_nodes());
        if (!entry || entry->reachable.size() != n * n) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(cache.size(), 1U);
}

TEST(TopologyCache, LastGoodBoxRefreshesAndInvalidates) {
  serve::TopologyCache cache(2, routing::SoftminOptions{}, 1.0, 1.0);
  const auto g = topo::abilene();
  const auto entry = cache.acquire(g);

  routing::Routing out;
  EXPECT_FALSE(entry->last_good.load(out));

  // First offer always stores; later offers only every refresh_every.
  entry->last_good.offer(entry->shortest_path, 3);
  EXPECT_TRUE(entry->last_good.has());
  entry->last_good.offer(entry->inverse_capacity, 3);  // 1 of 3: kept old
  ASSERT_TRUE(entry->last_good.load(out));
  std::string error;
  const auto dm = reachable_mesh(g, entry->reachable);
  EXPECT_TRUE(routing::validate(g, out, dm, &error)) << error;

  entry->last_good.invalidate();
  EXPECT_FALSE(entry->last_good.has());
  EXPECT_FALSE(entry->last_good.load(out));
}

TEST(TopologyCache, ReachabilityReflectsDisconnection) {
  // Remove every out-edge of node 0: nothing is reachable *from* 0, but 0
  // stays reachable from everyone (its in-edges survive).
  const auto g = topo::abilene();
  std::vector<bool> remove(static_cast<std::size_t>(g.num_edges()), false);
  for (graph::EdgeId e : g.out_edges(0)) remove[static_cast<std::size_t>(e)] = true;
  const auto degraded = g.without_edges(remove);

  serve::TopologyCache cache(2, routing::SoftminOptions{}, 1.0, 1.0);
  const auto entry = cache.acquire(degraded);
  const int n = degraded.num_nodes();
  for (int t = 1; t < n; ++t) {
    EXPECT_FALSE(entry->reachable[static_cast<std::size_t>(0) * n + t]);
    EXPECT_TRUE(entry->reachable[static_cast<std::size_t>(t) * n + 0]);
  }
  // The diagonal is always reachable.
  EXPECT_TRUE(entry->reachable[0]);
}

TEST(TopologyCache, RejectsBadConfiguration) {
  EXPECT_THROW(serve::TopologyCache(0, routing::SoftminOptions{}, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(serve::TopologyCache(2, routing::SoftminOptions{}, 0.0, 1.0),
               std::invalid_argument);
}

// ---------------- MpmcQueue ----------------

TEST(MpmcQueue, BoundedPushPopAndEviction) {
  util::MpmcQueue<int> q(2);
  int out = 0;
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed signal, never blocks
  EXPECT_EQ(q.size(), 2U);

  // Predicate eviction removes the oldest match only.
  EXPECT_TRUE(q.evict_first_if([](int v) { return v > 0; }, out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.evict_first_if([](int v) { return v > 10; }, out));

  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);

  // Close-and-drain: queued items stay poppable, new pushes are refused,
  // and a drained pop returns false instead of blocking.
  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.pop(out));
}

// ---------------- RobustRouter ----------------

RouterConfig test_router_config() {
  RouterConfig config;
  config.deadline = microseconds(2'000'000);
  config.memory = 5;
  return config;
}

RouteRequest make_request(const graph::DiGraph& g, double demand = 1.0) {
  RouteRequest request;
  request.graph = &g;
  request.demand = traffic::DemandMatrix(g.num_nodes());
  request.demand.set(0, 1, demand);
  request.demand.set(2, 0, demand * 0.5);
  return request;
}

TEST(RobustRouter, ServesTopRungWhenHealthy) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  const auto g = topo::abilene();

  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kGnnPolicy);
  EXPECT_TRUE(decision.attempts.empty());
  EXPECT_TRUE(decision.sanitize.clean());
  EXPECT_GT(decision.routed_demand, 0.0);
  EXPECT_GT(decision.sim.u_max, 0.0);
  EXPECT_FALSE(decision.deadline_exhausted);
  EXPECT_EQ(router.stats().requests, 1);
  EXPECT_EQ(router.stats().rung_decisions[static_cast<int>(Rung::kGnnPolicy)],
            1);
}

TEST(RobustRouter, NoPolicyServesFromStaticRungs) {
  RobustRouter router(nullptr, test_router_config());
  const auto g = topo::abilene();

  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kInverseCapacity);
  ASSERT_EQ(decision.attempts.size(), 2U);
  EXPECT_EQ(decision.attempts[0].rung, Rung::kGnnPolicy);
  EXPECT_EQ(decision.attempts[0].cause, FailureCause::kNoPolicy);
  EXPECT_EQ(decision.attempts[1].rung, Rung::kLastKnownGood);
  EXPECT_EQ(decision.attempts[1].cause, FailureCause::kNotCached);
  EXPECT_GT(decision.routed_demand, 0.0);
}

TEST(RobustRouter, PolicyNanFaultFallsBackThenRecovers) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  const auto g = topo::abilene();

  util::FaultInjector::instance().arm("policy_nan@1");
  const auto degraded = router.decide(make_request(g));
  EXPECT_NE(degraded.rung, Rung::kGnnPolicy);
  ASSERT_FALSE(degraded.attempts.empty());
  EXPECT_EQ(degraded.attempts[0].rung, Rung::kGnnPolicy);
  EXPECT_EQ(degraded.attempts[0].cause, FailureCause::kNonFiniteOutput);

  // The schedule is exhausted: the next request is healthy again.
  const auto healthy = router.decide(make_request(g));
  EXPECT_EQ(healthy.rung, Rung::kGnnPolicy);
}

TEST(RobustRouter, LastKnownGoodCoversPolicyOutage) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.lkg_refresh_every = 1;  // cache the learned routing immediately
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  ASSERT_EQ(router.decide(make_request(g)).rung, Rung::kGnnPolicy);

  util::FaultInjector::instance().arm("policy_nan@1");
  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kLastKnownGood);
  EXPECT_GT(decision.routed_demand, 0.0);
}

TEST(RobustRouter, BreakerTripsThenProbeRecovers) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.breaker.failure_threshold = 2;
  config.breaker.initial_backoff = microseconds(1);  // elapses immediately
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  // Every rung-1 attempt fails until disarmed.
  util::FaultInjector::instance().arm("policy_nan@1+");
  router.decide(make_request(g));
  router.decide(make_request(g));  // second failure trips the breaker
  EXPECT_EQ(router.breaker().stats().trips, 1);

  // Still armed: the next admitted probe fails and re-opens.
  const auto reopened = router.decide(make_request(g));
  EXPECT_NE(reopened.rung, Rung::kGnnPolicy);

  // Healed: a probe succeeds and closes the breaker again.
  util::FaultInjector::instance().disarm();
  const auto recovered = router.decide(make_request(g));
  EXPECT_EQ(recovered.rung, Rung::kGnnPolicy);
  EXPECT_EQ(router.breaker().state(), BreakerState::kClosed);
  EXPECT_GE(router.breaker().stats().probes, 1);
  EXPECT_EQ(router.breaker().stats().recoveries, 1);
}

TEST(RobustRouter, ExhaustedDeadlineStillYieldsValidRouting) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.deadline = microseconds(1);  // expired before rung 1 finishes
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  const auto decision = router.decide(make_request(g));
  EXPECT_TRUE(decision.deadline_exhausted);
  // Rung 4 is always materialised, so the decision is still routable.
  EXPECT_EQ(decision.rung, Rung::kShortestPath);
  EXPECT_GT(decision.routed_demand, 0.0);
  std::string error;
  const auto mesh = reachable_mesh(
      g, full_mesh_reachability(g.num_nodes()));
  EXPECT_TRUE(routing::validate(g, decision.routing, mesh, &error)) << error;
  EXPECT_EQ(router.stats().deadline_exhausted, 1);
}

TEST(RobustRouter, NeverThrowsOnGarbageRequests) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  const auto g = topo::abilene();
  const int n = g.num_nodes();

  // Null topology: the only unservable request shape.
  RouteRequest no_graph;
  no_graph.demand = traffic::DemandMatrix(n);
  const auto dropped = router.decide(no_graph);
  EXPECT_EQ(dropped.rung, Rung::kDropTraffic);
  ASSERT_FALSE(dropped.attempts.empty());
  EXPECT_EQ(dropped.attempts.back().cause, FailureCause::kInvalidTopology);
  EXPECT_DOUBLE_EQ(dropped.routed_demand, 0.0);

  // NaN / negative / diagonal / huge entries plus a size-mismatched
  // history matrix: sanitised and served, never thrown.
  std::vector<double> raw(static_cast<std::size_t>(n) * n, 0.1);
  raw[1] = std::numeric_limits<double>::quiet_NaN();
  raw[2] = -1e9;
  raw[0] = 5.0;  // diagonal
  raw[3] = 1e300;
  RouteRequest garbage;
  garbage.graph = &g;
  garbage.demand = traffic::DemandMatrix::from_raw_unchecked(n, raw);
  garbage.history.emplace_back(2);  // wrong size: replaced by zeros
  const auto decision = router.decide(garbage);
  EXPECT_FALSE(decision.sanitize.clean());
  EXPECT_GE(decision.sanitize.non_finite_entries, 1);
  EXPECT_GE(decision.sanitize.negative_entries, 1);
  EXPECT_GE(decision.sanitize.clamped_entries, 1);
  EXPECT_NE(decision.rung, Rung::kDropTraffic);
  EXPECT_GT(decision.routed_demand, 0.0);

  // A size-mismatched demand matrix degrades to an empty (but decided)
  // request instead of an exception.
  RouteRequest mismatched;
  mismatched.graph = &g;
  mismatched.demand = traffic::DemandMatrix(n + 1);
  const auto empty = router.decide(mismatched);
  EXPECT_TRUE(empty.sanitize.size_mismatch);
  EXPECT_DOUBLE_EQ(empty.routed_demand, 0.0);
}

TEST(RobustRouter, TopoChangeFaultInvalidatesLastKnownGood) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.lkg_refresh_every = 1;
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  ASSERT_EQ(router.decide(make_request(g)).rung, Rung::kGnnPolicy);

  // The topology-change fault both fails rung 1 and drops the cached
  // last-known-good, so the decision lands on the static rung 3.
  util::FaultInjector::instance().arm("topo_change@1");
  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kInverseCapacity);
  ASSERT_GE(decision.attempts.size(), 2U);
  EXPECT_EQ(decision.attempts[0].cause, FailureCause::kTopologyChanged);
  EXPECT_EQ(decision.attempts[1].cause, FailureCause::kNotCached);
}

TEST(RobustRouter, ExportsServeMetricsWhenEnabled) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  registry.enable();
  {
    util::Rng rng(7);
    core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
    RobustRouter router(&policy, test_router_config());
    const auto g = topo::abilene();
    router.decide(make_request(g));
    router.decide(make_request(g));
  }
  registry.disable();

  EXPECT_EQ(obs::Registry::instance().counter("serve/requests"), 2U);
  EXPECT_EQ(obs::Registry::instance().counter("serve/rung/gnn_policy"), 2U);
  EXPECT_EQ(obs::Registry::instance().counter("serve/topo_cache/miss"), 1U);
  registry.reset();
}

TEST(RobustRouter, RejectsBadStageFractions) {
  RouterConfig config = test_router_config();
  config.policy_fraction = 0.7;
  config.translate_fraction = 0.4;
  EXPECT_THROW(RobustRouter(nullptr, config), std::invalid_argument);
}

// The batched decision path must be indistinguishable from serving each
// request alone — same rungs, bit-identical simulated utilisation — for
// any mix of demands on one topology.
TEST(RobustRouter, DecideBatchMatchesSequentialDecisions) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter batched(&policy, test_router_config());
  RobustRouter sequential(&policy, test_router_config());
  const auto g = topo::abilene();

  std::vector<RouteRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(make_request(g, 0.5 + 0.25 * i));
  }
  std::vector<const RouteRequest*> pointers;
  for (const auto& r : requests) pointers.push_back(&r);

  const auto batch = batched.decide_batch(pointers);
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto solo = sequential.decide(requests[i]);
    EXPECT_EQ(batch[i].rung, Rung::kGnnPolicy);
    EXPECT_EQ(batch[i].rung, solo.rung);
    // Bit-identical, not approximately equal: the stacked GNN forward
    // computes exactly the per-request arithmetic.
    EXPECT_EQ(batch[i].sim.u_max, solo.sim.u_max);
    EXPECT_EQ(batch[i].routed_demand, solo.routed_demand);
  }
}

TEST(RobustRouter, DecideBatchMixedTopologiesFallsBack) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  RobustRouter reference(&policy, test_router_config());
  const auto a = topo::abilene();
  const auto b = topo::nsfnet();

  const auto r0 = make_request(a, 1.0);
  const auto r1 = make_request(b, 2.0);
  const auto r2 = make_request(a, 3.0);
  const auto batch = router.decide_batch({&r0, &r1, &r2});
  ASSERT_EQ(batch.size(), 3U);
  EXPECT_EQ(batch[0].sim.u_max, reference.decide(r0).sim.u_max);
  EXPECT_EQ(batch[1].sim.u_max, reference.decide(r1).sim.u_max);
  EXPECT_EQ(batch[2].sim.u_max, reference.decide(r2).sim.u_max);
}

// ---------------- serve::Engine ----------------

EngineConfig inline_engine_config() {
  EngineConfig config;
  config.workers = 0;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.router = test_router_config();
  return config;
}

TEST(Engine, InlineModeServesQueuedRequestsInBatches) {
  Engine engine(nullptr, inline_engine_config());
  const auto g = topo::abilene();

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(make_request(g)));
  engine.poll();

  for (auto& f : futures) {
    const ServeOutcome outcome = f.get();
    EXPECT_FALSE(outcome.shed);
    EXPECT_EQ(outcome.decision.rung, Rung::kInverseCapacity);
    EXPECT_GT(outcome.decision.routed_demand, 0.0);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offered, 8);
  EXPECT_EQ(stats.served, 8);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.batches, 2);  // 8 same-topology jobs, max_batch 4
}

TEST(Engine, RejectNewestShedsWhenQueueIsFull) {
  EngineConfig config = inline_engine_config();
  config.queue_capacity = 2;
  config.shed_policy = ShedPolicy::kRejectNewest;
  Engine engine(nullptr, config);
  const auto g = topo::abilene();

  auto f0 = engine.submit(make_request(g));
  auto f1 = engine.submit(make_request(g));
  auto f2 = engine.submit(make_request(g));  // queue full: shed on arrival

  const ServeOutcome rejected = f2.get();  // ready without any poll
  EXPECT_TRUE(rejected.shed);

  engine.poll();
  EXPECT_FALSE(f0.get().shed);
  EXPECT_FALSE(f1.get().shed);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offered, stats.served + stats.shed);
  EXPECT_EQ(stats.shed, 1);
}

TEST(Engine, ExpiredFirstEvictsStaleJobToAdmitFreshOne) {
  EngineConfig config = inline_engine_config();
  config.queue_capacity = 2;
  config.shed_policy = ShedPolicy::kExpiredFirst;
  config.queue_deadline = microseconds(2000);
  Engine engine(nullptr, config);
  const auto g = topo::abilene();

  auto f0 = engine.submit(make_request(g));
  auto f1 = engine.submit(make_request(g));
  // Let both queued jobs pass their deadline, then offer a fresh one.
  spin_until(Clock::now() + microseconds(3000));
  auto f2 = engine.submit(make_request(g));

  // The oldest expired job was evicted to make room: f0 is already shed,
  // the fresh job was admitted.
  EXPECT_TRUE(f0.get().shed);
  engine.poll();
  EXPECT_TRUE(f1.get().shed);    // expired while queued: shed at dispatch
  EXPECT_FALSE(f2.get().shed);   // fresh: served
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offered, 3);
  EXPECT_EQ(stats.shed, 2);
  EXPECT_EQ(stats.served, 1);
}

TEST(Engine, DispatchShedsJobsPastTheirDeadline) {
  EngineConfig config = inline_engine_config();
  config.queue_deadline = microseconds(1000);
  Engine engine(nullptr, config);
  const auto g = topo::abilene();

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine.submit(make_request(g)));
  spin_until(Clock::now() + microseconds(2000));
  engine.poll();

  for (auto& f : futures) EXPECT_TRUE(f.get().shed);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.shed, 3);
  EXPECT_EQ(stats.served, 0);
  EXPECT_EQ(stats.batches, 0);  // nothing survived to reach a router
}

TEST(Engine, BatchedEngineDecisionsMatchPlainRouter) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  EngineConfig config = inline_engine_config();
  config.max_batch = 8;
  Engine engine(&policy, config);
  RobustRouter reference(&policy, test_router_config());
  const auto g = topo::abilene();

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(engine.submit(make_request(g, 0.5 + 0.25 * i)));
  }
  engine.poll();

  for (int i = 0; i < 6; ++i) {
    const ServeOutcome outcome = futures[static_cast<std::size_t>(i)].get();
    ASSERT_FALSE(outcome.shed);
    const auto solo = reference.decide(make_request(g, 0.5 + 0.25 * i));
    EXPECT_EQ(outcome.decision.rung, Rung::kGnnPolicy);
    EXPECT_EQ(outcome.decision.rung, solo.rung);
    EXPECT_EQ(outcome.decision.sim.u_max, solo.sim.u_max);
    EXPECT_EQ(outcome.decision.routed_demand, solo.routed_demand);
  }
  EXPECT_GE(engine.stats().batches, 1);
}

TEST(Engine, WorkerCountDoesNotChangeDecisions) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  const auto g = topo::abilene();
  const int kRequests = 10;

  // Decisions must depend only on the request, not on the worker fleet
  // shape or how the micro-batches happened to form.
  auto run = [&](int workers) {
    EngineConfig config = inline_engine_config();
    config.workers = workers;
    config.max_batch = 4;
    Engine engine(&policy, config);
    std::vector<std::future<ServeOutcome>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(engine.submit(make_request(g, 0.5 + 0.125 * i)));
    }
    engine.poll();  // no-op when workers > 0
    std::vector<double> u_max;
    for (auto& f : futures) {
      const ServeOutcome outcome = f.get();
      EXPECT_FALSE(outcome.shed);
      EXPECT_EQ(outcome.decision.rung, Rung::kGnnPolicy);
      u_max.push_back(outcome.decision.sim.u_max);
    }
    return u_max;
  };

  const auto inline_run = run(0);
  const auto two_workers = run(2);
  const auto four_workers = run(4);
  ASSERT_EQ(inline_run.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(inline_run[static_cast<std::size_t>(i)],
              two_workers[static_cast<std::size_t>(i)]);
    EXPECT_EQ(inline_run[static_cast<std::size_t>(i)],
              four_workers[static_cast<std::size_t>(i)]);
  }
}

TEST(Engine, ShutdownDrainsEveryAdmittedJob) {
  EngineConfig config = inline_engine_config();
  config.workers = 2;
  config.queue_capacity = 128;
  Engine engine(nullptr, config);
  const auto g = topo::abilene();

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(engine.submit(make_request(g)));
  }
  engine.shutdown();

  long served = 0;
  for (auto& f : futures) {
    if (!f.get().shed) ++served;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offered, 64);
  EXPECT_EQ(stats.served + stats.shed, stats.offered);
  EXPECT_EQ(stats.served, served);
  // Post-shutdown the per-worker router stats are aggregated and must
  // account for exactly the served jobs.
  EXPECT_EQ(engine.router_stats().requests, served);

  // Submissions after shutdown are shed, keeping the conservation law.
  auto late = engine.submit(make_request(g));
  EXPECT_TRUE(late.get().shed);
  EXPECT_EQ(engine.stats().offered,
            engine.stats().served + engine.stats().shed);
}

TEST(Engine, SharedBreakerTripsForTheWholeFleet) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  EngineConfig config = inline_engine_config();
  config.router.breaker.failure_threshold = 2;
  config.router.breaker.initial_backoff = microseconds(60'000'000);
  config.router.breaker.max_backoff = microseconds(120'000'000);
  Engine engine(&policy, config);
  const auto g = topo::abilene();

  // Every rung-1 attempt fails: two failures trip the one shared breaker,
  // and with an hour-scale backoff every later request skips rung 1.
  util::FaultInjector::instance().arm("policy_nan@1+");
  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(engine.submit(make_request(g)));
  engine.poll();
  util::FaultInjector::instance().disarm();

  int gnn_decisions = 0;
  for (auto& f : futures) {
    const ServeOutcome outcome = f.get();
    ASSERT_FALSE(outcome.shed);
    if (outcome.decision.rung == Rung::kGnnPolicy) ++gnn_decisions;
  }
  EXPECT_EQ(gnn_decisions, 0);
  EXPECT_EQ(engine.breaker().stats().trips, 1);
  EXPECT_EQ(engine.breaker().state(), BreakerState::kOpen);
}

TEST(Engine, ConcurrentTopologyChurnResolvesEverything) {
  // End-to-end concurrency exercise for the TSan leg: 4 workers, a
  // capacity-1 shared topology cache and two alternating topologies, so
  // entries are evicted under the feet of in-flight decisions.
  EngineConfig config = inline_engine_config();
  config.workers = 4;
  config.queue_capacity = 256;
  config.router.topology_cache_capacity = 1;
  Engine engine(nullptr, config);
  const auto a = topo::abilene();
  const auto b = topo::nsfnet();

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 120; ++i) {
    futures.push_back(engine.submit(make_request((i % 2 == 0) ? a : b)));
  }
  engine.shutdown();

  for (auto& f : futures) {
    const ServeOutcome outcome = f.get();
    if (!outcome.shed) {
      EXPECT_EQ(outcome.decision.rung, Rung::kInverseCapacity);
      EXPECT_GT(outcome.decision.routed_demand, 0.0);
    }
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offered, 120);
  EXPECT_EQ(stats.served + stats.shed, stats.offered);
  EXPECT_EQ(stats.shed, 0);  // no deadline and a deep queue: nothing shed
}

TEST(Engine, RejectsBadConfiguration) {
  EngineConfig bad_workers = inline_engine_config();
  bad_workers.workers = -1;
  EXPECT_THROW(Engine(nullptr, bad_workers), std::invalid_argument);

  EngineConfig bad_queue = inline_engine_config();
  bad_queue.queue_capacity = 0;
  EXPECT_THROW(Engine(nullptr, bad_queue), std::invalid_argument);

  EngineConfig bad_batch = inline_engine_config();
  bad_batch.max_batch = 0;
  EXPECT_THROW(Engine(nullptr, bad_batch), std::invalid_argument);
}

TEST(Engine, ConcurrentPollAndShutdownStayCoherent) {
  // Regression test for the inline-mode lifecycle race: poll(),
  // shutdown() and router_stats() used to touch inline_batcher_ and
  // router_stats_ with no synchronisation, so a stats poll racing a
  // shutdown read the aggregate mid-write (and router_stats() returned a
  // reference into the mutating member).  All three now serialise on the
  // engine lifecycle mutex; under TSan this test fails without it.
  EngineConfig config = inline_engine_config();
  config.queue_capacity = 256;
  Engine engine(nullptr, config);
  const auto g = topo::abilene();

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(engine.submit(make_request(g)));
  }

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      engine.poll();
      // By-value snapshot: safe to read while shutdown() aggregates.
      const RouterStats rst = engine.router_stats();
      EXPECT_GE(rst.requests, 0L);
    }
  });
  std::thread stopper([&] { engine.shutdown(); });
  stopper.join();
  done.store(true, std::memory_order_relaxed);
  poller.join();

  long served = 0;
  for (auto& f : futures) {
    if (!f.get().shed) ++served;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offered, 48);
  EXPECT_EQ(stats.served + stats.shed, stats.offered);
  EXPECT_EQ(engine.router_stats().requests, served);
}

// ---------------- Engine policy lifecycle seam ----------------

std::shared_ptr<const core::GnnPolicy> make_shared_policy(
    std::uint64_t seed) {
  util::Rng rng(seed);
  return std::make_shared<core::GnnPolicy>(core::experiment_gnn_config(5),
                                           rng);
}

TEST(Engine, HotSwapStampsVersionsAndCountsSwaps) {
  EngineConfig config = inline_engine_config();
  config.max_batch = 1;
  Engine engine(nullptr, config);
  const auto g = topo::abilene();

  engine.set_policy(make_shared_policy(1), 7);
  EXPECT_EQ(engine.live_version(), 7U);
  auto f1 = engine.submit(make_request(g));
  engine.poll();
  const ServeOutcome first = f1.get();
  ASSERT_FALSE(first.shed);
  EXPECT_EQ(first.decision.rung, Rung::kGnnPolicy);
  EXPECT_EQ(first.decision.policy_version, 7U);
  EXPECT_FALSE(first.decision.served_by_candidate);

  engine.set_policy(make_shared_policy(2), 9);
  auto f2 = engine.submit(make_request(g));
  engine.poll();
  EXPECT_EQ(f2.get().decision.policy_version, 9U);
  EXPECT_EQ(engine.live_version(), 9U);
  EXPECT_EQ(engine.swaps(), 2);
}

TEST(Engine, CanaryFractionSplitsAttributionDeterministically) {
  EngineConfig config = inline_engine_config();
  config.max_batch = 1;  // per-request batches: fraction = request share
  Engine engine(nullptr, config);
  const auto g = topo::abilene();
  engine.set_policy(make_shared_policy(1), 1);

  // Full canary: every micro-batch goes to the candidate.
  engine.set_candidate(make_shared_policy(2), 2, 1.0);
  for (int i = 0; i < 3; ++i) {
    auto f = engine.submit(make_request(g));
    engine.poll();
    const ServeOutcome outcome = f.get();
    ASSERT_FALSE(outcome.shed);
    EXPECT_TRUE(outcome.decision.served_by_candidate);
    EXPECT_EQ(outcome.decision.policy_version, 2U);
  }
  // The canary never became live.
  EXPECT_EQ(engine.live_version(), 1U);

  // Disarming the canary returns all traffic to the incumbent.
  engine.clear_candidate();
  auto f = engine.submit(make_request(g));
  engine.poll();
  const ServeOutcome after = f.get();
  EXPECT_FALSE(after.decision.served_by_candidate);
  EXPECT_EQ(after.decision.policy_version, 1U);

  // Zero fraction arms nothing.
  engine.set_candidate(make_shared_policy(3), 3, 0.0);
  auto f0 = engine.submit(make_request(g));
  engine.poll();
  EXPECT_FALSE(f0.get().decision.served_by_candidate);
}

TEST(Engine, DecisionObserverSeesEveryServedDecision) {
  EngineConfig config = inline_engine_config();
  config.max_batch = 4;
  Engine engine(nullptr, config);
  const auto g = topo::abilene();
  engine.set_policy(make_shared_policy(1), 3);

  std::vector<serve::DecisionRecord> records;
  engine.set_decision_observer(
      [&records](const RouteRequest& request,
                 const serve::DecisionRecord& record) {
        EXPECT_NE(request.graph, nullptr);
        records.push_back(record);
      });

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(engine.submit(make_request(g, 0.5 + 0.1 * i)));
  }
  engine.poll();
  for (auto& f : futures) ASSERT_FALSE(f.get().shed);

  ASSERT_EQ(records.size(), 6U);
  for (const serve::DecisionRecord& record : records) {
    EXPECT_EQ(record.rung, Rung::kGnnPolicy);
    EXPECT_EQ(record.policy_version, 3U);
    EXPECT_FALSE(record.served_by_candidate);
    EXPECT_FALSE(record.nonfinite_policy_output);
    EXPECT_TRUE(std::isfinite(record.u_max));
    EXPECT_GT(record.routed_demand, 0.0);
  }
}

TEST(Engine, ConcurrentHotSwapNeverTearsABatch) {
  // Regression test for the policy lifecycle seam (written for the TSan
  // and ASan CI legs): workers must re-read the policy slot once per
  // micro-batch and hold the shared_ptr for the batch's duration — a
  // worker caching the raw pointer across batches would race the swap
  // below and use freed weights, because each swapped-out policy's last
  // reference dies with the swap.
  EngineConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.router = test_router_config();
  Engine engine(nullptr, config);
  const auto g = topo::abilene();
  engine.set_policy(make_shared_policy(1), 1);

  std::atomic<bool> done{false};
  std::thread swapper([&engine, &done] {
    std::uint64_t version = 2;
    while (!done.load(std::memory_order_relaxed)) {
      // A fresh policy every swap: the previous one is freed as soon as
      // the last in-flight batch using it completes.
      engine.set_policy(make_shared_policy(version), version);
      ++version;
    }
  });

  std::vector<std::future<ServeOutcome>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(engine.submit(make_request(g, 0.5 + 0.01 * i)));
  }
  engine.shutdown();
  done.store(true, std::memory_order_relaxed);
  swapper.join();

  const std::uint64_t last = engine.live_version();
  EXPECT_GE(engine.swaps(), 2);
  for (auto& f : futures) {
    const ServeOutcome outcome = f.get();
    ASSERT_FALSE(outcome.shed);
    // Every decision is attributable to exactly one installed version.
    EXPECT_EQ(outcome.decision.rung, Rung::kGnnPolicy);
    EXPECT_GE(outcome.decision.policy_version, 1U);
    EXPECT_LE(outcome.decision.policy_version, last);
  }
}

TEST(Engine, ShedPolicyNamesRoundTrip) {
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  EXPECT_TRUE(serve::parse_shed_policy("expired-first", policy));
  EXPECT_EQ(policy, ShedPolicy::kExpiredFirst);
  EXPECT_STREQ(serve::shed_policy_name(policy), "expired-first");
  EXPECT_TRUE(serve::parse_shed_policy("reject-newest", policy));
  EXPECT_EQ(policy, ShedPolicy::kRejectNewest);
  EXPECT_FALSE(serve::parse_shed_policy("drop-everything", policy));
}

}  // namespace
}  // namespace gddr
