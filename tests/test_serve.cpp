// Serving-robustness tests: circuit breaker state machine, deadline
// budget checkpoints, inbound-demand sanitisation, per-topology cache
// and the RobustRouter degradation ladder (the ISSUE acceptance criteria
// for the resilient routing-decision pipeline).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "obs/metrics.hpp"
#include "routing/routing.hpp"
#include "serve/breaker.hpp"
#include "serve/deadline.hpp"
#include "serve/router.hpp"
#include "serve/sanitize.hpp"
#include "serve/topo_cache.hpp"
#include "topo/zoo.hpp"
#include "traffic/demand.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace gddr {
namespace {

using serve::BreakerState;
using serve::CircuitBreaker;
using serve::CircuitBreakerConfig;
using serve::DeadlineBudget;
using serve::FailureCause;
using serve::RobustRouter;
using serve::RouteRequest;
using serve::RouterConfig;
using serve::Rung;
using std::chrono::microseconds;

using Clock = std::chrono::steady_clock;

// Every test disarms on exit so an assertion failure cannot leak an armed
// fault schedule into the next test.
struct FaultGuard {
  FaultGuard() { util::FaultInjector::instance().disarm(); }
  ~FaultGuard() { util::FaultInjector::instance().disarm(); }
};

// ---------------- CircuitBreaker ----------------

TEST(CircuitBreaker, ClosedAdmitsAndSuccessResetsFailures) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  EXPECT_TRUE(breaker.allow(t0));
  breaker.record_failure(t0);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.stats().consecutive_failures, 2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_success(t0);
  EXPECT_EQ(breaker.stats().consecutive_failures, 0);
  // A success resets the streak: two more failures do not trip.
  breaker.record_failure(t0);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0);
}

TEST(CircuitBreaker, TripsAfterThresholdAndBlocksUntilBackoff) {
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.initial_backoff = microseconds(100);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.record_failure(t0);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1);
  // Blocked while the backoff is running.
  EXPECT_FALSE(breaker.allow(t0 + microseconds(50)));
  EXPECT_EQ(breaker.stats().probes, 0);
}

TEST(CircuitBreaker, HalfOpenAdmitsOneProbeAndRecovers) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.record_failure(t0);  // trips (threshold 1)
  const auto probe_time = t0 + microseconds(100);
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stats().probes, 1);
  // Only one probe may be in flight.
  EXPECT_FALSE(breaker.allow(probe_time));
  EXPECT_EQ(breaker.stats().probes, 1);

  breaker.record_success(probe_time);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().recoveries, 1);
  EXPECT_TRUE(breaker.allow(probe_time));
}

TEST(CircuitBreaker, FailedProbeGrowsBackoffUpToMax) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.initial_backoff = microseconds(100);
  config.max_backoff = microseconds(300);
  config.backoff_multiplier = 2.0;
  CircuitBreaker breaker(config);
  const auto t0 = Clock::now();

  breaker.record_failure(t0);  // open until t0+100
  auto now = t0 + microseconds(100);
  EXPECT_TRUE(breaker.allow(now));  // probe 1
  breaker.record_failure(now);      // reopen, backoff -> 200
  EXPECT_EQ(breaker.stats().reopens, 1);
  EXPECT_FALSE(breaker.allow(now + microseconds(199)));
  now += microseconds(200);
  EXPECT_TRUE(breaker.allow(now));  // probe 2
  breaker.record_failure(now);      // backoff 400 clamped to 300
  EXPECT_FALSE(breaker.allow(now + microseconds(299)));
  EXPECT_TRUE(breaker.allow(now + microseconds(300)));
  // Recovery resets the backoff to its initial value.
  breaker.record_success(now + microseconds(300));
  breaker.record_failure(now + microseconds(300));
  EXPECT_TRUE(breaker.allow(now + microseconds(400)));
}

TEST(CircuitBreaker, RejectsBadConfiguration) {
  CircuitBreakerConfig bad_threshold;
  bad_threshold.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker{bad_threshold}, std::invalid_argument);

  CircuitBreakerConfig bad_backoff;
  bad_backoff.initial_backoff = microseconds(0);
  EXPECT_THROW(CircuitBreaker{bad_backoff}, std::invalid_argument);

  CircuitBreakerConfig inverted;
  inverted.initial_backoff = microseconds(1000);
  inverted.max_backoff = microseconds(100);
  EXPECT_THROW(CircuitBreaker{inverted}, std::invalid_argument);

  CircuitBreakerConfig shrinking;
  shrinking.backoff_multiplier = 0.5;
  EXPECT_THROW(CircuitBreaker{shrinking}, std::invalid_argument);
}

// ---------------- DeadlineBudget ----------------

TEST(DeadlineBudget, StageCheckpointsSplitTheTotal) {
  const auto t0 = Clock::now();
  DeadlineBudget budget(t0, microseconds(1000), 0.4, 0.3);

  EXPECT_FALSE(budget.policy_overrun(t0 + microseconds(400)));
  EXPECT_TRUE(budget.policy_overrun(t0 + microseconds(401)));
  EXPECT_FALSE(budget.translate_overrun(t0 + microseconds(700)));
  EXPECT_TRUE(budget.translate_overrun(t0 + microseconds(701)));
  EXPECT_FALSE(budget.expired(t0 + microseconds(1000)));
  EXPECT_TRUE(budget.expired(t0 + microseconds(1001)));
  EXPECT_DOUBLE_EQ(budget.elapsed_s(t0 + microseconds(500)), 500e-6);
}

TEST(DeadlineBudget, RejectsBadParameters) {
  const auto t0 = Clock::now();
  EXPECT_THROW(DeadlineBudget(t0, microseconds(0), 0.4, 0.3),
               std::invalid_argument);
  EXPECT_THROW(DeadlineBudget(t0, microseconds(100), 0.0, 0.3),
               std::invalid_argument);
  EXPECT_THROW(DeadlineBudget(t0, microseconds(100), 0.4, -0.1),
               std::invalid_argument);
  // Fractions must leave room for the simulation stage.
  EXPECT_THROW(DeadlineBudget(t0, microseconds(100), 0.6, 0.4),
               std::invalid_argument);
}

// ---------------- sanitize_demands ----------------

std::vector<bool> full_mesh_reachability(int n) {
  return std::vector<bool>(static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
                           true);
}

TEST(Sanitize, CleanMatrixPassesThroughUntouched) {
  const int n = 3;
  traffic::DemandMatrix in(n);
  in.set(0, 1, 2.5);
  in.set(1, 2, 0.75);
  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, n, serve::SanitizeLimits{},
                                           full_mesh_reachability(n), report);
  EXPECT_TRUE(report.clean());
  EXPECT_DOUBLE_EQ(out.at(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 0.75);
  EXPECT_DOUBLE_EQ(out.total(), in.total());
}

TEST(Sanitize, RepairsEveryGarbageCategory) {
  const int n = 3;
  std::vector<double> raw(static_cast<std::size_t>(n) * n, 0.0);
  raw[0 * n + 1] = std::numeric_limits<double>::quiet_NaN();
  raw[0 * n + 2] = std::numeric_limits<double>::infinity();
  raw[1 * n + 0] = -4.0;
  raw[1 * n + 1] = 9.0;    // self-demand
  raw[2 * n + 0] = 1e15;   // above the clamp
  raw[2 * n + 1] = 3.0;    // legitimate
  const auto in = traffic::DemandMatrix::from_raw_unchecked(n, raw);

  serve::SanitizeLimits limits;
  limits.max_demand = 1e12;
  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, n, limits,
                                           full_mesh_reachability(n), report);

  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.non_finite_entries, 2);
  EXPECT_EQ(report.negative_entries, 1);
  EXPECT_EQ(report.diagonal_entries, 1);
  EXPECT_EQ(report.clamped_entries, 1);
  EXPECT_EQ(report.unroutable_entries, 0);

  EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.at(2, 0), 1e12);
  EXPECT_DOUBLE_EQ(out.at(2, 1), 3.0);
}

TEST(Sanitize, UnreachablePairsAreZeroedAndAccounted) {
  const int n = 3;
  traffic::DemandMatrix in(n);
  in.set(0, 1, 5.0);
  in.set(0, 2, 2.0);
  auto reachable = full_mesh_reachability(n);
  reachable[0 * n + 2] = false;  // topology cannot route 0 -> 2

  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, n, serve::SanitizeLimits{},
                                           reachable, report);
  EXPECT_EQ(report.unroutable_entries, 1);
  EXPECT_DOUBLE_EQ(report.unroutable_demand, 2.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 5.0);
}

TEST(Sanitize, SizeMismatchDropsTheWholeMatrix) {
  traffic::DemandMatrix in(2);
  in.set(0, 1, 1.0);
  serve::SanitizeReport report;
  const auto out = serve::sanitize_demands(in, 3, serve::SanitizeLimits{},
                                           full_mesh_reachability(3), report);
  EXPECT_TRUE(report.size_mismatch);
  EXPECT_EQ(out.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(out.total(), 0.0);
}

// ---------------- TopologyCache ----------------

traffic::DemandMatrix reachable_mesh(const graph::DiGraph& g,
                                     const std::vector<bool>& reachable) {
  const int n = g.num_nodes();
  traffic::DemandMatrix dm(n);
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (s != t && reachable[static_cast<std::size_t>(s) * n + t]) {
        dm.set(s, t, 1.0);
      }
    }
  }
  return dm;
}

TEST(TopologyCache, MissBuildsValidFallbackRoutings) {
  serve::TopologyCache cache(4, routing::SoftminOptions{}, 1.0, 1.0);
  const auto g = topo::abilene();
  auto& entry = cache.acquire(g);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  // Abilene is strongly connected: every pair is reachable.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ASSERT_EQ(entry.reachable.size(), n * n);
  for (bool r : entry.reachable) EXPECT_TRUE(r);

  // Both static rungs satisfy the full validity contract.
  const auto dm = reachable_mesh(g, entry.reachable);
  std::string error;
  EXPECT_TRUE(routing::validate(g, entry.inverse_capacity, dm, &error))
      << error;
  EXPECT_TRUE(routing::validate(g, entry.shortest_path, dm, &error)) << error;
  EXPECT_FALSE(entry.has_last_good);

  cache.acquire(g);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1U);
}

TEST(TopologyCache, EvictsLeastRecentlyUsed) {
  serve::TopologyCache cache(2, routing::SoftminOptions{}, 1.0, 1.0);
  const auto a = topo::abilene();
  const auto b = topo::nsfnet();
  const auto c = topo::abilene_heterogeneous();

  cache.acquire(a);
  cache.acquire(b);
  cache.acquire(a);  // refresh A's recency
  cache.acquire(c);  // evicts B
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.misses(), 3);

  cache.acquire(b);  // B must be rebuilt
  EXPECT_EQ(cache.misses(), 4);
  cache.acquire(c);  // C survived the eviction of A
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 2);
}

TEST(TopologyCache, ReachabilityReflectsDisconnection) {
  // Remove every out-edge of node 0: nothing is reachable *from* 0, but 0
  // stays reachable from everyone (its in-edges survive).
  const auto g = topo::abilene();
  std::vector<bool> remove(static_cast<std::size_t>(g.num_edges()), false);
  for (graph::EdgeId e : g.out_edges(0)) remove[static_cast<std::size_t>(e)] = true;
  const auto degraded = g.without_edges(remove);

  serve::TopologyCache cache(2, routing::SoftminOptions{}, 1.0, 1.0);
  auto& entry = cache.acquire(degraded);
  const int n = degraded.num_nodes();
  for (int t = 1; t < n; ++t) {
    EXPECT_FALSE(entry.reachable[static_cast<std::size_t>(0) * n + t]);
    EXPECT_TRUE(entry.reachable[static_cast<std::size_t>(t) * n + 0]);
  }
  // The diagonal is always reachable.
  EXPECT_TRUE(entry.reachable[0]);
}

TEST(TopologyCache, RejectsBadConfiguration) {
  EXPECT_THROW(serve::TopologyCache(0, routing::SoftminOptions{}, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(serve::TopologyCache(2, routing::SoftminOptions{}, 0.0, 1.0),
               std::invalid_argument);
}

// ---------------- RobustRouter ----------------

RouterConfig test_router_config() {
  RouterConfig config;
  config.deadline = microseconds(2'000'000);
  config.memory = 5;
  return config;
}

RouteRequest make_request(const graph::DiGraph& g, double demand = 1.0) {
  RouteRequest request;
  request.graph = &g;
  request.demand = traffic::DemandMatrix(g.num_nodes());
  request.demand.set(0, 1, demand);
  request.demand.set(2, 0, demand * 0.5);
  return request;
}

TEST(RobustRouter, ServesTopRungWhenHealthy) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  const auto g = topo::abilene();

  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kGnnPolicy);
  EXPECT_TRUE(decision.attempts.empty());
  EXPECT_TRUE(decision.sanitize.clean());
  EXPECT_GT(decision.routed_demand, 0.0);
  EXPECT_GT(decision.sim.u_max, 0.0);
  EXPECT_FALSE(decision.deadline_exhausted);
  EXPECT_EQ(router.stats().requests, 1);
  EXPECT_EQ(router.stats().rung_decisions[static_cast<int>(Rung::kGnnPolicy)],
            1);
}

TEST(RobustRouter, NoPolicyServesFromStaticRungs) {
  RobustRouter router(nullptr, test_router_config());
  const auto g = topo::abilene();

  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kInverseCapacity);
  ASSERT_EQ(decision.attempts.size(), 2U);
  EXPECT_EQ(decision.attempts[0].rung, Rung::kGnnPolicy);
  EXPECT_EQ(decision.attempts[0].cause, FailureCause::kNoPolicy);
  EXPECT_EQ(decision.attempts[1].rung, Rung::kLastKnownGood);
  EXPECT_EQ(decision.attempts[1].cause, FailureCause::kNotCached);
  EXPECT_GT(decision.routed_demand, 0.0);
}

TEST(RobustRouter, PolicyNanFaultFallsBackThenRecovers) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  const auto g = topo::abilene();

  util::FaultInjector::instance().arm("policy_nan@1");
  const auto degraded = router.decide(make_request(g));
  EXPECT_NE(degraded.rung, Rung::kGnnPolicy);
  ASSERT_FALSE(degraded.attempts.empty());
  EXPECT_EQ(degraded.attempts[0].rung, Rung::kGnnPolicy);
  EXPECT_EQ(degraded.attempts[0].cause, FailureCause::kNonFiniteOutput);

  // The schedule is exhausted: the next request is healthy again.
  const auto healthy = router.decide(make_request(g));
  EXPECT_EQ(healthy.rung, Rung::kGnnPolicy);
}

TEST(RobustRouter, LastKnownGoodCoversPolicyOutage) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.lkg_refresh_every = 1;  // cache the learned routing immediately
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  ASSERT_EQ(router.decide(make_request(g)).rung, Rung::kGnnPolicy);

  util::FaultInjector::instance().arm("policy_nan@1");
  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kLastKnownGood);
  EXPECT_GT(decision.routed_demand, 0.0);
}

TEST(RobustRouter, BreakerTripsThenProbeRecovers) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.breaker.failure_threshold = 2;
  config.breaker.initial_backoff = microseconds(1);  // elapses immediately
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  // Every rung-1 attempt fails until disarmed.
  util::FaultInjector::instance().arm("policy_nan@1+");
  router.decide(make_request(g));
  router.decide(make_request(g));  // second failure trips the breaker
  EXPECT_EQ(router.breaker().stats().trips, 1);

  // Still armed: the next admitted probe fails and re-opens.
  const auto reopened = router.decide(make_request(g));
  EXPECT_NE(reopened.rung, Rung::kGnnPolicy);

  // Healed: a probe succeeds and closes the breaker again.
  util::FaultInjector::instance().disarm();
  const auto recovered = router.decide(make_request(g));
  EXPECT_EQ(recovered.rung, Rung::kGnnPolicy);
  EXPECT_EQ(router.breaker().state(), BreakerState::kClosed);
  EXPECT_GE(router.breaker().stats().probes, 1);
  EXPECT_EQ(router.breaker().stats().recoveries, 1);
}

TEST(RobustRouter, ExhaustedDeadlineStillYieldsValidRouting) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.deadline = microseconds(1);  // expired before rung 1 finishes
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  const auto decision = router.decide(make_request(g));
  EXPECT_TRUE(decision.deadline_exhausted);
  // Rung 4 is always materialised, so the decision is still routable.
  EXPECT_EQ(decision.rung, Rung::kShortestPath);
  EXPECT_GT(decision.routed_demand, 0.0);
  std::string error;
  const auto mesh = reachable_mesh(
      g, full_mesh_reachability(g.num_nodes()));
  EXPECT_TRUE(routing::validate(g, decision.routing, mesh, &error)) << error;
  EXPECT_EQ(router.stats().deadline_exhausted, 1);
}

TEST(RobustRouter, NeverThrowsOnGarbageRequests) {
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RobustRouter router(&policy, test_router_config());
  const auto g = topo::abilene();
  const int n = g.num_nodes();

  // Null topology: the only unservable request shape.
  RouteRequest no_graph;
  no_graph.demand = traffic::DemandMatrix(n);
  const auto dropped = router.decide(no_graph);
  EXPECT_EQ(dropped.rung, Rung::kDropTraffic);
  ASSERT_FALSE(dropped.attempts.empty());
  EXPECT_EQ(dropped.attempts.back().cause, FailureCause::kInvalidTopology);
  EXPECT_DOUBLE_EQ(dropped.routed_demand, 0.0);

  // NaN / negative / diagonal / huge entries plus a size-mismatched
  // history matrix: sanitised and served, never thrown.
  std::vector<double> raw(static_cast<std::size_t>(n) * n, 0.1);
  raw[1] = std::numeric_limits<double>::quiet_NaN();
  raw[2] = -1e9;
  raw[0] = 5.0;  // diagonal
  raw[3] = 1e300;
  RouteRequest garbage;
  garbage.graph = &g;
  garbage.demand = traffic::DemandMatrix::from_raw_unchecked(n, raw);
  garbage.history.emplace_back(2);  // wrong size: replaced by zeros
  const auto decision = router.decide(garbage);
  EXPECT_FALSE(decision.sanitize.clean());
  EXPECT_GE(decision.sanitize.non_finite_entries, 1);
  EXPECT_GE(decision.sanitize.negative_entries, 1);
  EXPECT_GE(decision.sanitize.clamped_entries, 1);
  EXPECT_NE(decision.rung, Rung::kDropTraffic);
  EXPECT_GT(decision.routed_demand, 0.0);

  // A size-mismatched demand matrix degrades to an empty (but decided)
  // request instead of an exception.
  RouteRequest mismatched;
  mismatched.graph = &g;
  mismatched.demand = traffic::DemandMatrix(n + 1);
  const auto empty = router.decide(mismatched);
  EXPECT_TRUE(empty.sanitize.size_mismatch);
  EXPECT_DOUBLE_EQ(empty.routed_demand, 0.0);
}

TEST(RobustRouter, TopoChangeFaultInvalidatesLastKnownGood) {
  FaultGuard guard;
  util::Rng rng(7);
  core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
  RouterConfig config = test_router_config();
  config.lkg_refresh_every = 1;
  RobustRouter router(&policy, config);
  const auto g = topo::abilene();

  ASSERT_EQ(router.decide(make_request(g)).rung, Rung::kGnnPolicy);

  // The topology-change fault both fails rung 1 and drops the cached
  // last-known-good, so the decision lands on the static rung 3.
  util::FaultInjector::instance().arm("topo_change@1");
  const auto decision = router.decide(make_request(g));
  EXPECT_EQ(decision.rung, Rung::kInverseCapacity);
  ASSERT_GE(decision.attempts.size(), 2U);
  EXPECT_EQ(decision.attempts[0].cause, FailureCause::kTopologyChanged);
  EXPECT_EQ(decision.attempts[1].cause, FailureCause::kNotCached);
}

TEST(RobustRouter, ExportsServeMetricsWhenEnabled) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  registry.enable();
  {
    util::Rng rng(7);
    core::GnnPolicy policy(core::experiment_gnn_config(5), rng);
    RobustRouter router(&policy, test_router_config());
    const auto g = topo::abilene();
    router.decide(make_request(g));
    router.decide(make_request(g));
  }
  registry.disable();

  EXPECT_EQ(obs::Registry::instance().counter("serve/requests"), 2U);
  EXPECT_EQ(obs::Registry::instance().counter("serve/rung/gnn_policy"), 2U);
  EXPECT_EQ(obs::Registry::instance().counter("serve/topo_cache/miss"), 1U);
  registry.reset();
}

TEST(RobustRouter, RejectsBadStageFractions) {
  RouterConfig config = test_router_config();
  config.policy_fraction = 0.7;
  config.translate_fraction = 0.4;
  EXPECT_THROW(RobustRouter(nullptr, config), std::invalid_argument);
}

}  // namespace
}  // namespace gddr
