#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gddr::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all values hit
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(400.0, 100.0);
  EXPECT_NEAR(sum / n, 400.0, 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.2)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(37);
  Rng child = parent.split();
  // Child stream should not be identical to the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMeanVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  Rng rng(41);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, SingleSampleForEveryP) {
  for (const double p : {-10.0, 0.0, 13.7, 50.0, 100.0, 250.0}) {
    EXPECT_DOUBLE_EQ(percentile({4.5}, p), 4.5) << "p = " << p;
  }
}

TEST(Percentile, AllDuplicatesForEveryP) {
  const std::vector<double> v{7.0, 7.0, 7.0, 7.0};
  for (const double p : {0.0, 25.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(v, p), 7.0) << "p = " << p;
  }
}

TEST(Percentile, OutOfRangePClampsToExtremes) {
  // p < 0 used to flow a negative rank into a size_t cast (UB) and
  // p > 100 indexed past the sorted buffer; both now clamp.
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, -1e9), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 101.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1e9), 9.0);
  EXPECT_DOUBLE_EQ(percentile(v, std::nan("")), 1.0);  // NaN -> p = 0
}

TEST(Percentile, MatchesSortedVectorOracle) {
  // Property check against the definition on the sorted samples:
  // rank = p/100 * (n-1), linear interpolation between floor/ceil.
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_index(40));
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) {
      x = rng.uniform(-100.0, 100.0);
      if (rng.uniform(0.0, 1.0) < 0.3 && &x != v.data()) {
        x = v.front();  // force duplicates
      }
    }
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {0.0, 10.0, 33.3, 50.0, 75.0, 90.0, 100.0}) {
      const double rank =
          (p / 100.0) * static_cast<double>(sorted.size() - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const auto hi = std::min(lo + 1, sorted.size() - 1);
      const double frac = rank - static_cast<double>(lo);
      const double want = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
      EXPECT_DOUBLE_EQ(percentile(v, p), want)
          << "n = " << n << ", p = " << p;
      // Result lies within the sample range (the interpolation
      // x*(1-f) + x*f can round a single ulp past x, hence the slack).
      const double slack =
          1e-12 * std::max(std::abs(sorted.front()), std::abs(sorted.back()));
      EXPECT_GE(percentile(v, p), sorted.front() - slack);
      EXPECT_LE(percentile(v, p), sorted.back() + slack);
    }
    // Monotone in p, up to the same rounding slack.
    double prev = percentile(v, 0.0);
    for (double p = 5.0; p <= 100.0; p += 5.0) {
      const double cur = percentile(v, p);
      EXPECT_GE(cur, prev - 1e-12 * std::max(1.0, std::abs(prev)));
      prev = cur;
    }
  }
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(MovingAverage, WindowOne) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(moving_average(v, 1), v);
}

TEST(MovingAverage, SmoothsRamp) {
  const auto out = moving_average({0.0, 2.0, 4.0, 6.0}, 2);
  ASSERT_EQ(out.size(), 4U);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 5.0);
}

TEST(MovingAverage, WindowLargerThanSeriesClamped) {
  const auto out = moving_average({4.0, 8.0}, 10);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"col", "x"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.to_string();
  // Header row and data row should have equal lengths.
  const auto first_nl = s.find('\n');
  const auto second_nl = s.find('\n', first_nl + 1);
  const auto third_nl = s.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace gddr::util
