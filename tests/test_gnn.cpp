#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "gnn/graph_net.hpp"
#include "nn/optimizer.hpp"
#include "topo/zoo.hpp"
#include "util/rng.hpp"

namespace gddr::gnn {
namespace {

using nn::Tape;
using nn::Tensor;
using Var = Tape::Var;

GraphSpec line_graph() {
  // 0 -> 1 -> 2
  GraphSpec spec;
  spec.num_nodes = 3;
  spec.senders = {0, 1};
  spec.receivers = {1, 2};
  return spec;
}

GraphVars make_vars(Tape& tape, const GraphSpec& spec, int node_dim,
                    int edge_dim, int global_dim, util::Rng& rng) {
  Tensor nodes(spec.num_nodes, node_dim);
  Tensor edges(spec.num_edges(), edge_dim);
  Tensor globals(1, global_dim);
  for (float& v : nodes.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : edges.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : globals.data()) v = static_cast<float>(rng.uniform(-1, 1));
  return GraphVars{tape.constant(nodes), tape.constant(edges),
                   tape.constant(globals)};
}

TEST(GraphSpec, FromDiGraph) {
  const auto g = topo::abilene();
  const GraphSpec spec = GraphSpec::from(g);
  EXPECT_EQ(spec.num_nodes, 11);
  EXPECT_EQ(spec.num_edges(), 28);
  for (int e = 0; e < spec.num_edges(); ++e) {
    EXPECT_EQ(spec.senders[static_cast<size_t>(e)], g.edge(e).src);
    EXPECT_EQ(spec.receivers[static_cast<size_t>(e)], g.edge(e).dst);
  }
}

TEST(GnBlock, OutputShapes) {
  util::Rng rng(1);
  GnBlockConfig cfg;
  cfg.node_in = 2;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.node_out = 5;
  cfg.edge_out = 4;
  cfg.global_out = 3;
  GnBlock block(cfg, rng);
  Tape tape;
  const GraphSpec spec = line_graph();
  const GraphVars in = make_vars(tape, spec, 2, 1, 1, rng);
  const GraphVars out = block.forward(tape, spec, in);
  EXPECT_EQ(tape.value(out.nodes).rows(), 3);
  EXPECT_EQ(tape.value(out.nodes).cols(), 5);
  EXPECT_EQ(tape.value(out.edges).rows(), 2);
  EXPECT_EQ(tape.value(out.edges).cols(), 4);
  EXPECT_EQ(tape.value(out.globals).rows(), 1);
  EXPECT_EQ(tape.value(out.globals).cols(), 3);
}

TEST(GnBlock, ShapeMismatchThrows) {
  util::Rng rng(2);
  GnBlockConfig cfg;
  cfg.node_in = 2;
  GnBlock block(cfg, rng);
  Tape tape;
  const GraphSpec spec = line_graph();
  const GraphVars bad = make_vars(tape, spec, 3, 1, 1, rng);  // node_dim 3
  EXPECT_THROW(block.forward(tape, spec, bad), std::invalid_argument);
}

TEST(GnBlock, ParameterCountIndependentOfGraphSize) {
  util::Rng rng(3);
  GnBlockConfig cfg;
  GnBlock block(cfg, rng);
  const std::size_t count = block.num_parameters();
  // Forward on two very different graphs uses the same parameters — the
  // central generalisation claim of the paper (§IX).
  for (const auto& name : {"SmallRing", "GeantLike"}) {
    Tape tape;
    const GraphSpec spec = GraphSpec::from(topo::by_name(name));
    const GraphVars in = make_vars(tape, spec, cfg.node_in, cfg.edge_in,
                                   cfg.global_in, rng);
    const GraphVars out = block.forward(tape, spec, in);
    EXPECT_EQ(tape.value(out.nodes).rows(), spec.num_nodes);
  }
  EXPECT_EQ(block.num_parameters(), count);
}

TEST(GnBlock, MessagePassingPropagatesInformation) {
  // Changing node 0's input must change node 1's output (0 -> 1 edge) in a
  // single block, and node 2's only after two applications.
  util::Rng rng(4);
  GnBlockConfig cfg;
  cfg.node_in = 1;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.node_out = 1;
  cfg.edge_out = 1;
  cfg.global_out = 1;
  GnBlock block(cfg, rng);
  const GraphSpec spec = line_graph();

  auto run = [&](float node0_feat) {
    Tape tape;
    Tensor nodes(3, 1);
    nodes.at(0, 0) = node0_feat;
    nodes.at(1, 0) = 0.3F;
    nodes.at(2, 0) = -0.2F;
    const GraphVars in{tape.constant(nodes), tape.constant(Tensor(2, 1)),
                       tape.constant(Tensor(1, 1))};
    const GraphVars out = block.forward(tape, spec, in);
    return std::pair<float, float>{tape.value(out.nodes).at(1, 0),
                                   tape.value(out.nodes).at(2, 0)};
  };
  const auto [n1_a, n2_a] = run(0.9F);
  const auto [n1_b, n2_b] = run(-0.9F);
  EXPECT_NE(n1_a, n1_b) << "neighbour must see the change";
  // Node 2 sees node 0 only through the global attribute path in one step;
  // with the global update included the value may change, so we don't
  // assert equality here — only that the direct neighbour changed.
}

TEST(GnBlock, PermutationEquivariance) {
  // Relabelling the nodes (and renumbering senders/receivers accordingly)
  // must permute node outputs and leave edge outputs unchanged.
  util::Rng rng(5);
  GnBlockConfig cfg;
  cfg.node_in = 2;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.node_out = 3;
  cfg.edge_out = 3;
  cfg.global_out = 3;
  GnBlock block(cfg, rng);

  GraphSpec spec;
  spec.num_nodes = 4;
  spec.senders = {0, 1, 2, 3};
  spec.receivers = {1, 2, 3, 0};

  util::Rng frng(6);
  Tensor nodes(4, 2);
  for (float& v : nodes.data()) v = static_cast<float>(frng.uniform(-1, 1));
  Tensor edges(4, 1);
  for (float& v : edges.data()) v = static_cast<float>(frng.uniform(-1, 1));
  Tensor globals(1, 1, 0.5F);

  // Permutation pi: old -> new.
  const std::vector<int> pi{2, 0, 3, 1};
  GraphSpec pspec;
  pspec.num_nodes = 4;
  for (int e = 0; e < 4; ++e) {
    pspec.senders.push_back(pi[static_cast<size_t>(spec.senders[static_cast<size_t>(e)])]);
    pspec.receivers.push_back(
        pi[static_cast<size_t>(spec.receivers[static_cast<size_t>(e)])]);
  }
  Tensor pnodes(4, 2);
  for (int v = 0; v < 4; ++v) {
    for (int c = 0; c < 2; ++c) {
      pnodes.at(pi[static_cast<size_t>(v)], c) = nodes.at(v, c);
    }
  }

  Tape t1;
  const GraphVars out1 = block.forward(
      t1, spec,
      GraphVars{t1.constant(nodes), t1.constant(edges),
                t1.constant(globals)});
  Tape t2;
  const GraphVars out2 = block.forward(
      t2, pspec,
      GraphVars{t2.constant(pnodes), t2.constant(edges),
                t2.constant(globals)});

  for (int e = 0; e < 4; ++e) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(t1.value(out1.edges).at(e, c),
                  t2.value(out2.edges).at(e, c), 1e-5);
    }
  }
  for (int v = 0; v < 4; ++v) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(t1.value(out1.nodes).at(v, c),
                  t2.value(out2.nodes).at(pi[static_cast<size_t>(v)], c),
                  1e-5);
    }
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(t1.value(out1.globals).at(0, c),
                t2.value(out2.globals).at(0, c), 1e-5);
  }
}

TEST(IndependentBlock, NoCrossNodeMixing) {
  util::Rng rng(7);
  IndependentConfig cfg;
  cfg.node_in = 1;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.node_out = 2;
  cfg.edge_out = 2;
  cfg.global_out = 2;
  IndependentBlock block(cfg, rng);
  auto run = [&](float node0) {
    Tape tape;
    Tensor nodes(2, 1);
    nodes.at(0, 0) = node0;
    nodes.at(1, 0) = 0.4F;
    const GraphVars out = block.forward(
        tape, GraphVars{tape.constant(nodes), tape.constant(Tensor(1, 1)),
                        tape.constant(Tensor(1, 1))});
    return tape.value(out.nodes).at(1, 0);
  };
  EXPECT_FLOAT_EQ(run(1.0F), run(-1.0F));
}

TEST(EncodeProcessDecode, OutputShapesMatchConfig) {
  util::Rng rng(8);
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 10;
  cfg.edge_in = 3;
  cfg.global_in = 1;
  cfg.node_out = 1;
  cfg.edge_out = 1;
  cfg.global_out = 2;
  EncodeProcessDecode net(cfg, rng);
  Tape tape;
  const GraphSpec spec = GraphSpec::from(topo::abilene());
  const GraphVars in = make_vars(tape, spec, 10, 3, 1, rng);
  const GraphVars out = net.forward(tape, spec, in);
  EXPECT_EQ(tape.value(out.edges).rows(), 28);
  EXPECT_EQ(tape.value(out.edges).cols(), 1);
  EXPECT_EQ(tape.value(out.globals).cols(), 2);
}

TEST(EncodeProcessDecode, MoreStepsReachFurther) {
  // On a 5-node path graph, information from node 0 reaches node 4 only
  // with enough message-passing steps.
  util::Rng rng(9);
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 1;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.node_out = 1;
  cfg.steps = 1;
  // Use a graph with NO global shortcut: impossible — the GN global
  // aggregates everything in one step.  Instead verify steps change the
  // function: different step counts give different outputs.
  EncodeProcessDecode one(cfg, rng);
  util::Rng rng2(9);
  cfg.steps = 4;
  EncodeProcessDecode four(cfg, rng2);  // same init sequence
  const GraphSpec spec = line_graph();
  util::Rng frng(10);
  Tape t1;
  const GraphVars in1 = make_vars(t1, spec, 1, 1, 1, frng);
  const GraphVars o1 = one.forward(t1, spec, in1);
  util::Rng frng2(10);
  Tape t2;
  const GraphVars in2 = make_vars(t2, spec, 1, 1, 1, frng2);
  const GraphVars o2 = four.forward(t2, spec, in2);
  EXPECT_NE(t1.value(o1.nodes).at(2, 0), t2.value(o2.nodes).at(2, 0));
}

TEST(EncodeProcessDecode, BadStepsThrows) {
  util::Rng rng(11);
  EncodeProcessDecodeConfig cfg;
  cfg.steps = 0;
  EXPECT_THROW(EncodeProcessDecode(cfg, rng), std::invalid_argument);
}

TEST(EncodeProcessDecode, GradientsReachAllParameters) {
  util::Rng rng(12);
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 2;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.latent = 8;
  cfg.steps = 2;
  EncodeProcessDecode net(cfg, rng);
  const auto params = net.parameters();
  Tape tape;
  const GraphSpec spec = GraphSpec::from(topo::abilene());
  const GraphVars in = make_vars(tape, spec, 2, 1, 1, rng);
  const GraphVars out = net.forward(tape, spec, in);
  const Var loss = tape.add(
      tape.sum_all(tape.square(out.edges)),
      tape.add(tape.sum_all(tape.square(out.nodes)),
               tape.sum_all(tape.square(out.globals))));
  nn::zero_grads(params);
  tape.backward(loss);
  int zero_grad_params = 0;
  for (const auto* p : params) {
    if (p->grad.squared_norm() == 0.0) ++zero_grad_params;
  }
  // Every MLP weight matrix should receive gradient (biases of dead relu
  // units can be zero, so allow a small number of zero-grad tensors).
  EXPECT_LE(zero_grad_params, static_cast<int>(params.size()) / 4);
}

TEST(EncodeProcessDecode, LearnsEdgeSumTask) {
  // Supervised toy task: edge target = sum of endpoint node features.
  // The GNN must drive the loss down by an order of magnitude.
  util::Rng rng(13);
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 1;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.latent = 16;
  cfg.steps = 2;
  EncodeProcessDecode net(cfg, rng);
  nn::Adam adam(0.01);
  const auto params = net.parameters();
  const GraphSpec spec = GraphSpec::from(topo::abilene());

  util::Rng data_rng(14);
  double first = 0.0;
  double last = 0.0;
  for (int iter = 0; iter < 300; ++iter) {
    Tensor nodes(spec.num_nodes, 1);
    for (float& v : nodes.data()) {
      v = static_cast<float>(data_rng.uniform(-1, 1));
    }
    Tensor target(spec.num_edges(), 1);
    for (int e = 0; e < spec.num_edges(); ++e) {
      target.at(e, 0) =
          nodes.at(spec.senders[static_cast<size_t>(e)], 0) +
          nodes.at(spec.receivers[static_cast<size_t>(e)], 0);
    }
    Tape tape;
    const GraphVars out = net.forward(
        tape, spec,
        GraphVars{tape.constant(nodes),
                  tape.constant(Tensor(spec.num_edges(), 1)),
                  tape.constant(Tensor(1, 1))});
    const Var loss = tape.mean_all(
        tape.square(tape.sub(out.edges, tape.constant(target))));
    nn::zero_grads(params);
    tape.backward(loss);
    adam.step(params);
    const double l = tape.value(loss).at(0, 0);
    if (iter == 0) first = l;
    last = l;
  }
  EXPECT_LT(last, first / 10.0);
}

TEST(EncodeProcessDecode, SameModelRunsOnDifferentTopologies) {
  // The paper's transfer property: one parameter set, many graphs.
  util::Rng rng(15);
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 2;
  EncodeProcessDecode net(cfg, rng);
  for (const auto& name : topo::catalogue_names()) {
    const GraphSpec spec = GraphSpec::from(topo::by_name(name));
    Tape tape;
    util::Rng frng(16);
    const GraphVars in = make_vars(tape, spec, 2, 1, 1, frng);
    const GraphVars out = net.forward(tape, spec, in);
    EXPECT_EQ(tape.value(out.edges).rows(), spec.num_edges()) << name;
  }
}

// Stacks `batch` copies of per-copy inputs into the row layout
// BatchedGraphSpec expects: copy b's rows at [b*N, (b+1)*N), but with
// *different* values per copy so the test can tell copies apart.
GraphVars make_stacked_vars(Tape& tape, const GraphSpec& base, int batch,
                            int node_dim, int edge_dim, int global_dim,
                            std::vector<GraphVars>& per_copy,
                            std::deque<Tape>& copy_tapes, util::Rng& rng) {
  Tensor nodes(base.num_nodes * batch, node_dim);
  Tensor edges(base.num_edges() * batch, edge_dim);
  Tensor globals(batch, global_dim);
  for (float& v : nodes.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : edges.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : globals.data()) v = static_cast<float>(rng.uniform(-1, 1));

  copy_tapes.resize(static_cast<size_t>(batch));
  per_copy.clear();
  for (int b = 0; b < batch; ++b) {
    Tensor n(base.num_nodes, node_dim);
    Tensor e(base.num_edges(), edge_dim);
    Tensor g(1, global_dim);
    for (int r = 0; r < base.num_nodes; ++r) {
      for (int c = 0; c < node_dim; ++c) {
        n.at(r, c) = nodes.at(b * base.num_nodes + r, c);
      }
    }
    for (int r = 0; r < base.num_edges(); ++r) {
      for (int c = 0; c < edge_dim; ++c) {
        e.at(r, c) = edges.at(b * base.num_edges() + r, c);
      }
    }
    for (int c = 0; c < global_dim; ++c) g.at(0, c) = globals.at(b, c);
    Tape& t = copy_tapes[static_cast<size_t>(b)];
    per_copy.push_back(
        GraphVars{t.constant(n), t.constant(e), t.constant(g)});
  }
  return GraphVars{tape.constant(nodes), tape.constant(edges),
                   tape.constant(globals)};
}

void expect_rows_bit_identical(const Tensor& stacked, const Tensor& solo,
                               int row_offset, const char* what) {
  ASSERT_EQ(stacked.cols(), solo.cols());
  for (int r = 0; r < solo.rows(); ++r) {
    for (int c = 0; c < solo.cols(); ++c) {
      // EXPECT_EQ on float demands exact bit-level agreement (NaN aside);
      // approximate closeness would hide a reordered accumulation.
      EXPECT_EQ(stacked.at(row_offset + r, c), solo.at(r, c))
          << what << " row " << r << " col " << c;
    }
  }
}

TEST(BatchedGraphSpec, StacksDisjointCopies) {
  const GraphSpec base = GraphSpec::from(topo::abilene());
  const BatchedGraphSpec bspec = BatchedGraphSpec::from(base, 3);
  EXPECT_EQ(bspec.batch, 3);
  EXPECT_EQ(bspec.base_nodes, base.num_nodes);
  EXPECT_EQ(bspec.base_edges, base.num_edges());
  EXPECT_EQ(bspec.spec.num_nodes, base.num_nodes * 3);
  EXPECT_EQ(bspec.spec.num_edges(), base.num_edges() * 3);
  for (int b = 0; b < 3; ++b) {
    for (int e = 0; e < base.num_edges(); ++e) {
      const auto idx = static_cast<size_t>(b * base.num_edges() + e);
      EXPECT_EQ(bspec.spec.senders[idx],
                base.senders[static_cast<size_t>(e)] + b * base.num_nodes);
      EXPECT_EQ(bspec.spec.receivers[idx],
                base.receivers[static_cast<size_t>(e)] + b * base.num_nodes);
      EXPECT_EQ((*bspec.edge_graph_ids)[idx], b);
    }
    for (int n = 0; n < base.num_nodes; ++n) {
      EXPECT_EQ((*bspec.node_graph_ids)[static_cast<size_t>(
                    b * base.num_nodes + n)],
                b);
    }
  }
  EXPECT_THROW(BatchedGraphSpec::from(base, 0), std::invalid_argument);
}

// The serving engine's batched inference is only admissible because the
// stacked forward is *bit-identical* per copy — a decision served from a
// batch must not depend on who it shared the batch with.
TEST(GnBlock, BatchedForwardBitIdenticalToPerCopyForwards) {
  util::Rng rng(21);
  GnBlockConfig cfg;
  cfg.node_in = 3;
  cfg.edge_in = 2;
  cfg.global_in = 2;
  cfg.node_out = 7;
  cfg.edge_out = 5;
  cfg.global_out = 4;
  GnBlock block(cfg, rng);

  const GraphSpec base = GraphSpec::from(topo::abilene());
  const int batch = 4;
  const BatchedGraphSpec bspec = BatchedGraphSpec::from(base, batch);

  Tape stacked_tape;
  std::vector<GraphVars> per_copy;
  std::deque<Tape> copy_tapes;
  util::Rng frng(22);
  const GraphVars in =
      make_stacked_vars(stacked_tape, base, batch, 3, 2, 2, per_copy,
                        copy_tapes, frng);
  const GraphVars out = block.forward_batched(stacked_tape, bspec, in);
  const Tensor& nodes = stacked_tape.value(out.nodes);
  const Tensor& edges = stacked_tape.value(out.edges);
  const Tensor& globals = stacked_tape.value(out.globals);
  ASSERT_EQ(globals.rows(), batch);

  for (int b = 0; b < batch; ++b) {
    Tape& t = copy_tapes[static_cast<size_t>(b)];
    const GraphVars solo =
        block.forward(t, base, per_copy[static_cast<size_t>(b)]);
    expect_rows_bit_identical(nodes, t.value(solo.nodes),
                              b * base.num_nodes, "nodes");
    expect_rows_bit_identical(edges, t.value(solo.edges),
                              b * base.num_edges(), "edges");
    expect_rows_bit_identical(globals, t.value(solo.globals), b, "globals");
  }
}

TEST(EncodeProcessDecode, BatchedForwardBitIdenticalToPerCopyForwards) {
  util::Rng rng(23);
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 2;
  cfg.steps = 3;
  EncodeProcessDecode net(cfg, rng);

  const GraphSpec base = GraphSpec::from(topo::nsfnet());
  const int batch = 3;
  const BatchedGraphSpec bspec = BatchedGraphSpec::from(base, batch);

  Tape stacked_tape;
  std::vector<GraphVars> per_copy;
  std::deque<Tape> copy_tapes;
  util::Rng frng(24);
  const GraphVars in = make_stacked_vars(stacked_tape, base, batch, 2, 1, 1,
                                         per_copy, copy_tapes, frng);
  const GraphVars out = net.forward_batched(stacked_tape, bspec, in);
  const Tensor& edges = stacked_tape.value(out.edges);

  for (int b = 0; b < batch; ++b) {
    Tape& t = copy_tapes[static_cast<size_t>(b)];
    const GraphVars solo =
        net.forward(t, base, per_copy[static_cast<size_t>(b)]);
    expect_rows_bit_identical(edges, t.value(solo.edges),
                              b * base.num_edges(), "decoded edges");
  }
}

}  // namespace
}  // namespace gddr::gnn
