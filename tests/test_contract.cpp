// Tests for the debug-contract invariant layer (util/contract.hpp) and the
// per-subsystem `*_invariants` validators.
//
// The suite is built in BOTH configurations of the CI matrix:
//  * default (GDDR_CHECK off) — proves the macros compile out completely:
//    no check is counted, no side effect of a condition runs, and a whole
//    softmin + simplex + tape pass evaluates zero contracts;
//  * -DGDDR_CHECK=ON — proves violations throw ContractViolation carrying
//    the expression, label path and offending values, and that one
//    deliberately broken invariant per subsystem is caught.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "graph/digraph.hpp"
#include "graph/graph_invariants.hpp"
#include "lp/lp_invariants.hpp"
#include "lp/simplex.hpp"
#include "mcf/mcf_invariants.hpp"
#include "mcf/optimal.hpp"
#include "nn/nn_invariants.hpp"
#include "nn/tape.hpp"
#include "rl/rl_invariants.hpp"
#include "routing/routing_invariants.hpp"
#include "routing/softmin.hpp"
#include "util/contract.hpp"

namespace {

using gddr::util::ContractViolation;
namespace contract = gddr::util::contract;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Small strongly connected test graph: a 4-cycle with chords.
gddr::graph::DiGraph diamond() {
  gddr::graph::DiGraph g(4);
  g.add_bidirectional(0, 1, 10.0);
  g.add_bidirectional(1, 2, 10.0);
  g.add_bidirectional(2, 3, 10.0);
  g.add_bidirectional(3, 0, 10.0);
  g.add_bidirectional(0, 2, 10.0);
  return g;
}

// ---------------------------------------------------------------------------
// Macro semantics: compile-out vs. checked
// ---------------------------------------------------------------------------

TEST(ContractMacros, ConditionEvaluationMatchesBuildMode) {
  contract::reset_checks_evaluated();
  int evaluated = 0;
  GDDR_REQUIRE((++evaluated, true), "test/require");
  GDDR_ENSURE((++evaluated, true), "test/ensure");
  GDDR_INVARIANT((++evaluated, true), "test/invariant");
  GDDR_VALIDATE(++evaluated);
  if (contract::enabled()) {
    EXPECT_EQ(evaluated, 4);
    EXPECT_EQ(contract::checks_evaluated(), 4U);
  } else {
    // Compiled out: the conditions were never evaluated and the counter
    // never moved — the zero-overhead guarantee.
    EXPECT_EQ(evaluated, 0);
    EXPECT_EQ(contract::checks_evaluated(), 0U);
  }
}

TEST(ContractMacros, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW({
    GDDR_REQUIRE(1 + 1 == 2, "test/pass");
    GDDR_ENSURE(true, "test/pass", "x", 1);
    GDDR_INVARIANT(2 > 1, "test/pass", "a", 2, "b", 1);
  });
}

TEST(ContractMacros, ViolationCarriesExpressionLabelAndValues) {
  if (!contract::enabled()) GTEST_SKIP() << "contracts compiled out";
  [[maybe_unused]] const double sum = 0.5;
  [[maybe_unused]] const int t = 3;
  try {
    GDDR_ENSURE(sum > 0.9, "routing/test/row", "sum", sum, "t", t);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "ENSURE");
    EXPECT_EQ(v.label(), "routing/test/row");
    EXPECT_NE(v.expression().find("sum > 0.9"), std::string::npos);
    EXPECT_NE(v.values().find("sum=0.5"), std::string::npos);
    EXPECT_NE(v.values().find("t=3"), std::string::npos);
    EXPECT_GT(v.line(), 0);
    const std::string what = v.what();
    EXPECT_NE(what.find("routing/test/row"), std::string::npos);
    EXPECT_NE(what.find("sum > 0.9"), std::string::npos);
  }
}

TEST(ContractMacros, RequireEnsureInvariantReportTheirKind) {
  if (!contract::enabled()) GTEST_SKIP() << "contracts compiled out";
  try {
    GDDR_REQUIRE(false, "test/kind");
    FAIL();
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "REQUIRE");
  }
  try {
    GDDR_INVARIANT(false, "test/kind");
    FAIL();
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "INVARIANT");
  }
}

TEST(ContractMacros, ViolationIsLogicErrorNotRuntimeError) {
  // The solver fallback chain catches std::runtime_error subclasses; a
  // contract violation must never be swallowed by it.
  if (!contract::enabled()) GTEST_SKIP() << "contracts compiled out";
  bool caught_as_logic = false;
  try {
    GDDR_INVARIANT(false, "test/hierarchy");
  } catch (const std::runtime_error&) {
    FAIL() << "ContractViolation must not be a runtime_error";
  } catch (const std::logic_error&) {
    caught_as_logic = true;
  }
  EXPECT_TRUE(caught_as_logic);
}

// The whole-stack zero-overhead proof: exercising the instrumented layers
// in a non-GDDR_CHECK build must evaluate exactly zero contracts.
TEST(ContractMacros, InstrumentedStackEvaluatesZeroChecksWhenDisabled) {
  if (contract::enabled()) GTEST_SKIP() << "checked build";
  contract::reset_checks_evaluated();

  const auto g = diamond();
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);
  (void)gddr::routing::softmin_routing(g, weights);

  gddr::traffic::DemandMatrix dm(g.num_nodes());
  dm.set(0, 2, 1.0);
  dm.set(1, 3, 2.0);
  (void)gddr::mcf::solve_optimal(g, dm);

  gddr::nn::Tape tape;
  gddr::nn::Tensor x(1, 1);
  x.at(0, 0) = 2.0F;
  tape.backward(tape.square(tape.constant(x)));

  EXPECT_EQ(contract::checks_evaluated(), 0U);
}

TEST(ContractMacros, InstrumentedStackEvaluatesChecksWhenEnabled) {
  if (!contract::enabled()) GTEST_SKIP() << "contracts compiled out";
  contract::reset_checks_evaluated();
  const auto g = diamond();
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);
  EXPECT_NO_THROW((void)gddr::routing::softmin_routing(g, weights));
  gddr::traffic::DemandMatrix dm(g.num_nodes());
  dm.set(0, 2, 1.0);
  EXPECT_NO_THROW((void)gddr::mcf::solve_optimal(g, dm));
  EXPECT_GT(contract::checks_evaluated(), 0U);
}

// ---------------------------------------------------------------------------
// Shared predicates
// ---------------------------------------------------------------------------

TEST(ContractPredicates, FirstNonfinite) {
  const std::vector<double> ok = {0.0, -1.5, 3.0};
  EXPECT_FALSE(contract::first_nonfinite(ok).has_value());
  const std::vector<double> bad = {0.0, kNan, 3.0};
  ASSERT_TRUE(contract::first_nonfinite(bad).has_value());
  EXPECT_EQ(*contract::first_nonfinite(bad), 1U);
  const std::vector<float> badf = {1.0F,
                                   std::numeric_limits<float>::infinity()};
  ASSERT_TRUE(contract::first_nonfinite(badf).has_value());
  EXPECT_EQ(*contract::first_nonfinite(badf), 1U);
}

TEST(ContractPredicates, RowStochastic) {
  double sum = 0.0;
  EXPECT_TRUE(contract::row_stochastic(std::vector<double>{0.25, 0.75}, 1e-9,
                                       &sum));
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_FALSE(
      contract::row_stochastic(std::vector<double>{0.25, 0.5}, 1e-9, &sum));
  EXPECT_NEAR(sum, 0.75, 1e-12);
  // Entries outside [0, 1] fail even when the sum is right.
  EXPECT_FALSE(
      contract::row_stochastic(std::vector<double>{1.5, -0.5}, 1e-9));
}

TEST(ContractPredicates, DescribeFormatsPairs) {
  EXPECT_EQ(contract::describe(), "");
  EXPECT_EQ(contract::describe("x", 1), "x=1");
  EXPECT_EQ(contract::describe("x", 1, "y", "two"), "x=1, y=two");
}

// ---------------------------------------------------------------------------
// Deliberately broken invariants, one per subsystem
// ---------------------------------------------------------------------------

TEST(GraphInvariants, CyclicMaskedSubgraphCaught) {
  gddr::graph::DiGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  const std::vector<bool> all(2, true);
  try {
    gddr::graph::check_acyclic(g, all, "test/graph/dag");
    FAIL() << "cycle not caught";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.label(), "test/graph/dag");
    EXPECT_NE(v.expression().find("acyclic"), std::string::npos);
  }
  // Breaking the cycle passes.
  EXPECT_NO_THROW(
      gddr::graph::check_acyclic(g, {true, false}, "test/graph/dag"));
}

TEST(GraphInvariants, BadTopologicalOrderCaught) {
  gddr::graph::DiGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const std::vector<bool> all(2, true);
  EXPECT_NO_THROW(
      gddr::graph::check_topological_order(g, all, {0, 1, 2}, "test/order"));
  // Backward edge in the claimed order.
  EXPECT_THROW(
      gddr::graph::check_topological_order(g, all, {1, 0, 2}, "test/order"),
      ContractViolation);
  // Not a permutation.
  EXPECT_THROW(
      gddr::graph::check_topological_order(g, all, {0, 0, 2}, "test/order"),
      ContractViolation);
  EXPECT_THROW(
      gddr::graph::check_topological_order(g, all, {0, 1}, "test/order"),
      ContractViolation);
}

TEST(LpInvariants, InvalidBasisCaught) {
  EXPECT_NO_THROW(gddr::lp::check_basis({0, 2, 1}, 4, "test/lp/basis"));
  // Duplicate basic column.
  EXPECT_THROW(gddr::lp::check_basis({0, 2, 2}, 4, "test/lp/basis"),
               ContractViolation);
  // Out of range.
  EXPECT_THROW(gddr::lp::check_basis({0, 4}, 4, "test/lp/basis"),
               ContractViolation);
  EXPECT_THROW(gddr::lp::check_basis({-1}, 4, "test/lp/basis"),
               ContractViolation);
}

TEST(LpInvariants, NegativeRhsAndPivotOverrunCaught) {
  EXPECT_NO_THROW(gddr::lp::check_rhs_nonnegative(
      std::vector<double>{0.0, 1.0, -1e-9}, 1e-7, "test/lp/rhs"));
  try {
    gddr::lp::check_rhs_nonnegative(std::vector<double>{0.0, -0.5}, 1e-7,
                                    "test/lp/rhs");
    FAIL() << "negative RHS not caught";
  } catch (const ContractViolation& v) {
    EXPECT_NE(v.values().find("rhs=-0.5"), std::string::npos);
  }
  EXPECT_NO_THROW(gddr::lp::check_pivot_bound(10, 10, "test/lp/pivots"));
  EXPECT_THROW(gddr::lp::check_pivot_bound(11, 10, "test/lp/pivots"),
               ContractViolation);
}

TEST(McfInvariants, BrokenConservationCaught) {
  const auto g = diamond();
  gddr::traffic::DemandMatrix dm(g.num_nodes());
  dm.set(0, 2, 4.0);
  auto result = gddr::mcf::solve_optimal(g, dm);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.provenance, gddr::mcf::SolveProvenance::kExact);
  EXPECT_NO_THROW(gddr::mcf::check_flow_conservation(g, dm, result, 1e-6,
                                                     "test/mcf/cons"));
  // Steal a unit of flow from the first carrying edge: conservation breaks.
  auto broken = result;
  auto& row = broken.flow_by_dest[2];
  for (auto& f : row) {
    if (f > 0.5) {
      f -= 0.5;
      break;
    }
  }
  EXPECT_THROW(gddr::mcf::check_flow_conservation(g, dm, broken, 1e-6,
                                                  "test/mcf/cons"),
               ContractViolation);
}

TEST(McfInvariants, UmaxFlowMismatchCaught) {
  const auto g = diamond();
  gddr::traffic::DemandMatrix dm(g.num_nodes());
  dm.set(0, 2, 4.0);
  auto result = gddr::mcf::solve_optimal(g, dm);
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(
      gddr::mcf::check_umax_consistency(g, result, 1e-6, "test/mcf/umax"));
  auto broken = result;
  broken.u_max *= 2.0;  // claims twice the congestion its flows show
  EXPECT_THROW(
      gddr::mcf::check_umax_consistency(g, broken, 1e-6, "test/mcf/umax"),
      ContractViolation);
  broken.u_max = kNan;
  EXPECT_THROW(
      gddr::mcf::check_umax_consistency(g, broken, 1e-6, "test/mcf/umax"),
      ContractViolation);
}

TEST(RoutingInvariants, NonStochasticRowCaught) {
  const auto g = diamond();
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);
  auto routing = gddr::routing::softmin_routing(g, weights);
  EXPECT_NO_THROW(gddr::routing::check_softmin_routing(g, routing, 1e-9,
                                                       "test/routing"));
  // Halve one positive ratio: the row no longer sums to 1.
  for (gddr::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const double r = routing.ratio(0, 2, e);
    if (r > 0.0) {
      routing.set_ratio(0, 2, e, r * 0.5);
      break;
    }
  }
  try {
    gddr::routing::check_softmin_routing(g, routing, 1e-9, "test/routing");
    FAIL() << "non-stochastic row not caught";
  } catch (const ContractViolation& v) {
    EXPECT_NE(v.expression().find("row-stochastic"), std::string::npos);
  }
}

TEST(RoutingInvariants, CyclicRatioGraphCaught) {
  // Flow (0,2) routed 0 -> 1 -> 0 ... : a deliberate 2-cycle "DAG".
  gddr::graph::DiGraph g(3);
  const auto e01 = g.add_edge(0, 1, 1.0);
  const auto e10 = g.add_edge(1, 0, 1.0);
  const auto e12 = g.add_edge(1, 2, 1.0);
  gddr::routing::Routing routing(g.num_nodes(), g.num_edges());
  routing.set_ratio(0, 2, e01, 1.0);
  routing.set_ratio(0, 2, e10, 0.5);
  routing.set_ratio(0, 2, e12, 0.5);
  try {
    gddr::routing::check_softmin_routing(g, routing, 1e-9, "test/routing");
    FAIL() << "routing cycle not caught";
  } catch (const ContractViolation& v) {
    EXPECT_NE(v.expression().find("DAG"), std::string::npos);
  }
}

TEST(RoutingInvariants, RatiosForUnreachableSourceCaught) {
  // Node 3 has no outgoing edges: it cannot reach anything, so flow (3,2)
  // must carry no ratios.
  gddr::graph::DiGraph g(4);
  const auto e01 = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  gddr::routing::Routing routing(g.num_nodes(), g.num_edges());
  routing.set_ratio(3, 2, e01, 1.0);
  try {
    gddr::routing::check_softmin_routing(g, routing, 1e-9, "test/routing");
    FAIL() << "unreachable-source ratios not caught";
  } catch (const ContractViolation& v) {
    EXPECT_NE(v.expression().find("unreachable"), std::string::npos);
  }
}

TEST(NnInvariants, MismatchedGradShapeCaught) {
  const gddr::nn::Tensor value(2, 3);
  const gddr::nn::Tensor grad(3, 2);
  EXPECT_NO_THROW(
      gddr::nn::check_grad_shape(value, gddr::nn::Tensor(2, 3), "test/nn"));
  try {
    gddr::nn::check_grad_shape(value, grad, "test/nn");
    FAIL() << "grad shape mismatch not caught";
  } catch (const ContractViolation& v) {
    EXPECT_NE(v.values().find("2x3"), std::string::npos);
    EXPECT_NE(v.values().find("3x2"), std::string::npos);
  }
}

TEST(NnInvariants, NonFiniteTensorCaught) {
  gddr::nn::Tensor t(1, 3);
  EXPECT_NO_THROW(gddr::nn::check_finite(t, "test/nn/finite"));
  t.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  try {
    gddr::nn::check_finite(t, "test/nn/finite");
    FAIL() << "NaN not caught";
  } catch (const ContractViolation& v) {
    EXPECT_NE(v.values().find("index=1"), std::string::npos);
  }
}

TEST(RlInvariants, BrokenBootstrapFlagsCaught) {
  std::vector<gddr::rl::StepSample> samples(3);
  samples[0].done = true;
  samples[1].truncated = true;
  samples[1].bootstrap_value = 0.7;
  samples[2].done = true;
  EXPECT_NO_THROW(gddr::rl::check_rollout_flags(samples, "test/rl/flags"));

  // Truncated sample with a non-finite bootstrap.
  auto broken = samples;
  broken[1].bootstrap_value = kNan;
  EXPECT_THROW(gddr::rl::check_rollout_flags(broken, "test/rl/flags"),
               ContractViolation);

  // Bootstrap value smuggled onto a non-truncated sample.
  broken = samples;
  broken[0].bootstrap_value = 1.0;
  EXPECT_THROW(gddr::rl::check_rollout_flags(broken, "test/rl/flags"),
               ContractViolation);

  // Open segment tail: the final sample neither terminal nor truncated.
  broken = samples;
  broken[2].done = false;
  EXPECT_THROW(gddr::rl::check_rollout_flags(broken, "test/rl/flags"),
               ContractViolation);
}

TEST(RlInvariants, NonFiniteGaeAndLossesCaught) {
  std::vector<gddr::rl::StepSample> samples(1);
  samples[0].done = true;
  samples[0].advantage = 0.5;
  samples[0].return_ = 1.0;
  EXPECT_NO_THROW(gddr::rl::check_gae_outputs(samples, "test/rl/gae"));
  samples[0].advantage = kNan;
  EXPECT_THROW(gddr::rl::check_gae_outputs(samples, "test/rl/gae"),
               ContractViolation);

  gddr::rl::PpoIterationStats stats;
  EXPECT_NO_THROW(gddr::rl::check_finite_losses(stats, "test/rl/loss"));
  stats.value_loss = std::numeric_limits<double>::infinity();
  EXPECT_THROW(gddr::rl::check_finite_losses(stats, "test/rl/loss"),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Instrumented hot paths catch corruption end-to-end (checked builds)
// ---------------------------------------------------------------------------

TEST(ContractIntegration, TapeBackwardRunsCleanUnderContracts) {
  // The tape's node-order and grad-shape contracts must hold on a real
  // multi-op graph in every build mode.
  gddr::nn::Tape tape;
  gddr::nn::Tensor x(2, 2);
  x.at(0, 0) = 1.0F;
  x.at(0, 1) = 2.0F;
  x.at(1, 0) = 3.0F;
  x.at(1, 1) = 4.0F;
  const auto a = tape.constant(x);
  const auto b = tape.tanh(a);
  const auto c = tape.mul(b, b);
  EXPECT_NO_THROW(tape.backward(tape.mean_all(c)));
}

}  // namespace
