// Training observability: a process-wide metrics registry plus scoped
// wall-clock timers.
//
// The ROADMAP north-star ("as fast as the hardware allows") needs
// measurement before optimisation; this module is the yardstick every
// perf PR reports against.  It mirrors the per-phase logger that
// stable-baselines' PPO2 (the paper's training harness) ships and the
// per-block timing graph_nets-style stacks expose.
//
// Metric types:
//
//  * Counter   — monotonically increasing u64 (cache hits, LP pivots,
//                tape grad allocations).  Cumulative since enable().
//  * Gauge     — last-written double (current learning rate, per-worker
//                steps/s, minibatch-loss mean of the last update).
//  * Timer     — aggregate of ScopedTimer spans under one label:
//                count / total / min / max seconds on the steady clock.
//  * Histogram — fixed upper-bound buckets plus a +inf overflow bucket,
//                with total count and sum (LP pivots per solve).
//
// Labels are hierarchical slash-paths ("train/collect", "mcf/solve",
// "gnn/block/edge"); DESIGN.md §7 documents the taxonomy.
//
// Zero overhead when disabled (the default): every recording helper
// first reads one relaxed atomic flag — the same pattern as
// util::FaultInjector — and does no lock, no allocation and no clock
// read on the disabled path.  Enable explicitly via Registry::enable(),
// via `gddr_cli train --metrics <path>`, or by setting the GDDR_METRICS
// environment variable ("1" enables recording; any other non-zero value
// both enables recording and names the JSONL sink path) so benches and
// tests can turn metrics on without CLI plumbing.
//
// Thread safety: all mutation goes through one internal mutex, so
// workers of util::ThreadPool may record concurrently.  Recording is
// coarse (per phase / per solve / per backward), so the lock is never
// contended on a hot inner loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace gddr::obs {

namespace detail {
// The process-wide enabled flag lives outside the Registry so the hot
// probe below inlines to a single relaxed load — routing it through
// Registry::instance() would pay an out-of-line call plus the static
// local's init guard at every instrumentation site (measurably slow in
// GnBlock::forward).  Registry::enable()/disable() write it.
extern std::atomic<bool> g_enabled;
}  // namespace detail

struct TimerSnapshot {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
};

struct HistogramSnapshot {
  std::vector<double> upper_bounds;    // finite bucket bounds, ascending
  std::vector<std::uint64_t> counts;   // size upper_bounds.size() + 1;
                                       // last bucket counts values > all
                                       // finite bounds (+inf bucket)
  std::uint64_t count = 0;
  double sum = 0.0;
};

// Estimates the q-quantile (q in [0, 1]) of a histogram by linear
// interpolation inside the bucket the rank falls in, assuming
// non-negative observations (the first bucket's lower edge is 0).  A rank
// landing in the +inf overflow bucket is clamped to the largest finite
// bound — the strongest statement the snapshot supports.  Returns NaN for
// an empty histogram, an out-of-range q, or a bucketless snapshot.
double histogram_quantile(const HistogramSnapshot& h, double q);

// Point-in-time copy of every metric, sorted by name within each type.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, TimerSnapshot>> timers;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class Registry {
 public:
  // Global instance shared by every instrumentation point.  First use
  // honours GDDR_METRICS (see header comment).
  static Registry& instance();

  void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
  // Stops recording; already-recorded data stays readable via snapshot().
  void disable() {
    detail::g_enabled.store(false, std::memory_order_relaxed);
  }
  bool enabled() const {
    return detail::g_enabled.load(std::memory_order_relaxed);
  }

  // JSONL sink path named by GDDR_METRICS, or "" when the variable is
  // unset, disabled ("", "0") or a bare switch ("1", "on", "true").
  static std::string env_metrics_path();

  // Unconditional recording (callers normally go through the enabled()-
  // gated free helpers below).
  void add_counter(std::string_view name, std::uint64_t delta = 1)
      GDDR_EXCLUDES(mutex_);
  void set_gauge(std::string_view name, double value) GDDR_EXCLUDES(mutex_);
  // Defines a histogram's finite bucket upper bounds; idempotent (the
  // first definition wins).  observe() on an undefined name creates it
  // with kDefaultBuckets.
  void define_histogram(std::string_view name,
                        std::vector<double> upper_bounds)
      GDDR_EXCLUDES(mutex_);
  void observe(std::string_view name, double value) GDDR_EXCLUDES(mutex_);
  void record_span(std::string_view label, double seconds)
      GDDR_EXCLUDES(mutex_);

  // Current value of one counter; 0 when it has never been incremented.
  // Cheaper than snapshot() for tests and benches asserting on a single
  // metric.
  std::uint64_t counter(std::string_view name) const GDDR_EXCLUDES(mutex_);

  Snapshot snapshot() const GDDR_EXCLUDES(mutex_);
  // Drops every metric (counters restart from zero); the enabled flag is
  // untouched.
  void reset() GDDR_EXCLUDES(mutex_);

  static const std::vector<double>& default_buckets();

 private:
  Registry() = default;

  struct TimerStat {
    std::uint64_t count = 0;
    double total_s = 0.0;
    double min_s = 0.0;
    double max_s = 0.0;
  };
  struct HistogramStat {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  // obs/registry is the innermost rank of the lock table (DESIGN.md §13):
  // the caches, breaker and fault injector all export counters while
  // holding their own lock, so nothing may nest inside this one.
  mutable util::Mutex mutex_{util::LockRank::kRegistry, "obs/registry"};
  std::map<std::string, std::uint64_t, std::less<>> counters_
      GDDR_GUARDED_BY(mutex_);
  std::map<std::string, double, std::less<>> gauges_ GDDR_GUARDED_BY(mutex_);
  std::map<std::string, TimerStat, std::less<>> timers_
      GDDR_GUARDED_BY(mutex_);
  std::map<std::string, HistogramStat, std::less<>> histograms_
      GDDR_GUARDED_BY(mutex_);
};

// The enabled probe every hot path uses: one inlined relaxed atomic
// load, no function call.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Enabled-gated one-liners for instrumentation sites.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (enabled()) Registry::instance().add_counter(name, delta);
}
inline void gauge(std::string_view name, double value) {
  if (enabled()) Registry::instance().set_gauge(name, value);
}
inline void observe(std::string_view name, double value) {
  if (enabled()) Registry::instance().observe(name, value);
}

// RAII steady-clock span recorded under `label` when it ends.  Inactive
// (no clock read, no label copy) when metrics are disabled at
// construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view label) {
    if (!obs::enabled()) return;
    active_ = true;
    label_.assign(label);
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Records the span once and returns its length in seconds (0 when the
  // timer was inactive or already stopped).
  double stop();

 private:
  bool active_ = false;
  std::string label_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gddr::obs
