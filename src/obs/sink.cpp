#include "obs/sink.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/fs.hpp"
#include "util/table.hpp"

namespace gddr::obs {

namespace {

// Labels are slash-paths we mint ourselves, but escape defensively so a
// surprising name can never produce an invalid line.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // inf/NaN are not JSON
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void append_json_number(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

template <typename Pairs, typename AppendValue>
void append_json_object(std::string& out, const Pairs& pairs,
                        AppendValue&& append_value) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : pairs) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_value(out, value);
  }
  out += '}';
}

}  // namespace

std::string make_record(int iter, const Snapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"gddr.metrics.v1\",\"iter\":";
  out += std::to_string(iter);
  out += ",\"counters\":";
  append_json_object(out, snapshot.counters,
                     [](std::string& o, std::uint64_t v) {
                       append_json_number(o, v);
                     });
  out += ",\"gauges\":";
  append_json_object(out, snapshot.gauges, [](std::string& o, double v) {
    append_json_number(o, v);
  });
  out += ",\"timers\":";
  append_json_object(out, snapshot.timers,
                     [](std::string& o, const TimerSnapshot& t) {
                       o += "{\"count\":";
                       append_json_number(o, t.count);
                       o += ",\"total_s\":";
                       append_json_number(o, t.total_s);
                       o += ",\"min_s\":";
                       append_json_number(o, t.min_s);
                       o += ",\"max_s\":";
                       append_json_number(o, t.max_s);
                       o += '}';
                     });
  out += ",\"histograms\":";
  append_json_object(out, snapshot.histograms,
                     [](std::string& o, const HistogramSnapshot& h) {
                       o += "{\"upper_bounds\":[";
                       for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
                         if (i > 0) o += ',';
                         append_json_number(o, h.upper_bounds[i]);
                       }
                       o += "],\"counts\":[";
                       for (std::size_t i = 0; i < h.counts.size(); ++i) {
                         if (i > 0) o += ',';
                         append_json_number(o, h.counts[i]);
                       }
                       o += "],\"count\":";
                       append_json_number(o, h.count);
                       o += ",\"sum\":";
                       append_json_number(o, h.sum);
                       o += '}';
                     });
  out += '}';
  return out;
}

void JsonlSink::append(const std::string& line) {
  contents_ += line;
  contents_ += '\n';
  util::write_file_atomic(path_, contents_);
  lines_written_++;
}

std::string render_summary(const Snapshot& snapshot) {
  std::string out;
  if (!snapshot.timers.empty()) {
    auto timers = snapshot.timers;
    std::sort(timers.begin(), timers.end(), [](const auto& a, const auto& b) {
      return a.second.total_s > b.second.total_s;
    });
    util::Table table({"timer", "count", "total_s", "mean_s", "min_s",
                       "max_s"});
    for (const auto& [name, t] : timers) {
      const double mean = t.count > 0 ? t.total_s / static_cast<double>(t.count)
                                      : 0.0;
      table.add_row({name, std::to_string(t.count), util::fmt(t.total_s),
                     util::fmt(mean), util::fmt(t.min_s), util::fmt(t.max_s)});
    }
    out += "metrics: timers\n";
    out += table.to_string();
  }
  if (!snapshot.counters.empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.add_row({name, std::to_string(value)});
    }
    if (!out.empty()) out += '\n';
    out += "metrics: counters\n";
    out += table.to_string();
  }
  if (!snapshot.gauges.empty()) {
    util::Table table({"gauge", "value"});
    for (const auto& [name, value] : snapshot.gauges) {
      table.add_row({name, util::fmt(value)});
    }
    if (!out.empty()) out += '\n';
    out += "metrics: gauges\n";
    out += table.to_string();
  }
  if (!snapshot.histograms.empty()) {
    util::Table table({"histogram", "count", "sum", "mean"});
    for (const auto& [name, h] : snapshot.histograms) {
      const double mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      table.add_row({name, std::to_string(h.count), util::fmt(h.sum),
                     util::fmt(mean)});
    }
    if (!out.empty()) out += '\n';
    out += "metrics: histograms\n";
    out += table.to_string();
  }
  return out;
}

MetricsOptions consume_metrics_flag(int& argc, char** argv) {
  MetricsOptions options;
  options.path = Registry::env_metrics_path();

  // Two passes (path then cadence) keep the removal logic identical to
  // consume_workers_flag for each flag.
  const auto consume = [&](const char* flag, const char* with_eq,
                           std::string& out_value) {
    const std::size_t eq_len = std::string_view(with_eq).size();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string value;
      int consumed = 0;
      if (arg == flag) {
        if (i + 1 >= argc) {
          throw std::invalid_argument(std::string(flag) + " expects a value");
        }
        value = argv[i + 1];
        consumed = 2;
      } else if (arg.rfind(with_eq, 0) == 0) {
        value = arg.substr(eq_len);
        consumed = 1;
      } else {
        continue;
      }
      out_value = value;
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      return true;
    }
    return false;
  };

  std::string path_value;
  if (consume("--metrics", "--metrics=", path_value)) {
    if (path_value.empty()) {
      throw std::invalid_argument("--metrics expects a file path");
    }
    options.path = path_value;
  }
  std::string every_value;
  if (consume("--metrics-every", "--metrics-every=", every_value)) {
    const long parsed = std::strtol(every_value.c_str(), nullptr, 10);
    if (parsed <= 0) {
      throw std::invalid_argument(
          "--metrics-every expects a positive integer");
    }
    options.every = static_cast<int>(parsed);
  }
  return options;
}

bool apply(const MetricsOptions& options) {
  if (options.path.empty()) return Registry::instance().enabled();
  Registry::instance().enable();
  return true;
}

std::string finish(const MetricsOptions& options) {
  if (!Registry::instance().enabled()) return "";
  const Snapshot snapshot = Registry::instance().snapshot();
  if (!options.path.empty()) {
    JsonlSink sink(options.path);
    sink.append(make_record(0, snapshot));
  }
  return render_summary(snapshot);
}

}  // namespace gddr::obs
