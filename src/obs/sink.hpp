// Structured outputs for the metrics registry: a crash-safe JSONL sink,
// the per-iteration JSON record format, and the end-of-run summary table.
//
// JSONL record schema ("gddr.metrics.v1", one object per line — full
// field list in DESIGN.md §7):
//
//   {"schema":"gddr.metrics.v1","iter":3,
//    "counters":{"mcf/cache/hit":120,...},
//    "gauges":{"train/loss/total":0.41,...},
//    "timers":{"train/collect":{"count":4,"total_s":1.2,
//                               "min_s":0.28,"max_s":0.33},...},
//    "histograms":{"lp/pivots_per_solve":{"upper_bounds":[...],
//                  "counts":[...],"count":17,"sum":412.0},...}}
//
// Values are cumulative since enable() (Prometheus-style), so any record
// is self-contained and per-iteration deltas are a subtraction away.
// Non-finite doubles serialise as null to keep each line valid JSON.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace gddr::obs {

// One "gddr.metrics.v1" line (no trailing newline) for `snapshot` taken
// after training iteration `iter` (0-based).
std::string make_record(int iter, const Snapshot& snapshot);

// Crash-safe append-per-iteration writer: keeps the accumulated lines in
// memory and rewrites the whole file through util::write_file_atomic on
// every append, so a reader (or a crash) always sees complete lines.
// Records stay small (one per PPO iteration), so the rewrite cost is
// noise next to the iteration itself.
class JsonlSink {
 public:
  explicit JsonlSink(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  // Appends `line` (newline added) and rewrites the file atomically.
  // Throws util::IoError on failure.
  void append(const std::string& line);

  std::size_t lines_written() const { return lines_written_; }

 private:
  std::string path_;
  std::string contents_;
  std::size_t lines_written_ = 0;
};

// End-of-run summary: timers (sorted by total time), counters and gauges
// rendered through util::Table.  Empty string when nothing was recorded.
std::string render_summary(const Snapshot& snapshot);

// CLI plumbing shared by gddr_cli and the benches, mirroring
// util::consume_workers_flag.
struct MetricsOptions {
  std::string path;   // empty: metrics stay disabled (unless GDDR_METRICS)
  int every = 1;      // emit a JSONL record every N iterations
};

// Scans argv for "--metrics PATH" / "--metrics=PATH" and
// "--metrics-every N" / "--metrics-every=N", removing them from
// argc/argv.  Falls back to GDDR_METRICS for the path when the flag is
// absent.  Throws std::invalid_argument on malformed values.
MetricsOptions consume_metrics_flag(int& argc, char** argv);

// Enables the registry when `options` names a sink path, returning true
// if metrics are on for this run.
bool apply(const MetricsOptions& options);

// One-shot epilogue for the benches: when metrics are enabled, writes a
// single cumulative record to options.path (if non-empty) and returns
// the rendered summary table.  Empty string when metrics are off or
// nothing was recorded.
std::string finish(const MetricsOptions& options);

}  // namespace gddr::obs
