#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace gddr::obs {

namespace {

// Returns the raw GDDR_METRICS value, or "" when unset.
std::string env_raw() {
  const char* v = std::getenv("GDDR_METRICS");
  return v == nullptr ? std::string() : std::string(v);
}

bool env_is_off(const std::string& v) { return v.empty() || v == "0"; }

bool env_is_bare_switch(const std::string& v) {
  return v == "1" || v == "on" || v == "true";
}

}  // namespace

namespace detail {
// Honouring GDDR_METRICS here (dynamic init, before main) keeps the
// inline enabled() probe a plain load with no lazy-init logic.
std::atomic<bool> g_enabled{!env_is_off(env_raw())};
}  // namespace detail

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  return *registry;
}

std::string Registry::env_metrics_path() {
  const std::string v = env_raw();
  if (env_is_off(v) || env_is_bare_switch(v)) return {};
  return v;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  const util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set_gauge(std::string_view name, double value) {
  const util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

const std::vector<double>& Registry::default_buckets() {
  static const std::vector<double> buckets = {1.0,    2.0,    5.0,    10.0,
                                              20.0,   50.0,   100.0,  200.0,
                                              500.0,  1000.0, 2000.0, 5000.0};
  return buckets;
}

void Registry::define_histogram(std::string_view name,
                                std::vector<double> upper_bounds) {
  std::sort(upper_bounds.begin(), upper_bounds.end());
  const util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return;  // first definition wins
  HistogramStat stat;
  stat.upper_bounds = std::move(upper_bounds);
  stat.counts.assign(stat.upper_bounds.size() + 1, 0);
  histograms_.emplace(std::string(name), std::move(stat));
}

void Registry::observe(std::string_view name, double value) {
  const util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramStat stat;
    stat.upper_bounds = default_buckets();
    stat.counts.assign(stat.upper_bounds.size() + 1, 0);
    it = histograms_.emplace(std::string(name), std::move(stat)).first;
  }
  HistogramStat& h = it->second;
  const auto bound = std::lower_bound(h.upper_bounds.begin(),
                                      h.upper_bounds.end(), value);
  h.counts[static_cast<std::size_t>(bound - h.upper_bounds.begin())]++;
  h.count++;
  h.sum += value;
}

void Registry::record_span(std::string_view label, double seconds) {
  const util::MutexLock lock(mutex_);
  auto it = timers_.find(label);
  if (it == timers_.end()) {
    TimerStat stat;
    stat.count = 1;
    stat.total_s = stat.min_s = stat.max_s = seconds;
    timers_.emplace(std::string(label), stat);
    return;
  }
  TimerStat& t = it->second;
  t.count++;
  t.total_s += seconds;
  t.min_s = std::min(t.min_s, seconds);
  t.max_s = std::max(t.max_s, seconds);
}

std::uint64_t Registry::counter(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Snapshot Registry::snapshot() const {
  const util::MutexLock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) snap.counters.emplace_back(name, value);
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) snap.gauges.emplace_back(name, value);
  snap.timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    TimerSnapshot ts;
    ts.count = t.count;
    ts.total_s = t.total_s;
    ts.min_s = t.min_s;
    ts.max_s = t.max_s;
    snap.timers.emplace_back(name, ts);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.upper_bounds = h.upper_bounds;
    hs.counts = h.counts;
    hs.count = h.count;
    hs.sum = h.sum;
    snap.histograms.emplace_back(name, hs);
  }
  return snap;
}

void Registry::reset() {
  const util::MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // !(q >= 0) also rejects a NaN q.
  if (h.count == 0 || !(q >= 0.0 && q <= 1.0)) return kNan;
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t in_bucket = h.counts[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= h.upper_bounds.size()) break;  // +inf bucket: clamp below
    const double lower = i == 0 ? 0.0 : h.upper_bounds[i - 1];
    const double upper = h.upper_bounds[i];
    const double fraction = std::clamp(
        (rank - before) / static_cast<double>(in_bucket), 0.0, 1.0);
    return lower + (upper - lower) * fraction;
  }
  return h.upper_bounds.empty() ? kNan : h.upper_bounds.back();
}

double ScopedTimer::stop() {
  if (!active_) return 0.0;
  active_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Registry::instance().record_span(label_, seconds);
  return seconds;
}

}  // namespace gddr::obs
