// Topology file I/O.
//
// The Internet Topology Zoo ships GraphML, which is overkill for the
// information this library uses (named nodes, links, capacities).  This
// module defines a minimal line-based text format so users can bring
// their own topologies (including ones converted from the Zoo) and export
// the embedded catalogue:
//
//     gddr-topology v1
//     name Abilene
//     nodes 11
//     link 0 1 9920        # bidirectional link with capacity
//     edge 3 4 2480        # single directed edge
//     # comments and blank lines are ignored
//
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.hpp"

namespace gddr::topo {

// Writes `g` in the format above (directed edges that pair up into
// equal-capacity bidirectional links are emitted as one `link` line).
void save_topology(std::ostream& os, const graph::DiGraph& g);
void save_topology_file(const std::string& path, const graph::DiGraph& g);

// Parses the format above.  Throws util::IoError with a line number on
// malformed input (as do the writers on filesystem failure), so CLI
// callers map bad topology files to the I/O exit code.
graph::DiGraph load_topology(std::istream& is);
graph::DiGraph load_topology_file(const std::string& path);

}  // namespace gddr::topo
