// Random topology generators.
//
// Used for test-suite coverage beyond the embedded catalogue and for
// property tests (every generated graph is strongly connected, so every
// demand pair is routable).
#pragma once

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace gddr::topo {

struct CapacityModel {
  // Each bidirectional link draws a capacity uniformly from this set.
  std::vector<double> choices{9920.0};
};

// G(n, p) with bidirectional links; a random Hamiltonian-ish cycle is added
// first so the result is always strongly connected.
graph::DiGraph erdos_renyi(int n, double p, util::Rng& rng,
                           const CapacityModel& cap = {});

// Watts-Strogatz small-world ring: each node is linked to `k/2` neighbours
// on each side, then links are rewired with probability `beta` (the ring
// itself is never rewired, preserving connectivity).
graph::DiGraph watts_strogatz(int n, int k, double beta, util::Rng& rng,
                              const CapacityModel& cap = {});

// Barabasi-Albert preferential attachment with `m` links per new node,
// seeded from a triangle.
graph::DiGraph barabasi_albert(int n, int m, util::Rng& rng,
                               const CapacityModel& cap = {});

}  // namespace gddr::topo
