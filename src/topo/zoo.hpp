// Embedded topology catalogue.
//
// The paper trains and evaluates on graphs from the Internet Topology Zoo
// (Knight et al., 2011).  The Zoo ships as GraphML files which this offline
// environment cannot download, so the topologies used by the experiments are
// embedded here as adjacency lists (see DESIGN.md §1 for the substitution
// rationale).  Abilene and NSFNET match the published topologies
// link-for-link; the remaining entries are real-topology-shaped networks in
// the size band the paper uses for generalisation (between half and double
// the size of Abilene).
//
// All links are bidirectional (two directed edges with equal capacity), as
// in the Zoo data.  Capacities use a common unit (Mbps-like); note that the
// evaluation metric U_max_agent / U_max_optimal is invariant to uniform
// capacity scaling.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace gddr::topo {

// The Abilene research backbone: 11 PoPs, 14 bidirectional links.
graph::DiGraph abilene();

// Abilene topology with heterogeneous capacities: OC-192 on the core
// links, OC-48 on the edge links.  The real Abilene ran uniform 10G
// links; this variant exists because at reduced training budgets the
// uniform-capacity network offers learning signal only through demand
// conditioning (a 500k-step problem, per the paper), while capacity
// heterogeneity makes capacity-aware routing learnable in minutes.  The
// figure benches use it by default and document the substitution.
graph::DiGraph abilene_heterogeneous();

// NSFNET T1 backbone (1991): 14 nodes, 21 bidirectional links.
graph::DiGraph nsfnet();

// Names of all catalogue topologies (including the two above).
std::vector<std::string> catalogue_names();

// Fetch by name; throws std::out_of_range for unknown names.
graph::DiGraph by_name(const std::string& name);

// All topologies whose node count lies in [min_nodes, max_nodes].
std::vector<graph::DiGraph> catalogue_in_size_band(int min_nodes,
                                                   int max_nodes);

}  // namespace gddr::topo
