// Topology mutation for the generalisation experiment (paper §VIII-D,
// Figure 8): "the addition or deletion of one or two edges or nodes
// (chosen randomly)".
//
// Every mutation preserves strong connectivity so that all demands remain
// routable; a mutation that would disconnect the graph is re-drawn.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace gddr::topo {

enum class MutationKind { kAddEdge, kRemoveEdge, kAddNode, kRemoveNode };

struct Mutation {
  MutationKind kind;
  // Human-readable description ("add edge 3<->7", ...) for logging.
  std::string description;
};

// Applies one random mutation; returns the mutated graph and records what
// was done.  Throws std::runtime_error if no valid mutation of any kind
// exists (cannot happen for the catalogue topologies).
graph::DiGraph mutate_once(const graph::DiGraph& g, util::Rng& rng,
                           Mutation* applied = nullptr);

// Applies `count` (1 or 2 in the paper) random mutations in sequence.
graph::DiGraph mutate(const graph::DiGraph& g, int count, util::Rng& rng,
                      std::vector<Mutation>* applied = nullptr);

}  // namespace gddr::topo
