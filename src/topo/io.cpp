#include "topo/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace gddr::topo {

using graph::DiGraph;
using graph::EdgeId;

void save_topology(std::ostream& os, const DiGraph& g) {
  os << "gddr-topology v1\n";
  if (!g.name().empty()) os << "name " << g.name() << "\n";
  os << "nodes " << g.num_nodes() << "\n";
  // Pair up directed edges into bidirectional links where possible.
  std::vector<bool> written(static_cast<size_t>(g.num_edges()), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (written[static_cast<size_t>(e)]) continue;
    const auto& ed = g.edge(e);
    // Find an unwritten reverse edge with equal capacity.
    EdgeId reverse = graph::kInvalidEdge;
    for (EdgeId r : g.out_edges(ed.dst)) {
      if (!written[static_cast<size_t>(r)] && g.edge(r).dst == ed.src &&
          g.edge(r).capacity == ed.capacity && r != e) {
        reverse = r;
        break;
      }
    }
    if (reverse != graph::kInvalidEdge) {
      written[static_cast<size_t>(reverse)] = true;
      os << "link " << ed.src << " " << ed.dst << " " << ed.capacity << "\n";
    } else {
      os << "edge " << ed.src << " " << ed.dst << " " << ed.capacity << "\n";
    }
    written[static_cast<size_t>(e)] = true;
  }
}

void save_topology_file(const std::string& path, const DiGraph& g) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw util::IoError("save_topology_file: cannot open " + path);
  save_topology(os, g);
  if (!os) throw util::IoError("save_topology_file: write failed");
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw util::IoError("load_topology: line " + std::to_string(line) +
                           ": " + message);
}

}  // namespace

DiGraph load_topology(std::istream& is) {
  std::string line;
  int line_no = 0;

  auto next_meaningful = [&](std::string& out) {
    while (std::getline(is, line)) {
      ++line_no;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      out = line;
      return true;
    }
    return false;
  };

  std::string header;
  if (!next_meaningful(header) || header.rfind("gddr-topology", 0) != 0) {
    fail(line_no, "missing 'gddr-topology' header");
  }

  std::string name;
  int num_nodes = -1;
  struct PendingEdge {
    int u, v;
    double capacity;
    bool bidirectional;
    int line;
  };
  std::vector<PendingEdge> edges;

  std::string current;
  while (next_meaningful(current)) {
    std::istringstream ls(current);
    std::string keyword;
    ls >> keyword;
    if (keyword == "name") {
      ls >> name;
    } else if (keyword == "nodes") {
      if (!(ls >> num_nodes) || num_nodes < 0) fail(line_no, "bad node count");
    } else if (keyword == "link" || keyword == "edge") {
      PendingEdge e{};
      if (!(ls >> e.u >> e.v >> e.capacity)) {
        fail(line_no, "expected '<u> <v> <capacity>'");
      }
      e.bidirectional = (keyword == "link");
      e.line = line_no;
      edges.push_back(e);
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (num_nodes < 0) fail(line_no, "missing 'nodes' declaration");

  DiGraph g(num_nodes, name);
  for (const auto& e : edges) {
    if (e.u < 0 || e.u >= num_nodes || e.v < 0 || e.v >= num_nodes) {
      fail(e.line, "node id out of range");
    }
    if (e.capacity <= 0.0) fail(e.line, "capacity must be positive");
    if (e.u == e.v) fail(e.line, "self-loop");
    if (e.bidirectional) {
      g.add_bidirectional(e.u, e.v, e.capacity);
    } else {
      g.add_edge(e.u, e.v, e.capacity);
    }
  }
  return g;
}

DiGraph load_topology_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("load_topology_file: cannot open " + path);
  return load_topology(is);
}

}  // namespace gddr::topo
