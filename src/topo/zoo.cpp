#include "topo/zoo.hpp"

#include <stdexcept>
#include <utility>

namespace gddr::topo {
namespace {

using graph::DiGraph;

struct Link {
  int u;
  int v;
  double capacity;
};

DiGraph build(const std::string& name, int nodes,
              const std::vector<Link>& links) {
  DiGraph g(nodes, name);
  for (const Link& l : links) g.add_bidirectional(l.u, l.v, l.capacity);
  return g;
}

// Default backbone link capacity (OC-192-like).  Absolute scale cancels in
// the U_max ratio metric; relative differences between links do matter.
constexpr double kOC192 = 9920.0;
constexpr double kOC48 = 2480.0;

}  // namespace

DiGraph abilene() {
  // Nodes: 0 Seattle, 1 Sunnyvale, 2 Denver, 3 Los Angeles, 4 Houston,
  // 5 Kansas City, 6 Indianapolis, 7 Atlanta, 8 Chicago, 9 New York,
  // 10 Washington DC.
  return build("Abilene", 11,
               {{0, 1, kOC192},
                {0, 2, kOC192},
                {1, 3, kOC192},
                {1, 2, kOC192},
                {2, 5, kOC192},
                {3, 4, kOC192},
                {4, 5, kOC192},
                {4, 7, kOC192},
                {5, 6, kOC192},
                {6, 7, kOC192},
                {6, 8, kOC192},
                {7, 10, kOC192},
                {8, 9, kOC192},
                {9, 10, kOC192}});
}

DiGraph abilene_heterogeneous() {
  // Same connectivity as abilene(); OC-192 through the continental core,
  // OC-48 on the coastal/edge links.
  return build("AbileneHet", 11,
               {{0, 1, kOC48},
                {0, 2, kOC48},
                {1, 3, kOC48},
                {1, 2, kOC192},
                {2, 5, kOC192},
                {3, 4, kOC48},
                {4, 5, kOC192},
                {4, 7, kOC48},
                {5, 6, kOC192},
                {6, 7, kOC192},
                {6, 8, kOC192},
                {7, 10, kOC48},
                {8, 9, kOC192},
                {9, 10, kOC48}});
}

DiGraph nsfnet() {
  // NSFNET T1 (1991): 0 WA, 1 CA1, 2 CA2, 3 UT, 4 CO, 5 TX, 6 NE, 7 IL,
  // 8 PA, 9 GA, 10 MI, 11 NY, 12 NJ, 13 DC/MD.
  return build("Nsfnet", 14,
               {{0, 1, kOC48},
                {0, 2, kOC48},
                {0, 7, kOC48},
                {1, 2, kOC48},
                {1, 3, kOC48},
                {2, 5, kOC48},
                {3, 4, kOC48},
                {3, 10, kOC48},
                {4, 5, kOC48},
                {4, 6, kOC48},
                {5, 9, kOC48},
                {5, 13, kOC48},
                {6, 7, kOC48},
                {6, 11, kOC48},
                {7, 8, kOC48},
                {8, 11, kOC48},
                {8, 13, kOC48},
                {9, 10, kOC48},
                {10, 12, kOC48},
                {11, 12, kOC48},
                {12, 13, kOC48}});
}

namespace {

// A compact national-research-network shape (CESNET-like), 6 nodes.
DiGraph small_ring_plus() {
  return build("SmallRing", 6,
               {{0, 1, kOC48},
                {1, 2, kOC48},
                {2, 3, kOC48},
                {3, 4, kOC48},
                {4, 5, kOC48},
                {5, 0, kOC48},
                {0, 3, kOC192},
                {1, 4, kOC48}});
}

// JANET-like UK academic backbone, 8 nodes.
DiGraph janet_like() {
  return build("JanetLike", 8,
               {{0, 1, kOC192},
                {0, 2, kOC192},
                {1, 3, kOC192},
                {2, 3, kOC192},
                {2, 4, kOC48},
                {3, 5, kOC192},
                {4, 5, kOC48},
                {4, 6, kOC48},
                {5, 7, kOC192},
                {6, 7, kOC48},
                {1, 6, kOC48}});
}

// RENATER-like French backbone, 12 nodes with a dense core.
DiGraph renater_like() {
  return build("RenaterLike", 12,
               {{0, 1, kOC192},
                {0, 2, kOC192},
                {1, 2, kOC192},
                {1, 3, kOC192},
                {2, 4, kOC192},
                {3, 4, kOC192},
                {3, 5, kOC48},
                {4, 6, kOC48},
                {5, 6, kOC48},
                {5, 7, kOC48},
                {6, 8, kOC48},
                {7, 8, kOC48},
                {7, 9, kOC48},
                {8, 10, kOC48},
                {9, 10, kOC48},
                {9, 11, kOC48},
                {10, 11, kOC48}});
}

// GARR-like Italian backbone, 16 nodes.
DiGraph garr_like() {
  return build("GarrLike", 16,
               {{0, 1, kOC192},
                {0, 2, kOC192},
                {1, 3, kOC192},
                {2, 3, kOC192},
                {2, 4, kOC48},
                {3, 5, kOC192},
                {4, 5, kOC48},
                {4, 6, kOC48},
                {5, 7, kOC192},
                {6, 7, kOC48},
                {6, 8, kOC48},
                {7, 9, kOC192},
                {8, 9, kOC48},
                {8, 10, kOC48},
                {9, 11, kOC192},
                {10, 11, kOC48},
                {10, 12, kOC48},
                {11, 13, kOC192},
                {12, 13, kOC48},
                {12, 14, kOC48},
                {13, 15, kOC192},
                {14, 15, kOC48}});
}

// SANET-like 18-node chain-with-chords backbone.
DiGraph sanet_like() {
  std::vector<Link> links;
  for (int i = 0; i + 1 < 18; ++i) {
    links.push_back({i, i + 1, kOC48});
  }
  links.push_back({17, 0, kOC48});
  links.push_back({0, 9, kOC192});
  links.push_back({4, 13, kOC192});
  links.push_back({2, 7, kOC48});
  links.push_back({11, 16, kOC48});
  return build("SanetLike", 18, links);
}

// GEANT-like pan-European backbone, 22 nodes with mesh core.
DiGraph geant_like() {
  return build("GeantLike", 22,
               {{0, 1, kOC192},  {0, 2, kOC192},  {1, 3, kOC192},
                {1, 4, kOC192},  {2, 4, kOC192},  {2, 5, kOC48},
                {3, 6, kOC192},  {4, 6, kOC192},  {4, 7, kOC192},
                {5, 7, kOC48},   {5, 8, kOC48},   {6, 9, kOC192},
                {7, 9, kOC192},  {7, 10, kOC48},  {8, 10, kOC48},
                {9, 11, kOC192}, {10, 11, kOC48}, {10, 12, kOC48},
                {11, 13, kOC192}, {12, 13, kOC48}, {12, 14, kOC48},
                {13, 15, kOC192}, {14, 15, kOC48}, {14, 16, kOC48},
                {15, 17, kOC192}, {16, 17, kOC48}, {16, 18, kOC48},
                {17, 19, kOC192}, {18, 19, kOC48}, {18, 20, kOC48},
                {19, 21, kOC192}, {20, 21, kOC48}, {3, 9, kOC192},
                {6, 13, kOC192},  {9, 15, kOC192}, {11, 17, kOC192}});
}

// ARPANET-like 1972 map, 20 nodes.
DiGraph arpanet_like() {
  return build("ArpanetLike", 20,
               {{0, 1, kOC48},  {1, 2, kOC48},  {2, 3, kOC48},
                {3, 4, kOC48},  {4, 5, kOC48},  {5, 6, kOC48},
                {6, 7, kOC48},  {7, 8, kOC48},  {8, 9, kOC48},
                {9, 10, kOC48}, {10, 11, kOC48}, {11, 12, kOC48},
                {12, 13, kOC48}, {13, 14, kOC48}, {14, 15, kOC48},
                {15, 16, kOC48}, {16, 17, kOC48}, {17, 18, kOC48},
                {18, 19, kOC48}, {19, 0, kOC48},  {0, 10, kOC48},
                {3, 13, kOC48},  {5, 15, kOC48},  {8, 18, kOC48},
                {2, 7, kOC48},   {12, 17, kOC48}});
}

// Star-with-ring metro shape, 9 nodes.
DiGraph metro_like() {
  return build("MetroLike", 9,
               {{0, 1, kOC192},
                {0, 2, kOC192},
                {0, 3, kOC192},
                {0, 4, kOC192},
                {1, 2, kOC48},
                {2, 3, kOC48},
                {3, 4, kOC48},
                {4, 1, kOC48},
                {1, 5, kOC48},
                {2, 6, kOC48},
                {3, 7, kOC48},
                {4, 8, kOC48},
                {5, 6, kOC48},
                {7, 8, kOC48}});
}

}  // namespace

std::vector<std::string> catalogue_names() {
  return {"Abilene",   "AbileneHet", "Nsfnet",      "SmallRing",
          "JanetLike", "RenaterLike", "GarrLike",   "SanetLike",
          "GeantLike", "ArpanetLike", "MetroLike"};
}

DiGraph by_name(const std::string& name) {
  if (name == "Abilene") return abilene();
  if (name == "AbileneHet") return abilene_heterogeneous();
  if (name == "Nsfnet") return nsfnet();
  if (name == "SmallRing") return small_ring_plus();
  if (name == "JanetLike") return janet_like();
  if (name == "RenaterLike") return renater_like();
  if (name == "GarrLike") return garr_like();
  if (name == "SanetLike") return sanet_like();
  if (name == "GeantLike") return geant_like();
  if (name == "ArpanetLike") return arpanet_like();
  if (name == "MetroLike") return metro_like();
  throw std::out_of_range("unknown topology: " + name);
}

std::vector<DiGraph> catalogue_in_size_band(int min_nodes, int max_nodes) {
  std::vector<DiGraph> out;
  for (const auto& name : catalogue_names()) {
    DiGraph g = by_name(name);
    if (g.num_nodes() >= min_nodes && g.num_nodes() <= max_nodes) {
      out.push_back(std::move(g));
    }
  }
  return out;
}

}  // namespace gddr::topo
