#include "topo/mutate.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "graph/algorithms.hpp"

namespace gddr::topo {
namespace {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;

// Median capacity of existing links; new links match the network's scale.
double typical_capacity(const DiGraph& g) {
  if (g.num_edges() == 0) return 9920.0;
  std::vector<double> caps;
  caps.reserve(static_cast<size_t>(g.num_edges()));
  for (const auto& e : g.edges()) caps.push_back(e.capacity);
  std::nth_element(caps.begin(), caps.begin() + caps.size() / 2, caps.end());
  return caps[caps.size() / 2];
}

bool try_add_edge(const DiGraph& g, util::Rng& rng, DiGraph& out,
                  std::string& desc) {
  // Collect non-adjacent pairs.
  std::vector<std::pair<NodeId, NodeId>> candidates;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!g.find_edge(u, v).has_value()) candidates.emplace_back(u, v);
    }
  }
  if (candidates.empty()) return false;
  const auto [u, v] = candidates[rng.uniform_index(candidates.size())];
  out = g;
  out.add_bidirectional(u, v, typical_capacity(g));
  desc = "add edge " + std::to_string(u) + "<->" + std::to_string(v);
  return true;
}

bool try_remove_edge(const DiGraph& g, util::Rng& rng, DiGraph& out,
                     std::string& desc) {
  // Remove a bidirectional pair; keep strong connectivity.
  std::vector<std::pair<EdgeId, EdgeId>> candidates;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.src < ed.dst) {
      if (const auto rev = g.find_edge(ed.dst, ed.src)) {
        candidates.emplace_back(e, *rev);
      }
    }
  }
  rng.shuffle(candidates);
  for (const auto& [fwd, rev] : candidates) {
    std::vector<bool> remove(static_cast<size_t>(g.num_edges()), false);
    remove[static_cast<size_t>(fwd)] = true;
    remove[static_cast<size_t>(rev)] = true;
    DiGraph candidate = g.without_edges(remove);
    if (graph::is_strongly_connected(candidate)) {
      out = std::move(candidate);
      const auto& ed = g.edge(fwd);
      desc = "remove edge " + std::to_string(ed.src) + "<->" +
             std::to_string(ed.dst);
      return true;
    }
  }
  return false;
}

bool try_add_node(const DiGraph& g, util::Rng& rng, DiGraph& out,
                  std::string& desc) {
  if (g.num_nodes() < 2) return false;
  out = g;
  const NodeId fresh = out.add_node();
  // Attach with two links to distinct existing nodes so the new node is on
  // a cycle (strong connectivity is preserved trivially for bidirectional
  // links, but two attachments give it routing choice).
  const NodeId a = static_cast<NodeId>(
      rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes())));
  NodeId b = a;
  while (b == a) {
    b = static_cast<NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes())));
  }
  const double cap = typical_capacity(g);
  out.add_bidirectional(fresh, a, cap);
  out.add_bidirectional(fresh, b, cap);
  desc = "add node " + std::to_string(fresh) + " attached to " +
         std::to_string(a) + "," + std::to_string(b);
  return true;
}

bool try_remove_node(const DiGraph& g, util::Rng& rng, DiGraph& out,
                     std::string& desc) {
  if (g.num_nodes() <= 3) return false;
  std::vector<NodeId> nodes(static_cast<size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes[static_cast<size_t>(v)] = v;
  }
  rng.shuffle(nodes);
  for (NodeId v : nodes) {
    DiGraph candidate = g.without_node(v);
    if (graph::is_strongly_connected(candidate)) {
      out = std::move(candidate);
      desc = "remove node " + std::to_string(v);
      return true;
    }
  }
  return false;
}

}  // namespace

DiGraph mutate_once(const DiGraph& g, util::Rng& rng, Mutation* applied) {
  std::vector<MutationKind> kinds{MutationKind::kAddEdge,
                                  MutationKind::kRemoveEdge,
                                  MutationKind::kAddNode,
                                  MutationKind::kRemoveNode};
  rng.shuffle(kinds);
  DiGraph out;
  std::string desc;
  for (MutationKind kind : kinds) {
    bool ok = false;
    switch (kind) {
      case MutationKind::kAddEdge:
        ok = try_add_edge(g, rng, out, desc);
        break;
      case MutationKind::kRemoveEdge:
        ok = try_remove_edge(g, rng, out, desc);
        break;
      case MutationKind::kAddNode:
        ok = try_add_node(g, rng, out, desc);
        break;
      case MutationKind::kRemoveNode:
        ok = try_remove_node(g, rng, out, desc);
        break;
    }
    if (ok) {
      if (applied != nullptr) *applied = Mutation{kind, desc};
      out.set_name(g.name() + "+mut");
      return out;
    }
  }
  throw std::runtime_error("no valid mutation exists");
}

DiGraph mutate(const DiGraph& g, int count, util::Rng& rng,
               std::vector<Mutation>* applied) {
  DiGraph current = g;
  for (int i = 0; i < count; ++i) {
    Mutation m{MutationKind::kAddEdge, ""};
    current = mutate_once(current, rng, &m);
    if (applied != nullptr) applied->push_back(std::move(m));
  }
  return current;
}

}  // namespace gddr::topo
