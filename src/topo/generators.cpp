#include "topo/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace gddr::topo {
namespace {

using graph::DiGraph;
using graph::NodeId;

double pick_capacity(const CapacityModel& cap, util::Rng& rng) {
  if (cap.choices.empty()) throw std::invalid_argument("empty capacity set");
  return cap.choices[rng.uniform_index(cap.choices.size())];
}

void add_link(DiGraph& g, NodeId u, NodeId v, const CapacityModel& cap,
              util::Rng& rng) {
  if (u == v || g.find_edge(u, v).has_value()) return;
  g.add_bidirectional(u, v, pick_capacity(cap, rng));
}

}  // namespace

DiGraph erdos_renyi(int n, double p, util::Rng& rng,
                    const CapacityModel& cap) {
  if (n < 3) throw std::invalid_argument("erdos_renyi: n < 3");
  DiGraph g(n, "ErdosRenyi");
  // Random cycle backbone guarantees strong connectivity.
  std::vector<NodeId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (int i = 0; i < n; ++i) {
    add_link(g, order[static_cast<size_t>(i)],
             order[static_cast<size_t>((i + 1) % n)], cap, rng);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) add_link(g, u, v, cap, rng);
    }
  }
  assert(graph::is_strongly_connected(g));
  return g;
}

DiGraph watts_strogatz(int n, int k, double beta, util::Rng& rng,
                       const CapacityModel& cap) {
  if (n < 4 || k < 2 || k >= n) {
    throw std::invalid_argument("watts_strogatz: need 4 <= k+2 <= n");
  }
  DiGraph g(n, "WattsStrogatz");
  // Ring lattice; offset-1 links form the never-rewired connectivity ring.
  for (NodeId u = 0; u < n; ++u) {
    add_link(g, u, (u + 1) % n, cap, rng);
  }
  for (int offset = 2; offset <= k / 2; ++offset) {
    for (NodeId u = 0; u < n; ++u) {
      NodeId v = (u + offset) % n;
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform random non-neighbour.
        for (int attempts = 0; attempts < 16; ++attempts) {
          const NodeId w = static_cast<NodeId>(
              rng.uniform_index(static_cast<std::uint64_t>(n)));
          if (w != u && !g.find_edge(u, w).has_value()) {
            v = w;
            break;
          }
        }
      }
      add_link(g, u, v, cap, rng);
    }
  }
  assert(graph::is_strongly_connected(g));
  return g;
}

DiGraph barabasi_albert(int n, int m, util::Rng& rng,
                        const CapacityModel& cap) {
  if (n < 3 || m < 1) throw std::invalid_argument("barabasi_albert: bad args");
  DiGraph g(n, "BarabasiAlbert");
  add_link(g, 0, 1, cap, rng);
  add_link(g, 1, 2, cap, rng);
  add_link(g, 2, 0, cap, rng);
  // Degree-proportional target sampling: repeat every endpoint of every
  // link once per direction.
  std::vector<NodeId> endpoints{0, 1, 1, 2, 2, 0};
  for (NodeId u = 3; u < n; ++u) {
    std::vector<NodeId> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < std::min<int>(m, u) &&
           guard++ < 1000) {
      const NodeId t = endpoints[rng.uniform_index(endpoints.size())];
      if (t != u &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    if (targets.empty()) targets.push_back(u - 1);
    for (NodeId t : targets) {
      add_link(g, u, t, cap, rng);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  assert(graph::is_strongly_connected(g));
  return g;
}

}  // namespace gddr::topo
