// Softmin routing translation (paper §VI, Figure 2, Equation 3).
//
// Converts a vector of learned edge weights into a full routing strategy:
// for each flow (s,t) the graph is pruned to a DAG, each vertex's distance
// to the sink is computed on the pruned graph, and the splitting ratio of
// each out-edge is softmin(edge weight + neighbour's distance) — so
// shorter detours receive exponentially more traffic, controlled by the
// spread parameter gamma.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "routing/prune.hpp"
#include "routing/routing.hpp"

namespace gddr::routing {

// softmin(x)_i = exp(-gamma x_i) / sum_j exp(-gamma x_j)   (paper Eq. 3).
// Numerically stabilised; requires a non-empty input and gamma > 0.
std::vector<double> softmin(std::span<const double> x, double gamma);

struct SoftminOptions {
  // Spread parameter: larger gamma concentrates traffic on the shortest
  // paths; smaller gamma spreads it.  Paper leaves the value learned or
  // tuned; 2.0 is a robust default (see bench_gamma_ablation).
  double gamma = 2.0;
  // DAG conversion algorithm.  The default is the downhill
  // (distance-to-sink) DAG: it provably retains every progress-making
  // edge, giving softmin real multipath to work with, and admits an exact
  // destination-based fast path.  kFrontierMeet is the paper's Figure-3
  // algorithm; under widespread weight ties it degenerates to near-trees
  // (see bench_prune_ablation), which is why it is not the default here.
  PruneMode prune_mode = PruneMode::kDistanceToSink;
  // Splitting ratios below this are zeroed and the remainder renormalised;
  // keeps per-flow DAGs sparse without measurably changing U_max.
  double ratio_floor = 1e-6;
};

// Derives a complete routing for every (s,t) pair from per-edge weights
// (size num_edges, all > 0).  The result is loop-free per flow and
// satisfies the §IV-A constraints for any demand matrix.
Routing softmin_routing(const graph::DiGraph& g,
                        const std::vector<double>& weights,
                        const SoftminOptions& options);
Routing softmin_routing(const graph::DiGraph& g,
                        const std::vector<double>& weights);

// Reference per-pair translation: prunes a DAG for every (s,t) flow under
// `options.prune_mode` and derives that pair's ratios on it, skipping
// pairs where t is unreachable from s.  softmin_routing dispatches here
// for every mode except kDistanceToSink, whose destination-based fast
// path must produce identical ratios at traffic-carrying vertices (a
// property the tests check edge-for-edge).
Routing softmin_routing_generic(const graph::DiGraph& g,
                                const std::vector<double>& weights,
                                const SoftminOptions& options);

// Derives a routing from *per-destination* edge weights — the paper's
// §V-C intermediate action space of size |V| x |E| (between the full
// per-flow space and the single-weight-vector space).  Each destination t
// is translated independently with its own weight vector
// `weights_by_dest[t]` using the downhill (distance-to-sink) DAG; rows
// may be empty for destinations that receive no traffic, in which case
// they fall back to unit weights.
Routing softmin_routing_per_destination(
    const graph::DiGraph& g,
    const std::vector<std::vector<double>>& weights_by_dest,
    const SoftminOptions& options);

// Maps raw agent actions in [-1,1] to strictly positive edge weights
// usable by softmin_routing (affine map to [min_weight, max_weight]).
std::vector<double> weights_from_actions(std::span<const double> actions,
                                         double min_weight = 0.1,
                                         double max_weight = 10.0);

}  // namespace gddr::routing
