#include "routing/routing_invariants.hpp"

#include <cmath>
#include <vector>

#include "graph/algorithms.hpp"
#include "util/contract.hpp"

namespace gddr::routing {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;
using util::contract::describe;
using util::contract::violate_invariant;

void check_softmin_routing(const DiGraph& g, const Routing& routing,
                           double tol, std::string_view label) {
  const auto unit = graph::unit_weights(g);
  std::vector<bool> positive(static_cast<std::size_t>(g.num_edges()));
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    // Connectivity (not distance) is what matters here, so unit weights
    // give the same reachable set as the translation's weighted Dijkstra.
    const auto reach = graph::dijkstra_to(g, t, unit);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (s == t) continue;
      const auto& ratios = routing.flow_ratios(s, t);
      const bool reachable =
          reach.dist[static_cast<std::size_t>(s)] != graph::kInfDist;
      double mass = 0.0;
      for (const double r : ratios) mass += r;
      if (!reachable) {
        if (mass != 0.0) {
          violate_invariant("no ratios for unreachable sources", label,
                            describe("src", s, "dest", t, "mass", mass));
        }
        continue;
      }
      // Absorption: nothing leaves the destination.
      for (EdgeId e : g.out_edges(t)) {
        if (ratios[static_cast<std::size_t>(e)] != 0.0) {
          violate_invariant(
              "destination absorbs all traffic", label,
              describe("src", s, "dest", t, "edge", e, "ratio",
                       ratios[static_cast<std::size_t>(e)]));
        }
      }
      // Row-stochastic splitting at every vertex with out-mass.
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == t) continue;
        double sum = 0.0;
        bool any = false;
        for (EdgeId e : g.out_edges(v)) {
          const double r = ratios[static_cast<std::size_t>(e)];
          if (r < -tol || r > 1.0 + tol) {
            violate_invariant("every ratio lies in [0, 1]", label,
                              describe("src", s, "dest", t, "vertex", v,
                                       "edge", e, "ratio", r));
          }
          if (r > 0.0) any = true;
          sum += r;
        }
        if (any && std::abs(sum - 1.0) > tol) {
          violate_invariant("out-ratios are row-stochastic", label,
                            describe("src", s, "dest", t, "vertex", v, "sum",
                                     sum, "tol", tol));
        }
      }
      // Acyclicity of the positive-ratio subgraph.
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        positive[static_cast<std::size_t>(e)] =
            ratios[static_cast<std::size_t>(e)] > 0.0;
      }
      if (graph::has_cycle(g, positive)) {
        violate_invariant("positive-ratio subgraph is a DAG", label,
                          describe("src", s, "dest", t));
      }
    }
  }
}

}  // namespace gddr::routing
