#include "routing/routing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/graph_invariants.hpp"
#include "util/contract.hpp"

namespace gddr::routing {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;
using traffic::DemandMatrix;

Routing::Routing(int num_nodes, int num_edges)
    : n_(num_nodes),
      ne_(num_edges),
      ratios_(static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes),
              std::vector<double>(static_cast<size_t>(num_edges), 0.0)) {}

void Routing::set_ratio(int s, int t, EdgeId e, double value) {
  if (value < -1e-12 || value > 1.0 + 1e-12) {
    throw std::invalid_argument("Routing::set_ratio: ratio outside [0,1]");
  }
  ratios_[static_cast<size_t>(flow_index(s, t))][static_cast<size_t>(e)] =
      std::clamp(value, 0.0, 1.0);
}

namespace {

// Propagates `amount` units of flow (s,t) through the routing's positive
// edges, adding to `load`.  The flow's edge subgraph must be acyclic; a
// topological sweep in distance order is not available (ratios are
// arbitrary), so Kahn's algorithm runs on the positive-ratio subgraph.
// Returns the amount absorbed at t.
double propagate_flow(const DiGraph& g, const Routing& routing, NodeId s,
                      NodeId t, double amount, std::vector<double>& load,
                      bool strict) {
  const auto& ratios = routing.flow_ratios(s, t);
  std::vector<bool> mask(static_cast<size_t>(g.num_edges()), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (ratios[static_cast<size_t>(e)] > 0.0) {
      mask[static_cast<size_t>(e)] = true;
    }
  }
  const auto order = graph::topological_order(g, mask);
  if (!order.has_value()) {
    if (strict) {
      throw std::runtime_error("simulate: flow (" + std::to_string(s) + "," +
                               std::to_string(t) +
                               ") has a routing loop");
    }
    return 0.0;
  }
  // Kahn's output must be a valid topological order of the positive-ratio
  // subgraph or the sweep below drops/double-counts traffic.
  GDDR_VALIDATE(graph::check_topological_order(g, mask, *order,
                                               "routing/simulate/toposort"));
  std::vector<double> node_amount(static_cast<size_t>(g.num_nodes()), 0.0);
  node_amount[static_cast<size_t>(s)] = amount;
  double absorbed = 0.0;
  for (NodeId v : *order) {
    const double a = node_amount[static_cast<size_t>(v)];
    if (a <= 0.0) continue;
    if (v == t) {
      absorbed += a;
      continue;
    }
    for (EdgeId e : g.out_edges(v)) {
      const double r = ratios[static_cast<size_t>(e)];
      if (r <= 0.0) continue;
      const double sent = a * r;
      load[static_cast<size_t>(e)] += sent;
      node_amount[static_cast<size_t>(g.edge(e).dst)] += sent;
    }
  }
  return absorbed;
}

}  // namespace

SimulationResult simulate(const DiGraph& g, const Routing& routing,
                          const DemandMatrix& dm,
                          const SimulateOptions& options) {
  if (routing.num_nodes() != g.num_nodes() ||
      routing.num_edges() != g.num_edges() ||
      dm.num_nodes() != g.num_nodes()) {
    throw std::invalid_argument("simulate: size mismatch");
  }
  SimulationResult result;
  result.link_load.assign(static_cast<size_t>(g.num_edges()), 0.0);

  double injected = 0.0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const double d = dm.at(s, t);
      if (d <= 0.0) continue;
      injected += d;
      result.delivered += propagate_flow(g, routing, s, t, d,
                                         result.link_load, options.strict);
    }
  }
  if (options.strict && injected > 0.0) {
    const double loss = std::abs(injected - result.delivered) / injected;
    if (loss > options.conservation_tolerance) {
      throw std::runtime_error(
          "simulate: conservation violated, delivered " +
          std::to_string(result.delivered) + " of " +
          std::to_string(injected));
    }
  }

  result.link_utilisation.assign(static_cast<size_t>(g.num_edges()), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    result.link_utilisation[static_cast<size_t>(e)] =
        result.link_load[static_cast<size_t>(e)] / g.edge(e).capacity;
    result.u_max =
        std::max(result.u_max, result.link_utilisation[static_cast<size_t>(e)]);
  }
  return result;
}

SimulationResult simulate(const DiGraph& g, const Routing& routing,
                          const DemandMatrix& dm) {
  return simulate(g, routing, dm, SimulateOptions{});
}

bool validate(const DiGraph& g, const Routing& routing,
              const DemandMatrix& dm, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t || dm.at(s, t) <= 0.0) continue;
      const auto& ratios = routing.flow_ratios(s, t);
      // Constraint (2): absorption at the destination.
      for (EdgeId e : g.out_edges(t)) {
        if (ratios[static_cast<size_t>(e)] > 1e-9) {
          return fail("flow (" + std::to_string(s) + "," + std::to_string(t) +
                      ") forwards traffic out of its destination");
        }
      }
      // Constraint (1): conservation at vertices that carry traffic.  Which
      // vertices carry traffic depends on the upstream ratios, so propagate
      // reachability through positive-ratio edges from s.
      std::vector<bool> reaches(static_cast<size_t>(g.num_nodes()), false);
      reaches[static_cast<size_t>(s)] = true;
      // Positive-ratio subgraph is small; a fixed-point sweep suffices and
      // tolerates cycles (validate() must not crash on invalid input).
      for (int pass = 0; pass < g.num_nodes(); ++pass) {
        bool changed = false;
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          if (ratios[static_cast<size_t>(e)] > 0.0) {
            const auto& ed = g.edge(e);
            if (reaches[static_cast<size_t>(ed.src)] &&
                !reaches[static_cast<size_t>(ed.dst)]) {
              reaches[static_cast<size_t>(ed.dst)] = true;
              changed = true;
            }
          }
        }
        if (!changed) break;
      }
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!reaches[static_cast<size_t>(v)] || v == t) continue;
        double sum = 0.0;
        for (EdgeId e : g.out_edges(v)) {
          sum += ratios[static_cast<size_t>(e)];
        }
        if (std::abs(sum - 1.0) > 1e-6) {
          return fail("flow (" + std::to_string(s) + "," + std::to_string(t) +
                      ") ratios at vertex " + std::to_string(v) + " sum to " +
                      std::to_string(sum));
        }
      }
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

bool validate_for_serving(const DiGraph& g, const Routing& routing,
                          const DemandMatrix& dm, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (routing.num_nodes() != g.num_nodes() ||
      routing.num_edges() != g.num_edges() ||
      dm.num_nodes() != g.num_nodes()) {
    return fail("routing/demand size does not match the graph");
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t || dm.at(s, t) <= 0.0) continue;
      const auto& ratios = routing.flow_ratios(s, t);
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const double r = ratios[static_cast<size_t>(e)];
        // Written to also reject NaN (every comparison with NaN is false).
        // NaN ratios are the one corruption strict simulation cannot see:
        // a NaN load poisons `delivered`, and the conservation comparison
        // against NaN is silently false.
        if (!(r >= 0.0 && r <= 1.0)) {
          return fail("flow (" + std::to_string(s) + "," + std::to_string(t) +
                      ") has ratio " + std::to_string(r) + " on edge " +
                      std::to_string(e));
        }
      }
      for (EdgeId e : g.out_edges(t)) {
        if (ratios[static_cast<size_t>(e)] > 1e-9) {
          return fail("flow (" + std::to_string(s) + "," + std::to_string(t) +
                      ") forwards traffic out of its destination");
        }
      }
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace gddr::routing
