// Routing-layer invariant validators for the debug-contract layer
// (util/contract.hpp).  The softmin translation runs these through
// GDDR_VALIDATE on every routing it produces; tests call them directly on
// deliberately corrupted routings.  Each throws util::ContractViolation.
#pragma once

#include <string_view>

#include "graph/digraph.hpp"
#include "routing/routing.hpp"

namespace gddr::routing {

// The §IV-A validity contract of a softmin-translated routing, per flow:
//  * absorption  — no flow forwards traffic out of its own destination;
//  * stochastic  — at every vertex with positive out-mass for flow (s,t),
//                  the out-edge ratios sum to 1 within `tol` and each ratio
//                  lies in [0, 1];
//  * reachability — a source that cannot reach t carries no ratios at all
//                  (the downhill fast path must skip it, PR 3's bug);
//  * acyclicity  — every flow's positive-ratio edge set is a DAG, so
//                  simulate() can propagate without loops.
void check_softmin_routing(const graph::DiGraph& g, const Routing& routing,
                           double tol, std::string_view label);

}  // namespace gddr::routing
