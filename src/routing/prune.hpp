// Per-flow DAG pruning (paper §VI, Figure 3).
//
// Softmin routing derives splitting ratios from edge weights, but raw
// softmin ratios can create routing loops.  The paper converts the graph
// into a per-flow DAG first, keeping more than just shortest paths so that
// multipath load-balancing remains possible.
//
// Three modes are provided:
//
//  * kFrontierMeet — reproduction of the paper's Figure-3 algorithm: run
//    Dijkstra from the source recording parents and "frontier meets"
//    (edges that hit an already-explored vertex), trace the sink-to-source
//    parent chain marking on-path vertices, graft a path across each
//    frontier meet whose two on-path ancestors sit at different distances
//    to the sink, and finally drop edges between off-path vertices and
//    anti-parent edges.  The paper's pseudocode leaves the orientation of
//    some surviving on-path edges unspecified (which taken literally can
//    re-introduce 2-cycles); we resolve exactly those leftovers by keeping
//    an edge only when its induced distance-to-sink strictly decreases,
//    which is the invariant every explicitly-kept edge already satisfies.
//
//  * kDistanceToSink — keep edge (u,v) iff dist(u→t) > dist(v→t) under the
//    given weights: the classic "downhill" DAG.  Strictly decreasing
//    potential makes it loop-free while retaining every edge that makes
//    progress toward the sink.
//
//  * kDistanceFromSource — keep edge (u,v) iff dist(s→u) < dist(s→v):
//    orientation by Dijkstra exploration order from the source.
//
// All modes additionally restrict the mask to edges lying on some s→t path
// so that every retained edge leads to the sink, and all guarantee
// acyclicity and s→t reachability (verified by property tests).
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace gddr::routing {

enum class PruneMode { kFrontierMeet, kDistanceToSink, kDistanceFromSource };

// Edge mask (size num_edges) of the pruned DAG for flow (s,t) under the
// given positive edge weights.  Throws std::runtime_error if t is not
// reachable from s.
std::vector<bool> prune_dag(const graph::DiGraph& g, graph::NodeId s,
                            graph::NodeId t,
                            const std::vector<double>& weights,
                            PruneMode mode);

// Restricts `mask` to edges on some s->t path within the mask (drops edges
// not reachable from s or not co-reachable to t).  Exposed for tests.
void restrict_to_st_paths(const graph::DiGraph& g, graph::NodeId s,
                          graph::NodeId t, std::vector<bool>& mask);

}  // namespace gddr::routing
