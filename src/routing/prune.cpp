#include "routing/prune.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/graph_invariants.hpp"
#include "util/contract.hpp"

namespace gddr::routing {
namespace {

using graph::DiGraph;
using graph::EdgeId;
using graph::kInvalidEdge;
using graph::kInvalidNode;
using graph::NodeId;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = 1e-12;

std::vector<bool> monotone_mask(const DiGraph& g,
                                const std::vector<double>& potential,
                                bool decreasing) {
  std::vector<bool> mask(static_cast<size_t>(g.num_edges()), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const double pu = potential[static_cast<size_t>(ed.src)];
    const double pv = potential[static_cast<size_t>(ed.dst)];
    if (pu == kInf || pv == kInf) continue;
    mask[static_cast<size_t>(e)] =
        decreasing ? (pu > pv + kTol) : (pu + kTol < pv);
  }
  return mask;
}

// The paper's Figure-3 algorithm (see header for the interpretation of the
// under-specified parts).
std::vector<bool> frontier_meet_mask(const DiGraph& g, NodeId s, NodeId t,
                                     const std::vector<double>& weights) {
  const auto n = static_cast<size_t>(g.num_nodes());

  // --- Dijkstra from the source, recording parents and frontier meets ---
  std::vector<double> dist_s(n, kInf);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<bool> settled(n, false);
  std::vector<NodeId> sink_parents;  // the sink records multiple parents
  std::vector<std::pair<NodeId, NodeId>> frontier_meets;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist_s[static_cast<size_t>(s)] = 0.0;
  pq.emplace(0.0, s);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (settled[static_cast<size_t>(v)]) continue;
    settled[static_cast<size_t>(v)] = true;
    for (EdgeId e : g.out_edges(v)) {
      const NodeId u = g.edge(e).dst;
      if (u == parent[static_cast<size_t>(v)]) continue;
      if (u == t && v != t) {
        sink_parents.push_back(v);
      }
      if (settled[static_cast<size_t>(u)]) {
        frontier_meets.emplace_back(v, u);
        continue;
      }
      const double nd = d + weights[static_cast<size_t>(e)];
      if (nd < dist_s[static_cast<size_t>(u)]) {
        dist_s[static_cast<size_t>(u)] = nd;
        parent[static_cast<size_t>(u)] = v;
        pq.emplace(nd, u);
      }
    }
  }
  if (dist_s[static_cast<size_t>(t)] == kInf) {
    throw std::runtime_error("prune_dag: sink unreachable from source");
  }

  // --- Mark on-path vertices and their distance-to-sink `d` via the
  //     parent chains (paper: BFS from the sink through parents) ---
  std::vector<bool> on_path(n, false);
  std::vector<double> dist_t(n, kInf);
  dist_t[static_cast<size_t>(t)] = 0.0;
  on_path[static_cast<size_t>(t)] = true;

  auto edge_weight = [&](NodeId u, NodeId v) {
    const auto e = g.find_edge(u, v);
    return e.has_value() ? weights[static_cast<size_t>(*e)] : kInf;
  };

  auto mark_chain_from = [&](NodeId child) {
    // Walk parent pointers from `child` (already on path) toward s.
    NodeId v = child;
    while (v != s && v != kInvalidNode) {
      const NodeId p = parent[static_cast<size_t>(v)];
      if (p == kInvalidNode) break;
      const double nd =
          dist_t[static_cast<size_t>(v)] + edge_weight(p, v);
      if (on_path[static_cast<size_t>(p)] &&
          dist_t[static_cast<size_t>(p)] <= nd) {
        break;  // rest of the chain already marked with a better distance
      }
      on_path[static_cast<size_t>(p)] = true;
      dist_t[static_cast<size_t>(p)] = nd;
      v = p;
    }
  };
  for (NodeId sp : sink_parents) {
    if (dist_s[static_cast<size_t>(sp)] == kInf) continue;
    on_path[static_cast<size_t>(sp)] = true;
    dist_t[static_cast<size_t>(sp)] = edge_weight(sp, t);
    mark_chain_from(sp);
  }

  // --- Graft paths across frontier meets whose on-path ancestors sit at
  //     different distances to the sink ---
  auto on_path_ancestor = [&](NodeId v) {
    NodeId a = v;
    std::size_t guard = 0;
    while (a != kInvalidNode && !on_path[static_cast<size_t>(a)] &&
           guard++ < n) {
      a = parent[static_cast<size_t>(a)];
    }
    return (a != kInvalidNode && on_path[static_cast<size_t>(a)]) ? a
                                                                  : kInvalidNode;
  };

  std::vector<std::pair<NodeId, NodeId>> grafted_edges;
  for (const auto& [v, u] : frontier_meets) {
    const NodeId a = on_path_ancestor(v);
    const NodeId b = on_path_ancestor(u);
    if (a == kInvalidNode || b == kInvalidNode || a == b) continue;
    const double da = dist_t[static_cast<size_t>(a)];
    const double db = dist_t[static_cast<size_t>(b)];
    if (std::abs(da - db) <= kTol) continue;  // same distance: skip (paper)
    if (!(da > db)) continue;  // only graft from the more distant ancestor;
                               // the mirrored meet (u,v) covers the reverse
    // New path: a ->(tree)-> v -> u ->(reverse tree)-> b.  Mark every vertex
    // on it and assign decreasing distances so later repairs orient edges.
    // Collect chain a..v (tree edges go parent->child).
    std::vector<NodeId> down;  // v, parent(v), ..., a
    for (NodeId x = v; x != kInvalidNode; x = parent[static_cast<size_t>(x)]) {
      down.push_back(x);
      if (x == a) break;
    }
    if (down.empty() || down.back() != a) continue;
    std::vector<NodeId> up;  // u, parent(u), ..., b
    for (NodeId x = u; x != kInvalidNode; x = parent[static_cast<size_t>(x)]) {
      up.push_back(x);
      if (x == b) break;
    }
    if (up.empty() || up.back() != b) continue;

    // Assign distances along the path from b backwards: the up-chain is
    // traversed u->...->b via reverse edges; check they exist (they do in
    // bidirectional topologies; otherwise skip the graft).
    bool ok = true;
    for (std::size_t i = 0; i + 1 < up.size(); ++i) {
      if (!g.find_edge(up[i], up[i + 1]).has_value()) {
        ok = false;
        break;
      }
    }
    if (!g.find_edge(v, u).has_value()) ok = false;
    if (!ok) continue;

    // Walk the full path from the sink side, accumulating dist_t.
    double acc = dist_t[static_cast<size_t>(b)];
    for (std::size_t i = up.size(); i-- > 1;) {
      // edge up[i-1] -> up[i]
      acc += edge_weight(up[i - 1], up[i]);
      const NodeId x = up[i - 1];
      if (!on_path[static_cast<size_t>(x)] ||
          acc < dist_t[static_cast<size_t>(x)]) {
        on_path[static_cast<size_t>(x)] = true;
        dist_t[static_cast<size_t>(x)] = acc;
      } else {
        acc = dist_t[static_cast<size_t>(x)];
      }
      grafted_edges.emplace_back(x, up[i]);
    }
    // meet edge v -> u
    acc = dist_t[static_cast<size_t>(u)] + edge_weight(v, u);
    if (!on_path[static_cast<size_t>(v)] ||
        acc < dist_t[static_cast<size_t>(v)]) {
      on_path[static_cast<size_t>(v)] = true;
      dist_t[static_cast<size_t>(v)] = acc;
    }
    grafted_edges.emplace_back(v, u);
    // down-chain: edges parent->child already exist; mark vertices.
    for (std::size_t i = 1; i < down.size(); ++i) {
      const NodeId x = down[i];  // ancestor side
      const double nd =
          dist_t[static_cast<size_t>(down[i - 1])] +
          edge_weight(x, down[i - 1]);
      if (!on_path[static_cast<size_t>(x)] ||
          nd < dist_t[static_cast<size_t>(x)]) {
        on_path[static_cast<size_t>(x)] = true;
        dist_t[static_cast<size_t>(x)] = nd;
      }
      grafted_edges.emplace_back(x, down[i - 1]);
    }
  }

  // --- Final edge selection ---
  // Keep edges between on-path vertices; the paper removes anti-parent
  // edges, and we orient any remaining ambiguous pair by strictly
  // decreasing dist_t (the invariant all tree/grafted edges satisfy),
  // which removes the 2-cycles the pseudocode leaves unresolved.
  std::vector<bool> mask(static_cast<size_t>(g.num_edges()), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (!on_path[static_cast<size_t>(ed.src)] ||
        !on_path[static_cast<size_t>(ed.dst)]) {
      continue;
    }
    if (dist_t[static_cast<size_t>(ed.src)] >
        dist_t[static_cast<size_t>(ed.dst)] + kTol) {
      mask[static_cast<size_t>(e)] = true;
    }
  }
  return mask;
}

}  // namespace

void restrict_to_st_paths(const DiGraph& g, NodeId s, NodeId t,
                          std::vector<bool>& mask) {
  const auto n = static_cast<size_t>(g.num_nodes());
  // Reachable from s through masked edges.
  std::vector<bool> from_s(n, false);
  {
    std::queue<NodeId> q;
    q.push(s);
    from_s[static_cast<size_t>(s)] = true;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (EdgeId e : g.out_edges(v)) {
        if (!mask[static_cast<size_t>(e)]) continue;
        const NodeId u = g.edge(e).dst;
        if (!from_s[static_cast<size_t>(u)]) {
          from_s[static_cast<size_t>(u)] = true;
          q.push(u);
        }
      }
    }
  }
  // Co-reachable to t through masked edges.
  std::vector<bool> to_t(n, false);
  {
    std::queue<NodeId> q;
    q.push(t);
    to_t[static_cast<size_t>(t)] = true;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (EdgeId e : g.in_edges(v)) {
        if (!mask[static_cast<size_t>(e)]) continue;
        const NodeId u = g.edge(e).src;
        if (!to_t[static_cast<size_t>(u)]) {
          to_t[static_cast<size_t>(u)] = true;
          q.push(u);
        }
      }
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!mask[static_cast<size_t>(e)]) continue;
    const auto& ed = g.edge(e);
    mask[static_cast<size_t>(e)] = from_s[static_cast<size_t>(ed.src)] &&
                                   to_t[static_cast<size_t>(ed.dst)];
  }
}

std::vector<bool> prune_dag(const DiGraph& g, NodeId s, NodeId t,
                            const std::vector<double>& weights,
                            PruneMode mode) {
  if (!g.valid_node(s) || !g.valid_node(t) || s == t) {
    throw std::invalid_argument("prune_dag: bad flow endpoints");
  }
  for (double w : weights) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("prune_dag: weights must be positive");
    }
  }
  std::vector<bool> mask;
  switch (mode) {
    case PruneMode::kDistanceToSink:
      mask = monotone_mask(g, graph::dijkstra_to(g, t, weights).dist,
                           /*decreasing=*/true);
      break;
    case PruneMode::kDistanceFromSource:
      mask = monotone_mask(g, graph::dijkstra(g, s, weights).dist,
                           /*decreasing=*/false);
      break;
    case PruneMode::kFrontierMeet:
      mask = frontier_meet_mask(g, s, t, weights);
      break;
  }
  restrict_to_st_paths(g, s, t, mask);
  // Every mode must leave at least the shortest path; if numerical
  // degeneracy (e.g. ties everywhere) emptied the mask, fall back to the
  // downhill DAG which always retains the shortest path.
  bool any = false;
  for (EdgeId e : g.out_edges(s)) {
    if (mask[static_cast<size_t>(e)]) {
      any = true;
      break;
    }
  }
  if (!any) {
    mask = monotone_mask(g, graph::dijkstra_to(g, t, weights).dist,
                         /*decreasing=*/true);
    restrict_to_st_paths(g, s, t, mask);
  }
  // Every mode guarantees a DAG; softmin ratios on a cyclic mask would
  // loop traffic forever (the header's central promise).
  GDDR_VALIDATE(graph::check_acyclic(g, mask, "routing/prune/dag"));
  return mask;
}

}  // namespace gddr::routing
