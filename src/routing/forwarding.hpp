// Forwarding-table export (paper §IX further work: deploying the learned
// strategies in real-world SDN systems).
//
// A destination-based routing — which every strategy this library
// produces is — compiles directly into per-switch flow tables: for each
// (node, destination) the set of next hops with their traffic shares,
// which maps onto OpenFlow group tables with select buckets or onto
// weighted-ECMP entries.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "routing/routing.hpp"

namespace gddr::routing {

struct NextHop {
  graph::EdgeId edge = graph::kInvalidEdge;
  graph::NodeId neighbour = graph::kInvalidNode;
  double share = 0.0;  // fraction of the (node, destination) traffic
};

struct FlowTableEntry {
  graph::NodeId node = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  std::vector<NextHop> next_hops;  // shares sum to 1 when non-empty
};

// True if every flow (s,t) sharing a destination t uses identical
// splitting ratios — the precondition for per-destination tables.
bool is_destination_based(const graph::DiGraph& g, const Routing& routing,
                          double tolerance = 1e-9);

// Compiles a destination-based routing into flow tables (one entry per
// (node, destination) pair with at least one next hop).  Throws
// std::invalid_argument if the routing is not destination-based.
std::vector<FlowTableEntry> to_flow_tables(const graph::DiGraph& g,
                                           const Routing& routing);

// Human-readable rendering of one node's table (for CLI tooling).
std::string format_flow_table(const graph::DiGraph& g,
                              const std::vector<FlowTableEntry>& tables,
                              graph::NodeId node);

}  // namespace gddr::routing
