#include "routing/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace gddr::routing {

using graph::DiGraph;
using graph::EdgeId;
using graph::kInvalidEdge;
using graph::NodeId;

Routing shortest_path_routing(const DiGraph& g,
                              const std::vector<double>& weights) {
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const auto sp = graph::dijkstra_to(g, t, weights);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == t) continue;
      const EdgeId next = sp.parent_edge[static_cast<size_t>(v)];
      if (next == kInvalidEdge) continue;  // unreachable
      for (NodeId s = 0; s < g.num_nodes(); ++s) {
        if (s != t) routing.set_ratio(s, t, next, 1.0);
      }
    }
  }
  return routing;
}

Routing shortest_path_routing(const DiGraph& g) {
  return shortest_path_routing(g, graph::unit_weights(g));
}

Routing ecmp_routing(const DiGraph& g, const std::vector<double>& weights) {
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const auto dag = graph::shortest_path_dag_to(g, t, weights);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == t) continue;
      const auto& outs = dag[static_cast<size_t>(v)];
      if (outs.empty()) continue;
      const double share = 1.0 / static_cast<double>(outs.size());
      for (EdgeId e : outs) {
        for (NodeId s = 0; s < g.num_nodes(); ++s) {
          if (s != t) routing.set_ratio(s, t, e, share);
        }
      }
    }
  }
  return routing;
}

std::vector<double> cancel_flow_cycles(const DiGraph& g,
                                       std::vector<double> flow) {
  if (flow.size() != static_cast<size_t>(g.num_edges())) {
    throw std::invalid_argument("cancel_flow_cycles: size mismatch");
  }
  constexpr double kEps = 1e-12;
  for (;;) {
    // DFS for a cycle in the positive-flow subgraph.
    const auto n = static_cast<size_t>(g.num_nodes());
    std::vector<int> state(n, 0);  // 0 white, 1 grey, 2 black
    std::vector<EdgeId> entered_via(n, kInvalidEdge);
    std::vector<EdgeId> cycle;

    // Iterative DFS with an explicit stack of (node, next out-edge index).
    std::vector<std::pair<NodeId, size_t>> stack;
    bool found = false;
    for (NodeId root = 0; root < g.num_nodes() && !found; ++root) {
      if (state[static_cast<size_t>(root)] != 0) continue;
      stack.clear();
      stack.emplace_back(root, 0);
      state[static_cast<size_t>(root)] = 1;
      while (!stack.empty() && !found) {
        auto& [v, idx] = stack.back();
        const auto outs = g.out_edges(v);
        bool advanced = false;
        while (idx < outs.size()) {
          const EdgeId e = outs[idx++];
          if (flow[static_cast<size_t>(e)] <= kEps) continue;
          const NodeId u = g.edge(e).dst;
          if (state[static_cast<size_t>(u)] == 1) {
            // Found a cycle: walk the grey stack back from v to u.
            cycle.push_back(e);
            NodeId x = v;
            while (x != u) {
              const EdgeId pe = entered_via[static_cast<size_t>(x)];
              cycle.push_back(pe);
              x = g.edge(pe).src;
            }
            found = true;
            break;
          }
          if (state[static_cast<size_t>(u)] == 0) {
            state[static_cast<size_t>(u)] = 1;
            entered_via[static_cast<size_t>(u)] = e;
            stack.emplace_back(u, 0);
            advanced = true;
            break;
          }
        }
        if (found) break;
        if (!advanced && idx >= outs.size()) {
          state[static_cast<size_t>(v)] = 2;
          stack.pop_back();
        }
      }
    }
    if (!found) return flow;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (EdgeId e : cycle) {
      bottleneck = std::min(bottleneck, flow[static_cast<size_t>(e)]);
    }
    for (EdgeId e : cycle) {
      flow[static_cast<size_t>(e)] =
          std::max(0.0, flow[static_cast<size_t>(e)] - bottleneck);
    }
  }
}

Routing routing_from_dest_flows(
    const DiGraph& g, const std::vector<std::vector<double>>& flow_by_dest) {
  if (flow_by_dest.size() != static_cast<size_t>(g.num_nodes())) {
    throw std::invalid_argument("routing_from_dest_flows: size mismatch");
  }
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const auto& raw = flow_by_dest[static_cast<size_t>(t)];
    if (raw.empty()) continue;
    const auto flow = cancel_flow_cycles(g, raw);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == t) continue;
      double out_total = 0.0;
      for (EdgeId e : g.out_edges(v)) {
        out_total += flow[static_cast<size_t>(e)];
      }
      if (out_total <= 1e-12) continue;
      for (EdgeId e : g.out_edges(v)) {
        const double share = flow[static_cast<size_t>(e)] / out_total;
        if (share <= 0.0) continue;
        for (NodeId s = 0; s < g.num_nodes(); ++s) {
          if (s != t) routing.set_ratio(s, t, e, share);
        }
      }
    }
  }
  return routing;
}

std::vector<double> inverse_capacity_weights(const DiGraph& g) {
  std::vector<double> w(static_cast<size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[static_cast<size_t>(e)] = 1.0 / g.edge(e).capacity;
  }
  return w;
}

Routing min_mean_utilisation_routing(const DiGraph& g) {
  return shortest_path_routing(g, inverse_capacity_weights(g));
}

double mean_utilisation(const DiGraph& g, const SimulationResult& sim) {
  if (g.num_edges() == 0) return 0.0;
  double sum = 0.0;
  for (double u : sim.link_utilisation) sum += u;
  return sum / static_cast<double>(g.num_edges());
}

Routing mean_demand_optimal_routing(const DiGraph& g,
                                    const traffic::DemandSequence& history) {
  if (history.empty()) {
    throw std::invalid_argument("mean_demand_optimal_routing: empty history");
  }
  traffic::DemandMatrix mean = traffic::mean_matrix(history);
  // Pairs unseen in the history still need a defined route (future demand
  // matrices may use them); a tiny epsilon demand makes the LP route every
  // pair without noticeably influencing the optimisation.
  const double eps = std::max(1e-9, 1e-4 * mean.max_entry());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s != t && mean.at(s, t) <= 0.0) mean.set(s, t, eps);
    }
  }
  // Exact-only: this baseline needs the flow decomposition, which the
  // FPTAS fallback cannot provide (it yields only the U_max value).
  mcf::SolveOptions solve_options;
  solve_options.allow_fptas_fallback = false;
  const mcf::OptimalResult opt = mcf::solve_optimal(g, mean, solve_options);
  if (opt.provenance != mcf::SolveProvenance::kExact) {
    throw std::runtime_error("mean_demand_optimal_routing: LP failed");
  }
  return routing_from_dest_flows(g, opt.flow_by_dest);
}

Routing uniform_multipath_routing(const DiGraph& g,
                                  const std::vector<double>& weights, int k) {
  if (k <= 0) throw std::invalid_argument("uniform_multipath: k <= 0");
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const auto paths = graph::k_shortest_paths(g, s, t, weights, k);
      if (paths.empty()) continue;
      // Unit demand split evenly over the paths -> edge flows -> cancel any
      // inter-path cycles -> splitting ratios.
      std::vector<double> flow(static_cast<size_t>(g.num_edges()), 0.0);
      const double share = 1.0 / static_cast<double>(paths.size());
      for (const auto& path : paths) {
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          const auto e = g.find_edge(path[i], path[i + 1]);
          flow[static_cast<size_t>(*e)] += share;
        }
      }
      flow = cancel_flow_cycles(g, flow);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == t) continue;
        double out_total = 0.0;
        for (EdgeId e : g.out_edges(v)) {
          out_total += flow[static_cast<size_t>(e)];
        }
        if (out_total <= 1e-12) continue;
        for (EdgeId e : g.out_edges(v)) {
          const double r = flow[static_cast<size_t>(e)] / out_total;
          if (r > 0.0) routing.set_ratio(s, t, e, r);
        }
      }
    }
  }
  return routing;
}

}  // namespace gddr::routing
