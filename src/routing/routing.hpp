// Routing strategies and their simulation (paper §IV-A).
//
// A routing R_{v,(s,t)} : Gamma(v) -> [0,1] gives, for every flow (s,t) and
// vertex v, the fraction of that flow's traffic transiting v that is
// forwarded along each outgoing edge.  A valid routing must lose no
// traffic before the destination (ratios at a transit vertex sum to 1 over
// the vertex's used out-edges) and absorb everything at the destination
// (all ratios zero at t).
//
// `simulate` propagates a demand matrix through a routing and returns the
// per-link loads and the max link utilisation U_max — the quantity the
// whole system optimises (paper Eq. 1).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"

namespace gddr::routing {

class Routing {
 public:
  Routing() = default;
  // Creates an all-zero routing for a graph with `num_nodes` nodes and
  // `num_edges` edges.
  Routing(int num_nodes, int num_edges);

  int num_nodes() const { return n_; }
  int num_edges() const { return ne_; }

  // Flow (s,t) index into the ratio table.
  int flow_index(int s, int t) const { return s * n_ + t; }

  double ratio(int s, int t, graph::EdgeId e) const {
    return ratios_[static_cast<size_t>(flow_index(s, t))]
                  [static_cast<size_t>(e)];
  }
  void set_ratio(int s, int t, graph::EdgeId e, double value);

  // All per-edge ratios for one flow.
  const std::vector<double>& flow_ratios(int s, int t) const {
    return ratios_[static_cast<size_t>(flow_index(s, t))];
  }

 private:
  int n_ = 0;
  int ne_ = 0;
  std::vector<std::vector<double>> ratios_;
};

struct SimulationResult {
  // Traffic volume per edge.
  std::vector<double> link_load;
  // load / capacity per edge.
  std::vector<double> link_utilisation;
  // max over edges of link_utilisation (paper Eq. 1).
  double u_max = 0.0;
  // Total demand that reached its destination; simulate() verifies this
  // matches the injected demand.
  double delivered = 0.0;
};

struct SimulateOptions {
  // Relative tolerance for the delivered-traffic conservation check.
  double conservation_tolerance = 1e-6;
  // If true, a flow whose splitting ratios contain a cycle or lose traffic
  // raises std::runtime_error; if false the loss is reported via
  // `delivered` only.
  bool strict = true;
};

// Propagates `dm` through `routing` on `g`.  Each flow's positive-ratio
// edge set must be acyclic (guaranteed by the softmin translation's DAG
// pruning); cycles raise std::runtime_error.
SimulationResult simulate(const graph::DiGraph& g, const Routing& routing,
                          const traffic::DemandMatrix& dm,
                          const SimulateOptions& options);
SimulationResult simulate(const graph::DiGraph& g, const Routing& routing,
                          const traffic::DemandMatrix& dm);

// Validates the §IV-A constraints for every flow with demand in `dm`:
// (1) at every vertex that carries traffic of flow (s,t) and is not t, the
//     out-ratios sum to 1;
// (2) at t all out-ratios are 0.
// Returns true and leaves `error` empty when valid.
bool validate(const graph::DiGraph& g, const Routing& routing,
              const traffic::DemandMatrix& dm, std::string* error);

// Serving-path pre-simulation validator: for every flow with demand in
// `dm`, checks destination absorption and that every ratio is finite and
// in [0,1].  It deliberately covers only what strict simulation cannot —
// NaN ratios evade the conservation check (NaN comparisons are false) and
// absorption violations are invisible to the propagation sweep — while
// loops and row-sum violations are left to simulate(strict)'s Kahn and
// conservation checks.  The pair covers the full §IV-A contract at a
// fraction of validate()'s cost (a plain O(flows x E) scan, no
// reachability fixed point).  Never throws: returns false with `error`
// describing the first violation.
bool validate_for_serving(const graph::DiGraph& g, const Routing& routing,
                          const traffic::DemandMatrix& dm,
                          std::string* error);

}  // namespace gddr::routing
