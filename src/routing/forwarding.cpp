#include "routing/forwarding.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gddr::routing {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;

bool is_destination_based(const DiGraph& g, const Routing& routing,
                          double tolerance) {
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    // Compare every source's ratios against the first source != t.
    NodeId reference = (t == 0) ? 1 : 0;
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (s == t || s == reference) continue;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (std::abs(routing.ratio(s, t, e) -
                     routing.ratio(reference, t, e)) > tolerance) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<FlowTableEntry> to_flow_tables(const DiGraph& g,
                                           const Routing& routing) {
  if (!is_destination_based(g, routing)) {
    throw std::invalid_argument(
        "to_flow_tables: routing is not destination-based");
  }
  std::vector<FlowTableEntry> tables;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const NodeId source = (t == 0) ? 1 : 0;  // representative source
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == t) continue;
      FlowTableEntry entry;
      entry.node = v;
      entry.destination = t;
      for (EdgeId e : g.out_edges(v)) {
        const double share = routing.ratio(source, t, e);
        if (share > 0.0) {
          entry.next_hops.push_back(NextHop{e, g.edge(e).dst, share});
        }
      }
      if (!entry.next_hops.empty()) tables.push_back(std::move(entry));
    }
  }
  return tables;
}

std::string format_flow_table(const DiGraph& g,
                              const std::vector<FlowTableEntry>& tables,
                              NodeId node) {
  std::ostringstream os;
  os << "flow table for node " << node << ":\n";
  for (const auto& entry : tables) {
    if (entry.node != node) continue;
    os << "  dst " << entry.destination << " ->";
    for (const auto& hop : entry.next_hops) {
      char buf[64];
      std::snprintf(buf, sizeof buf, " via %d (%.1f%%)", hop.neighbour,
                    hop.share * 100.0);
      os << buf;
    }
    os << '\n';
  }
  (void)g;
  return os.str();
}

}  // namespace gddr::routing
