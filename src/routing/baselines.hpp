// Classical routing baselines (paper §VIII-A uses shortest-path routing as
// the non-learned comparison; ECMP, uniform k-shortest multipath and the
// LP-derived optimal routing round out the study in bench_routing_quality).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "mcf/optimal.hpp"
#include "routing/routing.hpp"

namespace gddr::routing {

// Single shortest path per flow under the given edge weights (ties broken
// by Dijkstra settle order), destination-based.
Routing shortest_path_routing(const graph::DiGraph& g,
                              const std::vector<double>& weights);

// Hop-count shortest path (the paper's baseline).
Routing shortest_path_routing(const graph::DiGraph& g);

// Equal-cost multipath: traffic split evenly over every outgoing edge that
// lies on some shortest path toward the destination.
Routing ecmp_routing(const graph::DiGraph& g,
                     const std::vector<double>& weights);

// Uniform split over the k shortest loopless paths of each flow (an
// oblivious-flavoured multipath baseline).
Routing uniform_multipath_routing(const graph::DiGraph& g,
                                  const std::vector<double>& weights, int k);

// Converts the optimal LP solution's per-destination edge flows into a
// destination-based routing (after cancelling any flow cycles).  Simulating
// this routing reproduces the LP's U_max — used to validate the simulator
// against the solver.
Routing routing_from_dest_flows(
    const graph::DiGraph& g,
    const std::vector<std::vector<double>>& flow_by_dest);

// Per-edge weights 1 / capacity: the classic capacity-aware static weight
// setting.  Feeding them to softmin_routing gives a demand-oblivious
// multipath routing that prefers fat links — the serving ladder's rung-3
// fallback when no learned signal is trustworthy.
std::vector<double> inverse_capacity_weights(const graph::DiGraph& g);

// The routing minimising *mean* link utilisation: all-or-nothing shortest
// paths under inverse-capacity edge weights (exact for that objective —
// see mcf/mean_util.hpp).
Routing min_mean_utilisation_routing(const graph::DiGraph& g);

// Mean link utilisation of a simulation result (sum of per-link
// utilisation over |E|).
double mean_utilisation(const graph::DiGraph& g,
                        const SimulationResult& sim);

// A strong data-driven-but-static baseline: the routing that is *optimal
// for the element-wise mean of the historical demand matrices* (found
// with the MCF LP, then fixed).  This is what an operator could deploy
// from traffic logs without any learning; the GDDR agents' advantage over
// it quantifies the value of conditioning on the current demand history.
Routing mean_demand_optimal_routing(const graph::DiGraph& g,
                                    const traffic::DemandSequence& history);

// Removes circulation from a single-destination flow vector: repeatedly
// finds a directed cycle within the positive-flow subgraph and subtracts
// the bottleneck.  Preserves net flow at every node and never increases
// any edge flow.
std::vector<double> cancel_flow_cycles(const graph::DiGraph& g,
                                       std::vector<double> flow);

}  // namespace gddr::routing
