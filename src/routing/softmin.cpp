#include "routing/softmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "routing/routing_invariants.hpp"
#include "util/contract.hpp"

namespace gddr::routing {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;

std::vector<double> softmin(std::span<const double> x, double gamma) {
  if (x.empty()) throw std::invalid_argument("softmin: empty input");
  if (!(gamma > 0.0)) throw std::invalid_argument("softmin: gamma <= 0");
  const double lo = *std::min_element(x.begin(), x.end());
  std::vector<double> out(x.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(-gamma * (x[i] - lo));
    sum += out[i];
  }
  for (double& v : out) v /= sum;
  return out;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Reverse Dijkstra to `t` restricted to masked edges: dist[v] = weighted
// distance from v to t inside the pruned DAG.
std::vector<double> masked_dist_to(const DiGraph& g, NodeId t,
                                   const std::vector<double>& weights,
                                   const std::vector<bool>& mask) {
  const auto n = static_cast<size_t>(g.num_nodes());
  std::vector<double> dist(n, kInf);
  std::vector<bool> done(n, false);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<size_t>(t)] = 0.0;
  pq.emplace(0.0, t);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (done[static_cast<size_t>(v)]) continue;
    done[static_cast<size_t>(v)] = true;
    for (EdgeId e : g.in_edges(v)) {
      if (!mask[static_cast<size_t>(e)]) continue;
      const NodeId u = g.edge(e).src;
      const double nd = d + weights[static_cast<size_t>(e)];
      if (nd < dist[static_cast<size_t>(u)]) {
        dist[static_cast<size_t>(u)] = nd;
        pq.emplace(nd, u);
      }
    }
  }
  return dist;
}

}  // namespace

namespace {

// Fast path for PruneMode::kDistanceToSink.  The downhill DAG depends only
// on the destination, and restricting it to s->t paths only removes edges
// at vertices unreachable from s — vertices that carry no traffic of flow
// (s,t) anyway.  The splitting ratios at every traffic-carrying vertex are
// therefore identical across sources, so the whole translation needs one
// reverse Dijkstra per destination instead of one graph pruning per
// (source, destination) pair.
// Fills the splitting ratios of every flow destined to `t` using the
// downhill DAG induced by `weights` (see the header for why the ratios
// are shared across sources).
void fill_destination_ratios(const DiGraph& g, NodeId t,
                             const std::vector<double>& weights,
                             const SoftminOptions& options,
                             Routing& routing) {
  constexpr double kTieTol = 1e-12;
  const auto sp = graph::dijkstra_to(g, t, weights);
  const auto& dist = sp.dist;
  // Only sources that can reach t carry flow (s,t); writing ratios for the
  // rest would both disagree with the generic per-pair path (which skips
  // unreachable pairs) and waste O(V·deg) writes per destination.
  std::vector<NodeId> sources;
  sources.reserve(static_cast<size_t>(g.num_nodes()));
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (s != t && dist[static_cast<size_t>(s)] != kInf) sources.push_back(s);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == t || dist[static_cast<size_t>(v)] == kInf) continue;
    std::vector<EdgeId> out;
    std::vector<double> cost;
    for (EdgeId e : g.out_edges(v)) {
      const NodeId u = g.edge(e).dst;
      if (dist[static_cast<size_t>(u)] == kInf) continue;
      // Downhill filter: strictly decreasing distance to the sink.
      if (!(dist[static_cast<size_t>(v)] >
            dist[static_cast<size_t>(u)] + kTieTol)) {
        continue;
      }
      out.push_back(e);
      cost.push_back(weights[static_cast<size_t>(e)] +
                     dist[static_cast<size_t>(u)]);
    }
    if (out.empty()) continue;
    std::vector<double> ratios = softmin(cost, options.gamma);
    double sum = 0.0;
    for (double& r : ratios) {
      if (r < options.ratio_floor) r = 0.0;
      sum += r;
    }
    if (sum <= 0.0) {
      const size_t best = static_cast<size_t>(
          std::min_element(cost.begin(), cost.end()) - cost.begin());
      std::fill(ratios.begin(), ratios.end(), 0.0);
      ratios[best] = 1.0;
      sum = 1.0;
    }
    // The renormalised shares form one splitting row; it must be
    // row-stochastic or downstream simulation loses traffic at v.
    GDDR_VALIDATE([&] {
      std::vector<double> shares(out.size());
      for (size_t i = 0; i < out.size(); ++i) shares[i] = ratios[i] / sum;
      double row_sum = 0.0;
      if (!util::contract::row_stochastic(shares, 1e-9, &row_sum)) {
        util::contract::violate_invariant(
            "softmin shares are row-stochastic", "routing/softmin/row",
            util::contract::describe("dest", t, "vertex", v, "row_sum",
                                     row_sum));
      }
    }());
    for (size_t i = 0; i < out.size(); ++i) {
      const double share = ratios[i] / sum;
      if (share <= 0.0) continue;
      for (const NodeId s : sources) routing.set_ratio(s, t, out[i], share);
    }
  }
}

Routing softmin_routing_downhill(const DiGraph& g,
                                 const std::vector<double>& weights,
                                 const SoftminOptions& options) {
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    fill_destination_ratios(g, t, weights, options, routing);
  }
  GDDR_VALIDATE(
      check_softmin_routing(g, routing, 1e-9, "routing/softmin/downhill"));
  return routing;
}

}  // namespace

Routing softmin_routing_per_destination(
    const DiGraph& g, const std::vector<std::vector<double>>& weights_by_dest,
    const SoftminOptions& options) {
  if (weights_by_dest.size() != static_cast<size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "softmin_routing_per_destination: need one weight row per node");
  }
  const std::vector<double> unit(static_cast<size_t>(g.num_edges()), 1.0);
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const auto& row = weights_by_dest[static_cast<size_t>(t)];
    if (!row.empty() && row.size() != static_cast<size_t>(g.num_edges())) {
      throw std::invalid_argument(
          "softmin_routing_per_destination: weight row size mismatch");
    }
    fill_destination_ratios(g, t, row.empty() ? unit : row, options,
                            routing);
  }
  GDDR_VALIDATE(check_softmin_routing(g, routing, 1e-9,
                                      "routing/softmin/per-destination"));
  return routing;
}

Routing softmin_routing(const DiGraph& g, const std::vector<double>& weights,
                        const SoftminOptions& options) {
  if (weights.size() != static_cast<size_t>(g.num_edges())) {
    throw std::invalid_argument("softmin_routing: weight size mismatch");
  }
  if (options.prune_mode == PruneMode::kDistanceToSink) {
    return softmin_routing_downhill(g, weights, options);
  }
  return softmin_routing_generic(g, weights, options);
}

Routing softmin_routing_generic(const DiGraph& g,
                                const std::vector<double>& weights,
                                const SoftminOptions& options) {
  if (weights.size() != static_cast<size_t>(g.num_edges())) {
    throw std::invalid_argument(
        "softmin_routing_generic: weight size mismatch");
  }
  Routing routing(g.num_nodes(), g.num_edges());
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    // Pairs whose sink is unreachable can never carry traffic; skip them
    // (a demand on such a pair would make simulate() fail loudly anyway).
    const auto reach = graph::dijkstra_to(g, t, weights);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (s == t || reach.dist[static_cast<size_t>(s)] == kInf) continue;
      // Convert to a DAG for this source-sink pair (paper Fig. 2 line 1).
      const auto mask = prune_dag(g, s, t, weights, options.prune_mode);
      // Distance of each vertex to the sink on the pruned graph.
      const auto dist = masked_dist_to(g, t, weights, mask);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == t || dist[static_cast<size_t>(v)] == kInf) continue;
        // Out-edge candidates: masked edges whose head still reaches t.
        std::vector<EdgeId> out;
        std::vector<double> cost;
        for (EdgeId e : g.out_edges(v)) {
          if (!mask[static_cast<size_t>(e)]) continue;
          const NodeId u = g.edge(e).dst;
          if (dist[static_cast<size_t>(u)] == kInf) continue;
          out.push_back(e);
          // Edge length + neighbour's distance (paper Fig. 2).
          cost.push_back(weights[static_cast<size_t>(e)] +
                         dist[static_cast<size_t>(u)]);
        }
        if (out.empty()) continue;  // no traffic can arrive here
        std::vector<double> ratios = softmin(cost, options.gamma);
        // Floor tiny ratios and renormalise.
        double sum = 0.0;
        for (double& r : ratios) {
          if (r < options.ratio_floor) r = 0.0;
          sum += r;
        }
        if (sum <= 0.0) {
          // Degenerate flooring: fall back to the single best edge.
          const size_t best = static_cast<size_t>(
              std::min_element(cost.begin(), cost.end()) - cost.begin());
          std::fill(ratios.begin(), ratios.end(), 0.0);
          ratios[best] = 1.0;
          sum = 1.0;
        }
        for (size_t i = 0; i < out.size(); ++i) {
          routing.set_ratio(s, t, out[i], ratios[i] / sum);
        }
      }
    }
  }
  GDDR_VALIDATE(
      check_softmin_routing(g, routing, 1e-9, "routing/softmin/generic"));
  return routing;
}

Routing softmin_routing(const DiGraph& g,
                        const std::vector<double>& weights) {
  return softmin_routing(g, weights, SoftminOptions{});
}

std::vector<double> weights_from_actions(std::span<const double> actions,
                                         double min_weight,
                                         double max_weight) {
  if (!(min_weight > 0.0) || !(max_weight > min_weight)) {
    throw std::invalid_argument("weights_from_actions: bad weight range");
  }
  std::vector<double> weights(actions.size());
  for (size_t i = 0; i < actions.size(); ++i) {
    const double a = std::clamp(actions[i], -1.0, 1.0);
    weights[i] = min_weight + (a + 1.0) * 0.5 * (max_weight - min_weight);
  }
  return weights;
}

}  // namespace gddr::routing
