// Shared experiment configuration for the paper-reproduction benches and
// the examples — one source of truth for the tuned hyperparameters.
//
// Two reproduction-critical findings (documented in DESIGN.md §4) are
// encoded here:
//
//  * Bandit credit assignment.  In data-driven routing the agent's action
//    never influences the demand process, so the return of an action is
//    exactly its immediate reward.  PPO therefore runs with gamma = 0
//    (advantage = r - V(s)), which removes all inter-timestep variance
//    from the gradient; with the conventional gamma = 0.99 the learning
//    signal is drowned and agents plateau at the neutral policy.  The
//    iterative environment is the exception: within one demand-matrix
//    step, earlier micro-actions do shape the final reward, so it uses a
//    gamma high enough to span |E| micro-steps.
//
//  * Heavy-tailed sparse traffic.  With dense near-uniform demand, plain
//    shortest-path routing is already within a few percent of the
//    multicommodity-flow optimum on Topology-Zoo graphs and there is
//    nothing to learn; the paper's "occasional elephant flows" motivation
//    is reproduced with sparse pairs and a strong mouse/elephant split.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "core/scenario.hpp"
#include "obs/sink.hpp"
#include "rl/ppo.hpp"

namespace gddr::core {

// Traffic model used by all figure benches: sparse, heavy-tailed bimodal.
ScenarioParams experiment_scenario_params();

// PPO tuned for the one-shot routing environment (bandit credit).
rl::PpoConfig routing_ppo_config();

// PPO tuned for the iterative environment (sparse within-DM rewards).
rl::PpoConfig iterative_ppo_config(int edges_per_step);

// Policy configurations used by the figure benches.
GnnPolicyConfig experiment_gnn_config(int memory);
IterativeGnnPolicyConfig experiment_iterative_gnn_config(int memory);
MlpPolicyConfig experiment_mlp_config();

// Training budget for benches: the paper trains for 500k environment
// steps; benches default to `default_steps` so the whole suite runs in
// minutes.  Override with GDDR_TRAIN_STEPS=<n> or GDDR_BENCH_SCALE=paper
// (which selects 500k).
long bench_train_steps(long default_steps);

// ---- fault-tolerant training runtime ----

struct ExperimentConfig {
  std::vector<Scenario> scenarios;
  EnvConfig env;
  GnnPolicyConfig policy;
  rl::PpoConfig ppo;
  int num_envs = 4;
  // policy_seed drives weight initialisation; train_seed drives the
  // trainer's shuffle RNG, every collector action stream and every env's
  // scenario sampling — together they pin the whole run.
  std::uint64_t policy_seed = 1;
  std::uint64_t train_seed = 2;
  // Checkpointing: every `checkpoint_every_iterations` PPO iterations the
  // complete training state is written atomically to `checkpoint_path`
  // (empty path = no checkpointing).  A crash between writes loses at
  // most that many iterations; a crash *during* a write loses nothing
  // (tmp + fsync + rename keeps the previous checkpoint intact).
  std::string checkpoint_path;
  long checkpoint_every_iterations = 1;
  // Telemetry: a non-empty `metrics_path` enables the obs::Registry and
  // appends one "gddr.metrics.v1" JSONL record there after every
  // `metrics_every_iterations`-th PPO iteration (crash-safe, like the
  // checkpoints).  Records are cumulative snapshots — see DESIGN.md §7.
  std::string metrics_path;
  long metrics_every_iterations = 1;
};

// Owns the full GNN training stack (vectorised RoutingEnvs with a shared
// LP cache, a GnnPolicy, a PpoTrainer) and runs it fault-tolerantly:
// periodic atomic checkpoints during train(), resume_from() to continue a
// killed run.  Because checkpoints capture every RNG stream and counter,
// a resumed run is bit-identical to the uninterrupted one.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Trains until at least `total_steps` *additional* environment steps
  // have been taken, checkpointing per the config.  Returns per-iteration
  // stats.  The train_abort fault site (util::FaultInjector) throws
  // between iterations — after the periodic checkpoint — which is how
  // tests kill a run at a chosen point.
  std::vector<rl::PpoIterationStats> train(long total_steps);

  // Restores the full training state from a checkpoint written by a
  // config-compatible Experiment.  Throws util::IoError (naming the
  // offending field) on corrupt or mismatched files.
  void resume_from(const std::string& checkpoint_path);

  GnnPolicy& policy() { return *policy_; }
  rl::PpoTrainer& trainer() { return *trainer_; }
  RoutingEnv& env(int i) { return *envs_[static_cast<std::size_t>(i)]; }
  int num_envs() const { return static_cast<int>(envs_.size()); }

 private:
  ExperimentConfig config_;
  std::unique_ptr<obs::JsonlSink> metrics_sink_;
  std::vector<std::unique_ptr<RoutingEnv>> envs_;
  std::unique_ptr<GnnPolicy> policy_;
  std::unique_ptr<rl::PpoTrainer> trainer_;
};

}  // namespace gddr::core
