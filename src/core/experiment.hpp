// Shared experiment configuration for the paper-reproduction benches and
// the examples — one source of truth for the tuned hyperparameters.
//
// Two reproduction-critical findings (documented in DESIGN.md §4) are
// encoded here:
//
//  * Bandit credit assignment.  In data-driven routing the agent's action
//    never influences the demand process, so the return of an action is
//    exactly its immediate reward.  PPO therefore runs with gamma = 0
//    (advantage = r - V(s)), which removes all inter-timestep variance
//    from the gradient; with the conventional gamma = 0.99 the learning
//    signal is drowned and agents plateau at the neutral policy.  The
//    iterative environment is the exception: within one demand-matrix
//    step, earlier micro-actions do shape the final reward, so it uses a
//    gamma high enough to span |E| micro-steps.
//
//  * Heavy-tailed sparse traffic.  With dense near-uniform demand, plain
//    shortest-path routing is already within a few percent of the
//    multicommodity-flow optimum on Topology-Zoo graphs and there is
//    nothing to learn; the paper's "occasional elephant flows" motivation
//    is reproduced with sparse pairs and a strong mouse/elephant split.
#pragma once

#include "core/policies.hpp"
#include "core/scenario.hpp"
#include "rl/ppo.hpp"

namespace gddr::core {

// Traffic model used by all figure benches: sparse, heavy-tailed bimodal.
ScenarioParams experiment_scenario_params();

// PPO tuned for the one-shot routing environment (bandit credit).
rl::PpoConfig routing_ppo_config();

// PPO tuned for the iterative environment (sparse within-DM rewards).
rl::PpoConfig iterative_ppo_config(int edges_per_step);

// Policy configurations used by the figure benches.
GnnPolicyConfig experiment_gnn_config(int memory);
IterativeGnnPolicyConfig experiment_iterative_gnn_config(int memory);
MlpPolicyConfig experiment_mlp_config();

// Training budget for benches: the paper trains for 500k environment
// steps; benches default to `default_steps` so the whole suite runs in
// minutes.  Override with GDDR_TRAIN_STEPS=<n> or GDDR_BENCH_SCALE=paper
// (which selects 500k).
long bench_train_steps(long default_steps);

}  // namespace gddr::core
