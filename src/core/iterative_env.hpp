// Iterative routing environment for the Iterative-GNN policy
// (paper §VII-B).
//
// Instead of emitting all |E| edge weights at once, the agent sets one
// edge weight per micro-step.  The observation carries, per edge, the
// 3-tuple of Eq. 6: (current weight in [-1,1] or 0 if unset, a set flag,
// and a target flag marking the edge whose weight is decided this
// iteration).  The action is the global 2-tuple of Eq. 7: (weight, gamma);
// gamma is read only on the final iteration of a demand-matrix step, when
// the completed weight vector is translated to a routing and rewarded.
//
// Because the action dimensionality is a constant 2 regardless of the
// topology, this policy/environment pair can train across graphs of
// different sizes — the paper's main generalisation vehicle.
//
// Episode structure: each demand matrix is one episode of |E| micro-steps
// (done = true when its final weight is set and the reward lands);
// reset() then *continues* with the next demand matrix of the sequence.
// Terminating at the DM boundary gives PPO exact Monte-Carlo credit for
// the weight vector that produced the reward, without leaking the noise
// of later demand matrices into the advantage (the same bandit-credit
// insight as the one-shot environment's gamma = 0, see
// core/experiment.hpp).
#pragma once

#include <memory>
#include <vector>

#include "core/routing_env.hpp"

namespace gddr::core {

struct IterativeEnvConfig {
  int memory = 5;
  routing::SoftminOptions softmin;  // gamma field is overridden per step
  // See EnvConfig for the rationale behind the narrow weight range.
  double min_weight = 0.5;
  double max_weight = 3.0;
  // The gamma action in [-1,1] maps log-linearly onto this range.
  double min_gamma = 0.5;
  double max_gamma = 20.0;
};

class IterativeRoutingEnv final : public rl::Env {
 public:
  using Mode = RoutingEnv::Mode;

  IterativeRoutingEnv(std::vector<Scenario> scenarios,
                      IterativeEnvConfig config, std::uint64_t seed);

  void set_mode(Mode mode);

  rl::Observation reset() override;
  StepResult step(std::span<const double> action) override;
  int action_dim() const override { return 2; }

  // Checkpoint support (see RoutingEnv): adds the mid-DM micro-step
  // position (edge cursor and pending weight vector) to the base state.
  std::vector<std::uint8_t> save_state() const override;
  void restore_state(std::span<const std::uint8_t> blob) override;

  double last_ratio() const { return last_ratio_; }
  const graph::DiGraph& current_graph() const;
  // Micro-steps per demand-matrix timestep (= current |E|).
  int edges_per_step() const { return current_graph().num_edges(); }
  Mode mode() const { return mode_; }
  // Total (scenario, test sequence) pairs — one test episode each.
  std::size_t num_test_episodes() const;

  // Parallel-evaluation support (see RoutingEnv): a test unit is one
  // (scenario, test sequence) pair; each unit spans several episodes here
  // (one per demand matrix).  seek_test_unit requires kTest mode.
  std::size_t num_test_units() const;
  int episodes_in_unit(std::size_t unit) const;
  void seek_test_unit(std::size_t unit);

  mcf::OptimalCache& cache() { return *cache_; }

  // See RoutingEnv: vectorised instances stepping the same scenarios can
  // share one internally-locked LP cache.
  std::shared_ptr<mcf::OptimalCache> shared_cache() const { return cache_; }
  void set_shared_cache(std::shared_ptr<mcf::OptimalCache> cache);

  // gamma value produced by mapping action component a in [-1,1].
  double map_gamma(double a) const;

 private:
  const traffic::DemandSequence& current_sequence() const;
  rl::Observation build_iterative_observation() const;
  void start_dm_step();

  std::vector<Scenario> scenarios_;
  IterativeEnvConfig config_;
  util::Rng rng_;
  std::shared_ptr<mcf::OptimalCache> cache_;

  Mode mode_ = Mode::kTrain;
  std::size_t scenario_idx_ = 0;
  std::size_t sequence_idx_ = 0;
  std::size_t test_cursor_ = 0;
  bool in_sequence_ = false;  // mid-sequence: reset() continues it
  int t_ = 0;           // index of the DM the in-progress weights route
  int edge_cursor_ = 0;  // which edge is being set this micro-step
  std::vector<double> pending_weights_;  // raw [-1,1] values set so far
  double last_ratio_ = 0.0;
};

}  // namespace gddr::core
