// Evaluation harness: the quantity plotted by the paper's Figures 6 and 8
// is the mean over test demand matrices of U_max_agent / U_max_optimal
// (lower is better, 1.0 is the LP optimum).
#pragma once

#include <functional>

#include "core/iterative_env.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"

namespace gddr::core {

struct EvalResult {
  double mean_ratio = 0.0;
  double stddev = 0.0;
  double min_ratio = 0.0;
  double max_ratio = 0.0;
  int steps = 0;     // demand matrices evaluated
  int episodes = 0;  // test sequences evaluated
};

// Runs the trainer's deterministic policy over every test sequence of
// every scenario in the environment (the env is switched to test mode and
// back).  One episode per (scenario, test sequence).
EvalResult evaluate_policy(rl::PpoTrainer& trainer, RoutingEnv& env);
EvalResult evaluate_policy(rl::PpoTrainer& trainer, IterativeRoutingEnv& env);

// Evaluates a fixed (non-learned) routing scheme on the test sequences of
// `scenarios`.  `make_routing` builds the scheme once per topology; the
// same demand-matrix indices as the RL episodes ([memory, length)) are
// scored so results are directly comparable.
EvalResult evaluate_fixed(
    const std::vector<Scenario>& scenarios, int memory,
    mcf::OptimalCache& cache,
    const std::function<routing::Routing(const graph::DiGraph&)>&
        make_routing);

// Hop-count shortest-path routing (the paper's dotted baseline).
EvalResult evaluate_shortest_path(const std::vector<Scenario>& scenarios,
                                  int memory, mcf::OptimalCache& cache);

}  // namespace gddr::core
