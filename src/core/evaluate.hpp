// Evaluation harness: the quantity plotted by the paper's Figures 6 and 8
// is the mean over test demand matrices of U_max_agent / U_max_optimal
// (lower is better, 1.0 is the LP optimum).
//
// Every entry point accepts an optional util::ThreadPool.  Work is farmed
// out per test *unit* (one (scenario, test sequence) pair); each worker
// drives its own environment copy (sharing the memoised LP cache) and the
// per-unit ratio streams are folded into the summary statistics in
// canonical unit order — so the returned EvalResult is bit-identical to
// the serial sweep for any worker count.
#pragma once

#include <functional>

#include "core/iterative_env.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "util/thread_pool.hpp"

namespace gddr::core {

struct EvalResult {
  double mean_ratio = 0.0;
  double stddev = 0.0;
  double min_ratio = 0.0;
  double max_ratio = 0.0;
  int steps = 0;     // demand matrices evaluated
  int episodes = 0;  // test episodes evaluated
};

// Runs the trainer's deterministic policy over every test sequence of
// every scenario in the environment.  The env itself is left untouched:
// workers evaluate copies switched to test mode.
EvalResult evaluate_policy(rl::PpoTrainer& trainer, RoutingEnv& env,
                           util::ThreadPool* pool = nullptr);
EvalResult evaluate_policy(rl::PpoTrainer& trainer, IterativeRoutingEnv& env,
                           util::ThreadPool* pool = nullptr);

// Evaluates a fixed (non-learned) routing scheme on the test sequences of
// `scenarios`.  `make_routing` builds the scheme per topology and must be
// pure (it is invoked concurrently under a pool); the same demand-matrix
// indices as the RL episodes ([memory, length)) are scored so results are
// directly comparable.
EvalResult evaluate_fixed(
    const std::vector<Scenario>& scenarios, int memory,
    mcf::OptimalCache& cache,
    const std::function<routing::Routing(const graph::DiGraph&)>&
        make_routing,
    util::ThreadPool* pool = nullptr);

// Hop-count shortest-path routing (the paper's dotted baseline).
EvalResult evaluate_shortest_path(const std::vector<Scenario>& scenarios,
                                  int memory, mcf::OptimalCache& cache,
                                  util::ThreadPool* pool = nullptr);

}  // namespace gddr::core
