#include "core/evaluate.hpp"

#include "routing/baselines.hpp"
#include "util/stats.hpp"

namespace gddr::core {

namespace {

EvalResult finish(const util::RunningStat& stat, int episodes) {
  EvalResult r;
  r.mean_ratio = stat.mean();
  r.stddev = stat.stddev();
  r.min_ratio = stat.min();
  r.max_ratio = stat.max();
  r.steps = static_cast<int>(stat.count());
  r.episodes = episodes;
  return r;
}

template <typename EnvT>
EvalResult evaluate_policy_impl(rl::PpoTrainer& trainer, EnvT& env) {
  // Evaluate on a copy: the caller may be mid-rollout on `env`, and
  // driving episodes through the trainer's live environment would
  // desynchronise the trainer's cached observation from the env state.
  // The copy shares the optimal-utilisation cache (shared_ptr), so no LP
  // work is repeated.
  EnvT eval_env = env;
  eval_env.set_mode(EnvT::Mode::kTest);
  std::size_t episodes = 0;
  // One episode per (scenario, test sequence) pair; set_mode reset the
  // cursor so the sweep is exhaustive and deterministic.
  util::RunningStat stat;
  const std::size_t total = eval_env.num_test_episodes();
  for (std::size_t ep = 0; ep < total; ++ep) {
    rl::Observation obs = eval_env.reset();
    for (;;) {
      const std::vector<double> action = trainer.act_deterministic(obs);
      auto result = eval_env.step(action);
      if (result.reward != 0.0) stat.add(-result.reward);
      if (result.done) break;
      obs = std::move(result.obs);
    }
    ++episodes;
  }
  return finish(stat, static_cast<int>(episodes));
}

}  // namespace

EvalResult evaluate_policy(rl::PpoTrainer& trainer, RoutingEnv& env) {
  return evaluate_policy_impl(trainer, env);
}

EvalResult evaluate_policy(rl::PpoTrainer& trainer,
                           IterativeRoutingEnv& env) {
  return evaluate_policy_impl(trainer, env);
}

EvalResult evaluate_fixed(
    const std::vector<Scenario>& scenarios, int memory,
    mcf::OptimalCache& cache,
    const std::function<routing::Routing(const graph::DiGraph&)>&
        make_routing) {
  util::RunningStat stat;
  int episodes = 0;
  for (const auto& scenario : scenarios) {
    const routing::Routing strategy = make_routing(scenario.graph);
    for (const auto& seq : scenario.test_sequences) {
      for (std::size_t t = static_cast<std::size_t>(memory); t < seq.size();
           ++t) {
        const auto sim = routing::simulate(scenario.graph, strategy, seq[t]);
        const double u_opt = cache.u_max(scenario.graph, seq[t]);
        stat.add(u_opt > 0.0 ? sim.u_max / u_opt : 1.0);
      }
      ++episodes;
    }
  }
  return finish(stat, episodes);
}

EvalResult evaluate_shortest_path(const std::vector<Scenario>& scenarios,
                                  int memory, mcf::OptimalCache& cache) {
  return evaluate_fixed(scenarios, memory, cache,
                        [](const graph::DiGraph& g) {
                          return routing::shortest_path_routing(g);
                        });
}

}  // namespace gddr::core
