#include "core/evaluate.hpp"

#include <algorithm>

#include "routing/baselines.hpp"
#include "util/stats.hpp"

namespace gddr::core {

namespace {

EvalResult finish(const util::RunningStat& stat, int episodes) {
  EvalResult r;
  r.mean_ratio = stat.mean();
  r.stddev = stat.stddev();
  r.min_ratio = stat.min();
  r.max_ratio = stat.max();
  r.steps = static_cast<int>(stat.count());
  r.episodes = episodes;
  return r;
}

// Folds per-unit ratio streams into the summary in canonical unit order,
// so the aggregate floating-point accumulation matches the serial sweep
// exactly, independent of which worker produced which unit.
EvalResult merge_units(const std::vector<std::vector<double>>& unit_ratios,
                       int episodes) {
  util::RunningStat stat;
  for (const auto& ratios : unit_ratios) {
    for (const double r : ratios) stat.add(r);
  }
  return finish(stat, episodes);
}

template <typename EnvT>
EvalResult evaluate_policy_impl(rl::PpoTrainer& trainer, EnvT& env,
                                util::ThreadPool* pool) {
  // Workers evaluate on copies: the caller may be mid-rollout on `env`,
  // and driving episodes through the trainer's live environment would
  // desynchronise the trainer's cached observation from the env state.
  // Copies share the optimal-utilisation cache (shared_ptr, internally
  // locked), so no LP work is repeated across workers.
  const std::size_t units = env.num_test_units();
  const std::size_t workers =
      pool != nullptr && pool->size() > 1
          ? std::min<std::size_t>(static_cast<std::size_t>(pool->size()),
                                  units)
          : 1;

  std::vector<std::vector<double>> unit_ratios(units);
  std::vector<int> unit_episodes(units, 0);
  // One env copy per worker, striding over units.  Test-mode resets are
  // deterministic (no RNG), so each unit's trajectory depends only on the
  // unit index and the policy — not on the worker that ran it.
  util::parallel_for(pool, workers, [&](std::size_t w) {
    EnvT eval_env = env;
    eval_env.set_mode(EnvT::Mode::kTest);
    for (std::size_t unit = w; unit < units; unit += workers) {
      eval_env.seek_test_unit(unit);
      const int episodes = eval_env.episodes_in_unit(unit);
      std::vector<double>& ratios = unit_ratios[unit];
      for (int ep = 0; ep < episodes; ++ep) {
        rl::Observation obs = eval_env.reset();
        for (;;) {
          const std::vector<double> action = trainer.act_deterministic(obs);
          auto result = eval_env.step(action);
          if (result.reward != 0.0) ratios.push_back(-result.reward);
          if (result.done) break;
          obs = std::move(result.obs);
        }
      }
      unit_episodes[unit] = episodes;
    }
  });

  int episodes = 0;
  for (const int e : unit_episodes) episodes += e;
  return merge_units(unit_ratios, episodes);
}

}  // namespace

EvalResult evaluate_policy(rl::PpoTrainer& trainer, RoutingEnv& env,
                           util::ThreadPool* pool) {
  return evaluate_policy_impl(trainer, env, pool);
}

EvalResult evaluate_policy(rl::PpoTrainer& trainer, IterativeRoutingEnv& env,
                           util::ThreadPool* pool) {
  return evaluate_policy_impl(trainer, env, pool);
}

EvalResult evaluate_fixed(
    const std::vector<Scenario>& scenarios, int memory,
    mcf::OptimalCache& cache,
    const std::function<routing::Routing(const graph::DiGraph&)>&
        make_routing,
    util::ThreadPool* pool) {
  // Flatten to (scenario, test sequence) units; each unit is scored
  // independently (make_routing is pure, the cache is internally locked).
  struct Unit {
    const Scenario* scenario;
    const traffic::DemandSequence* seq;
  };
  std::vector<Unit> units;
  for (const auto& scenario : scenarios) {
    for (const auto& seq : scenario.test_sequences) {
      units.push_back({&scenario, &seq});
    }
  }

  const auto unit_ratios = util::parallel_map(
      pool, units.size(), [&](std::size_t u) {
        const Unit& unit = units[u];
        const routing::Routing strategy =
            make_routing(unit.scenario->graph);
        std::vector<double> ratios;
        for (std::size_t t = static_cast<std::size_t>(memory);
             t < unit.seq->size(); ++t) {
          const auto sim = routing::simulate(unit.scenario->graph, strategy,
                                             (*unit.seq)[t]);
          const double u_opt =
              cache.u_max(unit.scenario->graph, (*unit.seq)[t]);
          ratios.push_back(u_opt > 0.0 ? sim.u_max / u_opt : 1.0);
        }
        return ratios;
      });
  return merge_units(unit_ratios, static_cast<int>(units.size()));
}

EvalResult evaluate_shortest_path(const std::vector<Scenario>& scenarios,
                                  int memory, mcf::OptimalCache& cache,
                                  util::ThreadPool* pool) {
  return evaluate_fixed(
      scenarios, memory, cache,
      [](const graph::DiGraph& g) {
        return routing::shortest_path_routing(g);
      },
      pool);
}

}  // namespace gddr::core
