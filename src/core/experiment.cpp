#include "core/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/fault.hpp"

namespace gddr::core {

ScenarioParams experiment_scenario_params() {
  ScenarioParams p;  // 60 DMs, cycle 10, 7 train / 3 test (paper §VIII-D)
  // Sparse pairs with a few very large elephants: the regime where the
  // routing choice matters most (shortest-path routing lands ~2x above
  // the optimum) and where per-node demand sums clearly localise the
  // elephants for the GNN.
  p.demand.pair_density = 0.15;
  p.demand.mouse_mean = 150.0;
  p.demand.mouse_stddev = 40.0;
  p.demand.elephant_mean = 4000.0;
  p.demand.elephant_stddev = 500.0;
  p.demand.elephant_prob = 0.06;
  return p;
}

rl::PpoConfig routing_ppo_config() {
  rl::PpoConfig cfg;
  cfg.rollout_steps = 512;
  cfg.minibatch_size = 64;
  cfg.epochs = 4;
  cfg.learning_rate = 3e-3;
  // A small entropy bonus plus the wide initial log-std below keep the
  // exploration Gaussian from collapsing before the (initially weak)
  // reward gradient is picked up.
  cfg.entropy_coef = 5e-3;
  cfg.gamma = 0.0;  // bandit credit — see header
  cfg.gae_lambda = 0.0;
  cfg.reward_scale = 1.0;
  return cfg;
}

rl::PpoConfig iterative_ppo_config(int edges_per_step) {
  rl::PpoConfig cfg = routing_ppo_config();
  // Episodes are one demand matrix long (|E| micro-steps, reward on the
  // last); with gamma = lambda = 1 every micro-step's advantage is
  // exactly (final reward - V(s)) — undiscounted Monte-Carlo credit for
  // the weight vector that earned the reward, with no cross-DM leakage.
  cfg.gamma = 1.0;
  cfg.gae_lambda = 1.0;
  cfg.rollout_steps = 16 * std::max(2, edges_per_step);
  return cfg;
}

GnnPolicyConfig experiment_gnn_config(int memory) {
  GnnPolicyConfig cfg;
  cfg.memory = memory;
  cfg.latent = 16;
  cfg.steps = 2;
  cfg.mlp_hidden = {32};
  cfg.init_log_std = -0.3;  // sigma ~0.74: explore most of the action cube
  return cfg;
}

IterativeGnnPolicyConfig experiment_iterative_gnn_config(int memory) {
  IterativeGnnPolicyConfig cfg;
  cfg.memory = memory;
  cfg.latent = 16;
  cfg.steps = 2;
  cfg.mlp_hidden = {32};
  cfg.init_log_std = -0.3;
  return cfg;
}

MlpPolicyConfig experiment_mlp_config() {
  MlpPolicyConfig cfg;
  cfg.pi_hidden = {128, 128};
  cfg.vf_hidden = {128, 128};
  cfg.init_log_std = -0.3;
  return cfg;
}

long bench_train_steps(long default_steps) {
  if (const char* steps = std::getenv("GDDR_TRAIN_STEPS")) {
    const long parsed = std::strtol(steps, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  if (const char* scale = std::getenv("GDDR_BENCH_SCALE")) {
    if (std::string(scale) == "paper") return 500000;
  }
  return default_steps;
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)) {
  if (config_.num_envs <= 0) {
    throw std::invalid_argument("Experiment: num_envs <= 0");
  }
  if (config_.checkpoint_every_iterations <= 0) {
    throw std::invalid_argument(
        "Experiment: checkpoint_every_iterations <= 0");
  }
  if (config_.metrics_every_iterations <= 0) {
    throw std::invalid_argument("Experiment: metrics_every_iterations <= 0");
  }
  if (!config_.metrics_path.empty()) {
    obs::Registry::instance().enable();
    metrics_sink_ = std::make_unique<obs::JsonlSink>(config_.metrics_path);
  }
  envs_ = make_vec_envs(config_.scenarios, config_.env, config_.train_seed,
                        config_.num_envs);
  util::Rng policy_rng(config_.policy_seed);
  policy_ = std::make_unique<GnnPolicy>(config_.policy, policy_rng);
  std::vector<rl::Env*> env_ptrs;
  env_ptrs.reserve(envs_.size());
  for (const auto& env : envs_) env_ptrs.push_back(env.get());
  trainer_ = std::make_unique<rl::PpoTrainer>(
      *policy_, std::move(env_ptrs), config_.ppo, config_.train_seed);
}

std::vector<rl::PpoIterationStats> Experiment::train(long total_steps) {
  std::vector<rl::PpoIterationStats> history;
  const long target = trainer_->total_env_steps() + total_steps;
  while (trainer_->total_env_steps() < target) {
    // The abort site fires between iterations — after the previous
    // checkpoint landed — which is exactly where a SIGKILL would leave a
    // production run.
    if (util::inject(util::FaultSite::kTrainAbort)) {
      throw std::runtime_error("Experiment: fault-injected training abort");
    }
    history.push_back(trainer_->train_iteration());
    if (!config_.checkpoint_path.empty() &&
        trainer_->iterations() % config_.checkpoint_every_iterations == 0) {
      trainer_->save_checkpoint(config_.checkpoint_path);
    }
    // The metrics record lands after the checkpoint so its ckpt/write
    // timer covers every write of this iteration.
    if (metrics_sink_ &&
        trainer_->iterations() % config_.metrics_every_iterations == 0) {
      metrics_sink_->append(
          obs::make_record(static_cast<int>(trainer_->iterations()) - 1,
                           obs::Registry::instance().snapshot()));
    }
  }
  return history;
}

void Experiment::resume_from(const std::string& checkpoint_path) {
  trainer_->load_checkpoint(checkpoint_path);
}

}  // namespace gddr::core
