#include "core/policies.hpp"

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace gddr::core {

using gnn::EncodeProcessDecodeConfig;
using gnn::GraphSpec;
using gnn::GraphVars;
using nn::Tape;
using nn::Tensor;

namespace {

nn::MlpConfig mlp_config(const std::vector<int>& hidden, double output_scale) {
  nn::MlpConfig cfg;
  cfg.hidden = hidden;
  cfg.hidden_activation = nn::Activation::kTanh;
  cfg.output_activation = nn::Activation::kIdentity;
  cfg.output_scale = output_scale;
  return cfg;
}

// Assembles the on-tape graph attributes from an observation.
GraphVars graph_vars_from(Tape& tape, const rl::Observation& obs) {
  return GraphVars{tape.constant(obs.nodes), tape.constant(obs.edges),
                   tape.constant(obs.globals)};
}

std::size_t spec_hash(const rl::Observation& obs) {
  // FNV-1a over the connectivity ints; collisions are resolved by the
  // full equality check in cached_spec.
  std::size_t h = 1469598103934665603ULL;
  auto mix = [&h](int v) {
    h ^= static_cast<std::size_t>(static_cast<unsigned>(v));
    h *= 1099511628211ULL;
  };
  mix(obs.num_nodes);
  for (int v : obs.senders) mix(v);
  for (int v : obs.receivers) mix(v);
  return h;
}

// Most runs train on a handful of topologies, each observed thousands of
// times; beyond this the cache resets rather than growing unboundedly.
constexpr std::size_t kSpecCacheCap = 64;

// Returns a GraphSpec (with gather/segment plans built) for the
// observation's connectivity, cached per topology.  Policies run
// concurrently on rollout-collector workers, so the cache is thread-local
// — no locks on the hot path.  The returned reference is valid until this
// thread's next cached_spec call; the kernel plans themselves are
// shared_ptrs retained by the tape, so they outlive any cache eviction.
const GraphSpec& cached_spec(const rl::Observation& obs) {
  struct Entry {
    std::size_t hash = 0;
    GraphSpec spec;
  };
  thread_local std::vector<std::unique_ptr<Entry>> cache;
  const std::size_t h = spec_hash(obs);
  for (const auto& e : cache) {
    if (e->hash == h && e->spec.num_nodes == obs.num_nodes &&
        e->spec.senders == obs.senders &&
        e->spec.receivers == obs.receivers) {
      return e->spec;
    }
  }
  if (cache.size() >= kSpecCacheCap) cache.clear();
  auto e = std::make_unique<Entry>();
  e->hash = h;
  e->spec.num_nodes = obs.num_nodes;
  e->spec.senders = obs.senders;
  e->spec.receivers = obs.receivers;
  e->spec.ensure_plans();
  cache.push_back(std::move(e));
  return cache.back()->spec;
}

}  // namespace

// ---------------- MlpPolicy ----------------

MlpPolicy::MlpPolicy(int obs_dim, int action_dim,
                     const MlpPolicyConfig& config, util::Rng& rng)
    : obs_dim_(obs_dim),
      action_dim_(action_dim),
      pi_(obs_dim, action_dim, mlp_config(config.pi_hidden, 0.01), rng),
      vf_(obs_dim, 1, mlp_config(config.vf_hidden, 1.0), rng),
      log_std_(Tensor(1, action_dim,
                      static_cast<float>(config.init_log_std))) {}

int MlpPolicy::action_dim(const rl::Observation& obs) const {
  if (static_cast<int>(obs.flat.size()) != obs_dim_) {
    throw std::invalid_argument(
        "MlpPolicy: observation size " + std::to_string(obs.flat.size()) +
        " != configured " + std::to_string(obs_dim_) +
        " (MLP policies are fixed to one topology)");
  }
  return action_dim_;
}

Tape::Var MlpPolicy::action_mean(Tape& tape, const rl::Observation& obs) {
  (void)action_dim(obs);  // validates the observation size
  const Tape::Var x = tape.constant(Tensor::row(
      std::span<const double>(obs.flat.data(), obs.flat.size())));
  return pi_.forward(tape, x);
}

Tape::Var MlpPolicy::value(Tape& tape, const rl::Observation& obs) {
  const Tape::Var x = tape.constant(Tensor::row(
      std::span<const double>(obs.flat.data(), obs.flat.size())));
  return vf_.forward(tape, x);
}

Tape::Var MlpPolicy::log_std_row(Tape& tape, int adim) {
  if (adim != action_dim_) {
    throw std::invalid_argument("MlpPolicy: action dim mismatch");
  }
  return tape.leaf(log_std_);
}

std::vector<nn::Parameter*> MlpPolicy::parameters() {
  std::vector<nn::Parameter*> params = pi_.parameters();
  for (auto* p : vf_.parameters()) params.push_back(p);
  params.push_back(&log_std_);
  return params;
}

std::size_t MlpPolicy::num_parameters() const {
  return pi_.num_parameters() + vf_.num_parameters() + log_std_.size();
}

// ---------------- GnnPolicy ----------------

namespace {

EncodeProcessDecodeConfig gnn_pi_config(const GnnPolicyConfig& c) {
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = c.node_feature_width > 0 ? c.node_feature_width
                                         : 2 * c.memory;
  cfg.edge_in = 1;
  cfg.global_in = 1;
  cfg.latent = c.latent;
  cfg.steps = c.steps;
  cfg.node_out = 1;
  cfg.edge_out = 1;  // one routing weight per edge (Eq. 5)
  cfg.global_out = 1;
  cfg.mlp_hidden = c.mlp_hidden;
  cfg.decoder_output_scale = c.output_scale;
  return cfg;
}

EncodeProcessDecodeConfig gnn_vf_config(const GnnPolicyConfig& c) {
  EncodeProcessDecodeConfig cfg = gnn_pi_config(c);
  cfg.global_out = 1;  // value read from the global attribute
  cfg.decoder_output_scale = 1.0;
  return cfg;
}

}  // namespace

GnnPolicy::GnnPolicy(const GnnPolicyConfig& config, util::Rng& rng)
    : config_(config),
      pi_(gnn_pi_config(config), rng),
      vf_(gnn_vf_config(config), rng),
      log_std_scalar_(Tensor(1, 1, static_cast<float>(config.init_log_std))) {}

int GnnPolicy::action_dim(const rl::Observation& obs) const {
  return static_cast<int>(obs.senders.size());
}

Tape::Var GnnPolicy::action_mean(Tape& tape, const rl::Observation& obs) {
  const GraphSpec& spec = cached_spec(obs);
  const GraphVars out = pi_.forward(tape, spec, graph_vars_from(tape, obs));
  // Decoded edge attributes (E x 1) -> action row (1 x E).
  return tape.reshape(out.edges, 1, spec.num_edges());
}

namespace {

// Batched specs are derived from a cached base spec and reused across
// requests the same way cached_spec entries are: thread-local (policies
// run on concurrent serving workers), keyed by base connectivity + batch,
// reset past the cap rather than growing without bound.  The returned
// reference is valid until this thread's next cached_batched_spec call.
const gnn::BatchedGraphSpec& cached_batched_spec(const rl::Observation& obs,
                                                 const GraphSpec& base,
                                                 int batch) {
  struct Entry {
    std::size_t hash = 0;
    int batch = 0;
    int num_nodes = 0;
    std::vector<int> senders;
    std::vector<int> receivers;
    gnn::BatchedGraphSpec bspec;
  };
  thread_local std::vector<std::unique_ptr<Entry>> cache;
  const std::size_t h = spec_hash(obs);
  for (const auto& e : cache) {
    if (e->hash == h && e->batch == batch &&
        e->num_nodes == obs.num_nodes && e->senders == obs.senders &&
        e->receivers == obs.receivers) {
      return e->bspec;
    }
  }
  if (cache.size() >= kSpecCacheCap) cache.clear();
  auto e = std::make_unique<Entry>();
  e->hash = h;
  e->batch = batch;
  e->num_nodes = obs.num_nodes;
  e->senders = obs.senders;
  e->receivers = obs.receivers;
  e->bspec = gnn::BatchedGraphSpec::from(base, batch);
  cache.push_back(std::move(e));
  return cache.back()->bspec;
}

// Stacks per-observation attribute tensors row-wise (copy b's rows are
// contiguous at offset b * rows).
Tensor stack_tensors(const std::vector<const rl::Observation*>& obs,
                     const Tensor rl::Observation::* member) {
  const Tensor& first = (*obs.front()).*member;
  Tensor stacked(static_cast<int>(obs.size()) * first.rows(), first.cols());
  int row = 0;
  for (const rl::Observation* o : obs) {
    const Tensor& t = o->*member;
    for (int i = 0; i < t.rows(); ++i, ++row) {
      for (int j = 0; j < t.cols(); ++j) {
        stacked.at(row, j) = t.at(i, j);
      }
    }
  }
  return stacked;
}

}  // namespace

bool GnnPolicy::action_means(Tape& tape,
                             const std::vector<const rl::Observation*>& obs,
                             Tape::Var& out) {
  if (obs.empty()) return false;
  const rl::Observation& first = *obs.front();
  for (const rl::Observation* o : obs) {
    if (o->num_nodes != first.num_nodes || o->senders != first.senders ||
        o->receivers != first.receivers ||
        !o->nodes.same_shape(first.nodes) ||
        !o->edges.same_shape(first.edges) ||
        !o->globals.same_shape(first.globals)) {
      return false;
    }
  }
  const GraphSpec& base = cached_spec(first);
  const int batch = static_cast<int>(obs.size());
  const gnn::BatchedGraphSpec& bspec =
      cached_batched_spec(first, base, batch);
  const GraphVars in{
      tape.constant(stack_tensors(obs, &rl::Observation::nodes)),
      tape.constant(stack_tensors(obs, &rl::Observation::edges)),
      tape.constant(stack_tensors(obs, &rl::Observation::globals))};
  const GraphVars decoded = pi_.forward_batched(tape, bspec, in);
  // Decoded stacked edge attributes (batch*E x 1) -> one action row per
  // copy (batch x E): row-major reshape keeps copy b's E edges on row b.
  out = tape.reshape(decoded.edges, batch, bspec.base_edges);
  return true;
}

Tape::Var GnnPolicy::value(Tape& tape, const rl::Observation& obs) {
  const GraphSpec& spec = cached_spec(obs);
  const GraphVars out = vf_.forward(tape, spec, graph_vars_from(tape, obs));
  return out.globals;  // 1 x 1
}

Tape::Var GnnPolicy::log_std_row(Tape& tape, int adim) {
  return tape.broadcast_cols(tape.leaf(log_std_scalar_), adim);
}

std::vector<nn::Parameter*> GnnPolicy::parameters() {
  std::vector<nn::Parameter*> params = pi_.parameters();
  for (auto* p : vf_.parameters()) params.push_back(p);
  params.push_back(&log_std_scalar_);
  return params;
}

std::size_t GnnPolicy::num_parameters() const {
  return pi_.num_parameters() + vf_.num_parameters() + log_std_scalar_.size();
}

// ---------------- IterativeGnnPolicy ----------------

namespace {

EncodeProcessDecodeConfig iter_pi_config(const IterativeGnnPolicyConfig& c) {
  EncodeProcessDecodeConfig cfg;
  cfg.node_in = 2 * c.memory;
  cfg.edge_in = 4;  // Eq. 6's (weight, set, target) + normalised capacity
  cfg.global_in = 1;
  cfg.latent = c.latent;
  cfg.steps = c.steps;
  cfg.node_out = 1;
  cfg.edge_out = 1;
  cfg.global_out = 2;  // (weight, gamma) per Eq. 7
  cfg.mlp_hidden = c.mlp_hidden;
  cfg.decoder_output_scale = c.output_scale;
  return cfg;
}

EncodeProcessDecodeConfig iter_vf_config(const IterativeGnnPolicyConfig& c) {
  EncodeProcessDecodeConfig cfg = iter_pi_config(c);
  cfg.global_out = 1;
  cfg.decoder_output_scale = 1.0;
  return cfg;
}

}  // namespace

IterativeGnnPolicy::IterativeGnnPolicy(const IterativeGnnPolicyConfig& config,
                                       util::Rng& rng)
    : config_(config),
      pi_(iter_pi_config(config), rng),
      vf_(iter_vf_config(config), rng),
      log_std_(Tensor(1, 2, static_cast<float>(config.init_log_std))) {}

Tape::Var IterativeGnnPolicy::action_mean(Tape& tape,
                                          const rl::Observation& obs) {
  const GraphSpec& spec = cached_spec(obs);
  const GraphVars out = pi_.forward(tape, spec, graph_vars_from(tape, obs));
  return out.globals;
}

Tape::Var IterativeGnnPolicy::value(Tape& tape, const rl::Observation& obs) {
  const GraphSpec& spec = cached_spec(obs);
  const GraphVars out = vf_.forward(tape, spec, graph_vars_from(tape, obs));
  return out.globals;
}

Tape::Var IterativeGnnPolicy::log_std_row(Tape& tape, int adim) {
  if (adim != 2) {
    throw std::invalid_argument("IterativeGnnPolicy: action dim must be 2");
  }
  return tape.leaf(log_std_);
}

std::vector<nn::Parameter*> IterativeGnnPolicy::parameters() {
  std::vector<nn::Parameter*> params = pi_.parameters();
  for (auto* p : vf_.parameters()) params.push_back(p);
  params.push_back(&log_std_);
  return params;
}

std::size_t IterativeGnnPolicy::num_parameters() const {
  return pi_.num_parameters() + vf_.num_parameters() + log_std_.size();
}

}  // namespace gddr::core
