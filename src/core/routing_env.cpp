#include "core/routing_env.hpp"

#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "rl/checkpoint.hpp"
#include "routing/baselines.hpp"
#include "routing/routing.hpp"
#include "util/error.hpp"

namespace gddr::core {

using rl::Observation;

RoutingEnv::RoutingEnv(std::vector<Scenario> scenarios, EnvConfig config,
                       std::uint64_t seed)
    : scenarios_(std::move(scenarios)),
      config_(config),
      rng_(seed),
      cache_(std::make_shared<mcf::OptimalCache>()) {
  if (scenarios_.empty()) {
    throw std::invalid_argument("RoutingEnv: no scenarios");
  }
  for (const auto& s : scenarios_) {
    if (s.train_sequences.empty() || s.test_sequences.empty()) {
      throw std::invalid_argument("RoutingEnv: scenario missing sequences");
    }
    for (const auto& seq : s.train_sequences) {
      if (static_cast<int>(seq.size()) <= config_.memory) {
        throw std::invalid_argument("RoutingEnv: sequence shorter than memory");
      }
    }
  }
}

void RoutingEnv::set_mode(Mode mode) {
  mode_ = mode;
  test_cursor_ = 0;
}

void RoutingEnv::set_shared_cache(std::shared_ptr<mcf::OptimalCache> cache) {
  if (!cache) {
    throw std::invalid_argument("RoutingEnv::set_shared_cache: null cache");
  }
  cache_ = std::move(cache);
}

const Scenario& RoutingEnv::current_scenario() const {
  return scenarios_[scenario_idx_];
}

const graph::DiGraph& RoutingEnv::current_graph() const {
  return current_scenario().graph;
}

const traffic::DemandSequence& RoutingEnv::current_sequence() const {
  const Scenario& s = current_scenario();
  return mode_ == Mode::kTrain ? s.train_sequences[sequence_idx_]
                               : s.test_sequences[sequence_idx_];
}

int RoutingEnv::episode_length() const {
  return static_cast<int>(current_sequence().size()) - config_.memory;
}

std::size_t RoutingEnv::num_test_episodes() const {
  std::size_t total = 0;
  for (const auto& s : scenarios_) total += s.test_sequences.size();
  return total;
}

int RoutingEnv::episodes_in_unit(std::size_t /*unit*/) const { return 1; }

void RoutingEnv::seek_test_unit(std::size_t unit) {
  if (mode_ != Mode::kTest) {
    throw std::logic_error("RoutingEnv::seek_test_unit: requires kTest mode");
  }
  test_cursor_ = unit % num_test_units();
}

int RoutingEnv::action_dim() const {
  const graph::DiGraph& g = current_graph();
  return config_.action_space == ActionSpace::kEdgeWeights
             ? g.num_edges()
             : g.num_nodes() * g.num_edges();
}

Observation RoutingEnv::build_observation(const Scenario& scenario,
                                          const traffic::DemandSequence& seq,
                                          int t, int memory,
                                          NodeFeatureMode node_features) {
  const graph::DiGraph& g = scenario.graph;
  const int n = g.num_nodes();
  Observation obs;
  obs.num_nodes = n;
  obs.senders.reserve(static_cast<size_t>(g.num_edges()));
  obs.receivers.reserve(static_cast<size_t>(g.num_edges()));
  for (const auto& e : g.edges()) {
    obs.senders.push_back(e.src);
    obs.receivers.push_back(e.dst);
  }

  // Flat observation: the `memory` previous demand matrices, oldest first,
  // every entry divided by the scenario's flat scale (paper §V-B input
  // normalisation).
  obs.flat.reserve(static_cast<size_t>(memory) * n * n);
  // Node features: per history step, either the paper's Eq.-4 compression
  // ((sum outgoing, sum incoming) per vertex) or the full demand row and
  // column of each vertex (ablation mode; see NodeFeatureMode).
  const bool full = node_features == NodeFeatureMode::kFullDemandRows;
  obs.nodes = nn::Tensor(n, full ? 2 * n * memory : 2 * memory);
  for (int h = 0; h < memory; ++h) {
    const auto& dm = seq[static_cast<size_t>(t - memory + h)];
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        obs.flat.push_back(dm.at(s, d) / scenario.flat_feature_scale);
      }
      if (full) {
        for (int d = 0; d < n; ++d) {
          const double out = s == d ? 0.0 : dm.at(s, d);
          const double in = s == d ? 0.0 : dm.at(d, s);
          obs.nodes.at(s, h * 2 * n + d) =
              static_cast<float>(out / scenario.flat_feature_scale);
          obs.nodes.at(s, h * 2 * n + n + d) =
              static_cast<float>(in / scenario.flat_feature_scale);
        }
      } else {
        obs.nodes.at(s, 2 * h) = static_cast<float>(
            dm.out_sum(s) / scenario.node_feature_scale);
        obs.nodes.at(s, 2 * h + 1) = static_cast<float>(
            dm.in_sum(s) / scenario.node_feature_scale);
      }
    }
  }
  // Edge input: the link's capacity, normalised by the graph's maximum
  // capacity.  The paper's graph model G = (V, E, c) makes capacities
  // known; without this feature a permutation-equivariant GNN cannot
  // distinguish structurally symmetric links of different bandwidths (the
  // paper's Abilene experiments use uniform capacities, where the feature
  // is constant and harmless).
  obs.edges = nn::Tensor(g.num_edges(), 1);
  double max_capacity = 0.0;
  for (const auto& e : g.edges()) {
    max_capacity = std::max(max_capacity, e.capacity);
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    obs.edges.at(e, 0) =
        static_cast<float>(g.edge(e).capacity / max_capacity);
  }
  obs.globals = nn::Tensor(1, 1);
  return obs;
}

Observation RoutingEnv::reset() {
  if (mode_ == Mode::kTrain) {
    scenario_idx_ = rng_.uniform_index(scenarios_.size());
    sequence_idx_ =
        rng_.uniform_index(current_scenario().train_sequences.size());
  } else {
    // Deterministic sweep over (scenario, test sequence).
    std::size_t total = 0;
    for (const auto& s : scenarios_) total += s.test_sequences.size();
    std::size_t idx = test_cursor_ % total;
    scenario_idx_ = 0;
    while (idx >= scenarios_[scenario_idx_].test_sequences.size()) {
      idx -= scenarios_[scenario_idx_].test_sequences.size();
      ++scenario_idx_;
    }
    sequence_idx_ = idx;
    test_cursor_ = (test_cursor_ + 1) % total;
  }
  t_ = config_.memory;
  episode_steps_ = 0;
  return build_observation(current_scenario(), current_sequence(), t_,
                           config_.memory, config_.node_features);
}

rl::Env::StepResult RoutingEnv::step(std::span<const double> action) {
  const graph::DiGraph& g = current_graph();
  if (static_cast<int>(action.size()) != action_dim()) {
    throw std::invalid_argument("RoutingEnv::step: action size mismatch");
  }
  const auto& seq = current_sequence();
  if (t_ >= static_cast<int>(seq.size())) {
    throw std::logic_error(
        "RoutingEnv::step: episode is over — call reset() first");
  }
  const auto& dm = seq[static_cast<size_t>(t_)];

  routing::Routing strategy;
  if (config_.action_space == ActionSpace::kEdgeWeights) {
    const std::vector<double> weights = routing::weights_from_actions(
        action, config_.min_weight, config_.max_weight);
    strategy = routing::softmin_routing(g, weights, config_.softmin);
  } else {
    // Destination-major |V| x |E| action layout (paper §V-C intermediate).
    std::vector<std::vector<double>> weights_by_dest(
        static_cast<size_t>(g.num_nodes()));
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      weights_by_dest[static_cast<size_t>(t)] =
          routing::weights_from_actions(
              action.subspan(static_cast<size_t>(t) *
                                 static_cast<size_t>(g.num_edges()),
                             static_cast<size_t>(g.num_edges())),
              config_.min_weight, config_.max_weight);
    }
    strategy = routing::softmin_routing_per_destination(g, weights_by_dest,
                                                        config_.softmin);
  }
  const auto sim = routing::simulate(g, strategy, dm);

  double achieved = 0.0;
  double optimal = 0.0;
  if (config_.objective == Objective::kMaxUtilisation) {
    achieved = sim.u_max;
    optimal = cache_->u_max(g, dm);
  } else {
    achieved = routing::mean_utilisation(g, sim);
    optimal = cache_->mean_util(g, dm);
  }

  StepResult result;
  last_ratio_ = optimal > 0.0 ? achieved / optimal : 1.0;
  result.reward = -last_ratio_;  // paper Eq. 2
  ++t_;
  ++episode_steps_;
  // Both episode endings here are *truncations*: the demand process does
  // not terminate, we merely ran out of sequence (or hit the step cap).
  // The terminal observation is still well-defined (its history window
  // ends at the final routed DM) and is returned so the collector can
  // bootstrap V(s_T) instead of zeroing it.
  const bool out_of_sequence = t_ >= static_cast<int>(seq.size());
  const bool step_capped = config_.max_episode_steps > 0 &&
                           episode_steps_ >= config_.max_episode_steps;
  result.done = out_of_sequence || step_capped;
  result.truncated = result.done;
  // Valid even at t_ == seq.size(): the observation reads the history
  // window [t_ - memory, t_), which ends at the final routed DM.
  result.obs = build_observation(current_scenario(), seq, t_,
                                 config_.memory, config_.node_features);
  return result;
}

namespace {
constexpr std::uint32_t kEnvStateVersion = 1;
}  // namespace

std::vector<std::uint8_t> RoutingEnv::save_state() const {
  std::ostringstream os;
  nn::write_pod(os, kEnvStateVersion);
  rl::write_rng_state(os, rng_);
  nn::write_pod(os, static_cast<std::uint8_t>(mode_ == Mode::kTest ? 1 : 0));
  nn::write_pod(os, static_cast<std::uint64_t>(scenario_idx_));
  nn::write_pod(os, static_cast<std::uint64_t>(sequence_idx_));
  nn::write_pod(os, static_cast<std::uint64_t>(test_cursor_));
  nn::write_pod(os, static_cast<std::int32_t>(t_));
  nn::write_pod(os, static_cast<std::int32_t>(episode_steps_));
  nn::write_pod(os, last_ratio_);
  const std::string bytes = std::move(os).str();
  return {bytes.begin(), bytes.end()};
}

void RoutingEnv::restore_state(std::span<const std::uint8_t> blob) {
  std::istringstream is(std::string(blob.begin(), blob.end()));

  const auto version =
      nn::read_pod<std::uint32_t>(is, "RoutingEnv state version");
  if (version != kEnvStateVersion) {
    throw util::IoError("unsupported RoutingEnv state version " +
                        std::to_string(version));
  }
  util::Rng rng(0);
  rl::read_rng_state(is, rng, "RoutingEnv rng");
  const auto mode_flag = nn::read_pod<std::uint8_t>(is, "RoutingEnv mode");
  if (mode_flag > 1) {
    throw util::IoError("corrupt value in field 'RoutingEnv mode'");
  }
  const Mode mode = mode_flag != 0 ? Mode::kTest : Mode::kTrain;
  const auto scenario_idx =
      nn::read_pod<std::uint64_t>(is, "RoutingEnv scenario index");
  const auto sequence_idx =
      nn::read_pod<std::uint64_t>(is, "RoutingEnv sequence index");
  const auto test_cursor =
      nn::read_pod<std::uint64_t>(is, "RoutingEnv test cursor");
  const auto t = nn::read_pod<std::int32_t>(is, "RoutingEnv t");
  const auto episode_steps =
      nn::read_pod<std::int32_t>(is, "RoutingEnv episode steps");
  const auto last_ratio = nn::read_pod<double>(is, "RoutingEnv last ratio");
  if (is.peek() != std::istream::traits_type::eof()) {
    throw util::IoError("trailing bytes after RoutingEnv state");
  }

  if (scenario_idx >= scenarios_.size()) {
    throw util::IoError("RoutingEnv scenario index " +
                        std::to_string(scenario_idx) + " out of range (" +
                        std::to_string(scenarios_.size()) + " scenarios)");
  }
  const Scenario& scenario = scenarios_[static_cast<std::size_t>(scenario_idx)];
  const auto& sequences = mode == Mode::kTrain ? scenario.train_sequences
                                               : scenario.test_sequences;
  if (sequence_idx >= sequences.size()) {
    throw util::IoError("RoutingEnv sequence index " +
                        std::to_string(sequence_idx) + " out of range");
  }
  const auto seq_len =
      static_cast<std::int32_t>(sequences[sequence_idx].size());
  if (t < 0 || t > seq_len) {
    throw util::IoError("RoutingEnv t " + std::to_string(t) +
                        " out of range [0, " + std::to_string(seq_len) + "]");
  }
  if (episode_steps < 0) {
    throw util::IoError("negative value in field 'RoutingEnv episode steps'");
  }

  rng_ = rng;
  mode_ = mode;
  scenario_idx_ = static_cast<std::size_t>(scenario_idx);
  sequence_idx_ = static_cast<std::size_t>(sequence_idx);
  test_cursor_ = static_cast<std::size_t>(test_cursor);
  t_ = t;
  episode_steps_ = episode_steps;
  last_ratio_ = last_ratio;
}

std::vector<std::unique_ptr<RoutingEnv>> make_vec_envs(
    const std::vector<Scenario>& scenarios, const EnvConfig& config,
    std::uint64_t seed, int n) {
  if (n <= 0) throw std::invalid_argument("make_vec_envs: n <= 0");
  std::vector<std::unique_ptr<RoutingEnv>> envs;
  envs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    envs.push_back(std::make_unique<RoutingEnv>(
        scenarios, config, seed + static_cast<std::uint64_t>(i)));
    if (i > 0) envs.back()->set_shared_cache(envs.front()->shared_cache());
  }
  return envs;
}

}  // namespace gddr::core
