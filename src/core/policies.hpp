// The three routing policies the paper evaluates (§VII, Figures 4-5):
//
//  * MlpPolicy          — Valadarsky et al.'s baseline: an MLP over the
//                         flattened demand history; input and output sizes
//                         are fixed to one topology.
//  * GnnPolicy          — GDDR's encode-process-decode graph network; node
//                         inputs are per-vertex demand sums (Eq. 4), the
//                         action is read from decoded edge attributes
//                         (Eq. 5).  Parameter count is independent of the
//                         topology, so a trained policy transfers.
//  * IterativeGnnPolicy — GDDR's iterative variant (§VII-B): edge inputs
//                         carry Eq. 6's (weight, set, target) tuple and the
//                         2-D action (weight, gamma) is read from the
//                         decoded global attribute (Eq. 7).
//
// Every policy owns a separate value network of the same family plus a
// state-independent log-std (scalar for variable-dimension actions).
#pragma once

#include <memory>
#include <string>

#include "gnn/graph_net.hpp"
#include "nn/mlp.hpp"
#include "rl/policy.hpp"
#include "util/rng.hpp"

namespace gddr::core {

struct MlpPolicyConfig {
  std::vector<int> pi_hidden{128, 128};
  std::vector<int> vf_hidden{128, 128};
  double init_log_std = -0.7;
};

class MlpPolicy final : public rl::Policy {
 public:
  // obs_dim = memory * |V|^2 (flattened demand history); action_dim = |E|.
  MlpPolicy(int obs_dim, int action_dim, const MlpPolicyConfig& config,
            util::Rng& rng);

  int action_dim(const rl::Observation& obs) const override;
  nn::Tape::Var action_mean(nn::Tape& tape,
                            const rl::Observation& obs) override;
  nn::Tape::Var value(nn::Tape& tape, const rl::Observation& obs) override;
  nn::Tape::Var log_std_row(nn::Tape& tape, int action_dim) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "MLP"; }

  std::size_t num_parameters() const;

 private:
  int obs_dim_;
  int action_dim_;
  nn::Mlp pi_;
  nn::Mlp vf_;
  nn::Parameter log_std_;
};

struct GnnPolicyConfig {
  int memory = 5;  // node features are 2 * memory wide by default
  // Overrides the node-feature width when non-zero (used by the
  // NodeFeatureMode::kFullDemandRows ablation, where the width is
  // 2 * |V| * memory and the policy is tied to one topology).
  int node_feature_width = 0;
  int latent = 16;
  int steps = 3;
  std::vector<int> mlp_hidden{32};
  double init_log_std = -0.7;
  double output_scale = 0.01;  // applied to the decoded action head
};

class GnnPolicy final : public rl::Policy {
 public:
  GnnPolicy(const GnnPolicyConfig& config, util::Rng& rng);

  int action_dim(const rl::Observation& obs) const override;
  nn::Tape::Var action_mean(nn::Tape& tape,
                            const rl::Observation& obs) override;
  nn::Tape::Var value(nn::Tape& tape, const rl::Observation& obs) override;
  nn::Tape::Var log_std_row(nn::Tape& tape, int action_dim) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "GNN"; }

  // Serving micro-batches: stacks same-topology observations into one
  // disjoint-copies graph and runs a single encode-process-decode
  // forward.  Row b of `out` is bit-identical to action_mean(*obs[b]).
  // Returns false when the observations do not share connectivity.
  bool action_means(nn::Tape& tape,
                    const std::vector<const rl::Observation*>& obs,
                    nn::Tape::Var& out) override;

  std::size_t num_parameters() const;

 private:
  GnnPolicyConfig config_;
  gnn::EncodeProcessDecode pi_;
  gnn::EncodeProcessDecode vf_;
  nn::Parameter log_std_scalar_;  // shared across edges
};

struct IterativeGnnPolicyConfig {
  int memory = 5;
  int latent = 16;
  int steps = 3;
  std::vector<int> mlp_hidden{32};
  double init_log_std = -0.7;
  double output_scale = 0.01;
};

class IterativeGnnPolicy final : public rl::Policy {
 public:
  IterativeGnnPolicy(const IterativeGnnPolicyConfig& config, util::Rng& rng);

  int action_dim(const rl::Observation& /*obs*/) const override { return 2; }
  nn::Tape::Var action_mean(nn::Tape& tape,
                            const rl::Observation& obs) override;
  nn::Tape::Var value(nn::Tape& tape, const rl::Observation& obs) override;
  nn::Tape::Var log_std_row(nn::Tape& tape, int action_dim) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "GNN-Iterative"; }

  std::size_t num_parameters() const;

 private:
  IterativeGnnPolicyConfig config_;
  gnn::EncodeProcessDecode pi_;
  gnn::EncodeProcessDecode vf_;
  nn::Parameter log_std_;  // 1 x 2
};

}  // namespace gddr::core
