// The GDDR data-driven-routing environment (paper §V, Figure 1).
//
// One environment timestep:
//  * the agent observes the previous `memory` demand matrices (as a
//    flattened history for MLP policies and as per-node incoming/outgoing
//    sums, paper Eq. 4, for GNN policies),
//  * it emits one weight per edge (paper §V-C action space of size |E|),
//  * the weights are translated into a routing via softmin routing with
//    DAG pruning (paper §VI),
//  * the routing is simulated on the *new* demand matrix and the reward is
//    -U_max_agent / U_max_optimal (paper Eq. 2), with the optimum computed
//    by the multicommodity-flow LP and memoised.
//
// The environment can hold several scenarios (graph + sequences); each
// reset picks one, which is how multi-topology generalisation training
// works (paper §VIII-D, Figure 8).
#pragma once

#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "mcf/cache.hpp"
#include "rl/env.hpp"
#include "routing/softmin.hpp"
#include "util/rng.hpp"

namespace gddr::core {

// Which utility function the agent optimises (paper §IX lists exploring
// different utility functions as further work).  Each objective is scored
// against its own exact oracle: the MCF LP for max-utilisation, the
// inverse-capacity shortest-path decomposition for mean-utilisation.
enum class Objective { kMaxUtilisation, kMeanUtilisation };

// GNN node-feature encoding (paper §V-B).  kInOutSums is the paper's
// choice: per history step, each vertex carries (sum of outgoing demand,
// sum of incoming demand) — O(1) per vertex, which is what lets one GNN
// run on any topology.  kFullDemandRows keeps each vertex's full demand
// row and column (O(|V|) per vertex) — more information, but the feature
// width is tied to one topology, forfeiting generalisation; it exists for
// the ablation that justifies the compression.
enum class NodeFeatureMode { kInOutSums, kFullDemandRows };

// Action-space translation (paper §V-C).  kEdgeWeights is the paper's
// final choice: one weight per edge (|E| values).  kPerDestinationWeights
// is the intermediate destination-only reduction the paper considered and
// rejected as "still too large" (|V| x |E| values, destination-major);
// it exists so the rejection can be tested with learning
// (bench_action_space_learning).
enum class ActionSpace { kEdgeWeights, kPerDestinationWeights };

struct EnvConfig {
  int memory = 5;  // demand-history length (paper: 5)
  Objective objective = Objective::kMaxUtilisation;
  NodeFeatureMode node_features = NodeFeatureMode::kInOutSums;
  ActionSpace action_space = ActionSpace::kEdgeWeights;
  routing::SoftminOptions softmin;
  // Raw actions in [-1,1] map affinely onto [min_weight, max_weight].
  // The range is deliberately narrow: with softmin spread gamma ~ 2, a
  // max weight delta of 2.5 already expresses ~150:1 path preferences
  // while keeping the reward landscape smooth enough for PPO (a wide
  // range such as [0.1, 10] turns softmin into a hard argmin almost
  // everywhere and gradients vanish).
  double min_weight = 0.5;
  double max_weight = 3.0;
  // Hard per-episode step cap (0 = uncapped).  An episode cut by the cap
  // — like one ending because the demand sequence ran out — is a
  // truncation, not a terminal: StepResult::truncated is set and the
  // terminal observation returned so GAE can bootstrap from V(s_T).
  int max_episode_steps = 0;
};

class RoutingEnv final : public rl::Env {
 public:
  enum class Mode { kTrain, kTest };

  RoutingEnv(std::vector<Scenario> scenarios, EnvConfig config,
             std::uint64_t seed);

  // Train mode samples (scenario, train sequence) randomly; test mode
  // cycles deterministically through every (scenario, test sequence) pair.
  void set_mode(Mode mode);
  Mode mode() const { return mode_; }

  rl::Observation reset() override;
  StepResult step(std::span<const double> action) override;
  int action_dim() const override;

  // Checkpoint support (rl::Env contract): the complete dynamic state —
  // sampling RNG, mode, scenario/sequence/test cursors, episode position
  // — as an opaque blob.  restore_state validates every field against the
  // configured scenarios and throws util::IoError naming the offending
  // field, leaving the env unchanged on failure.
  std::vector<std::uint8_t> save_state() const override;
  void restore_state(std::span<const std::uint8_t> blob) override;

  // U_max_agent / U_max_optimal of the most recent step (the quantity the
  // paper's Figures 6 and 8 plot; reward is its negation).
  double last_ratio() const { return last_ratio_; }

  const graph::DiGraph& current_graph() const;
  const Scenario& current_scenario() const;
  int episode_length() const;  // steps per episode in the current scenario
  // Total (scenario, test sequence) pairs — one test episode each.
  std::size_t num_test_episodes() const;

  // Parallel-evaluation support: a test *unit* is one (scenario, test
  // sequence) pair, the granularity at which evaluation is farmed out to
  // workers.  seek_test_unit positions the deterministic test sweep so
  // the next reset() starts unit `unit`; requires kTest mode.
  std::size_t num_test_units() const { return num_test_episodes(); }
  int episodes_in_unit(std::size_t unit) const;
  void seek_test_unit(std::size_t unit);

  mcf::OptimalCache& cache() { return *cache_; }

  // The memoised LP oracle is internally locked, so instances stepping
  // the same scenarios concurrently (vectorised collection) can share one
  // cache instead of each re-solving identical LPs.
  std::shared_ptr<mcf::OptimalCache> shared_cache() const { return cache_; }
  void set_shared_cache(std::shared_ptr<mcf::OptimalCache> cache);

  // Builds the observation for position `t` (the action decided there is
  // evaluated on demand matrix index t).  Exposed for the iterative
  // environment and tests.
  static rl::Observation build_observation(
      const Scenario& scenario, const traffic::DemandSequence& seq, int t,
      int memory,
      NodeFeatureMode node_features = NodeFeatureMode::kInOutSums);

 private:
  const traffic::DemandSequence& current_sequence() const;

  std::vector<Scenario> scenarios_;
  EnvConfig config_;
  util::Rng rng_;
  std::shared_ptr<mcf::OptimalCache> cache_;

  Mode mode_ = Mode::kTrain;
  std::size_t scenario_idx_ = 0;
  std::size_t sequence_idx_ = 0;
  std::size_t test_cursor_ = 0;  // deterministic test-episode cycling
  int t_ = 0;                    // index of the DM the next action routes
  int episode_steps_ = 0;        // steps taken in the current episode
  double last_ratio_ = 0.0;
};

// Builds `n` independent RoutingEnv instances over the same scenarios for
// vectorised collection: env i is seeded `seed + i` (its own scenario /
// sequence sampling stream) and all instances share one LP cache.
std::vector<std::unique_ptr<RoutingEnv>> make_vec_envs(
    const std::vector<Scenario>& scenarios, const EnvConfig& config,
    std::uint64_t seed, int n);

}  // namespace gddr::core
