#include "core/iterative_env.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "rl/checkpoint.hpp"
#include "routing/routing.hpp"
#include "util/error.hpp"

namespace gddr::core {

using rl::Observation;

IterativeRoutingEnv::IterativeRoutingEnv(std::vector<Scenario> scenarios,
                                         IterativeEnvConfig config,
                                         std::uint64_t seed)
    : scenarios_(std::move(scenarios)),
      config_(config),
      rng_(seed),
      cache_(std::make_shared<mcf::OptimalCache>()) {
  if (scenarios_.empty()) {
    throw std::invalid_argument("IterativeRoutingEnv: no scenarios");
  }
  for (const auto& s : scenarios_) {
    if (s.train_sequences.empty() || s.test_sequences.empty()) {
      throw std::invalid_argument(
          "IterativeRoutingEnv: scenario missing sequences");
    }
  }
  if (!(config_.min_gamma > 0.0) || !(config_.max_gamma > config_.min_gamma)) {
    throw std::invalid_argument("IterativeRoutingEnv: bad gamma range");
  }
}

void IterativeRoutingEnv::set_mode(Mode mode) {
  mode_ = mode;
  test_cursor_ = 0;
  in_sequence_ = false;  // next reset starts a fresh sequence
}

void IterativeRoutingEnv::set_shared_cache(
    std::shared_ptr<mcf::OptimalCache> cache) {
  if (!cache) {
    throw std::invalid_argument(
        "IterativeRoutingEnv::set_shared_cache: null cache");
  }
  cache_ = std::move(cache);
}

const graph::DiGraph& IterativeRoutingEnv::current_graph() const {
  return scenarios_[scenario_idx_].graph;
}

std::size_t IterativeRoutingEnv::num_test_episodes() const {
  // One episode per demand matrix of every test sequence.
  std::size_t total = 0;
  for (const auto& s : scenarios_) {
    for (const auto& seq : s.test_sequences) {
      total += seq.size() - static_cast<size_t>(config_.memory);
    }
  }
  return total;
}

std::size_t IterativeRoutingEnv::num_test_units() const {
  std::size_t total = 0;
  for (const auto& s : scenarios_) total += s.test_sequences.size();
  return total;
}

int IterativeRoutingEnv::episodes_in_unit(std::size_t unit) const {
  std::size_t idx = unit % num_test_units();
  for (const auto& s : scenarios_) {
    if (idx < s.test_sequences.size()) {
      return static_cast<int>(s.test_sequences[idx].size()) - config_.memory;
    }
    idx -= s.test_sequences.size();
  }
  return 0;  // unreachable: idx was reduced modulo num_test_units()
}

void IterativeRoutingEnv::seek_test_unit(std::size_t unit) {
  if (mode_ != Mode::kTest) {
    throw std::logic_error(
        "IterativeRoutingEnv::seek_test_unit: requires kTest mode");
  }
  test_cursor_ = unit % num_test_units();
  in_sequence_ = false;  // next reset() starts the sought unit afresh
}

const traffic::DemandSequence& IterativeRoutingEnv::current_sequence() const {
  const Scenario& s = scenarios_[scenario_idx_];
  return mode_ == Mode::kTrain ? s.train_sequences[sequence_idx_]
                               : s.test_sequences[sequence_idx_];
}

double IterativeRoutingEnv::map_gamma(double a) const {
  const double x = std::clamp(a, -1.0, 1.0);
  const double log_lo = std::log(config_.min_gamma);
  const double log_hi = std::log(config_.max_gamma);
  return std::exp(log_lo + (x + 1.0) * 0.5 * (log_hi - log_lo));
}

void IterativeRoutingEnv::start_dm_step() {
  edge_cursor_ = 0;
  pending_weights_.assign(
      static_cast<size_t>(current_graph().num_edges()), 0.0);
}

Observation IterativeRoutingEnv::build_iterative_observation() const {
  // Base observation: demand history for the DM about to be routed.
  Observation obs = RoutingEnv::build_observation(
      scenarios_[scenario_idx_], current_sequence(), t_, config_.memory);
  // Edge attributes per Eq. 6 — (weight_i, set_i, target_i) — plus the
  // normalised link capacity carried over from the base observation (see
  // RoutingEnv::build_observation for why capacity must be visible).
  const int ne = current_graph().num_edges();
  nn::Tensor capacity_feature = obs.edges;  // ne x 1
  obs.edges = nn::Tensor(ne, 4);
  for (int e = 0; e < ne; ++e) {
    const bool set = e < edge_cursor_;
    obs.edges.at(e, 0) =
        set ? static_cast<float>(pending_weights_[static_cast<size_t>(e)])
            : 0.0F;
    obs.edges.at(e, 1) = set ? 1.0F : 0.0F;
    obs.edges.at(e, 2) = (e == edge_cursor_) ? 1.0F : 0.0F;
    obs.edges.at(e, 3) = capacity_feature.at(e, 0);
  }
  return obs;
}

Observation IterativeRoutingEnv::reset() {
  // Episodes are per demand matrix; only pick a new (scenario, sequence)
  // once the current sequence has been exhausted.
  if (!in_sequence_) {
    if (mode_ == Mode::kTrain) {
      scenario_idx_ = rng_.uniform_index(scenarios_.size());
      sequence_idx_ = rng_.uniform_index(
          scenarios_[scenario_idx_].train_sequences.size());
    } else {
      std::size_t total = 0;
      for (const auto& s : scenarios_) total += s.test_sequences.size();
      std::size_t idx = test_cursor_ % total;
      scenario_idx_ = 0;
      while (idx >= scenarios_[scenario_idx_].test_sequences.size()) {
        idx -= scenarios_[scenario_idx_].test_sequences.size();
        ++scenario_idx_;
      }
      sequence_idx_ = idx;
      test_cursor_ = (test_cursor_ + 1) % total;
    }
    t_ = config_.memory;
    in_sequence_ = true;
  }
  start_dm_step();
  return build_iterative_observation();
}

rl::Env::StepResult IterativeRoutingEnv::step(std::span<const double> action) {
  if (action.size() != 2) {
    throw std::invalid_argument(
        "IterativeRoutingEnv::step: action must be (weight, gamma)");
  }
  const graph::DiGraph& g = current_graph();
  if (t_ >= static_cast<int>(current_sequence().size())) {
    throw std::logic_error(
        "IterativeRoutingEnv::step: episode is over — call reset() first");
  }
  pending_weights_[static_cast<size_t>(edge_cursor_)] =
      std::clamp(action[0], -1.0, 1.0);
  ++edge_cursor_;

  StepResult result;
  if (edge_cursor_ < g.num_edges()) {
    // More edges to set for this DM; no reward yet.
    result.reward = 0.0;
    result.done = false;
    result.obs = build_iterative_observation();
    return result;
  }

  // Final iteration for this DM: translate and score (gamma read here,
  // paper Eq. 7).
  const auto& seq = current_sequence();
  const auto& dm = seq[static_cast<size_t>(t_)];
  const std::vector<double> weights = routing::weights_from_actions(
      pending_weights_, config_.min_weight, config_.max_weight);
  routing::SoftminOptions softmin = config_.softmin;
  softmin.gamma = map_gamma(action[1]);
  const routing::Routing strategy = routing::softmin_routing(g, weights,
                                                             softmin);
  const auto sim = routing::simulate(g, strategy, dm);
  const double u_opt = cache_->u_max(g, dm);
  last_ratio_ = u_opt > 0.0 ? sim.u_max / u_opt : 1.0;
  result.reward = -last_ratio_;

  // The demand matrix is fully routed: the episode ends here.  reset()
  // continues with the sequence's next DM (or a new sequence when this
  // one is exhausted).
  ++t_;
  result.done = true;
  if (t_ >= static_cast<int>(seq.size())) in_sequence_ = false;
  return result;
}

namespace {
constexpr std::uint32_t kIterativeEnvStateVersion = 1;
}  // namespace

std::vector<std::uint8_t> IterativeRoutingEnv::save_state() const {
  std::ostringstream os;
  nn::write_pod(os, kIterativeEnvStateVersion);
  rl::write_rng_state(os, rng_);
  nn::write_pod(os, static_cast<std::uint8_t>(mode_ == Mode::kTest ? 1 : 0));
  nn::write_pod(os, static_cast<std::uint64_t>(scenario_idx_));
  nn::write_pod(os, static_cast<std::uint64_t>(sequence_idx_));
  nn::write_pod(os, static_cast<std::uint64_t>(test_cursor_));
  nn::write_pod(os, static_cast<std::uint8_t>(in_sequence_ ? 1 : 0));
  nn::write_pod(os, static_cast<std::int32_t>(t_));
  nn::write_pod(os, static_cast<std::int32_t>(edge_cursor_));
  nn::write_pod(os, static_cast<std::uint64_t>(pending_weights_.size()));
  for (const double w : pending_weights_) nn::write_pod(os, w);
  nn::write_pod(os, last_ratio_);
  const std::string bytes = std::move(os).str();
  return {bytes.begin(), bytes.end()};
}

void IterativeRoutingEnv::restore_state(std::span<const std::uint8_t> blob) {
  std::istringstream is(std::string(blob.begin(), blob.end()));

  const auto version =
      nn::read_pod<std::uint32_t>(is, "IterativeRoutingEnv state version");
  if (version != kIterativeEnvStateVersion) {
    throw util::IoError("unsupported IterativeRoutingEnv state version " +
                        std::to_string(version));
  }
  util::Rng rng(0);
  rl::read_rng_state(is, rng, "IterativeRoutingEnv rng");
  const auto mode_flag =
      nn::read_pod<std::uint8_t>(is, "IterativeRoutingEnv mode");
  if (mode_flag > 1) {
    throw util::IoError("corrupt value in field 'IterativeRoutingEnv mode'");
  }
  const Mode mode = mode_flag != 0 ? Mode::kTest : Mode::kTrain;
  const auto scenario_idx =
      nn::read_pod<std::uint64_t>(is, "IterativeRoutingEnv scenario index");
  const auto sequence_idx =
      nn::read_pod<std::uint64_t>(is, "IterativeRoutingEnv sequence index");
  const auto test_cursor =
      nn::read_pod<std::uint64_t>(is, "IterativeRoutingEnv test cursor");
  const auto in_sequence_flag =
      nn::read_pod<std::uint8_t>(is, "IterativeRoutingEnv in_sequence");
  if (in_sequence_flag > 1) {
    throw util::IoError(
        "corrupt value in field 'IterativeRoutingEnv in_sequence'");
  }
  const auto t = nn::read_pod<std::int32_t>(is, "IterativeRoutingEnv t");
  const auto edge_cursor =
      nn::read_pod<std::int32_t>(is, "IterativeRoutingEnv edge cursor");
  const auto pending_count = nn::read_pod<std::uint64_t>(
      is, "IterativeRoutingEnv pending weight count");
  if (pending_count > (1ULL << 24)) {
    throw util::IoError(
        "implausible count in field 'IterativeRoutingEnv pending weight "
        "count'");
  }
  std::vector<double> pending(static_cast<std::size_t>(pending_count));
  for (std::size_t i = 0; i < pending.size(); ++i) {
    pending[i] =
        nn::read_pod<double>(is, "IterativeRoutingEnv pending weights");
  }
  const auto last_ratio =
      nn::read_pod<double>(is, "IterativeRoutingEnv last ratio");
  if (is.peek() != std::istream::traits_type::eof()) {
    throw util::IoError("trailing bytes after IterativeRoutingEnv state");
  }

  if (scenario_idx >= scenarios_.size()) {
    throw util::IoError("IterativeRoutingEnv scenario index " +
                        std::to_string(scenario_idx) + " out of range (" +
                        std::to_string(scenarios_.size()) + " scenarios)");
  }
  const Scenario& scenario = scenarios_[static_cast<std::size_t>(scenario_idx)];
  const auto& sequences = mode == Mode::kTrain ? scenario.train_sequences
                                               : scenario.test_sequences;
  if (sequence_idx >= sequences.size()) {
    throw util::IoError("IterativeRoutingEnv sequence index " +
                        std::to_string(sequence_idx) + " out of range");
  }
  const auto seq_len =
      static_cast<std::int32_t>(sequences[sequence_idx].size());
  if (t < 0 || t > seq_len) {
    throw util::IoError("IterativeRoutingEnv t " + std::to_string(t) +
                        " out of range [0, " + std::to_string(seq_len) + "]");
  }
  const auto edges =
      static_cast<std::uint64_t>(scenario.graph.num_edges());
  if (pending_count != 0 && pending_count != edges) {
    throw util::IoError(
        "IterativeRoutingEnv pending weight count " +
        std::to_string(pending_count) + " does not match scenario edges (" +
        std::to_string(edges) + ")");
  }
  if (edge_cursor < 0 ||
      static_cast<std::uint64_t>(edge_cursor) > pending_count) {
    throw util::IoError("IterativeRoutingEnv edge cursor " +
                        std::to_string(edge_cursor) + " out of range");
  }

  rng_ = rng;
  mode_ = mode;
  scenario_idx_ = static_cast<std::size_t>(scenario_idx);
  sequence_idx_ = static_cast<std::size_t>(sequence_idx);
  test_cursor_ = static_cast<std::size_t>(test_cursor);
  in_sequence_ = in_sequence_flag != 0;
  t_ = t;
  edge_cursor_ = edge_cursor;
  pending_weights_ = std::move(pending);
  last_ratio_ = last_ratio;
}

}  // namespace gddr::core
