#include "core/scenario.hpp"

#include <algorithm>

#include "topo/mutate.hpp"
#include "topo/zoo.hpp"

namespace gddr::core {

using traffic::DemandSequence;

Scenario make_scenario(graph::DiGraph g, const ScenarioParams& params,
                       util::Rng& rng) {
  Scenario scenario;
  const int n = g.num_nodes();
  scenario.graph = std::move(g);
  double peak_total = 0.0;
  auto generate = [&](int count, std::vector<DemandSequence>& out) {
    for (int i = 0; i < count; ++i) {
      DemandSequence seq = traffic::cyclical_bimodal_sequence(
          n, params.sequence_length, params.cycle_length, params.demand, rng);
      for (const auto& dm : seq) peak_total = std::max(peak_total, dm.total());
      out.push_back(std::move(seq));
    }
  };
  generate(params.train_sequences, scenario.train_sequences);
  generate(params.test_sequences, scenario.test_sequences);
  if (peak_total > 0.0 && n > 0) {
    // Per-node demand sums are ~ total/n; flattened entries ~ total/n^2.
    scenario.node_feature_scale = peak_total / n;
    scenario.flat_feature_scale = peak_total / (n * n);
  }
  return scenario;
}

Scenario make_abilene_scenario(util::Rng& rng, ScenarioParams params) {
  return make_scenario(topo::abilene(), params, rng);
}

std::vector<Scenario> make_size_band_scenarios(util::Rng& rng,
                                               ScenarioParams params,
                                               int min_nodes, int max_nodes) {
  std::vector<Scenario> scenarios;
  for (auto& g : topo::catalogue_in_size_band(min_nodes, max_nodes)) {
    scenarios.push_back(make_scenario(std::move(g), params, rng));
  }
  return scenarios;
}

std::vector<Scenario> make_mutated_abilene_scenarios(int count,
                                                     util::Rng& rng,
                                                     ScenarioParams params) {
  std::vector<Scenario> scenarios;
  const graph::DiGraph base = topo::abilene();
  for (int i = 0; i < count; ++i) {
    const int mutations = 1 + static_cast<int>(rng.uniform_index(2));
    graph::DiGraph mutated = topo::mutate(base, mutations, rng);
    scenarios.push_back(make_scenario(std::move(mutated), params, rng));
  }
  return scenarios;
}

}  // namespace gddr::core
