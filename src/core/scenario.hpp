// Experiment scenarios: a topology plus train/test demand sequences.
//
// The paper's main setup (§VIII-D): the Abilene graph, cyclical bimodal
// sequences of 60 demand matrices with cycle length 10, memory length 5,
// 7 training sequences and 3 test sequences.  The generalisation setup
// (Figure 8) trains over a mixture of topologies — either catalogue graphs
// between half and double Abilene's size, or Abilene with 1-2 random
// mutations.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"
#include "traffic/generators.hpp"
#include "util/rng.hpp"

namespace gddr::core {

struct Scenario {
  graph::DiGraph graph;
  std::vector<traffic::DemandSequence> train_sequences;
  std::vector<traffic::DemandSequence> test_sequences;
  // Normalisation divisor for per-node demand-sum observation features
  // (paper §V-B: inputs are normalised); derived by make_* helpers.
  double node_feature_scale = 1.0;
  // Normalisation divisor for flattened demand-matrix entries (MLP obs).
  double flat_feature_scale = 1.0;
};

struct ScenarioParams {
  int sequence_length = 60;  // DMs per sequence (paper: 60)
  int cycle_length = 10;     // base cycle (paper: q = 10)
  int train_sequences = 7;   // (paper: 7)
  int test_sequences = 3;    // (paper: 3)
  traffic::BimodalParams demand;
};

// Builds a scenario for one graph with bimodal cyclical traffic.
Scenario make_scenario(graph::DiGraph g, const ScenarioParams& params,
                       util::Rng& rng);

// The paper's fixed-graph experiment: Abilene with default parameters.
Scenario make_abilene_scenario(util::Rng& rng, ScenarioParams params = {});

// Figure-8 "different graphs": every catalogue topology whose node count
// lies within [min_nodes, max_nodes] (defaults: half to double Abilene).
std::vector<Scenario> make_size_band_scenarios(util::Rng& rng,
                                               ScenarioParams params = {},
                                               int min_nodes = 6,
                                               int max_nodes = 22);

// Figure-8 "similar graphs": `count` copies of Abilene, each mutated by
// 1-2 random node/edge additions/removals.
std::vector<Scenario> make_mutated_abilene_scenarios(
    int count, util::Rng& rng, ScenarioParams params = {});

}  // namespace gddr::core
