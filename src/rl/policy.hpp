// Stochastic policy interface for PPO.
//
// A policy supplies, for one observation, the on-tape action mean
// (1 x action_dim), the on-tape state-value estimate (1 x 1), and a
// log-standard-deviation row for exploration.  PPO treats the policy as a
// black box, which is what lets the MLP baseline, the GNN policy and the
// iterative GNN policy train under the identical algorithm (paper §VIII-C
// trains all of them with the same PPO2).
#pragma once

#include <vector>

#include "nn/tape.hpp"
#include "rl/env.hpp"

namespace gddr::rl {

class Policy {
 public:
  virtual ~Policy() = default;

  // Action dimensionality for this observation.
  virtual int action_dim(const Observation& obs) const = 0;

  // Mean of the Gaussian action distribution, a 1 x action_dim Var.
  virtual nn::Tape::Var action_mean(nn::Tape& tape,
                                    const Observation& obs) = 0;

  // State-value estimate, a 1 x 1 Var.
  virtual nn::Tape::Var value(nn::Tape& tape, const Observation& obs) = 0;

  // Log-std row (1 x action_dim) for the exploration Gaussian.  Policies
  // with a variable action dimension share a single scalar log-std across
  // dimensions so the parameter count stays topology-independent.
  virtual nn::Tape::Var log_std_row(nn::Tape& tape, int action_dim) = 0;

  // Every learnable parameter (policy + value networks + log-std).
  virtual std::vector<nn::Parameter*> parameters() = 0;

  // Human-readable identifier used in bench output.
  virtual std::string name() const = 0;

  // Batched action means for observations sharing one topology (the
  // serving engine's micro-batches): on success fills `out` with a
  // B x action_dim Var whose row b is bit-identical to
  // action_mean(tape, *obs[b]).  The default has no batched path and
  // returns false; callers then fall back to per-observation forwards.
  virtual bool action_means(nn::Tape& /*tape*/,
                            const std::vector<const Observation*>& /*obs*/,
                            nn::Tape::Var& /*out*/) {
    return false;
  }
};

}  // namespace gddr::rl
