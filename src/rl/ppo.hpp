// Proximal Policy Optimisation (Schulman et al. 2017), the algorithm the
// paper trains all its agents with (§VIII-C, stable-baselines PPO2).
//
// Implemented features match PPO2: clipped surrogate objective, clipped
// value loss, entropy bonus, GAE(lambda) advantages, advantage
// normalisation, minibatched multi-epoch updates, Adam, and global
// gradient-norm clipping.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/tape.hpp"
#include "rl/env.hpp"
#include "rl/health.hpp"
#include "rl/policy.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gddr::rl {

struct PpoConfig {
  int rollout_steps = 256;   // environment steps per update (across envs)
  int epochs = 4;            // optimisation passes over each rollout
  int minibatch_size = 64;
  double gamma = 0.99;       // discount
  double gae_lambda = 0.95;
  double clip_epsilon = 0.2;
  double value_coef = 0.5;
  double entropy_coef = 0.001;
  double learning_rate = 3e-4;
  double max_grad_norm = 0.5;
  bool normalize_advantages = true;
  // Rewards are multiplied by this before storage (keeps value targets in
  // a friendly range for long episodes).
  double reward_scale = 1.0;
  // Numerical-health watchdog (see rl/health.hpp): NaN/Inf losses,
  // gradients or parameters trigger a rollback to the last-good snapshot
  // plus a learning-rate shrink instead of corrupting the run.
  HealthConfig health;
};

struct PpoIterationStats {
  int steps = 0;                   // environment steps this iteration
  double mean_episode_reward = 0;  // unscaled, over episodes completed
  int episodes = 0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double approx_kl = 0.0;
  double clip_fraction = 0.0;
  // Watchdog activity this iteration (0 on a healthy iteration).
  int nonfinite_events = 0;   // NaN/Inf detections in loss/grads/params
  int health_rollbacks = 0;   // rollbacks to the last-good snapshot
  double learning_rate = 0.0;  // lr in effect after the iteration
};

class PpoTrainer {
 public:
  // `policy` and `env` must outlive the trainer.
  PpoTrainer(Policy& policy, Env& env, const PpoConfig& config,
             std::uint64_t seed);

  // Vectorised collection: the rollout of each iteration is gathered from
  // every env (ceil(rollout_steps / envs.size()) steps each) via a
  // VecEnvCollector — concurrently when `pool` is non-null, and always
  // merged env-major so the update sees bit-identical data for any worker
  // count.  The PPO update itself stays serial (it is a sequential
  // optimisation).  `policy`, the envs and `pool` must outlive the
  // trainer.
  PpoTrainer(Policy& policy, std::vector<Env*> envs, const PpoConfig& config,
             std::uint64_t seed, util::ThreadPool* pool = nullptr);

  // Collects one rollout and performs the PPO update.
  PpoIterationStats train_iteration();

  // Runs iterations until at least `total_steps` environment steps have
  // been taken; invokes `callback` (if set) after each iteration.
  using Callback = std::function<void(const PpoIterationStats&)>;
  void train(long total_steps, const Callback& callback = {});

  long total_env_steps() const { return total_env_steps_; }
  long iterations() const { return iterations_; }

  // Deterministic greedy action (the distribution mean) for evaluation.
  std::vector<double> act_deterministic(const Observation& obs);

  // Fault-tolerant checkpointing (implemented in rl/checkpoint.cpp).
  //
  // save_checkpoint serialises the complete training state — policy
  // parameters, Adam moments + step count, the trainer's shuffle RNG and
  // counters, the current learning rate, every collector slot (action
  // RNG, pending observation, episode accumulator) and every env's
  // opaque state — into one GDDRPARM v2 container, written atomically.
  //
  // load_checkpoint restores all of it into a trainer constructed with
  // the same policy architecture, env count and config; training resumed
  // from the checkpoint is bit-identical to the uninterrupted run.  It
  // validates every field and throws util::IoError naming the offending
  // section/field; on throw the trainer is unchanged (staged commit).
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

 private:
  PpoIterationStats update(RolloutBuffer& buffer);

  Policy& policy_;
  PpoConfig config_;
  util::Rng rng_;  // minibatch shuffling
  nn::Adam optimizer_;
  std::vector<nn::Parameter*> params_;
  // Long-lived update tape: reset per minibatch so its arena recycles
  // every buffer, and wired to pool_ so large matmuls shard rows
  // deterministically.  The collector's workers use their own
  // thread-local tapes (never this one).
  nn::Tape update_tape_;
  util::ThreadPool* pool_ = nullptr;
  VecEnvCollector collector_;
  int steps_per_env_;
  HealthMonitor health_;

  long total_env_steps_ = 0;
  long iterations_ = 0;
};

}  // namespace gddr::rl
