#include "rl/health.hpp"

#include <algorithm>
#include <cmath>

namespace gddr::rl {
namespace {

bool all_finite(std::span<const float> data) {
  for (const float v : data) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

HealthMonitor::HealthMonitor(std::vector<nn::Parameter*> params,
                             HealthConfig config, const nn::Adam& optimizer)
    : params_(std::move(params)), config_(config) {
  capture(optimizer);
}

void HealthMonitor::capture(const nn::Adam& optimizer) {
  good_values_.clear();
  good_values_.reserve(params_.size());
  for (const nn::Parameter* p : params_) good_values_.push_back(p->value);
  good_optimizer_ = optimizer.export_state(params_);
}

bool HealthMonitor::gradients_finite() const {
  for (const nn::Parameter* p : params_) {
    if (!all_finite(p->grad.data())) return false;
  }
  return true;
}

bool HealthMonitor::parameters_finite() const {
  for (const nn::Parameter* p : params_) {
    if (!all_finite(p->value.data())) return false;
  }
  return true;
}

double HealthMonitor::rollback(nn::Adam& optimizer) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value = good_values_[i];
  }
  optimizer.import_state(good_optimizer_, params_);
  const double shrunk = std::max(config_.min_learning_rate,
                                 optimizer.learning_rate() * config_.lr_shrink);
  optimizer.set_learning_rate(shrunk);
  ++rollbacks_;
  return shrunk;
}

}  // namespace gddr::rl
