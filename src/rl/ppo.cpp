#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/gaussian.hpp"
#include "obs/metrics.hpp"
#include "rl/forward.hpp"
#include "rl/rl_invariants.hpp"
#include "util/contract.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

namespace gddr::rl {

using nn::Tape;
using nn::Tensor;

PpoTrainer::PpoTrainer(Policy& policy, Env& env, const PpoConfig& config,
                       std::uint64_t seed)
    : PpoTrainer(policy, std::vector<Env*>{&env}, config, seed, nullptr) {}

PpoTrainer::PpoTrainer(Policy& policy, std::vector<Env*> envs,
                       const PpoConfig& config, std::uint64_t seed,
                       util::ThreadPool* pool)
    : policy_(policy),
      config_(config),
      rng_(seed),
      optimizer_(config.learning_rate),
      params_(policy.parameters()),
      pool_(pool),
      collector_(policy, std::move(envs), seed, pool),
      steps_per_env_((config.rollout_steps + collector_.num_envs() - 1) /
                     collector_.num_envs()),
      health_(params_, config.health, optimizer_) {}

std::vector<double> PpoTrainer::act_deterministic(const Observation& obs) {
  return forward_policy(policy_, obs).mean;
}

PpoIterationStats PpoTrainer::train_iteration() {
  obs::ScopedTimer iteration_timer("train/iteration");
  RolloutBuffer buffer;

  obs::ScopedTimer collect_timer("train/collect");
  const VecEnvCollector::CollectStats collected =
      collector_.collect(steps_per_env_, config_.reward_scale, buffer);
  const double collect_s = collect_timer.stop();
  if (collect_s > 0.0) {
    obs::gauge("train/collect/steps_per_s",
               static_cast<double>(collected.steps) / collect_s);
  }
  obs::count("train/env_steps", static_cast<std::uint64_t>(collected.steps));
  total_env_steps_ += collected.steps;

  // Bootstrap flags must be coherent *before* GAE runs — a zeroed
  // truncation bootstrap or an open segment tail is exactly the class of
  // bug PR 1 fixed, and it corrupts advantages silently.
  GDDR_VALIDATE(check_rollout_flags(buffer.samples(), "rl/collect/flags"));

  // Every env segment's tail carries its own bootstrap (truncated /
  // bootstrap_value, set by the collector), so no trailing last_value is
  // needed here.
  {
    obs::ScopedTimer gae_timer("train/gae");
    buffer.compute_gae(config_.gamma, config_.gae_lambda, /*last_value=*/0.0,
                       config_.normalize_advantages);
  }
  GDDR_VALIDATE(check_gae_outputs(buffer.samples(), "rl/gae/finite"));

  obs::ScopedTimer update_timer("train/update");
  PpoIterationStats stats = update(buffer);
  update_timer.stop();
  obs::count("train/iterations");
  stats.steps = collected.steps;
  stats.episodes = collected.episodes;
  stats.mean_episode_reward =
      collected.episodes > 0
          ? collected.episode_reward_sum / collected.episodes
          : 0.0;
  ++iterations_;
  return stats;
}

PpoIterationStats PpoTrainer::update(RolloutBuffer& buffer) {
  PpoIterationStats stats;
  auto& samples = buffer.samples();
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  double policy_loss_acc = 0.0;
  double value_loss_acc = 0.0;
  double entropy_acc = 0.0;
  double kl_acc = 0.0;
  double clip_acc = 0.0;
  long batches = 0;
  util::RunningStat minibatch_loss;  // per-minibatch mean total loss

  const float clip = static_cast<float>(config_.clip_epsilon);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.minibatch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(config_.minibatch_size));
      const auto batch_size = static_cast<float>(end - start);

      // Member tape, reset per minibatch: the arena recycles every
      // value/grad buffer, so steady-state updates allocate nothing.
      // Only this main-thread tape gets the pool — collector workers run
      // their own tapes, and handing them the same pool would deadlock.
      Tape& tape = update_tape_;
      tape.reset();
      tape.set_thread_pool(pool_);
      Tape::Var total_loss = tape.zeros(1, 1);
      double batch_kl = 0.0;
      double batch_clipfrac = 0.0;
      double batch_policy_loss = 0.0;
      double batch_value_loss = 0.0;
      double batch_entropy = 0.0;

      for (size_t k = start; k < end; ++k) {
        const StepSample& s = samples[order[k]];
        const int adim = static_cast<int>(s.action.size());

        const Tape::Var mean = policy_.action_mean(tape, s.obs);
        const Tape::Var log_std = policy_.log_std_row(tape, adim);
        const Tensor action_row = Tensor::row(
            std::span<const double>(s.action.data(), s.action.size()));
        const Tape::Var log_prob = nn::diag_gaussian_log_prob(
            tape, mean, log_std, action_row);  // 1x1

        // ratio = exp(logpi - logpi_old)
        const Tape::Var ratio = tape.exp(tape.add_scalar(
            log_prob, static_cast<float>(-s.log_prob)));
        const auto adv = static_cast<float>(s.advantage);
        const Tape::Var surr1 = tape.scale(ratio, adv);
        const Tape::Var surr2 =
            tape.scale(tape.clip(ratio, 1.0F - clip, 1.0F + clip), adv);
        const Tape::Var policy_obj = tape.minimum(surr1, surr2);
        const Tape::Var policy_loss = tape.neg(policy_obj);

        // Clipped value loss (PPO2 style).
        const Tape::Var v = policy_.value(tape, s.obs);
        const auto v_old = static_cast<float>(s.value);
        const auto ret = static_cast<float>(s.return_);
        const Tape::Var v_err = tape.square(tape.add_scalar(v, -ret));
        const Tape::Var v_clipped = tape.add_scalar(
            tape.clip(tape.add_scalar(v, -v_old), -clip, clip),
            v_old - ret);
        const Tape::Var v_err_clipped = tape.square(v_clipped);
        const Tape::Var value_loss =
            tape.scale(tape.maximum(v_err, v_err_clipped), 0.5F);

        const Tape::Var entropy = nn::diag_gaussian_entropy(tape, log_std);

        Tape::Var loss = tape.add(
            policy_loss,
            tape.scale(value_loss, static_cast<float>(config_.value_coef)));
        loss = tape.sub(
            loss,
            tape.scale(entropy, static_cast<float>(config_.entropy_coef)));
        total_loss = tape.add(total_loss, loss);

        // Diagnostics.
        const double lp_new = tape.value(log_prob).at(0, 0);
        const double r = std::exp(lp_new - s.log_prob);
        batch_kl += s.log_prob - lp_new;
        if (std::abs(r - 1.0) > config_.clip_epsilon) batch_clipfrac += 1.0;
        batch_policy_loss += tape.value(policy_loss).at(0, 0);
        batch_value_loss += tape.value(value_loss).at(0, 0);
        batch_entropy += tape.value(entropy).at(0, 0);
      }

      total_loss = tape.scale(total_loss, 1.0F / batch_size);
      minibatch_loss.add(tape.value(total_loss).at(0, 0));
      nn::zero_grads(params_);
      {
        obs::ScopedTimer backward_timer("train/update/backward");
        tape.backward(total_loss);
      }
      nn::clip_grad_norm(params_, config_.max_grad_norm);

      if (health_.enabled()) {
        // Deterministic fault injection: poison one gradient entry so
        // tests can prove the recovery path below actually fires.
        if (util::inject(util::FaultSite::kNanGradient) && !params_.empty()) {
          params_.front()->grad.data()[0] =
              std::numeric_limits<float>::quiet_NaN();
        }
        const double loss_value = tape.value(total_loss).at(0, 0);
        if (!std::isfinite(loss_value) || !health_.gradients_finite()) {
          // NaN/Inf before the step: skip it, restore last-good weights
          // and optimiser moments, shrink the lr, keep training.
          health_.note_nonfinite();
          ++stats.nonfinite_events;
          health_.rollback(optimizer_);
          ++stats.health_rollbacks;
          continue;
        }
        optimizer_.step(params_);
        if (!health_.parameters_finite()) {
          // The step itself overflowed (e.g. astronomically scaled
          // moments): undo it the same way.
          health_.note_nonfinite();
          ++stats.nonfinite_events;
          health_.rollback(optimizer_);
          ++stats.health_rollbacks;
          continue;
        }
        health_.capture(optimizer_);
      } else {
        optimizer_.step(params_);
      }

      policy_loss_acc += batch_policy_loss / batch_size;
      value_loss_acc += batch_value_loss / batch_size;
      entropy_acc += batch_entropy / batch_size;
      kl_acc += batch_kl / batch_size;
      clip_acc += batch_clipfrac / batch_size;
      ++batches;
    }
  }

  if (batches > 0) {
    stats.policy_loss = policy_loss_acc / static_cast<double>(batches);
    stats.value_loss = value_loss_acc / static_cast<double>(batches);
    stats.entropy = entropy_acc / static_cast<double>(batches);
    stats.approx_kl = kl_acc / static_cast<double>(batches);
    stats.clip_fraction = clip_acc / static_cast<double>(batches);
  }
  stats.learning_rate = optimizer_.learning_rate();
  // With the watchdog active every non-finite batch was rolled back above,
  // so the reported means must be finite; without it they still are unless
  // the optimisation itself diverged, which this surfaces immediately.
  GDDR_VALIDATE(check_finite_losses(stats, "rl/update/losses"));
  if (obs::enabled()) {
    obs::count("train/minibatches", static_cast<std::uint64_t>(batches));
    obs::gauge("train/loss/minibatch_mean", minibatch_loss.mean());
    obs::gauge("train/loss/minibatch_stddev", minibatch_loss.stddev());
    obs::gauge("train/loss/policy", stats.policy_loss);
    obs::gauge("train/loss/value", stats.value_loss);
    obs::gauge("train/entropy", stats.entropy);
    obs::gauge("train/approx_kl", stats.approx_kl);
    obs::gauge("train/clip_fraction", stats.clip_fraction);
    obs::gauge("train/learning_rate", stats.learning_rate);
    if (stats.nonfinite_events > 0) {
      obs::count("train/health/nonfinite",
                 static_cast<std::uint64_t>(stats.nonfinite_events));
      obs::count("train/health/rollbacks",
                 static_cast<std::uint64_t>(stats.health_rollbacks));
    }
  }
  return stats;
}

void PpoTrainer::train(long total_steps, const Callback& callback) {
  const long target = total_env_steps_ + total_steps;
  while (total_env_steps_ < target) {
    const PpoIterationStats stats = train_iteration();
    if (callback) callback(stats);
  }
}

}  // namespace gddr::rl
