// Experience storage and Generalised Advantage Estimation.
#pragma once

#include <vector>

#include "rl/env.hpp"

namespace gddr::rl {

struct StepSample {
  Observation obs;
  std::vector<double> action;
  double log_prob = 0.0;  // behaviour-policy log-density of `action`
  double value = 0.0;     // V(obs) at collection time
  double reward = 0.0;
  bool done = false;
  // Filled in by compute_gae():
  double advantage = 0.0;
  double return_ = 0.0;
};

class RolloutBuffer {
 public:
  void clear() { samples_.clear(); }
  void add(StepSample sample) { samples_.push_back(std::move(sample)); }
  std::size_t size() const { return samples_.size(); }
  std::vector<StepSample>& samples() { return samples_; }
  const std::vector<StepSample>& samples() const { return samples_; }

  // GAE(lambda) over the stored trajectory (a single stream of steps;
  // `done` flags delimit episodes).  `last_value` bootstraps the value of
  // the state following the final stored step (0 if that step ended an
  // episode).  Optionally normalises advantages to zero mean / unit std.
  void compute_gae(double gamma, double lambda, double last_value,
                   bool normalize_advantages);

 private:
  std::vector<StepSample> samples_;
};

}  // namespace gddr::rl
