// Experience storage and Generalised Advantage Estimation.
#pragma once

#include <vector>

#include "rl/env.hpp"

namespace gddr::rl {

struct StepSample {
  Observation obs;
  std::vector<double> action;
  double log_prob = 0.0;  // behaviour-policy log-density of `action`
  double value = 0.0;     // V(obs) at collection time
  double reward = 0.0;
  bool done = false;
  // True when the episode (or the collection window) was cut short rather
  // than reaching a real terminal state — a time-limit truncation, the end
  // of a rollout mid-episode, or an env-segment boundary in vectorised
  // collection.  A truncated step bootstraps its successor value from
  // `bootstrap_value` (= V of the next/terminal observation, recorded at
  // collection time) instead of the 0 a true terminal gets.
  bool truncated = false;
  double bootstrap_value = 0.0;
  // Filled in by compute_gae():
  double advantage = 0.0;
  double return_ = 0.0;
};

class RolloutBuffer {
 public:
  void clear() { samples_.clear(); }
  void add(StepSample sample) { samples_.push_back(std::move(sample)); }
  std::size_t size() const { return samples_.size(); }
  std::vector<StepSample>& samples() { return samples_; }
  const std::vector<StepSample>& samples() const { return samples_; }

  // GAE(lambda) over the stored trajectory (a single stream of steps;
  // `done` / `truncated` flags delimit episodes).  A terminal step's
  // successor value is 0; a truncated step's is its own
  // `bootstrap_value`; in both cases the advantage recursion restarts.
  // `last_value` bootstraps the state following the final stored step when
  // that step is neither terminal nor truncated.  Optionally normalises
  // advantages to zero mean / unit std.
  void compute_gae(double gamma, double lambda, double last_value,
                   bool normalize_advantages);

 private:
  std::vector<StepSample> samples_;
};

}  // namespace gddr::rl
