// Trainer checkpoint/resume: PpoTrainer::save_checkpoint /
// load_checkpoint and the VecEnvCollector slot (de)serialisation.
//
// Checkpoint layout (GDDRPARM v2 container, see nn/serialize.hpp):
//   kParameters — policy weights (v1 body layout)
//   kAdam       — i64 step count, u64 param count, per param {m, v}
//   kTrainer    — shuffle RNG state, i64 total_env_steps, i64 iterations,
//                 f64 learning rate
//   kCollector  — u64 env count, per slot {action RNG state,
//                 u8 needs_reset, f64 episode reward, pending observation}
//   kEnvs       — u64 env count, per env {u64 blob len, opaque bytes}
//
// load_checkpoint is staged: every section is parsed and validated into
// temporaries (shapes checked against the live parameters) before the
// first trainer member is mutated, so a corrupt file throws util::IoError
// naming the offending field and leaves the trainer unchanged.
#include "rl/checkpoint.hpp"

#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "rl/ppo.hpp"
#include "rl/vec_env.hpp"
#include "util/error.hpp"

namespace gddr::rl {
namespace {

using nn::read_bytes;
using nn::read_pod;
using nn::write_pod;

// Upper bound on any serialised element count; anything larger is a
// corrupt length field, not a real checkpoint.
constexpr std::uint64_t kMaxElements = 1ULL << 28;

std::uint64_t read_count(std::istream& is, const std::string& field) {
  const auto count = read_pod<std::uint64_t>(is, field);
  if (count > kMaxElements) {
    throw util::IoError("implausible count " + std::to_string(count) +
                        " in field '" + field + "'");
  }
  return count;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
std::vector<T> read_vector(std::istream& is, const std::string& field) {
  const std::uint64_t count = read_count(is, field + " length");
  std::vector<T> v(static_cast<std::size_t>(count));
  if (count > 0) read_bytes(is, v.data(), v.size() * sizeof(T), field);
  return v;
}

}  // namespace

// ---- shared helpers ----

void write_rng_state(std::ostream& os, const util::Rng& rng) {
  const util::Rng::State state = rng.state();
  for (const std::uint64_t word : state.s) write_pod(os, word);
  write_pod(os, state.cached_normal);
  write_pod(os, static_cast<std::uint8_t>(state.has_cached_normal ? 1 : 0));
}

void read_rng_state(std::istream& is, util::Rng& rng,
                    const std::string& field) {
  util::Rng::State state;
  for (std::uint64_t& word : state.s) {
    word = read_pod<std::uint64_t>(is, field + " words");
  }
  state.cached_normal = read_pod<double>(is, field + " cached normal");
  const auto flag = read_pod<std::uint8_t>(is, field + " cache flag");
  if (flag > 1) {
    throw util::IoError("corrupt boolean in field '" + field +
                        " cache flag'");
  }
  state.has_cached_normal = flag != 0;
  rng.set_state(state);
}

void write_observation(std::ostream& os, const Observation& obs) {
  write_vector(os, obs.flat);
  nn::write_tensor(os, obs.nodes);
  nn::write_tensor(os, obs.edges);
  nn::write_tensor(os, obs.globals);
  write_vector(os, obs.senders);
  write_vector(os, obs.receivers);
  write_pod(os, static_cast<std::int32_t>(obs.num_nodes));
}

Observation read_observation(std::istream& is, const std::string& field) {
  Observation obs;
  obs.flat = read_vector<double>(is, field + " flat");
  obs.nodes = nn::read_tensor(is, field + " nodes");
  obs.edges = nn::read_tensor(is, field + " edges");
  obs.globals = nn::read_tensor(is, field + " globals");
  obs.senders = read_vector<int>(is, field + " senders");
  obs.receivers = read_vector<int>(is, field + " receivers");
  obs.num_nodes = read_pod<std::int32_t>(is, field + " num_nodes");
  return obs;
}

// ---- collector slots ----

void VecEnvCollector::save_state(std::ostream& os) const {
  write_pod(os, static_cast<std::uint64_t>(slots_.size()));
  for (const EnvSlot& slot : slots_) {
    write_rng_state(os, slot.rng);
    write_pod(os, static_cast<std::uint8_t>(slot.needs_reset ? 1 : 0));
    write_pod(os, slot.episode_reward);
    write_observation(os, slot.obs);
  }
}

void VecEnvCollector::load_state(std::istream& is) {
  const std::uint64_t count = read_count(is, "collector env count");
  if (count != slots_.size()) {
    throw util::IoError("collector env count mismatch: checkpoint has " +
                        std::to_string(count) + ", trainer has " +
                        std::to_string(slots_.size()));
  }

  struct SlotState {
    util::Rng rng;
    bool needs_reset = true;
    double episode_reward = 0.0;
    Observation obs;
  };
  std::vector<SlotState> staged(slots_.size());
  for (std::size_t i = 0; i < staged.size(); ++i) {
    const std::string field = "collector slot " + std::to_string(i);
    SlotState& s = staged[i];
    read_rng_state(is, s.rng, field + " rng");
    const auto flag = read_pod<std::uint8_t>(is, field + " needs_reset");
    if (flag > 1) {
      throw util::IoError("corrupt boolean in field '" + field +
                          " needs_reset'");
    }
    s.needs_reset = flag != 0;
    s.episode_reward = read_pod<double>(is, field + " episode_reward");
    s.obs = read_observation(is, field + " observation");
  }

  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].rng = staged[i].rng;
    slots_[i].needs_reset = staged[i].needs_reset;
    slots_[i].episode_reward = staged[i].episode_reward;
    slots_[i].obs = std::move(staged[i].obs);
  }
}

// ---- trainer checkpoint ----

void PpoTrainer::save_checkpoint(const std::string& path) const {
  obs::ScopedTimer write_timer("ckpt/write");
  nn::ContainerWriter writer;
  writer.add(nn::Section::kParameters, nn::parameters_payload(params_));

  {
    std::ostringstream os;
    const nn::Adam::State state = optimizer_.export_state(params_);
    write_pod(os, static_cast<std::int64_t>(state.t));
    write_pod(os, static_cast<std::uint64_t>(state.m.size()));
    for (std::size_t i = 0; i < state.m.size(); ++i) {
      nn::write_tensor(os, state.m[i]);
      nn::write_tensor(os, state.v[i]);
    }
    writer.add(nn::Section::kAdam, std::move(os).str());
  }

  {
    std::ostringstream os;
    write_rng_state(os, rng_);
    write_pod(os, static_cast<std::int64_t>(total_env_steps_));
    write_pod(os, static_cast<std::int64_t>(iterations_));
    write_pod(os, optimizer_.learning_rate());
    writer.add(nn::Section::kTrainer, std::move(os).str());
  }

  {
    std::ostringstream os;
    collector_.save_state(os);
    writer.add(nn::Section::kCollector, std::move(os).str());
  }

  {
    std::ostringstream os;
    const auto n = static_cast<std::uint64_t>(collector_.num_envs());
    write_pod(os, n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::vector<std::uint8_t> blob =
          collector_.env(static_cast<int>(i)).save_state();
      write_pod(os, static_cast<std::uint64_t>(blob.size()));
      if (!blob.empty()) {
        os.write(reinterpret_cast<const char*>(blob.data()),
                 static_cast<std::streamsize>(blob.size()));
      }
    }
    writer.add(nn::Section::kEnvs, std::move(os).str());
  }

  writer.write(path);
  obs::count("ckpt/writes");
}

void PpoTrainer::load_checkpoint(const std::string& path) {
  obs::ScopedTimer read_timer("ckpt/read");
  const nn::ContainerReader reader(path);
  for (const nn::Section section :
       {nn::Section::kParameters, nn::Section::kAdam, nn::Section::kTrainer,
        nn::Section::kCollector, nn::Section::kEnvs}) {
    if (!reader.has(section)) {
      throw util::IoError("checkpoint " + path + " missing section '" +
                          nn::to_string(section) + "'");
    }
  }

  // Stage 1: parse every section into temporaries, validating against
  // the live trainer (param shapes, env counts).  Nothing is mutated yet.
  nn::Adam::State adam;
  {
    std::istringstream is(reader.payload(nn::Section::kAdam));
    adam.t = static_cast<long>(read_pod<std::int64_t>(is, "adam step count"));
    if (adam.t < 0) {
      throw util::IoError("negative step count in field 'adam step count'");
    }
    const std::uint64_t count = read_count(is, "adam moment count");
    if (count != params_.size()) {
      throw util::IoError(
          "adam moment count mismatch: checkpoint has " +
          std::to_string(count) + ", policy has " +
          std::to_string(params_.size()) + " parameters");
    }
    adam.m.reserve(count);
    adam.v.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string field = "adam moment " + std::to_string(i);
      adam.m.push_back(nn::read_tensor_checked(is, params_[i]->value,
                                               field + " (m)"));
      adam.v.push_back(nn::read_tensor_checked(is, params_[i]->value,
                                               field + " (v)"));
    }
  }

  util::Rng::State trainer_rng;
  std::int64_t total_env_steps = 0;
  std::int64_t iterations = 0;
  double learning_rate = 0.0;
  {
    std::istringstream is(reader.payload(nn::Section::kTrainer));
    util::Rng scratch(0);
    read_rng_state(is, scratch, "trainer rng");
    trainer_rng = scratch.state();
    total_env_steps = read_pod<std::int64_t>(is, "trainer total_env_steps");
    iterations = read_pod<std::int64_t>(is, "trainer iterations");
    learning_rate = read_pod<double>(is, "trainer learning_rate");
    if (total_env_steps < 0 || iterations < 0) {
      throw util::IoError("negative counter in section 'trainer'");
    }
    if (!(learning_rate > 0.0)) {
      throw util::IoError(
          "non-positive value in field 'trainer learning_rate'");
    }
  }

  std::vector<std::vector<std::uint8_t>> env_blobs;
  {
    std::istringstream is(reader.payload(nn::Section::kEnvs));
    const std::uint64_t count = read_count(is, "env state count");
    if (count != static_cast<std::uint64_t>(collector_.num_envs())) {
      throw util::IoError("env state count mismatch: checkpoint has " +
                          std::to_string(count) + ", trainer has " +
                          std::to_string(collector_.num_envs()));
    }
    env_blobs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string field = "env " + std::to_string(i) + " state";
      const std::uint64_t len = read_count(is, field + " length");
      std::vector<std::uint8_t> blob(static_cast<std::size_t>(len));
      if (len > 0) read_bytes(is, blob.data(), blob.size(), field);
      env_blobs.push_back(std::move(blob));
    }
  }

  // Stage 2: commit.  Envs are restored first: they validate their own
  // blobs and throw before the trainer core has been touched.
  for (std::size_t i = 0; i < env_blobs.size(); ++i) {
    collector_.env(static_cast<int>(i)).restore_state(env_blobs[i]);
  }
  {
    std::istringstream is(reader.payload(nn::Section::kCollector));
    collector_.load_state(is);
  }
  nn::load_parameters_payload(reader.payload(nn::Section::kParameters),
                              params_, "checkpoint " + path);
  optimizer_.import_state(adam, params_);
  optimizer_.set_learning_rate(learning_rate);
  rng_.set_state(trainer_rng);
  total_env_steps_ = static_cast<long>(total_env_steps);
  iterations_ = static_cast<long>(iterations);
  health_.capture(optimizer_);
}

}  // namespace gddr::rl
