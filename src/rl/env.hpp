// Reinforcement-learning environment interface (OpenAI-Gym-style, paper
// §V): reset() starts an episode, step() advances one timestep given an
// action and returns the next observation, the reward and a done flag.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "nn/tensor.hpp"

namespace gddr::rl {

// A single observation.  Environments fill every representation so that
// different policy families can consume the same stream:
//  * `flat`    — flattened feature vector (MLP policies; paper §V-B);
//  * `nodes` / `edges` / `globals` — graph-structured attributes plus the
//    sender/receiver connectivity (GNN policies, paper Eq. 4/6);
struct Observation {
  std::vector<double> flat;
  nn::Tensor nodes;    // N x node_dim
  nn::Tensor edges;    // E x edge_dim
  nn::Tensor globals;  // 1 x global_dim
  std::vector<int> senders;    // per edge: source node
  std::vector<int> receivers;  // per edge: destination node
  int num_nodes = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Starts a new episode and returns its first observation.
  virtual Observation reset() = 0;

  struct StepResult {
    Observation obs;
    double reward = 0.0;
    bool done = false;
    // True when `done` is due to a time/step limit rather than a real
    // terminal state of the MDP.  A truncating env must fill `obs` with
    // the terminal observation so the collector can bootstrap V(s_T)
    // (GAE must not zero the successor value at a truncation).
    bool truncated = false;
  };

  // Applies `action` (length action_dim()) and advances one timestep.
  virtual StepResult step(std::span<const double> action) = 0;

  // Dimensionality of the action expected by the *next* step() call (may
  // change across episodes when training over multiple topologies).
  virtual int action_dim() const = 0;

  // Checkpoint support.  An env that participates in trainer
  // checkpoint/resume serialises its complete dynamic state (RNG,
  // sequence cursors, in-flight episode position) into an opaque blob;
  // restoring it must make the env bit-identical to the moment of the
  // save.  The defaults mark the env stateless: save returns an empty
  // blob and restore accepts only an empty one, so resuming a trainer
  // over an env that silently dropped state is impossible.
  virtual std::vector<std::uint8_t> save_state() const { return {}; }
  virtual void restore_state(std::span<const std::uint8_t> blob) {
    if (!blob.empty()) {
      throw std::runtime_error(
          "Env::restore_state: this env does not support state restore");
    }
  }
};

}  // namespace gddr::rl
