// Shared serialisation helpers for trainer checkpoints (GDDRPARM v2
// sections kAdam/kTrainer/kCollector/kEnvs; see nn/serialize.hpp for the
// container format and PpoTrainer::save_checkpoint for the layout).
//
// Everything here follows the container's safety contract: reads throw
// util::IoError naming the offending field on truncation or corruption,
// and callers stage whole sections into temporaries before committing.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace gddr::rl {

// Complete util::Rng state: 4x u64 xoshiro words, f64 Box-Muller cache,
// u8 cache-valid flag.
void write_rng_state(std::ostream& os, const util::Rng& rng);
void read_rng_state(std::istream& is, util::Rng& rng,
                    const std::string& field);

// Full observation (flat features, graph tensors, connectivity).  Values
// round-trip bit-exactly — doubles and floats are written raw.
void write_observation(std::ostream& os, const Observation& obs);
Observation read_observation(std::istream& is, const std::string& field);

}  // namespace gddr::rl
