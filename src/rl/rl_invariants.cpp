#include "rl/rl_invariants.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace gddr::rl {

using util::contract::describe;
using util::contract::violate_invariant;

void check_rollout_flags(const std::vector<StepSample>& samples,
                         std::string_view label) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const StepSample& s = samples[i];
    if (!std::isfinite(s.reward) || !std::isfinite(s.value) ||
        !std::isfinite(s.log_prob)) {
      violate_invariant("finite reward/value/log_prob", label,
                        describe("index", i, "reward", s.reward, "value",
                                 s.value, "log_prob", s.log_prob));
    }
    if (s.truncated && !std::isfinite(s.bootstrap_value)) {
      violate_invariant("truncated sample carries a finite bootstrap", label,
                        describe("index", i, "bootstrap_value",
                                 s.bootstrap_value));
    }
    if (!s.truncated && s.bootstrap_value != 0.0) {
      violate_invariant("bootstrap only on truncated samples", label,
                        describe("index", i, "bootstrap_value",
                                 s.bootstrap_value));
    }
  }
  if (!samples.empty()) {
    const StepSample& last = samples.back();
    if (!last.done && !last.truncated) {
      violate_invariant("final sample closes its segment", label,
                        describe("index", samples.size() - 1));
    }
  }
}

void check_gae_outputs(const std::vector<StepSample>& samples,
                       std::string_view label) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const StepSample& s = samples[i];
    if (!std::isfinite(s.advantage) || !std::isfinite(s.return_)) {
      violate_invariant("finite advantages and returns", label,
                        describe("index", i, "advantage", s.advantage,
                                 "return", s.return_));
    }
  }
}

void check_finite_losses(const PpoIterationStats& stats,
                         std::string_view label) {
  if (!std::isfinite(stats.policy_loss) || !std::isfinite(stats.value_loss) ||
      !std::isfinite(stats.entropy)) {
    violate_invariant("finite PPO losses", label,
                      describe("policy_loss", stats.policy_loss, "value_loss",
                               stats.value_loss, "entropy", stats.entropy));
  }
}

}  // namespace gddr::rl
