#include "rl/rollout.hpp"

#include <cmath>

namespace gddr::rl {

void RolloutBuffer::compute_gae(double gamma, double lambda,
                                double last_value,
                                bool normalize_advantages) {
  double next_value = last_value;
  double next_advantage = 0.0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    StepSample& s = *it;
    const double not_done = s.done ? 0.0 : 1.0;
    const double delta = s.reward + gamma * next_value * not_done - s.value;
    s.advantage = delta + gamma * lambda * not_done * next_advantage;
    s.return_ = s.advantage + s.value;
    next_value = s.value;
    next_advantage = s.advantage;
  }
  if (normalize_advantages && samples_.size() > 1) {
    double mean = 0.0;
    for (const auto& s : samples_) mean += s.advantage;
    mean /= static_cast<double>(samples_.size());
    double var = 0.0;
    for (const auto& s : samples_) {
      var += (s.advantage - mean) * (s.advantage - mean);
    }
    var /= static_cast<double>(samples_.size());
    const double stddev = std::sqrt(var) + 1e-8;
    for (auto& s : samples_) s.advantage = (s.advantage - mean) / stddev;
  }
}

}  // namespace gddr::rl
