#include "rl/rollout.hpp"

#include <cmath>

namespace gddr::rl {

void RolloutBuffer::compute_gae(double gamma, double lambda,
                                double last_value,
                                bool normalize_advantages) {
  double next_value = last_value;
  double next_advantage = 0.0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    StepSample& s = *it;
    // Successor value: 0 past a true terminal, the recorded V(s_T) past a
    // truncation (time limit / rollout or env-segment boundary), else the
    // next stored sample's value.  The advantage recursion restarts at
    // both kinds of boundary — only the value bootstrap differs.
    const bool boundary = s.done || s.truncated;
    const double succ_value =
        s.truncated ? s.bootstrap_value : (s.done ? 0.0 : next_value);
    const double delta = s.reward + gamma * succ_value - s.value;
    s.advantage =
        delta + (boundary ? 0.0 : gamma * lambda * next_advantage);
    s.return_ = s.advantage + s.value;
    next_value = s.value;
    next_advantage = s.advantage;
  }
  if (normalize_advantages && samples_.size() > 1) {
    double mean = 0.0;
    for (const auto& s : samples_) mean += s.advantage;
    mean /= static_cast<double>(samples_.size());
    double var = 0.0;
    for (const auto& s : samples_) {
      var += (s.advantage - mean) * (s.advantage - mean);
    }
    var /= static_cast<double>(samples_.size());
    const double stddev = std::sqrt(var) + 1e-8;
    for (auto& s : samples_) s.advantage = (s.advantage - mean) / stddev;
  }
}

}  // namespace gddr::rl
