// Numerical-health watchdog for PPO training.
//
// Long RL runs die of NaNs: one degenerate minibatch (exploding ratio,
// log of a denormal, poisoned reward) turns a gradient non-finite, the
// optimiser writes the NaNs into the weights, and every step after that
// is garbage — the run is lost even though 99.9% of it was healthy.  The
// watchdog makes the update loop self-healing instead:
//
//  * after every healthy optimiser step it captures an in-memory
//    snapshot of the parameters and the Adam state (the last-good
//    point);
//  * before each step it verifies the minibatch loss and every gradient
//    entry are finite, and after the step that the parameters still are;
//  * on any violation it rolls the parameters and optimiser back to the
//    last-good snapshot and shrinks the learning rate (a blow-up at lr
//    usually reproduces at lr; at lr/2 it usually does not), then lets
//    training continue.
//
// Event counters are surfaced through PpoIterationStats so monitoring
// can alert on a run that is limping rather than learning.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/tensor.hpp"

namespace gddr::rl {

// Shared numerical guard: true when every entry is finite.  The serving
// and lifecycle layers vet policy action means with the same predicate
// the training watchdog applies to gradients and weights, so "healthy"
// means one thing across the stack.
inline bool all_finite(std::span<const double> values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

struct HealthConfig {
  bool enabled = true;
  // Learning-rate multiplier applied on each rollback.
  double lr_shrink = 0.5;
  // Floor under repeated shrinks; reaching it keeps training (rollbacks
  // still protect the weights) without the lr collapsing to zero.
  double min_learning_rate = 1e-7;
};

class HealthMonitor {
 public:
  // `params` must outlive the monitor (they are the trainer's parameter
  // span).  The first snapshot is captured immediately, so a rollback is
  // valid before any step has happened.
  HealthMonitor(std::vector<nn::Parameter*> params, HealthConfig config,
                const nn::Adam& optimizer);

  bool enabled() const { return config_.enabled; }

  // Records the current parameters + optimiser state as last-good.
  void capture(const nn::Adam& optimizer);

  // True when every entry of every gradient / parameter value is finite.
  bool gradients_finite() const;
  bool parameters_finite() const;

  // Restores the last-good snapshot into the parameters and `optimizer`
  // and shrinks its learning rate (never below min_learning_rate).
  // Returns the learning rate now in effect.
  double rollback(nn::Adam& optimizer);

  // Lifetime counters (monotone; survive across iterations).
  long nonfinite_events() const { return nonfinite_events_; }
  long rollbacks() const { return rollbacks_; }
  void note_nonfinite() { ++nonfinite_events_; }

 private:
  std::vector<nn::Parameter*> params_;
  HealthConfig config_;
  std::vector<nn::Tensor> good_values_;
  nn::Adam::State good_optimizer_;
  long nonfinite_events_ = 0;
  long rollbacks_ = 0;
};

}  // namespace gddr::rl
