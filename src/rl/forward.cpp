#include "rl/forward.hpp"

#include <algorithm>
#include <cmath>

#include "nn/gaussian.hpp"
#include "nn/tape.hpp"

namespace gddr::rl {

PolicyForward forward_policy(Policy& policy, const Observation& obs) {
  // One long-lived tape per thread (rollout collectors call this
  // concurrently): reset() recycles every buffer through the tape's
  // arena, so steady-state rollout steps allocate nothing.
  thread_local nn::Tape tape;
  tape.reset();
  const int adim = policy.action_dim(obs);
  const nn::Tape::Var mean = policy.action_mean(tape, obs);
  const nn::Tape::Var value = policy.value(tape, obs);
  const nn::Tape::Var log_std = policy.log_std_row(tape, adim);
  PolicyForward fwd;
  const nn::Tensor& mv = tape.value(mean);
  const nn::Tensor& lv = tape.value(log_std);
  fwd.mean.resize(static_cast<size_t>(mv.cols()));
  fwd.log_std.resize(static_cast<size_t>(lv.cols()));
  for (int j = 0; j < mv.cols(); ++j) {
    fwd.mean[static_cast<size_t>(j)] = mv.at(0, j);
  }
  for (int j = 0; j < lv.cols(); ++j) {
    fwd.log_std[static_cast<size_t>(j)] = lv.at(0, j);
  }
  fwd.value = tape.value(value).at(0, 0);
  return fwd;
}

std::vector<std::vector<double>> forward_action_means(
    Policy& policy, const std::vector<const Observation*>& obs) {
  if (obs.empty()) return {};
  thread_local nn::Tape tape;
  tape.reset();
  nn::Tape::Var stacked;
  if (!policy.action_means(tape, obs, stacked)) return {};
  const nn::Tensor& mv = tape.value(stacked);
  std::vector<std::vector<double>> means(obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    means[i].resize(static_cast<std::size_t>(mv.cols()));
    for (int j = 0; j < mv.cols(); ++j) {
      means[i][static_cast<std::size_t>(j)] = mv.at(static_cast<int>(i), j);
    }
  }
  return means;
}

double action_log_prob(const std::vector<double>& action,
                       const std::vector<double>& mean,
                       const std::vector<double>& log_std) {
  constexpr double kLogSqrt2Pi = 0.9189385332046727;
  double lp = 0.0;
  for (size_t i = 0; i < action.size(); ++i) {
    // Same clamp as nn::diag_gaussian_log_prob, or the PPO importance
    // ratio exp(logpi - logpi_old) would mix clamped and unclamped
    // densities for the same action.
    const double ls = std::clamp(log_std[i], nn::kLogStdMin, nn::kLogStdMax);
    const double sigma = std::exp(ls);
    const double z = (action[i] - mean[i]) / sigma;
    lp += -0.5 * z * z - ls - kLogSqrt2Pi;
  }
  return lp;
}

}  // namespace gddr::rl
