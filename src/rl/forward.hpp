// One-off (no-gradient) policy forward passes, shared by the PPO trainer
// and the vectorised collector.  A forward builds a private Tape and only
// reads policy parameters, so concurrent calls on the same policy from
// different threads are safe.
#pragma once

#include <vector>

#include "rl/policy.hpp"

namespace gddr::rl {

struct PolicyForward {
  std::vector<double> mean;
  std::vector<double> log_std;
  double value = 0.0;
};

// Evaluates action mean, log-std row and state value for one observation.
PolicyForward forward_policy(Policy& policy, const Observation& obs);

// Batched no-gradient action means for observations sharing one topology
// (one stacked GNN forward instead of |obs| separate ones).  Row i is
// bit-identical to forward_policy(policy, *obs[i]).mean.  Returns an
// empty vector when the policy has no batched path or the observations
// do not share connectivity — callers then loop forward_policy.
std::vector<std::vector<double>> forward_action_means(
    Policy& policy, const std::vector<const Observation*>& obs);

// Log-density of `action` under the diagonal Gaussian (mean, exp(log_std)).
double action_log_prob(const std::vector<double>& action,
                       const std::vector<double>& mean,
                       const std::vector<double>& log_std);

}  // namespace gddr::rl
