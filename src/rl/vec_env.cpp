#include "rl/vec_env.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "nn/gaussian.hpp"
#include "obs/metrics.hpp"
#include "rl/forward.hpp"
#include "util/contract.hpp"

namespace gddr::rl {

VecEnvCollector::VecEnvCollector(Policy& policy, std::vector<Env*> envs,
                                 std::uint64_t seed, util::ThreadPool* pool)
    : policy_(policy), pool_(pool) {
  if (envs.empty()) {
    throw std::invalid_argument("VecEnvCollector: no environments");
  }
  // Streams are split off up front in env order, so env i's stream is a
  // function of (seed, i) alone — never of the worker count.
  util::Rng base(seed);
  slots_.reserve(envs.size());
  for (Env* env : envs) {
    if (env == nullptr) {
      throw std::invalid_argument("VecEnvCollector: null environment");
    }
    EnvSlot slot;
    slot.env = env;
    slot.rng = base.split();
    slots_.push_back(std::move(slot));
  }
}

VecEnvCollector::CollectStats VecEnvCollector::collect(
    int steps_per_env, double reward_scale, RolloutBuffer& buffer) {
  if (steps_per_env <= 0) {
    throw std::invalid_argument("VecEnvCollector: steps_per_env <= 0");
  }
  const auto n = slots_.size();
  std::vector<std::vector<StepSample>> trajectories(n);
  std::vector<CollectStats> env_stats(n);

  // Each task reads shared policy parameters (forward passes build
  // private tapes) and writes only to its own slot/trajectory/stats
  // entries, so tasks are independent and the per-env results do not
  // depend on scheduling.
  // Sampled only when metrics are on; each slot writes its own gauge, so
  // the registry lock is hit once per env per collect, not per step.
  const bool metrics = obs::enabled();
  util::parallel_for(pool_, n, [&](std::size_t i) {
    EnvSlot& slot = slots_[i];
    std::vector<StepSample>& traj = trajectories[i];
    CollectStats& stats = env_stats[i];
    traj.reserve(static_cast<size_t>(steps_per_env));
    const auto slot_start = metrics ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};

    for (int step = 0; step < steps_per_env; ++step) {
      if (slot.needs_reset) {
        slot.obs = slot.env->reset();
        slot.episode_reward = 0.0;
        slot.needs_reset = false;
      }
      const PolicyForward fwd = forward_policy(policy_, slot.obs);
      StepSample sample;
      sample.action = nn::sample_diag_gaussian(fwd.mean, fwd.log_std,
                                               slot.rng);
      sample.obs = slot.obs;
      sample.log_prob = action_log_prob(sample.action, fwd.mean,
                                        fwd.log_std);
      sample.value = fwd.value;

      Env::StepResult result = slot.env->step(sample.action);
      ++stats.steps;
      slot.episode_reward += result.reward;
      sample.reward = result.reward * reward_scale;
      sample.done = result.done;
      if (result.done) {
        if (result.truncated) {
          // Time-limit ending: bootstrap from the terminal observation
          // instead of zeroing the successor value.
          sample.truncated = true;
          sample.bootstrap_value =
              forward_policy(policy_, result.obs).value;
        }
        stats.episode_reward_sum += slot.episode_reward;
        ++stats.episodes;
        slot.obs = slot.env->reset();
        slot.episode_reward = 0.0;
      } else {
        slot.obs = std::move(result.obs);
      }
      traj.push_back(std::move(sample));
    }

    // Segment tail cut mid-episode: bootstrap from the env's next
    // observation so GAE neither zeroes it nor chains into the trajectory
    // of the next env in the merged buffer.
    if (!traj.back().done) {
      traj.back().truncated = true;
      traj.back().bootstrap_value = forward_policy(policy_, slot.obs).value;
    }
    GDDR_ENSURE(traj.back().done || traj.back().truncated,
                "rl/collect/segment-tail", "env", i);

    if (metrics) {
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        slot_start)
              .count();
      if (seconds > 0.0) {
        obs::gauge("collect/env/" + std::to_string(i) + "/steps_per_s",
                   static_cast<double>(stats.steps) / seconds);
      }
    }
  });

  CollectStats total;
  for (std::size_t i = 0; i < n; ++i) {
    for (StepSample& s : trajectories[i]) buffer.add(std::move(s));
    total.steps += env_stats[i].steps;
    total.episodes += env_stats[i].episodes;
    total.episode_reward_sum += env_stats[i].episode_reward_sum;
  }
  obs::count("collect/steps", static_cast<std::uint64_t>(total.steps));
  obs::count("collect/episodes", static_cast<std::uint64_t>(total.episodes));
  return total;
}

}  // namespace gddr::rl
