// RL-layer invariant validators for the debug-contract layer
// (util/contract.hpp).  The trainer and collector run these through
// GDDR_VALIDATE around collection and GAE; tests call them directly on
// deliberately broken buffers.  Each throws util::ContractViolation.
#pragma once

#include <string_view>
#include <vector>

#include "rl/ppo.hpp"
#include "rl/rollout.hpp"

namespace gddr::rl {

// Bootstrap-flag consistency of a collected rollout (PR 1's GAE truncation
// contract): rewards and values are finite, every truncated sample carries
// a finite bootstrap_value, a sample that is neither done nor truncated
// carries none, and the final sample of the buffer closes its segment
// (done or truncated) so advantages never leak across env boundaries.
void check_rollout_flags(const std::vector<StepSample>& samples,
                         std::string_view label);

// Post-GAE sanity: every advantage and return is finite.
void check_gae_outputs(const std::vector<StepSample>& samples,
                       std::string_view label);

// Finite losses after a PPO update; with the health watchdog active a
// non-finite loss must have been rolled back, never reported.
void check_finite_losses(const PpoIterationStats& stats,
                         std::string_view label);

}  // namespace gddr::rl
