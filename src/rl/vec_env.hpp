// Vectorised experience collection: N independent environment instances
// stepped concurrently under one behaviour policy.
//
// Determinism contract (see DESIGN.md): each env owns a private RNG
// stream derived from (seed, env index) at construction, each worker task
// touches only its own env slot, and the per-env trajectories are merged
// into the rollout buffer in canonical *env-major* order (all of env 0's
// steps, then env 1's, ...).  The collected buffer is therefore
// bit-identical for any worker count — a 16-thread pool and plain serial
// execution produce the same bytes.
//
// Episode/segment boundaries: an env whose segment ends mid-episode, or
// whose episode was cut by a time limit (StepResult::truncated), has its
// final sample marked truncated with bootstrap_value = V(next/terminal
// observation), so one compute_gae() pass over the merged buffer treats
// every boundary correctly (no zeroed bootstraps at truncations, no
// advantage leakage across env segments).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "rl/env.hpp"
#include "rl/policy.hpp"
#include "rl/rollout.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gddr::rl {

class VecEnvCollector {
 public:
  // `policy`, the envs and `pool` must outlive the collector.  `pool` may
  // be null (serial collection).  Env state (current observation, episode
  // reward) persists across collect() calls, exactly like the serial
  // trainer's.
  VecEnvCollector(Policy& policy, std::vector<Env*> envs, std::uint64_t seed,
                  util::ThreadPool* pool = nullptr);

  int num_envs() const { return static_cast<int>(slots_.size()); }

  struct CollectStats {
    int steps = 0;     // total env steps appended (num_envs * steps_per_env)
    int episodes = 0;  // episodes completed during collection
    double episode_reward_sum = 0.0;  // unscaled, over completed episodes
  };

  // Steps every env `steps_per_env` times, sampling actions from the
  // policy, and appends the trajectories to `buffer` env-major.  Rewards
  // are scaled by `reward_scale` in the stored samples; episode-reward
  // stats stay unscaled.
  CollectStats collect(int steps_per_env, double reward_scale,
                       RolloutBuffer& buffer);

  // Env access for checkpointing (the trainer serialises each env's
  // opaque state alongside the slot state).
  Env& env(int i) const { return *slots_[static_cast<std::size_t>(i)].env; }

  // Checkpoint support (implemented in rl/checkpoint.cpp): serialises /
  // restores every slot's action-sampling RNG, pending observation,
  // reset flag and episode-reward accumulator.  load_state validates the
  // stored env count and throws util::IoError naming the offending field
  // without touching any slot on failure.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  struct EnvSlot {
    Env* env = nullptr;
    util::Rng rng;  // private action-sampling stream
    Observation obs;
    bool needs_reset = true;
    double episode_reward = 0.0;  // unscaled, accumulating
  };

  Policy& policy_;
  util::ThreadPool* pool_;
  std::vector<EnvSlot> slots_;
};

}  // namespace gddr::rl
