#include "serve/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "rl/forward.hpp"
#include "util/fault.hpp"

namespace gddr::serve {

using Clock = std::chrono::steady_clock;

const char* rung_name(Rung rung) {
  switch (rung) {
    case Rung::kGnnPolicy:
      return "gnn_policy";
    case Rung::kLastKnownGood:
      return "last_known_good";
    case Rung::kInverseCapacity:
      return "inverse_capacity";
    case Rung::kShortestPath:
      return "shortest_path";
    case Rung::kDropTraffic:
      return "drop_traffic";
    case Rung::kRungCount:
      break;
  }
  return "?";
}

const char* cause_name(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return "none";
    case FailureCause::kNoPolicy:
      return "no_policy";
    case FailureCause::kBreakerOpen:
      return "breaker_open";
    case FailureCause::kPolicyError:
      return "policy_error";
    case FailureCause::kNonFiniteOutput:
      return "non_finite_output";
    case FailureCause::kDeadlineExpired:
      return "deadline_expired";
    case FailureCause::kTranslationFailed:
      return "translation_failed";
    case FailureCause::kInvalidRouting:
      return "invalid_routing";
    case FailureCause::kSimulationFailed:
      return "simulation_failed";
    case FailureCause::kTopologyChanged:
      return "topology_changed";
    case FailureCause::kNotCached:
      return "not_cached";
    case FailureCause::kInvalidTopology:
      return "invalid_topology";
    case FailureCause::kInternalError:
      return "internal_error";
    case FailureCause::kCauseCount:
      break;
  }
  return "?";
}

namespace {

// Builds a rung-1 observation from a possibly-short request history:
// entries are taken newest-last, missing or size-mismatched matrices
// become zero matrices, and the result is handed to the same
// build_observation the policy trained on.
rl::Observation serving_observation(const core::Scenario& scenario,
                                    const traffic::DemandSequence& history,
                                    int memory,
                                    core::NodeFeatureMode node_features) {
  const int n = scenario.graph.num_nodes();
  traffic::DemandSequence window;
  window.reserve(static_cast<std::size_t>(memory));
  const int have =
      std::min<int>(static_cast<int>(history.size()), memory);
  for (int i = 0; i < memory - have; ++i) {
    window.emplace_back(n);
  }
  for (int i = have; i > 0; --i) {
    const auto& dm = history[history.size() - static_cast<std::size_t>(i)];
    if (dm.num_nodes() == n) {
      window.push_back(dm);
    } else {
      window.emplace_back(n);
    }
  }
  return core::RoutingEnv::build_observation(scenario, window, memory,
                                             memory, node_features);
}

// The kRequestGarbage fault: what a broken upstream collector would send.
void poison_demand(traffic::DemandMatrix& dm) {
  const int n = dm.num_nodes();
  if (n < 2) return;
  std::vector<double> data = dm.raw();
  data[1] = std::numeric_limits<double>::quiet_NaN();
  data[static_cast<std::size_t>(n)] = -42.0;
  data[0] = 7.0;  // diagonal self-demand
  if (n >= 3) data[2] = 1e300;
  dm = traffic::DemandMatrix::from_raw_unchecked(n, std::move(data));
}

}  // namespace

RobustRouter::RobustRouter(rl::Policy* policy, RouterConfig config)
    : policy_(policy),
      config_(config),
      breaker_(config.breaker),
      cache_(config.topology_cache_capacity, config.softmin,
             config.node_feature_scale, config.flat_feature_scale) {
  // Fail fast on an unusable stage split instead of on the first request.
  DeadlineBudget probe(Clock::now(), config_.deadline,
                       config_.policy_fraction, config_.translate_fraction);
  (void)probe;
}

RouteDecision RobustRouter::decide(const RouteRequest& request) {
  const Clock::time_point start = Clock::now();
  ++stats_.requests;
  obs::count("serve/requests");
  const CircuitBreaker::Stats breaker_before = breaker_.stats();

  RouteDecision decision;
  try {
    decision = decide_impl(request, start);
  } catch (const std::exception&) {
    // decide_impl absorbs every anticipated failure; anything escaping it
    // is itself a fault the serving contract must survive.  Dropping the
    // request's traffic is the only decision that needs no working state.
    decision = drop_all_decision(request);
    note_failure(decision, Rung::kDropTraffic, FailureCause::kInternalError);
  }

  decision.latency_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  ++stats_.rung_decisions[static_cast<int>(decision.rung)];
  if (!decision.sanitize.clean()) ++stats_.sanitized_requests;
  stats_.unroutable_entries += decision.sanitize.unroutable_entries;
  if (decision.deadline_exhausted) ++stats_.deadline_exhausted;
  export_metrics(decision, breaker_before);
  return decision;
}

RouteDecision RobustRouter::decide_impl(const RouteRequest& request,
                                        Clock::time_point start) {
  const DeadlineBudget budget(start, config_.deadline,
                              config_.policy_fraction,
                              config_.translate_fraction);
  if (request.graph == nullptr) {
    RouteDecision decision = drop_all_decision(request);
    note_failure(decision, Rung::kDropTraffic,
                 FailureCause::kInvalidTopology);
    return decision;
  }
  const graph::DiGraph& g = *request.graph;

  RouteDecision decision;

  // Ingress: validate the topology (cached) and repair the demand matrix.
  TopologyEntry* entry = nullptr;
  try {
    entry = &cache_.acquire(g);
  } catch (const std::exception&) {
    RouteDecision dropped = drop_all_decision(request);
    note_failure(dropped, Rung::kDropTraffic,
                 FailureCause::kInvalidTopology);
    return dropped;
  }

  traffic::DemandMatrix inbound = request.demand;
  if (util::inject(util::FaultSite::kRequestGarbage)) {
    obs::count("serve/fault/request_garbage");
    poison_demand(inbound);
  }
  const traffic::DemandMatrix demand = sanitize_demands(
      inbound, g.num_nodes(), config_.sanitize, entry->reachable,
      decision.sanitize);
  decision.routed_demand = demand.total();

  // A topology change mid-request invalidates the learned state for this
  // graph: the policy's in-flight observation and the cached last-known-
  // good routing both describe a graph that no longer exists.
  const bool topo_changed = util::inject(util::FaultSite::kTopoChange);
  if (topo_changed) {
    obs::count("serve/fault/topo_change");
    entry->has_last_good = false;
  }

  // Rung 1: live policy inference, gated by the circuit breaker.
  if (policy_ == nullptr) {
    note_failure(decision, Rung::kGnnPolicy, FailureCause::kNoPolicy);
  } else if (topo_changed) {
    note_failure(decision, Rung::kGnnPolicy, FailureCause::kTopologyChanged);
  } else if (!breaker_.allow(Clock::now())) {
    note_failure(decision, Rung::kGnnPolicy, FailureCause::kBreakerOpen);
  } else {
    const FailureCause cause = try_policy_rung(
        g, *entry, demand, request.history, budget, decision);
    if (cause == FailureCause::kNone) {
      breaker_.record_success(Clock::now());
      ++entry->successes_since_refresh;
      if (!entry->has_last_good ||
          entry->successes_since_refresh >= config_.lkg_refresh_every) {
        entry->last_good = decision.routing;
        entry->has_last_good = true;
        entry->successes_since_refresh = 0;
      }
      return decision;
    }
    breaker_.record_failure(Clock::now());
    note_failure(decision, Rung::kGnnPolicy, cause);
  }

  // Past the whole-request deadline the ladder stops spending: rung 3's
  // broader multipath gains nothing over rung 2/4 when the answer is
  // already late, so only the already-materialised routings are tried.
  decision.deadline_exhausted = budget.expired(Clock::now());

  // Rung 2: last-known-good learned routing for this topology.
  if (entry->has_last_good) {
    if (try_cached_rung(Rung::kLastKnownGood, g, entry->last_good, demand,
                        decision)) {
      return decision;
    }
    // A last-known-good that no longer validates is stale — drop it so
    // later requests skip straight past it.
    entry->has_last_good = false;
  } else {
    note_failure(decision, Rung::kLastKnownGood, FailureCause::kNotCached);
  }

  if (!decision.deadline_exhausted) {
    decision.deadline_exhausted = budget.expired(Clock::now());
  }

  // Rung 3: inverse-capacity softmin multipath.
  if (decision.deadline_exhausted) {
    note_failure(decision, Rung::kInverseCapacity,
                 FailureCause::kDeadlineExpired);
  } else if (try_cached_rung(Rung::kInverseCapacity, g,
                             entry->inverse_capacity, demand, decision)) {
    return decision;
  }

  // Rung 4: hop-count shortest paths.  Always attempted — even past the
  // deadline a late valid routing beats none.
  if (try_cached_rung(Rung::kShortestPath, g, entry->shortest_path, demand,
                      decision)) {
    return decision;
  }

  // Every rung failed on a sanitised demand over a validated topology —
  // in principle unreachable, but the serving contract still holds: route
  // nothing rather than route invalidly.
  RouteDecision dropped = drop_all_decision(request);
  dropped.sanitize = decision.sanitize;
  dropped.attempts = std::move(decision.attempts);
  dropped.deadline_exhausted = decision.deadline_exhausted;
  return dropped;
}

FailureCause RobustRouter::try_policy_rung(
    const graph::DiGraph& g, TopologyEntry& entry,
    const traffic::DemandMatrix& demand,
    const traffic::DemandSequence& history, const DeadlineBudget& budget,
    RouteDecision& decision) {
  rl::PolicyForward forward;
  try {
    const rl::Observation obs = serving_observation(
        entry.obs_scenario, history, config_.memory, config_.node_features);
    forward = rl::forward_policy(*policy_, obs);
  } catch (const std::exception&) {
    return FailureCause::kPolicyError;
  }
  if (util::inject(util::FaultSite::kPolicyNan)) {
    obs::count("serve/fault/policy_nan");
    if (!forward.mean.empty()) {
      forward.mean[0] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  for (const double m : forward.mean) {
    if (!std::isfinite(m)) return FailureCause::kNonFiniteOutput;
  }
  if (util::inject(util::FaultSite::kPolicySlow)) {
    // Deterministic stand-in for a policy forward that blew its stage
    // budget — no real sleep, so chaos runs stay fast and reproducible.
    obs::count("serve/fault/policy_slow");
    return FailureCause::kDeadlineExpired;
  }
  if (budget.policy_overrun(Clock::now())) {
    return FailureCause::kDeadlineExpired;
  }

  routing::Routing candidate;
  try {
    const std::vector<double> weights = routing::weights_from_actions(
        forward.mean, config_.min_weight, config_.max_weight);
    candidate = routing::softmin_routing(g, weights, config_.softmin);
  } catch (const std::exception&) {
    return FailureCause::kTranslationFailed;
  }
  if (budget.translate_overrun(Clock::now())) {
    return FailureCause::kDeadlineExpired;
  }

  std::string error;
  if (!routing::validate_for_serving(g, candidate, demand, &error)) {
    return FailureCause::kInvalidRouting;
  }
  try {
    decision.sim = routing::simulate(g, candidate, demand);
  } catch (const std::exception&) {
    return FailureCause::kSimulationFailed;
  }
  if (budget.expired(Clock::now())) {
    return FailureCause::kDeadlineExpired;
  }
  decision.rung = Rung::kGnnPolicy;
  decision.routing = std::move(candidate);
  return FailureCause::kNone;
}

bool RobustRouter::try_cached_rung(Rung rung, const graph::DiGraph& g,
                                   const routing::Routing& routing,
                                   const traffic::DemandMatrix& demand,
                                   RouteDecision& decision) {
  std::string error;
  if (!routing::validate_for_serving(g, routing, demand, &error)) {
    note_failure(decision, rung, FailureCause::kInvalidRouting);
    return false;
  }
  try {
    decision.sim = routing::simulate(g, routing, demand);
  } catch (const std::exception&) {
    note_failure(decision, rung, FailureCause::kSimulationFailed);
    return false;
  }
  decision.rung = rung;
  decision.routing = routing;
  return true;
}

RouteDecision RobustRouter::drop_all_decision(
    const RouteRequest& request) const {
  RouteDecision decision;
  decision.rung = Rung::kDropTraffic;
  const int n = request.graph != nullptr ? request.graph->num_nodes() : 0;
  const int ne = request.graph != nullptr ? request.graph->num_edges() : 0;
  decision.routing = routing::Routing(n, ne);
  decision.sim.link_load.assign(static_cast<std::size_t>(ne), 0.0);
  decision.sim.link_utilisation.assign(static_cast<std::size_t>(ne), 0.0);
  decision.routed_demand = 0.0;
  return decision;
}

void RobustRouter::note_failure(RouteDecision& decision, Rung rung,
                                FailureCause cause) {
  decision.attempts.push_back(RungAttempt{rung, cause});
  ++stats_.failure_causes[static_cast<int>(cause)];
}

void RobustRouter::export_metrics(
    const RouteDecision& decision,
    const CircuitBreaker::Stats& breaker_before) {
  if (!obs::enabled()) return;
  obs::Registry& registry = obs::Registry::instance();
  registry.add_counter(std::string("serve/rung/") + rung_name(decision.rung));
  for (const RungAttempt& attempt : decision.attempts) {
    registry.add_counter(std::string("serve/fail/") +
                         cause_name(attempt.cause));
  }
  const SanitizeReport& rep = decision.sanitize;
  if (!rep.clean()) registry.add_counter("serve/sanitize/requests");
  if (rep.non_finite_entries > 0) {
    registry.add_counter("serve/sanitize/non_finite",
                         static_cast<std::uint64_t>(rep.non_finite_entries));
  }
  if (rep.negative_entries > 0) {
    registry.add_counter("serve/sanitize/negative",
                         static_cast<std::uint64_t>(rep.negative_entries));
  }
  if (rep.clamped_entries > 0) {
    registry.add_counter("serve/sanitize/clamped",
                         static_cast<std::uint64_t>(rep.clamped_entries));
  }
  if (rep.unroutable_entries > 0) {
    registry.add_counter("serve/sanitize/unroutable",
                         static_cast<std::uint64_t>(rep.unroutable_entries));
  }
  if (decision.deadline_exhausted) {
    registry.add_counter("serve/deadline_exhausted");
  }
  const CircuitBreaker::Stats& after = breaker_.stats();
  if (after.trips > breaker_before.trips) {
    registry.add_counter("serve/breaker/trip",
                         static_cast<std::uint64_t>(after.trips -
                                                    breaker_before.trips));
  }
  if (after.probes > breaker_before.probes) {
    registry.add_counter("serve/breaker/probe",
                         static_cast<std::uint64_t>(after.probes -
                                                    breaker_before.probes));
  }
  if (after.reopens > breaker_before.reopens) {
    registry.add_counter("serve/breaker/reopen",
                         static_cast<std::uint64_t>(after.reopens -
                                                    breaker_before.reopens));
  }
  if (after.recoveries > breaker_before.recoveries) {
    registry.add_counter(
        "serve/breaker/recovery",
        static_cast<std::uint64_t>(after.recoveries -
                                   breaker_before.recoveries));
  }
  registry.record_span("serve/decide", decision.latency_s);
  registry.observe("serve/latency_us", decision.latency_s * 1e6);
}

}  // namespace gddr::serve
