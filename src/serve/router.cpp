#include "serve/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mcf/cache.hpp"
#include "obs/metrics.hpp"
#include "rl/forward.hpp"
#include "rl/health.hpp"
#include "util/fault.hpp"

namespace gddr::serve {

using Clock = std::chrono::steady_clock;

const char* rung_name(Rung rung) {
  switch (rung) {
    case Rung::kGnnPolicy:
      return "gnn_policy";
    case Rung::kLastKnownGood:
      return "last_known_good";
    case Rung::kInverseCapacity:
      return "inverse_capacity";
    case Rung::kShortestPath:
      return "shortest_path";
    case Rung::kDropTraffic:
      return "drop_traffic";
    case Rung::kRungCount:
      break;
  }
  return "?";
}

const char* cause_name(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return "none";
    case FailureCause::kNoPolicy:
      return "no_policy";
    case FailureCause::kBreakerOpen:
      return "breaker_open";
    case FailureCause::kPolicyError:
      return "policy_error";
    case FailureCause::kNonFiniteOutput:
      return "non_finite_output";
    case FailureCause::kDeadlineExpired:
      return "deadline_expired";
    case FailureCause::kTranslationFailed:
      return "translation_failed";
    case FailureCause::kInvalidRouting:
      return "invalid_routing";
    case FailureCause::kSimulationFailed:
      return "simulation_failed";
    case FailureCause::kTopologyChanged:
      return "topology_changed";
    case FailureCause::kNotCached:
      return "not_cached";
    case FailureCause::kInvalidTopology:
      return "invalid_topology";
    case FailureCause::kInternalError:
      return "internal_error";
    case FailureCause::kCauseCount:
      break;
  }
  return "?";
}

namespace {

// Builds a rung-1 observation from a possibly-short request history:
// entries are taken newest-last, missing or size-mismatched matrices
// become zero matrices, and the result is handed to the same
// build_observation the policy trained on.
rl::Observation serving_observation(const core::Scenario& scenario,
                                    const traffic::DemandSequence& history,
                                    int memory,
                                    core::NodeFeatureMode node_features) {
  const int n = scenario.graph.num_nodes();
  traffic::DemandSequence window;
  window.reserve(static_cast<std::size_t>(memory));
  const int have =
      std::min<int>(static_cast<int>(history.size()), memory);
  for (int i = 0; i < memory - have; ++i) {
    window.emplace_back(n);
  }
  for (int i = have; i > 0; --i) {
    const auto& dm = history[history.size() - static_cast<std::size_t>(i)];
    if (dm.num_nodes() == n) {
      window.push_back(dm);
    } else {
      window.emplace_back(n);
    }
  }
  return core::RoutingEnv::build_observation(scenario, window, memory,
                                             memory, node_features);
}

// The kRequestGarbage fault: what a broken upstream collector would send.
void poison_demand(traffic::DemandMatrix& dm) {
  const int n = dm.num_nodes();
  if (n < 2) return;
  std::vector<double> data = dm.raw();
  data[1] = std::numeric_limits<double>::quiet_NaN();
  data[static_cast<std::size_t>(n)] = -42.0;
  data[0] = 7.0;  // diagonal self-demand
  if (n >= 3) data[2] = 1e300;
  dm = traffic::DemandMatrix::from_raw_unchecked(n, std::move(data));
}

}  // namespace

RobustRouter::RobustRouter(rl::Policy* policy, RouterConfig config)
    : RobustRouter(policy, config,
                   std::make_shared<TopologyCache>(
                       config.topology_cache_capacity, config.softmin,
                       config.node_feature_scale, config.flat_feature_scale),
                   std::make_shared<CircuitBreaker>(config.breaker)) {}

RobustRouter::RobustRouter(rl::Policy* policy, RouterConfig config,
                           std::shared_ptr<TopologyCache> cache,
                           std::shared_ptr<CircuitBreaker> breaker)
    : policy_(policy),
      config_(config),
      breaker_(std::move(breaker)),
      cache_(std::move(cache)) {
  if (cache_ == nullptr || breaker_ == nullptr) {
    throw std::invalid_argument("RobustRouter: null shared cache/breaker");
  }
  // Fail fast on an unusable stage split instead of on the first request.
  DeadlineBudget probe(Clock::now(), config_.deadline,
                       config_.policy_fraction, config_.translate_fraction);
  (void)probe;
}

RouteDecision RobustRouter::decide(const RouteRequest& request) {
  return decide_with_mean(request, nullptr);
}

void RobustRouter::set_policy(rl::Policy* policy, std::uint64_t version,
                              bool candidate) {
  policy_ = policy;
  policy_version_ = version;
  candidate_ = candidate;
}

std::vector<RouteDecision> RobustRouter::decide_batch(
    const std::vector<const RouteRequest*>& requests) {
  std::vector<RouteDecision> decisions;
  decisions.reserve(requests.size());

  // The stacked forward pays off only when rung 1 would actually run for
  // several same-topology requests; otherwise every request takes the
  // plain path.
  bool batchable = policy_ != nullptr && requests.size() > 1 &&
                   breaker_->state() == BreakerState::kClosed &&
                   requests.front() != nullptr &&
                   requests.front()->graph != nullptr;
  const graph::DiGraph* g = batchable ? requests.front()->graph : nullptr;
  if (batchable) {
    const std::uint64_t fp = mcf::graph_fingerprint(*g);
    for (const RouteRequest* r : requests) {
      if (r == nullptr || r->graph == nullptr ||
          (r->graph != g && mcf::graph_fingerprint(*r->graph) != fp)) {
        batchable = false;
        break;
      }
    }
  }

  std::vector<std::vector<double>> means;
  if (batchable) {
    try {
      const TopologyCache::EntryPtr entry = cache_->acquire(*g);
      std::vector<rl::Observation> obs;
      obs.reserve(requests.size());
      for (const RouteRequest* r : requests) {
        obs.push_back(serving_observation(entry->obs_scenario, r->history,
                                          config_.memory,
                                          config_.node_features));
      }
      std::vector<const rl::Observation*> obs_ptrs;
      obs_ptrs.reserve(obs.size());
      for (const rl::Observation& o : obs) obs_ptrs.push_back(&o);
      means = rl::forward_action_means(*policy_, obs_ptrs);
      obs::count("serve/batch/forwards");
    } catch (const std::exception&) {
      // A failed precompute is not a failed request: every request just
      // takes the per-request path (which reports its own rung-1 cause).
      means.clear();
    }
  }

  const bool have_means = means.size() == requests.size();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i] == nullptr) {
      RouteRequest empty;
      decisions.push_back(decide_with_mean(empty, nullptr));
      continue;
    }
    decisions.push_back(decide_with_mean(
        *requests[i], have_means ? &means[i] : nullptr));
  }
  return decisions;
}

RouteDecision RobustRouter::decide_with_mean(
    const RouteRequest& request, const std::vector<double>* mean) {
  const Clock::time_point start = Clock::now();
  ++stats_.requests;
  obs::count("serve/requests");

  RouteDecision decision;
  try {
    decision = decide_impl(request, start, mean);
  } catch (const std::exception&) {
    // decide_impl absorbs every anticipated failure; anything escaping it
    // is itself a fault the serving contract must survive.  Dropping the
    // request's traffic is the only decision that needs no working state.
    decision = drop_all_decision(request);
    note_failure(decision, Rung::kDropTraffic, FailureCause::kInternalError);
  }

  decision.latency_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  decision.policy_version = policy_version_;
  decision.served_by_candidate = candidate_;
  ++stats_.rung_decisions[static_cast<int>(decision.rung)];
  if (!decision.sanitize.clean()) ++stats_.sanitized_requests;
  stats_.unroutable_entries += decision.sanitize.unroutable_entries;
  if (decision.deadline_exhausted) ++stats_.deadline_exhausted;
  export_metrics(decision);
  return decision;
}

RouteDecision RobustRouter::decide_impl(const RouteRequest& request,
                                        Clock::time_point start,
                                        const std::vector<double>* mean) {
  const DeadlineBudget budget(start, config_.deadline,
                              config_.policy_fraction,
                              config_.translate_fraction);
  if (request.graph == nullptr) {
    RouteDecision decision = drop_all_decision(request);
    note_failure(decision, Rung::kDropTraffic,
                 FailureCause::kInvalidTopology);
    return decision;
  }
  const graph::DiGraph& g = *request.graph;

  RouteDecision decision;

  // Ingress: validate the topology (cached) and repair the demand matrix.
  // The shared_ptr pins the entry for this whole decision — concurrent
  // workers may evict it from the cache, but never from under us.
  TopologyCache::EntryPtr entry;
  try {
    entry = cache_->acquire(g);
  } catch (const std::exception&) {
    RouteDecision dropped = drop_all_decision(request);
    note_failure(dropped, Rung::kDropTraffic,
                 FailureCause::kInvalidTopology);
    return dropped;
  }

  traffic::DemandMatrix inbound = request.demand;
  if (util::inject(util::FaultSite::kRequestGarbage)) {
    obs::count("serve/fault/request_garbage");
    poison_demand(inbound);
  }
  const traffic::DemandMatrix demand = sanitize_demands(
      inbound, g.num_nodes(), config_.sanitize, entry->reachable,
      decision.sanitize);
  decision.routed_demand = demand.total();

  // A topology change mid-request invalidates the learned state for this
  // graph: the policy's in-flight observation and the cached last-known-
  // good routing both describe a graph that no longer exists.
  const bool topo_changed = util::inject(util::FaultSite::kTopoChange);
  if (topo_changed) {
    obs::count("serve/fault/topo_change");
    entry->last_good.invalidate();
  }

  // Rung 1: live policy inference, gated by the circuit breaker.  The
  // RAII probe token reports failure even if the rung dies without a
  // verdict, so a crashed probe cannot wedge the breaker half-open.
  if (policy_ == nullptr) {
    note_failure(decision, Rung::kGnnPolicy, FailureCause::kNoPolicy);
  } else if (topo_changed) {
    note_failure(decision, Rung::kGnnPolicy, FailureCause::kTopologyChanged);
  } else {
    CircuitBreaker::Probe probe = breaker_->admit(Clock::now());
    if (!probe) {
      note_failure(decision, Rung::kGnnPolicy, FailureCause::kBreakerOpen);
    } else {
      const FailureCause cause = try_policy_rung(
          g, *entry, demand, request.history, budget, mean, decision);
      if (cause == FailureCause::kNone) {
        probe.succeed(Clock::now());
        entry->last_good.offer(decision.routing, config_.lkg_refresh_every);
        return decision;
      }
      probe.fail(Clock::now());
      note_failure(decision, Rung::kGnnPolicy, cause);
    }
  }

  // Past the whole-request deadline the ladder stops spending: rung 3's
  // broader multipath gains nothing over rung 2/4 when the answer is
  // already late, so only the already-materialised routings are tried.
  decision.deadline_exhausted = budget.expired(Clock::now());

  // Rung 2: last-known-good learned routing for this topology.
  routing::Routing last_good;
  if (entry->last_good.load(last_good)) {
    if (try_cached_rung(Rung::kLastKnownGood, g, last_good, demand,
                        decision)) {
      return decision;
    }
    // A last-known-good that no longer validates is stale — drop it so
    // later requests skip straight past it.
    entry->last_good.invalidate();
  } else {
    note_failure(decision, Rung::kLastKnownGood, FailureCause::kNotCached);
  }

  if (!decision.deadline_exhausted) {
    decision.deadline_exhausted = budget.expired(Clock::now());
  }

  // Rung 3: inverse-capacity softmin multipath.
  if (decision.deadline_exhausted) {
    note_failure(decision, Rung::kInverseCapacity,
                 FailureCause::kDeadlineExpired);
  } else if (try_cached_rung(Rung::kInverseCapacity, g,
                             entry->inverse_capacity, demand, decision)) {
    return decision;
  }

  // Rung 4: hop-count shortest paths.  Always attempted — even past the
  // deadline a late valid routing beats none.
  if (try_cached_rung(Rung::kShortestPath, g, entry->shortest_path, demand,
                      decision)) {
    return decision;
  }

  // Every rung failed on a sanitised demand over a validated topology —
  // in principle unreachable, but the serving contract still holds: route
  // nothing rather than route invalidly.
  RouteDecision dropped = drop_all_decision(request);
  dropped.sanitize = decision.sanitize;
  dropped.attempts = std::move(decision.attempts);
  dropped.deadline_exhausted = decision.deadline_exhausted;
  return dropped;
}

FailureCause RobustRouter::try_policy_rung(
    const graph::DiGraph& g, const TopologyEntry& entry,
    const traffic::DemandMatrix& demand,
    const traffic::DemandSequence& history, const DeadlineBudget& budget,
    const std::vector<double>* precomputed_mean, RouteDecision& decision) {
  std::vector<double> mean;
  if (precomputed_mean != nullptr) {
    // Computed by decide_batch's stacked forward — bit-identical to the
    // per-request forward below, so both paths route identically.
    mean = *precomputed_mean;
  } else {
    try {
      const rl::Observation obs =
          serving_observation(entry.obs_scenario, history, config_.memory,
                              config_.node_features);
      mean = rl::forward_policy(*policy_, obs).mean;
    } catch (const std::exception&) {
      return FailureCause::kPolicyError;
    }
  }
  // A staged candidate has its own NaN site so chaos runs can poison
  // *only* the candidate (proving rollback) while the incumbent stays
  // healthy — and vice versa.
  const util::FaultSite nan_site = candidate_
                                       ? util::FaultSite::kCandidateNan
                                       : util::FaultSite::kPolicyNan;
  if (util::inject(nan_site)) {
    obs::count(std::string("serve/fault/") + util::to_string(nan_site));
    if (!mean.empty()) {
      mean[0] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  if (!rl::all_finite(mean)) return FailureCause::kNonFiniteOutput;
  if (util::inject(util::FaultSite::kPolicySlow)) {
    // Deterministic stand-in for a policy forward that blew its stage
    // budget — no real sleep, so chaos runs stay fast and reproducible.
    obs::count("serve/fault/policy_slow");
    return FailureCause::kDeadlineExpired;
  }
  if (budget.policy_overrun(Clock::now())) {
    return FailureCause::kDeadlineExpired;
  }

  routing::Routing candidate;
  try {
    const std::vector<double> weights = routing::weights_from_actions(
        mean, config_.min_weight, config_.max_weight);
    candidate = routing::softmin_routing(g, weights, config_.softmin);
  } catch (const std::exception&) {
    return FailureCause::kTranslationFailed;
  }
  if (budget.translate_overrun(Clock::now())) {
    return FailureCause::kDeadlineExpired;
  }

  std::string error;
  if (!routing::validate_for_serving(g, candidate, demand, &error)) {
    return FailureCause::kInvalidRouting;
  }
  try {
    decision.sim = routing::simulate(g, candidate, demand);
  } catch (const std::exception&) {
    return FailureCause::kSimulationFailed;
  }
  if (budget.expired(Clock::now())) {
    return FailureCause::kDeadlineExpired;
  }
  decision.rung = Rung::kGnnPolicy;
  decision.routing = std::move(candidate);
  return FailureCause::kNone;
}

bool RobustRouter::try_cached_rung(Rung rung, const graph::DiGraph& g,
                                   const routing::Routing& routing,
                                   const traffic::DemandMatrix& demand,
                                   RouteDecision& decision) {
  std::string error;
  if (!routing::validate_for_serving(g, routing, demand, &error)) {
    note_failure(decision, rung, FailureCause::kInvalidRouting);
    return false;
  }
  try {
    decision.sim = routing::simulate(g, routing, demand);
  } catch (const std::exception&) {
    note_failure(decision, rung, FailureCause::kSimulationFailed);
    return false;
  }
  decision.rung = rung;
  decision.routing = routing;
  return true;
}

RouteDecision RobustRouter::drop_all_decision(
    const RouteRequest& request) const {
  RouteDecision decision;
  decision.rung = Rung::kDropTraffic;
  const int n = request.graph != nullptr ? request.graph->num_nodes() : 0;
  const int ne = request.graph != nullptr ? request.graph->num_edges() : 0;
  decision.routing = routing::Routing(n, ne);
  decision.sim.link_load.assign(static_cast<std::size_t>(ne), 0.0);
  decision.sim.link_utilisation.assign(static_cast<std::size_t>(ne), 0.0);
  decision.routed_demand = 0.0;
  return decision;
}

void RobustRouter::note_failure(RouteDecision& decision, Rung rung,
                                FailureCause cause) {
  decision.attempts.push_back(RungAttempt{rung, cause});
  ++stats_.failure_causes[static_cast<int>(cause)];
}

void RobustRouter::export_metrics(const RouteDecision& decision) {
  if (!obs::enabled()) return;
  obs::Registry& registry = obs::Registry::instance();
  registry.add_counter(std::string("serve/rung/") + rung_name(decision.rung));
  for (const RungAttempt& attempt : decision.attempts) {
    registry.add_counter(std::string("serve/fail/") +
                         cause_name(attempt.cause));
  }
  const SanitizeReport& rep = decision.sanitize;
  if (!rep.clean()) registry.add_counter("serve/sanitize/requests");
  if (rep.non_finite_entries > 0) {
    registry.add_counter("serve/sanitize/non_finite",
                         static_cast<std::uint64_t>(rep.non_finite_entries));
  }
  if (rep.negative_entries > 0) {
    registry.add_counter("serve/sanitize/negative",
                         static_cast<std::uint64_t>(rep.negative_entries));
  }
  if (rep.clamped_entries > 0) {
    registry.add_counter("serve/sanitize/clamped",
                         static_cast<std::uint64_t>(rep.clamped_entries));
  }
  if (rep.unroutable_entries > 0) {
    registry.add_counter("serve/sanitize/unroutable",
                         static_cast<std::uint64_t>(rep.unroutable_entries));
  }
  if (decision.deadline_exhausted) {
    registry.add_counter("serve/deadline_exhausted");
  }
  // Breaker transition counters are exported by the breaker itself (it
  // is shared across workers; see CircuitBreaker).
  registry.record_span("serve/decide", decision.latency_s);
  registry.observe("serve/latency_us", decision.latency_s * 1e6);
}

}  // namespace gddr::serve
