// Inbound-request sanitisation for the serving pipeline.
//
// A serving system takes demand matrices from the outside world, which
// means NaNs from broken collectors, negative rates from integer
// underflow upstream, self-demand, absurd magnitudes, and pairs the
// current topology simply cannot route (partitions after link failures).
// None of those may reach the routing pipeline: the simulator's strict
// conservation contract treats them as internal bugs and throws.
//
// sanitize_demands repairs an untrusted matrix into one every rung of the
// degradation ladder can route, and reports exactly what it changed so
// the decision record (and the serve/sanitize/* metrics) show the request
// was degraded at the door rather than silently rewritten.
#pragma once

#include <vector>

#include "traffic/demand.hpp"

namespace gddr::serve {

struct SanitizeLimits {
  // Entries above this are clamped to it (0 disables the clamp).  The
  // default is deliberately huge — it exists to stop 1e308-style garbage
  // from overflowing link loads, not to police real traffic.
  double max_demand = 1e12;
};

struct SanitizeReport {
  // The inbound matrix's size did not match the topology; the whole
  // matrix was replaced by zeros (nothing else is meaningful).
  bool size_mismatch = false;
  long non_finite_entries = 0;  // NaN / +-inf, zeroed
  long negative_entries = 0;    // < 0, zeroed
  long diagonal_entries = 0;    // self-demand, zeroed
  long clamped_entries = 0;     // routable but > max_demand, clamped
  long unroutable_entries = 0;  // t unreachable from s, zeroed
  // Each entry is counted exactly once: garbage (non-finite / negative /
  // diagonal) first, then unroutable, then clamped — an unroutable entry
  // above the clamp is unroutable, not clamped.
  //
  // Volumes reconcile exactly:
  //   sanitized.total() == offered_demand - unroutable_demand
  //                                       - clamped_demand
  double offered_demand = 0.0;     // finite non-negative off-diagonal volume
  double unroutable_demand = 0.0;  // offered volume dropped as unroutable
  double clamped_demand = 0.0;     // offered volume shaved off by the clamp

  bool clean() const {
    return !size_mismatch && non_finite_entries == 0 &&
           negative_entries == 0 && diagonal_entries == 0 &&
           clamped_entries == 0 && unroutable_entries == 0;
  }
};

// Returns a matrix of `num_nodes` nodes that is finite, non-negative,
// zero on the diagonal, clamped to limits.max_demand and zero on every
// source-destination pair the topology cannot connect.  `reachable` is
// the row-major num_nodes^2 pair-reachability table from the topology
// cache (reachable[s * n + t] == t is reachable from s).  Every repair is
// counted in `report`.
traffic::DemandMatrix sanitize_demands(const traffic::DemandMatrix& in,
                                       int num_nodes,
                                       const SanitizeLimits& limits,
                                       const std::vector<bool>& reachable,
                                       SanitizeReport& report);

}  // namespace gddr::serve
