#include "serve/breaker.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gddr::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::Probe::succeed(Clock::time_point now) {
  if (breaker_ == nullptr) return;
  breaker_->report(generation_, true, now);
  breaker_ = nullptr;
}

void CircuitBreaker::Probe::fail(Clock::time_point now) {
  if (breaker_ == nullptr) return;
  breaker_->report(generation_, false, now);
  breaker_ = nullptr;
}

void CircuitBreaker::Probe::resolve_as_abandoned() {
  if (breaker_ == nullptr) return;
  // The request died between admission and verdict.  The admission
  // timestamp is the only time this token holds (destructors take no
  // clock argument, and reading the real clock here would break
  // sleep-free test schedules), and a failure's exact timestamp only
  // seeds the backoff window — conservative is fine.
  breaker_->report(generation_, false, admitted_);
  breaker_ = nullptr;
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config), backoff_(config.initial_backoff) {
  if (config.failure_threshold <= 0) {
    throw std::invalid_argument("CircuitBreaker: non-positive threshold");
  }
  if (config.initial_backoff.count() <= 0 ||
      config.max_backoff < config.initial_backoff ||
      config.backoff_multiplier < 1.0) {
    throw std::invalid_argument("CircuitBreaker: bad backoff configuration");
  }
  if (config.probe_timeout.count() <= 0) {
    throw std::invalid_argument("CircuitBreaker: non-positive probe timeout");
  }
}

CircuitBreaker::Probe CircuitBreaker::admit(Clock::time_point now) {
  const util::MutexLock lock(mu_);
  if (state() == BreakerState::kHalfOpen) {
    expire_dead_probe_locked(now);
  }
  switch (state()) {
    case BreakerState::kClosed:
      return Probe(this, generation_, now);
    case BreakerState::kOpen:
      if (now < open_until_) return Probe{};
      ++generation_;
      state_.store(static_cast<int>(BreakerState::kHalfOpen),
                   std::memory_order_release);
      ++stats_.probes;
      // Transition counters are exported here, at the single point of
      // truth, because the breaker is shared across serving workers —
      // per-worker before/after stat diffing would double-count.
      obs::count("serve/breaker/probe");
      probe_deadline_ = now + config_.probe_timeout;
      return Probe(this, generation_, now);
    case BreakerState::kHalfOpen:
      // A live probe is still in flight between admit() and its verdict.
      return Probe{};
  }
  return Probe{};
}

void CircuitBreaker::report(std::uint64_t generation, bool success,
                            Clock::time_point now) {
  const util::MutexLock lock(mu_);
  if (generation != generation_) {
    // A verdict from before the last transition: a pre-trip request
    // finishing late, or a timed-out probe finally reporting.  Acting on
    // it would let a dead era flip the breaker, so it is dropped.
    return;
  }
  if (success) {
    if (state() == BreakerState::kHalfOpen) {
      ++stats_.recoveries;
      obs::count("serve/breaker/recovery");
      ++generation_;
    }
    state_.store(static_cast<int>(BreakerState::kClosed),
                 std::memory_order_release);
    stats_.consecutive_failures = 0;
    backoff_ = config_.initial_backoff;
    return;
  }
  if (state() == BreakerState::kHalfOpen) {
    ++stats_.reopens;
    obs::count("serve/breaker/reopen");
    // The probe failed: back off harder before the next one.
    const auto grown = std::chrono::microseconds(static_cast<long long>(
        static_cast<double>(backoff_.count()) * config_.backoff_multiplier));
    backoff_ = std::min(grown, config_.max_backoff);
    open_locked(now);
    return;
  }
  ++stats_.consecutive_failures;
  if (state() == BreakerState::kClosed &&
      stats_.consecutive_failures >= config_.failure_threshold) {
    ++stats_.trips;
    obs::count("serve/breaker/trip");
    open_locked(now);
  }
}

void CircuitBreaker::open_locked(Clock::time_point now) {
  ++generation_;
  state_.store(static_cast<int>(BreakerState::kOpen),
               std::memory_order_release);
  open_until_ = now + backoff_;
}

void CircuitBreaker::expire_dead_probe_locked(Clock::time_point now) {
  if (now < probe_deadline_) return;
  // The admitted probe never reported: presume it dead so the breaker
  // cannot wedge half-open.  Its late verdict (if any) is now stale.
  ++stats_.probe_timeouts;
  ++stats_.reopens;
  obs::count("serve/breaker/probe_timeout");
  obs::count("serve/breaker/reopen");
  const auto grown = std::chrono::microseconds(static_cast<long long>(
      static_cast<double>(backoff_.count()) * config_.backoff_multiplier));
  backoff_ = std::min(grown, config_.max_backoff);
  open_locked(now);
}

}  // namespace gddr::serve
