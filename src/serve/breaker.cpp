#include "serve/breaker.hpp"

#include <algorithm>
#include <stdexcept>

namespace gddr::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config), backoff_(config.initial_backoff) {
  if (config.failure_threshold <= 0) {
    throw std::invalid_argument("CircuitBreaker: non-positive threshold");
  }
  if (config.initial_backoff.count() <= 0 ||
      config.max_backoff < config.initial_backoff ||
      config.backoff_multiplier < 1.0) {
    throw std::invalid_argument("CircuitBreaker: bad backoff configuration");
  }
}

bool CircuitBreaker::allow(Clock::time_point now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < open_until_) return false;
      state_ = BreakerState::kHalfOpen;
      ++stats_.probes;
      return true;
    case BreakerState::kHalfOpen:
      return false;
  }
  return false;
}

void CircuitBreaker::record_success(Clock::time_point /*now*/) {
  if (state_ == BreakerState::kHalfOpen) ++stats_.recoveries;
  state_ = BreakerState::kClosed;
  stats_.consecutive_failures = 0;
  backoff_ = config_.initial_backoff;
}

void CircuitBreaker::record_failure(Clock::time_point now) {
  if (state_ == BreakerState::kHalfOpen) {
    ++stats_.reopens;
    // The probe failed: back off harder before the next one.
    const auto grown = std::chrono::microseconds(static_cast<long long>(
        static_cast<double>(backoff_.count()) * config_.backoff_multiplier));
    backoff_ = std::min(grown, config_.max_backoff);
    open(now);
    return;
  }
  ++stats_.consecutive_failures;
  if (state_ == BreakerState::kClosed &&
      stats_.consecutive_failures >= config_.failure_threshold) {
    ++stats_.trips;
    open(now);
  }
}

void CircuitBreaker::open(Clock::time_point now) {
  state_ = BreakerState::kOpen;
  open_until_ = now + backoff_;
}

}  // namespace gddr::serve
