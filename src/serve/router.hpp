// The resilient routing-decision pipeline (serving-side GDDR).
//
// Training optimises a policy; serving has to survive one.  RobustRouter
// wraps the inference path — observation, policy forward, softmin
// translation, simulation — in the machinery a production controller
// needs so that *every* request ends in a routing that satisfies the
// §IV-A validity contract, no matter what the policy, the clock or the
// inbound request does:
//
//  * Ingress validation: unseen topologies pass graph::check_topology
//    once (TopologyCache), inbound demand matrices are repaired by
//    sanitize_demands and the repairs reported per decision.
//  * Deadline budget: one steady-clock budget per request, split across
//    the pipeline stages (DeadlineBudget); an overrunning stage fails its
//    rung rather than starving the fallbacks.
//  * Graceful-degradation ladder, best rung first:
//      1. kGnnPolicy       — live policy inference (the learned routing);
//      2. kLastKnownGood   — the most recent rung-1 routing that served
//                            this topology successfully;
//      3. kInverseCapacity — demand-oblivious softmin multipath over
//                            1/capacity weights;
//      4. kShortestPath    — hop-count shortest paths;
//      5. kDropTraffic     — the empty routing with zero demand (only
//                            reachable when the topology itself is
//                            rejected at ingress).
//    A rung is skipped or failed on validator rejection, deadline
//    expiry, injected fault or thrown exception, and the cause is
//    recorded in the decision's attempt log.
//  * Circuit breaker: rung 1 is gated by CircuitBreaker, so a policy
//    that keeps failing stops being paid for; exponential-backoff probes
//    re-admit it when it recovers.
//  * Observability: every decision increments serve/* counters (rung
//    taken, failure causes, sanitiser repairs, breaker transitions) and
//    records its latency through obs::Registry, plus an always-on local
//    RouterStats aggregate for callers running without metrics.
//
// decide() never throws: the catch-all fallback converts even an
// unanticipated exception into a kDropTraffic decision.  Fault-injection
// sites (util::FaultSite::kPolicyNan / kPolicySlow / kTopoChange /
// kRequestGarbage) let tests and the chaos bench rehearse each failure
// path deterministically.
//
// Thread model: one RobustRouter per serving worker, with the expensive
// per-topology state shareable across workers — serve::Engine constructs
// its workers' routers over one thread-safe TopologyCache and one
// thread-safe CircuitBreaker (the shared-state constructor below), while
// RouterStats stay per-router.  A router constructed with the plain
// constructor owns private instances and behaves exactly as before.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/routing_env.hpp"
#include "rl/policy.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"
#include "serve/breaker.hpp"
#include "serve/deadline.hpp"
#include "serve/sanitize.hpp"
#include "serve/topo_cache.hpp"
#include "traffic/demand.hpp"

namespace gddr::serve {

enum class Rung : int {
  kGnnPolicy = 0,
  kLastKnownGood,
  kInverseCapacity,
  kShortestPath,
  kDropTraffic,
  kRungCount,
};

const char* rung_name(Rung rung);

enum class FailureCause : int {
  kNone = 0,
  kNoPolicy,          // router constructed without a policy
  kBreakerOpen,       // circuit breaker rejected rung 1
  kPolicyError,       // policy forward threw
  kNonFiniteOutput,   // NaN/inf in the policy's action mean
  kDeadlineExpired,   // stage or request budget overrun
  kTranslationFailed, // softmin translation threw
  kInvalidRouting,    // validate_for_serving rejected the routing
  kSimulationFailed,  // strict simulation threw (loop / conservation)
  kTopologyChanged,   // topology changed mid-request (injected)
  kNotCached,         // rung 2 has no last-known-good yet
  kInvalidTopology,   // graph::check_topology rejected the graph
  kInternalError,     // unanticipated exception escaped the ladder
  kCauseCount,
};

const char* cause_name(FailureCause cause);

struct RouteRequest {
  const graph::DiGraph* graph = nullptr;
  // Untrusted inbound demand matrix (sanitised before routing).
  traffic::DemandMatrix demand;
  // Recent previously-observed matrices, oldest first; may be shorter
  // than the policy's memory (zero-padded) and is only read by rung 1.
  traffic::DemandSequence history;
};

struct RungAttempt {
  Rung rung = Rung::kGnnPolicy;
  FailureCause cause = FailureCause::kNone;
};

struct RouteDecision {
  Rung rung = Rung::kDropTraffic;
  routing::Routing routing;
  routing::SimulationResult sim;
  SanitizeReport sanitize;
  // Rungs tried and failed before the decisive one, in ladder order.
  std::vector<RungAttempt> attempts;
  double latency_s = 0.0;
  // The request budget ran out before a better rung could be tried.
  bool deadline_exhausted = false;
  // Demand volume actually routed (after sanitising).
  double routed_demand = 0.0;
  // Version of the policy installed in this router when the decision was
  // made (0 = the construction-time, unversioned policy) and whether that
  // policy was a staged *candidate* (canary traffic).  Every decision is
  // attributable to exactly one (version, candidate) pair because the
  // engine installs the policy once per micro-batch, never mid-batch.
  std::uint64_t policy_version = 0;
  bool served_by_candidate = false;
};

struct RouterConfig {
  // Whole-request budget and its per-stage split (see DeadlineBudget).
  std::chrono::microseconds deadline{500'000};
  double policy_fraction = 0.45;
  double translate_fraction = 0.35;
  SanitizeLimits sanitize;
  CircuitBreakerConfig breaker;
  std::size_t topology_cache_capacity = 8;
  routing::SoftminOptions softmin;
  // Action-to-weight map; must match training (core::EnvConfig defaults).
  double min_weight = 0.5;
  double max_weight = 3.0;
  // Observation shape; must match training.
  int memory = 5;
  core::NodeFeatureMode node_features = core::NodeFeatureMode::kInOutSums;
  double node_feature_scale = 1.0;
  double flat_feature_scale = 1.0;
  // The last-known-good routing is refreshed every this many rung-1
  // successes (copying a Routing is not free; 1 refreshes every time).
  int lkg_refresh_every = 16;
};

struct RouterStats {
  long requests = 0;
  long rung_decisions[static_cast<int>(Rung::kRungCount)] = {};
  long failure_causes[static_cast<int>(FailureCause::kCauseCount)] = {};
  long sanitized_requests = 0;   // requests whose matrix needed repair
  long unroutable_entries = 0;   // demand pairs dropped as unroutable
  long deadline_exhausted = 0;
};

class RobustRouter {
 public:
  // `policy` may be null (rung 1 permanently unavailable — the router
  // serves purely from the static rungs); when non-null it must outlive
  // the router.  This constructor owns a private cache and breaker.
  RobustRouter(rl::Policy* policy, RouterConfig config);

  // Shared-state constructor for engine workers: every worker's router
  // reuses one topology cache (per-topology artifacts built once) and
  // one circuit breaker (a failing policy trips for the whole fleet).
  // Both must be non-null; config.breaker / topology_cache_capacity /
  // softmin / feature scales are ignored in favour of the shared
  // instances' own configuration.
  RobustRouter(rl::Policy* policy, RouterConfig config,
               std::shared_ptr<TopologyCache> cache,
               std::shared_ptr<CircuitBreaker> breaker);

  // Produces a valid routing decision for the request.  Never throws.
  RouteDecision decide(const RouteRequest& request);

  // Decides a micro-batch of same-topology requests, amortising the GNN
  // forward: when the policy has a batched path (rl::Policy::
  // action_means) and rung 1 is live, all action means are computed in
  // one stacked forward and each request then runs the ordinary ladder
  // on its own precomputed mean.  Decisions are identical to calling
  // decide() per request in order (the stacked forward is bit-identical
  // per row).  Requests that do not share the first request's topology,
  // or any batch-path miss, fall back to plain decide().  Never throws.
  std::vector<RouteDecision> decide_batch(
      const std::vector<const RouteRequest*>& requests);

  // Installs the rung-1 policy used from here on.  Per-router and
  // unsynchronised by design: serve::Engine calls it on the worker's own
  // router at a batch boundary (the engine's policy slot provides the
  // cross-thread ordering), never concurrently with decide().  `policy`
  // may be null (rung 1 unavailable) and must outlive its installation;
  // `candidate` marks a staged candidate so decisions carry the
  // attribution and NaN injection fires the candidate_nan site instead
  // of policy_nan.
  void set_policy(rl::Policy* policy, std::uint64_t version,
                  bool candidate = false);
  std::uint64_t policy_version() const { return policy_version_; }

  const RouterStats& stats() const { return stats_; }
  const CircuitBreaker& breaker() const { return *breaker_; }
  TopologyCache& topology_cache() { return *cache_; }
  const RouterConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  RouteDecision decide_with_mean(const RouteRequest& request,
                                 const std::vector<double>* mean);
  RouteDecision decide_impl(const RouteRequest& request,
                            Clock::time_point start,
                            const std::vector<double>* mean);
  FailureCause try_policy_rung(const graph::DiGraph& g,
                               const TopologyEntry& entry,
                               const traffic::DemandMatrix& demand,
                               const traffic::DemandSequence& history,
                               const DeadlineBudget& budget,
                               const std::vector<double>* precomputed_mean,
                               RouteDecision& decision);
  bool try_cached_rung(Rung rung, const graph::DiGraph& g,
                       const routing::Routing& routing,
                       const traffic::DemandMatrix& demand,
                       RouteDecision& decision);
  RouteDecision drop_all_decision(const RouteRequest& request) const;
  void note_failure(RouteDecision& decision, Rung rung, FailureCause cause);
  void export_metrics(const RouteDecision& decision);

  rl::Policy* policy_;
  std::uint64_t policy_version_ = 0;
  bool candidate_ = false;
  RouterConfig config_;
  std::shared_ptr<CircuitBreaker> breaker_;
  std::shared_ptr<TopologyCache> cache_;
  RouterStats stats_;
};

}  // namespace gddr::serve
