// Circuit breaker gating the serving ladder's learned rung.
//
// A policy that is persistently failing (NaN output, repeated deadline
// blowouts, simulation rejects) should not be paid for on every request:
// after `failure_threshold` consecutive failures the breaker trips open
// and the router skips straight to the fallback rungs.  While open, the
// breaker re-admits a single probe request after an exponentially growing
// backoff (half-open state); the probe's outcome decides between closing
// (recovery) and re-opening with a doubled backoff.
//
// Time is always passed in as a steady_clock time_point so tests can
// replay exact schedules without sleeping.  The class is deliberately not
// thread-safe: one RobustRouter (and therefore one breaker) is owned per
// serving worker, mirroring how RoutingEnv instances are per-worker.
#pragma once

#include <chrono>

namespace gddr::serve {

struct CircuitBreakerConfig {
  // Consecutive rung-1 failures that trip the breaker open.
  int failure_threshold = 3;
  // Backoff before the first half-open probe; doubles (times
  // `backoff_multiplier`) after every failed probe up to `max_backoff`.
  std::chrono::microseconds initial_backoff{100'000};
  std::chrono::microseconds max_backoff{5'000'000};
  double backoff_multiplier = 2.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(const CircuitBreakerConfig& config);

  // May this request use the guarded rung?  Closed: yes.  Open: yes once
  // the backoff has elapsed (transitions to half-open and admits exactly
  // one probe), otherwise no.  Half-open: no — a probe is already in
  // flight between allow() and its record_*() verdict.
  bool allow(Clock::time_point now);

  // Verdict of a request previously admitted by allow().
  void record_success(Clock::time_point now);
  void record_failure(Clock::time_point now);

  BreakerState state() const { return state_; }

  struct Stats {
    long trips = 0;       // closed -> open transitions
    long probes = 0;      // half-open admissions
    long reopens = 0;     // failed probes (half-open -> open)
    long recoveries = 0;  // successful probes (half-open -> closed)
    int consecutive_failures = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void open(Clock::time_point now);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::chrono::microseconds backoff_;
  Clock::time_point open_until_{};
  Stats stats_;
};

}  // namespace gddr::serve
