// Circuit breaker gating the serving ladder's learned rung.
//
// A policy that is persistently failing (NaN output, repeated deadline
// blowouts, simulation rejects) should not be paid for on every request:
// after `failure_threshold` consecutive failures the breaker trips open
// and the router skips straight to the fallback rungs.  While open, the
// breaker re-admits a single probe request after an exponentially growing
// backoff (half-open state); the probe's outcome decides between closing
// (recovery) and re-opening with a doubled backoff.
//
// Admission hands out an RAII Probe token rather than a bare bool: if the
// admitted request dies between admission and its verdict (an exception
// unwinding through the rung, a worker crash-path), the token's
// destructor records the failure, so a lost probe can never wedge the
// breaker half-open.  As a second belt, a half-open probe that has not
// reported by `probe_timeout` is presumed dead on the next admission
// attempt: the breaker re-opens with a grown backoff and the late verdict
// (if it ever arrives) is discarded as stale via a generation counter.
//
// Time is always passed in as a steady_clock time_point so tests can
// replay exact schedules without sleeping.
//
// Thread safety: one breaker is shared by every serve::Engine worker.
// state() is a lock-free atomic read; admissions and verdicts take an
// internal mutex (they are per-request, never on a hot inner loop).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/sync.hpp"

namespace gddr::serve {

struct CircuitBreakerConfig {
  // Consecutive rung-1 failures that trip the breaker open.
  int failure_threshold = 3;
  // Backoff before the first half-open probe; doubles (times
  // `backoff_multiplier`) after every failed probe up to `max_backoff`.
  std::chrono::microseconds initial_backoff{100'000};
  std::chrono::microseconds max_backoff{5'000'000};
  double backoff_multiplier = 2.0;
  // A half-open probe that has not reported a verdict within this window
  // is presumed dead: the next admission attempt re-opens the breaker
  // (with grown backoff) instead of waiting forever.
  std::chrono::microseconds probe_timeout{1'000'000};
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(const CircuitBreakerConfig& config);

  // RAII admission token.  Engaged (true) means the request may use the
  // guarded rung and MUST report a verdict: call succeed() or fail(), or
  // let the destructor record a failure at the admission timestamp.
  // Disengaged (false) means the rung is denied.  Move-only.
  class Probe {
   public:
    Probe() = default;
    Probe(Probe&& other) noexcept { swap(other); }
    Probe& operator=(Probe&& other) noexcept {
      if (this != &other) {
        resolve_as_abandoned();
        swap(other);
      }
      return *this;
    }
    Probe(const Probe&) = delete;
    Probe& operator=(const Probe&) = delete;
    ~Probe() { resolve_as_abandoned(); }

    explicit operator bool() const { return breaker_ != nullptr; }

    void succeed(Clock::time_point now);
    void fail(Clock::time_point now);

   private:
    friend class CircuitBreaker;
    Probe(CircuitBreaker* breaker, std::uint64_t generation,
          Clock::time_point admitted)
        : breaker_(breaker), generation_(generation), admitted_(admitted) {}

    void swap(Probe& other) noexcept {
      std::swap(breaker_, other.breaker_);
      std::swap(generation_, other.generation_);
      std::swap(admitted_, other.admitted_);
    }
    // A token destroyed without a verdict is a failed request.
    void resolve_as_abandoned();

    CircuitBreaker* breaker_ = nullptr;
    std::uint64_t generation_ = 0;
    Clock::time_point admitted_{};
  };

  // May this request use the guarded rung?  Closed: engaged token.
  // Open: engaged token once the backoff has elapsed (transitions to
  // half-open, exactly one probe).  Half-open: disengaged — unless the
  // in-flight probe is past its timeout, in which case it is presumed
  // dead and the open-state rules apply afresh.
  Probe admit(Clock::time_point now) GDDR_EXCLUDES(mu_);

  BreakerState state() const {
    return static_cast<BreakerState>(
        state_.load(std::memory_order_acquire));
  }

  struct Stats {
    long trips = 0;           // closed -> open transitions
    long probes = 0;          // half-open admissions
    long reopens = 0;         // failed probes (half-open -> open)
    long recoveries = 0;      // successful probes (half-open -> closed)
    long probe_timeouts = 0;  // probes presumed dead past probe_timeout
    int consecutive_failures = 0;
  };
  // Returns a copy: the breaker is shared across workers, so a reference
  // into live state would race with concurrent verdicts.
  Stats stats() const GDDR_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return stats_;
  }

 private:
  // report() takes mu_ itself; the *_locked helpers require it held.
  void report(std::uint64_t generation, bool success, Clock::time_point now)
      GDDR_EXCLUDES(mu_);
  void open_locked(Clock::time_point now) GDDR_REQUIRES(mu_);
  void expire_dead_probe_locked(Clock::time_point now) GDDR_REQUIRES(mu_);

  const CircuitBreakerConfig config_;
  mutable util::Mutex mu_{util::LockRank::kCircuitBreaker, "serve/breaker"};
  // Mirrors the mutex-guarded state for lock-free state() readers; written
  // only with mu_ held, read anywhere (hence atomic, not guarded).
  std::atomic<int> state_{static_cast<int>(BreakerState::kClosed)};
  // Bumped on every state transition; verdicts from an earlier generation
  // (pre-trip requests, timed-out probes) are discarded as stale.
  std::uint64_t generation_ GDDR_GUARDED_BY(mu_) = 0;
  std::chrono::microseconds backoff_ GDDR_GUARDED_BY(mu_);
  Clock::time_point open_until_ GDDR_GUARDED_BY(mu_) = {};
  Clock::time_point probe_deadline_ GDDR_GUARDED_BY(mu_) = {};
  Stats stats_ GDDR_GUARDED_BY(mu_);
};

}  // namespace gddr::serve
