#include "serve/sanitize.hpp"

#include <cmath>
#include <stdexcept>

namespace gddr::serve {

traffic::DemandMatrix sanitize_demands(const traffic::DemandMatrix& in,
                                       int num_nodes,
                                       const SanitizeLimits& limits,
                                       const std::vector<bool>& reachable,
                                       SanitizeReport& report) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (reachable.size() != n * n) {
    throw std::invalid_argument("sanitize_demands: reachable size mismatch");
  }
  report = SanitizeReport{};
  if (in.num_nodes() != num_nodes) {
    // A matrix for the wrong topology carries no usable signal; routing
    // zero traffic is the only honest repair.
    report.size_mismatch = true;
    return traffic::DemandMatrix(num_nodes);
  }
  std::vector<double> data = in.raw();
  for (int s = 0; s < num_nodes; ++s) {
    for (int t = 0; t < num_nodes; ++t) {
      double& d = data[static_cast<std::size_t>(s) * n +
                       static_cast<std::size_t>(t)];
      if (s == t) {
        if (d != 0.0) {
          ++report.diagonal_entries;
          d = 0.0;
        }
        continue;
      }
      if (!std::isfinite(d)) {
        ++report.non_finite_entries;
        d = 0.0;
        continue;
      }
      if (d < 0.0) {
        ++report.negative_entries;
        d = 0.0;
        continue;
      }
      report.offered_demand += d;
      // Unroutable before clamp, and each entry in exactly one bucket: an
      // unroutable entry is dropped at its full offered volume, not the
      // clamped remainder, and never also counts as clamped.
      if (d > 0.0 && !reachable[static_cast<std::size_t>(s) * n +
                                static_cast<std::size_t>(t)]) {
        ++report.unroutable_entries;
        report.unroutable_demand += d;
        d = 0.0;
        continue;
      }
      if (limits.max_demand > 0.0 && d > limits.max_demand) {
        ++report.clamped_entries;
        report.clamped_demand += d - limits.max_demand;
        d = limits.max_demand;
      }
    }
  }
  return traffic::DemandMatrix::from_raw_unchecked(num_nodes,
                                                   std::move(data));
}

}  // namespace gddr::serve
