// Micro-batching stage between the serving queue and a worker's router.
//
// GNN policy inference amortises well when same-topology requests share
// one stacked forward pass (rl::Policy::action_means), so each worker
// pops its next job and then greedily coalesces up to max_batch further
// jobs for the same topology that are already queued — it never waits
// for a batch to fill, so an idle system keeps single-request latency.
// The first differently-keyed job encountered ends the batch and is held
// back as the seed of the next one (a one-job lookahead slot owned by
// this batcher, i.e. by one worker).
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "serve/router.hpp"
#include "util/mpmc_queue.hpp"

namespace gddr::serve {

// What a submitted request resolves to: either a decision or the shed
// flag (admission control dropped the request before a router saw it).
struct ServeOutcome {
  bool shed = false;
  RouteDecision decision;
};

// One queued request plus its engine-side bookkeeping.
struct Job {
  RouteRequest request;
  // mcf::graph_fingerprint of request.graph (0 when null): the batching
  // key, computed once at submission.
  std::uint64_t topology = 0;
  std::chrono::steady_clock::time_point enqueued{};
  // Queueing deadline; jobs past it are shed, never served late.
  std::chrono::steady_clock::time_point deadline{};
  std::promise<ServeOutcome> promise;
};

class Batcher {
 public:
  Batcher(util::MpmcQueue<Job>& queue, int max_batch);

  // Blocks for the first job, then extends the batch with queued
  // same-topology jobs (no waiting).  Empty result means the queue is
  // closed and fully drained — the worker's exit signal.  Never returns
  // empty while a held-back job exists.
  std::vector<Job> next_batch();

  // Non-blocking variant for inline draining: empty when nothing is
  // immediately available.
  std::vector<Job> next_ready_batch();

 private:
  std::vector<Job> extend(Job&& first);

  util::MpmcQueue<Job>& queue_;
  int max_batch_;
  // The job that ended the previous batch (different topology), seed of
  // the next.
  std::optional<Job> pending_;
};

}  // namespace gddr::serve
