// Bounded per-topology state for the serving ladder.
//
// Every fallback rung below the learned policy needs topology-derived
// artifacts: the pair-reachability table the sanitiser consults, the
// inverse-capacity softmin routing (rung 3), the hop-count shortest-path
// routing (rung 4), the last-known-good learned routing (rung 2) and the
// normalisation scenario observations are built against.  All of these
// depend only on the topology, so they are computed once per distinct
// graph — keyed by mcf::graph_fingerprint — and reused until LRU
// eviction, exactly the discipline mcf::OptimalCache applies to LP
// solutions.
//
// A cache miss is also the trust boundary: graph::check_topology runs on
// the unseen graph before anything else touches it, so a corrupt
// topology is rejected at ingress instead of corrupting routing state.
//
// Not thread-safe by design: one RobustRouter owns one cache (serving
// workers are share-nothing, like RoutingEnv instances).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "core/scenario.hpp"
#include "graph/digraph.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"

namespace gddr::serve {

struct TopologyEntry {
  std::uint64_t fingerprint = 0;
  // Row-major num_nodes^2 table: reachable[s * n + t] == some s->t path
  // exists.  Diagonal entries are true.
  std::vector<bool> reachable;
  // Rung 3: demand-oblivious multipath over inverse-capacity weights.
  routing::Routing inverse_capacity;
  // Rung 4: hop-count shortest paths — the cheapest thing that is still a
  // valid routing.
  routing::Routing shortest_path;
  // Rung 2: the most recent successfully served learned routing.
  bool has_last_good = false;
  routing::Routing last_good;
  long successes_since_refresh = 0;
  // Graph copy plus feature scales, in the shape
  // core::RoutingEnv::build_observation consumes.
  core::Scenario obs_scenario;
};

class TopologyCache {
 public:
  // `node_feature_scale` / `flat_feature_scale` must match the scales the
  // served policy was trained with (they normalise observation features).
  TopologyCache(std::size_t capacity, routing::SoftminOptions softmin,
                double node_feature_scale, double flat_feature_scale);

  // Returns the entry for `g`, building it on first sight (runs
  // graph::check_topology, which throws util::ContractViolation on a
  // corrupt graph; nothing is cached in that case).  The reference stays
  // valid until `capacity` further distinct topologies are acquired.
  TopologyEntry& acquire(const graph::DiGraph& g);

  std::size_t size() const { return entries_.size(); }
  long hits() const { return hits_; }
  long misses() const { return misses_; }

 private:
  std::size_t capacity_;
  routing::SoftminOptions softmin_;
  double node_feature_scale_;
  double flat_feature_scale_;

  struct Slot {
    TopologyEntry entry;
    std::list<std::uint64_t>::iterator recency;
  };
  std::map<std::uint64_t, Slot> entries_;
  std::list<std::uint64_t> recency_;  // most recent at front
  long hits_ = 0;
  long misses_ = 0;
};

}  // namespace gddr::serve
