// Bounded per-topology state for the serving ladder.
//
// Every fallback rung below the learned policy needs topology-derived
// artifacts: the pair-reachability table the sanitiser consults, the
// inverse-capacity softmin routing (rung 3), the hop-count shortest-path
// routing (rung 4), the last-known-good learned routing (rung 2) and the
// normalisation scenario observations are built against.  All of these
// depend only on the topology, so they are computed once per distinct
// graph — keyed by mcf::graph_fingerprint — and reused until LRU
// eviction, exactly the discipline mcf::OptimalCache applies to LP
// solutions.
//
// A cache miss is also the trust boundary: graph::check_topology runs on
// the unseen graph before anything else touches it, so a corrupt
// topology is rejected at ingress instead of corrupting routing state.
//
// Thread safety: one cache is shared by every serve::Engine worker.  The
// index is mutex-guarded, and entries are handed out as
// shared_ptr<const TopologyEntry>, so an in-flight decision pins its
// entry across a concurrent eviction — eviction only drops the cache's
// own reference.  The expensive miss build (Dijkstra per node, two
// routings) runs outside the lock; when two workers race to build the
// same topology, the first insert wins and the loser's build is
// discarded.  Everything in an entry is immutable after construction
// except the rung-2 LastGood box, which synchronises itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "graph/digraph.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"
#include "util/sync.hpp"

namespace gddr::serve {

struct TopologyEntry {
  std::uint64_t fingerprint = 0;
  // Row-major num_nodes^2 table: reachable[s * n + t] == some s->t path
  // exists.  Diagonal entries are true.
  std::vector<bool> reachable;
  // Rung 3: demand-oblivious multipath over inverse-capacity weights.
  routing::Routing inverse_capacity;
  // Rung 4: hop-count shortest paths — the cheapest thing that is still a
  // valid routing.
  routing::Routing shortest_path;
  // Graph copy plus feature scales, in the shape
  // core::RoutingEnv::build_observation consumes.
  core::Scenario obs_scenario;

  // Rung 2: the most recent successfully served learned routing.  The
  // one mutable part of an otherwise-immutable shared entry, so it
  // carries its own lock; `mutable` lets workers holding a
  // shared_ptr<const TopologyEntry> update it.
  class LastGood {
   public:
    // Copies the stored routing into `out`; false when none is stored.
    bool load(routing::Routing& out) const GDDR_EXCLUDES(mu_) {
      const util::MutexLock lock(mu_);
      if (!has_) return false;
      out = routing_;
      return true;
    }
    bool has() const GDDR_EXCLUDES(mu_) {
      const util::MutexLock lock(mu_);
      return has_;
    }
    void invalidate() GDDR_EXCLUDES(mu_) {
      const util::MutexLock lock(mu_);
      has_ = false;
      successes_since_refresh_ = 0;
    }
    // Called after every rung-1 success.  Stores `r` when nothing is
    // stored yet or every `refresh_every` successes (copying a Routing
    // is not free; 1 refreshes every time).
    void offer(const routing::Routing& r, int refresh_every)
        GDDR_EXCLUDES(mu_) {
      const util::MutexLock lock(mu_);
      ++successes_since_refresh_;
      if (has_ && successes_since_refresh_ < refresh_every) return;
      routing_ = r;
      has_ = true;
      successes_since_refresh_ = 0;
    }

   private:
    mutable util::Mutex mu_{util::LockRank::kLastGood,
                            "serve/topo_cache/last_good"};
    bool has_ GDDR_GUARDED_BY(mu_) = false;
    routing::Routing routing_ GDDR_GUARDED_BY(mu_);
    long successes_since_refresh_ GDDR_GUARDED_BY(mu_) = 0;
  };
  mutable LastGood last_good;
};

class TopologyCache {
 public:
  using EntryPtr = std::shared_ptr<const TopologyEntry>;

  // `node_feature_scale` / `flat_feature_scale` must match the scales the
  // served policy was trained with (they normalise observation features).
  TopologyCache(std::size_t capacity, routing::SoftminOptions softmin,
                double node_feature_scale, double flat_feature_scale);

  // Returns the entry for `g`, building it on first sight (runs
  // graph::check_topology, which throws util::ContractViolation on a
  // corrupt graph; nothing is cached in that case).  The returned
  // shared_ptr keeps the entry alive for as long as the caller holds it,
  // however many topologies are acquired in between.
  EntryPtr acquire(const graph::DiGraph& g) GDDR_EXCLUDES(mu_);

  // Stats take the reader side of the index lock: they observe without
  // touching recency, so concurrent stat polls never serialise a worker.
  std::size_t size() const GDDR_EXCLUDES(mu_) {
    const util::SharedLock lock(mu_);
    return entries_.size();
  }
  long hits() const GDDR_EXCLUDES(mu_) {
    const util::SharedLock lock(mu_);
    return hits_;
  }
  long misses() const GDDR_EXCLUDES(mu_) {
    const util::SharedLock lock(mu_);
    return misses_;
  }

 private:
  // The expensive part of a miss (validation, Dijkstras, routings); runs
  // with no lock held.
  EntryPtr build_entry(const graph::DiGraph& g, std::uint64_t key) const;

  const std::size_t capacity_;
  const routing::SoftminOptions softmin_;
  const double node_feature_scale_;
  const double flat_feature_scale_;

  struct Slot {
    EntryPtr entry;
    std::list<std::uint64_t>::iterator recency;
  };
  // Reader/writer lock: acquire() is always a writer (even a hit splices
  // the recency list), the stat getters above are readers.
  mutable util::SharedMutex mu_{util::LockRank::kTopologyCache,
                                "serve/topo_cache"};
  std::map<std::uint64_t, Slot> entries_ GDDR_GUARDED_BY(mu_);
  std::list<std::uint64_t> recency_ GDDR_GUARDED_BY(mu_);  // recent at front
  long hits_ GDDR_GUARDED_BY(mu_) = 0;
  long misses_ GDDR_GUARDED_BY(mu_) = 0;
};

}  // namespace gddr::serve
