// Per-request deadline budget for the serving pipeline.
//
// A routing decision has three costed stages — policy forward, softmin
// translation, simulation — and one steady-clock budget T for the whole
// request.  The budget is split by cumulative fractions: the policy stage
// must finish by f_p * T, translation by (f_p + f_t) * T, and the full
// decision by T.  A stage that overruns its checkpoint fails the current
// degradation rung (serve::RobustRouter drops to a cheaper one) instead
// of letting one slow stage consume the rungs below it.
//
// All checks take the current time as a parameter, so tests can drive the
// budget with synthetic clocks and the router pays exactly one
// steady_clock read per check (~4 per request).
#pragma once

#include <chrono>
#include <stdexcept>

namespace gddr::serve {

class DeadlineBudget {
 public:
  using Clock = std::chrono::steady_clock;

  // `policy_fraction` and `translate_fraction` must be positive and sum
  // to < 1 (simulation gets the remainder).
  DeadlineBudget(Clock::time_point start, std::chrono::microseconds total,
                 double policy_fraction, double translate_fraction)
      : start_(start), end_(start + total) {
    if (total.count() <= 0) {
      throw std::invalid_argument("DeadlineBudget: non-positive deadline");
    }
    if (policy_fraction <= 0.0 || translate_fraction <= 0.0 ||
        policy_fraction + translate_fraction >= 1.0) {
      throw std::invalid_argument("DeadlineBudget: bad stage fractions");
    }
    const auto ticks = static_cast<double>(total.count());
    policy_deadline_ =
        start + std::chrono::microseconds(
                    static_cast<long long>(ticks * policy_fraction));
    translate_deadline_ =
        start + std::chrono::microseconds(static_cast<long long>(
                    ticks * (policy_fraction + translate_fraction)));
  }

  bool policy_overrun(Clock::time_point now) const {
    return now > policy_deadline_;
  }
  bool translate_overrun(Clock::time_point now) const {
    return now > translate_deadline_;
  }
  // The whole-request deadline; past it the ladder stops trying rungs
  // that are not already materialised.
  bool expired(Clock::time_point now) const { return now > end_; }

  Clock::time_point start() const { return start_; }
  double elapsed_s(Clock::time_point now) const {
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  Clock::time_point start_;
  Clock::time_point policy_deadline_;
  Clock::time_point translate_deadline_;
  Clock::time_point end_;
};

}  // namespace gddr::serve
