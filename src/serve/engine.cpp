#include "serve/engine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "mcf/cache.hpp"
#include "obs/metrics.hpp"

namespace gddr::serve {

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kExpiredFirst: return "expired-first";
    case ShedPolicy::kRejectNewest: return "reject-newest";
  }
  return "unknown";
}

bool parse_shed_policy(const std::string& text, ShedPolicy& out) {
  if (text == "expired-first") {
    out = ShedPolicy::kExpiredFirst;
    return true;
  }
  if (text == "reject-newest") {
    out = ShedPolicy::kRejectNewest;
    return true;
  }
  return false;
}

Engine::Engine(rl::Policy* policy, EngineConfig config)
    : config_(std::move(config)),
      cache_(std::make_shared<TopologyCache>(
          config_.router.topology_cache_capacity, config_.router.softmin,
          config_.router.node_feature_scale,
          config_.router.flat_feature_scale)),
      breaker_(std::make_shared<CircuitBreaker>(config_.router.breaker)),
      queue_(config_.queue_capacity) {
  if (config_.workers < 0) {
    throw std::invalid_argument("Engine: workers must be >= 0");
  }
  if (config_.queue_capacity < 1) {
    throw std::invalid_argument("Engine: queue_capacity must be >= 1");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("Engine: max_batch must be >= 1");
  }
  const int router_count = config_.workers == 0 ? 1 : config_.workers;
  routers_.reserve(static_cast<std::size_t>(router_count));
  for (int i = 0; i < router_count; ++i) {
    routers_.push_back(std::make_unique<RobustRouter>(policy, config_.router,
                                                      cache_, breaker_));
  }
  if (config_.workers == 0) {
    // Constructor: no concurrent access yet, lifecycle_mu_ not needed
    // (and clang's analysis exempts constructors for the same reason).
    inline_batcher_.emplace(queue_, config_.max_batch);
  } else {
    threads_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

Engine::~Engine() { shutdown(); }

std::future<ServeOutcome> Engine::submit(RouteRequest request) {
  Job job;
  job.request = std::move(request);
  job.topology =
      job.request.graph ? mcf::graph_fingerprint(*job.request.graph) : 0;
  job.enqueued = Clock::now();
  job.deadline = config_.queue_deadline.count() > 0
                     ? job.enqueued + config_.queue_deadline
                     : Clock::time_point::max();
  std::future<ServeOutcome> future = job.promise.get_future();
  offered_.fetch_add(1, std::memory_order_relaxed);

  if (!queue_.try_push(std::move(job))) {
    // try_push leaves `job` intact on failure.
    bool admitted = false;
    if (!stopped_.load(std::memory_order_relaxed) &&
        config_.shed_policy == ShedPolicy::kExpiredFirst) {
      const Clock::time_point now = Clock::now();
      Job victim;
      if (queue_.evict_first_if(
              [now](const Job& queued) { return queued.deadline <= now; },
              victim)) {
        shed_job(victim);
        admitted = queue_.try_push(std::move(job));
      }
    }
    if (!admitted) shed_job(job);
  }
  obs::gauge("serve/engine/queue_depth", static_cast<double>(queue_.size()));
  return future;
}

void Engine::poll() {
  if (config_.workers != 0) return;
  const util::MutexLock lock(lifecycle_mu_);
  drain_inline();
}

void Engine::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  const util::MutexLock lock(lifecycle_mu_);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  if (config_.workers == 0) drain_inline();
  for (const std::unique_ptr<RobustRouter>& router : routers_) {
    const RouterStats& s = router->stats();
    router_stats_.requests += s.requests;
    for (int r = 0; r < static_cast<int>(Rung::kRungCount); ++r) {
      router_stats_.rung_decisions[r] += s.rung_decisions[r];
    }
    for (int c = 0; c < static_cast<int>(FailureCause::kCauseCount); ++c) {
      router_stats_.failure_causes[c] += s.failure_causes[c];
    }
    router_stats_.sanitized_requests += s.sanitized_requests;
    router_stats_.unroutable_entries += s.unroutable_entries;
    router_stats_.deadline_exhausted += s.deadline_exhausted;
  }
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.offered = offered_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

void Engine::worker_loop(int index) {
  Batcher batcher(queue_, config_.max_batch);
  RobustRouter& router = *routers_[static_cast<std::size_t>(index)];
  for (;;) {
    std::vector<Job> batch = batcher.next_batch();
    if (batch.empty()) return;  // closed and drained
    process_batch(router, std::move(batch));
  }
}

void Engine::drain_inline() {
  for (;;) {
    std::vector<Job> batch = inline_batcher_->next_ready_batch();
    if (batch.empty()) return;
    process_batch(*routers_[0], std::move(batch));
  }
}

void Engine::process_batch(RobustRouter& router, std::vector<Job> batch) {
  obs::gauge("serve/engine/queue_depth", static_cast<double>(queue_.size()));
  const Clock::time_point now = Clock::now();
  std::vector<Job*> live;
  live.reserve(batch.size());
  for (Job& job : batch) {
    if (job.deadline <= now) {
      shed_job(job);  // expired while queued: shed, never serve late
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) return;

  std::vector<const RouteRequest*> requests;
  requests.reserve(live.size());
  for (const Job* job : live) requests.push_back(&job->request);
  std::vector<RouteDecision> decisions = router.decide_batch(requests);

  batches_.fetch_add(1, std::memory_order_relaxed);
  obs::observe("serve/engine/batch_size", static_cast<double>(live.size()));
  const Clock::time_point done = Clock::now();
  for (std::size_t i = 0; i < live.size(); ++i) {
    Job* job = live[i];
    obs::observe(
        "serve/engine/latency_us",
        std::chrono::duration<double, std::micro>(done - job->enqueued)
            .count());
    served_.fetch_add(1, std::memory_order_relaxed);
    ServeOutcome outcome;
    outcome.shed = false;
    outcome.decision = std::move(decisions[i]);
    job->promise.set_value(std::move(outcome));
  }
}

void Engine::shed_job(Job& job) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve/engine/shed");
  ServeOutcome outcome;
  outcome.shed = true;
  job.promise.set_value(std::move(outcome));
}

}  // namespace gddr::serve
