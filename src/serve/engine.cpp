#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "mcf/cache.hpp"
#include "obs/metrics.hpp"

namespace gddr::serve {

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kExpiredFirst: return "expired-first";
    case ShedPolicy::kRejectNewest: return "reject-newest";
  }
  return "unknown";
}

bool parse_shed_policy(const std::string& text, ShedPolicy& out) {
  if (text == "expired-first") {
    out = ShedPolicy::kExpiredFirst;
    return true;
  }
  if (text == "reject-newest") {
    out = ShedPolicy::kRejectNewest;
    return true;
  }
  return false;
}

Engine::Engine(rl::Policy* policy, EngineConfig config)
    : config_(std::move(config)),
      cache_(std::make_shared<TopologyCache>(
          config_.router.topology_cache_capacity, config_.router.softmin,
          config_.router.node_feature_scale,
          config_.router.flat_feature_scale)),
      breaker_(std::make_shared<CircuitBreaker>(config_.router.breaker)),
      queue_(config_.queue_capacity) {
  if (config_.workers < 0) {
    throw std::invalid_argument("Engine: workers must be >= 0");
  }
  if (config_.queue_capacity < 1) {
    throw std::invalid_argument("Engine: queue_capacity must be >= 1");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("Engine: max_batch must be >= 1");
  }
  const int router_count = config_.workers == 0 ? 1 : config_.workers;
  routers_.reserve(static_cast<std::size_t>(router_count));
  for (int i = 0; i < router_count; ++i) {
    routers_.push_back(std::make_unique<RobustRouter>(policy, config_.router,
                                                      cache_, breaker_));
  }
  if (config_.workers == 0) {
    // Constructor: no concurrent access yet, lifecycle_mu_ not needed
    // (and clang's analysis exempts constructors for the same reason).
    inline_batcher_.emplace(queue_, config_.max_batch);
  } else {
    threads_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

Engine::~Engine() { shutdown(); }

std::future<ServeOutcome> Engine::submit(RouteRequest request) {
  Job job;
  job.request = std::move(request);
  job.topology =
      job.request.graph ? mcf::graph_fingerprint(*job.request.graph) : 0;
  job.enqueued = Clock::now();
  job.deadline = config_.queue_deadline.count() > 0
                     ? job.enqueued + config_.queue_deadline
                     : Clock::time_point::max();
  std::future<ServeOutcome> future = job.promise.get_future();
  offered_.fetch_add(1, std::memory_order_relaxed);

  if (!queue_.try_push(std::move(job))) {
    // try_push leaves `job` intact on failure.
    bool admitted = false;
    if (!stopped_.load(std::memory_order_relaxed) &&
        config_.shed_policy == ShedPolicy::kExpiredFirst) {
      const Clock::time_point now = Clock::now();
      Job victim;
      if (queue_.evict_first_if(
              [now](const Job& queued) { return queued.deadline <= now; },
              victim)) {
        shed_job(victim);
        admitted = queue_.try_push(std::move(job));
      }
    }
    if (!admitted) shed_job(job);
  }
  obs::gauge("serve/engine/queue_depth", static_cast<double>(queue_.size()));
  return future;
}

void Engine::poll() {
  if (config_.workers != 0) return;
  const util::MutexLock lock(lifecycle_mu_);
  drain_inline();
}

void Engine::set_policy(std::shared_ptr<const core::GnnPolicy> policy,
                        std::uint64_t version) {
  {
    const util::MutexLock lock(policy_mu_);
    slot_armed_ = true;
    live_policy_ = std::move(policy);
    live_version_ = version;
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  obs::gauge("lifecycle/version", static_cast<double>(version));
  obs::count("lifecycle/swaps");
}

void Engine::set_candidate(std::shared_ptr<const core::GnnPolicy> candidate,
                           std::uint64_t version, double fraction) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  const util::MutexLock lock(policy_mu_);
  slot_armed_ = true;
  candidate_policy_ = std::move(candidate);
  candidate_version_ = version;
  canary_permille_ =
      candidate_policy_ ? static_cast<int>(std::lround(f * 1000.0)) : 0;
}

void Engine::clear_candidate() {
  const util::MutexLock lock(policy_mu_);
  candidate_policy_.reset();
  candidate_version_ = 0;
  canary_permille_ = 0;
}

void Engine::set_decision_observer(DecisionObserver observer) {
  const util::MutexLock lock(policy_mu_);
  observer_ = std::move(observer);
}

std::uint64_t Engine::live_version() const {
  const util::MutexLock lock(policy_mu_);
  return live_version_;
}

Engine::PolicyPick Engine::pick_policy() {
  const util::MutexLock lock(policy_mu_);
  PolicyPick pick;
  pick.armed = slot_armed_;
  pick.observer = observer_;
  pick.policy = live_policy_;
  pick.version = live_version_;
  if (candidate_policy_ != nullptr && canary_permille_ > 0) {
    // Deterministic canary split: batch sequence numbers are only
    // consumed while a candidate is armed, so the canary gets its
    // configured share of batches regardless of when it was staged.
    const std::uint64_t seq =
        batch_seq_.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<int>(seq % 1000) < canary_permille_) {
      pick.policy = candidate_policy_;
      pick.version = candidate_version_;
      pick.candidate = true;
    }
  }
  return pick;
}

void Engine::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  const util::MutexLock lock(lifecycle_mu_);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  if (config_.workers == 0) drain_inline();
  for (const std::unique_ptr<RobustRouter>& router : routers_) {
    const RouterStats& s = router->stats();
    router_stats_.requests += s.requests;
    for (int r = 0; r < static_cast<int>(Rung::kRungCount); ++r) {
      router_stats_.rung_decisions[r] += s.rung_decisions[r];
    }
    for (int c = 0; c < static_cast<int>(FailureCause::kCauseCount); ++c) {
      router_stats_.failure_causes[c] += s.failure_causes[c];
    }
    router_stats_.sanitized_requests += s.sanitized_requests;
    router_stats_.unroutable_entries += s.unroutable_entries;
    router_stats_.deadline_exhausted += s.deadline_exhausted;
  }
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.offered = offered_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

void Engine::worker_loop(int index) {
  Batcher batcher(queue_, config_.max_batch);
  RobustRouter& router = *routers_[static_cast<std::size_t>(index)];
  for (;;) {
    std::vector<Job> batch = batcher.next_batch();
    if (batch.empty()) return;  // closed and drained
    process_batch(router, std::move(batch));
  }
}

void Engine::drain_inline() {
  for (;;) {
    std::vector<Job> batch = inline_batcher_->next_ready_batch();
    if (batch.empty()) return;
    process_batch(*routers_[0], std::move(batch));
  }
}

void Engine::process_batch(RobustRouter& router, std::vector<Job> batch) {
  obs::gauge("serve/engine/queue_depth", static_cast<double>(queue_.size()));
  const Clock::time_point now = Clock::now();
  std::vector<Job*> live;
  live.reserve(batch.size());
  for (Job& job : batch) {
    if (job.deadline <= now) {
      shed_job(job);  // expired while queued: shed, never serve late
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) return;

  // Batch boundary: re-read the policy slot.  The shared_ptr copy in
  // `pick` keeps the policy alive for this whole batch even if the slot
  // is overwritten concurrently; the router never sees a swap mid-batch.
  const PolicyPick pick = pick_policy();
  if (pick.armed) {
    // The const_cast is sound: rl::Policy's interface is non-const only
    // because generic policies may build tapes in place, and GnnPolicy's
    // forwards are logically const and thread-safe (per-thread tapes,
    // immutable parameters) — the slot's `const` expresses that nobody
    // may *mutate* the published policy.
    router.set_policy(const_cast<core::GnnPolicy*>(pick.policy.get()),
                      pick.version, pick.candidate);
  }

  std::vector<const RouteRequest*> requests;
  requests.reserve(live.size());
  for (const Job* job : live) requests.push_back(&job->request);
  std::vector<RouteDecision> decisions = router.decide_batch(requests);

  batches_.fetch_add(1, std::memory_order_relaxed);
  obs::observe("serve/engine/batch_size", static_cast<double>(live.size()));
  const Clock::time_point done = Clock::now();
  for (std::size_t i = 0; i < live.size(); ++i) {
    Job* job = live[i];
    const RouteDecision& d = decisions[i];
    DecisionRecord record;
    record.rung = d.rung;
    record.policy_version = d.policy_version;
    record.served_by_candidate = d.served_by_candidate;
    for (const RungAttempt& attempt : d.attempts) {
      if (attempt.rung == Rung::kGnnPolicy &&
          attempt.cause == FailureCause::kNonFiniteOutput) {
        record.nonfinite_policy_output = true;
      }
    }
    record.u_max = d.sim.u_max;
    record.routed_demand = d.routed_demand;
    record.latency_s = d.latency_s;

    obs::observe(
        "serve/engine/latency_us",
        std::chrono::duration<double, std::micro>(done - job->enqueued)
            .count());
    served_.fetch_add(1, std::memory_order_relaxed);
    ServeOutcome outcome;
    outcome.shed = false;
    outcome.decision = std::move(decisions[i]);
    job->promise.set_value(std::move(outcome));
    // After the caller's future is resolved, so a slow observer (shadow
    // mirror, promoter gates) never adds to request latency.  The job
    // still owns its request here.
    if (pick.observer) pick.observer(job->request, record);
  }
}

void Engine::shed_job(Job& job) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve/engine/shed");
  ServeOutcome outcome;
  outcome.shed = true;
  job.promise.set_value(std::move(outcome));
}

}  // namespace gddr::serve
