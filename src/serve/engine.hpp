// Concurrent batched serving front-end over RobustRouter.
//
// The engine turns the single-request router into a serving system: a
// bounded MPMC queue with load-shedding admission control feeds N worker
// threads, each owning its own RobustRouter but all sharing one
// thread-safe TopologyCache (per-topology artifacts built once for the
// fleet) and one thread-safe CircuitBreaker (a failing policy trips for
// everyone at once).  Each worker micro-batches: after blocking for its
// first job it greedily coalesces up to max_batch already-queued
// same-topology jobs and serves them through RobustRouter::decide_batch,
// which stacks the GNN forward — decisions stay bit-identical to serving
// each request alone (see graph_net.hpp on the stacked forward).
//
// Admission control never blocks and never drops a future on the floor:
// submit() always returns a future that resolves, either to a decision
// or to a ServeOutcome with shed=true.  A request is shed when
//  * the queue is full (kRejectNewest: the incoming request is shed;
//    kExpiredFirst: the oldest already-past-deadline queued request is
//    evicted to make room first, and only if none has expired is the
//    incoming request shed), or
//  * it is past its queueing deadline by the time a worker dequeues it
//    (serving a stale answer is worse than a fast explicit shed).
// This makes the conservation law exact: offered == served + shed, which
// the serve-bench CI smoke asserts.
//
// workers == 0 selects inline mode: no threads; submit() only enqueues,
// and poll() (or shutdown()) serves the queued jobs synchronously through
// the same batching path.  This keeps the full engine pipeline —
// admission control included, since the queue can actually fill between
// polls — testable single-threaded, and is the deterministic reference
// for the bit-identity leg of bench_serve_throughput.  Inline mode
// assumes a single-threaded caller.
//
// Policy lifecycle seam: the engine owns an RCU-style policy slot.  The
// lifecycle layer installs `std::shared_ptr<const core::GnnPolicy>`
// values (set_policy / set_candidate); each worker re-reads the slot at
// every micro-batch boundary, keeps its own shared_ptr copy for the
// duration of the batch, and installs the raw pointer into its private
// RobustRouter.  A hot swap therefore never tears an in-flight batch,
// the old policy stays alive until the last batch using it completes,
// and every decision is attributable to exactly one policy version.
// A decision observer hook feeds each served decision (post-resolve,
// on the serving thread) to the lifecycle layer for shadow scoring,
// canary gating and NaN rollback.
//
// Exported metrics: serve/engine/shed (counter), serve/engine/queue_depth
// (gauge), serve/engine/batch_size and serve/engine/latency_us
// (histograms); lifecycle/version (gauge) and lifecycle/swaps (counter)
// on set_policy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/policies.hpp"
#include "serve/batcher.hpp"
#include "serve/router.hpp"
#include "util/mpmc_queue.hpp"
#include "util/sync.hpp"

namespace gddr::serve {

enum class ShedPolicy : int {
  // Evict the oldest queued job already past its deadline to admit the
  // newcomer; shed the newcomer only when every queued job is still
  // viable.
  kExpiredFirst = 0,
  // Shed the incoming request whenever the queue is full.
  kRejectNewest,
};

const char* shed_policy_name(ShedPolicy policy);
bool parse_shed_policy(const std::string& text, ShedPolicy& out);

struct EngineConfig {
  // 0 = inline mode (no threads, submit() serves synchronously).
  int workers = 4;
  std::size_t queue_capacity = 256;
  // Largest micro-batch a worker coalesces; 1 disables batching.
  int max_batch = 8;
  ShedPolicy shed_policy = ShedPolicy::kExpiredFirst;
  // Maximum time a request may wait in the queue before it is shed
  // instead of served; 0 = wait forever.
  std::chrono::microseconds queue_deadline{0};
  RouterConfig router;
};

struct EngineStats {
  long offered = 0;  // submit() calls
  long shed = 0;     // resolved with shed=true
  long served = 0;   // resolved with a decision
  long batches = 0;  // decide_batch invocations (any size)
};

// One served (non-shed) decision as seen by the lifecycle layer: enough
// to score a canary, mirror the request through a shadow candidate and
// detect a poisoned policy, without holding the full RouteDecision (the
// routing itself has already been moved into the caller's future by the
// time the observer runs).
struct DecisionRecord {
  Rung rung = Rung::kDropTraffic;
  std::uint64_t policy_version = 0;
  bool served_by_candidate = false;
  // Rung 1 produced NaN/Inf action means for this request.  The ladder
  // recovered (a lower rung served it), but a *candidate* doing this is
  // grounds for immediate rollback.
  bool nonfinite_policy_output = false;
  double u_max = 0.0;          // simulated max link utilisation (Eq. 1)
  double routed_demand = 0.0;
  double latency_s = 0.0;
};

// Invoked on the serving thread after the caller's future is resolved.
// Must be cheap and safe to call from multiple workers concurrently.
using DecisionObserver =
    std::function<void(const RouteRequest&, const DecisionRecord&)>;

class Engine {
 public:
  // `policy` may be null (workers serve from the static rungs only);
  // when non-null it must be safe for concurrent read-only forwards
  // (GnnPolicy is: per-thread tapes, immutable parameters) and outlive
  // the engine.
  Engine(rl::Policy* policy, EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Enqueues a request.  The returned future always becomes ready —
  // with a decision, or with shed=true if admission control dropped the
  // request.  Worker threads resolve it asynchronously; in inline mode
  // it resolves on the next poll() or shutdown().  After shutdown()
  // every submission is shed immediately.
  std::future<ServeOutcome> submit(RouteRequest request);

  // Inline mode only: serves every job currently queued (in micro-
  // batches) on the calling thread.  No-op when worker threads exist.
  void poll() GDDR_EXCLUDES(lifecycle_mu_);

  // Closes the queue, serves every already-admitted job, and joins the
  // workers.  Idempotent; also run by the destructor.
  void shutdown() GDDR_EXCLUDES(lifecycle_mu_);

  // --- Policy lifecycle seam (see file comment) -----------------------
  // Installs `policy` (may be null: rung 1 disabled) as the live policy
  // for every worker, superseding the construction-time pointer from the
  // next batch boundary on.  Thread-safe; zero downtime — in-flight
  // batches finish on the policy they started with.
  void set_policy(std::shared_ptr<const core::GnnPolicy> policy,
                  std::uint64_t version = 0) GDDR_EXCLUDES(policy_mu_);

  // Arms a canary: a `fraction` share of micro-batches (chosen
  // deterministically by batch sequence number) is served by `candidate`
  // instead of the live policy, attributed via
  // RouteDecision::served_by_candidate.  fraction is clamped to [0, 1].
  void set_candidate(std::shared_ptr<const core::GnnPolicy> candidate,
                     std::uint64_t version, double fraction)
      GDDR_EXCLUDES(policy_mu_);
  void clear_candidate() GDDR_EXCLUDES(policy_mu_);

  // Installs the observer invoked for every *served* decision.  Install
  // before offering traffic, or accept missing early records.
  void set_decision_observer(DecisionObserver observer)
      GDDR_EXCLUDES(policy_mu_);

  std::uint64_t live_version() const GDDR_EXCLUDES(policy_mu_);
  // set_policy() installs over the engine lifetime (hot swaps).
  long swaps() const { return swaps_.load(std::memory_order_relaxed); }

  EngineStats stats() const;

  // Per-worker RouterStats summed over the fleet, by value: shutdown()
  // writes the aggregate concurrently with callers polling it, so a
  // reference into the member would be a data race.  Only meaningful
  // after shutdown(); returns zeros while workers are still running
  // (worker stats are unsynchronised by design).
  RouterStats router_stats() const GDDR_EXCLUDES(lifecycle_mu_) {
    const util::MutexLock lock(lifecycle_mu_);
    return router_stats_;
  }

  const CircuitBreaker& breaker() const { return *breaker_; }
  const TopologyCache& topology_cache() const { return *cache_; }
  const EngineConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  // The slot value one micro-batch runs under: shared_ptr copies taken
  // under policy_mu_ keep the policy alive for the whole batch even if
  // the slot is overwritten mid-batch.
  struct PolicyPick {
    bool armed = false;  // the slot has been written at least once
    std::shared_ptr<const core::GnnPolicy> policy;
    std::uint64_t version = 0;
    bool candidate = false;
    DecisionObserver observer;
  };

  void worker_loop(int index);
  void drain_inline() GDDR_REQUIRES(lifecycle_mu_);
  void process_batch(RobustRouter& router, std::vector<Job> batch)
      GDDR_EXCLUDES(policy_mu_);
  PolicyPick pick_policy() GDDR_EXCLUDES(policy_mu_);
  void shed_job(Job& job);

  EngineConfig config_;
  std::shared_ptr<TopologyCache> cache_;
  std::shared_ptr<CircuitBreaker> breaker_;
  std::vector<std::unique_ptr<RobustRouter>> routers_;
  util::MpmcQueue<Job> queue_;
  // Serialises lifecycle transitions and inline-mode serving: poll(),
  // shutdown() and router_stats() may race (two threads polling an
  // inline engine would both drain inline_batcher_; a stats poll during
  // shutdown would read router_stats_ mid-aggregation).  Outermost rank:
  // drain_inline touches the queue, caches and breaker under it.
  mutable util::Mutex lifecycle_mu_{util::LockRank::kEngine, "serve/engine"};
  // Inline mode only: persistent so a held-back lookahead job (see
  // Batcher::pending_) survives across submit() calls.
  std::optional<Batcher> inline_batcher_ GDDR_GUARDED_BY(lifecycle_mu_);
  std::vector<std::thread> threads_ GDDR_GUARDED_BY(lifecycle_mu_);
  // Policy slot: written by the lifecycle layer, re-read by every worker
  // at each batch boundary.  Ranked below kEngine so inline drains
  // (holding lifecycle_mu_) can read it.  Until the slot is first
  // written (slot_armed_), workers keep the construction-time policy.
  mutable util::Mutex policy_mu_{util::LockRank::kEnginePolicy,
                                 "serve/engine/policy"};
  bool slot_armed_ GDDR_GUARDED_BY(policy_mu_) = false;
  std::shared_ptr<const core::GnnPolicy> live_policy_
      GDDR_GUARDED_BY(policy_mu_);
  std::uint64_t live_version_ GDDR_GUARDED_BY(policy_mu_) = 0;
  std::shared_ptr<const core::GnnPolicy> candidate_policy_
      GDDR_GUARDED_BY(policy_mu_);
  std::uint64_t candidate_version_ GDDR_GUARDED_BY(policy_mu_) = 0;
  int canary_permille_ GDDR_GUARDED_BY(policy_mu_) = 0;
  DecisionObserver observer_ GDDR_GUARDED_BY(policy_mu_);
  std::atomic<std::uint64_t> batch_seq_{0};
  std::atomic<long> swaps_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<long> offered_{0};
  std::atomic<long> shed_{0};
  std::atomic<long> served_{0};
  std::atomic<long> batches_{0};
  RouterStats router_stats_ GDDR_GUARDED_BY(lifecycle_mu_);
};

}  // namespace gddr::serve
