// Concurrent batched serving front-end over RobustRouter.
//
// The engine turns the single-request router into a serving system: a
// bounded MPMC queue with load-shedding admission control feeds N worker
// threads, each owning its own RobustRouter but all sharing one
// thread-safe TopologyCache (per-topology artifacts built once for the
// fleet) and one thread-safe CircuitBreaker (a failing policy trips for
// everyone at once).  Each worker micro-batches: after blocking for its
// first job it greedily coalesces up to max_batch already-queued
// same-topology jobs and serves them through RobustRouter::decide_batch,
// which stacks the GNN forward — decisions stay bit-identical to serving
// each request alone (see graph_net.hpp on the stacked forward).
//
// Admission control never blocks and never drops a future on the floor:
// submit() always returns a future that resolves, either to a decision
// or to a ServeOutcome with shed=true.  A request is shed when
//  * the queue is full (kRejectNewest: the incoming request is shed;
//    kExpiredFirst: the oldest already-past-deadline queued request is
//    evicted to make room first, and only if none has expired is the
//    incoming request shed), or
//  * it is past its queueing deadline by the time a worker dequeues it
//    (serving a stale answer is worse than a fast explicit shed).
// This makes the conservation law exact: offered == served + shed, which
// the serve-bench CI smoke asserts.
//
// workers == 0 selects inline mode: no threads; submit() only enqueues,
// and poll() (or shutdown()) serves the queued jobs synchronously through
// the same batching path.  This keeps the full engine pipeline —
// admission control included, since the queue can actually fill between
// polls — testable single-threaded, and is the deterministic reference
// for the bit-identity leg of bench_serve_throughput.  Inline mode
// assumes a single-threaded caller.
//
// Exported metrics: serve/engine/shed (counter), serve/engine/queue_depth
// (gauge), serve/engine/batch_size and serve/engine/latency_us
// (histograms).
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/router.hpp"
#include "util/mpmc_queue.hpp"
#include "util/sync.hpp"

namespace gddr::serve {

enum class ShedPolicy : int {
  // Evict the oldest queued job already past its deadline to admit the
  // newcomer; shed the newcomer only when every queued job is still
  // viable.
  kExpiredFirst = 0,
  // Shed the incoming request whenever the queue is full.
  kRejectNewest,
};

const char* shed_policy_name(ShedPolicy policy);
bool parse_shed_policy(const std::string& text, ShedPolicy& out);

struct EngineConfig {
  // 0 = inline mode (no threads, submit() serves synchronously).
  int workers = 4;
  std::size_t queue_capacity = 256;
  // Largest micro-batch a worker coalesces; 1 disables batching.
  int max_batch = 8;
  ShedPolicy shed_policy = ShedPolicy::kExpiredFirst;
  // Maximum time a request may wait in the queue before it is shed
  // instead of served; 0 = wait forever.
  std::chrono::microseconds queue_deadline{0};
  RouterConfig router;
};

struct EngineStats {
  long offered = 0;  // submit() calls
  long shed = 0;     // resolved with shed=true
  long served = 0;   // resolved with a decision
  long batches = 0;  // decide_batch invocations (any size)
};

class Engine {
 public:
  // `policy` may be null (workers serve from the static rungs only);
  // when non-null it must be safe for concurrent read-only forwards
  // (GnnPolicy is: per-thread tapes, immutable parameters) and outlive
  // the engine.
  Engine(rl::Policy* policy, EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Enqueues a request.  The returned future always becomes ready —
  // with a decision, or with shed=true if admission control dropped the
  // request.  Worker threads resolve it asynchronously; in inline mode
  // it resolves on the next poll() or shutdown().  After shutdown()
  // every submission is shed immediately.
  std::future<ServeOutcome> submit(RouteRequest request);

  // Inline mode only: serves every job currently queued (in micro-
  // batches) on the calling thread.  No-op when worker threads exist.
  void poll() GDDR_EXCLUDES(lifecycle_mu_);

  // Closes the queue, serves every already-admitted job, and joins the
  // workers.  Idempotent; also run by the destructor.
  void shutdown() GDDR_EXCLUDES(lifecycle_mu_);

  EngineStats stats() const;

  // Per-worker RouterStats summed over the fleet, by value: shutdown()
  // writes the aggregate concurrently with callers polling it, so a
  // reference into the member would be a data race.  Only meaningful
  // after shutdown(); returns zeros while workers are still running
  // (worker stats are unsynchronised by design).
  RouterStats router_stats() const GDDR_EXCLUDES(lifecycle_mu_) {
    const util::MutexLock lock(lifecycle_mu_);
    return router_stats_;
  }

  const CircuitBreaker& breaker() const { return *breaker_; }
  const TopologyCache& topology_cache() const { return *cache_; }
  const EngineConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  void worker_loop(int index);
  void drain_inline() GDDR_REQUIRES(lifecycle_mu_);
  void process_batch(RobustRouter& router, std::vector<Job> batch);
  void shed_job(Job& job);

  EngineConfig config_;
  std::shared_ptr<TopologyCache> cache_;
  std::shared_ptr<CircuitBreaker> breaker_;
  std::vector<std::unique_ptr<RobustRouter>> routers_;
  util::MpmcQueue<Job> queue_;
  // Serialises lifecycle transitions and inline-mode serving: poll(),
  // shutdown() and router_stats() may race (two threads polling an
  // inline engine would both drain inline_batcher_; a stats poll during
  // shutdown would read router_stats_ mid-aggregation).  Outermost rank:
  // drain_inline touches the queue, caches and breaker under it.
  mutable util::Mutex lifecycle_mu_{util::LockRank::kEngine, "serve/engine"};
  // Inline mode only: persistent so a held-back lookahead job (see
  // Batcher::pending_) survives across submit() calls.
  std::optional<Batcher> inline_batcher_ GDDR_GUARDED_BY(lifecycle_mu_);
  std::vector<std::thread> threads_ GDDR_GUARDED_BY(lifecycle_mu_);
  std::atomic<bool> stopped_{false};
  std::atomic<long> offered_{0};
  std::atomic<long> shed_{0};
  std::atomic<long> served_{0};
  std::atomic<long> batches_{0};
  RouterStats router_stats_ GDDR_GUARDED_BY(lifecycle_mu_);
};

}  // namespace gddr::serve
