#include "serve/batcher.hpp"

#include <stdexcept>
#include <utility>

namespace gddr::serve {

Batcher::Batcher(util::MpmcQueue<Job>& queue, int max_batch)
    : queue_(queue), max_batch_(max_batch) {
  if (max_batch < 1) throw std::invalid_argument("Batcher: max_batch < 1");
}

std::vector<Job> Batcher::next_batch() {
  if (pending_.has_value()) {
    Job first = std::move(*pending_);
    pending_.reset();
    return extend(std::move(first));
  }
  Job first;
  if (!queue_.pop(first)) return {};
  return extend(std::move(first));
}

std::vector<Job> Batcher::next_ready_batch() {
  if (pending_.has_value()) {
    Job first = std::move(*pending_);
    pending_.reset();
    return extend(std::move(first));
  }
  Job first;
  if (!queue_.try_pop(first)) return {};
  return extend(std::move(first));
}

std::vector<Job> Batcher::extend(Job&& first) {
  std::vector<Job> batch;
  batch.reserve(static_cast<std::size_t>(max_batch_));
  const std::uint64_t key = first.topology;
  batch.push_back(std::move(first));
  while (static_cast<int>(batch.size()) < max_batch_) {
    Job next;
    if (!queue_.try_pop(next)) break;
    if (next.topology != key) {
      pending_ = std::move(next);
      break;
    }
    batch.push_back(std::move(next));
  }
  return batch;
}

}  // namespace gddr::serve
