#include "serve/topo_cache.hpp"

#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/graph_invariants.hpp"
#include "mcf/cache.hpp"
#include "obs/metrics.hpp"
#include "routing/baselines.hpp"

namespace gddr::serve {

TopologyCache::TopologyCache(std::size_t capacity,
                             routing::SoftminOptions softmin,
                             double node_feature_scale,
                             double flat_feature_scale)
    : capacity_(capacity),
      softmin_(softmin),
      node_feature_scale_(node_feature_scale),
      flat_feature_scale_(flat_feature_scale) {
  if (capacity == 0) {
    throw std::invalid_argument("TopologyCache: zero capacity");
  }
  if (node_feature_scale <= 0.0 || flat_feature_scale <= 0.0) {
    throw std::invalid_argument("TopologyCache: non-positive feature scale");
  }
}

TopologyCache::EntryPtr TopologyCache::acquire(const graph::DiGraph& g) {
  const std::uint64_t key = mcf::graph_fingerprint(g);
  {
    const util::MutexLock lock(mu_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      recency_.splice(recency_.begin(), recency_, it->second.recency);
      return it->second.entry;
    }
    ++misses_;
  }
  obs::count("serve/topo_cache/miss");

  // The build is the expensive part of a miss (a Dijkstra per node plus
  // two full routings) — run it unlocked so concurrent workers serving
  // cached topologies are not stalled behind it.
  EntryPtr built = build_entry(g, key);

  const util::MutexLock lock(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Another worker built and inserted the same topology while we were
    // unlocked; theirs is canonical (it may already carry a
    // last-known-good routing).
    recency_.splice(recency_.begin(), recency_, it->second.recency);
    return it->second.entry;
  }
  if (entries_.size() >= capacity_) {
    const std::uint64_t victim = recency_.back();
    recency_.pop_back();
    // Only the cache's reference is dropped: any worker still holding
    // the evicted entry's shared_ptr keeps it alive.
    entries_.erase(victim);
    obs::count("serve/topo_cache/evict");
  }
  recency_.push_front(key);
  entries_.emplace(key, Slot{built, recency_.begin()});
  return built;
}

TopologyCache::EntryPtr TopologyCache::build_entry(const graph::DiGraph& g,
                                                   std::uint64_t key) const {
  // Trust boundary: a topology is validated exactly once, before any
  // routing artifact is derived from it.
  graph::check_topology(g, "serve/topo_cache/ingress");

  auto entry = std::make_shared<TopologyEntry>();
  entry->fingerprint = key;
  const int n = g.num_nodes();
  const auto hop_weights = graph::unit_weights(g);
  entry->reachable.assign(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n),
                          false);
  for (graph::NodeId t = 0; t < n; ++t) {
    const auto sp = graph::dijkstra_to(g, t, hop_weights);
    for (graph::NodeId s = 0; s < n; ++s) {
      const bool ok =
          s == t ||
          sp.parent_edge[static_cast<std::size_t>(s)] != graph::kInvalidEdge;
      entry->reachable[static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(n) +
                       static_cast<std::size_t>(t)] = ok;
    }
  }
  entry->shortest_path = routing::shortest_path_routing(g, hop_weights);
  entry->inverse_capacity = routing::softmin_routing(
      g, routing::inverse_capacity_weights(g), softmin_);
  entry->obs_scenario.graph = g;
  entry->obs_scenario.node_feature_scale = node_feature_scale_;
  entry->obs_scenario.flat_feature_scale = flat_feature_scale_;
  return entry;
}

}  // namespace gddr::serve
