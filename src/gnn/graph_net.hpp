// Graph-network blocks (Battaglia et al. 2018), the GNN substrate of the
// GDDR policies (paper §IV, §VII-A, Figure 5).
//
// A graph here is the 3-tuple (u, V, E): a global attribute row vector, a
// node-attribute matrix (one row per vertex) and an edge-attribute matrix
// (one row per directed edge) plus the fixed sender/receiver connectivity.
//
// The full GN block implements the paper's six functions:
//   phi_e (edge update), phi_v (node update), phi_u (global update) as
//   MLPs, and the three rho pooling functions as unsorted segment sums —
//   exactly TensorFlow's tf.unsorted_segment_sum, as stated in §VII-A.
//
// EncodeProcessDecode composes an independent encoder (per-element MLPs,
// no message passing), a recurrent full GN core applied `steps` times on
// the concatenation of the encoded input and the previous latent (the
// "extra loop" in the paper's Figure 5), and an independent decoder.
#pragma once

#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "nn/kernels.hpp"
#include "nn/mlp.hpp"
#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace gddr::gnn {

// Immutable connectivity: which node each directed edge leaves (sender)
// and enters (receiver).
//
// The shared_ptr members are per-topology kernel plans, built once by
// ensure_plans() and then reused by every GnBlock::forward on this spec —
// the tape retains them by pointer, so repeated forwards copy no index
// data and the bucketed segment-sum sorts the receiver ids exactly once.
struct GraphSpec {
  int num_nodes = 0;
  std::vector<int> senders;
  std::vector<int> receivers;

  // Built by ensure_plans(); null until then (GnBlock falls back to the
  // unplanned tape ops when null, so hand-rolled specs keep working).
  std::shared_ptr<const std::vector<int>> senders_shared;
  std::shared_ptr<const std::vector<int>> receivers_shared;
  std::shared_ptr<const nn::kernels::SegmentPlan> receiver_plan;

  static GraphSpec from(const graph::DiGraph& g);
  // Idempotently builds the shared index vectors and the bucketed
  // segment-sum plan from senders/receivers/num_nodes.
  void ensure_plans();
  int num_edges() const { return static_cast<int>(senders.size()); }
};

// On-tape attribute set for one graph.
struct GraphVars {
  nn::Tape::Var nodes;    // N x node_dim
  nn::Tape::Var edges;    // E x edge_dim
  nn::Tape::Var globals;  // 1 x global_dim
};

// Connectivity for `batch` disjoint copies of one base graph stacked into
// a single big graph (copy b's node i becomes stacked node b*N + i), plus
// the bookkeeping to broadcast per-copy globals and pool per copy.  The
// serving engine batches same-topology requests through one forward pass
// with this: every kernel touched (gather / segment-sum / row-wise MLPs)
// accumulates each output element over the same values in the same order
// as the unbatched forward, so the stacked result is bit-identical to
// `batch` separate forwards (asserted in test_gnn).
struct BatchedGraphSpec {
  GraphSpec spec;  // stacked connectivity, batch*N nodes / batch*E edges
  int batch = 0;
  int base_nodes = 0;
  int base_edges = 0;
  // Copy id per stacked row, ascending (0,...,0,1,...,1,...).
  std::shared_ptr<const std::vector<int>> node_graph_ids;
  std::shared_ptr<const std::vector<int>> edge_graph_ids;
  // Bucketed plans pooling stacked rows per copy (rho_{e->u}, rho_{v->u}).
  std::shared_ptr<const nn::kernels::SegmentPlan> node_pool_plan;
  std::shared_ptr<const nn::kernels::SegmentPlan> edge_pool_plan;

  static BatchedGraphSpec from(const GraphSpec& base, int batch);
};

struct GnBlockConfig {
  int node_in = 1;
  int edge_in = 1;
  int global_in = 1;
  int node_out = 16;
  int edge_out = 16;
  int global_out = 16;
  std::vector<int> mlp_hidden{32};
  nn::Activation activation = nn::Activation::kRelu;
};

// Full graph-network block with edge, node and global updates.
class GnBlock {
 public:
  GnBlock(const GnBlockConfig& config, util::Rng& rng);

  GraphVars forward(nn::Tape& tape, const GraphSpec& spec,
                    const GraphVars& in);

  // Stacked-batch forward: `in` carries bspec.batch disjoint graph copies
  // (nodes batch*N x node_in, edges batch*E x edge_in, globals
  // batch x global_in) and every output row is bit-identical to the
  // corresponding row of a per-copy forward().
  GraphVars forward_batched(nn::Tape& tape, const BatchedGraphSpec& bspec,
                            const GraphVars& in);

  std::vector<nn::Parameter*> parameters();
  std::size_t num_parameters() const;
  const GnBlockConfig& config() const { return config_; }

 private:
  GnBlockConfig config_;
  nn::Mlp edge_mlp_;    // phi_e
  nn::Mlp node_mlp_;    // phi_v
  nn::Mlp global_mlp_;  // phi_u
};

// Element-wise block: independent MLPs on nodes, edges and globals with no
// message passing (the encoder / decoder of encode-process-decode).
struct IndependentConfig {
  int node_in = 1, edge_in = 1, global_in = 1;
  int node_out = 16, edge_out = 16, global_out = 16;
  std::vector<int> mlp_hidden{32};
  nn::Activation activation = nn::Activation::kRelu;
  // Initial scale of each MLP's output layer (see
  // EncodeProcessDecodeConfig::decoder_output_scale).
  double output_scale = 1.0;
};

class IndependentBlock {
 public:
  IndependentBlock(const IndependentConfig& config, util::Rng& rng);

  GraphVars forward(nn::Tape& tape, const GraphVars& in);

  std::vector<nn::Parameter*> parameters();
  std::size_t num_parameters() const;

 private:
  IndependentConfig config_;
  nn::Mlp node_mlp_;
  nn::Mlp edge_mlp_;
  nn::Mlp global_mlp_;
};

struct EncodeProcessDecodeConfig {
  int node_in = 2;   // (sum outgoing, sum incoming) demand per vertex
  int edge_in = 1;
  int global_in = 1;
  int latent = 16;
  int steps = 3;  // message-passing iterations of the core
  int node_out = 1;
  int edge_out = 1;   // routing weight per edge (paper Eq. 5)
  int global_out = 1;
  std::vector<int> mlp_hidden{32};
  nn::Activation activation = nn::Activation::kRelu;
  // Initial scale of the decoder MLPs' output layers; policy heads use a
  // small value (e.g. 0.01) so initial actions start near zero.
  double decoder_output_scale = 1.0;
};

class EncodeProcessDecode {
 public:
  EncodeProcessDecode(const EncodeProcessDecodeConfig& config, util::Rng& rng);

  GraphVars forward(nn::Tape& tape, const GraphSpec& spec,
                    const GraphVars& in);

  // Stacked-batch forward (see GnBlock::forward_batched).  The encoder
  // and decoder are row-independent MLPs, so only the core's broadcast
  // and pooling change shape.
  GraphVars forward_batched(nn::Tape& tape, const BatchedGraphSpec& bspec,
                            const GraphVars& in);

  std::vector<nn::Parameter*> parameters();
  std::size_t num_parameters() const;
  const EncodeProcessDecodeConfig& config() const { return config_; }

 private:
  EncodeProcessDecodeConfig config_;
  IndependentBlock encoder_;
  GnBlock core_;
  IndependentBlock decoder_;
};

}  // namespace gddr::gnn
