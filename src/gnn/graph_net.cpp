#include "gnn/graph_net.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace gddr::gnn {

using nn::Mlp;
using nn::MlpConfig;
using nn::Tape;

GraphSpec GraphSpec::from(const graph::DiGraph& g) {
  GraphSpec spec;
  spec.num_nodes = g.num_nodes();
  spec.senders.reserve(static_cast<size_t>(g.num_edges()));
  spec.receivers.reserve(static_cast<size_t>(g.num_edges()));
  for (const auto& e : g.edges()) {
    spec.senders.push_back(e.src);
    spec.receivers.push_back(e.dst);
  }
  spec.ensure_plans();
  return spec;
}

void GraphSpec::ensure_plans() {
  if (senders_shared && receivers_shared && receiver_plan) return;
  senders_shared = std::make_shared<const std::vector<int>>(senders);
  receivers_shared = std::make_shared<const std::vector<int>>(receivers);
  receiver_plan = std::make_shared<const nn::kernels::SegmentPlan>(
      nn::kernels::build_segment_plan(receivers, num_nodes));
}

BatchedGraphSpec BatchedGraphSpec::from(const GraphSpec& base, int batch) {
  if (batch < 1) {
    throw std::invalid_argument("BatchedGraphSpec: batch < 1");
  }
  BatchedGraphSpec b;
  b.batch = batch;
  b.base_nodes = base.num_nodes;
  b.base_edges = base.num_edges();
  b.spec.num_nodes = batch * base.num_nodes;
  const std::size_t stacked_edges =
      static_cast<std::size_t>(batch) * base.senders.size();
  b.spec.senders.reserve(stacked_edges);
  b.spec.receivers.reserve(stacked_edges);
  std::vector<int> node_ids;
  std::vector<int> edge_ids;
  node_ids.reserve(static_cast<std::size_t>(b.spec.num_nodes));
  edge_ids.reserve(stacked_edges);
  for (int copy = 0; copy < batch; ++copy) {
    const int offset = copy * base.num_nodes;
    for (std::size_t e = 0; e < base.senders.size(); ++e) {
      b.spec.senders.push_back(base.senders[e] + offset);
      b.spec.receivers.push_back(base.receivers[e] + offset);
      edge_ids.push_back(copy);
    }
    for (int v = 0; v < base.num_nodes; ++v) node_ids.push_back(copy);
  }
  b.spec.ensure_plans();
  b.node_graph_ids =
      std::make_shared<const std::vector<int>>(std::move(node_ids));
  b.edge_graph_ids =
      std::make_shared<const std::vector<int>>(std::move(edge_ids));
  b.node_pool_plan = std::make_shared<const nn::kernels::SegmentPlan>(
      nn::kernels::build_segment_plan(*b.node_graph_ids, batch));
  b.edge_pool_plan = std::make_shared<const nn::kernels::SegmentPlan>(
      nn::kernels::build_segment_plan(*b.edge_graph_ids, batch));
  return b;
}

namespace {

MlpConfig make_mlp_config(const std::vector<int>& hidden, nn::Activation act,
                          double output_scale = 1.0) {
  MlpConfig cfg;
  cfg.hidden = hidden;
  cfg.hidden_activation = act;
  cfg.output_activation = nn::Activation::kIdentity;
  cfg.output_scale = output_scale;
  return cfg;
}

void check_graph_vars(nn::Tape& tape, const GraphSpec& spec,
                      const GraphVars& in, int node_dim, int edge_dim,
                      int global_dim, const char* who) {
  const auto& nv = tape.value(in.nodes);
  const auto& ev = tape.value(in.edges);
  const auto& gv = tape.value(in.globals);
  if (nv.rows() != spec.num_nodes || nv.cols() != node_dim ||
      ev.rows() != spec.num_edges() || ev.cols() != edge_dim ||
      gv.rows() != 1 || gv.cols() != global_dim) {
    throw std::invalid_argument(
        std::string(who) + ": graph attribute shapes " + nv.shape_str() +
        "/" + ev.shape_str() + "/" + gv.shape_str() +
        " do not match the configured sizes");
  }
}

}  // namespace

GnBlock::GnBlock(const GnBlockConfig& config, util::Rng& rng)
    : config_(config),
      edge_mlp_(config.edge_in + 2 * config.node_in + config.global_in,
                config.edge_out, make_mlp_config(config.mlp_hidden,
                                                 config.activation),
                rng),
      node_mlp_(config.edge_out + config.node_in + config.global_in,
                config.node_out, make_mlp_config(config.mlp_hidden,
                                                 config.activation),
                rng),
      global_mlp_(config.edge_out + config.node_out + config.global_in,
                  config.global_out, make_mlp_config(config.mlp_hidden,
                                                     config.activation),
                  rng) {}

GraphVars GnBlock::forward(Tape& tape, const GraphSpec& spec,
                           const GraphVars& in) {
  check_graph_vars(tape, spec, in, config_.node_in, config_.edge_in,
                   config_.global_in, "GnBlock");
  const int num_edges = spec.num_edges();

  // --- phi_e: update every edge from [e_k, v_sender, v_receiver, u] ---
  obs::ScopedTimer edge_timer("gnn/block/edge");
  // Planned specs share index vectors / the bucketed segment plan with
  // the tape by pointer; unplanned (hand-rolled) specs copy per call.
  const bool planned =
      spec.senders_shared && spec.receivers_shared && spec.receiver_plan;
  const Tape::Var sender_feats =
      planned ? tape.gather_rows(in.nodes, spec.senders_shared)
              : tape.gather_rows(in.nodes, spec.senders);
  const Tape::Var receiver_feats =
      planned ? tape.gather_rows(in.nodes, spec.receivers_shared)
              : tape.gather_rows(in.nodes, spec.receivers);
  const Tape::Var u_per_edge = tape.broadcast_rows(in.globals, num_edges);
  Tape::Var edge_input = tape.concat_cols(in.edges, sender_feats);
  edge_input = tape.concat_cols(edge_input, receiver_feats);
  edge_input = tape.concat_cols(edge_input, u_per_edge);
  const Tape::Var edges_out = edge_mlp_.forward(tape, edge_input);
  edge_timer.stop();

  // --- rho_{e->v}: aggregate updated edges at their receiver ---
  obs::ScopedTimer node_timer("gnn/block/node");
  const Tape::Var agg_edges =
      planned ? tape.segment_sum(edges_out, spec.receiver_plan)
              : tape.segment_sum(edges_out, spec.receivers, spec.num_nodes);

  // --- phi_v: update every node from [agg_edges, v_i, u] ---
  const Tape::Var u_per_node = tape.broadcast_rows(in.globals, spec.num_nodes);
  Tape::Var node_input = tape.concat_cols(agg_edges, in.nodes);
  node_input = tape.concat_cols(node_input, u_per_node);
  const Tape::Var nodes_out = node_mlp_.forward(tape, node_input);
  node_timer.stop();

  // --- rho_{e->u}, rho_{v->u}: pool everything for the global update ---
  obs::ScopedTimer global_timer("gnn/block/global");
  const Tape::Var all_edges = tape.sum_rows(edges_out);
  const Tape::Var all_nodes = tape.sum_rows(nodes_out);

  // --- phi_u ---
  Tape::Var global_input = tape.concat_cols(all_edges, all_nodes);
  global_input = tape.concat_cols(global_input, in.globals);
  const Tape::Var globals_out = global_mlp_.forward(tape, global_input);
  global_timer.stop();

  return GraphVars{nodes_out, edges_out, globals_out};
}

GraphVars GnBlock::forward_batched(Tape& tape, const BatchedGraphSpec& bspec,
                                   const GraphVars& in) {
  const GraphSpec& spec = bspec.spec;
  const auto& nv = tape.value(in.nodes);
  const auto& ev = tape.value(in.edges);
  const auto& gv = tape.value(in.globals);
  if (nv.rows() != spec.num_nodes || nv.cols() != config_.node_in ||
      ev.rows() != spec.num_edges() || ev.cols() != config_.edge_in ||
      gv.rows() != bspec.batch || gv.cols() != config_.global_in) {
    throw std::invalid_argument(
        std::string("GnBlock (batched): graph attribute shapes ") +
        nv.shape_str() + "/" + ev.shape_str() + "/" + gv.shape_str() +
        " do not match the configured sizes");
  }

  // Identical to forward() except where the single global row forces a
  // shape: broadcast_rows(globals) becomes a gather by copy id (the same
  // value copies, one row per stacked element) and the global pooling
  // sum_rows becomes a per-copy segment sum.  Each copy's rows are
  // contiguous and ascending, so the segment buckets accumulate in
  // exactly sum_rows' order — the kernel contract that keeps the batched
  // forward bit-identical.
  obs::ScopedTimer edge_timer("gnn/block/edge");
  const Tape::Var sender_feats =
      tape.gather_rows(in.nodes, spec.senders_shared);
  const Tape::Var receiver_feats =
      tape.gather_rows(in.nodes, spec.receivers_shared);
  const Tape::Var u_per_edge =
      tape.gather_rows(in.globals, bspec.edge_graph_ids);
  Tape::Var edge_input = tape.concat_cols(in.edges, sender_feats);
  edge_input = tape.concat_cols(edge_input, receiver_feats);
  edge_input = tape.concat_cols(edge_input, u_per_edge);
  const Tape::Var edges_out = edge_mlp_.forward(tape, edge_input);
  edge_timer.stop();

  obs::ScopedTimer node_timer("gnn/block/node");
  const Tape::Var agg_edges = tape.segment_sum(edges_out, spec.receiver_plan);
  const Tape::Var u_per_node =
      tape.gather_rows(in.globals, bspec.node_graph_ids);
  Tape::Var node_input = tape.concat_cols(agg_edges, in.nodes);
  node_input = tape.concat_cols(node_input, u_per_node);
  const Tape::Var nodes_out = node_mlp_.forward(tape, node_input);
  node_timer.stop();

  obs::ScopedTimer global_timer("gnn/block/global");
  const Tape::Var all_edges =
      tape.segment_sum(edges_out, bspec.edge_pool_plan);
  const Tape::Var all_nodes =
      tape.segment_sum(nodes_out, bspec.node_pool_plan);
  Tape::Var global_input = tape.concat_cols(all_edges, all_nodes);
  global_input = tape.concat_cols(global_input, in.globals);
  const Tape::Var globals_out = global_mlp_.forward(tape, global_input);
  global_timer.stop();

  return GraphVars{nodes_out, edges_out, globals_out};
}

std::vector<nn::Parameter*> GnBlock::parameters() {
  std::vector<nn::Parameter*> params = edge_mlp_.parameters();
  for (auto* p : node_mlp_.parameters()) params.push_back(p);
  for (auto* p : global_mlp_.parameters()) params.push_back(p);
  return params;
}

std::size_t GnBlock::num_parameters() const {
  return edge_mlp_.num_parameters() + node_mlp_.num_parameters() +
         global_mlp_.num_parameters();
}

IndependentBlock::IndependentBlock(const IndependentConfig& config,
                                   util::Rng& rng)
    : config_(config),
      node_mlp_(config.node_in, config.node_out,
                make_mlp_config(config.mlp_hidden, config.activation,
                                config.output_scale),
                rng),
      edge_mlp_(config.edge_in, config.edge_out,
                make_mlp_config(config.mlp_hidden, config.activation,
                                config.output_scale),
                rng),
      global_mlp_(config.global_in, config.global_out,
                  make_mlp_config(config.mlp_hidden, config.activation,
                                  config.output_scale),
                  rng) {}

GraphVars IndependentBlock::forward(Tape& tape, const GraphVars& in) {
  return GraphVars{node_mlp_.forward(tape, in.nodes),
                   edge_mlp_.forward(tape, in.edges),
                   global_mlp_.forward(tape, in.globals)};
}

std::vector<nn::Parameter*> IndependentBlock::parameters() {
  std::vector<nn::Parameter*> params = node_mlp_.parameters();
  for (auto* p : edge_mlp_.parameters()) params.push_back(p);
  for (auto* p : global_mlp_.parameters()) params.push_back(p);
  return params;
}

std::size_t IndependentBlock::num_parameters() const {
  return node_mlp_.num_parameters() + edge_mlp_.num_parameters() +
         global_mlp_.num_parameters();
}

namespace {

IndependentConfig encoder_config(const EncodeProcessDecodeConfig& c) {
  IndependentConfig cfg;
  cfg.node_in = c.node_in;
  cfg.edge_in = c.edge_in;
  cfg.global_in = c.global_in;
  cfg.node_out = cfg.edge_out = cfg.global_out = c.latent;
  cfg.mlp_hidden = c.mlp_hidden;
  cfg.activation = c.activation;
  return cfg;
}

GnBlockConfig core_config(const EncodeProcessDecodeConfig& c) {
  GnBlockConfig cfg;
  // The core consumes [encoded || previous latent] (the recurrent loop of
  // Figure 5), hence doubled input widths.
  cfg.node_in = cfg.edge_in = cfg.global_in = 2 * c.latent;
  cfg.node_out = cfg.edge_out = cfg.global_out = c.latent;
  cfg.mlp_hidden = c.mlp_hidden;
  cfg.activation = c.activation;
  return cfg;
}

IndependentConfig decoder_config(const EncodeProcessDecodeConfig& c) {
  IndependentConfig cfg;
  cfg.node_in = cfg.edge_in = cfg.global_in = c.latent;
  cfg.node_out = c.node_out;
  cfg.edge_out = c.edge_out;
  cfg.global_out = c.global_out;
  cfg.mlp_hidden = c.mlp_hidden;
  cfg.activation = c.activation;
  cfg.output_scale = c.decoder_output_scale;
  return cfg;
}

}  // namespace

EncodeProcessDecode::EncodeProcessDecode(
    const EncodeProcessDecodeConfig& config, util::Rng& rng)
    : config_(config),
      encoder_(encoder_config(config), rng),
      core_(core_config(config), rng),
      decoder_(decoder_config(config), rng) {
  if (config.steps < 1) {
    throw std::invalid_argument("EncodeProcessDecode: steps < 1");
  }
}

GraphVars EncodeProcessDecode::forward(Tape& tape, const GraphSpec& spec,
                                       const GraphVars& in) {
  obs::ScopedTimer forward_timer("gnn/forward");
  const GraphVars encoded = encoder_.forward(tape, in);
  GraphVars latent = encoded;
  for (int step = 0; step < config_.steps; ++step) {
    const GraphVars core_in{
        tape.concat_cols(encoded.nodes, latent.nodes),
        tape.concat_cols(encoded.edges, latent.edges),
        tape.concat_cols(encoded.globals, latent.globals)};
    latent = core_.forward(tape, spec, core_in);
  }
  return decoder_.forward(tape, latent);
}

GraphVars EncodeProcessDecode::forward_batched(Tape& tape,
                                               const BatchedGraphSpec& bspec,
                                               const GraphVars& in) {
  obs::ScopedTimer forward_timer("gnn/forward");
  const GraphVars encoded = encoder_.forward(tape, in);
  GraphVars latent = encoded;
  for (int step = 0; step < config_.steps; ++step) {
    const GraphVars core_in{
        tape.concat_cols(encoded.nodes, latent.nodes),
        tape.concat_cols(encoded.edges, latent.edges),
        tape.concat_cols(encoded.globals, latent.globals)};
    latent = core_.forward_batched(tape, bspec, core_in);
  }
  return decoder_.forward(tape, latent);
}

std::vector<nn::Parameter*> EncodeProcessDecode::parameters() {
  std::vector<nn::Parameter*> params = encoder_.parameters();
  for (auto* p : core_.parameters()) params.push_back(p);
  for (auto* p : decoder_.parameters()) params.push_back(p);
  return params;
}

std::size_t EncodeProcessDecode::num_parameters() const {
  return encoder_.num_parameters() + core_.num_parameters() +
         decoder_.num_parameters();
}

}  // namespace gddr::gnn
