#include "traffic/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gddr::traffic {

DemandMatrix bimodal_matrix(int num_nodes, const BimodalParams& params,
                            util::Rng& rng) {
  if (params.elephant_prob < 0.0 || params.elephant_prob > 1.0 ||
      params.pair_density < 0.0 || params.pair_density > 1.0) {
    throw std::invalid_argument("bimodal_matrix: probability out of range");
  }
  DemandMatrix dm(num_nodes);
  for (int s = 0; s < num_nodes; ++s) {
    for (int t = 0; t < num_nodes; ++t) {
      if (s == t) continue;
      if (params.pair_density < 1.0 && !rng.bernoulli(params.pair_density)) {
        continue;
      }
      const bool elephant = rng.bernoulli(params.elephant_prob);
      const double draw =
          elephant ? rng.normal(params.elephant_mean, params.elephant_stddev)
                   : rng.normal(params.mouse_mean, params.mouse_stddev);
      dm.set(s, t, std::max(0.0, draw));
    }
  }
  return dm;
}

DemandSequence cyclical_bimodal_sequence(int num_nodes, int length,
                                         int cycle_length,
                                         const BimodalParams& params,
                                         util::Rng& rng) {
  if (length < 0 || cycle_length <= 0) {
    throw std::invalid_argument("cyclical sequence: bad lengths");
  }
  DemandSequence cycle;
  cycle.reserve(static_cast<size_t>(cycle_length));
  for (int i = 0; i < cycle_length; ++i) {
    cycle.push_back(bimodal_matrix(num_nodes, params, rng));
  }
  DemandSequence out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(cycle[static_cast<size_t>(i % cycle_length)]);
  }
  return out;
}

DemandMatrix gravity_matrix(int num_nodes, const GravityParams& params,
                            util::Rng& rng) {
  DemandMatrix dm(num_nodes);
  if (num_nodes < 2) return dm;
  std::vector<double> mass(static_cast<size_t>(num_nodes));
  double mass_total = 0.0;
  for (double& m : mass) {
    m = -std::log(std::max(1e-12, 1.0 - rng.uniform()));  // Exp(1)
    mass_total += m;
  }
  // Un-normalised gravity weights sum; scale so mean entry = mean_demand.
  double weight_sum = 0.0;
  for (int s = 0; s < num_nodes; ++s) {
    for (int t = 0; t < num_nodes; ++t) {
      if (s != t) {
        weight_sum += mass[static_cast<size_t>(s)] *
                      mass[static_cast<size_t>(t)];
      }
    }
  }
  const double pairs =
      static_cast<double>(num_nodes) * static_cast<double>(num_nodes - 1);
  const double scale =
      weight_sum > 0.0 ? params.mean_demand * pairs / weight_sum : 0.0;
  for (int s = 0; s < num_nodes; ++s) {
    for (int t = 0; t < num_nodes; ++t) {
      if (s != t) {
        dm.set(s, t,
               scale * mass[static_cast<size_t>(s)] *
                   mass[static_cast<size_t>(t)]);
      }
    }
  }
  return dm;
}

DemandSequence cyclical_gravity_sequence(int num_nodes, int length,
                                         int cycle_length,
                                         const GravityParams& params,
                                         util::Rng& rng) {
  if (length < 0 || cycle_length <= 0) {
    throw std::invalid_argument("cyclical sequence: bad lengths");
  }
  DemandSequence cycle;
  cycle.reserve(static_cast<size_t>(cycle_length));
  for (int i = 0; i < cycle_length; ++i) {
    cycle.push_back(gravity_matrix(num_nodes, params, rng));
  }
  DemandSequence out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(cycle[static_cast<size_t>(i % cycle_length)]);
  }
  return out;
}

DemandSequence normalise_peak_total(DemandSequence seq, double target_total) {
  double peak = 0.0;
  for (const auto& dm : seq) peak = std::max(peak, dm.total());
  if (peak <= 0.0) return seq;
  const double factor = target_total / peak;
  for (auto& dm : seq) dm = dm.scaled(factor);
  return seq;
}

}  // namespace gddr::traffic
