#include "traffic/demand.hpp"

#include <algorithm>
#include <stdexcept>

namespace gddr::traffic {

DemandMatrix::DemandMatrix(int num_nodes)
    : n_(num_nodes),
      data_(static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes),
            0.0) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
}

void DemandMatrix::set(int s, int t, double demand) {
  if (s < 0 || s >= n_ || t < 0 || t >= n_) {
    throw std::out_of_range("DemandMatrix::set: index out of range");
  }
  if (s == t) throw std::invalid_argument("DemandMatrix: diagonal demand");
  if (demand < 0.0) throw std::invalid_argument("DemandMatrix: negative");
  data_[static_cast<size_t>(s) * static_cast<size_t>(n_) +
        static_cast<size_t>(t)] = demand;
}

DemandMatrix DemandMatrix::from_raw_unchecked(int num_nodes,
                                              std::vector<double> data) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
  const auto expected =
      static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes);
  if (data.size() != expected) {
    throw std::invalid_argument(
        "DemandMatrix::from_raw_unchecked: buffer size mismatch");
  }
  DemandMatrix out;
  out.n_ = num_nodes;
  out.data_ = std::move(data);
  return out;
}

double DemandMatrix::out_sum(int s) const {
  double sum = 0.0;
  for (int t = 0; t < n_; ++t) sum += at(s, t);
  return sum;
}

double DemandMatrix::in_sum(int t) const {
  double sum = 0.0;
  for (int s = 0; s < n_; ++s) sum += at(s, t);
  return sum;
}

double DemandMatrix::total() const {
  double sum = 0.0;
  for (double d : data_) sum += d;
  return sum;
}

double DemandMatrix::max_entry() const {
  double best = 0.0;
  for (double d : data_) best = std::max(best, d);
  return best;
}

DemandMatrix DemandMatrix::scaled(double factor) const {
  if (factor < 0.0) throw std::invalid_argument("negative scale factor");
  DemandMatrix out(n_);
  for (int s = 0; s < n_; ++s) {
    for (int t = 0; t < n_; ++t) {
      if (s != t) out.set(s, t, at(s, t) * factor);
    }
  }
  return out;
}

DemandMatrix mean_matrix(const DemandSequence& seq) {
  if (seq.empty()) return DemandMatrix(0);
  const int n = seq.front().num_nodes();
  DemandMatrix out(n);
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (s == t) continue;
      double sum = 0.0;
      for (const auto& dm : seq) {
        if (dm.num_nodes() != n) {
          throw std::invalid_argument("mean_matrix: size mismatch");
        }
        sum += dm.at(s, t);
      }
      out.set(s, t, sum / static_cast<double>(seq.size()));
    }
  }
  return out;
}

}  // namespace gddr::traffic
