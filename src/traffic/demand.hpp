// Demand matrices (paper §IV-A): D in R^{|V| x |V|}, D[s][t] is the traffic
// demand from source s to destination t.  The diagonal is always zero.
#pragma once

#include <cstddef>
#include <vector>

namespace gddr::traffic {

class DemandMatrix {
 public:
  DemandMatrix() = default;
  explicit DemandMatrix(int num_nodes);

  int num_nodes() const { return n_; }

  double at(int s, int t) const {
    return data_[static_cast<size_t>(s) * static_cast<size_t>(n_) +
                 static_cast<size_t>(t)];
  }
  // Setting a diagonal element or a negative demand is a programming error
  // and throws.
  void set(int s, int t, double demand);

  // Wraps an untrusted row-major buffer (size n*n) verbatim — entries may
  // be negative, non-finite or on the diagonal.  The serving ingress uses
  // this to hold an inbound matrix exactly as received so that
  // serve::sanitize_demands can inspect and repair it; everything past the
  // sanitiser must come from set() or from_raw_unchecked(sanitised data).
  static DemandMatrix from_raw_unchecked(int num_nodes,
                                         std::vector<double> data);

  // Row sum: total demand originating at s (paper Eq. 4 first component).
  double out_sum(int s) const;
  // Column sum: total demand destined to t (paper Eq. 4 second component).
  double in_sum(int t) const;
  // Sum of all demands.
  double total() const;
  // Largest single demand.
  double max_entry() const;

  DemandMatrix scaled(double factor) const;

  const std::vector<double>& raw() const { return data_; }

 private:
  int n_ = 0;
  std::vector<double> data_;
};

// A sequence of demand matrices, one per environment timestep.
using DemandSequence = std::vector<DemandMatrix>;

// Element-wise mean of a sequence (all matrices must share a size).
DemandMatrix mean_matrix(const DemandSequence& seq);

}  // namespace gddr::traffic
