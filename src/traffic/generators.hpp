// Traffic demand generators (paper §VIII-B).
//
// The paper evaluates on synthetic "bimodal" demand matrices arranged into
// "cyclical sequences":
//
//   * Bimodal DM: each off-diagonal entry is drawn from one of two normal
//     distributions so that a minority of pairs carry large "elephant"
//     flows.  The paper's formula reads "D_ij = p if s > 0.8 else q where
//     p ~ N(400,100), q ~ N(800,100), s ~ U(0,1)" — taken literally this
//     makes 80% of flows elephants, which contradicts the stated intent of
//     "occasional elephant flows" (and the Valadarsky et al. setup it
//     cites).  We therefore treat the elephant distribution as the
//     20%-probability branch; `BimodalParams::elephant_prob` makes the
//     split explicit and sweepable.
//
//   * Cyclical sequence: x = { D_{i mod q} }_i for a base sequence of q
//     DMs — temporal regularity the agent can exploit.
//
// A gravity-model generator (a standard TE workload) is provided as an
// extension for robustness experiments.
#pragma once

#include "traffic/demand.hpp"
#include "util/rng.hpp"

namespace gddr::traffic {

struct BimodalParams {
  double mouse_mean = 400.0;
  double mouse_stddev = 100.0;
  double elephant_mean = 800.0;
  double elephant_stddev = 100.0;
  // Probability that a pair is an elephant flow.
  double elephant_prob = 0.2;
  // Fraction of (s,t) pairs that carry any demand at all (1.0 = dense).
  double pair_density = 1.0;
};

// One bimodal demand matrix.  Negative normal draws are clamped to zero.
DemandMatrix bimodal_matrix(int num_nodes, const BimodalParams& params,
                            util::Rng& rng);

// A cyclical sequence of `length` matrices built by tiling a base cycle of
// `cycle_length` freshly drawn bimodal matrices (paper: 60 DMs, q = 10).
DemandSequence cyclical_bimodal_sequence(int num_nodes, int length,
                                         int cycle_length,
                                         const BimodalParams& params,
                                         util::Rng& rng);

struct GravityParams {
  // Node masses are drawn Exp(1) and scaled so the mean demand entry is
  // `mean_demand`.
  double mean_demand = 500.0;
};

// Gravity-model matrix: D[s][t] proportional to mass(s) * mass(t).
DemandMatrix gravity_matrix(int num_nodes, const GravityParams& params,
                            util::Rng& rng);

// Cyclical gravity sequence (same tiling as the bimodal variant).
DemandSequence cyclical_gravity_sequence(int num_nodes, int length,
                                         int cycle_length,
                                         const GravityParams& params,
                                         util::Rng& rng);

// Scales every matrix in a sequence so that peak total demand equals
// `target_total` (keeps experiments comparable across graph sizes).
DemandSequence normalise_peak_total(DemandSequence seq, double target_total);

}  // namespace gddr::traffic
