// Failure-class exception types, so callers (most importantly gddr_cli)
// can map a failure onto a distinct exit code and scripts can react to
// the failure mode instead of a generic non-zero status.
//
//  * IoError     — file-system failures: cannot open/write/rename a
//                  checkpoint or parameter file, and malformed/corrupted
//                  file contents discovered while loading.
//  * SolverError — the LP/FPTAS solver chain exhausted every fallback and
//                  could not produce a usable optimum.
//
// Both derive from std::runtime_error, so existing catch sites (and
// tests) that expect std::runtime_error keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace gddr::util {

class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

class SolverError : public std::runtime_error {
 public:
  explicit SolverError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace gddr::util
