// Crash-safe file writing.
//
// A checkpoint overwritten in place is destroyed by a crash mid-write —
// the old state is gone and the new state is half there.  Every durable
// artefact (parameter files, trainer checkpoints, bench JSON) therefore
// goes through write_file_atomic: the bytes land in `<path>.tmp`, are
// fsync'd to stable storage, and only then replace `path` via rename(2),
// which POSIX guarantees is atomic within a filesystem.  A reader of
// `path` sees either the complete old file or the complete new file,
// never a torn one.
#pragma once

#include <string>
#include <string_view>

namespace gddr::util {

// Atomically replaces `path` with `contents` (tmp + fsync + rename).
// Honours FaultSite::kCheckpointWrite (simulated I/O failure before any
// byte is written, so the previous file survives injected faults too).
// Throws util::IoError on failure; the temp file is cleaned up.
void write_file_atomic(const std::string& path, std::string_view contents);

}  // namespace gddr::util
