#include "util/sync.hpp"

#include <atomic>
#include <string>

#include "util/contract.hpp"

namespace gddr::util {
namespace {

// Monotonic count of rank-stack pushes; the compile-out proof asserts it
// stays zero in non-GDDR_CHECK builds.
std::atomic<std::uint64_t> g_ranks_tracked{0};

#if GDDR_CHECK
struct Held {
  int rank = 0;
  const char* label = nullptr;
  const void* addr = nullptr;
};

// Deeper nesting than this is a bug in its own right (the rank table has
// ~10 levels); hitting the cap throws rather than silently truncating.
constexpr int kMaxHeld = 64;

thread_local Held t_held[kMaxHeld];
thread_local int t_depth = 0;
#endif  // GDDR_CHECK

}  // namespace

std::uint64_t sync_ranks_tracked() {
  return g_ranks_tracked.load(std::memory_order_relaxed);
}

int held_lock_depth() {
#if GDDR_CHECK
  return t_depth;
#else
  return 0;
#endif
}

#if GDDR_CHECK
namespace sync_detail {

void check_acquire(int rank, const char* label, const void* addr,
                   const std::source_location& loc) {
  const std::string values_prefix =
      "acquiring=" + std::string(label) + " (rank " + std::to_string(rank) +
      ")";
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].addr == addr) {
      throw ContractViolation(
          "LOCK_RANK", "no re-entrant acquisition of a held lock",
          "util/sync/lock_rank", loc.file_name(),
          static_cast<int>(loc.line()),
          values_prefix + ", already_held=" + t_held[i].label + " (rank " +
              std::to_string(t_held[i].rank) + ")");
    }
  }
  if (t_depth > 0) {
    const Held& deepest = t_held[t_depth - 1];
    if (rank >= deepest.rank) {
      throw ContractViolation(
          "LOCK_RANK", "rank(acquiring) < rank(deepest held)",
          "util/sync/lock_rank", loc.file_name(),
          static_cast<int>(loc.line()),
          values_prefix + ", deepest_held=" + deepest.label + " (rank " +
              std::to_string(deepest.rank) + ")");
    }
  }
  if (t_depth >= kMaxHeld) {
    throw ContractViolation("LOCK_RANK", "held-lock stack within bounds",
                            "util/sync/lock_rank", loc.file_name(),
                            static_cast<int>(loc.line()),
                            values_prefix + ", depth=" +
                                std::to_string(t_depth));
  }
}

void push_acquired(int rank, const char* label, const void* addr) {
  t_held[t_depth] = Held{rank, label, addr};
  ++t_depth;
  g_ranks_tracked.fetch_add(1, std::memory_order_relaxed);
}

void pop_released(const void* addr) {
  // Guards release LIFO, but tolerate out-of-order release (legal with
  // hand-called unlock()) by removing the matching entry nearest the top.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i].addr != addr) continue;
    for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
  // Releasing a lock the detector never saw acquired: unreachable through
  // the wrappers (lock() always pushes), so nothing to unwind.
}

}  // namespace sync_detail
#endif  // GDDR_CHECK

void CondVar::wait(MutexLock& lock) {
  if (lock.mu_ == nullptr) {
    throw ContractViolation(
        "LOCK_RANK", "CondVar waits on a util::Mutex guard",
        "util/sync/condvar", __FILE__, __LINE__,
        "guard holds a SharedMutex writer lock, not a Mutex");
  }
  // Adopt the mutex the guard already holds, wait (which unlocks and
  // re-locks it), then release the adoption so the guard's destructor
  // stays the one true unlock.  The rank stack deliberately keeps the
  // mutex marked held across the wait: the waiting thread re-holds it at
  // every point it can observe, and other threads have their own stacks.
  std::unique_lock<std::mutex> adopted(lock.mu_->m_, std::adopt_lock);
  cv_.wait(adopted);
  adopted.release();
}

}  // namespace gddr::util
