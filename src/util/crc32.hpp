// CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for bit-rot
// detection in on-disk artefacts.  The checkpoint container appends one
// CRC per section so a loader can name the corrupted section instead of
// failing with an unrelated parse error deep inside it (see
// nn/serialize.hpp).  Not a cryptographic hash — it detects accidental
// corruption, not tampering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gddr::util {

// CRC32 of `size` bytes at `data`.  `seed` chains incremental updates:
// crc32(ab) == crc32(b, crc32(a)).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace gddr::util
