#include "util/contract.hpp"

namespace gddr::util {

namespace {

std::string format_message(const std::string& kind,
                           const std::string& expression,
                           const std::string& label, const std::string& file,
                           int line, const std::string& values) {
  std::string msg = kind + " violated: " + expression + " [" + label + "] (" +
                    file + ":" + std::to_string(line) + ")";
  if (!values.empty()) msg += " -- " + values;
  return msg;
}

}  // namespace

ContractViolation::ContractViolation(std::string kind, std::string expression,
                                     std::string label, std::string file,
                                     int line, std::string values)
    : std::logic_error(
          format_message(kind, expression, label, file, line, values)),
      kind_(std::move(kind)),
      expression_(std::move(expression)),
      label_(std::move(label)),
      file_(std::move(file)),
      line_(line),
      values_(std::move(values)) {}

namespace contract {

namespace detail {

std::atomic<std::uint64_t> g_checks_evaluated{0};

void fail(const char* kind, const char* expression, std::string_view label,
          const char* file, int line, const std::string& values) {
  throw ContractViolation(kind, expression, std::string(label), file, line,
                          values);
}

}  // namespace detail

void violate_invariant(std::string_view check, std::string_view label,
                       std::string values, std::source_location loc) {
  throw ContractViolation("INVARIANT", std::string(check), std::string(label),
                          loc.file_name(), static_cast<int>(loc.line()),
                          std::move(values));
}

std::uint64_t checks_evaluated() {
  return detail::g_checks_evaluated.load(std::memory_order_relaxed);
}

void reset_checks_evaluated() {
  detail::g_checks_evaluated.store(0, std::memory_order_relaxed);
}

template <typename T>
static std::optional<std::size_t> first_nonfinite_impl(
    std::span<const T> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> first_nonfinite(std::span<const double> values) {
  return first_nonfinite_impl(values);
}

std::optional<std::size_t> first_nonfinite(std::span<const float> values) {
  return first_nonfinite_impl(values);
}

bool row_stochastic(std::span<const double> row, double tol,
                    double* sum_out) {
  double sum = 0.0;
  bool entries_ok = true;
  for (const double v : row) {
    if (!(v >= -tol && v <= 1.0 + tol)) entries_ok = false;
    sum += v;
  }
  if (sum_out != nullptr) *sum_out = sum;
  return entries_ok && std::abs(sum - 1.0) <= tol;
}

}  // namespace contract
}  // namespace gddr::util
