// Debug-contract invariant layer (machine-checked correctness).
//
// GDDR's correctness rests on mathematical invariants the type system
// cannot express: splitting ratios must be row-stochastic, pruned routing
// graphs must stay DAGs, the simplex tableau must keep a valid basis, tape
// backward must respect topological order.  This header provides the
// contract macros every subsystem states those invariants with, plus the
// violation type and small numeric predicates the per-subsystem
// `*_invariants` validators share.
//
// Three macro kinds, by contract taxonomy (see DESIGN.md §9):
//
//  * GDDR_REQUIRE(cond, label, ...)    — precondition on inputs a caller
//                                        controls; a violation means the
//                                        *caller* broke the contract.
//  * GDDR_ENSURE(cond, label, ...)     — postcondition on produced results;
//                                        a violation means *this* function
//                                        computed something impossible.
//  * GDDR_INVARIANT(cond, label, ...)  — mid-computation consistency that
//                                        must hold at a program point
//                                        regardless of inputs.
//  * GDDR_VALIDATE(expr)               — runs a (possibly expensive)
//                                        throwing validator from one of the
//                                        `*_invariants` modules.
//
// All four compile to `((void)0)` unless the build sets -DGDDR_CHECK=ON:
// the condition, the label and every value expression are *not evaluated*
// in Release, so contracts are zero-overhead (tests/test_contract.cpp
// proves this via the evaluation counter below and a side-effect probe).
//
// On violation a ContractViolation is thrown carrying the macro kind, the
// stringised expression, the hierarchical label path ("lp/phase1/rhs"),
// the source location, and the offending values formatted from the
// optional trailing name/value pairs:
//
//   GDDR_ENSURE(sum > 0.0, "routing/softmin/row", "sum", sum, "t", t);
//
// Labels follow the same slash-path taxonomy as obs metrics so a failing
// contract names the subsystem and the specific check.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <source_location>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace gddr::util {

// Thrown by a failed contract.  Derives from std::logic_error (a broken
// invariant is a programming error, not an environmental condition), so
// nothing in the solver fallback / fault-tolerance machinery — which
// catches std::runtime_error subclasses — ever swallows one.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string kind, std::string expression,
                    std::string label, std::string file, int line,
                    std::string values);

  const std::string& kind() const { return kind_; }
  const std::string& expression() const { return expression_; }
  const std::string& label() const { return label_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }
  const std::string& values() const { return values_; }

 private:
  std::string kind_;
  std::string expression_;
  std::string label_;
  std::string file_;
  int line_;
  std::string values_;
};

namespace contract {

// True in builds configured with -DGDDR_CHECK=ON.
constexpr bool enabled() {
#if GDDR_CHECK
  return true;
#else
  return false;
#endif
}

// Number of contract checks evaluated since process start (or the last
// reset).  Stays at zero for the whole process in a non-GDDR_CHECK build —
// the zero-overhead proof tests assert exactly that.
std::uint64_t checks_evaluated();
void reset_checks_evaluated();

namespace detail {
extern std::atomic<std::uint64_t> g_checks_evaluated;
inline void note_check() {
  g_checks_evaluated.fetch_add(1, std::memory_order_relaxed);
}
[[noreturn]] void fail(const char* kind, const char* expression,
                       std::string_view label, const char* file, int line,
                       const std::string& values);
}  // namespace detail

// Formats trailing name/value pairs into "a=1, b=2.5".  Doubles keep
// enough digits to reproduce the offending value exactly.
inline std::string describe() { return {}; }
template <typename V, typename... Rest>
std::string describe(std::string_view name, const V& value, Rest&&... rest) {
  std::ostringstream os;
  os.precision(17);
  os << name << '=' << value;
  if constexpr (sizeof...(rest) > 0) {
    os << ", " << describe(std::forward<Rest>(rest)...);
  }
  return std::move(os).str();
}

// Failure entry point for the `*_invariants` validator modules: throws a
// ContractViolation of kind INVARIANT describing the broken `check` at the
// caller's source location.
[[noreturn]] void violate_invariant(
    std::string_view check, std::string_view label, std::string values,
    std::source_location loc = std::source_location::current());

// --- shared numeric predicates -------------------------------------------
// Used both by the contract macros at instrumentation sites and by the
// per-subsystem validators; always compiled (they are plain functions).

// Index of the first NaN/Inf entry, or nullopt when all values are finite.
std::optional<std::size_t> first_nonfinite(std::span<const double> values);
std::optional<std::size_t> first_nonfinite(std::span<const float> values);

// True when the row sums to 1 within `tol` and every entry lies in
// [-tol, 1 + tol].  `sum_out` (optional) receives the actual sum so a
// violation message can show it.
bool row_stochastic(std::span<const double> row, double tol,
                    double* sum_out = nullptr);

}  // namespace contract
}  // namespace gddr::util

#if GDDR_CHECK

#define GDDR_CONTRACT_CHECK_(kind_, cond_, label_, ...)                     \
  do {                                                                      \
    ::gddr::util::contract::detail::note_check();                           \
    if (!(cond_)) {                                                         \
      ::gddr::util::contract::detail::fail(                                 \
          kind_, #cond_, (label_), __FILE__, __LINE__,                      \
          ::gddr::util::contract::describe(__VA_ARGS__));                   \
    }                                                                       \
  } while (false)

#define GDDR_REQUIRE(cond_, /*label, name/value pairs*/...) \
  GDDR_CONTRACT_CHECK_("REQUIRE", cond_, __VA_ARGS__)
#define GDDR_ENSURE(cond_, ...) \
  GDDR_CONTRACT_CHECK_("ENSURE", cond_, __VA_ARGS__)
#define GDDR_INVARIANT(cond_, ...) \
  GDDR_CONTRACT_CHECK_("INVARIANT", cond_, __VA_ARGS__)

// Runs `expr` — typically a call into a `*_invariants` validator that
// throws ContractViolation itself — only in checked builds.
#define GDDR_VALIDATE(...)                        \
  do {                                            \
    ::gddr::util::contract::detail::note_check(); \
    __VA_ARGS__;                                  \
  } while (false)

#else  // !GDDR_CHECK: contracts compile out entirely; arguments are never
       // evaluated, so checks may be arbitrarily expensive.

#define GDDR_REQUIRE(...) ((void)0)
#define GDDR_ENSURE(...) ((void)0)
#define GDDR_INVARIANT(...) ((void)0)
#define GDDR_VALIDATE(...) ((void)0)

#endif  // GDDR_CHECK
