#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gddr::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  // Clamp p into [0, 100] (NaN-safe: !(p >= 0) also catches NaN).  An
  // out-of-range p used to flow into the size_t cast below — negative
  // rank is UB in the conversion and p > 100 indexed past the buffer.
  if (!(p >= 0.0)) {
    p = 0.0;
  } else if (p > 100.0) {
    p = 100.0;
  }
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

std::vector<double> moving_average(const std::vector<double>& v,
                                   std::size_t window) {
  if (v.empty()) return {};
  window = std::max<std::size_t>(1, std::min(window, v.size()));
  std::vector<double> out(v.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    if (i >= window) acc -= v[i - window];
    const std::size_t n = std::min(i + 1, window);
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

}  // namespace gddr::util
