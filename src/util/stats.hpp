// Streaming statistics accumulators used by benches and evaluation loops.
#pragma once

#include <cstddef>
#include <vector>

namespace gddr::util {

// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Half-width of an approximate 95% confidence interval on the mean.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (linear interpolation between order statistics).
// `p` in [0, 100].  Returns 0 for an empty sample.
double percentile(std::vector<double> samples, double p);

// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& v);

// Simple moving average smoothing with the given window (used for learning
// curves).  Window is clamped to the series length.
std::vector<double> moving_average(const std::vector<double>& v,
                                   std::size_t window);

}  // namespace gddr::util
