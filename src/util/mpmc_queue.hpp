// Bounded multi-producer multi-consumer FIFO for the serving engine.
//
// Mutex-plus-condvar rather than a lock-free ring: a serving queue op
// brackets a full routing decision (policy forward, translation,
// simulation — tens of microseconds at best), so queue synchronisation is
// nowhere near the critical path, and a mutex keeps the semantics the
// admission controller needs — bounded capacity, close-and-drain
// shutdown, and predicate eviction for deadline-based load shedding —
// trivially correct.
//
// Push never blocks: a full queue is the caller's signal to shed load
// (serve::Engine's admission control), not to wait.  Pop blocks until an
// item arrives or the queue is closed and drained, which gives workers a
// natural shutdown: close() wakes everyone, and pop() keeps returning
// queued items until none remain.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "util/sync.hpp"

namespace gddr::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Enqueues `item`; false (item untouched in the moved-from sense only
  // on success) when the queue is full or closed.
  bool try_push(T&& item) GDDR_EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // fully drained (false).
  bool pop(T& out) GDDR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!pop_ready_locked()) ready_.wait(lock);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Non-blocking pop; false when the queue is currently empty.
  bool try_pop(T& out) GDDR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Removes the first (oldest) queued item satisfying `pred`, handing it
  // to the caller — the shedding hook: on a full queue the admission
  // controller evicts the oldest already-expired item to make room.
  // False when nothing matches.
  template <typename Pred>
  bool evict_first_if(Pred pred, T& out) GDDR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (pred(*it)) {
        out = std::move(*it);
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  // Rejects future pushes and wakes every blocked pop; already-queued
  // items stay poppable (close-and-drain shutdown).
  void close() GDDR_EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const GDDR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const GDDR_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  // True when a blocked pop should stop waiting: an item to hand out, or
  // close-and-drain in progress.
  bool pop_ready_locked() const GDDR_REQUIRES(mu_) {
    return closed_ || !items_.empty();
  }

  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kMpmcQueue, "util/mpmc_queue"};
  CondVar ready_;
  std::deque<T> items_ GDDR_GUARDED_BY(mu_);
  bool closed_ GDDR_GUARDED_BY(mu_) = false;
};

}  // namespace gddr::util
