// Capability-annotated synchronization primitives + lock-rank discipline.
//
// Every mutex in GDDR goes through the wrappers in this header, for two
// layered guarantees (DESIGN.md §13):
//
//  * Compile-time: on Clang the wrappers carry -Wthread-safety capability
//    attributes (via the GDDR_CAPABILITY / GDDR_GUARDED_BY / GDDR_REQUIRES
//    / ... macros below, no-ops on GCC), so a read of a guarded member
//    without its lock, a missing unlock on an exit path, or a function
//    called without its REQUIRES capability is a build error — the CI
//    thread-safety leg compiles src/ with -Werror=thread-safety
//    -Werror=thread-safety-beta.
//  * Runtime (GDDR_CHECK=ON only): every Mutex/SharedMutex is constructed
//    with a LockRank and a label.  A thread-local stack of held ranks
//    rejects any acquisition whose rank is >= the most recently acquired
//    held rank (ranks must strictly decrease along an acquisition chain:
//    outermost locks have the highest rank), and any re-entry of a held
//    lock, by throwing util::ContractViolation naming both locks.  A
//    potential deadlock — which in production needs two threads and an
//    unlucky interleaving — becomes a deterministic single-interleaving
//    test failure.  In non-GDDR_CHECK builds the wrappers are plain
//    std::mutex / std::shared_mutex pass-throughs with zero bookkeeping
//    (proved by the sync_ranks_tracked() probe in tests/test_sync.cpp and
//    the Release bench gates).
//
// The canonical rank table lives in LockRank below and in DESIGN.md §13.
// Two locks of equal rank can never be held together (this is what makes
// the per-class ranks a total order), so classes whose instances nest
// with each other need distinct ranks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <source_location>

// --- Clang thread-safety annotation macros --------------------------------
// Standard attribute spellings from the Clang thread-safety documentation;
// expand to nothing on compilers without the analysis (GCC).
#if defined(__clang__)
#define GDDR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GDDR_THREAD_ANNOTATION_(x)
#endif

// Marks a class as a lockable capability ("mutex" / "shared mutex").
#define GDDR_CAPABILITY(x) GDDR_THREAD_ANNOTATION_(capability(x))
// Marks an RAII guard whose constructor acquires and destructor releases.
#define GDDR_SCOPED_CAPABILITY GDDR_THREAD_ANNOTATION_(scoped_lockable)
// Data member readable/writable only with the named capability held.
#define GDDR_GUARDED_BY(x) GDDR_THREAD_ANNOTATION_(guarded_by(x))
// Pointer member whose *pointee* is guarded by the named capability.
#define GDDR_PT_GUARDED_BY(x) GDDR_THREAD_ANNOTATION_(pt_guarded_by(x))
// Function acquires/releases the capability (empty argument list = `this`).
#define GDDR_ACQUIRE(...) \
  GDDR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define GDDR_ACQUIRE_SHARED(...) \
  GDDR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define GDDR_RELEASE(...) \
  GDDR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define GDDR_RELEASE_SHARED(...) \
  GDDR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
// Caller must already hold the capability (exclusively / at least shared).
#define GDDR_REQUIRES(...) \
  GDDR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define GDDR_REQUIRES_SHARED(...) \
  GDDR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
// Caller must NOT hold the capability (the function acquires it itself);
// catches self-deadlock on non-recursive mutexes at compile time.
#define GDDR_EXCLUDES(...) GDDR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Function returns a reference to the named capability.
#define GDDR_RETURN_CAPABILITY(x) GDDR_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch — disables the analysis for one function.  Every use must
// carry a comment explaining why the access is safe.
#define GDDR_NO_THREAD_SAFETY_ANALYSIS \
  GDDR_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace gddr::util {

// Canonical lock ranks, outermost (acquired first) = highest.  While a
// thread holds a lock of rank R, it may only acquire locks of rank
// strictly less than R.  The table mirrors the real acquisition chains:
// e.g. serve::Engine::shutdown() holds the engine lifecycle lock while
// closing the MPMC queue, and the circuit breaker / topology cache /
// optimal cache each export obs:: counters while holding their own lock.
enum class LockRank : int {
  kEngine = 90,         // serve::Engine lifecycle (poll/shutdown/stats)
  kPromoter = 88,       // lifecycle::Promoter state machine (holds its
                        //   lock while loading from the model registry,
                        //   scoring shadow mirrors and installing
                        //   policies into the engine slot)
  kModelRegistry = 86,  // lifecycle::ModelRegistry manifest + store
  kEnginePolicy = 85,   // serve::Engine policy slot (live/candidate
                        //   pointers workers re-read between batches)
  kPolicySlot = 84,     // lifecycle::PolicySlot published-policy cell
  kShadowEval = 82,     // lifecycle::ShadowEvaluator stats + mirror
                        //   router (holds its lock across a candidate
                        //   decide(), which nests the topo cache /
                        //   breaker / obs registry below)
  kBatcher = 80,        // reserved: serve::Batcher is per-worker state
                        //   today (unsynchronised by design); rank held
                        //   for when it grows a lock
  kMpmcQueue = 70,      // util::MpmcQueue (serving admission queue)
  kOptimalCache = 60,   // mcf::OptimalCache LRU index
  kTopologyCache = 50,  // serve::TopologyCache LRU index
  kCircuitBreaker = 40, // serve::CircuitBreaker state machine
  kLastGood = 35,       // serve::TopologyEntry::LastGood box
  kFaultInjector = 30,  // util::FaultInjector schedules
  kRegistry = 20,       // obs::Registry metric maps (innermost shared
                        //   lock: everything above records metrics)
  kThreadPool = 10,     // util::ThreadPool task queue (leaf)
};

// True in builds configured with -DGDDR_CHECK=ON — the same switch as the
// debug-contract layer (util/contract.hpp), so one CI leg exercises both.
constexpr bool lock_rank_checking_enabled() {
#if GDDR_CHECK
  return true;
#else
  return false;
#endif
}

// Number of rank-stack pushes since process start.  Stays at exactly zero
// for the whole process in a non-GDDR_CHECK build — the compile-out proof
// in tests/test_sync.cpp asserts that after a locking workout.
std::uint64_t sync_ranks_tracked();

// Number of locks the calling thread currently holds according to the
// rank detector (always 0 when checking is compiled out).  Test hook.
int held_lock_depth();

namespace sync_detail {
#if GDDR_CHECK
// Validates `rank` against the calling thread's held-rank stack; throws
// ContractViolation (never returns normally on violation).  Called before
// the underlying lock so a rejected acquisition leaves the mutex untouched.
void check_acquire(int rank, const char* label, const void* addr,
                   const std::source_location& loc);
// Pushes after the underlying lock succeeded / pops at unlock.
void push_acquired(int rank, const char* label, const void* addr);
void pop_released(const void* addr);
#endif
}  // namespace sync_detail

class CondVar;

// Exclusive mutex with a documented rank.  Plain std::mutex pass-through
// unless GDDR_CHECK is on.
class GDDR_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* label) noexcept
      : rank_(static_cast<int>(rank)), label_(label) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(const std::source_location& loc =
                std::source_location::current()) GDDR_ACQUIRE() {
#if GDDR_CHECK
    sync_detail::check_acquire(rank_, label_, this, loc);
    m_.lock();
    sync_detail::push_acquired(rank_, label_, this);
#else
    (void)loc;
    m_.lock();
#endif
  }

  void unlock() GDDR_RELEASE() {
#if GDDR_CHECK
    sync_detail::pop_released(this);
#endif
    m_.unlock();
  }

  int rank() const { return rank_; }
  const char* label() const { return label_; }

 private:
  friend class CondVar;
  std::mutex m_;
  const int rank_;
  const char* const label_;
};

// Reader/writer mutex with a documented rank.  Shared acquisitions
// participate in rank checking exactly like exclusive ones (a reader
// blocking behind a writer deadlocks just as hard).
class GDDR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* label) noexcept
      : rank_(static_cast<int>(rank)), label_(label) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock(const std::source_location& loc =
                std::source_location::current()) GDDR_ACQUIRE() {
#if GDDR_CHECK
    sync_detail::check_acquire(rank_, label_, this, loc);
    m_.lock();
    sync_detail::push_acquired(rank_, label_, this);
#else
    (void)loc;
    m_.lock();
#endif
  }

  void unlock() GDDR_RELEASE() {
#if GDDR_CHECK
    sync_detail::pop_released(this);
#endif
    m_.unlock();
  }

  void lock_shared(const std::source_location& loc =
                       std::source_location::current()) GDDR_ACQUIRE_SHARED() {
#if GDDR_CHECK
    sync_detail::check_acquire(rank_, label_, this, loc);
    m_.lock_shared();
    sync_detail::push_acquired(rank_, label_, this);
#else
    (void)loc;
    m_.lock_shared();
#endif
  }

  void unlock_shared() GDDR_RELEASE_SHARED() {
#if GDDR_CHECK
    sync_detail::pop_released(this);
#endif
    m_.unlock_shared();
  }

  int rank() const { return rank_; }
  const char* label() const { return label_; }

 private:
  std::shared_mutex m_;
  const int rank_;
  const char* const label_;
};

// RAII exclusive guard over a Mutex or (writer side) a SharedMutex.
class GDDR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     const std::source_location& loc =
                         std::source_location::current()) GDDR_ACQUIRE(mu)
      : mu_(&mu) {
    mu.lock(loc);
  }
  explicit MutexLock(SharedMutex& mu,
                     const std::source_location& loc =
                         std::source_location::current()) GDDR_ACQUIRE(mu)
      : smu_(&mu) {
    mu.lock(loc);
  }
  ~MutexLock() GDDR_RELEASE() {
    if (mu_ != nullptr) {
      mu_->unlock();
    } else {
      smu_->unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_ = nullptr;
  SharedMutex* smu_ = nullptr;
};

// RAII shared (reader) guard over a SharedMutex.
class GDDR_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu,
                      const std::source_location& loc =
                          std::source_location::current())
      GDDR_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu.lock_shared(loc);
  }
  ~SharedLock() GDDR_RELEASE() { mu_->unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex* mu_;
};

// Condition variable paired with util::Mutex via its MutexLock guard.
// wait() adopts the already-held std::mutex underneath (keeping plain
// std::condition_variable performance rather than condition_variable_any),
// so the rank detector's view — the waiter holds the mutex for the whole
// guard scope — matches what the waiting thread observes on every return.
// Predicate loops are written by callers as explicit `while (!pred_locked())
// wait(lock);` with a GDDR_REQUIRES-annotated predicate, which keeps the
// guarded reads visible to the thread-safety analysis (a lambda predicate
// would not be).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `lock`'s mutex and blocks until notified (or
  // spuriously woken); the mutex is re-held on return.  `lock` must guard
  // a util::Mutex — waiting on a SharedMutex writer lock is rejected with
  // a ContractViolation.
  void wait(MutexLock& lock);

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gddr::util
