#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace gddr::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

}  // namespace gddr::util
