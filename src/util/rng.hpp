// Seedable, reproducible random number generation for all of GDDR.
//
// Every source of randomness in the library (traffic generation, topology
// mutation, policy initialisation, PPO exploration) flows through util::Rng
// so that experiments are exactly reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gddr::util {

// xoshiro256++ generator seeded via splitmix64.  Small, fast, and good
// statistical quality; we deliberately avoid std::mt19937 so that streams
// are identical across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double normal();

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  // Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream (for parallel components that must
  // not share state yet must stay reproducible).
  Rng split();

  // Complete generator state, for checkpoint/resume: the xoshiro words
  // plus the Box-Muller cache (dropping the cached normal would desync a
  // resumed stream by one normal() draw).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gddr::util
