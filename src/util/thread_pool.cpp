#include "util/thread_pool.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gddr::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) return;  // inline pool
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // inline pool: run on the calling thread
    return future;
  }
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!wake_ready_locked()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the associated future
  }
}

int default_worker_count() {
  if (const char* env = std::getenv("GDDR_WORKERS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int consume_workers_flag(int& argc, char** argv) {
  int workers = default_worker_count();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    int consumed = 0;
    if (arg == "--workers") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--workers expects a value");
      }
      value = argv[i + 1];
      consumed = 2;
    } else if (arg.rfind("--workers=", 0) == 0) {
      value = arg.substr(10);
      consumed = 1;
    } else {
      continue;
    }
    const long parsed = std::strtol(value.c_str(), nullptr, 10);
    if (parsed <= 0) {
      throw std::invalid_argument("--workers expects a positive integer");
    }
    workers = static_cast<int>(parsed);
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    break;
  }
  return workers;
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool->submit([&fn, i] { fn(i); }));
  }
  // Wait for everything before rethrowing so no task is left touching
  // caller state after parallel_for returns.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gddr::util
