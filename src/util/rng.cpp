#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace gddr::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation, simplified: rejection
  // sampling on the top bits keeps the distribution exactly uniform.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(n);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

Rng::State Rng::state() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[static_cast<std::size_t>(i)] = s_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[static_cast<std::size_t>(i)];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace gddr::util
