#include "util/fault.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/error.hpp"

namespace gddr::util {
namespace {

constexpr const char* kSiteNames[] = {
    "lp_solve",
    "ckpt_write",
    "nan_grad",
    "train_abort",
    "policy_nan",
    "policy_slow",
    "topo_change",
    "request_garbage",
    "registry_publish",
    "shadow_diverge",
    "candidate_nan",
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) ==
              static_cast<std::size_t>(FaultSite::kSiteCount));

int site_index(FaultSite site) { return static_cast<int>(site); }

FaultSite site_from_name(const std::string& name, const std::string& entry) {
  for (int i = 0; i < static_cast<int>(FaultSite::kSiteCount); ++i) {
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  }
  // The site population keeps growing PR over PR; an operator staring at
  // a typo should not have to open this file to learn what is valid.
  std::string valid;
  for (int i = 0; i < static_cast<int>(FaultSite::kSiteCount); ++i) {
    if (i > 0) valid += ", ";
    valid += kSiteNames[i];
  }
  throw IoError("FaultInjector: unknown fault site '" + name +
                "' in entry '" + entry + "' (valid sites: " + valid + ")");
}

long parse_long(const std::string& text, const std::string& entry) {
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || value <= 0) {
    throw IoError("FaultInjector: bad count/seed token '" + text +
                  "' in entry '" + entry + "'");
  }
  return value;
}

}  // namespace

const char* to_string(FaultSite site) { return kSiteNames[site_index(site)]; }

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& spec) {
  // Parse into fresh schedules first so a malformed spec leaves the
  // injector untouched.
  Schedule parsed[static_cast<int>(FaultSite::kSiteCount)];
  bool any = false;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      // An empty clause ("a@1,,b@2", trailing/leading comma) is a typo that
      // would otherwise silently arm less than the operator asked for.
      throw IoError("FaultInjector: empty clause in spec '" + spec + "'");
    }

    Schedule schedule;
    std::string site_name;
    if (const std::size_t at = entry.find('@'); at != std::string::npos) {
      site_name = entry.substr(0, at);
      std::string count = entry.substr(at + 1);
      if (!count.empty() && count.back() == '+') {
        schedule.mode = Mode::kFromNth;
        count.pop_back();
      } else {
        schedule.mode = Mode::kNth;
      }
      schedule.n = parse_long(count, entry);
    } else if (const std::size_t tilde = entry.find('~');
               tilde != std::string::npos) {
      site_name = entry.substr(0, tilde);
      const std::string rest = entry.substr(tilde + 1);
      const std::size_t slash = rest.find('/');
      if (slash == std::string::npos) {
        throw IoError(
            "FaultInjector: probabilistic entry needs an explicit seed "
            "('site~p/seed'): '" +
            entry + "'");
      }
      schedule.mode = Mode::kProbability;
      const std::string prob = rest.substr(0, slash);
      std::size_t used = 0;
      try {
        schedule.p = std::stod(prob, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != prob.size() || schedule.p < 0.0 || schedule.p > 1.0) {
        throw IoError("FaultInjector: bad probability token '" + prob +
                      "' (need [0,1]) in entry '" + entry + "'");
      }
      schedule.rng = Rng(static_cast<std::uint64_t>(
          parse_long(rest.substr(slash + 1), entry)));
    } else {
      throw IoError("FaultInjector: entry needs '@n', '@n+' or '~p/seed': '" +
                    entry + "'");
    }

    const FaultSite site = site_from_name(site_name, entry);
    parsed[site_index(site)] = schedule;
    any = true;
  }

  const MutexLock lock(mutex_);
  for (int i = 0; i < static_cast<int>(FaultSite::kSiteCount); ++i) {
    schedules_[i] = parsed[i];
  }
  enabled_.store(any, std::memory_order_relaxed);
}

void FaultInjector::arm_from_env() {
  if (const char* spec = std::getenv("GDDR_FAULTS")) arm(spec);
}

void FaultInjector::disarm() { arm(""); }

bool FaultInjector::fire(FaultSite site) {
  const MutexLock lock(mutex_);
  Schedule& schedule = schedules_[site_index(site)];
  ++schedule.hits;
  bool fires = false;
  switch (schedule.mode) {
    case Mode::kOff:
      break;
    case Mode::kNth:
      fires = schedule.hits == schedule.n;
      break;
    case Mode::kFromNth:
      fires = schedule.hits >= schedule.n;
      break;
    case Mode::kProbability:
      fires = schedule.rng.bernoulli(schedule.p);
      break;
  }
  if (fires) ++schedule.fired;
  return fires;
}

long FaultInjector::hits(FaultSite site) const {
  const MutexLock lock(mutex_);
  return schedules_[site_index(site)].hits;
}

long FaultInjector::fired(FaultSite site) const {
  const MutexLock lock(mutex_);
  return schedules_[site_index(site)].fired;
}

}  // namespace gddr::util
