// Fixed-width ASCII table printing for bench harness output.
//
// Benches print the same rows/series the paper's figures plot; a uniform
// table format keeps bench output diffable and easy to copy into
// EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace gddr::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Add a row; each cell is already formatted.  Row length must match the
  // header length.
  void add_row(std::vector<std::string> cells);

  // Render with column widths fitted to content.
  std::string to_string() const;

  // Render to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with fixed precision (default 4 digits).
std::string fmt(double x, int precision = 4);

}  // namespace gddr::util
