#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace gddr::util {
namespace {

void remove_quietly(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view contents) {
  if (inject(FaultSite::kCheckpointWrite)) {
    throw IoError("write_file_atomic: fault-injected I/O error for " + path);
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw IoError("write_file_atomic: cannot open " + tmp + ": " +
                  std::strerror(errno));
  }

  const char* data = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      remove_quietly(tmp);
      throw IoError("write_file_atomic: write to " + tmp + " failed: " +
                    std::strerror(err));
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }

  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    remove_quietly(tmp);
    throw IoError("write_file_atomic: fsync of " + tmp + " failed: " +
                  std::strerror(err));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    remove_quietly(tmp);
    throw IoError("write_file_atomic: close of " + tmp + " failed: " +
                  std::strerror(err));
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quietly(tmp);
    throw IoError("write_file_atomic: rename " + tmp + " -> " + path +
                  " failed: " + ec.message());
  }
}

}  // namespace gddr::util
