// Fixed-size thread pool with deterministic fan-out helpers.
//
// The pool is the substrate for every parallel loop in GDDR (vectorised
// rollout collection, per-scenario evaluation, bench sweeps).  Design
// constraints, in order:
//
//  * Determinism.  parallel_for / parallel_map assign work by index and
//    collect results into index-addressed slots, so the *values* produced
//    are independent of thread interleaving; callers get bit-identical
//    output for any worker count as long as each task only touches its own
//    slot.  There is deliberately no work stealing — tasks are popped from
//    one FIFO queue, which keeps the execution model simple to reason
//    about and the determinism contract easy to audit.
//  * Inline degradation.  A pool of size <= 1 runs every task on the
//    calling thread at submit time, with no queue and no synchronisation,
//    so `--workers 1` exercises the exact serial code path.
//  * Exception transparency.  The first exception thrown by a task is
//    rethrown from the waiting parallel_for / parallel_map call.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace gddr::util {

class ThreadPool {
 public:
  // `num_threads` <= 1 creates an inline pool (no worker threads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (0 for an inline pool).
  int size() const { return static_cast<int>(workers_.size()); }

  // Schedules `task`; returns a future that completes when it ran (or
  // carries its exception).  Inline pools run the task immediately.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  // True when a worker should wake: work to pop, or shutdown in progress.
  bool wake_ready_locked() const GDDR_REQUIRES(mutex_) {
    return stopping_ || !queue_.empty();
  }

  // Immutable after construction (workers never join or spawn mid-life),
  // so size() reads it without the lock.
  std::vector<std::thread> workers_;
  Mutex mutex_{LockRank::kThreadPool, "util/thread_pool"};
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ GDDR_GUARDED_BY(mutex_);
  bool stopping_ GDDR_GUARDED_BY(mutex_) = false;
};

// Number of workers to use by default: the GDDR_WORKERS environment
// variable when set to a positive integer, else hardware_concurrency()
// (else 1 when even that is unknown).
int default_worker_count();

// Scans argv for "--workers N" (or "--workers=N"), removing the flag from
// argc/argv so command-specific parsing never sees it.  Returns N, or
// `default_worker_count()` when the flag is absent.  Throws
// std::invalid_argument on a malformed value.
int consume_workers_flag(int& argc, char** argv);

// Runs fn(i) for every i in [0, n).  Blocks until all iterations finished;
// rethrows the first exception.  `pool` may be null (serial execution).
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

// Maps fn over [0, n), collecting results in index order — the output is
// identical to the serial {fn(0), fn(1), ...} for any worker count.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace gddr::util
