// Deterministic fault injection for recovery-path testing.
//
// Production code marks its recoverable failure points with
// `util::inject(FaultSite::...)`; the call returns true when the armed
// fault schedule says this hit should fail, and the surrounding code then
// takes its real failure path (LP fallback, checkpoint I/O error,
// gradient rollback) exactly as it would for an organic fault.  Tests and
// operators arm the injector to *prove* every recovery path fires.
//
// Determinism: schedules are either hit-count-based ("fire on the 3rd
// occurrence of this site") or probability-based with an explicit seed
// (xoshiro stream private to the site), so an injected run is a pure
// function of (program inputs, fault spec) — rerunning reproduces the
// same faults at the same points.
//
// Zero overhead when disabled: `inject` first reads one relaxed atomic
// flag that is false unless a spec is armed; no lock, no map lookup, no
// counter update happens on the disabled path.
//
// Spec grammar (env var GDDR_FAULTS or FaultInjector::arm):
//   spec    := entry (',' entry)*
//   entry   := site '@' N        fire on exactly the Nth hit (1-based)
//            | site '@' N '+'    fire on every hit from the Nth onward
//            | site '~' P '/' S  fire each hit with probability P, seeded S
//   site    := lp_solve | ckpt_write | nan_grad | train_abort
//            | policy_nan | policy_slow | topo_change | request_garbage
//            | registry_publish | shadow_diverge | candidate_nan
// Example: GDDR_FAULTS="lp_solve@3,nan_grad@2+" fails the 3rd LP solve
// and every gradient computation from the 2nd onward.
//
// A malformed spec — unknown site, bad '@N'/'~P/S' token, empty clause —
// is a hard util::IoError naming the offending token: a fault schedule
// that silently fails to arm would make an operator believe a recovery
// path was rehearsed when it never ran.  The empty spec "" still disarms.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/rng.hpp"
#include "util/sync.hpp"

namespace gddr::util {

enum class FaultSite : int {
  kLpSolve = 0,       // mcf::solve_optimal simplex failure
  kCheckpointWrite,   // util::write_file_atomic I/O failure
  kNanGradient,       // rl::PpoTrainer gradient poisoning
  kTrainAbort,        // core::Experiment crash between iterations
  kPolicyNan,         // serve::RobustRouter NaN policy output
  kPolicySlow,        // serve::RobustRouter policy stage deadline blowout
  kTopoChange,        // serve::RobustRouter mid-request topology change
  kRequestGarbage,    // serve::RobustRouter garbage inbound demand matrix
  kRegistryPublish,   // lifecycle::ModelRegistry publish I/O failure
  kShadowDiverge,     // lifecycle::ShadowEvaluator forced candidate loss
  kCandidateNan,      // NaN output from a *candidate* policy (the serving
                      //   router injects this instead of kPolicyNan when
                      //   it is serving a staged candidate)
  kSiteCount,
};

const char* to_string(FaultSite site);

class FaultInjector {
 public:
  // Global instance shared by every injection point.
  static FaultInjector& instance();

  // Parses and arms `spec` (see grammar above), replacing any previous
  // schedule and resetting all counters.  An empty spec disarms.  Throws
  // util::IoError naming the offending token on a malformed spec; the
  // previously armed schedule is left untouched.
  void arm(const std::string& spec) GDDR_EXCLUDES(mutex_);

  // Arms from the GDDR_FAULTS environment variable (no-op when unset).
  void arm_from_env();

  // Disables injection and clears schedules and counters.
  void disarm();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Records one hit of `site` and returns true when the armed schedule
  // fires for it.  Only called via inject() on the enabled path.
  bool fire(FaultSite site) GDDR_EXCLUDES(mutex_);

  // Diagnostics: hits observed / faults fired per site since arming.
  long hits(FaultSite site) const GDDR_EXCLUDES(mutex_);
  long fired(FaultSite site) const GDDR_EXCLUDES(mutex_);

 private:
  FaultInjector() = default;

  enum class Mode { kOff, kNth, kFromNth, kProbability };
  struct Schedule {
    Mode mode = Mode::kOff;
    long n = 0;          // kNth / kFromNth threshold (1-based)
    double p = 0.0;      // kProbability
    Rng rng{0};          // kProbability stream (seeded from the spec)
    long hits = 0;
    long fired = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_{LockRank::kFaultInjector, "util/fault"};
  Schedule schedules_[static_cast<int>(FaultSite::kSiteCount)]
      GDDR_GUARDED_BY(mutex_);
};

// The one call production code makes at an injection point.
inline bool inject(FaultSite site) {
  FaultInjector& injector = FaultInjector::instance();
  return injector.enabled() && injector.fire(site);
}

}  // namespace gddr::util
