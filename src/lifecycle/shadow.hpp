// Off-critical-path candidate scoring against live traffic.
//
// A candidate policy must prove itself on *production* requests before
// it touches production answers.  The ShadowEvaluator mirrors a
// deterministic stride-sampled fraction of live served requests through
// the candidate (a private RobustRouter, so the candidate gets the full
// serving ladder, deadline budget and NaN screening the incumbent has)
// and scores each pair by simulated max link utilisation:
//
//   win  := candidate served from rung 1 AND its U_max is no worse than
//           the incumbent's (ties are wins — a clone of the incumbent
//           must be promotable);
//   loss := anything else, including the candidate falling off rung 1
//           (counted separately as a candidate failure, and a NaN/Inf
//           action mean separately again — the promoter treats that as
//           instant-rollback evidence).
//
// Deltas (incumbent U_max − candidate U_max; positive = candidate
// better) accumulate into a Welford RunningStat overall and per
// topology fingerprint, so a candidate that wins on one topology while
// regressing another is visible before promotion.  Candidate decision
// latencies feed a bounded window for the promoter's p99 gate.
//
// Invoked from serve::Engine's decision observer *after* the caller's
// future resolves — mirroring cost never adds to request latency, only
// to serving-thread throughput (bounded by the sampling fraction).
//
// Fault site: shadow_diverge forces a mirrored pair to score as a
// candidate loss (rehearses the gate-rejection path deterministically).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/policies.hpp"
#include "serve/engine.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace gddr::lifecycle {

struct ShadowConfig {
  // Fraction of live requests mirrored through the candidate; realised
  // as stride sampling (every round(1/fraction)-th observed request),
  // clamped to (0, 1].
  double fraction = 0.2;
  // Candidate decision-latency samples kept for the p99 gate.
  std::size_t latency_window = 512;
  // The candidate's serving pipeline (deadlines, sanitiser, breaker).
  serve::RouterConfig router;
};

struct ShadowTopologyStats {
  std::uint64_t fingerprint = 0;
  long mirrored = 0;
  long wins = 0;
  util::RunningStat delta;  // incumbent U_max − candidate U_max
};

struct ShadowStats {
  long observed = 0;            // live records seen (mirrored or not)
  long mirrored = 0;            // pairs actually scored
  long wins = 0;
  long candidate_failures = 0;  // candidate fell off rung 1
  long nonfinite_outputs = 0;   // candidate produced NaN/Inf means
  util::RunningStat delta;
  double p99_latency_us = 0.0;
  std::vector<ShadowTopologyStats> by_topology;

  double win_rate() const {
    return mirrored > 0 ? static_cast<double>(wins) / mirrored : 0.0;
  }
};

class ShadowEvaluator {
 public:
  explicit ShadowEvaluator(ShadowConfig config);

  // Starts mirroring through `candidate` (kept alive by the evaluator)
  // and resets all statistics.  `version` stamps the mirror decisions.
  void arm(std::shared_ptr<const core::GnnPolicy> candidate,
           std::uint64_t version) GDDR_EXCLUDES(mu_);
  void disarm() GDDR_EXCLUDES(mu_);
  bool armed() const GDDR_EXCLUDES(mu_);

  // Feed one live served decision (wired as — or called from — the
  // engine's DecisionObserver).  Canary records (served_by_candidate)
  // are ignored: they are real traffic, not shadow pairs.  Thread-safe.
  void observe(const serve::RouteRequest& request,
               const serve::DecisionRecord& incumbent) GDDR_EXCLUDES(mu_);

  ShadowStats stats() const GDDR_EXCLUDES(mu_);

 private:
  ShadowConfig config_;
  long stride_ = 1;
  mutable util::Mutex mu_{util::LockRank::kShadowEval, "lifecycle/shadow"};
  std::shared_ptr<const core::GnnPolicy> candidate_ GDDR_GUARDED_BY(mu_);
  // The candidate's private serving pipeline (own topology cache and
  // breaker: a failing candidate must not trip the incumbent's breaker).
  std::optional<serve::RobustRouter> router_ GDDR_GUARDED_BY(mu_);
  ShadowStats stats_ GDDR_GUARDED_BY(mu_);
  std::map<std::uint64_t, ShadowTopologyStats> buckets_ GDDR_GUARDED_BY(mu_);
  std::vector<double> latencies_us_ GDDR_GUARDED_BY(mu_);
  std::size_t latency_next_ GDDR_GUARDED_BY(mu_) = 0;
};

}  // namespace gddr::lifecycle
