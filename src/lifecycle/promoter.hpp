// Gate-keeping state machine that takes a published version to live.
//
//                 stage(v)
//   kIdle ───────────────────▶ kStaged ──▶ kShadow ──▶ kCanary ──▶ kLive
//                                │            │           │
//                                │ load fails │ gate fail │ gate fail
//                                ▼            ▼           ▼
//                              kIdle      kRolledBack  kRolledBack
//
// (kStaged is transient: stage() loads the candidate from the registry,
// arms the shadow evaluator and lands in kShadow before returning.)
//
// Gates, judged from live-traffic evidence fed through observe():
//  * Shadow phase — after `promote_after` mirrored pairs: the candidate
//    advances to canary iff its win-rate ≥ `min_win_rate`, its shadow
//    p99 decision latency is under `max_p99_latency_us` (0 disables the
//    latency gate) and its rung-1 failure count is within
//    `max_candidate_failures`.
//  * Canary phase — a `canary_fraction` share of real micro-batches is
//    served by the candidate (serve::Engine::set_candidate).  After
//    `canary_decisions` candidate-served decisions with failures within
//    budget, the candidate is promoted: installed as the live policy
//    (zero-downtime hot swap) and recorded as the new last-good.
//  * Any NaN/Inf action mean from the candidate — shadow or canary —
//    rolls back immediately, regardless of budgets.
//
// Rollback disarms the canary and the shadow mirror and leaves the
// incumbent exactly as it was; the candidate never becomes last-good.
// Promotion latency (stage → live) is exported as
// lifecycle/promote_latency_us; rollbacks count into lifecycle/rollbacks.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "lifecycle/registry.hpp"
#include "lifecycle/shadow.hpp"
#include "serve/engine.hpp"
#include "util/sync.hpp"

namespace gddr::lifecycle {

enum class PromoteState : int {
  kIdle = 0,
  kStaged,
  kShadow,
  kCanary,
  kLive,
  kRolledBack,
};

const char* to_string(PromoteState state);

struct PromoterConfig {
  // Share of live requests mirrored through the candidate in kShadow.
  double shadow_fraction = 0.2;
  // Share of real micro-batches served by the candidate in kCanary.
  double canary_fraction = 0.1;
  // Mirrored pairs required before the shadow gates are judged.
  long promote_after = 50;
  double min_win_rate = 0.5;
  // Shadow p99 decision-latency ceiling in µs; 0 disables the gate.
  double max_p99_latency_us = 0.0;
  // Candidate-served decisions required to clear the canary.
  long canary_decisions = 20;
  // Candidate rung-1 failures tolerated per phase (NaN/Inf output is
  // always an instant rollback, independent of this budget).
  long max_candidate_failures = 0;
  std::size_t latency_window = 512;
  // Serving pipeline for the shadow mirror router.
  serve::RouterConfig router;
};

class Promoter {
 public:
  // `registry` and `engine` must outlive the promoter.  Wire
  // observe() as the engine's decision observer (or call it from one).
  Promoter(ModelRegistry& registry, serve::Engine& engine,
           PromoterConfig config);

  // Loads `version` from the registry, arms shadow mirroring and enters
  // kShadow.  Throws util::IoError (state stays kIdle) when the load
  // fails.  Only legal from kIdle / kLive / kRolledBack — a promotion
  // already in flight must finish or roll back first.
  void stage(std::uint64_t version) GDDR_EXCLUDES(mu_);

  // Drives the state machine with one served decision.  Cheap for
  // non-candidate records outside the shadow sampling stride.
  void observe(const serve::RouteRequest& request,
               const serve::DecisionRecord& record) GDDR_EXCLUDES(mu_);

  PromoteState state() const GDDR_EXCLUDES(mu_);

  struct Summary {
    PromoteState state = PromoteState::kIdle;
    std::uint64_t candidate_version = 0;
    // Versions promoted to live / rolled back over the promoter's life.
    long promotions = 0;
    long rollbacks = 0;
    std::string rollback_reason;  // last rollback's cause ("" if none)
    long canary_served = 0;
    ShadowStats shadow;
  };
  Summary summary() const GDDR_EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  void promote() GDDR_REQUIRES(mu_);
  void rollback(const std::string& reason) GDDR_REQUIRES(mu_);

  ModelRegistry& registry_;
  serve::Engine& engine_;
  PromoterConfig config_;
  ShadowEvaluator shadow_;
  mutable util::Mutex mu_{util::LockRank::kPromoter, "lifecycle/promoter"};
  PromoteState state_ GDDR_GUARDED_BY(mu_) = PromoteState::kIdle;
  std::shared_ptr<const core::GnnPolicy> candidate_ GDDR_GUARDED_BY(mu_);
  std::uint64_t candidate_version_ GDDR_GUARDED_BY(mu_) = 0;
  Clock::time_point staged_at_ GDDR_GUARDED_BY(mu_){};
  long canary_served_ GDDR_GUARDED_BY(mu_) = 0;
  long canary_failures_ GDDR_GUARDED_BY(mu_) = 0;
  long promotions_ GDDR_GUARDED_BY(mu_) = 0;
  long rollbacks_ GDDR_GUARDED_BY(mu_) = 0;
  std::string rollback_reason_ GDDR_GUARDED_BY(mu_);
};

}  // namespace gddr::lifecycle
