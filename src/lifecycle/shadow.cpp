#include "lifecycle/shadow.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mcf/cache.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace gddr::lifecycle {

namespace {
// Ties count as wins: a candidate bit-identical to the incumbent (the
// common "retrained on more data, converged to the same place" case)
// must clear the win-rate gate, and exact U_max ties are routine on
// small topologies.
constexpr double kTieTolerance = 1e-12;
}  // namespace

ShadowEvaluator::ShadowEvaluator(ShadowConfig config)
    : config_(config) {
  const double f = std::clamp(config_.fraction, 1e-6, 1.0);
  stride_ = std::max<long>(1, std::lround(1.0 / f));
  if (config_.latency_window == 0) config_.latency_window = 1;
}

void ShadowEvaluator::arm(std::shared_ptr<const core::GnnPolicy> candidate,
                          std::uint64_t version) {
  const util::MutexLock lock(mu_);
  candidate_ = std::move(candidate);
  // See serve::Engine::process_batch on why this const_cast is sound.
  router_.emplace(const_cast<core::GnnPolicy*>(candidate_.get()),
                  config_.router);
  router_->set_policy(const_cast<core::GnnPolicy*>(candidate_.get()),
                      version, /*candidate=*/true);
  stats_ = ShadowStats{};
  buckets_.clear();
  latencies_us_.clear();
  latency_next_ = 0;
}

void ShadowEvaluator::disarm() {
  const util::MutexLock lock(mu_);
  router_.reset();
  candidate_.reset();
}

bool ShadowEvaluator::armed() const {
  const util::MutexLock lock(mu_);
  return router_.has_value();
}

void ShadowEvaluator::observe(const serve::RouteRequest& request,
                              const serve::DecisionRecord& incumbent) {
  const util::MutexLock lock(mu_);
  if (!router_.has_value()) return;
  if (incumbent.served_by_candidate) return;
  ++stats_.observed;
  if (stats_.observed % stride_ != 0) return;

  // The mirror decision runs the candidate through the full ladder on
  // the exact live request, off the caller's latency path.
  const serve::RouteDecision mirror = router_->decide(request);
  ++stats_.mirrored;
  obs::count("lifecycle/shadow_requests");

  bool candidate_ok = mirror.rung == serve::Rung::kGnnPolicy;
  if (!candidate_ok) {
    ++stats_.candidate_failures;
    for (const serve::RungAttempt& attempt : mirror.attempts) {
      if (attempt.rung == serve::Rung::kGnnPolicy &&
          attempt.cause == serve::FailureCause::kNonFiniteOutput) {
        ++stats_.nonfinite_outputs;
      }
    }
  }
  if (util::inject(util::FaultSite::kShadowDiverge)) {
    obs::count("lifecycle/fault/shadow_diverge");
    candidate_ok = false;
  }

  const bool win = candidate_ok &&
                   mirror.sim.u_max <= incumbent.u_max + kTieTolerance;
  if (win) ++stats_.wins;

  const double delta = incumbent.u_max - mirror.sim.u_max;
  stats_.delta.add(delta);
  const std::uint64_t fp =
      request.graph != nullptr ? mcf::graph_fingerprint(*request.graph) : 0;
  ShadowTopologyStats& bucket = buckets_[fp];
  bucket.fingerprint = fp;
  ++bucket.mirrored;
  if (win) ++bucket.wins;
  bucket.delta.add(delta);

  const double latency_us = mirror.latency_s * 1e6;
  if (latencies_us_.size() < config_.latency_window) {
    latencies_us_.push_back(latency_us);
  } else {
    latencies_us_[latency_next_] = latency_us;
    latency_next_ = (latency_next_ + 1) % config_.latency_window;
  }

  obs::gauge("lifecycle/shadow_win_rate",
             static_cast<double>(stats_.wins) / stats_.mirrored);
}

ShadowStats ShadowEvaluator::stats() const {
  const util::MutexLock lock(mu_);
  ShadowStats out = stats_;
  out.p99_latency_us = util::percentile(latencies_us_, 99.0);
  out.by_topology.reserve(buckets_.size());
  for (const auto& [fp, bucket] : buckets_) out.by_topology.push_back(bucket);
  return out;
}

}  // namespace gddr::lifecycle
